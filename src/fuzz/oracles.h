// Differential oracles: re-check the optimized numeric paths against naive
// references on seeded random inputs, including the awkward corners
// (NaN/±inf operands, duplicate scores, degenerate shapes).
//
// The contract per oracle:
//   matmul / matmul_tn / matmul_nt — blocked register-tile kernels vs. the
//     naive loops they replaced, bit-identical (same per-element
//     accumulation order by design, see nn/matrix.cpp). Documented
//     tolerance: a NaN result matches any NaN — IEEE leaves NaN sign and
//     payload unspecified and x86 propagates payloads by operand position,
//     which the compiler may commute;
//   batched_predict — chunk-parallel eval::batched_predict_proba vs. a
//     per-row reference on the same trained monitor, bit-identical;
//   cusum — streaming CusumDetector vs. a from-scratch batch recompute,
//     bit-identical sums and alarm index;
//   pr_curve — precision_recall_curve / average_precision vs. an O(n²)
//     reference, bit-identical (both sides divide the same integer counts),
//     and the documented NaN-reject policy actually rejects.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cpsguard::fuzz {

struct OracleReport {
  std::string name;
  int cases = 0;
  int mismatches = 0;
  /// First mismatch, described for the failure message; empty when clean.
  std::string first_mismatch;

  [[nodiscard]] bool clean() const { return mismatches == 0; }
};

/// All registered oracle names: matmul, matmul_tn, matmul_nt,
/// batched_predict, cusum, pr_curve.
const std::vector<std::string>& oracle_names();

/// Run `cases` seeded random cases through one oracle. Deterministic in
/// (name, cases, seed). Throws CpsError for an unknown name.
OracleReport run_oracle(const std::string& name, int cases,
                        std::uint64_t seed);

}  // namespace cpsguard::fuzz

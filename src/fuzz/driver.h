// Deterministic fuzz campaign driver.
//
// A campaign is a pure function of (target, seed, iters): the same triple
// replays the same mutants in the same order and dumps byte-identical
// repro files, so a CI failure is reproducible locally from the log line
// alone. Found violations are greedily minimized and saved under the corpus
// directory as committed regression cases.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/target.h"

namespace cpsguard::fuzz {

struct FuzzOptions {
  std::string target;                      // name from all_targets()
  std::uint64_t seed = 7;
  int iters = 1000;
  std::string corpus_dir = "tests/corpus"; // where repros are dumped
  bool save_repros = true;                 // false: report only
  int max_repros = 8;                      // stop dumping after this many
};

struct FuzzStats {
  std::string target;
  int iterations = 0;
  int accepted = 0;    // inputs the primary parser took
  int rejected = 0;    // typed rejections (the expected failure mode)
  int violations = 0;  // contract breaks — any nonzero fails the run
  std::vector<std::string> repro_paths;        // minimized cases written
  std::vector<std::string> violation_messages; // first message per finding

  [[nodiscard]] bool clean() const { return violations == 0; }
};

/// Run one seeded campaign against `opts.target`. Throws CpsError for an
/// unknown target name; never lets a target's exception escape.
FuzzStats run_fuzz(const FuzzOptions& opts);

/// Replay every committed corpus case for one target (or all targets when
/// `target_name` is empty). Returns stats with one iteration per case;
/// violations indicate a regression against a previously-fixed bug.
FuzzStats replay_corpus(const std::string& corpus_dir,
                        const std::string& target_name);

}  // namespace cpsguard::fuzz

// Seeded, deterministic input mutators for the fuzz subsystem.
//
// Both mutators draw every decision from a util::Rng the caller seeds, so a
// fuzz campaign is a pure function of (target, seed, iters): the same seed
// replays the same mutation sequence byte-for-byte, which is what makes a
// crash found in CI reproducible locally with one command.
#pragma once

#include <string>
#include <vector>

#include "util/rng.h"

namespace cpsguard::fuzz {

/// Structure-blind byte-level mutator: bit flips, byte edits, span
/// duplication/erasure, truncation, and dictionary-token splicing. Output
/// length is capped so hostile growth loops cannot balloon the corpus.
class ByteMutator {
 public:
  explicit ByteMutator(util::Rng rng) : rng_(rng) {}

  /// Produce one mutant of `input`. `dictionary` tokens (magic strings,
  /// keywords, field names) are occasionally spliced in, which is what lets
  /// a blind mutator reach past magic-number checks.
  std::string mutate(const std::string& input,
                     const std::vector<std::string>& dictionary);

  static constexpr std::size_t kMaxLen = 4096;

 private:
  util::Rng rng_;
};

/// Structure-aware token mutator: assembles inputs by concatenating
/// dictionary tokens (with whitespace jitter), so grammar-shaped inputs —
/// STL formulas, key=value lines — reach deep parser states that byte
/// noise alone rarely hits.
class TokenMutator {
 public:
  explicit TokenMutator(util::Rng rng) : rng_(rng) {}

  /// Build an input of up to `max_tokens` dictionary tokens.
  std::string generate(const std::vector<std::string>& dictionary,
                       int max_tokens);

  /// Splice 1-3 dictionary tokens into `input` at random offsets.
  std::string splice(const std::string& input,
                     const std::vector<std::string>& dictionary);

 private:
  util::Rng rng_;
};

}  // namespace cpsguard::fuzz

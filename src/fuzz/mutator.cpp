#include "fuzz/mutator.h"

#include <algorithm>

namespace cpsguard::fuzz {

namespace {

std::size_t pick_offset(util::Rng& rng, std::size_t size) {
  if (size == 0) return 0;
  return static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<int>(size) - 1));
}

}  // namespace

std::string ByteMutator::mutate(const std::string& input,
                                const std::vector<std::string>& dictionary) {
  std::string out = input;
  // Stack 1-4 primitive mutations so mutants can drift more than one edit
  // away from the seed in a single round.
  const int edits = rng_.uniform_int(1, 4);
  for (int e = 0; e < edits; ++e) {
    const int op = rng_.uniform_int(0, 7);
    switch (op) {
      case 0: {  // flip one bit
        if (out.empty()) break;
        const std::size_t i = pick_offset(rng_, out.size());
        out[i] = static_cast<char>(out[i] ^ (1 << rng_.uniform_int(0, 7)));
        break;
      }
      case 1: {  // overwrite one byte with an interesting value
        if (out.empty()) break;
        static constexpr unsigned char kInteresting[] = {
            0x00, 0x01, 0x7f, 0x80, 0xff, '\n', '\r', '\t', ' ', '"',
            ',',  '=',  '-',  '.',  '0',  '9',  '(',  ')',  '[',  ']'};
        out[pick_offset(rng_, out.size())] = static_cast<char>(
            kInteresting[rng_.uniform_int(
                0, static_cast<int>(std::size(kInteresting)) - 1)]);
        break;
      }
      case 2: {  // insert a random byte
        const std::size_t i = out.empty() ? 0 : pick_offset(rng_, out.size() + 1);
        out.insert(out.begin() + static_cast<std::ptrdiff_t>(i),
                   static_cast<char>(rng_.uniform_int(0, 255)));
        break;
      }
      case 3: {  // erase a span
        if (out.empty()) break;
        const std::size_t i = pick_offset(rng_, out.size());
        const std::size_t len = std::min<std::size_t>(
            out.size() - i,
            static_cast<std::size_t>(rng_.uniform_int(1, 16)));
        out.erase(i, len);
        break;
      }
      case 4: {  // duplicate a span (repetition bombs, doubled headers)
        if (out.empty()) break;
        const std::size_t i = pick_offset(rng_, out.size());
        const std::size_t len = std::min<std::size_t>(
            out.size() - i,
            static_cast<std::size_t>(rng_.uniform_int(1, 32)));
        out.insert(i, out.substr(i, len));
        break;
      }
      case 5: {  // truncate (torn writes)
        if (out.empty()) break;
        out.resize(pick_offset(rng_, out.size()));
        break;
      }
      case 6: {  // splice a dictionary token at a random offset
        if (dictionary.empty()) break;
        const auto& tok = dictionary[static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<int>(dictionary.size()) - 1))];
        const std::size_t i = out.empty() ? 0 : pick_offset(rng_, out.size() + 1);
        out.insert(i, tok);
        break;
      }
      default: {  // swap two bytes
        if (out.size() < 2) break;
        const std::size_t i = pick_offset(rng_, out.size());
        const std::size_t j = pick_offset(rng_, out.size());
        std::swap(out[i], out[j]);
        break;
      }
    }
  }
  if (out.size() > kMaxLen) out.resize(kMaxLen);
  return out;
}

std::string TokenMutator::generate(const std::vector<std::string>& dictionary,
                                   int max_tokens) {
  std::string out;
  if (dictionary.empty()) return out;
  const int n = rng_.uniform_int(1, std::max(1, max_tokens));
  for (int i = 0; i < n; ++i) {
    out += dictionary[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<int>(dictionary.size()) - 1))];
    // Whitespace jitter between tokens, sometimes none at all.
    switch (rng_.uniform_int(0, 3)) {
      case 0: out += ' '; break;
      case 1: out += '\n'; break;
      default: break;
    }
  }
  if (out.size() > ByteMutator::kMaxLen) out.resize(ByteMutator::kMaxLen);
  return out;
}

std::string TokenMutator::splice(const std::string& input,
                                 const std::vector<std::string>& dictionary) {
  std::string out = input;
  if (dictionary.empty()) return out;
  const int n = rng_.uniform_int(1, 3);
  for (int i = 0; i < n; ++i) {
    const auto& tok = dictionary[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<int>(dictionary.size()) - 1))];
    const std::size_t at =
        out.empty() ? 0
                    : static_cast<std::size_t>(
                          rng_.uniform_int(0, static_cast<int>(out.size())));
    out.insert(at, tok);
  }
  if (out.size() > ByteMutator::kMaxLen) out.resize(ByteMutator::kMaxLen);
  return out;
}

}  // namespace cpsguard::fuzz

// fuzz_driver — deterministic fuzz campaigns and differential oracles.
//
//   fuzz_driver --target=stl --iters=10000 --seed=7
//       mutate-and-run one target; dumps minimized repros to tests/corpus/
//   fuzz_driver --target=all --iters=2000
//       short campaign over every registered target (the CI sweep)
//   fuzz_driver --replay [--target=json]
//       replay every committed corpus case (the regression gate)
//   fuzz_driver --oracle=all --cases=1000 --seed=7
//       differential oracles: optimized kernels vs. naive references
//   fuzz_driver --list
//       print registered targets and oracles
//
// Exit status: 0 clean, 1 any contract violation or oracle mismatch,
// 2 usage error. Everything is deterministic in the flags, so copying the
// command line out of a CI log reproduces the failure exactly.
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "fuzz/driver.h"
#include "fuzz/oracles.h"
#include "util/cli.h"

namespace {

using namespace cpsguard;

int report_fuzz(const fuzz::FuzzStats& stats) {
  std::printf("[fuzz] target=%-10s iters=%-6d accepted=%-6d rejected=%-6d "
              "violations=%d\n",
              stats.target.c_str(), stats.iterations, stats.accepted,
              stats.rejected, stats.violations);
  for (const auto& msg : stats.violation_messages) {
    std::printf("[fuzz]   violation: %s\n", msg.c_str());
  }
  for (const auto& path : stats.repro_paths) {
    std::printf("[fuzz]   repro: %s\n", path.c_str());
  }
  return stats.clean() ? 0 : 1;
}

int report_oracle(const fuzz::OracleReport& report) {
  std::printf("[oracle] name=%-16s cases=%-6d mismatches=%d\n",
              report.name.c_str(), report.cases, report.mismatches);
  if (!report.clean()) {
    std::printf("[oracle]   first mismatch: %s\n",
                report.first_mismatch.c_str());
  }
  return report.clean() ? 0 : 1;
}

int run(const util::Cli& cli) {
  if (cli.get_bool("list", false)) {
    std::printf("targets:");
    for (const auto& t : fuzz::all_targets()) std::printf(" %s", t.name.c_str());
    std::printf("\noracles:");
    for (const auto& n : fuzz::oracle_names()) std::printf(" %s", n.c_str());
    std::printf("\n");
    return 0;
  }

  const std::string corpus = cli.get("corpus", "tests/corpus");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  int rc = 0;

  if (cli.get_bool("replay", false)) {
    const fuzz::FuzzStats stats =
        fuzz::replay_corpus(corpus, cli.get("target", ""));
    if (stats.iterations == 0) {
      // An empty replay is a misconfiguration (wrong --corpus or wrong cwd),
      // not a clean regression gate — never report it as a pass.
      std::fprintf(stderr, "fuzz_driver: no corpus cases found under \"%s\"\n",
                   corpus.c_str());
      return 2;
    }
    rc |= report_fuzz(stats);
    return rc;
  }

  const std::string oracle = cli.get("oracle", "");
  if (!oracle.empty()) {
    const int cases = cli.get_int("cases", 1000);
    for (const auto& name : fuzz::oracle_names()) {
      if (oracle != "all" && oracle != name) continue;
      rc |= report_oracle(fuzz::run_oracle(name, cases, seed));
    }
    return rc;
  }

  const std::string target = cli.get("target", "");
  if (target.empty()) {
    std::fprintf(stderr,
                 "usage: fuzz_driver --target=<name|all> [--iters=N] "
                 "[--seed=S] [--corpus=DIR] [--no-save]\n"
                 "       fuzz_driver --replay [--target=<name>]\n"
                 "       fuzz_driver --oracle=<name|all> [--cases=N]\n"
                 "       fuzz_driver --list\n");
    return 2;
  }
  fuzz::FuzzOptions opts;
  opts.seed = seed;
  opts.iters = cli.get_int("iters", 1000);
  opts.corpus_dir = corpus;
  opts.save_repros = !cli.get_bool("no-save", false);
  for (const auto& t : fuzz::all_targets()) {
    if (target != "all" && target != t.name) continue;
    opts.target = t.name;
    rc |= report_fuzz(fuzz::run_fuzz(opts));
  }
  if (target != "all" && fuzz::find_target(target) == nullptr) {
    std::fprintf(stderr, "fuzz_driver: unknown target '%s'\n", target.c_str());
    return 2;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Cli cli(argc, argv);
    const int rc = run(cli);
    const auto unused = cli.unused();
    if (!unused.empty()) {
      std::fprintf(stderr, "fuzz_driver: unknown flag --%s\n",
                   unused.front().c_str());
      return 2;
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fuzz_driver: %s\n", e.what());
    return 2;
  }
}

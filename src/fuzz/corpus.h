// Replayable repro corpus under tests/corpus/<target>/.
//
// Every file is one exact input that once broke (or nearly broke) a target.
// Filenames are content-addressed — <label>-<fnv1a64 of bytes>.case — so the
// same finding dumped from two machines collides into one file, and a seed
// never produces two names for one input. Files are committed and replayed
// by the fuzz regression test on every CI run; CI separately enforces that
// each committed case is registered in tests/corpus/registry.inc.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace cpsguard::fuzz {

/// FNV-1a 64-bit over the raw bytes — stable content address for case files.
std::uint64_t fnv1a64(const std::string& bytes);

/// "<label>-<16 hex digits>.case" for the given input bytes.
std::string case_filename(const std::string& label, const std::string& input);

/// Write `input` to `<corpus_dir>/<target>/<case_filename(label, input)>`,
/// creating directories as needed. Returns the full path written.
std::string save_case(const std::string& corpus_dir, const std::string& target,
                      const std::string& label, const std::string& input);

/// Read one case file verbatim. Throws CpsError if unreadable.
std::string load_case(const std::string& path);

/// All *.case files under `<corpus_dir>/<target>/`, sorted by filename so
/// replay order is deterministic. Missing directory ⇒ empty list.
std::vector<std::string> list_cases(const std::string& corpus_dir,
                                    const std::string& target);

/// Greedily shrink `input` while `still_fails(candidate)` holds: repeated
/// chunk deletion (halving chunk sizes) then single-byte simplification to
/// ' '. Deterministic, no randomness. Returns the smallest failing input
/// found (possibly `input` itself).
std::string minimize(const std::string& input,
                     const std::function<bool(const std::string&)>& still_fails);

}  // namespace cpsguard::fuzz

#include "fuzz/oracles.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <vector>

#include "eval/batch_eval.h"
#include "eval/pr_curve.h"
#include "monitor/dataset.h"
#include "monitor/ml_monitor.h"
#include "nn/matrix.h"
#include "safety/cusum.h"
#include "sim/closed_loop.h"
#include "util/contracts.h"
#include "util/error.h"
#include "util/rng.h"

namespace cpsguard::fuzz {

namespace {

// ---- shared helpers -------------------------------------------------------

void record(OracleReport& report, bool ok, const std::string& what) {
  ++report.cases;
  if (ok) return;
  ++report.mismatches;
  if (report.first_mismatch.empty()) report.first_mismatch = what;
}

// Bit-identical per element, except NaN: IEEE does not pin a NaN's payload
// or sign, and x86 picks the propagated payload by *operand position*, which
// the compiler may commute differently in the two loop shapes (inf·0 makes
// the "indefinite" 0xffc00000, an input NaN is 0x7fc00000). So NaN matches
// NaN; every non-NaN value — including ±inf and signed zero — must match
// exactly.
bool bits_equal(const nn::Matrix& a, const nn::Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  if (a.empty() || std::memcmp(a.data().data(), b.data().data(),
                               a.data().size() * sizeof(float)) == 0) {
    return true;
  }
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    const float x = a.data()[i];
    const float y = b.data()[i];
    if (std::memcmp(&x, &y, sizeof(float)) == 0) continue;
    if (std::isnan(x) && std::isnan(y)) continue;
    return false;
  }
  return true;
}

// Random matrix whose entries occasionally include the IEEE specials that
// fault injection can push through the monitor path — the kernels must
// propagate them identically to the naive loops.
nn::Matrix random_matrix(util::Rng& rng, int rows, int cols, bool specials) {
  nn::Matrix m(rows, cols);
  for (float& v : m.data()) {
    if (specials && rng.bernoulli(0.02)) {
      switch (rng.uniform_int(0, 2)) {
        case 0: v = std::numeric_limits<float>::quiet_NaN(); break;
        case 1: v = std::numeric_limits<float>::infinity(); break;
        default: v = -std::numeric_limits<float>::infinity(); break;
      }
    } else {
      v = static_cast<float>(rng.uniform(-4.0, 4.0));
    }
  }
  return m;
}

// ---- naive matmul references ----------------------------------------------
// These are the triple loops the blocked kernels replaced: float
// accumulation in strictly ascending reduction order for matmul/matmul_tn,
// per-element double-precision dots for matmul_nt (the kernels' documented
// contracts — see nn/matrix.cpp).

nn::Matrix naive_matmul(const nn::Matrix& a, const nn::Matrix& b) {
  nn::Matrix c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int p = 0; p < a.cols(); ++p) {
      const float av = a.at(i, p);
      for (int j = 0; j < b.cols(); ++j) {
        c.at(i, j) += av * b.at(p, j);
      }
    }
  }
  return c;
}

nn::Matrix naive_matmul_tn(const nn::Matrix& a, const nn::Matrix& b) {
  nn::Matrix c(a.cols(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {  // ascending shared-row reduction
    for (int p = 0; p < a.cols(); ++p) {
      const float av = a.at(i, p);
      for (int j = 0; j < b.cols(); ++j) {
        c.at(p, j) += av * b.at(i, j);
      }
    }
  }
  return c;
}

nn::Matrix naive_matmul_nt(const nn::Matrix& a, const nn::Matrix& b) {
  nn::Matrix c(a.rows(), b.rows());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.rows(); ++j) {
      double acc = 0.0;
      for (int p = 0; p < a.cols(); ++p) {
        acc += static_cast<double>(a.at(i, p)) * b.at(j, p);
      }
      c.at(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

std::string shape_msg(const char* kernel, const nn::Matrix& a,
                      const nn::Matrix& b) {
  return std::string(kernel) + " mismatch at A" + a.shape_str() + " B" +
         b.shape_str();
}

OracleReport oracle_matmul(int cases, std::uint64_t seed, int which) {
  OracleReport report;
  util::Rng rng(seed, 0x4d41544dULL + static_cast<std::uint64_t>(which));
  for (int c = 0; c < cases; ++c) {
    const int n = rng.uniform_int(1, 40);
    const int k = rng.uniform_int(1, 40);
    const int m = rng.uniform_int(1, 40);
    const bool specials = rng.bernoulli(0.5);
    switch (which) {
      case 0: {
        const auto a = random_matrix(rng, n, k, specials);
        const auto b = random_matrix(rng, k, m, specials);
        record(report, bits_equal(nn::matmul(a, b), naive_matmul(a, b)),
               shape_msg("matmul", a, b));
        break;
      }
      case 1: {
        const auto a = random_matrix(rng, n, k, specials);
        const auto b = random_matrix(rng, n, m, specials);
        record(report, bits_equal(nn::matmul_tn(a, b), naive_matmul_tn(a, b)),
               shape_msg("matmul_tn", a, b));
        break;
      }
      default: {
        const auto a = random_matrix(rng, n, k, specials);
        const auto b = random_matrix(rng, m, k, specials);
        record(report, bits_equal(nn::matmul_nt(a, b), naive_matmul_nt(a, b)),
               shape_msg("matmul_nt", a, b));
        break;
      }
    }
  }
  return report;
}

// ---- batched predict ------------------------------------------------------

// One tiny trained monitor, built once: training is the expensive part and
// the oracle only needs fixed weights to compare batched vs. per-row paths.
monitor::MlMonitor& oracle_monitor(const monitor::Dataset& ds) {
  static monitor::MlMonitor mon = [&] {
    monitor::MonitorConfig cfg;
    cfg.arch = monitor::Arch::kMlp;
    cfg.hidden = {16, 8};
    cfg.epochs = 2;
    cfg.seed = 7;
    monitor::MlMonitor m(cfg);
    m.train(ds);
    return m;
  }();
  return mon;
}

const monitor::Dataset& oracle_dataset() {
  static const monitor::Dataset ds = [] {
    std::vector<sim::Trace> traces;
    auto patient = sim::make_patient(sim::Testbed::kGlucosymOpenAps);
    auto controller = sim::make_controller(sim::Testbed::kGlucosymOpenAps);
    const auto profiles =
        sim::testbed_profiles(sim::Testbed::kGlucosymOpenAps, 2, 5);
    util::Rng rng(11);
    for (int i = 0; i < 4; ++i) {
      sim::SimConfig cfg;
      cfg.steps = 50;
      cfg.inject_fault = (i % 2 == 0);
      traces.push_back(run_closed_loop(
          *patient, *controller, profiles[static_cast<std::size_t>(i % 2)],
          cfg, rng));
    }
    return monitor::build_dataset(traces, monitor::DatasetConfig{});
  }();
  return ds;
}

OracleReport oracle_batched_predict(int cases, std::uint64_t seed) {
  OracleReport report;
  const monitor::Dataset& ds = oracle_dataset();
  monitor::MlMonitor& mon = oracle_monitor(ds);
  util::Rng rng(seed, 0x42415443ULL);
  for (int c = 0; c < cases; ++c) {
    // Random batch of windows, random chunk size (often forcing several
    // chunks so the parallel stitch path actually runs).
    const int batch = rng.uniform_int(1, ds.size());
    std::vector<int> idx(static_cast<std::size_t>(batch));
    for (int& i : idx) i = rng.uniform_int(0, ds.size() - 1);
    const nn::Tensor3 windows = ds.x.gather(idx);
    const int chunk = rng.uniform_int(1, batch);
    const nn::Matrix batched =
        eval::batched_predict_proba(mon, windows, chunk);

    // Per-row reference: every window predicted alone must reproduce its
    // batched row bit-for-bit (row-local forward passes, the documented
    // batch_eval determinism contract).
    bool ok = batched.rows() == batch;
    for (int r = 0; ok && r < batch; ++r) {
      const int one[] = {r};
      const nn::Matrix row = mon.predict_proba(windows.gather(one));
      ok = row.rows() == 1 && row.cols() == batched.cols() &&
           std::memcmp(row.row(0).data(), batched.row(r).data(),
                       static_cast<std::size_t>(row.cols()) * sizeof(float)) == 0;
    }
    record(report, ok,
           "batched_predict mismatch at batch=" + std::to_string(batch) +
               " chunk=" + std::to_string(chunk));
  }
  return report;
}

// ---- cusum ----------------------------------------------------------------

OracleReport oracle_cusum(int cases, std::uint64_t seed) {
  OracleReport report;
  util::Rng rng(seed, 0x435553554dULL);
  for (int c = 0; c < cases; ++c) {
    safety::CusumConfig cfg;
    cfg.target_mean = rng.uniform(-2.0, 2.0);
    cfg.slack = rng.uniform(0.0, 1.0);
    cfg.threshold = rng.uniform(0.1, 6.0);
    const int n = rng.uniform_int(1, 200);
    std::vector<double> signal(static_cast<std::size_t>(n));
    for (double& v : signal) {
      if (rng.bernoulli(0.01)) {
        v = rng.bernoulli(0.5) ? std::numeric_limits<double>::infinity()
                               : -std::numeric_limits<double>::infinity();
      } else {
        v = cfg.target_mean + rng.gaussian(0.0, 1.5);
      }
    }

    // Streaming: one detector fed sample by sample.
    safety::CusumDetector streaming(cfg);
    int streaming_alarm = -1;
    for (int i = 0; i < n; ++i) {
      if (streaming.step(signal[static_cast<std::size_t>(i)]) &&
          streaming_alarm < 0) {
        streaming_alarm = i;
      }
    }

    // Batch recompute: the CUSUM recurrence re-derived from scratch.
    double s_pos = 0.0, s_neg = 0.0;
    int batch_alarm = -1;
    for (int i = 0; i < n; ++i) {
      const double dev = signal[static_cast<std::size_t>(i)] - cfg.target_mean;
      s_pos = std::max(0.0, s_pos + dev - cfg.slack);
      s_neg = std::max(0.0, s_neg - dev - cfg.slack);
      if ((s_pos > cfg.threshold || s_neg > cfg.threshold) && batch_alarm < 0) {
        batch_alarm = i;
      }
    }

    // And the public batch API must agree on the first alarm.
    safety::CusumDetector api(cfg);
    const int api_alarm = api.first_alarm(signal);

    const bool ok = streaming_alarm == batch_alarm &&
                    api_alarm == batch_alarm &&
                    streaming.positive_sum() == s_pos &&
                    streaming.negative_sum() == s_neg;
    record(report, ok, "cusum mismatch at case " + std::to_string(c));
  }
  return report;
}

// ---- pr curve -------------------------------------------------------------

struct PrReference {
  std::vector<eval::PrPoint> curve;
  double ap = 0.0;
};

// O(n²) reference: for every distinct threshold (descending), count tp/fp
// by scanning the whole input.
PrReference naive_pr(const std::vector<double>& scores,
                     const std::vector<int>& labels) {
  PrReference ref;
  std::vector<double> thresholds;
  for (const double s : scores) {
    bool seen = false;
    for (const double t : thresholds) seen = seen || t == s;
    if (!seen) thresholds.push_back(s);
  }
  std::sort(thresholds.begin(), thresholds.end(), std::greater<>());
  long total_positives = 0;
  for (const int y : labels) total_positives += y > 0 ? 1 : 0;
  double prev_recall = 0.0;
  for (const double t : thresholds) {
    long tp = 0, fp = 0;
    for (std::size_t i = 0; i < scores.size(); ++i) {
      if (scores[i] >= t) {
        if (labels[i] > 0) ++tp; else ++fp;
      }
    }
    eval::PrPoint p;
    p.threshold = t;
    p.precision = static_cast<double>(tp) / static_cast<double>(tp + fp);
    p.recall = total_positives == 0
                   ? 0.0
                   : static_cast<double>(tp) /
                         static_cast<double>(total_positives);
    ref.ap += (p.recall - prev_recall) * p.precision;
    prev_recall = p.recall;
    ref.curve.push_back(p);
  }
  return ref;
}

OracleReport oracle_pr_curve(int cases, std::uint64_t seed) {
  OracleReport report;
  util::Rng rng(seed, 0x50524356ULL);
  for (int c = 0; c < cases; ++c) {
    const int n = rng.uniform_int(1, 60);
    std::vector<double> scores(static_cast<std::size_t>(n));
    std::vector<int> labels(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      // Deliberately collision-heavy scores (small discrete grid) plus
      // occasional ±inf: tie handling is where curve bugs live.
      if (rng.bernoulli(0.05)) {
        scores[static_cast<std::size_t>(i)] =
            rng.bernoulli(0.5) ? std::numeric_limits<double>::infinity()
                               : -std::numeric_limits<double>::infinity();
      } else {
        scores[static_cast<std::size_t>(i)] = rng.uniform_int(0, 8) / 8.0;
      }
      labels[static_cast<std::size_t>(i)] = rng.bernoulli(0.3) ? 1 : 0;
    }

    const auto curve = eval::precision_recall_curve(scores, labels);
    const double ap = eval::average_precision(scores, labels);
    const PrReference ref = naive_pr(scores, labels);

    bool ok = curve.size() == ref.curve.size() && ap == ref.ap;
    for (std::size_t i = 0; ok && i < curve.size(); ++i) {
      ok = curve[i].threshold == ref.curve[i].threshold &&
           curve[i].precision == ref.curve[i].precision &&
           curve[i].recall == ref.curve[i].recall;
    }
    record(report, ok, "pr_curve mismatch at case " + std::to_string(c));

    // The documented NaN policy must actually hold: one NaN score ⇒
    // ContractViolation, never a sorted-in NaN.
    std::vector<double> poisoned = scores;
    poisoned[static_cast<std::size_t>(rng.uniform_int(0, n - 1))] =
        std::numeric_limits<double>::quiet_NaN();
    bool rejected = false;
    try {
      (void)eval::precision_recall_curve(poisoned, labels);
    } catch (const ContractViolation&) {
      rejected = true;
    }
    record(report, rejected,
           "pr_curve accepted a NaN score at case " + std::to_string(c));
  }
  return report;
}

}  // namespace

const std::vector<std::string>& oracle_names() {
  static const std::vector<std::string> names = {
      "matmul", "matmul_tn", "matmul_nt", "batched_predict", "cusum",
      "pr_curve"};
  return names;
}

OracleReport run_oracle(const std::string& name, int cases,
                        std::uint64_t seed) {
  OracleReport report;
  if (name == "matmul") {
    report = oracle_matmul(cases, seed, 0);
  } else if (name == "matmul_tn") {
    report = oracle_matmul(cases, seed, 1);
  } else if (name == "matmul_nt") {
    report = oracle_matmul(cases, seed, 2);
  } else if (name == "batched_predict") {
    report = oracle_batched_predict(cases, seed);
  } else if (name == "cusum") {
    report = oracle_cusum(cases, seed);
  } else if (name == "pr_curve") {
    report = oracle_pr_curve(cases, seed);
  } else {
    throw CpsError("unknown oracle: " + name);
  }
  report.name = name;
  return report;
}

}  // namespace cpsguard::fuzz

// Fuzz target registry: every ingestion surface of cpsguard, wrapped as a
// deterministic function of one input string with a checked robustness
// contract.
//
// Contract enforced by each target's run():
//   - hostile input either parses successfully or raises CpsError (or
//     ContractViolation from a precondition check) — nothing else;
//   - accepted input must survive its round-trip invariant (parse→emit→
//     parse identity, decode-verifies-checksum, …): accept-then-corrupt is
//     a bug even when nothing crashes;
//   - no UB, no aborts, no unbounded allocation (verified by running the
//     suite under ASan/UBSan in CI).
//
// A violation raises fuzz::InvariantViolation, which the driver counts,
// minimizes, and dumps into the corpus as a replayable repro.
#pragma once

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace cpsguard::fuzz {

/// A target broke its robustness contract: escaped an untyped exception or
/// accepted input and then corrupted it. Deliberately NOT a CpsError so the
/// driver can never mistake a bug for an expected rejection.
class InvariantViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

struct FuzzTarget {
  std::string name;
  /// Well-formed starting inputs; mutants of these reach deeper parser
  /// states than random bytes would.
  std::vector<std::string> seeds;
  /// Grammar tokens / magic strings spliced in by the mutators.
  std::vector<std::string> dictionary;
  /// Run the target on one input. Returns true when the primary parser
  /// accepted the input, false on an expected typed reject; throws
  /// InvariantViolation on a contract break. Anything else escaping is
  /// itself a contract break (the driver wraps and reports it). The driver
  /// feeds accepted mutants back into its input pool, which is the only
  /// coverage signal a feedback-free fuzzer has.
  std::function<bool(const std::string&)> run;
};

/// All registered targets: stl, config, csv, json, checkpoint, serialize,
/// model, cli.
const std::vector<FuzzTarget>& all_targets();

/// Lookup by name; nullptr if unknown.
const FuzzTarget* find_target(const std::string& name);

}  // namespace cpsguard::fuzz

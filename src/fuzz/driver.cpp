#include "fuzz/driver.h"

#include <algorithm>
#include <filesystem>

#include "fuzz/corpus.h"
#include "fuzz/mutator.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/rng.h"

namespace cpsguard::fuzz {

namespace {

// Upper bound on the driver's live input pool. Accepted mutants rotate
// through it (replacing the oldest non-seed entry), which is the only
// "coverage" feedback a black-box fuzzer has: inputs that parse reach
// deeper states, so their descendants should get more mutation budget.
constexpr std::size_t kPoolCap = 64;

// Run the target, translating every escape hatch into a tri-state.
enum class Outcome { kAccepted, kRejected, kViolation };

Outcome run_one(const FuzzTarget& target, const std::string& input,
                std::string* message) {
  try {
    return target.run(input) ? Outcome::kAccepted : Outcome::kRejected;
  } catch (const InvariantViolation& e) {
    if (message) *message = e.what();
    return Outcome::kViolation;
  } catch (const std::exception& e) {
    // Targets wrap escapes themselves; one leaking past them is still a bug.
    if (message) {
      *message = target.name + ": exception escaped target wrapper: " + e.what();
    }
    return Outcome::kViolation;
  } catch (...) {
    if (message) *message = target.name + ": non-std exception escaped";
    return Outcome::kViolation;
  }
}

bool fails(const FuzzTarget& target, const std::string& input) {
  return run_one(target, input, nullptr) == Outcome::kViolation;
}

// Quiet scoped log guard: targets legitimately log_warn on rejected inputs
// (chaos env parsing, checkpoint discards); 10k iterations of that is noise.
class LogSilencer {
 public:
  LogSilencer() : prev_(util::log_level()) {
    util::set_log_level(util::LogLevel::kError);
  }
  ~LogSilencer() { util::set_log_level(prev_); }
  LogSilencer(const LogSilencer&) = delete;
  LogSilencer& operator=(const LogSilencer&) = delete;

 private:
  util::LogLevel prev_;
};

}  // namespace

FuzzStats run_fuzz(const FuzzOptions& opts) {
  const FuzzTarget* target = find_target(opts.target);
  if (target == nullptr) {
    throw CpsError("unknown fuzz target: " + opts.target);
  }

  FuzzStats stats;
  stats.target = opts.target;

  // Independent streams per concern so adding a mutation strategy can't
  // shift the scheduling decisions of an existing seed.
  util::Rng schedule(opts.seed, fnv1a64(opts.target));
  ByteMutator bytes(schedule.split());
  TokenMutator tokens(schedule.split());

  std::vector<std::string> pool = target->seeds;
  if (pool.empty()) pool.push_back("");
  const std::size_t n_seeds = pool.size();
  std::size_t rotate = 0;  // next non-seed pool slot to replace

  LogSilencer quiet;
  for (int it = 0; it < opts.iters; ++it) {
    const std::string& base = pool[static_cast<std::size_t>(
        schedule.uniform_int(0, static_cast<int>(pool.size()) - 1))];
    std::string input;
    switch (schedule.uniform_int(0, 4)) {
      case 0:
        input = tokens.generate(target->dictionary, 12);
        break;
      case 1:
        input = tokens.splice(base, target->dictionary);
        break;
      default:  // byte-level mutation carries most of the budget
        input = bytes.mutate(base, target->dictionary);
        break;
    }

    std::string message;
    switch (run_one(*target, input, &message)) {
      case Outcome::kAccepted: {
        ++stats.accepted;
        // Rotate the accepted mutant into the pool (never evict seeds).
        if (pool.size() < kPoolCap) {
          pool.push_back(input);
        } else {
          pool[n_seeds + rotate] = input;
          rotate = (rotate + 1) % (kPoolCap - n_seeds);
        }
        break;
      }
      case Outcome::kRejected:
        ++stats.rejected;
        break;
      case Outcome::kViolation: {
        ++stats.violations;
        if (static_cast<int>(stats.violation_messages.size()) <
            opts.max_repros) {
          stats.violation_messages.push_back(message);
          const std::string repro =
              minimize(input, [&](const std::string& c) {
                return fails(*target, c);
              });
          if (opts.save_repros) {
            stats.repro_paths.push_back(
                save_case(opts.corpus_dir, opts.target, "fuzz", repro));
          }
        }
        break;
      }
    }
    ++stats.iterations;
  }
  return stats;
}

FuzzStats replay_corpus(const std::string& corpus_dir,
                        const std::string& target_name) {
  FuzzStats stats;
  stats.target = target_name.empty() ? "all" : target_name;
  LogSilencer quiet;
  for (const auto& target : all_targets()) {
    if (!target_name.empty() && target.name != target_name) continue;
    for (const auto& path : list_cases(corpus_dir, target.name)) {
      std::string message;
      switch (run_one(target, load_case(path), &message)) {
        case Outcome::kAccepted:
          ++stats.accepted;
          break;
        case Outcome::kRejected:
          ++stats.rejected;
          break;
        case Outcome::kViolation:
          ++stats.violations;
          stats.violation_messages.push_back(path + ": " + message);
          break;
      }
      ++stats.iterations;
    }
  }
  return stats;
}

}  // namespace cpsguard::fuzz

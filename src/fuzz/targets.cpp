#include "fuzz/target.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/checkpoint.h"
#include "obs/sha256.h"
#include "nn/layer.h"
#include "nn/serialize.h"
#include "registry/artifact.h"
#include "registry/model_io.h"
#include "safety/stl_parser.h"
#include "util/cli.h"
#include "util/config_file.h"
#include "util/contracts.h"
#include "util/csv.h"
#include "util/error.h"
#include "util/json.h"

namespace cpsguard::fuzz {

namespace {

namespace fs = std::filesystem;

// Wrap a parser call: accepted and expected-reject both return; any other
// exception type escaping the surface is the bug this subsystem exists to
// catch, so rewrap it with enough context to reproduce.
template <typename Fn>
bool accepts(const char* what, Fn&& fn) {
  try {
    fn();
    return true;
  } catch (const ContractViolation&) {
    return false;  // typed precondition reject — allowed
  } catch (const CpsError&) {
    return false;  // typed parse/IO reject — allowed
  } catch (const InvariantViolation&) {
    throw;  // already classified
  } catch (const std::exception& e) {
    throw InvariantViolation(std::string(what) +
                             ": escaped untyped exception: " + e.what());
  } catch (...) {
    throw InvariantViolation(std::string(what) +
                             ": escaped non-std exception");
  }
}

void require(bool cond, const std::string& msg) {
  if (!cond) throw InvariantViolation(msg);
}

// ---- stl ------------------------------------------------------------------

bool run_stl(const std::string& input) {
  return accepts("parse_stl", [&] { (void)safety::parse_stl(input); });
}

// ---- config ---------------------------------------------------------------

bool run_config(const std::string& input) {
  util::ConfigFile cfg;
  if (!accepts("ConfigFile::parse",
               [&] { cfg = util::ConfigFile::parse(input); })) {
    return false;
  }
  // Accepted config: the typed getters must reject garbage values with
  // ParseError, never stoi/stod exceptions (the pre-fix behaviour).
  for (const char* key : {"threads", "rate", "campaign.patients", "a", "k"}) {
    accepts("ConfigFile::get_int", [&] { (void)cfg.get_int(key, 0); });
    accepts("ConfigFile::get_double", [&] { (void)cfg.get_double(key, 0.0); });
    (void)cfg.get_bool(key, false);
  }
  return true;
}

// ---- csv ------------------------------------------------------------------

bool run_csv(const std::string& input) {
  std::vector<std::vector<std::string>> rows;
  if (!accepts("parse_csv", [&] { rows = util::parse_csv(input); })) {
    return false;
  }
  // Round-trip invariant: any rectangular table the parser accepts must
  // survive write→parse unchanged (quoting bugs surface here, e.g. the
  // unquoted-'\r' field loss).
  if (rows.empty() || rows.front().empty()) return true;
  const std::size_t width = rows.front().size();
  for (const auto& row : rows) {
    if (row.size() != width) return true;  // ragged: writer contract N/A
  }
  util::CsvWriter writer(rows.front());
  for (std::size_t r = 1; r < rows.size(); ++r) writer.add_row(rows[r]);
  const auto reparsed = util::parse_csv(writer.to_string());
  require(reparsed == rows,
          "csv: write->parse round-trip corrupted accepted input");
  return true;
}

// ---- json -----------------------------------------------------------------

bool run_json(const std::string& input) {
  util::Json parsed = util::Json::null();
  if (!accepts("Json::parse",
               [&] { parsed = util::Json::parse(input); })) {
    return false;
  }
  // dump∘parse must reach a fixpoint within one normalization pass (the
  // first dump may canonicalize, e.g. "1e2" → "100" or "-0" → "0").
  const std::string d1 = parsed.dump();
  util::Json p1 = util::Json::null();
  require(accepts("Json::parse(dump)",
                  [&] { p1 = util::Json::parse(d1); }),
          "json: dump() of an accepted value failed to reparse");
  const std::string d2 = p1.dump();
  util::Json p2 = util::Json::null();
  require(accepts("Json::parse(dump^2)",
                  [&] { p2 = util::Json::parse(d2); }),
          "json: normalized dump failed to reparse");
  require(p2.dump() == d2, "json: dump/parse never reached a fixpoint");
  return true;
}

// ---- checkpoint -----------------------------------------------------------

// One store directory reused across calls (same key ⇒ same record file), so
// 10k iterations don't churn 10k directories.
fs::path checkpoint_dir() {
  static const fs::path dir = [] {
    auto d = fs::temp_directory_path() /
             ("cpsguard_fuzz_ckpt_" + std::to_string(::getpid()));
    fs::create_directories(d);
    return d;
  }();
  return dir;
}

const std::string& checkpoint_payload() {
  static const std::string payload = "fuzz payload \x01\x02 bytes\n";
  return payload;
}

// A byte-exact valid record for the fuzz key, so mutants start one edit
// away from the accepted format instead of having to find it blind.
std::string checkpoint_seed() {
  const std::string& payload = checkpoint_payload();
  std::ostringstream os;
  os << core::kCheckpointSchema << '\n'
     << "key=fuzz-key\n"
     << "bytes=" << payload.size() << '\n'
     << "sha256=" << obs::sha256_hex(payload.data(), payload.size()) << '\n'
     << '\n'
     << payload;
  return os.str();
}

bool run_checkpoint(const std::string& input) {
  static const std::string key = "fuzz-key";
  const std::string& payload = checkpoint_payload();
  core::CheckpointStore store(checkpoint_dir().string());
  store.put(key, payload);
  // Locate the single record file and replace its bytes with the mutant —
  // a simulated hostile/rotted disk.
  fs::path record;
  for (const auto& entry : fs::directory_iterator(checkpoint_dir())) {
    if (entry.path().extension() == ".ckpt") record = entry.path();
  }
  require(!record.empty(), "checkpoint: record file missing after put()");
  {
    std::ofstream f(record, std::ios::binary | std::ios::trunc);
    f.write(input.data(), static_cast<std::streamsize>(input.size()));
  }
  // Strict decode: either the record is discarded (nullopt) or it decodes
  // to the *original* payload (the mutant happened to be a valid record,
  // which requires the SHA-256 self-check to pass). Returning anything else
  // is accept-then-corrupt.
  std::optional<std::string> got;
  accepts("CheckpointStore::get", [&] { got = store.get(key); });
  require(!got || *got == payload,
          "checkpoint: corrupted record decoded to forged payload");
  return got.has_value();
}

// ---- serialize ------------------------------------------------------------

// Fixed tiny param set; rebuilt per call because load_params writes into it.
std::vector<nn::Param> make_params() {
  std::vector<nn::Param> params;
  params.emplace_back("w1", nn::Matrix::full(3, 4, 0.5f));
  params.emplace_back("b1", nn::Matrix::full(1, 4, -0.25f));
  return params;
}

std::string serialized_seed() {
  auto params = make_params();
  std::vector<nn::Param*> ptrs;
  for (auto& p : params) ptrs.push_back(&p);
  std::ostringstream os;
  nn::save_params(os, ptrs);
  return os.str();
}

bool run_serialize(const std::string& input) {
  auto params = make_params();
  std::vector<nn::Param*> ptrs;
  for (auto& p : params) ptrs.push_back(&p);
  std::istringstream is(input);
  return accepts("load_params", [&] { nn::load_params(is, ptrs); });
}

// ---- model ----------------------------------------------------------------

// A tiny but fully valid cpsguard.model.v1 artifact, built through the
// low-level writer (no training): header + meta JSON + scaler stream + two
// tensors. Mutants start one edit away from every section.
std::string model_seed() {
  registry::ArtifactInfo info;
  info.arch = monitor::Arch::kMlp;
  info.window = 2;
  info.features = 3;
  info.classes = 2;
  const std::string meta =
      R"({"schema":"cpsguard.model.v1","version":1,"run_id":"fuzzrun0",)"
      R"("parent_run_id":"","config_fingerprint":"deadbeef",)"
      R"("display_name":"MLP","semantic":false,"hidden":[4]})";
  // StandardScaler stream: u32 n, n doubles mean, n doubles std.
  std::string scaler;
  const std::uint32_t n = 3;
  scaler.append(reinterpret_cast<const char*>(&n), sizeof(n));
  const double mean[3] = {0.0, 1.0, -2.5};
  const double stdv[3] = {1.0, 2.0, 0.5};
  scaler.append(reinterpret_cast<const char*>(mean), sizeof(mean));
  scaler.append(reinterpret_cast<const char*>(stdv), sizeof(stdv));
  static const float w1[6] = {0.5f, -0.25f, 1.0f, 0.0f, 2.0f, -1.5f};
  static const float b1[2] = {0.125f, -0.75f};
  const std::vector<registry::TensorSpec> tensors{
      {"w1", 3, 2, w1}, {"b1", 1, 2, b1}};
  return registry::build_artifact(info, meta, scaler, tensors);
}

bool run_model(const std::string& input) {
  registry::ModelArtifact art;
  if (!accepts("ModelArtifact::parse",
               [&] { art = registry::ModelArtifact::parse(input); })) {
    return false;
  }
  // Canonical-layout invariant: bytes the verifier accepts must re-encode
  // bit-identically — accept-then-mutate means two different models could
  // verify against the same SHA-256 lineage record.
  require(art.rebuild() == input,
          "model: rebuild() of an accepted artifact is not bit-identical");
  // The surfaces behind an accepted container must also reject with typed
  // errors only (the meta JSON is not validated by the container parser).
  accepts("parse_model_meta", [&] { (void)registry::parse_model_meta(art); });
  accepts("weight_views", [&] { (void)art.weight_views(); });
  return true;
}

// ---- cli ------------------------------------------------------------------

bool run_cli(const std::string& input) {
  // Split the fuzz input into argv tokens on whitespace.
  std::vector<std::string> tokens{"fuzz_prog"};
  std::istringstream is(input);
  std::string tok;
  while (is >> tok && tokens.size() < 64) tokens.push_back(tok);
  std::vector<const char*> argv;
  for (const auto& t : tokens) argv.push_back(t.c_str());

  return accepts("Cli", [&] {
    const util::Cli cli(static_cast<int>(argv.size()), argv.data());
    for (const char* flag : {"threads", "rate", "seed", "verbose"}) {
      if (!cli.has(flag)) continue;
      accepts("Cli::get_int", [&] { (void)cli.get_int(flag, 0); });
      accepts("Cli::get_double", [&] { (void)cli.get_double(flag, 0.0); });
      (void)cli.get_bool(flag, false);
    }
  });
}

std::vector<FuzzTarget> build_targets() {
  std::vector<FuzzTarget> targets;

  targets.push_back(FuzzTarget{
      "stl",
      {"BG > 180 && u3 > 0.5", "F[0,12](BG < 70)",
       "(BG > 120 U[0,6] dIOB > 0)", "G[0,24](!(BG < 54) || alarm == 1~0.5)",
       "true && !false"},
      {"G[", "F[", "U[", "(", ")", "[", "]", "&&", "||", "!", "<=", ">=",
       "==", "<", ">", "~", ",", "true", "false", "BG", "dIOB", "u3",
       "0", "1", "12", "180", "0.5", "-", ".", "9999999999999999999"},
      run_stl});

  targets.push_back(FuzzTarget{
      "config",
      {"threads = 4\nrate = 0.25\n# comment\ncampaign.patients = 20\n",
       "a=1\nb = true\nk = -3.5e-2\n"},
      {"=", "\n", "#", "threads", "rate", "campaign.patients", "a", "k",
       "true", "false", "0.5", "4x", "1e999", "-", ".", " "},
      run_config});

  targets.push_back(FuzzTarget{
      "csv",
      {"h1,h2,h3\n1,2,3\n4,5,6\n",
       "name,note\n\"a,b\",\"line\nbreak\"\n\"q\"\"q\",plain\n"},
      {",", "\"", "\n", "\r\n", "\"\"", "x", "0.5", ""},
      run_csv});

  targets.push_back(FuzzTarget{
      "json",
      {R"({"schema":"cpsguard.bench_manifest.v1","seed":7,"ok":true})",
       R"([1,2.5,-3e2,"s\n",null,false,{"k":[]}])",
       R"({"nested":{"a":[{"b":"é"}]}})"},
      {"{", "}", "[", "]", ":", ",", "\"", "\\u0022", "\\n", "true", "false",
       "null", "0", "-1", "2.5", "1e999", "\"k\"", "{}", "[]", "\\ud834",
       "\\udd1e"},
      run_json});

  targets.push_back(FuzzTarget{
      "checkpoint",
      {checkpoint_seed()},
      {"cpsguard.checkpoint.v1", "key=", "bytes=", "sha256=", "\n", "\n\n",
       "fuzz-key", "0", "22", "-22", "22x", "99999999999999999999"},
      run_checkpoint});

  targets.push_back(FuzzTarget{
      "serialize",
      {serialized_seed()},
      {"CPSG", std::string("\x01\x00\x00\x00", 4),
       std::string("\xff\xff\xff\xff", 4), std::string("\x00\x00\x00\x00", 4),
       "w1", "b1"},
      run_serialize});

  targets.push_back(FuzzTarget{
      "model",
      {model_seed()},
      {std::string(registry::kModelMagic, sizeof(registry::kModelMagic)),
       "cpsguard.model.v1",
       std::string("\x01\x00\x00\x00", 4),          // u32 1 (version/arch)
       std::string("\x80\x00\x00\x00\x00\x00\x00\x00", 8),  // u64 128
       std::string("\x40\x00\x00\x00\x00\x00\x00\x00", 8),  // u64 64
       std::string("\xff\xff\xff\xff", 4),
       std::string(4, '\0'), std::string(64, '\0'),
       "w1", "b1", "run_id", "hidden", "schema"},
      run_model});

  targets.push_back(FuzzTarget{
      "cli",
      {"--threads=4 --rate 0.25 --verbose",
       "--seed=7 --threads 16 --rate=1e-3"},
      {"--", "=", " ", "--threads", "--rate", "--seed", "--verbose", "4x",
       "0.5", "-", "true", "1e999", "--=", "positional"},
      run_cli});

  return targets;
}

}  // namespace

const std::vector<FuzzTarget>& all_targets() {
  static const std::vector<FuzzTarget> targets = build_targets();
  return targets;
}

const FuzzTarget* find_target(const std::string& name) {
  for (const auto& t : all_targets()) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

}  // namespace cpsguard::fuzz

#include "fuzz/corpus.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/error.h"

namespace cpsguard::fuzz {

namespace fs = std::filesystem;

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string case_filename(const std::string& label, const std::string& input) {
  static const char* hex = "0123456789abcdef";
  std::uint64_t h = fnv1a64(input);
  std::string digest(16, '0');
  for (int i = 15; i >= 0; --i) {
    digest[static_cast<std::size_t>(i)] = hex[h & 0xf];
    h >>= 4;
  }
  return label + "-" + digest + ".case";
}

std::string save_case(const std::string& corpus_dir, const std::string& target,
                      const std::string& label, const std::string& input) {
  const fs::path dir = fs::path(corpus_dir) / target;
  fs::create_directories(dir);
  const fs::path path = dir / case_filename(label, input);
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw CpsError("cannot write corpus case: " + path.string());
  f.write(input.data(), static_cast<std::streamsize>(input.size()));
  if (!f) throw CpsError("short write on corpus case: " + path.string());
  return path.string();
}

std::string load_case(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw CpsError("cannot read corpus case: " + path);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

std::vector<std::string> list_cases(const std::string& corpus_dir,
                                    const std::string& target) {
  std::vector<std::string> paths;
  const fs::path dir = fs::path(corpus_dir) / target;
  if (!fs::is_directory(dir)) return paths;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".case") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

std::string minimize(
    const std::string& input,
    const std::function<bool(const std::string&)>& still_fails) {
  std::string best = input;
  // Phase 1: delete chunks, halving the chunk size until single bytes.
  for (std::size_t chunk = std::max<std::size_t>(best.size() / 2, 1);;
       chunk /= 2) {
    bool shrunk = true;
    while (shrunk) {
      shrunk = false;
      for (std::size_t at = 0; at + chunk <= best.size();) {
        std::string candidate = best;
        candidate.erase(at, chunk);
        if (still_fails(candidate)) {
          best = std::move(candidate);
          shrunk = true;  // same offset now holds the next chunk
        } else {
          at += chunk;
        }
      }
    }
    if (chunk == 1) break;
  }
  // Phase 2: canonicalize surviving bytes to ' ' where the failure allows,
  // so repros read as structure rather than noise.
  for (std::size_t i = 0; i < best.size(); ++i) {
    if (best[i] == ' ') continue;
    std::string candidate = best;
    candidate[i] = ' ';
    if (still_fails(candidate)) best = std::move(candidate);
  }
  return best;
}

}  // namespace cpsguard::fuzz

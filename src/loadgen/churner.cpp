#include "loadgen/churner.h"

#include <algorithm>

#include "util/contracts.h"

namespace cpsguard::loadgen {

SessionChurner::SessionChurner(TrafficConfig cfg, std::uint64_t seed,
                               serve::SessionId first_id)
    : cfg_(cfg), rng_(seed), next_id_(first_id) {
  validate(cfg_);
}

void SessionChurner::join(serve::SessionId id, std::int64_t tick,
                          bool rejoin) {
  active_.emplace(id, tick + sample_session_length(cfg_, rng_));
  if (rejoin) {
    ++stats_.rejoins;
  } else {
    ++stats_.joins;
  }
}

TickPlan SessionChurner::plan(std::int64_t tick) {
  expects(tick == next_tick_, "churner: plan() ticks must be consecutive");
  ++next_tick_;
  TickPlan out;

  // 1. Expiries. Ascending-id iteration fixes the Rng draw order; a leaver
  // either closes gracefully or abandons (stops submitting, close never
  // sent), and either kind may schedule a same-id reconnect.
  std::vector<serve::SessionId> leavers;
  for (const auto& [id, expires_at] : active_) {
    if (expires_at <= tick) leavers.push_back(id);
  }
  for (const serve::SessionId id : leavers) {
    active_.erase(id);
    if (rng_.bernoulli(cfg_.abandon_prob)) {
      ++stats_.abandons;
    } else {
      out.closes.push_back(id);
      ++stats_.closes;
    }
    if (rng_.bernoulli(cfg_.reconnect_prob)) {
      const std::int64_t delay = rng_.uniform_int(cfg_.reconnect_delay_min,
                                                  cfg_.reconnect_delay_max);
      due_[tick + delay].push_back(id);
    }
  }

  // 2. Due reconnects rejoin before fresh sessions are considered.
  while (!due_.empty() && due_.begin()->first <= tick) {
    std::vector<serve::SessionId> ids = std::move(due_.begin()->second);
    due_.erase(due_.begin());
    std::sort(ids.begin(), ids.end());
    for (const serve::SessionId id : ids) {
      // An id can only be due once (it must leave before reconnecting),
      // but guard against joining over a live session anyway.
      if (active_.contains(id)) continue;
      join(id, tick, /*rejoin=*/true);
    }
  }

  // 3. Track the traffic model's concurrency target: join fresh sessions
  // up to it, or shed the oldest (lowest-id) sessions down to it.
  const auto target =
      static_cast<std::size_t>(target_sessions(cfg_, tick));
  while (active_.size() < target) {
    join(next_id_++, tick, /*rejoin=*/false);
  }
  while (active_.size() > target) {
    const serve::SessionId id = active_.begin()->first;
    active_.erase(active_.begin());
    out.closes.push_back(id);
    ++stats_.closes;
    if (rng_.bernoulli(cfg_.reconnect_prob)) {
      const std::int64_t delay = rng_.uniform_int(cfg_.reconnect_delay_min,
                                                  cfg_.reconnect_delay_max);
      due_[tick + delay].push_back(id);
    }
  }
  std::sort(out.closes.begin(), out.closes.end());

  stats_.peak_active = std::max(stats_.peak_active,
                                static_cast<std::uint64_t>(active_.size()));
  out.submits.reserve(active_.size());
  for (const auto& [id, expires_at] : active_) out.submits.push_back(id);
  return out;
}

}  // namespace cpsguard::loadgen

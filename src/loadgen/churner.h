// Seeded join/leave/reconnect scheduler for the streaming serve engine.
//
// A SessionChurner turns a TrafficConfig plus one Rng seed into a fully
// deterministic per-tick plan: which sessions gracefully close this tick,
// and which sessions submit a record. Session lifetimes are heavy-tailed
// draws; leavers may abandon (stop submitting without closing — the idle
// population the engine's TTL eviction exists to reclaim) and may
// reconnect later under the same id (the mid-stream reopen path). The
// churner never touches the engine: it is a pure schedule generator, so
// the same seed replays the same traffic against a serial engine, a
// pooled engine, or an engine with TTL eviction enabled — the property
// every loadgen byte-identity oracle rests on.
//
// Determinism: all state iterates in sorted containers and every Rng draw
// happens in ascending-session-id order, so plan(t) is a pure function of
// (config, seed, t) given the calls are made for t = 0, 1, 2, ...
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "loadgen/traffic.h"
#include "serve/types.h"
#include "util/rng.h"

namespace cpsguard::loadgen {

/// What the workload must do at one tick, in order: close `closes`, then
/// submit one record for each id in `submits` (both ascending).
struct TickPlan {
  std::vector<serve::SessionId> closes;
  std::vector<serve::SessionId> submits;
};

/// Lifetime churn counters (monotonic).
struct ChurnStats {
  std::uint64_t joins = 0;     // fresh session ids admitted
  std::uint64_t rejoins = 0;   // reconnects of previously-seen ids
  std::uint64_t closes = 0;    // graceful closes scheduled
  std::uint64_t abandons = 0;  // leavers that never closed
  std::uint64_t peak_active = 0;
  /// Distinct session ids ever active == joins (ids are never reused for
  /// fresh sessions; rejoins reuse their own id by design).
  [[nodiscard]] std::uint64_t distinct_sessions() const { return joins; }
};

class SessionChurner {
 public:
  /// Validates `cfg`. Fresh session ids count up from `first_id`.
  SessionChurner(TrafficConfig cfg, std::uint64_t seed,
                 serve::SessionId first_id = 1);

  /// The plan for `tick`. Must be called with consecutive ticks starting
  /// at 0 — the schedule is stateful (lifetimes, reconnect queue).
  [[nodiscard]] TickPlan plan(std::int64_t tick);

  [[nodiscard]] const ChurnStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t active() const { return active_.size(); }

 private:
  void join(serve::SessionId id, std::int64_t tick, bool rejoin);

  TrafficConfig cfg_;
  util::Rng rng_;
  serve::SessionId next_id_;
  std::int64_t next_tick_ = 0;
  std::map<serve::SessionId, std::int64_t> active_;  // id -> expiry tick
  std::map<std::int64_t, std::vector<serve::SessionId>> due_;  // reconnects
  ChurnStats stats_;
};

}  // namespace cpsguard::loadgen

// Deterministic traffic models for the streaming serve engine.
//
// A traffic model answers two questions and nothing else: "how many
// sessions should be streaming at tick t?" (a pure function of the config
// and the tick — no RNG, so the concurrency envelope of a run is knowable
// in advance) and "how long does a newly joined session stay?" (a draw
// from a seeded util::Rng stream, heavy-tailed by default so a soak run
// mixes drive-by sessions with near-immortal ones, the way real patient
// populations do). Everything downstream — the SessionChurner's
// join/leave/reconnect schedule, the Workload's submit sequence — derives
// deterministically from these two functions plus one Rng seed, which is
// what makes soak runs byte-reproducible and serial-vs-pooled comparable.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "util/rng.h"

namespace cpsguard::loadgen {

/// Shape of the concurrency envelope over time.
enum class TrafficModel {
  kSteady,      // flat target: base_sessions at every tick
  kDiurnal,     // raised-cosine swell between base and base*peak per period
  kFlashCrowd,  // flat base with a base*peak spike in [flash_at, flash_at+len)
};

[[nodiscard]] const char* to_string(TrafficModel model);
/// "steady" / "diurnal" / "flash"; nullopt on anything else.
[[nodiscard]] std::optional<TrafficModel> parse_traffic_model(
    std::string_view name);

struct TrafficConfig {
  TrafficModel model = TrafficModel::kSteady;
  /// Nominal concurrent sessions (the trough of diurnal, the plateau of
  /// steady and flash-crowd).
  int base_sessions = 64;
  /// Peak multiplier for diurnal / flash-crowd (>= 1).
  double peak = 2.0;
  /// Diurnal period in ticks.
  int period = 48;
  /// Flash-crowd spike window [flash_at, flash_at + flash_len).
  std::int64_t flash_at = 16;
  std::int64_t flash_len = 8;

  /// Session lengths are Pareto(min_session_len, tail_alpha) capped at
  /// max_session_len: len = min * u^(-1/alpha). Alpha in (1, 2] gives the
  /// heavy tail (finite mean, huge variance) the issue calls for.
  int min_session_len = 8;
  int max_session_len = 1 << 16;
  double tail_alpha = 1.5;

  /// Fraction of expiring sessions that leave *without* closing — they
  /// just stop submitting, and only the engine's idle-TTL eviction (or a
  /// workload-driven explicit close) reclaims their budget slot.
  double abandon_prob = 0.0;
  /// Fraction of leavers (graceful or abandoning) that reconnect with the
  /// same session id after a uniform delay in
  /// [reconnect_delay_min, reconnect_delay_max] ticks — the mid-stream
  /// reopen path: the id readmits and its window refills from scratch.
  double reconnect_prob = 0.0;
  int reconnect_delay_min = 2;
  int reconnect_delay_max = 12;
};

/// Target concurrent sessions at `tick` — pure in (cfg, tick), never
/// negative. Steady: base. Diurnal: raised cosine from base (tick 0) up to
/// base*peak half a period later. Flash crowd: base, or base*peak inside
/// the spike window.
[[nodiscard]] int target_sessions(const TrafficConfig& cfg, std::int64_t tick);

/// One heavy-tailed session length draw (ticks), in
/// [min_session_len, max_session_len]. Consumes exactly one uniform from
/// `rng`.
[[nodiscard]] int sample_session_length(const TrafficConfig& cfg,
                                        util::Rng& rng);

/// Validate a config; throws ContractViolation naming the bad field.
void validate(const TrafficConfig& cfg);

}  // namespace cpsguard::loadgen

#include "loadgen/invariants.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "serve/stable_hash.h"
#include "util/contracts.h"

namespace cpsguard::loadgen {

namespace {

[[noreturn]] void violate(const std::string& what) {
  throw InvariantViolation("loadgen invariant violated: " + what);
}

}  // namespace

InvariantChecker::InvariantChecker(int window, std::size_t queue_bound,
                                   int shards)
    : window_(window), queue_bound_(queue_bound), shards_(shards) {
  expects(window > 0, "invariant checker: window must be positive");
  expects(queue_bound > 0, "invariant checker: queue bound must be positive");
  expects(shards >= 0, "invariant checker: shards must be >= 0");
}

void InvariantChecker::on_accepted(serve::SessionId id) {
  SessionState& s = sessions_[id];
  ++s.accepted;
  ++accepted_;
  // The record that fills the window — and every one after it — stages
  // exactly one window whose verdict must carry this cycle index.
  if (s.accepted >= window_) {
    s.expected.push_back(static_cast<int>(s.accepted - 1));
  }
}

void InvariantChecker::on_session_end(serve::SessionId id) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return;  // ended before ever being accepted
  // New epoch: the ring restarts empty on readmission. Old-epoch windows
  // already staged keep their queued expected cycles — they still verdict,
  // and in ingest order they drain before any new-epoch verdict.
  it->second.accepted = 0;
}

void InvariantChecker::on_verdicts(
    std::span<const serve::VerdictEvent> events, std::int64_t drain_tick) {
  for (const serve::VerdictEvent& ev : events) {
    ++verdicts_;
    const auto it = sessions_.find(ev.session);
    if (it == sessions_.end() || it->second.expected.empty()) {
      violate("conservation: verdict for session " +
              std::to_string(ev.session) + " cycle " +
              std::to_string(ev.cycle) + " has no completed window");
    }
    std::deque<int>& expected = it->second.expected;
    if (expected.front() != ev.cycle) {
      violate("ingest order: session " + std::to_string(ev.session) +
              " expected cycle " + std::to_string(expected.front()) +
              " next, got " + std::to_string(ev.cycle));
    }
    expected.pop_front();
    if (shards_ > 0) {
      // Micro-batch version purity: the engine scores a whole batch with
      // one monitor, so every verdict of a (shard, flush_seq) group must
      // carry the same model_version — a swap landing mid-batch would
      // split it.
      const std::uint64_t shard =
          serve::stable_hash64(ev.session) %
          static_cast<std::uint64_t>(shards_);
      const std::uint64_t key = (shard << 48) | ev.flush_seq;
      const auto [batch_it, inserted] =
          batch_version_.emplace(key, ev.model_version);
      if (!inserted && batch_it->second != ev.model_version) {
        violate("batch purity: shard " + std::to_string(shard) +
                " flush " + std::to_string(ev.flush_seq) +
                " mixes model versions " + std::to_string(batch_it->second) +
                " and " + std::to_string(ev.model_version));
      }
    }
    const std::int64_t latency = drain_tick - ev.ingest_tick;
    if (latency < 0) {
      violate("latency: session " + std::to_string(ev.session) + " cycle " +
              std::to_string(ev.cycle) + " drained at tick " +
              std::to_string(drain_tick) + " before its ingest tick " +
              std::to_string(ev.ingest_tick));
    }
    if (static_cast<std::size_t>(latency) >= latency_counts_.size()) {
      latency_counts_.resize(static_cast<std::size_t>(latency) + 1, 0);
    }
    ++latency_counts_[static_cast<std::size_t>(latency)];
  }
}

void InvariantChecker::on_queue_depth(std::size_t depth) {
  max_queue_depth_ = std::max(max_queue_depth_, depth);
  if (depth > queue_bound_) {
    violate("queue bound: depth " + std::to_string(depth) +
            " exceeds shards*queue_capacity = " +
            std::to_string(queue_bound_));
  }
}

void InvariantChecker::on_tick_complete(std::size_t queue_depth_after_tick) {
  if (queue_depth_after_tick != 0) {
    violate("drain: queue depth " + std::to_string(queue_depth_after_tick) +
            " non-zero right after tick()");
  }
}

void InvariantChecker::finish(std::size_t engine_queue_depth) const {
  for (const auto& [id, s] : sessions_) {
    if (!s.expected.empty()) {
      violate("conservation: session " + std::to_string(id) + " still has " +
              std::to_string(s.expected.size()) +
              " completed windows without verdicts (next cycle " +
              std::to_string(s.expected.front()) + ")");
    }
  }
  if (engine_queue_depth != 0) {
    violate("conservation: engine queue depth " +
            std::to_string(engine_queue_depth) + " non-zero at finish");
  }
}

double latency_percentile(const std::vector<std::uint64_t>& counts,
                          double q) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the smallest latency whose cumulative count reaches
  // ceil(q * total) (rank 1 at q=0 ~ the minimum).
  const auto rank = static_cast<std::uint64_t>(
      std::max<double>(1.0, std::ceil(clamped * static_cast<double>(total))));
  std::uint64_t cumulative = 0;
  for (std::size_t latency = 0; latency < counts.size(); ++latency) {
    cumulative += counts[latency];
    if (cumulative >= rank) return static_cast<double>(latency);
  }
  return static_cast<double>(counts.size() - 1);
}

}  // namespace cpsguard::loadgen

// End-to-end workload driver: seeded churned traffic through serve::Engine
// with invariant checking, latency accounting, and a serialized verdict
// stream for byte-identity oracles.
//
// One Workload owns a trained monitor reference, a pool of replay traces
// (the record source — session `id` at tick `t` streams a pure function of
// (id, t), so every run of the same config replays identical records), and
// a WorkloadConfig. run() constructs a fresh engine + churner + checker
// every call, so the same Workload replays under different scheduling
// (serial vs pooled) or different engine knobs for the oracles:
//
//   * serial-vs-pooled: run() twice around util::set_max_parallelism —
//     stream_sha256 must match.
//   * TTL-equivalence: run A with idle_ttl_ticks set records an eviction
//     log; run B with TTL off replays that log as explicit closes at the
//     same tick boundaries — streams must match byte for byte, pinning
//     "eviction == close at the eviction point".
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "loadgen/churner.h"
#include "loadgen/invariants.h"
#include "loadgen/traffic.h"
#include "monitor/ml_monitor.h"
#include "serve/engine.h"
#include "sim/trace.h"

namespace cpsguard::loadgen {

struct WorkloadConfig {
  TrafficConfig traffic;
  serve::EngineConfig engine;
  /// Cycles to drive; every cycle ends in one engine.tick().
  std::int64_t ticks = 100;
  /// Seeds the churner's schedule stream.
  std::uint64_t seed = 42;
  /// First fresh session id (offset to keep concurrent workloads disjoint).
  serve::SessionId first_session_id = 1;
  /// Keep the raw serialized verdict stream in the report (identity
  /// debugging); stream_sha256 is always computed.
  bool record_stream = false;
  /// Throw InvariantViolation on any contract breach (leave on; off only
  /// to measure checker overhead).
  bool check_invariants = true;
  /// Stage a hot swap every this many ticks (0 disables). With an empty
  /// swap pool the workload restages its own monitor under the *same*
  /// version — a no-op swap whose verdict stream must be byte-identical to
  /// a swap-free run (the oracle test_serve pins). With a pool the
  /// workload round-robins through it, bumping the version each swap, and
  /// the invariant checker enforces batch purity across the transitions.
  std::int64_t swap_every = 0;
};

/// One TTL eviction observed at a tick boundary; a run's log replays in a
/// TTL-off run as explicit closes (see class comment).
struct EvictionEvent {
  std::int64_t tick = 0;
  serve::SessionId id = 0;
};

struct WorkloadReport {
  // Admission.
  std::uint64_t accepted = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_session_limit = 0;
  // Output.
  std::uint64_t verdicts = 0;
  std::string stream_sha256;
  std::string stream;  // only when record_stream
  // Churn.
  std::uint64_t distinct_sessions = 0;
  std::uint64_t joins = 0;
  std::uint64_t rejoins = 0;
  std::uint64_t closes = 0;
  std::uint64_t abandons = 0;
  std::uint64_t evictions = 0;
  std::uint64_t peak_active = 0;
  std::vector<EvictionEvent> eviction_log;
  // Hot swaps staged by the drive loop (activated at the next tick each).
  std::uint64_t swaps = 0;
  // Load.
  std::size_t max_queue_depth = 0;
  std::vector<std::uint64_t> latency_counts;  // see InvariantChecker
  double seconds = 0.0;  // wall clock around the drive loop
  serve::EngineStats final_stats;
};

class Workload {
 public:
  /// `mon` must be trained and outlive the workload; `traces` is the
  /// record source (non-empty, each trace non-empty) and is copied.
  Workload(const monitor::MlMonitor& mon, std::vector<sim::Trace> traces,
           WorkloadConfig config);

  /// Drive the engine for config.ticks cycles. `forced_closes` (sorted by
  /// tick — e.g. another run's eviction_log) are applied as explicit
  /// close_session calls right after the tick they name.
  [[nodiscard]] WorkloadReport run(
      std::span<const EvictionEvent> forced_closes = {}) const;

  [[nodiscard]] const WorkloadConfig& config() const { return config_; }

  /// Monitors the drive loop round-robins through when swap_every fires
  /// (see WorkloadConfig::swap_every). Each must be trained and outlive the
  /// workload; not copied. An empty pool means no-op self-swaps.
  void set_swap_pool(std::vector<const monitor::MlMonitor*> pool);

  /// The record session `id` submits at tick `t` (pure; exposed for
  /// tests).
  [[nodiscard]] const sim::StepRecord& record_for(serve::SessionId id,
                                                  std::int64_t t) const;

 private:
  const monitor::MlMonitor& monitor_;
  std::vector<sim::Trace> traces_;
  WorkloadConfig config_;
  std::vector<const monitor::MlMonitor*> swap_pool_;
};

/// Serialize one verdict event the way the loadgen stream hashes it:
/// "session,cycle,prediction,ingest_tick,model_version,p_bits\n" with
/// p_unsafe as raw IEEE-754 bits (byte identity, not closeness).
[[nodiscard]] std::string format_verdict(const serve::VerdictEvent& ev);

}  // namespace cpsguard::loadgen

#include "loadgen/traffic.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace cpsguard::loadgen {

const char* to_string(TrafficModel model) {
  switch (model) {
    case TrafficModel::kSteady: return "steady";
    case TrafficModel::kDiurnal: return "diurnal";
    case TrafficModel::kFlashCrowd: return "flash";
  }
  return "unknown";
}

std::optional<TrafficModel> parse_traffic_model(std::string_view name) {
  if (name == "steady") return TrafficModel::kSteady;
  if (name == "diurnal") return TrafficModel::kDiurnal;
  if (name == "flash") return TrafficModel::kFlashCrowd;
  return std::nullopt;
}

void validate(const TrafficConfig& cfg) {
  expects(cfg.base_sessions > 0, "traffic: base_sessions must be positive");
  expects(cfg.peak >= 1.0, "traffic: peak must be >= 1");
  expects(cfg.period > 0, "traffic: period must be positive");
  expects(cfg.flash_len >= 0, "traffic: flash_len must be non-negative");
  expects(cfg.min_session_len > 0,
          "traffic: min_session_len must be positive");
  expects(cfg.max_session_len >= cfg.min_session_len,
          "traffic: max_session_len must be >= min_session_len");
  expects(cfg.tail_alpha > 0.0, "traffic: tail_alpha must be positive");
  expects(cfg.abandon_prob >= 0.0 && cfg.abandon_prob <= 1.0,
          "traffic: abandon_prob must be in [0, 1]");
  expects(cfg.reconnect_prob >= 0.0 && cfg.reconnect_prob <= 1.0,
          "traffic: reconnect_prob must be in [0, 1]");
  expects(cfg.reconnect_delay_min >= 1,
          "traffic: reconnect_delay_min must be >= 1");
  expects(cfg.reconnect_delay_max >= cfg.reconnect_delay_min,
          "traffic: reconnect_delay_max must be >= reconnect_delay_min");
}

int target_sessions(const TrafficConfig& cfg, std::int64_t tick) {
  const double base = static_cast<double>(cfg.base_sessions);
  switch (cfg.model) {
    case TrafficModel::kSteady:
      return cfg.base_sessions;
    case TrafficModel::kDiurnal: {
      // Raised cosine: trough (base) at tick 0, crest (base*peak) half a
      // period later. Pure in (cfg, tick) — same double math every call.
      const double phase =
          2.0 * M_PI *
          static_cast<double>(tick % cfg.period) / static_cast<double>(cfg.period);
      const double swell = 0.5 * (1.0 - std::cos(phase));  // [0, 1]
      return static_cast<int>(base + (cfg.peak - 1.0) * base * swell);
    }
    case TrafficModel::kFlashCrowd:
      if (tick >= cfg.flash_at && tick < cfg.flash_at + cfg.flash_len) {
        return static_cast<int>(base * cfg.peak);
      }
      return cfg.base_sessions;
  }
  return cfg.base_sessions;
}

int sample_session_length(const TrafficConfig& cfg, util::Rng& rng) {
  // Pareto via inverse CDF on one uniform; clamp u away from 0 so the
  // power is finite, then cap at max_session_len.
  const double u = std::max(rng.uniform(), 1e-12);
  const double len = static_cast<double>(cfg.min_session_len) *
                     std::pow(u, -1.0 / cfg.tail_alpha);
  const double capped =
      std::min(len, static_cast<double>(cfg.max_session_len));
  return std::max(cfg.min_session_len, static_cast<int>(capped));
}

}  // namespace cpsguard::loadgen

// Invariant checking for loadgen runs against serve::Engine.
//
// The checker mirrors the engine's verdict contract from the outside,
// using only what a real client could observe: which submits were
// accepted, which sessions ended (explicit close or TTL eviction), and
// the drained verdict stream. It enforces, throwing InvariantViolation on
// the first breach:
//
//   * Verdict conservation — every accepted record that completes a
//     window produces exactly one verdict; no verdict appears for a
//     window that was never completed; nothing is outstanding once the
//     run finishes and the engine reports an empty queue.
//   * Per-session ingest-order monotonicity — a session's verdicts arrive
//     in exactly the cycle order its windows completed; after a session
//     ends and the id readmits, cycles restart at window-1 (old-epoch
//     verdicts, which may still be staged, must fully drain first).
//   * Bounded queue depth — engine.queue_depth() never exceeds
//     shards * queue_capacity, and is zero right after every tick()
//     (tick flushes every staged window and drains every verdict).
//   * Micro-batch version purity (when constructed with the shard count) —
//     all verdicts of one (shard, flush_seq) micro-batch carry the same
//     model_version: a hot swap must never split a batch across models.
//
// InvariantViolation deliberately does NOT derive from CpsError: a breach
// is a harness-detected engine bug, and must never be swallowed by code
// that catches the domain error taxonomy (same rationale as
// fuzz::InvariantViolation).
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "serve/types.h"

namespace cpsguard::loadgen {

class InvariantViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

class InvariantChecker {
 public:
  /// `window` must match the engine's; `queue_bound` is the hard depth
  /// bound (shards * queue_capacity). `shards` (the engine's shard count)
  /// enables the micro-batch version-purity check — 0 turns it off (for
  /// callers that predate model versioning).
  InvariantChecker(int window, std::size_t queue_bound, int shards = 0);

  /// The engine accepted a record for `id` (kAccepted from try_submit).
  void on_accepted(serve::SessionId id);

  /// `id`'s session ended — close_session() returned true, or the engine
  /// reported it in evicted_last_tick(). Its next accepted record starts
  /// a fresh window epoch.
  void on_session_end(serve::SessionId id);

  /// Verdicts drained at `drain_tick` (engine.ticks() before the tick()
  /// call that produced them). Checks order + conservation, accumulates
  /// latency (drain_tick - ingest_tick) into the latency histogram.
  void on_verdicts(std::span<const serve::VerdictEvent> events,
                   std::int64_t drain_tick);

  /// Sample the queue depth (call between submits and tick); enforces the
  /// hard bound.
  void on_queue_depth(std::size_t depth);

  /// Call right after every tick() with engine.queue_depth(): the queue
  /// must be fully drained.
  void on_tick_complete(std::size_t queue_depth_after_tick);

  /// End-of-run conservation: no expected verdict is still outstanding
  /// and the engine queue is empty. Call after the final tick() with
  /// engine.queue_depth().
  void finish(std::size_t engine_queue_depth) const;

  [[nodiscard]] std::uint64_t accepted() const { return accepted_; }
  [[nodiscard]] std::uint64_t verdicts() const { return verdicts_; }
  [[nodiscard]] std::size_t max_queue_depth() const {
    return max_queue_depth_;
  }
  /// latency_counts()[L] = number of verdicts delivered L ticks after
  /// their window's last record was ingested. Exact (integer latencies),
  /// so percentiles over it are exact — see latency_percentile().
  [[nodiscard]] const std::vector<std::uint64_t>& latency_counts() const {
    return latency_counts_;
  }

 private:
  struct SessionState {
    std::int64_t accepted = 0;  // records accepted since epoch start
    std::deque<int> expected;   // staged window cycles awaiting verdicts
  };

  int window_;
  std::size_t queue_bound_;
  int shards_;
  std::unordered_map<serve::SessionId, SessionState> sessions_;
  // (shard << 48 | flush_seq) → the model_version first seen for that
  // micro-batch; any later verdict of the batch must match.
  std::unordered_map<std::uint64_t, std::uint64_t> batch_version_;
  std::uint64_t accepted_ = 0;
  std::uint64_t verdicts_ = 0;
  std::size_t max_queue_depth_ = 0;
  std::vector<std::uint64_t> latency_counts_;
};

/// Exact q-quantile (q in [0,1]) of the integer distribution encoded by
/// `counts` (nearest-rank); 0 on an empty distribution.
[[nodiscard]] double latency_percentile(
    const std::vector<std::uint64_t>& counts, double q);

}  // namespace cpsguard::loadgen

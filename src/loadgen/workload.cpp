#include "loadgen/workload.h"

#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "obs/sha256.h"
#include "util/contracts.h"

namespace cpsguard::loadgen {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

std::string format_verdict(const serve::VerdictEvent& ev) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(ev.p_unsafe));
  std::memcpy(&bits, &ev.p_unsafe, sizeof(bits));
  char line[112];
  std::snprintf(line, sizeof(line), "%llu,%d,%d,%lld,%llu,%016llx\n",
                static_cast<unsigned long long>(ev.session), ev.cycle,
                ev.prediction, static_cast<long long>(ev.ingest_tick),
                static_cast<unsigned long long>(ev.model_version),
                static_cast<unsigned long long>(bits));
  return line;
}

Workload::Workload(const monitor::MlMonitor& mon,
                   std::vector<sim::Trace> traces, WorkloadConfig config)
    : monitor_(mon), traces_(std::move(traces)), config_(config) {
  expects(!traces_.empty(), "workload: need at least one trace");
  for (const sim::Trace& trace : traces_) {
    expects(!trace.steps.empty(), "workload: traces must be non-empty");
  }
  expects(config_.ticks > 0, "workload: ticks must be positive");
  expects(config_.swap_every >= 0, "workload: swap_every must be >= 0");
  validate(config_.traffic);
}

void Workload::set_swap_pool(std::vector<const monitor::MlMonitor*> pool) {
  for (const monitor::MlMonitor* mon : pool) {
    expects(mon != nullptr && mon->trained(),
            "workload: swap pool monitors must be trained");
  }
  swap_pool_ = std::move(pool);
}

const sim::StepRecord& Workload::record_for(serve::SessionId id,
                                            std::int64_t t) const {
  // Pure in (id, t): independent of join history, so every run of the
  // same config — serial, pooled, TTL on/off — replays identical bytes.
  const auto& steps = traces_[static_cast<std::size_t>(
                                  id % traces_.size())]
                          .steps;
  const auto idx = static_cast<std::size_t>(
      (id + static_cast<std::uint64_t>(t)) % steps.size());
  return steps[idx];
}

WorkloadReport Workload::run(
    std::span<const EvictionEvent> forced_closes) const {
  serve::Engine engine(monitor_, config_.engine);
  SessionChurner churner(config_.traffic, config_.seed,
                         config_.first_session_id);
  InvariantChecker checker(
      config_.engine.window,
      static_cast<std::size_t>(config_.engine.shards) *
          static_cast<std::size_t>(config_.engine.queue_capacity),
      config_.engine.shards);

  WorkloadReport report;
  obs::Sha256 stream_hash;
  std::size_t forced_next = 0;
  const auto started = Clock::now();

  for (std::int64_t t = 0; t < config_.ticks; ++t) {
    // Periodic hot swap: staged here, activated inside this cycle's tick()
    // (the epoch boundary), so the swap point in the verdict stream is a
    // pure function of the config — identical serial or pooled. An empty
    // pool restages the workload's own monitor under the active version
    // (no-op swap: churns the swap machinery without changing the stream).
    if (config_.swap_every > 0 && t > 0 && t % config_.swap_every == 0) {
      if (swap_pool_.empty()) {
        engine.stage_model(monitor_, engine.active_version());
      } else {
        const auto idx = static_cast<std::size_t>(report.swaps) %
                         swap_pool_.size();
        engine.stage_model(*swap_pool_[idx], engine.active_version() + 1);
      }
      ++report.swaps;
    }
    const TickPlan plan = churner.plan(t);
    for (const serve::SessionId id : plan.closes) {
      // A graceful close can miss: the id may already be TTL-evicted (or
      // was never admitted because its every submit was rejected).
      if (engine.close_session(id)) checker.on_session_end(id);
    }
    for (const serve::SessionId id : plan.submits) {
      switch (engine.try_submit(id, record_for(id, t))) {
        case serve::SubmitStatus::kAccepted:
          checker.on_accepted(id);
          ++report.accepted;
          break;
        case serve::SubmitStatus::kRejectedQueueFull:
          // Reject-with-typed-error contract: the session window did not
          // advance; this cycle's record is simply shed.
          ++report.rejected_queue_full;
          break;
        case serve::SubmitStatus::kRejectedSessionLimit:
          ++report.rejected_session_limit;
          break;
      }
    }
    checker.on_queue_depth(engine.queue_depth());

    const std::int64_t drain_tick = engine.ticks();
    const std::vector<serve::VerdictEvent> events = engine.tick();
    for (const serve::VerdictEvent& ev : events) {
      const std::string line = format_verdict(ev);
      stream_hash.update(line.data(), line.size());
      if (config_.record_stream) report.stream += line;
    }
    report.verdicts += events.size();
    if (config_.check_invariants) {
      checker.on_verdicts(events, drain_tick);
    }
    for (const serve::SessionId id : engine.evicted_last_tick()) {
      report.eviction_log.push_back(EvictionEvent{drain_tick, id});
      ++report.evictions;
      checker.on_session_end(id);
    }
    // The TTL-equivalence oracle: replay another run's evictions as
    // explicit closes at the same tick boundary. Applied after the tick
    // (where that run's engine evicted them) and before the next cycle's
    // submits, which is the only ordering the sessions can observe.
    while (forced_next < forced_closes.size() &&
           forced_closes[forced_next].tick <= drain_tick) {
      const serve::SessionId id = forced_closes[forced_next++].id;
      if (engine.close_session(id)) checker.on_session_end(id);
    }
    if (config_.check_invariants) checker.on_tick_complete(engine.queue_depth());
  }
  if (config_.check_invariants) checker.finish(engine.queue_depth());
  report.seconds = std::chrono::duration<double>(Clock::now() - started).count();

  const std::array<std::uint8_t, 32> digest = stream_hash.digest();
  static constexpr char kHex[] = "0123456789abcdef";
  report.stream_sha256.reserve(64);
  for (const std::uint8_t byte : digest) {
    report.stream_sha256.push_back(kHex[byte >> 4]);
    report.stream_sha256.push_back(kHex[byte & 0xf]);
  }

  const ChurnStats& churn = churner.stats();
  report.distinct_sessions = churn.distinct_sessions();
  report.joins = churn.joins;
  report.rejoins = churn.rejoins;
  report.closes = churn.closes;
  report.abandons = churn.abandons;
  report.peak_active = churn.peak_active;
  report.max_queue_depth = checker.max_queue_depth();
  report.latency_counts = checker.latency_counts();
  report.final_stats = engine.stats();
  return report;
}

}  // namespace cpsguard::loadgen

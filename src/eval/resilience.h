// Resilience metrics for the degraded-mode monitoring runtime: availability,
// time-in-fallback, detection quality versus the hazard oracle per
// degradation regime, and recovery latency. The evaluator consumes per-cycle
// outcomes produced by any runtime (raw OnlineMonitor, ResilientMonitor, or
// the rule-only baseline) so the three can be compared on equal footing.
#pragma once

#include <span>

#include "eval/metrics.h"
#include "sim/trace.h"

namespace cpsguard::eval {

/// Which path produced the verdict of one cycle.
enum class Regime : int {
  kMl = 0,       // ML inference on a clean window
  kFallback,     // knowledge-driven rule fallback
  kFailSafe,     // alarm-on (no trustworthy input)
};

/// One cycle of a monitoring run, as reported by the runtime harness.
struct StepOutcome {
  int prediction = 0;     // 1 = unsafe
  bool ready = false;     // the runtime emitted a verdict this cycle
  bool available = false; // the verdict is trustworthy (uncorrupted inputs
                          // for the ML path, or a rule verdict on a valid
                          // context) — the harness decides, since only it
                          // knows which cycles were corrupted
  Regime regime = Regime::kMl;
  bool sample_valid = true;  // this cycle's input passed validation
};

struct ResilienceReport {
  long cycles = 0;
  long cycles_ml = 0;
  long cycles_fallback = 0;
  long cycles_fail_safe = 0;
  long cycles_unready = 0;
  long available_cycles = 0;
  long invalid_samples = 0;
  // Filled by the harness from runtime telemetry (the evaluator cannot see
  // state-machine internals):
  long fallback_entries = 0;
  long recoveries = 0;
  long recovery_latency_sum = 0;

  ConfusionCounts overall;         // every cycle; unready counts as negative
  ConfusionCounts ml_regime;       // ready cycles served by the ML path
  ConfusionCounts fallback_regime; // ready cycles served by the rule base

  /// Fraction of cycles with a trustworthy verdict.
  [[nodiscard]] double availability() const;
  /// Fraction of cycles served by the rule fallback.
  [[nodiscard]] double time_in_fallback() const;
  /// Fraction of cycles spent alarm-on.
  [[nodiscard]] double time_in_fail_safe() const;
  /// Mean cycles from losing the ML path to re-arming it (0 if never).
  [[nodiscard]] double mean_recovery_latency() const;

  ResilienceReport& operator+=(const ResilienceReport& other);
};

/// Score one monitored trace against the hazard oracle: the label of cycle t
/// is "a hazard (true-BG out of the safe band) occurs within [t, t+delta]" —
/// an alarm up to `tolerance_delta` cycles ahead of the hazard is a correct
/// alarm, mirroring the Table II tolerance-window semantics.
/// `outcomes` must have one entry per trace step.
ResilienceReport evaluate_resilience(const sim::Trace& trace,
                                     std::span<const StepOutcome> outcomes,
                                     int tolerance_delta);

}  // namespace cpsguard::eval

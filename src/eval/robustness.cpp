#include "eval/robustness.h"

#include "util/contracts.h"

namespace cpsguard::eval {

double robustness_error(std::span<const int> clean,
                        std::span<const int> perturbed) {
  expects(clean.size() == perturbed.size(), "prediction size mismatch");
  if (clean.empty()) return 0.0;
  std::size_t flips = 0;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    flips += (clean[i] != perturbed[i]) ? 1u : 0u;
  }
  return static_cast<double>(flips) / static_cast<double>(clean.size());
}

double robustness_error_for_class(std::span<const int> clean,
                                  std::span<const int> perturbed, int cls) {
  expects(clean.size() == perturbed.size(), "prediction size mismatch");
  std::size_t flips = 0, members = 0;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    if (clean[i] != cls) continue;
    ++members;
    flips += (clean[i] != perturbed[i]) ? 1u : 0u;
  }
  return members == 0 ? 0.0
                      : static_cast<double>(flips) / static_cast<double>(members);
}

}  // namespace cpsguard::eval

#include "eval/resilience.h"

#include "util/contracts.h"

namespace cpsguard::eval {

double ResilienceReport::availability() const {
  if (cycles == 0) return 0.0;
  return static_cast<double>(available_cycles) / static_cast<double>(cycles);
}

double ResilienceReport::time_in_fallback() const {
  if (cycles == 0) return 0.0;
  return static_cast<double>(cycles_fallback) / static_cast<double>(cycles);
}

double ResilienceReport::time_in_fail_safe() const {
  if (cycles == 0) return 0.0;
  return static_cast<double>(cycles_fail_safe) / static_cast<double>(cycles);
}

double ResilienceReport::mean_recovery_latency() const {
  if (recoveries == 0) return 0.0;
  return static_cast<double>(recovery_latency_sum) /
         static_cast<double>(recoveries);
}

ResilienceReport& ResilienceReport::operator+=(const ResilienceReport& other) {
  cycles += other.cycles;
  cycles_ml += other.cycles_ml;
  cycles_fallback += other.cycles_fallback;
  cycles_fail_safe += other.cycles_fail_safe;
  cycles_unready += other.cycles_unready;
  available_cycles += other.available_cycles;
  invalid_samples += other.invalid_samples;
  fallback_entries += other.fallback_entries;
  recoveries += other.recoveries;
  recovery_latency_sum += other.recovery_latency_sum;
  overall += other.overall;
  ml_regime += other.ml_regime;
  fallback_regime += other.fallback_regime;
  return *this;
}

namespace {

void count(ConfusionCounts& c, int label, int prediction) {
  if (label == 1) {
    prediction == 1 ? ++c.tp : ++c.fn;
  } else {
    prediction == 1 ? ++c.fp : ++c.tn;
  }
}

}  // namespace

ResilienceReport evaluate_resilience(const sim::Trace& trace,
                                     std::span<const StepOutcome> outcomes,
                                     int tolerance_delta) {
  expects(static_cast<int>(outcomes.size()) == trace.length(),
                "one outcome per trace step required");
  expects(tolerance_delta >= 0, "tolerance must be non-negative");

  ResilienceReport report;
  for (int t = 0; t < trace.length(); ++t) {
    const StepOutcome& o = outcomes[static_cast<std::size_t>(t)];
    ++report.cycles;
    if (o.available) ++report.available_cycles;
    if (!o.sample_valid) ++report.invalid_samples;
    if (!o.ready) {
      ++report.cycles_unready;
      // No verdict emitted: scored as "no alarm" against the oracle.
      count(report.overall, sim::hazard_within(trace, t, t + tolerance_delta), 0);
      continue;
    }
    const int label = sim::hazard_within(trace, t, t + tolerance_delta) ? 1 : 0;
    count(report.overall, label, o.prediction);
    switch (o.regime) {
      case Regime::kMl:
        ++report.cycles_ml;
        count(report.ml_regime, label, o.prediction);
        break;
      case Regime::kFallback:
        ++report.cycles_fallback;
        count(report.fallback_regime, label, o.prediction);
        break;
      case Regime::kFailSafe:
        ++report.cycles_fail_safe;
        break;
    }
  }
  return report;
}

}  // namespace cpsguard::eval

// Extended evaluation beyond the paper's ACC/F1/robustness-error: threshold-
// free ranking quality (ROC-AUC), alarm lead time before hazard onset (what
// a mitigation system actually needs), and per-hazard-type recall (H1
// hypoglycemia vs H2 hyperglycemia are clinically very different misses).
#pragma once

#include <span>
#include <vector>

#include "eval/metrics.h"
#include "monitor/dataset.h"
#include "safety/hazard.h"

namespace cpsguard::eval {

/// Area under the ROC curve via the rank statistic (ties get half credit).
/// `scores` are P(unsafe); `labels` the binary ground truth. Returns 0.5
/// when either class is empty.
double roc_auc(std::span<const double> scores, std::span<const int> labels);

/// One hazard episode (maximal run of hazardous true-BG steps) and how the
/// monitor handled it.
struct EpisodeOutcome {
  int trace_index = 0;
  int hazard_onset = 0;   // first hazardous step of the episode
  int first_alarm = -1;   // earliest alarm in [onset - max_lead, onset]; -1 = missed

  [[nodiscard]] bool detected() const { return first_alarm >= 0; }
  [[nodiscard]] int lead_steps() const {
    return detected() ? hazard_onset - first_alarm : -1;
  }
};

/// Match per-window predictions against hazard episodes of the test traces.
/// `max_lead` bounds how early an alarm may claim an episode (in cycles).
std::vector<EpisodeOutcome> detection_latencies(
    const monitor::Dataset& ds, std::span<const int> predictions,
    std::span<const sim::Trace> traces, int max_lead);

struct LatencySummary {
  int episodes = 0;
  int detected = 0;
  double detection_rate = 0.0;
  double mean_lead_minutes = 0.0;    // over detected episodes
  double median_lead_minutes = 0.0;  // over detected episodes
};

LatencySummary summarize_latencies(std::span<const EpisodeOutcome> outcomes);

/// Recall split by the hazard type that makes a window ground-truth
/// positive (the first hazard within [t, t+δ] on the true state).
struct HazardBreakdown {
  long h1_positives = 0;  // hypoglycemia-bound windows
  long h1_detected = 0;
  long h2_positives = 0;  // hyperglycemia-bound windows
  long h2_detected = 0;

  [[nodiscard]] double h1_recall() const;
  [[nodiscard]] double h2_recall() const;
};

HazardBreakdown hazard_breakdown(const monitor::Dataset& ds,
                                 std::span<const int> predictions,
                                 std::span<const sim::Trace> traces);

}  // namespace cpsguard::eval

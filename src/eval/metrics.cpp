#include "eval/metrics.h"

#include <algorithm>
#include <sstream>

#include "util/contracts.h"

namespace cpsguard::eval {

double ConfusionCounts::accuracy() const {
  const long t = total();
  return t == 0 ? 0.0 : static_cast<double>(tp + tn) / static_cast<double>(t);
}

double ConfusionCounts::precision() const {
  const long denom = tp + fp;
  return denom == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(denom);
}

double ConfusionCounts::recall() const {
  const long denom = tp + fn;
  return denom == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(denom);
}

double ConfusionCounts::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

ConfusionCounts& ConfusionCounts::operator+=(const ConfusionCounts& other) {
  tp += other.tp;
  fp += other.fp;
  tn += other.tn;
  fn += other.fn;
  return *this;
}

std::string ConfusionCounts::summary() const {
  std::ostringstream os;
  os << "tp=" << tp << " fp=" << fp << " tn=" << tn << " fn=" << fn
     << " acc=" << accuracy() << " f1=" << f1();
  return os.str();
}

ConfusionCounts evaluate_with_tolerance(const monitor::Dataset& ds,
                                        std::span<const int> predictions,
                                        int tolerance_delta) {
  expects(predictions.size() == static_cast<std::size_t>(ds.size()),
          "one prediction per window required");
  expects(tolerance_delta >= 0, "tolerance must be non-negative");

  // Index predictions by (trace, step): -1 marks "no window ends here".
  std::vector<std::vector<int>> pred_at(ds.trace_labels.size());
  for (std::size_t tr = 0; tr < ds.trace_labels.size(); ++tr) {
    pred_at[tr].assign(ds.trace_labels[tr].size(), -1);
  }
  for (int i = 0; i < ds.size(); ++i) {
    const auto si = static_cast<std::size_t>(i);
    pred_at[static_cast<std::size_t>(ds.trace_id[si])]
           [static_cast<std::size_t>(ds.step_index[si])] = predictions[si];
  }

  ConfusionCounts counts;
  for (int i = 0; i < ds.size(); ++i) {
    const auto si = static_cast<std::size_t>(i);
    const auto tr = static_cast<std::size_t>(ds.trace_id[si]);
    const int t = ds.step_index[si];
    const auto& g = ds.trace_labels[tr];
    const auto& p = pred_at[tr];
    const int n = static_cast<int>(g.size());

    // Ground truth positive within the forward tolerance window [t, t+δ]?
    // `g_step` is the first such step — the anchor of Table II's δ window.
    int g_step = -1;
    for (int u = t; u <= std::min(t + tolerance_delta, n - 1); ++u) {
      if (g[static_cast<std::size_t>(u)] > 0) {
        g_step = u;
        break;
      }
    }

    if (g_step >= 0) {
      // Table II credits any alarm inside the δ window that *ends at the
      // positive ground truth and includes t*: [g_step - δ, g_step].
      bool alarmed = false;
      for (int u = std::max(0, g_step - tolerance_delta); u <= g_step; ++u) {
        if (p[static_cast<std::size_t>(u)] > 0) {
          alarmed = true;
          break;
        }
      }
      if (alarmed) {
        ++counts.tp;
      } else {
        ++counts.fn;
      }
    } else {
      if (predictions[si] > 0) {
        ++counts.fp;
      } else {
        ++counts.tn;
      }
    }
  }
  return counts;
}

ConfusionCounts evaluate_samplewise(std::span<const int> labels,
                                    std::span<const int> predictions) {
  expects(labels.size() == predictions.size(), "label/prediction size mismatch");
  ConfusionCounts counts;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const bool y = labels[i] > 0;
    const bool p = predictions[i] > 0;
    if (y && p) ++counts.tp;
    if (y && !p) ++counts.fn;
    if (!y && p) ++counts.fp;
    if (!y && !p) ++counts.tn;
  }
  return counts;
}

}  // namespace cpsguard::eval

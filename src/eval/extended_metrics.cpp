#include "eval/extended_metrics.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"
#include "util/stats.h"

namespace cpsguard::eval {

double roc_auc(std::span<const double> scores, std::span<const int> labels) {
  expects(scores.size() == labels.size(), "one score per label required");
  // Same NaN policy as pr_curve.h: a NaN score breaks the sort comparator's
  // strict weak ordering (UB) and has no defensible rank — reject it.
  for (const double s : scores) {
    expects(!std::isnan(s), "NaN score has no rank; reject upstream");
  }
  // Rank-sum (Mann-Whitney U) formulation with midranks for ties.
  std::vector<std::size_t> order(scores.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });

  double rank_sum_pos = 0.0;
  std::size_t positives = 0;
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double midrank = 0.5 * (static_cast<double>(i) + static_cast<double>(j)) + 1.0;
    for (std::size_t k = i; k <= j; ++k) {
      if (labels[order[k]] > 0) {
        rank_sum_pos += midrank;
        ++positives;
      }
    }
    i = j + 1;
  }
  const std::size_t negatives = scores.size() - positives;
  if (positives == 0 || negatives == 0) return 0.5;
  const double u = rank_sum_pos - static_cast<double>(positives) *
                                      (static_cast<double>(positives) + 1.0) / 2.0;
  return u / (static_cast<double>(positives) * static_cast<double>(negatives));
}

std::vector<EpisodeOutcome> detection_latencies(
    const monitor::Dataset& ds, std::span<const int> predictions,
    std::span<const sim::Trace> traces, int max_lead) {
  expects(predictions.size() == static_cast<std::size_t>(ds.size()),
          "one prediction per window required");
  expects(traces.size() == ds.trace_labels.size(),
          "traces must match the dataset's trace set");
  expects(max_lead >= 0, "max lead must be non-negative");

  // Index predictions by (trace, step).
  std::vector<std::vector<int>> pred_at(traces.size());
  for (std::size_t tr = 0; tr < traces.size(); ++tr) {
    pred_at[tr].assign(static_cast<std::size_t>(traces[tr].length()), 0);
  }
  for (int i = 0; i < ds.size(); ++i) {
    const auto si = static_cast<std::size_t>(i);
    pred_at[static_cast<std::size_t>(ds.trace_id[si])]
           [static_cast<std::size_t>(ds.step_index[si])] = predictions[si];
  }

  std::vector<EpisodeOutcome> outcomes;
  for (std::size_t tr = 0; tr < traces.size(); ++tr) {
    const sim::Trace& trace = traces[tr];
    bool in_episode = false;
    for (int t = 0; t < trace.length(); ++t) {
      const bool hazardous = sim::in_hazard(trace.steps[static_cast<std::size_t>(t)]);
      if (hazardous && !in_episode) {
        EpisodeOutcome ep;
        ep.trace_index = static_cast<int>(tr);
        ep.hazard_onset = t;
        for (int u = std::max(0, t - max_lead); u <= t; ++u) {
          if (pred_at[tr][static_cast<std::size_t>(u)] > 0) {
            ep.first_alarm = u;
            break;
          }
        }
        outcomes.push_back(ep);
      }
      in_episode = hazardous;
    }
  }
  return outcomes;
}

LatencySummary summarize_latencies(std::span<const EpisodeOutcome> outcomes) {
  LatencySummary s;
  s.episodes = static_cast<int>(outcomes.size());
  std::vector<double> leads;
  for (const auto& ep : outcomes) {
    if (ep.detected()) {
      ++s.detected;
      leads.push_back(ep.lead_steps() * sim::kControlPeriodMin);
    }
  }
  s.detection_rate =
      s.episodes == 0 ? 0.0 : static_cast<double>(s.detected) / s.episodes;
  if (!leads.empty()) {
    s.mean_lead_minutes = util::mean(leads);
    s.median_lead_minutes = util::quantile(leads, 0.5);
  }
  return s;
}

double HazardBreakdown::h1_recall() const {
  return h1_positives == 0
             ? 0.0
             : static_cast<double>(h1_detected) / static_cast<double>(h1_positives);
}

double HazardBreakdown::h2_recall() const {
  return h2_positives == 0
             ? 0.0
             : static_cast<double>(h2_detected) / static_cast<double>(h2_positives);
}

HazardBreakdown hazard_breakdown(const monitor::Dataset& ds,
                                 std::span<const int> predictions,
                                 std::span<const sim::Trace> traces) {
  expects(predictions.size() == static_cast<std::size_t>(ds.size()),
          "one prediction per window required");
  expects(traces.size() == ds.trace_labels.size(),
          "traces must match the dataset's trace set");

  HazardBreakdown out;
  const int horizon = ds.config.horizon;
  for (int i = 0; i < ds.size(); ++i) {
    const auto si = static_cast<std::size_t>(i);
    if (ds.labels[si] == 0) continue;
    const sim::Trace& trace = traces[static_cast<std::size_t>(ds.trace_id[si])];
    const int t = ds.step_index[si];
    // The hazard that made this window positive: the first hazardous step
    // within the label horizon.
    safety::HazardType type = safety::HazardType::kNone;
    for (int u = t; u <= std::min(t + horizon, trace.length() - 1); ++u) {
      type = safety::hazard_at(trace.steps[static_cast<std::size_t>(u)]);
      if (type != safety::HazardType::kNone) break;
    }
    const bool detected = predictions[si] > 0;
    if (type == safety::HazardType::kH1TooMuchInsulin) {
      ++out.h1_positives;
      out.h1_detected += detected ? 1 : 0;
    } else if (type == safety::HazardType::kH2TooLittleInsulin) {
      ++out.h2_positives;
      out.h2_detected += detected ? 1 : 0;
    }
  }
  return out;
}

}  // namespace cpsguard::eval

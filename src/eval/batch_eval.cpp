#include "eval/batch_eval.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

#include "util/contracts.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace cpsguard::eval {

namespace {

// Chunked fan-out is only worth the clone cost (scaler + full weight copy
// per chunk) when several chunks can actually run concurrently. Consults
// the *configured* parallelism only: a caller doing serial single-window
// predictions must never cause the process-wide pool to spawn its workers
// (parallel_for instantiates it lazily iff we actually fan out).
bool worth_chunking(int batch, int chunk) {
  return batch > 2 * chunk && util::effective_parallelism() > 1 &&
         !util::in_parallel_region();
}

}  // namespace

int argmax_row(std::span<const float> probs) {
  expects(!probs.empty(), "argmax over an empty probability row");
  int best = 0;
  for (int c = 0; c < static_cast<int>(probs.size()); ++c) {
    const float v = probs[static_cast<std::size_t>(c)];
    if (std::isnan(v)) {
      throw CpsError("batched_predict: NaN probability at class " +
                     std::to_string(c) +
                     " — NaN inputs must be rejected upstream (PR 5 NaN "
                     "policy), not classified");
    }
    if (v > probs[static_cast<std::size_t>(best)]) best = c;
  }
  return best;
}

namespace {

nn::Matrix batched_proba_impl(monitor::MlMonitor& mon,
                              const nn::Tensor3& windows, int chunk,
                              bool prescaled) {
  expects(mon.trained(), "monitor not trained");
  expects(chunk > 0, "chunk size must be positive");
  const auto one_call = [&](monitor::MlMonitor& m, const nn::Tensor3& x) {
    return prescaled ? m.predict_proba_scaled(x) : m.predict_proba(x);
  };
  const int batch = windows.batch();
  if (!worth_chunking(batch, chunk)) return one_call(mon, windows);

  const int chunks = (batch + chunk - 1) / chunk;
  std::vector<nn::Matrix> parts(static_cast<std::size_t>(chunks));
  util::parallel_for(chunks, [&](int c) {
    const int b0 = c * chunk;
    const int b1 = std::min(batch, b0 + chunk);
    std::vector<int> idx(static_cast<std::size_t>(b1 - b0));
    std::iota(idx.begin(), idx.end(), b0);
    const std::unique_ptr<monitor::MlMonitor> local = mon.clone();
    parts[static_cast<std::size_t>(c)] = one_call(*local, windows.gather(idx));
  });

  const int classes = parts.front().cols();
  nn::Matrix out(batch, classes);
  int row = 0;
  for (const nn::Matrix& part : parts) {
    for (int r = 0; r < part.rows(); ++r, ++row) {
      std::copy(part.row(r).begin(), part.row(r).end(), out.row(row).begin());
    }
  }
  ensures(row == batch, "stitched row count must match the batch");
  return out;
}

}  // namespace

nn::Matrix batched_predict_proba(monitor::MlMonitor& mon,
                                 const nn::Tensor3& raw_windows,
                                 int chunk) {
  return batched_proba_impl(mon, raw_windows, chunk, /*prescaled=*/false);
}

nn::Matrix batched_predict_proba_scaled(monitor::MlMonitor& mon,
                                        const nn::Tensor3& scaled_windows,
                                        int chunk) {
  return batched_proba_impl(mon, scaled_windows, chunk, /*prescaled=*/true);
}

std::vector<int> batched_predict(monitor::MlMonitor& mon,
                                 const nn::Tensor3& raw_windows,
                                 int chunk) {
  const nn::Matrix probs = batched_predict_proba(mon, raw_windows, chunk);
  std::vector<int> out(static_cast<std::size_t>(probs.rows()));
  for (int r = 0; r < probs.rows(); ++r) {
    try {
      out[static_cast<std::size_t>(r)] = argmax_row(probs.row(r));
    } catch (const CpsError& e) {
      throw CpsError("batched_predict: window " + std::to_string(r) + ": " +
                     e.what());
    }
  }
  return out;
}

}  // namespace cpsguard::eval

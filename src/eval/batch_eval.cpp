#include "eval/batch_eval.h"

#include <algorithm>
#include <numeric>

#include "util/contracts.h"
#include "util/thread_pool.h"

namespace cpsguard::eval {

namespace {

// Chunked fan-out is only worth the clone cost (scaler + full weight copy
// per chunk) when several chunks can actually run concurrently.
bool worth_chunking(int batch, int chunk) {
  return batch > 2 * chunk && util::shared_pool().size() > 1 &&
         !util::in_parallel_region();
}

}  // namespace

nn::Matrix batched_predict_proba(monitor::MlMonitor& mon,
                                 const nn::Tensor3& raw_windows,
                                 int chunk) {
  expects(mon.trained(), "monitor not trained");
  expects(chunk > 0, "chunk size must be positive");
  const int batch = raw_windows.batch();
  if (!worth_chunking(batch, chunk)) return mon.predict_proba(raw_windows);

  const int chunks = (batch + chunk - 1) / chunk;
  std::vector<nn::Matrix> parts(static_cast<std::size_t>(chunks));
  util::parallel_for(chunks, [&](int c) {
    const int b0 = c * chunk;
    const int b1 = std::min(batch, b0 + chunk);
    std::vector<int> idx(static_cast<std::size_t>(b1 - b0));
    std::iota(idx.begin(), idx.end(), b0);
    const std::unique_ptr<monitor::MlMonitor> local = mon.clone();
    parts[static_cast<std::size_t>(c)] =
        local->predict_proba(raw_windows.gather(idx));
  });

  const int classes = parts.front().cols();
  nn::Matrix out(batch, classes);
  int row = 0;
  for (const nn::Matrix& part : parts) {
    for (int r = 0; r < part.rows(); ++r, ++row) {
      std::copy(part.row(r).begin(), part.row(r).end(), out.row(row).begin());
    }
  }
  ensures(row == batch, "stitched row count must match the batch");
  return out;
}

std::vector<int> batched_predict(monitor::MlMonitor& mon,
                                 const nn::Tensor3& raw_windows,
                                 int chunk) {
  const nn::Matrix probs = batched_predict_proba(mon, raw_windows, chunk);
  std::vector<int> out(static_cast<std::size_t>(probs.rows()));
  for (int r = 0; r < probs.rows(); ++r) {
    const auto row = probs.row(r);
    int best = 0;
    for (int c = 1; c < probs.cols(); ++c) {
      if (row[static_cast<std::size_t>(c)] > row[static_cast<std::size_t>(best)]) {
        best = c;
      }
    }
    out[static_cast<std::size_t>(r)] = best;
  }
  return out;
}

}  // namespace cpsguard::eval

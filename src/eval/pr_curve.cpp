#include "eval/pr_curve.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace cpsguard::eval {

std::vector<PrPoint> precision_recall_curve(std::span<const double> scores,
                                            std::span<const int> labels) {
  expects(scores.size() == labels.size(), "one score per label required");
  expects(!scores.empty(), "empty input");
  // NaN policy (see header): reject before sorting — a NaN-laden comparator
  // breaks std::sort's strict weak ordering, which is UB.
  for (const double s : scores) {
    expects(!std::isnan(s), "NaN score has no rank; reject upstream");
  }

  std::vector<std::size_t> order(scores.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });

  long total_positives = 0;
  for (const int y : labels) total_positives += y > 0 ? 1 : 0;

  std::vector<PrPoint> curve;
  long tp = 0, fp = 0;
  std::size_t i = 0;
  while (i < order.size()) {
    // Consume all samples sharing this threshold before emitting a point.
    const double threshold = scores[order[i]];
    while (i < order.size() && scores[order[i]] == threshold) {
      if (labels[order[i]] > 0) {
        ++tp;
      } else {
        ++fp;
      }
      ++i;
    }
    PrPoint p;
    p.threshold = threshold;
    p.precision = static_cast<double>(tp) / static_cast<double>(tp + fp);
    p.recall = total_positives == 0
                   ? 0.0
                   : static_cast<double>(tp) / static_cast<double>(total_positives);
    curve.push_back(p);
  }
  return curve;
}

double average_precision(std::span<const double> scores,
                         std::span<const int> labels) {
  const auto curve = precision_recall_curve(scores, labels);
  double ap = 0.0;
  double prev_recall = 0.0;
  for (const auto& p : curve) {
    ap += (p.recall - prev_recall) * p.precision;
    prev_recall = p.recall;
  }
  return ap;
}

double best_f1_threshold(std::span<const double> scores,
                         std::span<const int> labels) {
  const auto curve = precision_recall_curve(scores, labels);
  double best_f1 = -1.0;
  double best_threshold = 0.5;
  for (const auto& p : curve) {
    if (p.precision + p.recall == 0.0) continue;
    const double f1 = 2.0 * p.precision * p.recall / (p.precision + p.recall);
    if (f1 > best_f1) {
      best_f1 = f1;
      best_threshold = p.threshold;
    }
  }
  return best_threshold;
}

}  // namespace cpsguard::eval

// Prediction-accuracy metrics with the paper's "Sample Level with Tolerance
// Window" semantics (Table II): a positive prediction anywhere in the δ
// window before a ground-truth-positive step counts as a true positive —
// an early alarm is a correct alarm.
#pragma once

#include <span>
#include <string>

#include "monitor/dataset.h"

namespace cpsguard::eval {

struct ConfusionCounts {
  long tp = 0;
  long fp = 0;
  long tn = 0;
  long fn = 0;

  [[nodiscard]] long total() const { return tp + fp + tn + fn; }
  [[nodiscard]] double accuracy() const;
  [[nodiscard]] double precision() const;
  [[nodiscard]] double recall() const;
  [[nodiscard]] double f1() const;

  ConfusionCounts& operator+=(const ConfusionCounts& other);

  [[nodiscard]] std::string summary() const;
};

/// Table II evaluation: `predictions` holds one prediction per dataset
/// window (aligned with ds.trace_id / ds.step_index); `tolerance_delta` is δ
/// in control cycles.
ConfusionCounts evaluate_with_tolerance(const monitor::Dataset& ds,
                                        std::span<const int> predictions,
                                        int tolerance_delta);

/// Plain per-sample confusion (δ = 0 with no look-back), for unit testing
/// and ablation against the tolerance-window metric.
ConfusionCounts evaluate_samplewise(std::span<const int> labels,
                                    std::span<const int> predictions);

}  // namespace cpsguard::eval

// Precision-recall analysis over monitor confidence scores: the PR curve
// and average precision (AP). On the heavily imbalanced side of safety
// monitoring (rare hazards), PR analysis is more informative than ROC.
//
// NaN policy (shared by every score-ranking routine in src/eval): a NaN
// score is rejected with a ContractViolation. NaN has no place in a
// ranking — `scores[a] > scores[b]` with NaN present violates std::sort's
// strict-weak-ordering requirement (UB, found by the fuzz differential
// oracle) — and a monitor emitting NaN confidence is an upstream bug that
// must fail loudly, not silently land somewhere in the curve. ±inf scores
// are legitimate totally-ordered values and are accepted.
#pragma once

#include <span>
#include <vector>

namespace cpsguard::eval {

struct PrPoint {
  double threshold = 0.0;  // classify unsafe when score >= threshold
  double precision = 0.0;
  double recall = 0.0;
};

/// PR curve over all distinct score thresholds, sorted by descending
/// threshold (recall non-decreasing along the vector).
std::vector<PrPoint> precision_recall_curve(std::span<const double> scores,
                                            std::span<const int> labels);

/// Average precision: Σ (R_i − R_{i−1}) · P_i over the curve.
double average_precision(std::span<const double> scores,
                         std::span<const int> labels);

/// The threshold maximizing F1 on the given scores/labels — used to
/// calibrate a monitor's decision threshold on validation data.
double best_f1_threshold(std::span<const double> scores,
                         std::span<const int> labels);

}  // namespace cpsguard::eval

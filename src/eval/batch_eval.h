// Batched monitor inference for large evaluation sets: splits the window
// batch into contiguous chunks and runs them across the shared thread pool.
//
// Determinism: every per-window forward pass is independent of its batch
// neighbours (matmul rows, ReLU, softmax and the recurrent time loops are
// all row-local), so a chunked run produces bit-identical probabilities to
// one full-batch call. Classifier forward passes mutate layer caches, so
// each parallel chunk works on its own MlMonitor clone.
#pragma once

#include <span>
#include <vector>

#include "monitor/ml_monitor.h"
#include "nn/matrix.h"
#include "nn/tensor3.h"

namespace cpsguard::eval {

/// Argmax of one probability row under the classification contract shared
/// with MlMonitor::predict / nn::predict_classes:
///   - ties break to the SMALLEST class index (strict `>` scan), so an
///     exactly-tied binary row classifies as the safe class 0;
///   - a NaN anywhere in the row throws CpsError instead of silently
///     winning or losing every comparison (the PR 5 NaN policy: reject by
///     contract, never accept-then-misclassify).
int argmax_row(std::span<const float> probs);

/// Class probabilities for every window, computed chunk-parallel.
/// Bit-identical to `mon.predict_proba(raw_windows)`.
nn::Matrix batched_predict_proba(monitor::MlMonitor& mon,
                                 const nn::Tensor3& raw_windows,
                                 int chunk = 512);

/// Same, for windows already in the scaled model space (the streaming
/// engine scales each record once at ingest instead of rescaling it in
/// every overlapping window). Bit-identical to
/// `mon.predict_proba_scaled(scaled_windows)`.
nn::Matrix batched_predict_proba_scaled(monitor::MlMonitor& mon,
                                        const nn::Tensor3& scaled_windows,
                                        int chunk = 512);

/// Argmax classes for every window, computed chunk-parallel via
/// argmax_row: bit-identical to `mon.predict(raw_windows)` on NaN-free
/// probabilities, CpsError when any window's probabilities contain NaN.
std::vector<int> batched_predict(monitor::MlMonitor& mon,
                                 const nn::Tensor3& raw_windows,
                                 int chunk = 512);

}  // namespace cpsguard::eval

// Batched monitor inference for large evaluation sets: splits the window
// batch into contiguous chunks and runs them across the shared thread pool.
//
// Determinism: every per-window forward pass is independent of its batch
// neighbours (matmul rows, ReLU, softmax and the recurrent time loops are
// all row-local), so a chunked run produces bit-identical probabilities to
// one full-batch call. Classifier forward passes mutate layer caches, so
// each parallel chunk works on its own MlMonitor clone.
#pragma once

#include <vector>

#include "monitor/ml_monitor.h"
#include "nn/matrix.h"
#include "nn/tensor3.h"

namespace cpsguard::eval {

/// Class probabilities for every window, computed chunk-parallel.
/// Bit-identical to `mon.predict_proba(raw_windows)`.
nn::Matrix batched_predict_proba(monitor::MlMonitor& mon,
                                 const nn::Tensor3& raw_windows,
                                 int chunk = 512);

/// Argmax classes for every window, computed chunk-parallel.
/// Bit-identical to `mon.predict(raw_windows)`.
std::vector<int> batched_predict(monitor::MlMonitor& mon,
                                 const nn::Tensor3& raw_windows,
                                 int chunk = 512);

}  // namespace cpsguard::eval

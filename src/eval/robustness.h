// Prediction robustness error (Eq. 5 of the paper): the fraction of samples
// whose predicted class flips when the input is perturbed.
#pragma once

#include <span>

namespace cpsguard::eval {

/// Eq. 5: |{i : f(x_i) != f(x_i + Δ)}| / N.
double robustness_error(std::span<const int> clean_predictions,
                        std::span<const int> perturbed_predictions);

/// Per-class variant: flips among samples whose *clean* prediction was
/// `cls`, over the count of such samples. Useful for diagnosing whether an
/// attack mostly suppresses alarms (unsafe→safe) or fabricates them.
double robustness_error_for_class(std::span<const int> clean_predictions,
                                  std::span<const int> perturbed_predictions,
                                  int cls);

}  // namespace cpsguard::eval

#include "core/experiment.h"

#include "core/online_monitor.h"
#include "monitor/features.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "obs/events.h"
#include "obs/sha256.h"
#include "obs/span.h"
#include "registry/registry.h"
#include "util/chaos.h"
#include "util/contracts.h"
#include "util/deadline.h"
#include "util/logging.h"
#include "util/retry.h"
#include "util/thread_pool.h"

namespace cpsguard::core {

namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Per-architecture seed tag: every arch must map to a *distinct* value or
// variants silently share weight-init streams (GRU used to collide with
// MLP because only kLstm carried a tag). The MLP/LSTM values are frozen to
// their historical constants so existing caches and CSVs stay bit-identical.
std::uint64_t arch_seed_tag(monitor::Arch arch) {
  switch (arch) {
    case monitor::Arch::kMlp: return 0ULL;            // historical: untagged
    case monitor::Arch::kLstm: return 0xBEEF0000ULL;  // historical LSTM tag
    case monitor::Arch::kGru: return 0x47525500ULL;   // 'GRU\0'
  }
  return 0ULL;
}

std::string hex_u64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::uint64_t double_bits(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

// Checkpoint payload for one sweep point. robustness_err is stored as its
// IEEE-754 bit pattern so resumed points round-trip bit-exactly — the whole
// byte-identical-CSV guarantee hinges on it.
std::string encode_eval(const EvalResult& r) {
  std::ostringstream os;
  os << "eval|tp=" << r.confusion.tp << "|fp=" << r.confusion.fp
     << "|tn=" << r.confusion.tn << "|fn=" << r.confusion.fn
     << "|rerr_bits=" << hex_u64(double_bits(r.robustness_err));
  return os.str();
}

std::optional<EvalResult> decode_eval(const std::string& payload) {
  long tp = 0;
  long fp = 0;
  long tn = 0;
  long fn = 0;
  unsigned long long bits = 0;
  if (std::sscanf(payload.c_str(),
                  "eval|tp=%ld|fp=%ld|tn=%ld|fn=%ld|rerr_bits=%16llx", &tp, &fp,
                  &tn, &fn, &bits) != 5) {
    return std::nullopt;
  }
  EvalResult r;
  r.confusion.tp = tp;
  r.confusion.fp = fp;
  r.confusion.tn = tn;
  r.confusion.fn = fn;
  const auto b = static_cast<std::uint64_t>(bits);
  std::memcpy(&r.robustness_err, &b, sizeof r.robustness_err);
  return r;
}

}  // namespace

std::vector<sim::Trace> generate_campaign(const CampaignConfig& config) {
  expects(config.patients > 0 && config.sims_per_patient > 0, "bad campaign");
  expects(config.fault_fraction >= 0.0 && config.fault_fraction <= 1.0,
          "fault fraction must be in [0,1]");

  const obs::ScopedSpan span("campaign.generate");
  CPSGUARD_OBS_EVENT("campaign.generate",
                     obs::f("testbed", sim::to_string(config.testbed)),
                     obs::f("patients", config.patients),
                     obs::f("sims_per_patient", config.sims_per_patient));

  const auto profiles =
      sim::testbed_profiles(config.testbed, config.patients, config.seed);
  std::vector<std::vector<sim::Trace>> per_patient(
      static_cast<std::size_t>(config.patients));

  // Derive independent per-patient RNG streams up front so the parallel
  // loop stays deterministic regardless of scheduling.
  util::Rng root(config.seed, 0x43414d50u /* 'CAMP' */);
  std::vector<util::Rng> patient_rngs;
  patient_rngs.reserve(static_cast<std::size_t>(config.patients));
  for (int p = 0; p < config.patients; ++p) patient_rngs.push_back(root.split());

  util::parallel_for(config.patients, [&](int p) {
    util::Rng rng = patient_rngs[static_cast<std::size_t>(p)];
    auto patient = sim::make_patient(config.testbed);
    auto controller = sim::make_controller(config.testbed);
    auto& out = per_patient[static_cast<std::size_t>(p)];
    out.reserve(static_cast<std::size_t>(config.sims_per_patient));
    for (int s = 0; s < config.sims_per_patient; ++s) {
      sim::SimConfig sc;
      sc.steps = config.trace_steps;
      sc.inject_fault = rng.bernoulli(config.fault_fraction);
      sim::Trace trace = run_closed_loop(*patient, *controller,
                                         profiles[static_cast<std::size_t>(p)],
                                         sc, rng);
      trace.simulation_id = s;
      out.push_back(std::move(trace));
    }
  });

  std::vector<sim::Trace> traces;
  traces.reserve(static_cast<std::size_t>(config.patients) *
                 static_cast<std::size_t>(config.sims_per_patient));
  for (auto& batch : per_patient) {
    for (auto& t : batch) traces.push_back(std::move(t));
  }
  return traces;
}

SplitDatasets build_datasets(std::span<const sim::Trace> traces,
                             const monitor::DatasetConfig& dataset_config,
                             double train_fraction, std::uint64_t seed) {
  expects(train_fraction > 0.0 && train_fraction < 1.0,
          "train fraction must be in (0,1)");
  expects(traces.size() >= 2, "need at least two traces to split");

  util::Rng rng(seed, 0x53504c54u /* 'SPLT' */);
  const std::vector<int> order = rng.permutation(static_cast<int>(traces.size()));
  const auto train_count = static_cast<std::size_t>(
      std::max<double>(1.0, train_fraction * static_cast<double>(traces.size())));

  SplitDatasets out;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const sim::Trace& t = traces[static_cast<std::size_t>(order[i])];
    if (i < train_count) {
      out.train_traces.push_back(t);
    } else {
      out.test_traces.push_back(t);
    }
  }
  ensures(!out.test_traces.empty(), "empty test split");
  out.train = monitor::build_dataset(out.train_traces, dataset_config);
  out.test = monitor::build_dataset(out.test_traces, dataset_config);
  return out;
}

std::string MonitorVariant::name() const {
  std::string s = monitor::to_string(arch);
  if (semantic) s += "-Custom";
  return s;
}

std::vector<MonitorVariant> all_variants() {
  return {
      {monitor::Arch::kMlp, false},
      {monitor::Arch::kLstm, false},
      {monitor::Arch::kMlp, true},
      {monitor::Arch::kLstm, true},
  };
}

Experiment::Experiment(ExperimentConfig config) : config_(std::move(config)) {}

void Experiment::prepare() {
  if (prepared_) return;
  util::log_info("generating campaign for ", sim::to_string(config_.campaign.testbed),
                 ": ", config_.campaign.patients, " patients x ",
                 config_.campaign.sims_per_patient, " sims");
  traces_ = generate_campaign(config_.campaign);
  data_ = build_datasets(traces_, config_.dataset, config_.train_fraction,
                         config_.campaign.seed ^ 0x9e3779b97f4a7c15ULL);
  util::log_info("datasets: train=", data_->train.size(),
                 " test=", data_->test.size(), " positive-fraction(train)=",
                 data_->train.positive_fraction());
  prepared_ = true;
}

const std::vector<sim::Trace>& Experiment::traces() {
  prepare();
  return traces_;
}

const monitor::Dataset& Experiment::train_data() {
  prepare();
  return data_->train;
}

const monitor::Dataset& Experiment::test_data() {
  prepare();
  return data_->test;
}

const std::vector<sim::Trace>& Experiment::test_traces() {
  prepare();
  return data_->test_traces;
}

monitor::MonitorConfig Experiment::monitor_config(const MonitorVariant& v) const {
  monitor::MonitorConfig mc;
  mc.arch = v.arch;
  mc.semantic = v.semantic;
  mc.semantic_weight = v.arch == monitor::Arch::kMlp
                           ? config_.semantic_weight_mlp
                           : config_.semantic_weight_lstm;
  mc.epochs = config_.epochs;
  mc.batch_size = config_.batch_size;
  mc.learning_rate = config_.learning_rate;
  mc.seed = config_.campaign.seed ^ (v.semantic ? 0xABCDULL : 0x1234ULL) ^
            arch_seed_tag(v.arch);
  return mc;
}

std::string Experiment::config_fingerprint() const {
  const auto& c = config_;
  std::ostringstream key;
  key << kCheckpointSchema << '|' << sim::to_string(c.campaign.testbed) << '|'
      << c.campaign.patients << '|' << c.campaign.sims_per_patient << '|'
      << c.campaign.fault_fraction << '|' << c.campaign.trace_steps << '|'
      << c.campaign.seed << '|' << c.dataset.window << '|' << c.dataset.horizon
      << '|' << c.dataset.bg_target << '|' << c.train_fraction << '|'
      << c.tolerance_delta << '|' << c.epochs << '|' << c.batch_size << '|'
      << c.learning_rate << '|' << c.semantic_weight_mlp << '|'
      << c.semantic_weight_lstm;
  return obs::sha256_hex(key.str()).substr(0, 16);
}

std::string Experiment::sweep_point_key(const char* kind,
                                        const MonitorVariant& v, double param,
                                        std::uint64_t extra) const {
  // The sweep parameter is keyed on its bit pattern: no formatting round-trip,
  // so 0.1 + 0.2-style near-misses can never alias a stored point.
  return std::string("sweep|") + kind + '|' + v.name() + '|' +
         hex_u64(double_bits(param)) + '|' + hex_u64(extra) + '|' +
         config_fingerprint();
}

std::string Experiment::model_snapshot_key(const MonitorVariant& v) const {
  return "model|" + v.name() + '|' + config_fingerprint();
}

std::unique_ptr<monitor::MlMonitor> Experiment::try_load_snapshot(
    const MonitorVariant& v) {
  if (checkpoint_store_ == nullptr) return nullptr;
  const auto payload = checkpoint_store_->get(model_snapshot_key(v));
  if (!payload) return nullptr;
  auto mon = std::make_unique<monitor::MlMonitor>(monitor_config(v));
  try {
    std::istringstream is(*payload);
    mon->load(is, config_.dataset.window, monitor::Features::kNumFeatures);
  } catch (const std::exception& e) {
    util::log_warn("checkpoint snapshot load failed for ", v.name(), " (",
                   e.what(), "), retraining");
    return nullptr;
  }
  util::log_info("restored ", v.name(), " from checkpoint snapshot");
  return mon;
}

void Experiment::snapshot_model(const MonitorVariant& v,
                                const monitor::MlMonitor& mon) {
  if (checkpoint_store_ == nullptr) return;
  std::ostringstream os;
  mon.save(os);
  checkpoint_store_->put(model_snapshot_key(v), os.str());
}

std::string Experiment::cache_path(const MonitorVariant& v) const {
  // Bump whenever simulator/training behaviour changes in ways the config
  // hash cannot see (otherwise stale cached monitors would be reloaded).
  constexpr int kCacheSchemaVersion = 3;
  std::ostringstream key;
  const auto& c = config_;
  key << 'v' << kCacheSchemaVersion << '|' << sim::to_string(c.campaign.testbed) << '|' << c.campaign.patients << '|'
      << c.campaign.sims_per_patient << '|' << c.campaign.fault_fraction << '|'
      << c.campaign.trace_steps << '|' << c.campaign.seed << '|'
      << c.dataset.window << '|' << c.dataset.horizon << '|'
      << c.dataset.bg_target << '|' << c.train_fraction << '|' << c.epochs
      << '|' << c.batch_size << '|' << c.learning_rate << '|'
      // Key only the weight this variant actually trains with, so baseline
      // caches survive semantic-weight tuning.
      << (v.semantic ? monitor_config(v).semantic_weight : 0.0) << '|'
      << (v.semantic ? static_cast<int>(monitor_config(v).semantic_mode) : -1)
      << '|' << v.name();
  std::ostringstream path;
  path << config_.cache_dir << '/' << v.name() << '_' << std::hex
       << fnv1a(key.str()) << ".monitor";
  return path.str();
}

std::uint64_t Experiment::publish_monitor(const MonitorVariant& variant,
                                          registry::ModelRegistry& registry) {
  return registry.publish(monitor(variant), variant.name(),
                          config_fingerprint());
}

monitor::MlMonitor& Experiment::monitor(const MonitorVariant& v) {
  prepare();
  const std::string key = v.name();
  const auto it = monitors_.find(key);
  if (it != monitors_.end()) return *it->second;

  auto mon = std::make_unique<monitor::MlMonitor>(monitor_config(v));
  bool loaded = false;
  if (!config_.cache_dir.empty()) {
    const std::string path = cache_path(v);
    if (std::filesystem::exists(path)) {
      try {
        mon->load(path, config_.dataset.window, monitor::Features::kNumFeatures);
        loaded = true;
        util::log_info("loaded ", key, " from cache: ", path);
      } catch (const std::exception& e) {
        util::log_warn("cache load failed for ", key, " (", e.what(),
                       "), retraining");
      }
    }
  }
  if (!loaded) {
    // File cache missed; a checkpoint snapshot (from a killed run of this
    // same configuration) is the next-cheapest source before retraining.
    if (auto snap = try_load_snapshot(v)) {
      mon = std::move(snap);
      loaded = true;
    }
  }
  if (!loaded) {
    util::log_info("training ", key, " on ", data_->train.size(), " windows");
    mon->train(data_->train);
    if (!config_.cache_dir.empty()) {
      std::filesystem::create_directories(config_.cache_dir);
      mon->save(cache_path(v));
    }
    snapshot_model(v, *mon);
  }
  auto [ins, _] = monitors_.emplace(key, std::move(mon));
  return *ins->second;
}

void Experiment::train_all() {
  prepare();
  const obs::ScopedSpan span("train.all");
  const auto variants = all_variants();
  // monitor() mutates shared maps; hydrate sequentially but train the
  // heavy part in parallel by pre-constructing monitors that miss the cache.
  std::vector<const MonitorVariant*> missing;
  for (const auto& v : variants) {
    if (monitors_.contains(v.name())) continue;
    if (!config_.cache_dir.empty() &&
        std::filesystem::exists(cache_path(v))) {
      continue;  // monitor(v) below hydrates from the file cache
    }
    if (auto snap = try_load_snapshot(v)) {
      monitors_.emplace(v.name(), std::move(snap));
      continue;
    }
    missing.push_back(&v);
  }
  if (!missing.empty()) {
    std::vector<std::unique_ptr<monitor::MlMonitor>> fresh(missing.size());
    util::parallel_for(static_cast<int>(missing.size()), [&](int i) {
      auto mon = std::make_unique<monitor::MlMonitor>(
          monitor_config(*missing[static_cast<std::size_t>(i)]));
      mon->train(data_->train);
      fresh[static_cast<std::size_t>(i)] = std::move(mon);
    });
    for (std::size_t i = 0; i < missing.size(); ++i) {
      if (!config_.cache_dir.empty()) {
        std::filesystem::create_directories(config_.cache_dir);
        fresh[i]->save(cache_path(*missing[i]));
      }
      snapshot_model(*missing[i], *fresh[i]);
      monitors_.emplace(missing[i]->name(), std::move(fresh[i]));
    }
  }
  for (const auto& v : variants) monitor(v);  // hydrate cache hits
}

safety::RuleBasedMonitor& Experiment::rule_monitor() {
  if (!rule_monitor_) {
    rule_monitor_.emplace(config_.dataset.bg_target);
  }
  return *rule_monitor_;
}

const std::vector<int>& Experiment::clean_predictions(const MonitorVariant& v) {
  const std::string key = v.name();
  const auto it = clean_preds_.find(key);
  if (it != clean_preds_.end()) return it->second;
  auto& mon = monitor(v);
  auto [ins, _] = clean_preds_.emplace(key, mon.predict(data_->test.x));
  return ins->second;
}

eval::ConfusionCounts Experiment::evaluate(std::span<const int> predictions) {
  prepare();
  return eval::evaluate_with_tolerance(data_->test, predictions,
                                       config_.tolerance_delta);
}

EvalResult Experiment::evaluate_clean(const MonitorVariant& v) {
  EvalResult r;
  r.confusion = evaluate(clean_predictions(v));
  r.robustness_err = 0.0;
  return r;
}

EvalResult Experiment::evaluate_rule_monitor() {
  prepare();
  const auto& ds = data_->test;
  std::vector<int> preds(static_cast<std::size_t>(ds.size()), 0);
  auto& rm = rule_monitor();
  for (int i = 0; i < ds.size(); ++i) {
    const auto si = static_cast<std::size_t>(i);
    const sim::Trace& trace =
        data_->test_traces[static_cast<std::size_t>(ds.trace_id[si])];
    preds[si] = rm.predict_step(
        trace.steps[static_cast<std::size_t>(ds.step_index[si])]);
  }
  EvalResult r;
  r.confusion = evaluate(preds);
  return r;
}

const nn::Tensor3& Experiment::scaled_test_input(const MonitorVariant& v) {
  const std::string key = v.name();
  const auto it = scaled_test_.find(key);
  if (it != scaled_test_.end()) return it->second;
  auto& mon = monitor(v);
  auto [ins, _] = scaled_test_.emplace(key, mon.scaler().transform(data_->test.x));
  return ins->second;
}

EvalResult Experiment::evaluate_under_gaussian(const MonitorVariant& v,
                                               double sigma_factor,
                                               std::uint64_t noise_seed) {
  auto& mon = monitor(v);
  attack::GaussianNoiseConfig gc;
  gc.sigma_factor = sigma_factor;
  util::Rng rng(noise_seed, 0x4e4f4953u /* 'NOIS' */);
  const nn::Tensor3 noisy =
      attack::add_gaussian_noise(data_->test.x, mon.scaler(), gc, rng);
  const std::vector<int> preds = mon.predict(noisy);
  EvalResult r;
  r.confusion = evaluate(preds);
  r.robustness_err = eval::robustness_error(clean_predictions(v), preds);
  return r;
}

EvalResult Experiment::evaluate_under_fgsm(const MonitorVariant& v,
                                           double epsilon,
                                           attack::FeatureMask mask) {
  auto& mon = monitor(v);
  attack::FgsmConfig fc;
  fc.epsilon = epsilon;
  fc.mask = mask;
  const nn::Tensor3 adv = attack::fgsm_attack(
      mon.classifier(), scaled_test_input(v), data_->test.labels, fc);
  const std::vector<int> preds = mon.predict_scaled(adv);
  EvalResult r;
  r.confusion = evaluate(preds);
  r.robustness_err = eval::robustness_error(clean_predictions(v), preds);
  return r;
}

attack::SubstituteAttack& Experiment::substitute_for(const MonitorVariant& v) {
  const std::string key = v.name();
  const auto it = substitutes_.find(key);
  if (it != substitutes_.end()) return *it->second;
  auto& mon = monitor(v);
  auto sub = std::make_unique<attack::SubstituteAttack>(attack::SubstituteConfig{});
  // The attacker queries the target on the training distribution.
  const nn::Tensor3 queries = mon.scaler().transform(data_->train.x);
  sub->fit(mon.classifier(), queries);
  auto [ins, _] = substitutes_.emplace(key, std::move(sub));
  return *ins->second;
}

EvalResult Experiment::evaluate_under_blackbox(const MonitorVariant& v,
                                               double epsilon) {
  auto& mon = monitor(v);
  auto& sub = substitute_for(v);
  attack::FgsmConfig fc;
  fc.epsilon = epsilon;
  const nn::Tensor3 adv =
      sub.craft(scaled_test_input(v), clean_predictions(v), fc);
  const std::vector<int> preds = mon.predict_scaled(adv);
  EvalResult r;
  r.confusion = evaluate(preds);
  r.robustness_err = eval::robustness_error(clean_predictions(v), preds);
  return r;
}

std::vector<EvalResult> Experiment::run_checkpointed_sweep(
    const char* kind, const MonitorVariant& v, std::span<const double> params,
    std::uint64_t extra, const std::function<EvalResult(int)>& compute_point) {
  const int n = static_cast<int>(params.size());
  std::vector<EvalResult> out(static_cast<std::size_t>(n));
  std::vector<char> done(static_cast<std::size_t>(n), 0);
  if (checkpoint_store_ != nullptr) {
    int resumed = 0;
    for (int i = 0; i < n; ++i) {
      const auto si = static_cast<std::size_t>(i);
      const auto payload =
          checkpoint_store_->get(sweep_point_key(kind, v, params[si], extra));
      if (!payload) continue;
      if (const auto r = decode_eval(*payload)) {
        out[si] = *r;
        done[si] = 1;
        ++resumed;
      }
    }
    if (resumed > 0) {
      util::log_info("sweep.", kind, " ", v.name(), ": resumed ", resumed, "/",
                     n, " points from ", checkpoint_store_->dir());
    }
  }
  util::parallel_for(n, [&](int i) {
    const auto si = static_cast<std::size_t>(i);
    if (done[si]) return;
    util::check_deadline(kind);
    // The chaos key is position-stable (kind, variant, index), so a given
    // chaos seed replays the same fault schedule in every process.
    const std::string chaos_key =
        std::string(kind) + '|' + v.name() + '|' + std::to_string(i);
    util::retry_call(util::RetryPolicy::for_tasks(), "sweep.point", [&] {
      util::chaos().maybe_throw("sweep.point", chaos_key);
      out[si] = compute_point(i);
    });
    if (checkpoint_store_ != nullptr) {
      checkpoint_store_->put(sweep_point_key(kind, v, params[si], extra),
                             encode_eval(out[si]));
    }
  });
  return out;
}

std::vector<EvalResult> Experiment::evaluate_under_gaussian_sweep(
    const MonitorVariant& v, std::span<const double> sigma_factors,
    std::uint64_t noise_seed) {
  // Hydrate every memoized structure before fanning out: the parallel
  // bodies must not touch the mutable maps.
  monitor::MlMonitor& mon = monitor(v);
  const std::vector<int>& clean = clean_predictions(v);
  const monitor::Dataset& test = data_->test;

  const obs::ScopedSpan span("sweep.gaussian");
  static obs::Counter& points =
      obs::Registry::instance().counter("experiment.sweep_points");
  points.add(sigma_factors.size());
  CPSGUARD_OBS_EVENT("sweep.gaussian", obs::f("model", v.name()),
                     obs::f("points", static_cast<int>(sigma_factors.size())));

  return run_checkpointed_sweep(
      "gaussian", v, sigma_factors, noise_seed, [&](int i) {
        const auto si = static_cast<std::size_t>(i);
        // Forward passes mutate layer caches → one clone per sweep point. The
        // noise RNG is keyed on the seed alone (not the point index), exactly
        // as the serial loop over evaluate_under_gaussian() seeded it, so the
        // outputs stay bit-identical to a serial sweep.
        const std::unique_ptr<monitor::MlMonitor> local = mon.clone();
        attack::GaussianNoiseConfig gc;
        gc.sigma_factor = sigma_factors[si];
        util::Rng rng(noise_seed, 0x4e4f4953u /* 'NOIS' */);
        const nn::Tensor3 noisy =
            attack::add_gaussian_noise(test.x, local->scaler(), gc, rng);
        const std::vector<int> preds = local->predict(noisy);
        EvalResult r;
        r.confusion =
            eval::evaluate_with_tolerance(test, preds, config_.tolerance_delta);
        r.robustness_err = eval::robustness_error(clean, preds);
        return r;
      });
}

std::vector<EvalResult> Experiment::evaluate_under_fgsm_sweep(
    const MonitorVariant& v, std::span<const double> epsilons,
    attack::FeatureMask mask) {
  monitor::MlMonitor& mon = monitor(v);
  const std::vector<int>& clean = clean_predictions(v);
  const nn::Tensor3& scaled = scaled_test_input(v);
  const monitor::Dataset& test = data_->test;

  const obs::ScopedSpan span("sweep.fgsm");
  static obs::Counter& points =
      obs::Registry::instance().counter("experiment.sweep_points");
  points.add(epsilons.size());
  CPSGUARD_OBS_EVENT("sweep.fgsm", obs::f("model", v.name()),
                     obs::f("points", static_cast<int>(epsilons.size())));

  return run_checkpointed_sweep(
      "fgsm", v, epsilons, static_cast<std::uint64_t>(mask), [&](int i) {
        const auto si = static_cast<std::size_t>(i);
        const std::unique_ptr<monitor::MlMonitor> local = mon.clone();
        attack::FgsmConfig fc;
        fc.epsilon = epsilons[si];
        fc.mask = mask;
        const nn::Tensor3 adv =
            attack::fgsm_attack(local->classifier(), scaled, test.labels, fc);
        const std::vector<int> preds = local->predict_scaled(adv);
        EvalResult r;
        r.confusion =
            eval::evaluate_with_tolerance(test, preds, config_.tolerance_delta);
        r.robustness_err = eval::robustness_error(clean, preds);
        return r;
      });
}

std::vector<EvalResult> Experiment::evaluate_under_blackbox_sweep(
    const MonitorVariant& v, std::span<const double> epsilons) {
  monitor::MlMonitor& mon = monitor(v);
  attack::SubstituteAttack& sub = substitute_for(v);
  const std::vector<int>& clean = clean_predictions(v);
  const nn::Tensor3& scaled = scaled_test_input(v);
  const monitor::Dataset& test = data_->test;

  const obs::ScopedSpan span("sweep.blackbox");
  static obs::Counter& points =
      obs::Registry::instance().counter("experiment.sweep_points");
  points.add(epsilons.size());
  CPSGUARD_OBS_EVENT("sweep.blackbox", obs::f("model", v.name()),
                     obs::f("points", static_cast<int>(epsilons.size())));

  return run_checkpointed_sweep(
      "blackbox", v, epsilons, /*extra=*/0, [&](int i) {
        const auto si = static_cast<std::size_t>(i);
        const std::unique_ptr<monitor::MlMonitor> local_mon = mon.clone();
        const std::unique_ptr<attack::SubstituteAttack> local_sub = sub.clone();
        attack::FgsmConfig fc;
        fc.epsilon = epsilons[si];
        const nn::Tensor3 adv = local_sub->craft(scaled, clean, fc);
        const std::vector<int> preds = local_mon->predict_scaled(adv);
        EvalResult r;
        r.confusion =
            eval::evaluate_with_tolerance(test, preds, config_.tolerance_delta);
        r.robustness_err = eval::robustness_error(clean, preds);
        return r;
      });
}

std::string to_string(RuntimeMode m) {
  switch (m) {
    case RuntimeMode::kRawMl: return "ml_raw";
    case RuntimeMode::kResilient: return "resilient";
    case RuntimeMode::kRuleOnly: return "rule_only";
  }
  return "unknown";
}

namespace {

double default_input_fault_magnitude(sim::FaultType t) {
  switch (t) {
    case sim::FaultType::kSensorDelay: return 4.0;     // cycles (20 min)
    case sim::FaultType::kSensorGarbage: return 5000.0;  // wild-value ceiling
    case sim::FaultType::kSensorSpike: return 150.0;   // mg/dL
    default: return 0.0;
  }
}

/// Corrupt the monitor's view of a trace: the sensor channel goes through
/// the injector and d_bg is re-derived from the corrupted stream with the
/// same 15-minute lookback the closed loop uses (NaN propagates).
std::vector<sim::StepRecord> corrupt_monitor_input(const sim::Trace& trace,
                                                   sim::FaultInjector& faults) {
  constexpr int kTrendLookback = 3;
  std::vector<sim::StepRecord> out;
  out.reserve(trace.steps.size());
  std::vector<double> bg_history;
  for (const auto& orig : trace.steps) {
    sim::StepRecord r = orig;
    r.sensor_bg = faults.sense(orig.sensor_bg, orig.step);
    const int lag =
        std::min<int>(kTrendLookback, static_cast<int>(bg_history.size()));
    r.d_bg = lag > 0
                 ? (r.sensor_bg -
                    bg_history[bg_history.size() - static_cast<std::size_t>(lag)]) /
                       (lag * sim::kControlPeriodMin)
                 : 0.0;
    bg_history.push_back(r.sensor_bg);
    out.push_back(r);
  }
  return out;
}

}  // namespace

eval::ResilienceReport Experiment::evaluate_resilience(
    const MonitorVariant& variant, RuntimeMode mode, sim::FaultType fault_type,
    double fault_rate, const ResilienceEvalConfig& rc) {
  prepare();
  expects(fault_type == sim::FaultType::kNone || sim::is_input_fault(fault_type),
          "resilience evaluation takes a monitor-input fault (or kNone)");
  expects(fault_rate >= 0.0 && fault_rate <= 1.0, "fault rate must be in [0,1]");

  monitor::MlMonitor* ml =
      mode == RuntimeMode::kRuleOnly ? nullptr : &monitor(variant);
  safety::RuleBasedMonitor& rules = rule_monitor();

  const obs::ScopedSpan span("eval.resilience");
  CPSGUARD_OBS_EVENT("eval.resilience", obs::f("model", variant.name()),
                     obs::f("mode", to_string(mode)),
                     obs::f("fault", static_cast<int>(fault_type)),
                     obs::f("rate", fault_rate));

  eval::ResilienceReport total;
  const auto& traces = data_->test_traces;
  for (std::size_t ti = 0; ti < traces.size(); ++ti) {
    const sim::Trace& trace = traces[ti];
    sim::FaultSpec spec;
    if (fault_type != sim::FaultType::kNone) {
      spec.type = fault_type;
      spec.start_step = rc.runtime.window;  // let the ML window warm up
      spec.duration_steps = trace.length();
      spec.rate = fault_rate;
      spec.magnitude = default_input_fault_magnitude(fault_type);
    }
    sim::FaultInjector faults(spec,
                              rc.fault_seed + 0x9e3779b97f4a7c15ULL * (ti + 1));
    const std::vector<sim::StepRecord> corrupted =
        corrupt_monitor_input(trace, faults);

    std::vector<eval::StepOutcome> outcomes;
    outcomes.reserve(corrupted.size());
    switch (mode) {
      case RuntimeMode::kResilient: {
        ResilientMonitor rm(*ml, rc.runtime);
        for (const auto& r : corrupted) {
          const ResilientVerdict v = rm.step(r);
          eval::StepOutcome o;
          o.prediction = v.prediction;
          o.ready = v.ready;
          o.sample_valid = v.sample_fault == SampleFault::kNone;
          switch (v.state) {
            case MonitorState::kMlActive: o.regime = eval::Regime::kMl; break;
            case MonitorState::kDegraded: o.regime = eval::Regime::kFallback; break;
            case MonitorState::kFailSafe: o.regime = eval::Regime::kFailSafe; break;
          }
          o.available = v.ready && v.state != MonitorState::kFailSafe;
          outcomes.push_back(o);
        }
        eval::ResilienceReport rep =
            eval::evaluate_resilience(trace, outcomes, rc.tolerance_delta);
        const ResilienceTelemetry& tel = rm.telemetry();
        rep.fallback_entries = tel.fallback_entries;
        rep.recoveries = tel.recoveries;
        rep.recovery_latency_sum = tel.recovery_latency_sum;
        total += rep;
        break;
      }
      case RuntimeMode::kRawMl: {
        OnlineMonitor om(*ml, rc.runtime.window);
        InputValidator validator(rc.runtime.validator);
        int clean_run = 0;  // cycles since the last corrupted sample
        for (const auto& r : corrupted) {
          const OnlineVerdict v = om.step(r);
          const bool valid = validator.check(r) == SampleFault::kNone;
          clean_run = valid ? clean_run + 1 : 0;
          eval::StepOutcome o;
          o.prediction = v.prediction;
          o.ready = v.ready;
          o.sample_valid = valid;
          o.regime = eval::Regime::kMl;
          // A raw verdict is trustworthy only when the whole inference
          // window was uncorrupted — the monitor itself cannot tell.
          o.available = v.ready && clean_run >= rc.runtime.window;
          outcomes.push_back(o);
        }
        total += eval::evaluate_resilience(trace, outcomes, rc.tolerance_delta);
        break;
      }
      case RuntimeMode::kRuleOnly: {
        InputValidator validator(rc.runtime.validator);
        for (const auto& r : corrupted) {
          eval::StepOutcome o;
          o.prediction = rules.predict_step(r);
          o.ready = true;
          o.sample_valid = validator.check(r) == SampleFault::kNone;
          o.regime = eval::Regime::kFallback;
          o.available = o.sample_valid;
          outcomes.push_back(o);
        }
        total += eval::evaluate_resilience(trace, outcomes, rc.tolerance_delta);
        break;
      }
    }
  }
  return total;
}

}  // namespace cpsguard::core

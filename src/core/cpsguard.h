// cpsguard — robustness testing of data- and knowledge-driven anomaly
// detection in cyber-physical systems.
//
// Umbrella header: include this to get the full public API.
//
//   #include "core/cpsguard.h"
//
//   cpsguard::core::ExperimentConfig cfg;
//   cfg.campaign.testbed = cpsguard::sim::Testbed::kGlucosymOpenAps;
//   cpsguard::core::Experiment exp(cfg);
//   auto f1 = exp.evaluate_clean({cpsguard::monitor::Arch::kLstm, true}).f1();
//
// Layers (bottom-up):
//   util/     RNG, stats, CSV, tables, thread pool
//   nn/       from-scratch NN substrate (MLP, LSTM, Adam, semantic loss,
//             input gradients for FGSM)
//   sim/      two APS testbeds: patient plants, controllers, faults,
//             closed-loop engine
//   safety/   STL engine, Table I safety rules, hazard labelling,
//             rule-based monitor
//   monitor/  feature windows, datasets, scalers, the four ML monitors
//   attack/   Gaussian noise, white-box FGSM, black-box substitute FGSM
//   eval/     tolerance-window metrics (Table II), robustness error (Eq. 5)
//   core/     Experiment harness tying everything together
#pragma once

#include "attack/blackbox.h"
#include "attack/feature_squeezing.h"
#include "attack/fgsm.h"
#include "attack/gaussian.h"
#include "attack/perturbation.h"
#include "attack/nes.h"
#include "attack/pgd.h"
#include "attack/universal.h"
#include "core/experiment.h"
#include "core/online_monitor.h"
#include "eval/batch_eval.h"
#include "eval/extended_metrics.h"
#include "eval/metrics.h"
#include "eval/pr_curve.h"
#include "eval/robustness.h"
#include "monitor/dataset.h"
#include "monitor/features.h"
#include "monitor/ml_monitor.h"
#include "monitor/scaler.h"
#include "nn/classifier.h"
#include "nn/gradcheck.h"
#include "nn/serialize.h"
#include "safety/cusum.h"
#include "safety/hazard.h"
#include "safety/rule_coverage.h"
#include "safety/rule_monitor.h"
#include "safety/rules_aps.h"
#include "safety/stl.h"
#include "safety/stl_parser.h"
#include "sim/closed_loop.h"
#include "sim/fault_injector.h"
#include "sim/meal.h"
#include "sim/trace.h"
#include "util/cli.h"
#include "util/config_file.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

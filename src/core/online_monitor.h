// Deployment wrapper: an OnlineMonitor feeds a trained MlMonitor one control
// cycle at a time, maintaining the sliding feature window internally — the
// way the monitor runs inside a real APS controller loop (paper Fig. 1a).
//
// The window lives in a preallocated serve::RingWindow and the inference
// input tensor is reused across cycles, so the per-step windowing path
// performs no heap allocations (pinned by the allocation-regression test in
// tests/test_online_monitor.cpp); for multiplexing many sessions over one
// monitor, use serve::Engine instead.
#pragma once

#include "monitor/ml_monitor.h"
#include "nn/tensor3.h"
#include "serve/ring_window.h"
#include "sim/trace.h"

namespace cpsguard::core {

struct OnlineVerdict {
  bool ready = false;       // false until the window has filled
  int prediction = 0;       // 1 = unsafe control action
  double p_unsafe = 0.0;    // monitor confidence
};

class OnlineMonitor {
 public:
  /// `monitor` must outlive this wrapper and already be trained.
  OnlineMonitor(monitor::MlMonitor& monitor, int window);

  /// Feed the record of the cycle that just executed; returns the verdict
  /// for the current window (not ready until `window` cycles have arrived).
  OnlineVerdict step(const sim::StepRecord& record);

  /// Forget all history (e.g., on sensor reconnect).
  void reset();

  [[nodiscard]] int window() const { return ring_.window(); }
  [[nodiscard]] int cycles_seen() const { return cycles_seen_; }

 private:
  monitor::MlMonitor& monitor_;
  int cycles_seen_ = 0;
  serve::RingWindow ring_;
  nn::Tensor3 x_;  // reused (1, window, features) inference input
};

}  // namespace cpsguard::core

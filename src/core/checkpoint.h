// Crash-safe checkpoint store for resumable campaigns.
//
// A store is a directory of self-checking records (schema
// cpsguard.checkpoint.v1): each record embeds its key, payload size, and
// payload SHA-256, and is written atomically (temp + rename, bounded
// retries). Loading verifies all three; a truncated or corrupted record —
// torn write, bit rot, chaos injection — is deleted and reported as absent,
// never trusted. Sweep campaigns persist one record per completed sweep
// point and one per trained-model snapshot, so a killed run resumes from
// what it finished instead of recomputing the campaign (and, because every
// point re-derives its RNG stream from the seed, the resumed CSV is
// byte-identical to an uninterrupted run).
//
// Lineage: the store's meta record carries a fresh run_id per open plus the
// previous opener's run_id as parent, which the bench manifest records so
// resumed runs stay auditable.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace cpsguard::core {

inline constexpr const char* kCheckpointSchema = "cpsguard.checkpoint.v1";

struct CheckpointStats {
  std::uint64_t puts = 0;       // records written
  std::uint64_t hits = 0;       // valid records loaded
  std::uint64_t misses = 0;     // absent keys
  std::uint64_t discarded = 0;  // truncated/corrupted records dropped
};

class CheckpointStore {
 public:
  /// Open (creating if needed) the store at `dir`. Opening an existing
  /// store starts a resumed run: its previous run_id becomes this run's
  /// parent. A missing or damaged meta record degrades to a fresh lineage —
  /// the records themselves stay usable either way.
  explicit CheckpointStore(std::string dir);

  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] const std::string& run_id() const { return run_id_; }
  /// "" when this store was created fresh.
  [[nodiscard]] const std::string& parent_run_id() const {
    return parent_run_id_;
  }

  /// Persist `payload` under `key` (overwriting), atomically and with
  /// bounded retries. Safe to call concurrently from sweep shards.
  void put(const std::string& key, std::string_view payload);

  /// Load the payload stored under `key`, or nullopt if absent or invalid.
  /// Invalid records (wrong schema/key, size or SHA-256 mismatch) are
  /// deleted so the caller recomputes and re-puts.
  std::optional<std::string> get(const std::string& key);

  /// get() != nullopt, with the same validation and discard side effects.
  bool contains(const std::string& key);

  [[nodiscard]] CheckpointStats stats() const;

 private:
  [[nodiscard]] std::string record_path(const std::string& key) const;
  void load_or_init_meta();

  std::string dir_;
  std::string run_id_;
  std::string parent_run_id_;
  mutable std::mutex mutex_;  // guards stats_ (file ops are per-key)
  CheckpointStats stats_;
};

}  // namespace cpsguard::core

#include "core/online_monitor.h"

#include "monitor/features.h"
#include "util/contracts.h"

namespace cpsguard::core {

OnlineMonitor::OnlineMonitor(monitor::MlMonitor& monitor, int window)
    : monitor_(monitor), window_(window) {
  expects(window > 0, "window must be positive");
  expects(monitor.trained(), "monitor must be trained");
}

OnlineVerdict OnlineMonitor::step(const sim::StepRecord& record) {
  std::vector<float> row(monitor::Features::kNumFeatures);
  monitor::fill_features(record, row);
  history_.push_back(std::move(row));
  if (static_cast<int>(history_.size()) > window_) history_.pop_front();
  ++cycles_seen_;

  OnlineVerdict verdict;
  if (static_cast<int>(history_.size()) < window_) return verdict;

  nn::Tensor3 x(1, window_, monitor::Features::kNumFeatures);
  for (int t = 0; t < window_; ++t) {
    const auto& src = history_[static_cast<std::size_t>(t)];
    auto dst = x.row(0, t);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  const nn::Matrix probs = monitor_.predict_proba(x);
  verdict.ready = true;
  verdict.p_unsafe = probs.at(0, 1);
  verdict.prediction = probs.at(0, 1) > probs.at(0, 0) ? 1 : 0;
  return verdict;
}

void OnlineMonitor::reset() {
  history_.clear();
  cycles_seen_ = 0;
}

}  // namespace cpsguard::core

#include "core/online_monitor.h"

#include "monitor/features.h"
#include "util/contracts.h"

namespace cpsguard::core {

OnlineMonitor::OnlineMonitor(monitor::MlMonitor& monitor, int window)
    : monitor_(monitor),
      // RingWindow's contract rejects window <= 0.
      ring_(window, monitor::Features::kNumFeatures),
      x_(1, window, monitor::Features::kNumFeatures) {
  expects(monitor.trained(), "monitor must be trained");
}

OnlineVerdict OnlineMonitor::step(const sim::StepRecord& record) {
  monitor::fill_features(record, ring_.push_slot());
  ring_.commit();
  ++cycles_seen_;

  OnlineVerdict verdict;
  if (!ring_.full()) return verdict;

  ring_.copy_ordered(x_.data());
  const nn::Matrix probs = monitor_.predict_proba(x_);
  verdict.ready = true;
  verdict.p_unsafe = probs.at(0, 1);
  verdict.prediction = probs.at(0, 1) > probs.at(0, 0) ? 1 : 0;
  return verdict;
}

void OnlineMonitor::reset() {
  ring_.clear();
  cycles_seen_ = 0;
}

}  // namespace cpsguard::core

#include "core/resilient_monitor.h"

#include <cmath>

#include "monitor/features.h"
#include "util/contracts.h"

namespace cpsguard::core {

std::string to_string(MonitorState s) {
  switch (s) {
    case MonitorState::kMlActive: return "ml_active";
    case MonitorState::kDegraded: return "degraded";
    case MonitorState::kFailSafe: return "fail_safe";
  }
  return "unknown";
}

std::string to_string(SampleFault f) {
  switch (f) {
    case SampleFault::kNone: return "none";
    case SampleFault::kNonFinite: return "non_finite";
    case SampleFault::kOutOfRange: return "out_of_range";
    case SampleFault::kImplausibleTrend: return "implausible_trend";
    case SampleFault::kFlatline: return "flatline";
  }
  return "unknown";
}

InputValidator::InputValidator(ValidatorConfig config) : config_(config) {
  expects(config_.bg_min < config_.bg_max, "degenerate physiological band");
  expects(config_.flatline_cycles > 1, "flatline run must exceed one cycle");
}

SampleFault InputValidator::check(const sim::StepRecord& r) {
  const bool finite = std::isfinite(r.sensor_bg) && std::isfinite(r.iob) &&
                      std::isfinite(r.d_bg) && std::isfinite(r.d_iob);
  // A non-finite reading breaks the repeat run — it is its own fault class.
  if (!finite) {
    has_last_ = false;
    repeat_run_ = 0;
    return SampleFault::kNonFinite;
  }
  if (has_last_ && r.sensor_bg == last_bg_) {
    ++repeat_run_;
  } else {
    repeat_run_ = 1;
    last_bg_ = r.sensor_bg;
    has_last_ = true;
  }
  if (r.sensor_bg < config_.bg_min || r.sensor_bg > config_.bg_max) {
    return SampleFault::kOutOfRange;
  }
  if (std::abs(r.d_bg) > config_.max_dbg) return SampleFault::kImplausibleTrend;
  // Intrinsic CGM noise (~2 mg/dL) makes exact repeats vanishingly rare in a
  // healthy stream, so a run of identical readings means stuck/stale input.
  if (repeat_run_ >= config_.flatline_cycles) return SampleFault::kFlatline;
  return SampleFault::kNone;
}

void InputValidator::reset() {
  repeat_run_ = 0;
  has_last_ = false;
}

double ResilienceTelemetry::mean_recovery_latency() const {
  if (recoveries == 0) return 0.0;
  return static_cast<double>(recovery_latency_sum) /
         static_cast<double>(recoveries);
}

ResilientMonitor::ResilientMonitor(monitor::MlMonitor& ml, ResilientConfig config)
    : ml_(ml),
      rules_(config.bg_target),
      config_(config),
      validator_(config.validator) {
  expects(config.window > 0, "window must be positive");
  expects(config.rearm_clean_cycles > 0, "re-arm hysteresis must be positive");
  expects(config.fail_safe_after > 0, "fail-safe threshold must be positive");
  expects(ml.trained(), "ML monitor must be trained");
}

void ResilientMonitor::push_history(const sim::StepRecord& r) {
  std::vector<float> row(monitor::Features::kNumFeatures);
  monitor::fill_features(r, row);
  history_.push_back(std::move(row));
  if (static_cast<int>(history_.size()) > config_.window) history_.pop_front();
}

ResilientVerdict ResilientMonitor::ml_verdict() {
  ResilientVerdict v;
  if (static_cast<int>(history_.size()) < config_.window) return v;
  nn::Tensor3 x(1, config_.window, monitor::Features::kNumFeatures);
  for (int t = 0; t < config_.window; ++t) {
    const auto& src = history_[static_cast<std::size_t>(t)];
    auto dst = x.row(0, t);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  const nn::Matrix probs = ml_.predict_proba(x);
  v.ready = true;
  v.p_unsafe = probs.at(0, 1);
  v.prediction = probs.at(0, 1) > probs.at(0, 0) ? 1 : 0;
  return v;
}

ResilientVerdict ResilientMonitor::rule_verdict(const sim::StepRecord& r) const {
  ResilientVerdict v;
  v.ready = true;
  v.from_fallback = true;
  v.prediction = rules_.predict_step(r);
  v.p_unsafe = static_cast<double>(v.prediction);
  return v;
}

void ResilientMonitor::enter_degraded() {
  state_ = MonitorState::kDegraded;
  ++telemetry_.fallback_entries;
  degraded_since_ = telemetry_.cycles_total;
  history_.clear();  // the window is tainted; refill from clean samples only
  clean_streak_ = 0;
}

ResilientVerdict ResilientMonitor::step(const sim::StepRecord& record) {
  const SampleFault fault = validator_.check(record);
  const bool valid = fault == SampleFault::kNone;
  ++telemetry_.cycles_total;
  if (valid) {
    consecutive_invalid_ = 0;
    last_valid_ = record;
  } else {
    ++telemetry_.invalid_samples;
    ++consecutive_invalid_;
    switch (fault) {
      case SampleFault::kNonFinite: ++telemetry_.non_finite; break;
      case SampleFault::kOutOfRange: ++telemetry_.out_of_range; break;
      case SampleFault::kImplausibleTrend: ++telemetry_.implausible_trend; break;
      case SampleFault::kFlatline: ++telemetry_.flatline; break;
      case SampleFault::kNone: break;
    }
  }

  ResilientVerdict v;
  switch (state_) {
    case MonitorState::kMlActive:
      if (valid) {
        push_history(record);
        v = ml_verdict();
      } else {
        enter_degraded();
        // The current sample is untrustworthy; judge the last good context.
        if (last_valid_) {
          v = rule_verdict(*last_valid_);
        } else {  // never saw a valid sample: only safe output is an alarm
          v.ready = true;
          v.from_fallback = true;
          v.prediction = 1;
          v.p_unsafe = 1.0;
        }
      }
      break;

    case MonitorState::kDegraded:
      if (valid) {
        ++clean_streak_;
        push_history(record);
        if (clean_streak_ >= config_.rearm_clean_cycles &&
            static_cast<int>(history_.size()) == config_.window) {
          state_ = MonitorState::kMlActive;  // hysteresis satisfied: re-arm
          ++telemetry_.recoveries;
          telemetry_.recovery_latency_sum += telemetry_.cycles_total - degraded_since_;
          degraded_since_ = -1;
          v = ml_verdict();
        } else {
          v = rule_verdict(record);
        }
      } else {
        history_.clear();  // a tainted sample voids the partial refill
        clean_streak_ = 0;
        if (consecutive_invalid_ >= config_.fail_safe_after) {
          state_ = MonitorState::kFailSafe;
          ++telemetry_.fail_safe_entries;
          v.ready = true;
          v.prediction = 1;
          v.p_unsafe = 1.0;
        } else if (last_valid_) {
          v = rule_verdict(*last_valid_);
        } else {
          v.ready = true;
          v.from_fallback = true;
          v.prediction = 1;
          v.p_unsafe = 1.0;
        }
      }
      break;

    case MonitorState::kFailSafe:
      if (valid) {
        state_ = MonitorState::kDegraded;  // fallback is usable again
        clean_streak_ = 1;
        push_history(record);
        v = rule_verdict(record);
      } else {
        v.ready = true;
        v.prediction = 1;
        v.p_unsafe = 1.0;
      }
      break;
  }

  switch (state_) {
    case MonitorState::kMlActive: ++telemetry_.cycles_ml; break;
    case MonitorState::kDegraded: ++telemetry_.cycles_degraded; break;
    case MonitorState::kFailSafe: ++telemetry_.cycles_fail_safe; break;
  }
  v.state = state_;
  v.sample_fault = fault;
  return v;
}

void ResilientMonitor::reset() {
  validator_.reset();
  history_.clear();
  last_valid_.reset();
  state_ = MonitorState::kMlActive;
  clean_streak_ = 0;
  consecutive_invalid_ = 0;
  degraded_since_ = -1;
  telemetry_ = ResilienceTelemetry{};
}

}  // namespace cpsguard::core

#include "core/checkpoint.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>

#include "obs/fileio.h"
#include "obs/metrics.h"
#include "obs/sha256.h"
#include "util/chaos.h"
#include "util/contracts.h"
#include "util/logging.h"
#include "util/parse.h"
#include "util/retry.h"
#include "util/run_id.h"

namespace cpsguard::core {

namespace fs = std::filesystem;

namespace {

constexpr const char* kMetaFile = "_store_meta";

struct StoreMetrics {
  obs::Counter& puts;
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& discarded;

  static StoreMetrics& get() {
    static StoreMetrics m{
        obs::Registry::instance().counter("checkpoint.puts"),
        obs::Registry::instance().counter("checkpoint.hits"),
        obs::Registry::instance().counter("checkpoint.misses"),
        obs::Registry::instance().counter("checkpoint.discarded"),
    };
    return m;
  }
};

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  if (!in) return std::nullopt;
  return ss.str();
}

/// Record layout: four header lines, a blank line, then the raw payload.
std::string encode_record(const std::string& key, std::string_view payload) {
  std::ostringstream os;
  os << kCheckpointSchema << '\n'
     << "key=" << key << '\n'
     << "bytes=" << payload.size() << '\n'
     << "sha256=" << obs::sha256_hex(payload.data(), payload.size()) << '\n'
     << '\n';
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  return os.str();
}

/// Strict decode: any deviation — schema drift, key collision, truncation,
/// flipped bits — returns nullopt and the caller discards the record.
std::optional<std::string> decode_record(const std::string& bytes,
                                         const std::string& key) {
  std::size_t pos = 0;
  auto next_line = [&]() -> std::optional<std::string> {
    const std::size_t nl = bytes.find('\n', pos);
    if (nl == std::string::npos) return std::nullopt;
    std::string line = bytes.substr(pos, nl - pos);
    pos = nl + 1;
    return line;
  };

  const auto schema = next_line();
  if (!schema || *schema != kCheckpointSchema) return std::nullopt;
  const auto key_line = next_line();
  if (!key_line || *key_line != "key=" + key) return std::nullopt;
  const auto bytes_line = next_line();
  if (!bytes_line || bytes_line->rfind("bytes=", 0) != 0) return std::nullopt;
  const auto sha_line = next_line();
  if (!sha_line || sha_line->rfind("sha256=", 0) != 0) return std::nullopt;
  const auto blank = next_line();
  if (!blank || !blank->empty()) return std::nullopt;

  // Strict parse: "bytes=12x", "bytes=-5" (stoull would wrap it), or an
  // empty value are all corruption, not a length.
  const auto parsed_bytes = util::try_parse_u64(bytes_line->substr(6));
  if (!parsed_bytes) return std::nullopt;
  const std::uint64_t payload_bytes = *parsed_bytes;
  if (bytes.size() - pos != payload_bytes) return std::nullopt;
  std::string payload = bytes.substr(pos);
  if (obs::sha256_hex(payload.data(), payload.size()) != sha_line->substr(7)) {
    return std::nullopt;
  }
  return payload;
}

}  // namespace

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {
  expects(!dir_.empty(), "checkpoint store needs a directory");
  fs::create_directories(dir_);
  load_or_init_meta();
}

void CheckpointStore::load_or_init_meta() {
  const std::string meta_path = dir_ + "/" + kMetaFile;
  run_id_ = util::fresh_run_id();
  parent_run_id_.clear();
  if (const auto bytes = read_file(meta_path)) {
    // Meta layout: schema line, run_id=..., parent_run_id=...
    std::istringstream is(*bytes);
    std::string schema;
    std::string run_line;
    if (std::getline(is, schema) && schema == kCheckpointSchema &&
        std::getline(is, run_line) && run_line.rfind("run_id=", 0) == 0) {
      parent_run_id_ = run_line.substr(7);
    } else {
      util::log_warn("checkpoint store ", dir_,
                     ": unreadable meta record, starting a fresh lineage");
    }
  }
  std::ostringstream meta;
  meta << kCheckpointSchema << '\n'
       << "run_id=" << run_id_ << '\n'
       << "parent_run_id=" << parent_run_id_ << '\n';
  util::retry_call(util::RetryPolicy::for_file_io(), "checkpoint.meta",
                   [&] { obs::atomic_write_file(meta_path, meta.str()); });
}

std::string CheckpointStore::record_path(const std::string& key) const {
  // Filenames are content-addressed on the key: stable across runs, safe
  // for arbitrary key characters, and collision-free for our purposes.
  return dir_ + "/" + obs::sha256_hex(key).substr(0, 32) + ".ckpt";
}

void CheckpointStore::put(const std::string& key, std::string_view payload) {
  const std::string path = record_path(key);
  const std::string record = encode_record(key, payload);
  util::retry_call(util::RetryPolicy::for_file_io(), "checkpoint.put",
                   [&] { obs::atomic_write_file(path, record); });
  // Chaos corruption seam: bit rot / torn storage happens *after* a clean
  // write; the self-check at load is what recovers from it.
  util::chaos().maybe_corrupt_file(path, key);
  {
    const std::scoped_lock lock(mutex_);
    ++stats_.puts;
  }
  StoreMetrics::get().puts.increment();
}

std::optional<std::string> CheckpointStore::get(const std::string& key) {
  const std::string path = record_path(key);
  std::error_code ec;
  if (!fs::exists(path, ec) || ec) {
    const std::scoped_lock lock(mutex_);
    ++stats_.misses;
    StoreMetrics::get().misses.increment();
    return std::nullopt;
  }
  const auto bytes = read_file(path);
  auto payload = bytes ? decode_record(*bytes, key) : std::nullopt;
  if (!payload) {
    // Truncated or corrupted: discard rather than trust. The caller
    // recomputes and re-puts, healing the store.
    util::log_warn("checkpoint store ", dir_, ": discarding invalid record for ",
                   key);
    fs::remove(path, ec);
    const std::scoped_lock lock(mutex_);
    ++stats_.discarded;
    StoreMetrics::get().discarded.increment();
    return std::nullopt;
  }
  {
    const std::scoped_lock lock(mutex_);
    ++stats_.hits;
  }
  StoreMetrics::get().hits.increment();
  return payload;
}

bool CheckpointStore::contains(const std::string& key) {
  return get(key).has_value();
}

CheckpointStats CheckpointStore::stats() const {
  const std::scoped_lock lock(mutex_);
  return stats_;
}

}  // namespace cpsguard::core

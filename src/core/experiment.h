// Experiment harness — the top-level API that wires the whole reproduction
// together: simulation campaigns → windowed datasets → trained monitors →
// perturbations → metrics. Every bench binary and example is a thin client
// of this header.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "attack/blackbox.h"
#include "attack/fgsm.h"
#include "attack/gaussian.h"
#include "core/checkpoint.h"
#include "core/resilient_monitor.h"
#include "eval/metrics.h"
#include "eval/resilience.h"
#include "eval/robustness.h"
#include "monitor/ml_monitor.h"
#include "safety/rule_monitor.h"
#include "sim/closed_loop.h"

namespace cpsguard::registry {
class ModelRegistry;
}

namespace cpsguard::core {

/// A simulation campaign: many closed-loop runs across patient profiles,
/// a fraction of them with injected faults (the hazard-producing runs).
struct CampaignConfig {
  sim::Testbed testbed = sim::Testbed::kGlucosymOpenAps;
  int patients = 20;
  int sims_per_patient = 10;
  double fault_fraction = 0.6;
  int trace_steps = 150;  // 12.5 h at 5-min cycles, as in the paper
  std::uint64_t seed = 42;
};

/// Run the campaign (parallel across patients). Deterministic in the seed.
std::vector<sim::Trace> generate_campaign(const CampaignConfig& config);

struct SplitDatasets {
  monitor::Dataset train;
  monitor::Dataset test;
  std::vector<sim::Trace> train_traces;  // aligned with train.trace_id
  std::vector<sim::Trace> test_traces;   // aligned with test.trace_id
};

/// Build windowed datasets with a by-trace train/test split (no window of a
/// test trace ever appears in training).
SplitDatasets build_datasets(std::span<const sim::Trace> traces,
                             const monitor::DatasetConfig& dataset_config,
                             double train_fraction, std::uint64_t seed);

/// One of the paper's four ML monitor variants.
struct MonitorVariant {
  monitor::Arch arch = monitor::Arch::kMlp;
  bool semantic = false;

  [[nodiscard]] std::string name() const;  // Table III row name
};

/// The four variants in the paper's reporting order:
/// MLP, LSTM, MLP-Custom, LSTM-Custom.
std::vector<MonitorVariant> all_variants();

struct ExperimentConfig {
  CampaignConfig campaign;
  monitor::DatasetConfig dataset;
  double train_fraction = 0.7;
  int tolerance_delta = 6;        // δ of the Table II metric (30 min)
  int epochs = 8;
  int batch_size = 64;
  double learning_rate = 0.001;
  // The w of Eq. 2, tuned per architecture (see bench_ablation_semantic_weight):
  // the MLP keeps clean F1 only up to w ~ 0.5; the LSTM tolerates more
  // interference (mirroring the paper's Table III, where LSTM-Custom trades
  // clean F1 for robustness). Larger w collapses monitors onto the rule
  // base — robust but only in the trivial, gradient-masked sense.
  double semantic_weight_mlp = 0.5;
  double semantic_weight_lstm = 1.0;
  std::string cache_dir = "cpsguard_cache";  // "" disables model caching
};

/// How the trained monitor is deployed for resilience evaluation.
enum class RuntimeMode : int {
  kRawMl = 0,   // bare OnlineMonitor: corrupted samples feed inference
  kResilient,   // ResilientMonitor: validation + degradation state machine
  kRuleOnly,    // knowledge-only baseline, no ML path at all
};

std::string to_string(RuntimeMode m);

struct ResilienceEvalConfig {
  ResilientConfig runtime;   // window, hysteresis, validators
  int tolerance_delta = 6;   // oracle look-ahead (30 min), as in Table II
  std::uint64_t fault_seed = 777;  // decorrelates per-trace fault streams
};

/// Metrics of one evaluation (clean or under perturbation).
struct EvalResult {
  eval::ConfusionCounts confusion;
  double robustness_err = 0.0;  // vs. the clean predictions (0 when clean)

  [[nodiscard]] double f1() const { return confusion.f1(); }
  [[nodiscard]] double accuracy() const { return confusion.accuracy(); }
};

class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);

  /// Generate the campaign and datasets (idempotent).
  void prepare();

  [[nodiscard]] const ExperimentConfig& config() const { return config_; }
  const std::vector<sim::Trace>& traces();
  const monitor::Dataset& train_data();
  const monitor::Dataset& test_data();
  /// The traces behind the test split (aligned with test_data().trace_id).
  const std::vector<sim::Trace>& test_traces();

  /// Trained (or cache-loaded) monitor for a variant; lazily constructed.
  monitor::MlMonitor& monitor(const MonitorVariant& variant);

  /// Train all four variants (parallel). Call before timing-sensitive
  /// sweeps so laziness doesn't skew measurements.
  void train_all();

  /// Export-after-train: publish the variant's trained monitor into the
  /// model registry as a new version. The artifact records the variant's
  /// Table III name and this campaign's config_fingerprint(), so a serving
  /// deployment can verify exactly which configuration produced the model
  /// it hot-swaps in. Returns the published version number.
  std::uint64_t publish_monitor(const MonitorVariant& variant,
                                registry::ModelRegistry& registry);

  safety::RuleBasedMonitor& rule_monitor();

  /// Clean predictions of a variant on the test set (memoized).
  const std::vector<int>& clean_predictions(const MonitorVariant& variant);

  /// Tolerance-window metrics for arbitrary per-window test predictions.
  eval::ConfusionCounts evaluate(std::span<const int> predictions);

  /// Clean evaluation of one variant.
  EvalResult evaluate_clean(const MonitorVariant& variant);
  /// Clean evaluation of the rule-based monitor.
  EvalResult evaluate_rule_monitor();

  /// Gaussian-noise evaluation (Fig. 5/6/9): σ·std noise on sensor features.
  EvalResult evaluate_under_gaussian(const MonitorVariant& variant,
                                     double sigma_factor,
                                     std::uint64_t noise_seed = 1234);

  /// White-box FGSM evaluation (Fig. 8/9): ε on the full multivariate input.
  EvalResult evaluate_under_fgsm(const MonitorVariant& variant, double epsilon,
                                 attack::FeatureMask mask = attack::FeatureMask::kAll);

  /// Black-box substitute FGSM evaluation (Fig. 10). The substitute is
  /// trained once per target variant and memoized.
  EvalResult evaluate_under_blackbox(const MonitorVariant& variant,
                                     double epsilon);

  /// Sweep variants of the three perturbation evaluations. Each hydrates
  /// the memoized state (monitor, clean predictions, scaled test input,
  /// substitute) once, then evaluates the sweep points in parallel on the
  /// shared pool, giving every point its own monitor/substitute clone.
  /// Results are bit-identical to calling the pointwise methods in a loop:
  /// clones carry identical weights and each point re-derives the same RNG
  /// stream the pointwise method would use.
  ///
  /// With a checkpoint store attached the sweeps are resumable: every
  /// completed point is persisted, already-stored points are reused instead
  /// of recomputed, and — because points are independent and re-derive
  /// their RNG streams — a killed-and-resumed campaign produces the same
  /// bytes as an uninterrupted one. Point bodies are retried on transient
  /// faults (util::RetryPolicy) and poll the cooperative deadline watchdog.
  std::vector<EvalResult> evaluate_under_gaussian_sweep(
      const MonitorVariant& variant, std::span<const double> sigma_factors,
      std::uint64_t noise_seed = 1234);
  std::vector<EvalResult> evaluate_under_fgsm_sweep(
      const MonitorVariant& variant, std::span<const double> epsilons,
      attack::FeatureMask mask = attack::FeatureMask::kAll);
  std::vector<EvalResult> evaluate_under_blackbox_sweep(
      const MonitorVariant& variant, std::span<const double> epsilons);

  /// Stream every test trace through the chosen runtime while an
  /// input-stream fault corrupts the monitor's sensor channel, aggregating
  /// resilience metrics across traces. `fault_type` must be kNone (clean
  /// baseline) or one of the monitor-input faults; `fault_rate` is the
  /// per-cycle manifestation probability.
  eval::ResilienceReport evaluate_resilience(
      const MonitorVariant& variant, RuntimeMode mode,
      sim::FaultType fault_type, double fault_rate,
      const ResilienceEvalConfig& rc = {});

  /// Training configuration a variant resolves to. Public so tests can
  /// assert the seed-derivation contract (distinct per-arch seed tags).
  [[nodiscard]] monitor::MonitorConfig monitor_config(
      const MonitorVariant& variant) const;

  /// Attach a checkpoint store (not owned; nullptr detaches): sweep points
  /// and trained-model snapshots persist through it and are reused on
  /// resume. Attach before the first sweep/training call.
  void set_checkpoint_store(CheckpointStore* store) {
    checkpoint_store_ = store;
  }
  [[nodiscard]] CheckpointStore* checkpoint_store() const {
    return checkpoint_store_;
  }

  /// Stable digest of every config field that determines campaign outputs.
  /// Checkpoint keys embed it, so records from a different configuration
  /// can never be resumed into this one.
  [[nodiscard]] std::string config_fingerprint() const;

 private:
  std::string cache_path(const MonitorVariant& variant) const;
  attack::SubstituteAttack& substitute_for(const MonitorVariant& variant);
  const nn::Tensor3& scaled_test_input(const MonitorVariant& variant);
  std::string sweep_point_key(const char* kind, const MonitorVariant& variant,
                              double param, std::uint64_t extra) const;
  std::string model_snapshot_key(const MonitorVariant& variant) const;
  std::unique_ptr<monitor::MlMonitor> try_load_snapshot(
      const MonitorVariant& variant);
  void snapshot_model(const MonitorVariant& variant,
                      const monitor::MlMonitor& mon);
  /// Shared engine of the three sweeps: checkpoint prefill, parallel
  /// fan-out with retry + chaos seam + deadline polling, checkpoint put.
  std::vector<EvalResult> run_checkpointed_sweep(
      const char* kind, const MonitorVariant& variant,
      std::span<const double> params, std::uint64_t extra,
      const std::function<EvalResult(int)>& compute_point);

  ExperimentConfig config_;
  CheckpointStore* checkpoint_store_ = nullptr;
  bool prepared_ = false;
  std::vector<sim::Trace> traces_;
  std::optional<SplitDatasets> data_;
  std::map<std::string, std::unique_ptr<monitor::MlMonitor>> monitors_;
  std::map<std::string, std::vector<int>> clean_preds_;
  std::map<std::string, nn::Tensor3> scaled_test_;
  std::map<std::string, std::unique_ptr<attack::SubstituteAttack>> substitutes_;
  std::optional<safety::RuleBasedMonitor> rule_monitor_;
};

}  // namespace cpsguard::core

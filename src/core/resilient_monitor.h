// Resilient monitoring runtime: wraps the ML safety monitor with input
// validation and a degradation state machine so that faults on the monitor's
// own input stream (sample loss, staleness, corruption — sim::FaultInjector's
// input-fault family) degrade the service gracefully instead of silently
// poisoning inference.
//
// State machine:
//
//   ML_ACTIVE --invalid sample--> DEGRADED --N consecutive invalid--> FAIL_SAFE
//       ^                           |  ^                                  |
//       |   hysteresis: clean run   |  |        first valid sample        |
//       +---------------------------+  +----------------------------------+
//
// In DEGRADED the verdict comes from the knowledge-driven
// safety::RuleBasedMonitor (evaluated on the last valid sample when the
// current one is rejected) — the paper's robust backstop. FAIL_SAFE is
// alarm-on: with no trustworthy input for too long, the only safe output is
// "unsafe". The ML path re-arms only after `rearm_clean_cycles` consecutive
// valid samples AND a fully refilled feature window (effective threshold
// max(rearm_clean_cycles, window)).
#pragma once

#include <deque>
#include <optional>
#include <string>

#include "monitor/ml_monitor.h"
#include "safety/rule_monitor.h"
#include "sim/trace.h"

namespace cpsguard::core {

enum class MonitorState : int {
  kMlActive = 0,
  kDegraded,
  kFailSafe,
};

std::string to_string(MonitorState s);

/// Why a sample was rejected; kNone means it passed every validator. The
/// first failing check wins (finite → range → trend → flatline).
enum class SampleFault : int {
  kNone = 0,
  kNonFinite,        // NaN/Inf in sensor_bg, iob, or trends
  kOutOfRange,       // sensor_bg outside the physiological band
  kImplausibleTrend, // |d_bg| beyond any physiological slew rate
  kFlatline,         // identical readings for too many cycles (stuck/stale)
};

std::string to_string(SampleFault f);

struct ValidatorConfig {
  double bg_min = 20.0;   // mg/dL: below anything a live CGM reports
  double bg_max = 600.0;  // mg/dL: CGM saturation ceiling
  double max_dbg = 15.0;  // mg/dL per min: physiological slew limit
  int flatline_cycles = 4;  // exact-repeat run length that flags staleness
};

/// Stateful per-stream validator (tracks the repeat run for flatline
/// detection). One instance per monitored stream; reset on reconnect.
class InputValidator {
 public:
  explicit InputValidator(ValidatorConfig config = {});

  /// Classify the next sample of the stream. Must be called once per cycle,
  /// in order (flatline detection depends on the run of repeats).
  SampleFault check(const sim::StepRecord& r);

  void reset();

  [[nodiscard]] const ValidatorConfig& config() const { return config_; }

 private:
  ValidatorConfig config_;
  double last_bg_ = 0.0;
  int repeat_run_ = 0;  // consecutive cycles with an identical reading
  bool has_last_ = false;
};

struct ResilientConfig {
  int window = 6;              // ML feature window (cycles)
  int rearm_clean_cycles = 6;  // hysteresis before the ML path re-arms
  int fail_safe_after = 6;     // consecutive invalid cycles → FAIL_SAFE
  double bg_target = sim::kTargetBg;  // rule-base parameter
  ValidatorConfig validator;
};

/// Per-state telemetry counters, cumulative since construction/reset.
struct ResilienceTelemetry {
  long cycles_total = 0;
  long cycles_ml = 0;         // cycles spent in ML_ACTIVE
  long cycles_degraded = 0;   // cycles spent in DEGRADED (rule fallback)
  long cycles_fail_safe = 0;  // cycles spent in FAIL_SAFE (alarm-on)
  long invalid_samples = 0;
  long non_finite = 0;
  long out_of_range = 0;
  long implausible_trend = 0;
  long flatline = 0;
  long fallback_entries = 0;   // ML_ACTIVE → DEGRADED transitions
  long fail_safe_entries = 0;  // DEGRADED → FAIL_SAFE transitions
  long recoveries = 0;         // re-arms back to ML_ACTIVE
  long recovery_latency_sum = 0;  // cycles from fallback entry to re-arm

  /// Mean cycles from losing the ML path to re-arming it (0 if never).
  [[nodiscard]] double mean_recovery_latency() const;
};

struct ResilientVerdict {
  MonitorState state = MonitorState::kMlActive;  // state that produced it
  bool ready = false;       // a prediction was produced this cycle
  int prediction = 0;       // 1 = unsafe control action
  double p_unsafe = 0.0;
  SampleFault sample_fault = SampleFault::kNone;  // this cycle's validation
  bool from_fallback = false;  // prediction came from the rule base
};

class ResilientMonitor {
 public:
  /// `ml` must outlive this wrapper and already be trained.
  ResilientMonitor(monitor::MlMonitor& ml, ResilientConfig config = {});

  /// Feed the record of the cycle that just executed; validates it, advances
  /// the state machine, and returns the verdict of the active path.
  ResilientVerdict step(const sim::StepRecord& record);

  /// Forget all history and telemetry (e.g., on stream reconnect).
  void reset();

  [[nodiscard]] MonitorState state() const { return state_; }
  [[nodiscard]] const ResilienceTelemetry& telemetry() const { return telemetry_; }
  [[nodiscard]] const ResilientConfig& config() const { return config_; }

 private:
  void enter_degraded();
  [[nodiscard]] ResilientVerdict ml_verdict();
  [[nodiscard]] ResilientVerdict rule_verdict(const sim::StepRecord& r) const;
  void push_history(const sim::StepRecord& r);

  monitor::MlMonitor& ml_;
  safety::RuleBasedMonitor rules_;
  ResilientConfig config_;
  InputValidator validator_;

  MonitorState state_ = MonitorState::kMlActive;
  std::deque<std::vector<float>> history_;  // clean samples only
  std::optional<sim::StepRecord> last_valid_;  // rule context when rejected
  int clean_streak_ = 0;        // consecutive valid samples while degraded
  int consecutive_invalid_ = 0;
  long degraded_since_ = -1;    // cycle index of the current fallback entry
  ResilienceTelemetry telemetry_;
};

}  // namespace cpsguard::core

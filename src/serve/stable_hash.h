// Stable session → shard routing hash. std::hash is implementation-defined
// (identity for integers on libstdc++), which would both shard adjacent
// session ids pathologically and make shard assignment differ across
// standard libraries; FNV-1a over the id's little-endian bytes is cheap,
// well-mixed, and byte-identical on every platform — a requirement for the
// deterministic-replay golden tests.
#pragma once

#include <cstdint>

namespace cpsguard::serve {

/// 64-bit FNV-1a of an 8-byte little-endian integer.
[[nodiscard]] constexpr std::uint64_t stable_hash64(std::uint64_t key) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (int i = 0; i < 8; ++i) {
    h ^= (key >> (8 * i)) & 0xffULL;
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

}  // namespace cpsguard::serve

// Fixed-capacity ring buffer of feature rows — the per-session sliding
// window of the streaming service. All storage is one contiguous float
// vector allocated at construction; pushing a row writes into a slot
// in place and copying the window out is two memcpy-sized block copies,
// so the steady-state ingest path performs zero heap allocations (the
// property the OnlineMonitor allocation-regression test pins).
#pragma once

#include <span>
#include <vector>

namespace cpsguard::serve {

class RingWindow {
 public:
  /// A window of `window` rows of `features` floats each.
  RingWindow(int window, int features);

  /// Writable view of the slot the next row goes into. Fill it, then call
  /// commit(); the slot's previous contents (the oldest row once the ring
  /// is full) are whatever the caller leaves there.
  [[nodiscard]] std::span<float> push_slot();

  /// Publish the row written into push_slot(): advances the ring by one.
  /// Once full, each commit slides the window forward one cycle.
  void commit();

  /// True when `window` rows have been committed (and forever after).
  [[nodiscard]] bool full() const { return size_ == window_; }
  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] int window() const { return window_; }
  [[nodiscard]] int features() const { return features_; }

  /// Forget every row (capacity is retained; no deallocation).
  void clear();

  /// Copy the window oldest→newest into `dst` (size window*features).
  /// Requires full().
  void copy_ordered(std::span<float> dst) const;

  /// Storage-order access to slot `i` in [0, window): the raw backing row,
  /// NOT time order. Two rings advanced in lockstep have identical slot
  /// layouts, which is what the hot-swap rescale exploits — it rewrites
  /// every occupied slot of the scaled ring from its raw twin without
  /// needing to know where the head is.
  [[nodiscard]] std::span<float> slot(int i);
  [[nodiscard]] std::span<const float> slot(int i) const;

 private:
  int window_ = 0;
  int features_ = 0;
  int head_ = 0;  // slot index the next commit publishes
  int size_ = 0;
  std::vector<float> data_;  // window_ rows, laid out contiguously
};

}  // namespace cpsguard::serve

// Streaming detection engine: multiplexes many per-patient sessions over
// one trained monitor, amortizing NN cost through cross-session
// micro-batched inference.
//
//   serve::Engine engine(mon, {.shards = 8, .window = 6});
//   engine.submit(patient_id, record);        // every control cycle
//   for (const auto& v : engine.tick()) ...   // flush + collect verdicts
//
// Records route to shards by stable_hash64(session) % shards, so a session
// always lands on the same shard and its windows stay in order. Each shard
// accumulates ready windows (across all its sessions) into a preallocated
// micro-batch and flushes them through one eval::batched_predict_proba
// call — on batch-full inline, and on tick() for the partial remainder.
//
// Determinism contract: verdicts depend only on the ingest sequence. For a
// fixed interleaving of submit/tick calls the emitted VerdictEvent stream
// is byte-identical whether tick() fans shards across the shared pool or
// (deterministic mode / max_parallelism 1) flushes serially: shards are
// independent, batched inference is bit-identical to per-window inference,
// and delivery order is always (shard index, ingest order).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "monitor/ml_monitor.h"
#include "serve/shard.h"
#include "serve/types.h"
#include "sim/trace.h"

namespace cpsguard::registry {
class ModelRegistry;
}

namespace cpsguard::serve {

/// Whole-engine snapshot: the per-shard ShardStats plus engine-level
/// aggregates. Totals are sums over `shards`; `ticks` counts completed
/// tick() calls. Taken shard-by-shard under each shard's lock — consistent
/// per shard, approximate across shards under concurrent ingest (exact when
/// the caller is the only thread touching the engine, the loadgen case).
struct EngineStats {
  std::int64_t ticks = 0;
  std::size_t sessions = 0;
  std::size_t queue_depth = 0;  // pending windows + undrained verdicts
  std::uint64_t records = 0;
  std::uint64_t windows_flushed = 0;
  std::uint64_t flushes = 0;
  std::uint64_t closed = 0;
  std::uint64_t evicted = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_session_limit = 0;
  std::uint64_t swaps = 0;
  std::uint64_t shadow_windows = 0;
  std::uint64_t shadow_disagree = 0;
  std::vector<ShardStats> shards;
};

/// Hot-swap bookkeeping (control-thread view; see Engine::swap_stats).
struct SwapStats {
  std::uint64_t swaps = 0;                // completed activations
  std::int64_t last_stage_tick = -1;      // ticks() when last staged
  std::int64_t last_activate_tick = -1;   // tick index that activated it
  /// Worst observed stage→activate latency in ticks. The epoch protocol
  /// guarantees this never exceeds 1: a model staged between ticks is
  /// active before the next tick's verdicts drain.
  std::int64_t max_latency_ticks = 0;
};

class Engine {
 public:
  /// `mon` must be trained; each shard takes its own clone, so the engine
  /// does not retain a reference. `config.window` must equal the window
  /// the monitor was trained with.
  Engine(const monitor::MlMonitor& mon, EngineConfig config);

  /// Ingest one record; never throws on rejection. Sessions are created on
  /// first submit.
  [[nodiscard]] SubmitStatus try_submit(SessionId id,
                                        const sim::StepRecord& rec);

  /// Ingest one record; throws the matching AdmissionError on rejection.
  void submit(SessionId id, const sim::StepRecord& rec);

  /// Cycle tick: flush every shard's partial micro-batch (in parallel
  /// across shards unless deterministic mode or the parallelism cap says
  /// otherwise), then drain — returns every verdict completed since the
  /// last drain, in (shard, ingest) order.
  std::vector<VerdictEvent> tick();

  /// Collect completed verdicts without forcing a flush (e.g. after
  /// batch-full flushes between ticks).
  std::vector<VerdictEvent> drain();

  /// Drop a session's window state; staged windows still verdict.
  bool close_session(SessionId id);

  [[nodiscard]] const EngineConfig& config() const { return config_; }
  [[nodiscard]] std::size_t sessions_active() const;
  /// Pending windows + undrained verdicts summed over shards.
  [[nodiscard]] std::size_t queue_depth() const;
  /// Shard a session routes to (exposed for tests and ops tooling).
  [[nodiscard]] int shard_of(SessionId id) const;

  /// Completed tick() calls. Records submitted now carry this value as
  /// their windows' VerdictEvent::ingest_tick.
  [[nodiscard]] std::int64_t ticks() const {
    return ticks_.load(std::memory_order_relaxed);
  }

  /// Sessions the most recent tick() TTL-evicted, in deterministic
  /// (shard index, session id) order; empty when idle_ttl_ticks is 0 or
  /// nothing expired. Only the ticking thread may call this — the log is
  /// rewritten by every tick().
  [[nodiscard]] const std::vector<SessionId>& evicted_last_tick() const {
    return evicted_last_tick_;
  }

  /// Ops/assertion snapshot of the whole engine (see EngineStats).
  [[nodiscard]] EngineStats stats() const;

  // ---- Live model hot-swap ------------------------------------------------
  //
  // Staging, promotion, rollback and the version accessors are control-plane
  // operations: they must come from the same thread that drives tick()
  // (concurrent submits are fine — shard-level transitions take the shard
  // locks). A kEpoch stage activates inside the next tick(), after the flush
  // pass and before drain, so activation latency is at most one flush epoch
  // and no micro-batch ever mixes model versions. Verdicts carry the version
  // that scored them (VerdictEvent::model_version).

  /// Stage `mon` (cloned per shard) as version `version`. kEpoch replaces
  /// the active model at the next tick; kShadow dual-scores immediately
  /// without affecting verdicts. Restaging before activation replaces the
  /// previously staged model.
  void stage_model(const monitor::MlMonitor& mon, std::uint64_t version,
                   SwapMode mode = SwapMode::kEpoch);

  /// Load `version` from `reg` (verify-on-open) and stage it. The mmap'd
  /// artifact only lives for the duration of the call — shards clone into
  /// owned storage — so the registry file can be GC'd afterwards.
  void swap_model(const registry::ModelRegistry& reg, std::uint64_t version,
                  SwapMode mode = SwapMode::kEpoch);

  /// Turn the shadow model into a staged kEpoch swap. Returns false when
  /// no shadow model is installed.
  bool promote_shadow();

  /// Drop staged and shadow models; if a swap already activated, re-stage
  /// the previous model (it activates at the next tick). Returns true when
  /// a previous model was re-staged.
  bool rollback();

  /// Version currently scoring verdicts / staged for the next tick /
  /// shadow-scoring (0 = none).
  [[nodiscard]] std::uint64_t active_version() const { return active_version_; }
  [[nodiscard]] std::uint64_t staged_version() const { return staged_version_; }
  [[nodiscard]] std::uint64_t shadow_version() const { return shadow_version_; }

  [[nodiscard]] const SwapStats& swap_stats() const { return swap_stats_; }

 private:
  EngineConfig config_;
  std::atomic<std::int64_t> session_budget_;
  std::atomic<std::int64_t> ticks_{0};
  std::vector<std::unique_ptr<SessionShard>> shards_;
  std::vector<SessionId> evicted_last_tick_;

  // Control-thread swap state (shards hold the authoritative monitors).
  std::uint64_t active_version_;
  std::uint64_t staged_version_ = 0;
  std::uint64_t shadow_version_ = 0;
  std::uint64_t prev_version_ = 0;  // rollback target after an activation
  std::int64_t stage_tick_ = -1;
  SwapStats swap_stats_;
};

}  // namespace cpsguard::serve

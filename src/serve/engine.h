// Streaming detection engine: multiplexes many per-patient sessions over
// one trained monitor, amortizing NN cost through cross-session
// micro-batched inference.
//
//   serve::Engine engine(mon, {.shards = 8, .window = 6});
//   engine.submit(patient_id, record);        // every control cycle
//   for (const auto& v : engine.tick()) ...   // flush + collect verdicts
//
// Records route to shards by stable_hash64(session) % shards, so a session
// always lands on the same shard and its windows stay in order. Each shard
// accumulates ready windows (across all its sessions) into a preallocated
// micro-batch and flushes them through one eval::batched_predict_proba
// call — on batch-full inline, and on tick() for the partial remainder.
//
// Determinism contract: verdicts depend only on the ingest sequence. For a
// fixed interleaving of submit/tick calls the emitted VerdictEvent stream
// is byte-identical whether tick() fans shards across the shared pool or
// (deterministic mode / max_parallelism 1) flushes serially: shards are
// independent, batched inference is bit-identical to per-window inference,
// and delivery order is always (shard index, ingest order).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "monitor/ml_monitor.h"
#include "serve/shard.h"
#include "serve/types.h"
#include "sim/trace.h"

namespace cpsguard::serve {

class Engine {
 public:
  /// `mon` must be trained; each shard takes its own clone, so the engine
  /// does not retain a reference. `config.window` must equal the window
  /// the monitor was trained with.
  Engine(const monitor::MlMonitor& mon, EngineConfig config);

  /// Ingest one record; never throws on rejection. Sessions are created on
  /// first submit.
  [[nodiscard]] SubmitStatus try_submit(SessionId id,
                                        const sim::StepRecord& rec);

  /// Ingest one record; throws the matching AdmissionError on rejection.
  void submit(SessionId id, const sim::StepRecord& rec);

  /// Cycle tick: flush every shard's partial micro-batch (in parallel
  /// across shards unless deterministic mode or the parallelism cap says
  /// otherwise), then drain — returns every verdict completed since the
  /// last drain, in (shard, ingest) order.
  std::vector<VerdictEvent> tick();

  /// Collect completed verdicts without forcing a flush (e.g. after
  /// batch-full flushes between ticks).
  std::vector<VerdictEvent> drain();

  /// Drop a session's window state; staged windows still verdict.
  bool close_session(SessionId id);

  [[nodiscard]] const EngineConfig& config() const { return config_; }
  [[nodiscard]] std::size_t sessions_active() const;
  /// Pending windows + undrained verdicts summed over shards.
  [[nodiscard]] std::size_t queue_depth() const;
  /// Shard a session routes to (exposed for tests and ops tooling).
  [[nodiscard]] int shard_of(SessionId id) const;

 private:
  EngineConfig config_;
  std::atomic<std::int64_t> session_budget_;
  std::vector<std::unique_ptr<SessionShard>> shards_;
};

}  // namespace cpsguard::serve

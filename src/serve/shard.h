// One shard of the streaming engine: owns the sessions routed to it, their
// ring-buffered feature windows, a preallocated cross-session micro-batch,
// and its own clone of the trained monitor (classifier forward passes
// mutate layer caches, so concurrent shard flushes need private monitors —
// identical weights keep verdicts bit-identical to any other deployment of
// the same model).
//
// Rings hold *prescaled* features: each record passes through the monitor's
// StandardScaler exactly once at ingest, instead of once per overlapping
// window at flush. transform_row is bit-identical to the batch transform,
// so verdicts match the raw-window predict path bit for bit. Each session
// also keeps a raw twin of its ring (same head, same size): when a hot swap
// activates a model with a different scaler, every occupied slot is
// rewritten from the raw twin through the new scaler, so partial windows
// continue exactly as if their records had been ingested under the new
// model from the start.
//
// Locking: one mutex per shard. submit/flush/drain from different threads
// are safe; two submits for sessions on the same shard serialize, which is
// the backpressure boundary the sharding exists to spread.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "monitor/ml_monitor.h"
#include "nn/tensor3.h"
#include "serve/ring_window.h"
#include "serve/types.h"
#include "sim/trace.h"

namespace cpsguard::serve {

/// Point-in-time shard occupancy plus lifetime counters (taken under the
/// shard lock). Occupancy fields describe the current instant; the counter
/// fields are monotonic over the shard's lifetime — per-engine, unlike the
/// process-wide obs registry, so tests and ops snapshots can assert on them
/// without diffing global state.
struct ShardStats {
  std::size_t sessions = 0;
  std::size_t pending_windows = 0;    // accumulated, not yet flushed
  std::size_t undrained_verdicts = 0; // flushed, not yet drained

  std::uint64_t records = 0;          // accepted submits
  std::uint64_t windows_flushed = 0;  // verdicts produced
  std::uint64_t flushes = 0;          // micro-batch inference calls
  std::uint64_t closed = 0;           // explicit close() calls that hit
  std::uint64_t evicted = 0;          // idle-TTL evictions
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_session_limit = 0;
  std::uint64_t swaps = 0;            // model activations (hot swaps)
  std::uint64_t shadow_windows = 0;   // windows dual-scored by a shadow model
  std::uint64_t shadow_disagree = 0;  // shadow vs active prediction mismatches
};

class SessionShard {
 public:
  /// Clones `mon` (which must be trained). `session_budget` is the
  /// engine-wide open-session budget this shard draws on when it admits a
  /// new session (decremented back by close()).
  SessionShard(const monitor::MlMonitor& mon, const EngineConfig& config,
               std::atomic<std::int64_t>& session_budget);

  /// Ingest one record. On admission the record is committed into its
  /// session's ring; if that completes a window, the window is staged into
  /// the micro-batch and a batch-full shard flushes inline. On rejection
  /// nothing is mutated — the session window does not advance. `now_tick`
  /// is the engine's current tick index: it stamps the staged window's
  /// VerdictEvent and refreshes the session's idle-TTL clock.
  [[nodiscard]] SubmitStatus submit(SessionId id, const sim::StepRecord& rec,
                                    std::int64_t now_tick);

  /// Flush the partial micro-batch (the engine's cycle tick).
  void flush();

  /// Move every completed verdict (ingest order) into `out`.
  void drain(std::vector<VerdictEvent>& out);

  /// Forget a session's window state. Windows already staged for this
  /// session still produce their verdicts. Returns false if unknown.
  bool close(SessionId id);

  /// Evict every session whose last submit is more than `ttl` ticks old
  /// (last_seen < now_tick - ttl), in ascending session-id order, appending
  /// the evicted ids to `evicted`. Semantically identical to close() per
  /// session (budget returns, staged windows still verdict).
  void evict_idle(std::int64_t now_tick, std::int64_t ttl,
                  std::vector<SessionId>& evicted);

  /// Stage a replacement monitor (the shard takes ownership; the caller
  /// clones per shard). kEpoch: held until activate_staged() — the engine's
  /// next tick boundary. kShadow: installed immediately as the shadow
  /// scorer; the shard flushes its partial batch first so shadow rows stay
  /// aligned with the active batch from the next window on. Restaging
  /// replaces any prior staged/shadow monitor of the same mode.
  void stage(std::unique_ptr<monitor::MlMonitor> mon, std::uint64_t version,
             SwapMode mode);

  /// Epoch-boundary activation of the staged monitor: flush any straggler
  /// windows under the outgoing model, swap, then rescale every live
  /// session ring from its raw twin so partial windows continue
  /// bit-identically to fresh ingest under the new scaler. Returns false
  /// (and does nothing) when no monitor is staged.
  bool activate_staged();

  /// Move the shadow monitor into the staged slot (it activates at the
  /// next activate_staged()). Returns false when no shadow is installed.
  bool promote_shadow();

  /// Discard staged and shadow monitors. If a swap already activated, the
  /// previous monitor is re-staged (activating at the next epoch boundary)
  /// and true is returned; false means nothing was active to roll back to.
  bool rollback();

  /// Version of the monitor currently scoring verdicts.
  [[nodiscard]] std::uint64_t active_version() const;

  [[nodiscard]] ShardStats stats() const;

 private:
  void flush_locked();
  void rescale_sessions_locked();

  const EngineConfig config_;
  std::atomic<std::int64_t>& session_budget_;
  std::unique_ptr<monitor::MlMonitor> monitor_;
  std::uint64_t version_;

  // Hot-swap slots. `staged_` waits for the epoch boundary, `shadow_`
  // dual-scores without verdicting, `prev_` is the rollback target after an
  // activation. All transitions happen under the shard lock.
  std::unique_ptr<monitor::MlMonitor> staged_;
  std::uint64_t staged_version_ = 0;
  std::unique_ptr<monitor::MlMonitor> shadow_;
  std::uint64_t shadow_version_ = 0;
  std::unique_ptr<monitor::MlMonitor> prev_;
  std::uint64_t prev_version_ = 0;

  struct Session {
    explicit Session(const EngineConfig& cfg);
    RingWindow ring;             // prescaled (active model's scaler space)
    RingWindow raw;              // raw twin, advanced in lockstep with ring
    int cycles = 0;              // records ingested for this session
    std::int64_t last_seen = 0;  // engine tick index of the last submit
  };

  mutable std::mutex mutex_;
  std::unordered_map<SessionId, Session> sessions_;
  nn::Tensor3 batch_;                  // (max_batch, window, features)
  nn::Tensor3 shadow_batch_;           // allocated on first shadow stage
  std::vector<VerdictEvent> pending_;  // batch_ rows [0, pending_.size())
  std::vector<VerdictEvent> done_;
  ShardStats counters_;  // lifetime counters (occupancy filled by stats())
};

}  // namespace cpsguard::serve

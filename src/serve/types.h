// Common vocabulary of the streaming detection service: session identity,
// the verdict events the engine emits, the admission-control error taxonomy
// and the engine configuration.
//
// Admission control is reject-with-typed-error, never silent drop: a submit
// the engine cannot absorb leaves every session window untouched and either
// returns a non-accepted SubmitStatus (Engine::try_submit) or throws the
// matching AdmissionError subclass (Engine::submit). The caller owns the
// retry decision; the engine never discards an accepted record.
#pragma once

#include <cstdint>

#include "util/error.h"

namespace cpsguard::serve {

/// Opaque per-patient stream identity (e.g. a device or patient id).
using SessionId = std::uint64_t;

/// Base class of every admission-control rejection.
class AdmissionError : public CpsError {
 public:
  using CpsError::CpsError;
};

/// The target shard's bounded queue (pending windows + undrained verdicts)
/// is full — the consumer is not keeping up. Retry after tick()/drain().
class QueueFullError : public AdmissionError {
 public:
  using AdmissionError::AdmissionError;
};

/// Creating the record's session would exceed EngineConfig::max_sessions.
class SessionLimitError : public AdmissionError {
 public:
  using AdmissionError::AdmissionError;
};

/// How a staged model replaces the active one (Engine::stage_model).
///
/// kEpoch: the model activates at the next tick() epoch boundary — after
/// every shard's flush, before drain — so no micro-batch ever mixes two
/// model versions and activation latency is at most one flush epoch.
///
/// kShadow: the model dual-scores every window the active model scores,
/// emitting `serve.shadow` NDJSON events and agree/disagree counters, but
/// never contributes a verdict. Engine::promote_shadow() turns it into a
/// kEpoch stage once the operator trusts it.
enum class SwapMode {
  kEpoch,
  kShadow,
};

[[nodiscard]] constexpr const char* to_string(SwapMode m) {
  switch (m) {
    case SwapMode::kEpoch: return "epoch";
    case SwapMode::kShadow: return "shadow";
  }
  return "unknown";
}

/// Non-throwing admission result (Engine::try_submit).
enum class SubmitStatus {
  kAccepted,
  kRejectedQueueFull,
  kRejectedSessionLimit,
};

[[nodiscard]] constexpr const char* to_string(SubmitStatus s) {
  switch (s) {
    case SubmitStatus::kAccepted: return "accepted";
    case SubmitStatus::kRejectedQueueFull: return "rejected_queue_full";
    case SubmitStatus::kRejectedSessionLimit: return "rejected_session_limit";
  }
  return "unknown";
}

/// One completed window verdict. Exactly one event is emitted per ready
/// window (a session's cycle `window-1` and every cycle after it), delivered
/// by tick()/drain() in (shard index, ingest order) — a total order that is
/// identical for serial and pooled flushes.
struct VerdictEvent {
  SessionId session = 0;
  /// 0-based per-session cycle index of the window's last record; the first
  /// event of a session carries cycle == window - 1.
  int cycle = 0;
  int prediction = 0;   // 1 = unsafe control action (OnlineMonitor semantics)
  double p_unsafe = 0.0;
  /// Engine tick index (completed tick() calls) at the moment the window's
  /// last record was ingested. `drain tick - ingest_tick` is the verdict's
  /// latency in ticks — the unit bench_loadgen reports percentiles over.
  std::int64_t ingest_tick = 0;
  /// Version of the model that scored this window (the shard's active model
  /// at flush time). Every verdict of one micro-batch carries the same
  /// value: hot swaps activate only at flush-epoch boundaries.
  std::uint64_t model_version = 0;
  /// Per-shard flush sequence number of the micro-batch that scored this
  /// window. Together with the shard index (derivable from the session id)
  /// it identifies the micro-batch, letting consumers assert batch purity:
  /// one (shard, flush_seq) group never mixes model versions.
  std::uint64_t flush_seq = 0;
};

struct EngineConfig {
  /// Number of SessionShards. Fixed at construction; routing is
  /// stable_hash64(session) % shards, so a given session always lands on
  /// the same shard.
  int shards = 4;
  /// Sliding-window length in cycles — must equal the window the monitor
  /// was trained with (same contract as core::OnlineMonitor).
  int window = 6;
  /// A shard flushes as soon as this many ready windows have accumulated
  /// (cross-session micro-batch); tick() flushes partial batches.
  int max_batch = 256;
  /// Bounded per-shard queue: pending (unflushed) windows plus undrained
  /// verdicts. A submit that would complete a window beyond this bound is
  /// rejected with QueueFullError.
  int queue_capacity = 4096;
  /// Engine-wide cap on concurrently open sessions.
  int max_sessions = 1 << 20;
  /// Chunk size handed to eval::batched_predict_proba at flush.
  int predict_chunk = 512;
  /// Idle-session TTL in engine ticks (0 disables eviction). A session that
  /// goes more than this many tick() calls without submitting a record is
  /// evicted during the next tick(): its window state is dropped and its
  /// session-budget slot returns, exactly as if close_session() had been
  /// called at that point — staged windows still verdict, and a later
  /// submit readmits the id with a fresh window. Eviction order is
  /// deterministic: ascending session id within ascending shard index.
  std::int64_t idle_ttl_ticks = 0;
  /// Version stamped on verdicts scored by the construction-time monitor
  /// (before any hot swap). Registry deployments pass the published version
  /// so the verdict stream lines up with the registry's lineage.
  std::uint64_t initial_model_version = 1;
  /// Deterministic mode: tick() flushes shards serially in shard order on
  /// the calling thread instead of fanning out across the pool. Output
  /// bytes are identical either way (flushes are per-shard independent and
  /// batched inference is bit-identical to per-window inference); the mode
  /// exists so golden tests can also pin scheduling.
  bool deterministic = false;
};

}  // namespace cpsguard::serve

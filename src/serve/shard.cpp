#include "serve/shard.h"

#include <algorithm>
#include <utility>

#include "eval/batch_eval.h"
#include "monitor/features.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/contracts.h"

namespace cpsguard::serve {

namespace {

// Serving telemetry, resolved once (Registry lookups take a mutex and do
// not belong on the per-record path).
struct ServeMetrics {
  obs::Counter& records;
  obs::Counter& windows_ready;
  obs::Counter& rejected_queue_full;
  obs::Counter& rejected_session_limit;
  obs::Counter& flushes;
  obs::Counter& windows_flushed;
  obs::Counter& evicted;
  obs::Counter& swaps;
  obs::Counter& shadow_windows;
  obs::Counter& shadow_disagree;
  obs::Histogram& batch_occupancy;
  obs::Histogram& flush_seconds;

  static ServeMetrics& get() {
    static ServeMetrics metrics{
        obs::Registry::instance().counter("serve.records"),
        obs::Registry::instance().counter("serve.windows_ready"),
        obs::Registry::instance().counter("serve.rejected.queue_full"),
        obs::Registry::instance().counter("serve.rejected.session_limit"),
        obs::Registry::instance().counter("serve.flushes"),
        obs::Registry::instance().counter("serve.windows_flushed"),
        obs::Registry::instance().counter("serve.evicted"),
        obs::Registry::instance().counter("serve.swaps"),
        obs::Registry::instance().counter("serve.shadow.windows"),
        obs::Registry::instance().counter("serve.shadow.disagree"),
        obs::Registry::instance().histogram("serve.batch_occupancy"),
        obs::Registry::instance().histogram("span.serve.flush"),
    };
    return metrics;
  }
};

}  // namespace

SessionShard::Session::Session(const EngineConfig& cfg)
    : ring(cfg.window, monitor::Features::kNumFeatures),
      raw(cfg.window, monitor::Features::kNumFeatures) {}

SessionShard::SessionShard(const monitor::MlMonitor& mon,
                           const EngineConfig& config,
                           std::atomic<std::int64_t>& session_budget)
    : config_(config),
      session_budget_(session_budget),
      monitor_(mon.clone()),
      version_(config.initial_model_version),
      batch_(config.max_batch, config.window,
             monitor::Features::kNumFeatures) {
  pending_.reserve(static_cast<std::size_t>(config.max_batch));
  ServeMetrics::get();  // resolve before any worker thread touches us
}

SubmitStatus SessionShard::submit(SessionId id, const sim::StepRecord& rec,
                                  std::int64_t now_tick) {
  ServeMetrics& metrics = ServeMetrics::get();
  const std::scoped_lock lock(mutex_);
  // Admission control happens before any session state is touched: a
  // rejected record leaves the window exactly where it was.
  if (pending_.size() + done_.size() >=
      static_cast<std::size_t>(config_.queue_capacity)) {
    metrics.rejected_queue_full.increment();
    ++counters_.rejected_queue_full;
    return SubmitStatus::kRejectedQueueFull;
  }
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    // Draw on the engine-wide session budget; put it back if we lost the
    // race to the last slot.
    if (session_budget_.fetch_sub(1, std::memory_order_relaxed) <= 0) {
      session_budget_.fetch_add(1, std::memory_order_relaxed);
      metrics.rejected_session_limit.increment();
      ++counters_.rejected_session_limit;
      return SubmitStatus::kRejectedSessionLimit;
    }
    it = sessions_.emplace(id, Session(config_)).first;
  }

  Session& session = it->second;
  session.last_seen = now_tick;
  // Scale once at ingest: overlapping windows would otherwise re-scale the
  // same record `window` times per flush. transform_row is bit-identical to
  // the batch transform, so flush can take the scaled fast path. The raw
  // twin keeps the unscaled row so a hot swap can rescale mid-flight
  // windows under the incoming model's scaler.
  const std::span<float> raw_slot = session.raw.push_slot();
  monitor::fill_features(rec, raw_slot);
  const std::span<float> slot = session.ring.push_slot();
  std::copy(raw_slot.begin(), raw_slot.end(), slot.begin());
  monitor_->scaler().transform_row(slot);
  session.raw.commit();
  session.ring.commit();
  ++session.cycles;
  metrics.records.increment();
  ++counters_.records;
  if (!session.ring.full()) return SubmitStatus::kAccepted;

  // Stage the ready window into the micro-batch row it will occupy.
  const auto row = pending_.size();
  const auto row_floats = static_cast<std::size_t>(config_.window) *
                          monitor::Features::kNumFeatures;
  session.ring.copy_ordered(batch_.data().subspan(row * row_floats, row_floats));
  if (shadow_ != nullptr) {
    // Same window, shadow model space: rebuilt from the raw twin through
    // the shadow scaler, into the row the shadow flush will score.
    const std::span<float> srow =
        shadow_batch_.data().subspan(row * row_floats, row_floats);
    session.raw.copy_ordered(srow);
    for (int t = 0; t < config_.window; ++t) {
      shadow_->scaler().transform_row(
          srow.subspan(static_cast<std::size_t>(t) *
                           monitor::Features::kNumFeatures,
                       monitor::Features::kNumFeatures));
    }
  }
  pending_.push_back(VerdictEvent{id, session.cycles - 1, 0, 0.0, now_tick});
  metrics.windows_ready.increment();
  if (pending_.size() == static_cast<std::size_t>(config_.max_batch)) {
    flush_locked();
  }
  return SubmitStatus::kAccepted;
}

void SessionShard::flush() {
  const std::scoped_lock lock(mutex_);
  flush_locked();
}

void SessionShard::flush_locked() {
  if (pending_.empty()) return;
  ServeMetrics& metrics = ServeMetrics::get();
  const obs::ScopedSpan span("serve.flush", metrics.flush_seconds);
  const int n = static_cast<int>(pending_.size());
  metrics.batch_occupancy.record(static_cast<double>(n));

  nn::Matrix probs;
  if (n == config_.max_batch) {
    probs = eval::batched_predict_proba_scaled(*monitor_, batch_,
                                               config_.predict_chunk);
  } else {
    // Partial (tick) flush: one exact-size tensor per flush, amortized over
    // up to max_batch windows — the per-record path stays allocation-free.
    nn::Tensor3 head(n, config_.window, monitor::Features::kNumFeatures);
    std::copy(batch_.data().begin(), batch_.data().begin() + head.size(),
              head.data().begin());
    probs = eval::batched_predict_proba_scaled(*monitor_, head,
                                               config_.predict_chunk);
  }

  for (int r = 0; r < n; ++r) {
    VerdictEvent& ev = pending_[static_cast<std::size_t>(r)];
    ev.p_unsafe = probs.at(r, 1);
    // Same rule as core::OnlineMonitor: ties resolve to the safe class.
    ev.prediction = probs.at(r, 1) > probs.at(r, 0) ? 1 : 0;
    // Batch purity by construction: the whole batch is scored by the one
    // monitor active at this flush, so every event of the (shard,
    // flush_seq) group carries the same version.
    ev.model_version = version_;
    ev.flush_seq = counters_.flushes;
    done_.push_back(ev);
  }

  if (shadow_ != nullptr) {
    // Dual-score the same windows (rebuilt in the shadow model's scaler
    // space at ingest) without touching done_: shadow verdicts are
    // observability, never output.
    nn::Matrix shadow_probs;
    if (n == config_.max_batch) {
      shadow_probs = eval::batched_predict_proba_scaled(*shadow_, shadow_batch_,
                                                        config_.predict_chunk);
    } else {
      nn::Tensor3 head(n, config_.window, monitor::Features::kNumFeatures);
      std::copy(shadow_batch_.data().begin(),
                shadow_batch_.data().begin() + head.size(),
                head.data().begin());
      shadow_probs = eval::batched_predict_proba_scaled(*shadow_, head,
                                                        config_.predict_chunk);
    }
    std::uint64_t disagree = 0;
    for (int r = 0; r < n; ++r) {
      const int shadow_pred =
          shadow_probs.at(r, 1) > shadow_probs.at(r, 0) ? 1 : 0;
      if (shadow_pred != pending_[static_cast<std::size_t>(r)].prediction) {
        ++disagree;
      }
    }
    counters_.shadow_windows += static_cast<std::uint64_t>(n);
    counters_.shadow_disagree += disagree;
    metrics.shadow_windows.add(static_cast<std::uint64_t>(n));
    metrics.shadow_disagree.add(disagree);
    CPSGUARD_OBS_EVENT(
        "serve.shadow", obs::f("active_version", version_),
        obs::f("shadow_version", shadow_version_),
        obs::f("flush_seq", counters_.flushes),
        obs::f("windows", static_cast<std::uint64_t>(n)),
        obs::f("disagree", disagree));
  }

  pending_.clear();
  metrics.flushes.increment();
  metrics.windows_flushed.add(static_cast<std::uint64_t>(n));
  ++counters_.flushes;
  counters_.windows_flushed += static_cast<std::uint64_t>(n);
}

void SessionShard::drain(std::vector<VerdictEvent>& out) {
  const std::scoped_lock lock(mutex_);
  out.insert(out.end(), done_.begin(), done_.end());
  done_.clear();
}

bool SessionShard::close(SessionId id) {
  const std::scoped_lock lock(mutex_);
  if (sessions_.erase(id) == 0) return false;
  session_budget_.fetch_add(1, std::memory_order_relaxed);
  ++counters_.closed;
  return true;
}

void SessionShard::evict_idle(std::int64_t now_tick, std::int64_t ttl,
                              std::vector<SessionId>& evicted) {
  ServeMetrics& metrics = ServeMetrics::get();
  const std::scoped_lock lock(mutex_);
  // Collect first, then erase in ascending-id order: the hash map iterates
  // in an unspecified order, and deterministic eviction order is part of
  // the TTL contract (loadgen's eviction log replays as explicit closes).
  const std::size_t first = evicted.size();
  for (const auto& [id, session] : sessions_) {
    if (session.last_seen < now_tick - ttl) evicted.push_back(id);
  }
  std::sort(evicted.begin() + static_cast<std::ptrdiff_t>(first),
            evicted.end());
  for (std::size_t i = first; i < evicted.size(); ++i) {
    sessions_.erase(evicted[i]);
    session_budget_.fetch_add(1, std::memory_order_relaxed);
    ++counters_.evicted;
    metrics.evicted.increment();
  }
}

void SessionShard::stage(std::unique_ptr<monitor::MlMonitor> mon,
                         std::uint64_t version, SwapMode mode) {
  expects(mon != nullptr && mon->trained(),
          "staged monitor must be trained");
  const std::scoped_lock lock(mutex_);
  if (mode == SwapMode::kShadow) {
    // Flush first so the shadow batch rows align with the active batch
    // starting from the next staged window; allocate the shadow batch on
    // first use (shards that never shadow pay nothing).
    flush_locked();
    if (shadow_batch_.empty()) {
      shadow_batch_ = nn::Tensor3(config_.max_batch, config_.window,
                                  monitor::Features::kNumFeatures);
    }
    shadow_ = std::move(mon);
    shadow_version_ = version;
    return;
  }
  staged_ = std::move(mon);
  staged_version_ = version;
}

bool SessionShard::activate_staged() {
  const std::scoped_lock lock(mutex_);
  if (staged_ == nullptr) return false;
  // Straggler windows staged since the engine's flush pass (concurrent
  // ingest) still score under the outgoing model — no batch ever mixes
  // versions.
  flush_locked();
  prev_ = std::move(monitor_);
  prev_version_ = version_;
  monitor_ = std::move(staged_);
  version_ = staged_version_;
  staged_version_ = 0;
  rescale_sessions_locked();
  ++counters_.swaps;
  ServeMetrics::get().swaps.increment();
  return true;
}

void SessionShard::rescale_sessions_locked() {
  // Occupied slots are [0, size): before the first wrap the head has only
  // advanced that far, and once full every slot is live. Rewriting each
  // occupied slot from the raw twin through the new scaler makes partial
  // windows bit-identical to fresh ingest under the new model.
  for (auto& [id, session] : sessions_) {
    for (int i = 0; i < session.ring.size(); ++i) {
      const std::span<const float> raw = session.raw.slot(i);
      const std::span<float> scaled = session.ring.slot(i);
      std::copy(raw.begin(), raw.end(), scaled.begin());
      monitor_->scaler().transform_row(scaled);
    }
  }
}

bool SessionShard::promote_shadow() {
  const std::scoped_lock lock(mutex_);
  if (shadow_ == nullptr) return false;
  staged_ = std::move(shadow_);
  staged_version_ = shadow_version_;
  shadow_version_ = 0;
  return true;
}

bool SessionShard::rollback() {
  const std::scoped_lock lock(mutex_);
  staged_.reset();
  staged_version_ = 0;
  shadow_.reset();
  shadow_version_ = 0;
  if (prev_ == nullptr) return false;
  staged_ = std::move(prev_);
  staged_version_ = prev_version_;
  prev_version_ = 0;
  return true;
}

std::uint64_t SessionShard::active_version() const {
  const std::scoped_lock lock(mutex_);
  return version_;
}

ShardStats SessionShard::stats() const {
  const std::scoped_lock lock(mutex_);
  ShardStats out = counters_;
  out.sessions = sessions_.size();
  out.pending_windows = pending_.size();
  out.undrained_verdicts = done_.size();
  return out;
}

}  // namespace cpsguard::serve

#include "serve/ring_window.h"

#include <algorithm>

#include "util/contracts.h"

namespace cpsguard::serve {

RingWindow::RingWindow(int window, int features)
    : window_(window),
      features_(features),
      data_(static_cast<std::size_t>(window) * static_cast<std::size_t>(features)) {
  expects(window > 0, "ring window must be positive");
  expects(features > 0, "ring feature count must be positive");
}

std::span<float> RingWindow::push_slot() {
  return std::span<float>(data_).subspan(
      static_cast<std::size_t>(head_) * static_cast<std::size_t>(features_),
      static_cast<std::size_t>(features_));
}

void RingWindow::commit() {
  head_ = head_ + 1 == window_ ? 0 : head_ + 1;
  if (size_ < window_) ++size_;
}

void RingWindow::clear() {
  head_ = 0;
  size_ = 0;
}

std::span<float> RingWindow::slot(int i) {
  expects(i >= 0 && i < window_, "slot index out of range");
  return std::span<float>(data_).subspan(
      static_cast<std::size_t>(i) * static_cast<std::size_t>(features_),
      static_cast<std::size_t>(features_));
}

std::span<const float> RingWindow::slot(int i) const {
  expects(i >= 0 && i < window_, "slot index out of range");
  return std::span<const float>(data_).subspan(
      static_cast<std::size_t>(i) * static_cast<std::size_t>(features_),
      static_cast<std::size_t>(features_));
}

void RingWindow::copy_ordered(std::span<float> dst) const {
  expects(full(), "copy_ordered requires a full window");
  expects(dst.size() == data_.size(), "destination size mismatch");
  // Oldest row sits at head_ (the slot the next commit would overwrite):
  // rows [head_, window) then [0, head_) are the window in time order.
  const auto split = static_cast<std::size_t>(head_) *
                     static_cast<std::size_t>(features_);
  std::copy(data_.begin() + static_cast<std::ptrdiff_t>(split), data_.end(),
            dst.begin());
  std::copy(data_.begin(), data_.begin() + static_cast<std::ptrdiff_t>(split),
            dst.begin() + static_cast<std::ptrdiff_t>(data_.size() - split));
}

}  // namespace cpsguard::serve

#include "serve/engine.h"

#include <string>

#include <algorithm>

#include "obs/metrics.h"
#include "registry/registry.h"
#include "serve/stable_hash.h"
#include "util/contracts.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace cpsguard::serve {

namespace {

struct EngineMetrics {
  obs::Gauge& sessions_active;
  obs::Gauge& queue_depth;
  obs::Counter& ticks;

  static EngineMetrics& get() {
    static EngineMetrics metrics{
        obs::Registry::instance().gauge("serve.sessions_active"),
        obs::Registry::instance().gauge("serve.queue_depth"),
        obs::Registry::instance().counter("serve.ticks"),
    };
    return metrics;
  }
};

}  // namespace

Engine::Engine(const monitor::MlMonitor& mon, EngineConfig config)
    : config_(config),
      session_budget_(config.max_sessions),
      active_version_(config.initial_model_version) {
  expects(mon.trained(), "engine monitor must be trained");
  expects(config.initial_model_version > 0,
          "initial_model_version must be positive");
  expects(config.shards > 0, "shard count must be positive");
  expects(config.window > 0, "window must be positive");
  expects(config.max_batch > 0, "max_batch must be positive");
  expects(config.queue_capacity >= config.max_batch,
          "queue_capacity must hold at least one full micro-batch");
  expects(config.max_sessions > 0, "max_sessions must be positive");
  expects(config.predict_chunk > 0, "predict_chunk must be positive");
  expects(config.idle_ttl_ticks >= 0, "idle_ttl_ticks must be non-negative");
  shards_.reserve(static_cast<std::size_t>(config.shards));
  for (int s = 0; s < config.shards; ++s) {
    shards_.push_back(
        std::make_unique<SessionShard>(mon, config_, session_budget_));
  }
}

int Engine::shard_of(SessionId id) const {
  return static_cast<int>(stable_hash64(id) %
                          static_cast<std::uint64_t>(config_.shards));
}

SubmitStatus Engine::try_submit(SessionId id, const sim::StepRecord& rec) {
  return shards_[static_cast<std::size_t>(shard_of(id))]->submit(
      id, rec, ticks_.load(std::memory_order_relaxed));
}

void Engine::submit(SessionId id, const sim::StepRecord& rec) {
  switch (try_submit(id, rec)) {
    case SubmitStatus::kAccepted:
      return;
    case SubmitStatus::kRejectedQueueFull:
      throw QueueFullError("serve: shard " + std::to_string(shard_of(id)) +
                           " queue full (capacity " +
                           std::to_string(config_.queue_capacity) +
                           ") for session " + std::to_string(id));
    case SubmitStatus::kRejectedSessionLimit:
      throw SessionLimitError("serve: session limit " +
                              std::to_string(config_.max_sessions) +
                              " reached admitting session " +
                              std::to_string(id));
  }
}

std::vector<VerdictEvent> Engine::tick() {
  EngineMetrics& metrics = EngineMetrics::get();
  metrics.ticks.increment();
  // This tick's index: records ingested since the previous tick carry it
  // as their ingest_tick, so a verdict delivered below has latency 0.
  const std::int64_t now = ticks_.load(std::memory_order_relaxed);
  evicted_last_tick_.clear();
  if (config_.idle_ttl_ticks > 0) {
    for (auto& shard : shards_) {
      shard->evict_idle(now, config_.idle_ttl_ticks, evicted_last_tick_);
    }
  }
  const int n = static_cast<int>(shards_.size());
  if (config_.deterministic) {
    for (auto& shard : shards_) shard->flush();
  } else {
    util::parallel_for(n, [&](int s) {
      shards_[static_cast<std::size_t>(s)]->flush();
    });
  }
  // Epoch boundary: a staged model activates here — after every shard
  // flushed under the outgoing model, before this tick's verdicts drain.
  // Stage-to-activate latency is therefore at most one flush epoch.
  if (staged_version_ != 0) {
    for (auto& shard : shards_) shard->activate_staged();
    prev_version_ = active_version_;
    active_version_ = staged_version_;
    staged_version_ = 0;
    ++swap_stats_.swaps;
    swap_stats_.last_activate_tick = now;
    const std::int64_t latency = (now + 1) - stage_tick_;
    swap_stats_.max_latency_ticks =
        std::max(swap_stats_.max_latency_ticks, latency);
    util::log_info("serve: activated model v", active_version_, " at tick ",
                   now, " (staged at tick ", stage_tick_, ")");
  }
  std::vector<VerdictEvent> out = drain();
  ticks_.fetch_add(1, std::memory_order_relaxed);
  metrics.sessions_active.set(static_cast<double>(sessions_active()));
  metrics.queue_depth.set(static_cast<double>(queue_depth()));
  return out;
}

std::vector<VerdictEvent> Engine::drain() {
  std::vector<VerdictEvent> out;
  for (auto& shard : shards_) shard->drain(out);
  return out;
}

bool Engine::close_session(SessionId id) {
  const bool closed =
      shards_[static_cast<std::size_t>(shard_of(id))]->close(id);
  EngineMetrics::get().sessions_active.set(
      static_cast<double>(sessions_active()));
  return closed;
}

std::size_t Engine::sessions_active() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->stats().sessions;
  return total;
}

std::size_t Engine::queue_depth() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const ShardStats s = shard->stats();
    total += s.pending_windows + s.undrained_verdicts;
  }
  return total;
}

void Engine::stage_model(const monitor::MlMonitor& mon, std::uint64_t version,
                         SwapMode mode) {
  expects(mon.trained(), "staged monitor must be trained");
  expects(version > 0, "model versions start at 1");
  for (auto& shard : shards_) shard->stage(mon.clone(), version, mode);
  if (mode == SwapMode::kShadow) {
    shadow_version_ = version;
    util::log_info("serve: shadow-scoring model v", version, " against v",
                   active_version_);
    return;
  }
  staged_version_ = version;
  stage_tick_ = ticks();
  swap_stats_.last_stage_tick = stage_tick_;
}

void Engine::swap_model(const registry::ModelRegistry& reg,
                        std::uint64_t version, SwapMode mode) {
  // load() verifies the artifact (structure + SHA) before any shard sees
  // it; the mmap backing dies with `loaded` — stage clones into owned
  // storage, so the registry file can be removed afterwards.
  const registry::ModelRegistry::LoadedModel loaded = reg.load(version);
  stage_model(*loaded.monitor, version, mode);
}

bool Engine::promote_shadow() {
  if (shadow_version_ == 0) return false;
  bool any = false;
  for (auto& shard : shards_) any = shard->promote_shadow() || any;
  if (!any) return false;
  staged_version_ = shadow_version_;
  shadow_version_ = 0;
  stage_tick_ = ticks();
  swap_stats_.last_stage_tick = stage_tick_;
  return true;
}

bool Engine::rollback() {
  bool restaged = false;
  for (auto& shard : shards_) restaged = shard->rollback() || restaged;
  shadow_version_ = 0;
  if (!restaged) {
    staged_version_ = 0;
    return false;
  }
  staged_version_ = prev_version_;
  prev_version_ = 0;
  stage_tick_ = ticks();
  swap_stats_.last_stage_tick = stage_tick_;
  util::log_info("serve: rolling back to model v", staged_version_);
  return true;
}

EngineStats Engine::stats() const {
  EngineStats out;
  out.ticks = ticks();
  out.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const ShardStats s = shard->stats();
    out.sessions += s.sessions;
    out.queue_depth += s.pending_windows + s.undrained_verdicts;
    out.records += s.records;
    out.windows_flushed += s.windows_flushed;
    out.flushes += s.flushes;
    out.closed += s.closed;
    out.evicted += s.evicted;
    out.rejected_queue_full += s.rejected_queue_full;
    out.rejected_session_limit += s.rejected_session_limit;
    out.swaps += s.swaps;
    out.shadow_windows += s.shadow_windows;
    out.shadow_disagree += s.shadow_disagree;
    out.shards.push_back(s);
  }
  return out;
}

}  // namespace cpsguard::serve

#include "serve/engine.h"

#include <string>

#include "obs/metrics.h"
#include "serve/stable_hash.h"
#include "util/contracts.h"
#include "util/thread_pool.h"

namespace cpsguard::serve {

namespace {

struct EngineMetrics {
  obs::Gauge& sessions_active;
  obs::Gauge& queue_depth;
  obs::Counter& ticks;

  static EngineMetrics& get() {
    static EngineMetrics metrics{
        obs::Registry::instance().gauge("serve.sessions_active"),
        obs::Registry::instance().gauge("serve.queue_depth"),
        obs::Registry::instance().counter("serve.ticks"),
    };
    return metrics;
  }
};

}  // namespace

Engine::Engine(const monitor::MlMonitor& mon, EngineConfig config)
    : config_(config), session_budget_(config.max_sessions) {
  expects(mon.trained(), "engine monitor must be trained");
  expects(config.shards > 0, "shard count must be positive");
  expects(config.window > 0, "window must be positive");
  expects(config.max_batch > 0, "max_batch must be positive");
  expects(config.queue_capacity >= config.max_batch,
          "queue_capacity must hold at least one full micro-batch");
  expects(config.max_sessions > 0, "max_sessions must be positive");
  expects(config.predict_chunk > 0, "predict_chunk must be positive");
  expects(config.idle_ttl_ticks >= 0, "idle_ttl_ticks must be non-negative");
  shards_.reserve(static_cast<std::size_t>(config.shards));
  for (int s = 0; s < config.shards; ++s) {
    shards_.push_back(
        std::make_unique<SessionShard>(mon, config_, session_budget_));
  }
}

int Engine::shard_of(SessionId id) const {
  return static_cast<int>(stable_hash64(id) %
                          static_cast<std::uint64_t>(config_.shards));
}

SubmitStatus Engine::try_submit(SessionId id, const sim::StepRecord& rec) {
  return shards_[static_cast<std::size_t>(shard_of(id))]->submit(
      id, rec, ticks_.load(std::memory_order_relaxed));
}

void Engine::submit(SessionId id, const sim::StepRecord& rec) {
  switch (try_submit(id, rec)) {
    case SubmitStatus::kAccepted:
      return;
    case SubmitStatus::kRejectedQueueFull:
      throw QueueFullError("serve: shard " + std::to_string(shard_of(id)) +
                           " queue full (capacity " +
                           std::to_string(config_.queue_capacity) +
                           ") for session " + std::to_string(id));
    case SubmitStatus::kRejectedSessionLimit:
      throw SessionLimitError("serve: session limit " +
                              std::to_string(config_.max_sessions) +
                              " reached admitting session " +
                              std::to_string(id));
  }
}

std::vector<VerdictEvent> Engine::tick() {
  EngineMetrics& metrics = EngineMetrics::get();
  metrics.ticks.increment();
  // This tick's index: records ingested since the previous tick carry it
  // as their ingest_tick, so a verdict delivered below has latency 0.
  const std::int64_t now = ticks_.load(std::memory_order_relaxed);
  evicted_last_tick_.clear();
  if (config_.idle_ttl_ticks > 0) {
    for (auto& shard : shards_) {
      shard->evict_idle(now, config_.idle_ttl_ticks, evicted_last_tick_);
    }
  }
  const int n = static_cast<int>(shards_.size());
  if (config_.deterministic) {
    for (auto& shard : shards_) shard->flush();
  } else {
    util::parallel_for(n, [&](int s) {
      shards_[static_cast<std::size_t>(s)]->flush();
    });
  }
  std::vector<VerdictEvent> out = drain();
  ticks_.fetch_add(1, std::memory_order_relaxed);
  metrics.sessions_active.set(static_cast<double>(sessions_active()));
  metrics.queue_depth.set(static_cast<double>(queue_depth()));
  return out;
}

std::vector<VerdictEvent> Engine::drain() {
  std::vector<VerdictEvent> out;
  for (auto& shard : shards_) shard->drain(out);
  return out;
}

bool Engine::close_session(SessionId id) {
  const bool closed =
      shards_[static_cast<std::size_t>(shard_of(id))]->close(id);
  EngineMetrics::get().sessions_active.set(
      static_cast<double>(sessions_active()));
  return closed;
}

std::size_t Engine::sessions_active() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->stats().sessions;
  return total;
}

std::size_t Engine::queue_depth() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const ShardStats s = shard->stats();
    total += s.pending_windows + s.undrained_verdicts;
  }
  return total;
}

EngineStats Engine::stats() const {
  EngineStats out;
  out.ticks = ticks();
  out.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const ShardStats s = shard->stats();
    out.sessions += s.sessions;
    out.queue_depth += s.pending_windows + s.undrained_verdicts;
    out.records += s.records;
    out.windows_flushed += s.windows_flushed;
    out.flushes += s.flushes;
    out.closed += s.closed;
    out.evicted += s.evicted;
    out.rejected_queue_full += s.rejected_queue_full;
    out.rejected_session_limit += s.rejected_session_limit;
    out.shards.push_back(s);
  }
  return out;
}

}  // namespace cpsguard::serve

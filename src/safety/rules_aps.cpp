#include "safety/rules_aps.h"

#include "util/contracts.h"

namespace cpsguard::safety {

namespace {

using F = StlFormula;

F::Ptr action_atom(sim::ControlAction a) {
  const std::string name = "u" + std::to_string(static_cast<int>(a) + 1);
  return F::atom(name, Cmp::kGt, 0.5);
}

F::Ptr bg_above(double bgt) { return F::atom("BG", Cmp::kGt, bgt); }
F::Ptr bg_below(double bgt) { return F::atom("BG", Cmp::kLt, bgt); }
F::Ptr dbg_pos() { return F::atom("dBG", Cmp::kGt, kDbgZeroEps); }
F::Ptr dbg_neg() { return F::atom("dBG", Cmp::kLt, -kDbgZeroEps); }
F::Ptr diob_pos() { return F::atom("dIOB", Cmp::kGt, kDiobZeroEps); }
F::Ptr diob_neg() { return F::atom("dIOB", Cmp::kLt, -kDiobZeroEps); }
F::Ptr diob_zero() { return F::atom("dIOB", Cmp::kEqApprox, 0.0, kDiobZeroEps); }

}  // namespace

std::vector<SafetyRule> aps_safety_rules(double bg_target) {
  expects(bg_target > sim::kHypoglycemiaBg, "BG target must exceed hypo threshold");
  using sim::ControlAction;
  const auto u1 = action_atom(ControlAction::kDecreaseInsulin);
  const auto u2 = action_atom(ControlAction::kIncreaseInsulin);
  const auto u3 = action_atom(ControlAction::kStopInsulin);
  const auto u4 = action_atom(ControlAction::kKeepInsulin);
  const auto h1 = HazardType::kH1TooMuchInsulin;
  const auto h2 = HazardType::kH2TooLittleInsulin;

  std::vector<SafetyRule> rules;
  rules.reserve(12);
  auto add = [&](int id, F::Ptr f, HazardType h, std::string desc) {
    rules.push_back({id, std::move(f), h, std::move(desc)});
  };

  // Rules 1-5: decreasing insulin while hyperglycemic (u1, H2).
  add(1, F::conj_all({bg_above(bg_target), dbg_pos(), diob_neg(), u1}), h2,
      "BG>BGT rising, IOB falling, yet insulin decreased");
  add(2, F::conj_all({bg_above(bg_target), dbg_pos(), diob_zero(), u1}), h2,
      "BG>BGT rising, IOB flat, yet insulin decreased");
  add(3, F::conj_all({bg_above(bg_target), dbg_neg(), diob_pos(), u1}), h2,
      "BG>BGT falling, IOB rising, insulin decreased");
  add(4, F::conj_all({bg_above(bg_target), dbg_neg(), diob_neg(), u1}), h2,
      "BG>BGT falling, IOB falling, insulin decreased");
  add(5, F::conj_all({bg_above(bg_target), dbg_neg(), diob_zero(), u1}), h2,
      "BG>BGT falling, IOB flat, insulin decreased");

  // Rules 6-8: increasing insulin while heading low (u2, H1).
  add(6, F::conj_all({bg_below(bg_target), dbg_neg(), diob_pos(), u2}), h1,
      "BG<BGT falling, IOB rising, yet insulin increased");
  add(7, F::conj_all({bg_below(bg_target), dbg_neg(), diob_neg(), u2}), h1,
      "BG<BGT falling, IOB falling, insulin increased");
  add(8, F::conj_all({bg_below(bg_target), dbg_neg(), diob_zero(), u2}), h1,
      "BG<BGT falling, IOB flat, insulin increased");

  // Rule 9: stopping insulin while hyperglycemic (u3, H2).
  add(9, F::conj(bg_above(bg_target), u3), h2,
      "BG>BGT yet insulin stopped");

  // Rule 10: not stopping insulin while hypoglycemic (¬u3, H1).
  add(10, F::conj(F::atom("BG", Cmp::kLt, sim::kHypoglycemiaBg), F::negate(u3)),
      h1, "BG<70 yet insulin not stopped");

  // Rules 11-12: keeping insulin in a deteriorating context (u4).
  add(11,
      F::conj_all({bg_above(bg_target), dbg_pos(),
                   F::atom("dIOB", Cmp::kLe, kDiobZeroEps), u4}),
      h2, "BG>BGT rising, IOB not rising, insulin kept");
  add(12,
      F::conj_all({bg_below(bg_target), dbg_neg(),
                   F::atom("dIOB", Cmp::kGe, -kDiobZeroEps), u4}),
      h1, "BG<BGT falling, IOB not falling, insulin kept");

  ensures(rules.size() == 12, "Table I has exactly 12 rules");
  return rules;
}

StlFormula::Ptr unsafe_action_disjunction(double bg_target) {
  std::vector<StlFormula::Ptr> fs;
  for (const SafetyRule& r : aps_safety_rules(bg_target)) fs.push_back(r.formula);
  return StlFormula::disj_all(fs);
}

SignalTrace context_signals(const WindowContext& ctx) {
  SignalTrace st;
  st.add_signal("BG", {ctx.bg});
  st.add_signal("dBG", {ctx.d_bg});
  st.add_signal("dIOB", {ctx.d_iob});
  for (int a = 0; a < sim::kNumActions; ++a) {
    st.add_signal("u" + std::to_string(a + 1),
                  {a == static_cast<int>(ctx.action) ? 1.0 : 0.0});
  }
  return st;
}

int semantic_indicator(const WindowContext& ctx, double bg_target) {
  static thread_local double cached_target = -1.0;
  static thread_local StlFormula::Ptr cached;
  if (!cached || cached_target != bg_target) {
    cached = unsafe_action_disjunction(bg_target);
    cached_target = bg_target;
  }
  return cached->eval(context_signals(ctx), 0) ? 1 : 0;
}

std::vector<int> firing_rules(const WindowContext& ctx, double bg_target) {
  const SignalTrace st = context_signals(ctx);
  std::vector<int> out;
  for (const SafetyRule& r : aps_safety_rules(bg_target)) {
    if (r.formula->eval(st, 0)) out.push_back(r.id);
  }
  return out;
}

}  // namespace cpsguard::safety

// Hazard definitions and ground-truth labelling (Eq. 1 of the paper):
// a control action at time t is unsafe iff a hazard occurs on the *true*
// patient state within the prediction horizon T.
#pragma once

#include <string>
#include <vector>

#include "sim/trace.h"

namespace cpsguard::safety {

enum class HazardType : int {
  kNone = 0,
  kH1TooMuchInsulin = 1,  // → hypoglycemia (BG < 70)
  kH2TooLittleInsulin = 2 // → hyperglycemia (BG > 180)
};

std::string to_string(HazardType h);

/// Hazard at a single step of a trace (on true BG).
HazardType hazard_at(const sim::StepRecord& r);

/// Eq. 1: y_t = 1 iff ∃ t' ∈ [t, t+T] with the true state in a hazard
/// region. Returns one binary label per step.
std::vector<int> label_trace(const sim::Trace& trace, int horizon_steps);

/// Fraction of positive labels over a set of traces — the "faulty sample"
/// percentage the paper reports per simulator.
double positive_fraction(const std::vector<std::vector<int>>& labels);

}  // namespace cpsguard::safety

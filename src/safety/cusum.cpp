#include "safety/cusum.h"

#include <algorithm>

#include "util/contracts.h"
#include "util/stats.h"

namespace cpsguard::safety {

CusumDetector::CusumDetector(CusumConfig config) : config_(config) {
  expects(config.slack >= 0.0, "slack must be non-negative");
  expects(config.threshold > 0.0, "threshold must be positive");
}

bool CusumDetector::step(double value) {
  const double dev = value - config_.target_mean;
  s_pos_ = std::max(0.0, s_pos_ + dev - config_.slack);
  s_neg_ = std::max(0.0, s_neg_ - dev - config_.slack);
  return s_pos_ > config_.threshold || s_neg_ > config_.threshold;
}

int CusumDetector::first_alarm(std::span<const double> signal) {
  reset();
  for (std::size_t i = 0; i < signal.size(); ++i) {
    if (step(signal[i])) return static_cast<int>(i);
  }
  return -1;
}

void CusumDetector::reset() {
  s_pos_ = 0.0;
  s_neg_ = 0.0;
}

CusumConfig CusumDetector::calibrate(std::span<const double> clean_signal) {
  expects(clean_signal.size() >= 2, "need a clean reference signal");
  CusumConfig cfg;
  cfg.target_mean = util::mean(clean_signal);
  const double sigma = std::max(util::stddev(clean_signal), 1e-9);
  cfg.slack = 0.5 * sigma;
  cfg.threshold = 8.0 * sigma;
  return cfg;
}

}  // namespace cpsguard::safety

// Rule-based safety monitor: flags a control action as unsafe iff any Table I
// formula fires on the current (sensor-view) context. This is the paper's
// knowledge-only baseline ("Rule-based" rows of Table III) — applicable to
// any controller with the same functional specification, but limited by the
// fidelity of the rules.
#pragma once

#include <vector>

#include "safety/rules_aps.h"
#include "sim/trace.h"

namespace cpsguard::safety {

class RuleBasedMonitor {
 public:
  explicit RuleBasedMonitor(double bg_target = sim::kTargetBg);

  /// Context of one trace step as the monitor sees it.
  [[nodiscard]] WindowContext context_of(const sim::StepRecord& r) const;

  /// 1 (unsafe) iff any rule fires at this step.
  [[nodiscard]] int predict_step(const sim::StepRecord& r) const;

  /// Per-step predictions for a whole trace.
  [[nodiscard]] std::vector<int> predict_trace(const sim::Trace& trace) const;

  [[nodiscard]] double bg_target() const { return bg_target_; }

 private:
  double bg_target_;
  StlFormula::Ptr disjunction_;
};

}  // namespace cpsguard::safety

#include "safety/hazard.h"

#include "util/contracts.h"

namespace cpsguard::safety {

std::string to_string(HazardType h) {
  switch (h) {
    case HazardType::kNone: return "none";
    case HazardType::kH1TooMuchInsulin: return "H1(hypoglycemia)";
    case HazardType::kH2TooLittleInsulin: return "H2(hyperglycemia)";
  }
  return "unknown";
}

HazardType hazard_at(const sim::StepRecord& r) {
  if (r.true_bg < sim::kHypoglycemiaBg) return HazardType::kH1TooMuchInsulin;
  if (r.true_bg > sim::kHyperglycemiaBg) return HazardType::kH2TooLittleInsulin;
  return HazardType::kNone;
}

std::vector<int> label_trace(const sim::Trace& trace, int horizon_steps) {
  expects(horizon_steps >= 0, "horizon must be non-negative");
  const int n = trace.length();
  std::vector<int> labels(static_cast<std::size_t>(n), 0);
  // Sliding suffix scan: next_hazard = first step >= i in hazard (or -1).
  int next_hazard = -1;
  for (int i = n - 1; i >= 0; --i) {
    if (hazard_at(trace.steps[static_cast<std::size_t>(i)]) != HazardType::kNone) {
      next_hazard = i;
    }
    if (next_hazard >= 0 && next_hazard - i <= horizon_steps) {
      labels[static_cast<std::size_t>(i)] = 1;
    }
  }
  return labels;
}

double positive_fraction(const std::vector<std::vector<int>>& labels) {
  std::size_t total = 0, positive = 0;
  for (const auto& trace_labels : labels) {
    total += trace_labels.size();
    for (int y : trace_labels) positive += static_cast<std::size_t>(y);
  }
  return total == 0 ? 0.0 : static_cast<double>(positive) / static_cast<double>(total);
}

}  // namespace cpsguard::safety

#include "safety/rule_monitor.h"

namespace cpsguard::safety {

RuleBasedMonitor::RuleBasedMonitor(double bg_target)
    : bg_target_(bg_target), disjunction_(unsafe_action_disjunction(bg_target)) {}

WindowContext RuleBasedMonitor::context_of(const sim::StepRecord& r) const {
  WindowContext ctx;
  ctx.bg = r.sensor_bg;
  ctx.d_bg = r.d_bg;
  ctx.d_iob = r.d_iob;
  ctx.action = r.action;
  return ctx;
}

int RuleBasedMonitor::predict_step(const sim::StepRecord& r) const {
  return disjunction_->eval(context_signals(context_of(r)), 0) ? 1 : 0;
}

std::vector<int> RuleBasedMonitor::predict_trace(const sim::Trace& trace) const {
  std::vector<int> out;
  out.reserve(trace.steps.size());
  for (const auto& r : trace.steps) out.push_back(predict_step(r));
  return out;
}

}  // namespace cpsguard::safety

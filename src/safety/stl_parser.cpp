#include "safety/stl_parser.h"

#include <cctype>
#include <limits>

#include "util/parse.h"

namespace cpsguard::safety {

StlParseError::StlParseError(const std::string& message, std::size_t position)
    : CpsError(message + " (at offset " + std::to_string(position) + ")"),
      position_(position) {}

namespace {

// Recursion budget for nested formulas. Each grammar level recurses through
// disj→conj→until→unary, so hostile input like "((((…" would otherwise
// smash the stack long before exhausting memory (found by fuzz target
// "stl"). 64 parenthesis levels is far beyond any real Table-I rule.
constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StlFormula::Ptr parse() {
    StlFormula::Ptr f = disj();
    skip_ws();
    if (pos_ != text_.size()) {
      throw StlParseError("trailing input after formula", pos_);
    }
    return f;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool eat(const std::string& token) {
    skip_ws();
    if (text_.compare(pos_, token.size(), token) == 0) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      throw StlParseError(std::string("expected '") + c + "'", pos_);
    }
    ++pos_;
  }

  int integer() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) throw StlParseError("expected an integer", pos_);
    // stoi would throw untyped std::out_of_range on "99999999999" (fuzz
    // target "stl"); window bounds are step counts, so keep them in int.
    const auto v = util::try_parse_int(text_.substr(start, pos_ - start));
    if (!v || *v > std::numeric_limits<int>::max()) {
      throw StlParseError("integer out of range", start);
    }
    return static_cast<int>(*v);
  }

  double number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.')) {
      digits = true;
      ++pos_;
    }
    if (!digits) throw StlParseError("expected a number", pos_);
    // Strict parse: "." or "1.2.3" pass the digit scan above but are not
    // numbers (stod threw untyped std::invalid_argument on the former, and
    // silently truncated the latter; both found by fuzz target "stl").
    const auto v = util::try_parse_double(text_.substr(start, pos_ - start));
    if (!v) throw StlParseError("malformed number", start);
    return *v;
  }

  std::string identifier() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) throw StlParseError("expected a signal name", pos_);
    return text_.substr(start, pos_ - start);
  }

  std::pair<int, int> window() {
    expect('[');
    const int a = integer();
    expect(',');
    const int b = integer();
    expect(']');
    if (b < a) throw StlParseError("temporal window must be ordered", pos_);
    return {a, b};
  }

  StlFormula::Ptr disj() {
    StlFormula::Ptr lhs = conj();
    while (eat("||")) lhs = StlFormula::disj(lhs, conj());
    return lhs;
  }

  StlFormula::Ptr conj() {
    StlFormula::Ptr lhs = until();
    while (eat("&&")) lhs = StlFormula::conj(lhs, until());
    return lhs;
  }

  StlFormula::Ptr until() {
    StlFormula::Ptr lhs = unary();
    skip_ws();
    // 'U[' distinguishes Until from a signal name starting with U.
    if (pos_ + 1 < text_.size() && text_[pos_] == 'U' && text_[pos_ + 1] == '[') {
      ++pos_;
      const auto [a, b] = window();
      return StlFormula::until(lhs, unary(), a, b);
    }
    return lhs;
  }

  bool temporal_ahead(char op) {
    skip_ws();
    return pos_ + 1 < text_.size() && text_[pos_] == op && text_[pos_ + 1] == '[';
  }

  StlFormula::Ptr unary() {
    // Every nesting construct ('!', 'G[', 'F[', '(') recurses through
    // unary(), so one depth guard here bounds the whole grammar.
    if (++depth_ > kMaxDepth) {
      throw StlParseError("formula nested deeper than 64 levels", pos_);
    }
    StlFormula::Ptr f = unary_inner();
    --depth_;
    return f;
  }

  StlFormula::Ptr unary_inner() {
    skip_ws();
    if (eat("!")) return StlFormula::negate(unary());
    if (temporal_ahead('G')) {
      ++pos_;
      const auto [a, b] = window();
      expect('(');
      StlFormula::Ptr f = disj();
      expect(')');
      return StlFormula::always(f, a, b);
    }
    if (temporal_ahead('F')) {
      ++pos_;
      const auto [a, b] = window();
      expect('(');
      StlFormula::Ptr f = disj();
      expect(')');
      return StlFormula::eventually(f, a, b);
    }
    if (peek() == '(') {
      expect('(');
      StlFormula::Ptr f = disj();
      expect(')');
      return f;
    }
    // Keywords before generic identifiers.
    {
      const std::size_t save = pos_;
      skip_ws();
      const std::size_t start = pos_;
      if (eat("true") && !std::isalnum(static_cast<unsigned char>(
                             pos_ < text_.size() ? text_[pos_] : ' '))) {
        return StlFormula::conj_all({});
      }
      pos_ = save;
      if (eat("false") && !std::isalnum(static_cast<unsigned char>(
                              pos_ < text_.size() ? text_[pos_] : ' '))) {
        return StlFormula::disj_all({});
      }
      pos_ = save;
      (void)start;
    }
    return atom();
  }

  StlFormula::Ptr atom() {
    const std::string name = identifier();
    skip_ws();
    Cmp cmp;
    if (eat("<=")) {
      cmp = Cmp::kLe;
    } else if (eat(">=")) {
      cmp = Cmp::kGe;
    } else if (eat("==")) {
      cmp = Cmp::kEqApprox;
    } else if (eat("<")) {
      cmp = Cmp::kLt;
    } else if (eat(">")) {
      cmp = Cmp::kGt;
    } else {
      throw StlParseError("expected a comparison operator", pos_);
    }
    const double threshold = number();
    // "==" needs a tolerance; accept an optional "~eps" suffix.
    double eps = 1e-9;
    if (cmp == Cmp::kEqApprox && eat("~")) eps = number();
    return StlFormula::atom(name, cmp, threshold, eps);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

StlFormula::Ptr parse_stl(const std::string& text) {
  Parser parser(text);
  return parser.parse();
}

}  // namespace cpsguard::safety

// The paper's Table I: twelve context-dependent safety specifications for
// APS, derived via control-theoretic hazard analysis (STPA). Each rule names
// the context in which a control action u1..u4 is potentially unsafe and the
// hazard it implies.
//
// Signals used by the formulas:
//   "BG"   — blood glucose (mg/dL), sensor view
//   "dBG"  — BG trend (mg/dL per min)
//   "dIOB" — insulin-on-board trend (U per min)
//   "u1".."u4" — one-hot control action indicators (0/1)
#pragma once

#include <vector>

#include "safety/hazard.h"
#include "safety/stl.h"
#include "sim/types.h"

namespace cpsguard::safety {

struct SafetyRule {
  int id = 0;                       // 1..12, matching Table I
  StlFormula::Ptr formula;
  HazardType hazard = HazardType::kNone;
  std::string description;
};

/// Dead-band below which a trend counts as "zero" in the Table I formulas.
/// Set above the CGM noise floor: with ~2 mg/dL sensor noise and a 15-min
/// trend window, noise alone produces |dBG| ≈ 0.19 mg/dL/min, so a smaller
/// dead-band would classify noise as rising/falling and flood the rules
/// with false alarms.
inline constexpr double kDbgZeroEps = 0.25;   // mg/dL per min
inline constexpr double kDiobZeroEps = 0.002; // U per min

/// The 12 rules of Table I, parameterized by the BG target (BGT).
std::vector<SafetyRule> aps_safety_rules(double bg_target = sim::kTargetBg);

/// The disjunction ∨ Φ_h over all rules — the indicator inside the semantic
/// loss (Eq. 2).
StlFormula::Ptr unsafe_action_disjunction(double bg_target = sim::kTargetBg);

/// Aggregated context of one monitoring window: the f(μ(X_t)) of Eq. 2.
struct WindowContext {
  double bg = 120.0;      // aggregated BG (mg/dL)
  double d_bg = 0.0;      // aggregated BG trend (mg/dL per min)
  double d_iob = 0.0;     // aggregated IOB trend (U per min)
  sim::ControlAction action = sim::ControlAction::kKeepInsulin;
};

/// Build a single-sample SignalTrace from a window context.
SignalTrace context_signals(const WindowContext& ctx);

/// I(∨ Φ_h): 1 if any Table I rule fires for this context, else 0.
int semantic_indicator(const WindowContext& ctx,
                       double bg_target = sim::kTargetBg);

/// Which rules fire for this context (useful for transparency reports:
/// explaining *why* a monitor flags an action).
std::vector<int> firing_rules(const WindowContext& ctx,
                              double bg_target = sim::kTargetBg);

}  // namespace cpsguard::safety

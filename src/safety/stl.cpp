#include "safety/stl.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/contracts.h"

namespace cpsguard::safety {

void SignalTrace::add_signal(const std::string& name, std::vector<double> values) {
  expects(!name.empty(), "signal name must not be empty");
  if (signals_.empty()) {
    length_ = static_cast<int>(values.size());
  } else {
    expects(static_cast<int>(values.size()) == length_,
            "all signals must have equal length");
  }
  signals_[name] = std::move(values);
}

bool SignalTrace::has_signal(const std::string& name) const {
  return signals_.contains(name);
}

double SignalTrace::value(const std::string& name, int t) const {
  const auto it = signals_.find(name);
  expects(it != signals_.end(), "unknown signal: " + name);
  expects(t >= 0 && t < length_, "time index out of range");
  return it->second[static_cast<std::size_t>(t)];
}

std::string to_string(Cmp c) {
  switch (c) {
    case Cmp::kLt: return "<";
    case Cmp::kLe: return "<=";
    case Cmp::kGt: return ">";
    case Cmp::kGe: return ">=";
    case Cmp::kEqApprox: return "==";
  }
  return "?";
}

StlFormula::Ptr StlFormula::constant(bool value) {
  auto f = std::shared_ptr<StlFormula>(new StlFormula());
  f->kind_ = value ? Kind::kTrue : Kind::kFalse;
  return f;
}

StlFormula::Ptr StlFormula::atom(std::string signal, Cmp cmp, double threshold,
                                 double eps) {
  cpsguard::expects(!signal.empty(), "atom needs a signal name");
  cpsguard::expects(eps >= 0.0, "eps must be non-negative");
  auto f = std::shared_ptr<StlFormula>(new StlFormula());
  f->kind_ = Kind::kAtom;
  f->signal_ = std::move(signal);
  f->cmp_ = cmp;
  f->threshold_ = threshold;
  f->eps_ = eps;
  return f;
}

StlFormula::Ptr StlFormula::negate(Ptr f) {
  cpsguard::expects(f != nullptr, "negate needs a formula");
  auto g = std::shared_ptr<StlFormula>(new StlFormula());
  g->kind_ = Kind::kNot;
  g->left_ = std::move(f);
  return g;
}

StlFormula::Ptr StlFormula::conj(Ptr a, Ptr b) {
  cpsguard::expects(a != nullptr && b != nullptr, "conj needs two formulas");
  auto g = std::shared_ptr<StlFormula>(new StlFormula());
  g->kind_ = Kind::kAnd;
  g->left_ = std::move(a);
  g->right_ = std::move(b);
  return g;
}

StlFormula::Ptr StlFormula::disj(Ptr a, Ptr b) {
  cpsguard::expects(a != nullptr && b != nullptr, "disj needs two formulas");
  auto g = std::shared_ptr<StlFormula>(new StlFormula());
  g->kind_ = Kind::kOr;
  g->left_ = std::move(a);
  g->right_ = std::move(b);
  return g;
}

StlFormula::Ptr StlFormula::always(Ptr f, int a, int b) {
  cpsguard::expects(f != nullptr && a >= 0 && b >= a, "bad temporal window");
  auto g = std::shared_ptr<StlFormula>(new StlFormula());
  g->kind_ = Kind::kAlways;
  g->left_ = std::move(f);
  g->win_a_ = a;
  g->win_b_ = b;
  return g;
}

StlFormula::Ptr StlFormula::eventually(Ptr f, int a, int b) {
  cpsguard::expects(f != nullptr && a >= 0 && b >= a, "bad temporal window");
  auto g = std::shared_ptr<StlFormula>(new StlFormula());
  g->kind_ = Kind::kEventually;
  g->left_ = std::move(f);
  g->win_a_ = a;
  g->win_b_ = b;
  return g;
}

StlFormula::Ptr StlFormula::until(Ptr lhs, Ptr rhs, int a, int b) {
  cpsguard::expects(lhs != nullptr && rhs != nullptr && a >= 0 && b >= a,
                    "bad until window");
  auto g = std::shared_ptr<StlFormula>(new StlFormula());
  g->kind_ = Kind::kUntil;
  g->left_ = std::move(lhs);
  g->right_ = std::move(rhs);
  g->win_a_ = a;
  g->win_b_ = b;
  return g;
}

StlFormula::Ptr StlFormula::conj_all(const std::vector<Ptr>& fs) {
  if (fs.empty()) return constant(true);
  Ptr acc = fs.front();
  for (std::size_t i = 1; i < fs.size(); ++i) acc = conj(acc, fs[i]);
  return acc;
}

StlFormula::Ptr StlFormula::disj_all(const std::vector<Ptr>& fs) {
  if (fs.empty()) return constant(false);
  Ptr acc = fs.front();
  for (std::size_t i = 1; i < fs.size(); ++i) acc = disj(acc, fs[i]);
  return acc;
}

bool StlFormula::eval(const SignalTrace& trace, int t) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kFalse:
      return false;
    case Kind::kAtom: {
      const double v = trace.value(signal_, t);
      switch (cmp_) {
        case Cmp::kGt: return v > threshold_;
        case Cmp::kGe: return v >= threshold_;
        case Cmp::kLt: return v < threshold_;
        case Cmp::kLe: return v <= threshold_;
        case Cmp::kEqApprox: return std::fabs(v - threshold_) <= eps_;
      }
      return false;
    }
    case Kind::kNot:
      return !left_->eval(trace, t);
    case Kind::kAnd:
      return left_->eval(trace, t) && right_->eval(trace, t);
    case Kind::kOr:
      return left_->eval(trace, t) || right_->eval(trace, t);
    case Kind::kAlways: {
      const int hi = std::min(t + win_b_, trace.length() - 1);
      for (int u = t + win_a_; u <= hi; ++u) {
        if (!left_->eval(trace, u)) return false;
      }
      return true;
    }
    case Kind::kEventually: {
      const int hi = std::min(t + win_b_, trace.length() - 1);
      for (int u = t + win_a_; u <= hi; ++u) {
        if (left_->eval(trace, u)) return true;
      }
      return false;
    }
    case Kind::kUntil: {
      const int hi = std::min(t + win_b_, trace.length() - 1);
      for (int u = t + win_a_; u <= hi; ++u) {
        if (!right_->eval(trace, u)) continue;
        bool held = true;
        for (int v = t; v < u; ++v) {
          if (!left_->eval(trace, v)) {
            held = false;
            break;
          }
        }
        if (held) return true;
      }
      return false;
    }
  }
  return false;
}

double StlFormula::robustness(const SignalTrace& trace, int t) const {
  switch (kind_) {
    case Kind::kTrue:
      return std::numeric_limits<double>::infinity();
    case Kind::kFalse:
      return -std::numeric_limits<double>::infinity();
    case Kind::kAtom: {
      const double v = trace.value(signal_, t);
      switch (cmp_) {
        case Cmp::kGt:
        case Cmp::kGe:
          return v - threshold_;
        case Cmp::kLt:
        case Cmp::kLe:
          return threshold_ - v;
        case Cmp::kEqApprox:
          return eps_ - std::fabs(v - threshold_);
      }
      return 0.0;
    }
    case Kind::kNot:
      return -left_->robustness(trace, t);
    case Kind::kAnd:
      return std::min(left_->robustness(trace, t), right_->robustness(trace, t));
    case Kind::kOr:
      return std::max(left_->robustness(trace, t), right_->robustness(trace, t));
    case Kind::kAlways: {
      double r = std::numeric_limits<double>::infinity();
      const int hi = std::min(t + win_b_, trace.length() - 1);
      for (int u = t + win_a_; u <= hi; ++u) {
        r = std::min(r, left_->robustness(trace, u));
      }
      return r;
    }
    case Kind::kEventually: {
      double r = -std::numeric_limits<double>::infinity();
      const int hi = std::min(t + win_b_, trace.length() - 1);
      for (int u = t + win_a_; u <= hi; ++u) {
        r = std::max(r, left_->robustness(trace, u));
      }
      return r;
    }
    case Kind::kUntil: {
      double best = -std::numeric_limits<double>::infinity();
      const int hi = std::min(t + win_b_, trace.length() - 1);
      for (int u = t + win_a_; u <= hi; ++u) {
        double r = right_->robustness(trace, u);
        for (int v = t; v < u; ++v) {
          r = std::min(r, left_->robustness(trace, v));
        }
        best = std::max(best, r);
      }
      return best;
    }
  }
  return 0.0;
}

std::string StlFormula::to_string() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kTrue:
      os << "true";
      break;
    case Kind::kFalse:
      os << "false";
      break;
    case Kind::kAtom:
      os << signal_ << ' ' << safety::to_string(cmp_) << ' ' << threshold_;
      break;
    case Kind::kNot:
      os << "!(" << left_->to_string() << ')';
      break;
    case Kind::kAnd:
      os << '(' << left_->to_string() << " && " << right_->to_string() << ')';
      break;
    case Kind::kOr:
      os << '(' << left_->to_string() << " || " << right_->to_string() << ')';
      break;
    case Kind::kAlways:
      os << "G[" << win_a_ << ',' << win_b_ << "](" << left_->to_string() << ')';
      break;
    case Kind::kEventually:
      os << "F[" << win_a_ << ',' << win_b_ << "](" << left_->to_string() << ')';
      break;
    case Kind::kUntil:
      os << '(' << left_->to_string() << " U[" << win_a_ << ',' << win_b_
         << "] " << right_->to_string() << ')';
      break;
  }
  return os.str();
}

}  // namespace cpsguard::safety

// Rule-coverage statistics: how often each Table I rule fires over a set of
// traces and how well each predicts the ground-truth labels. The
// transparency companion of the rule-based monitor — tells a safety engineer
// which rules pull their weight and which generate noise.
#pragma once

#include <span>
#include <vector>

#include "safety/rules_aps.h"
#include "sim/trace.h"

namespace cpsguard::safety {

struct RuleStats {
  int rule_id = 0;
  HazardType hazard = HazardType::kNone;
  std::string description;
  long fires = 0;            // steps where the rule held
  long true_positives = 0;   // fires on steps labelled unsafe
  long total_steps = 0;
  long total_positives = 0;  // labelled-unsafe steps

  [[nodiscard]] double fire_rate() const;
  /// Of the steps where this rule fired, the fraction that were truly
  /// unsafe (per the Eq. 1 labels).
  [[nodiscard]] double precision() const;
  /// Of the truly unsafe steps, the fraction this rule alone flagged.
  [[nodiscard]] double recall() const;
};

/// Evaluate every Table I rule over the traces against Eq. 1 labels with
/// horizon `horizon_steps`.
std::vector<RuleStats> rule_coverage(std::span<const sim::Trace> traces,
                                     int horizon_steps,
                                     double bg_target = sim::kTargetBg);

}  // namespace cpsguard::safety

#include "safety/rule_coverage.h"

#include "safety/hazard.h"
#include "safety/rule_monitor.h"
#include "util/contracts.h"

namespace cpsguard::safety {

double RuleStats::fire_rate() const {
  return total_steps == 0
             ? 0.0
             : static_cast<double>(fires) / static_cast<double>(total_steps);
}

double RuleStats::precision() const {
  return fires == 0
             ? 0.0
             : static_cast<double>(true_positives) / static_cast<double>(fires);
}

double RuleStats::recall() const {
  return total_positives == 0 ? 0.0
                              : static_cast<double>(true_positives) /
                                    static_cast<double>(total_positives);
}

std::vector<RuleStats> rule_coverage(std::span<const sim::Trace> traces,
                                     int horizon_steps, double bg_target) {
  expects(horizon_steps >= 0, "horizon must be non-negative");
  const auto rules = aps_safety_rules(bg_target);
  const RuleBasedMonitor context_builder(bg_target);

  std::vector<RuleStats> stats;
  stats.reserve(rules.size());
  for (const auto& rule : rules) {
    RuleStats s;
    s.rule_id = rule.id;
    s.hazard = rule.hazard;
    s.description = rule.description;
    stats.push_back(std::move(s));
  }

  for (const sim::Trace& trace : traces) {
    const auto labels = label_trace(trace, horizon_steps);
    for (int t = 0; t < trace.length(); ++t) {
      const auto ti = static_cast<std::size_t>(t);
      const auto signals = context_signals(
          context_builder.context_of(trace.steps[ti]));
      const bool positive = labels[ti] > 0;
      for (std::size_t r = 0; r < rules.size(); ++r) {
        ++stats[r].total_steps;
        stats[r].total_positives += positive ? 1 : 0;
        if (rules[r].formula->eval(signals, 0)) {
          ++stats[r].fires;
          stats[r].true_positives += positive ? 1 : 0;
        }
      }
    }
  }
  return stats;
}

}  // namespace cpsguard::safety

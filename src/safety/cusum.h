// CUSUM (Cumulative Sum Control Chart) change detector — the conventional
// CPS input-integrity check the paper cites ([8],[21]) when arguing that its
// perturbations are "small changes that cannot be detected by the current
// methods for sensor/input error detection". This implementation lets us
// *verify* that premise: Gaussian noise below ~1 std and FGSM-scale nudges
// should stay under the CUSUM alarm threshold tuned on clean data.
#pragma once

#include <span>

namespace cpsguard::safety {

struct CusumConfig {
  double target_mean = 0.0;  // in-control mean of the monitored signal
  double slack = 0.5;        // k: allowed drift per sample (in signal units)
  double threshold = 5.0;    // h: alarm when either cumulative sum exceeds it
};

/// One-sided-pair CUSUM over a scalar signal.
class CusumDetector {
 public:
  explicit CusumDetector(CusumConfig config);

  /// Feed one sample; returns true if the detector alarms at this sample.
  bool step(double value);

  /// Feed a whole signal; returns the index of the first alarm or -1.
  int first_alarm(std::span<const double> signal);

  void reset();

  [[nodiscard]] double positive_sum() const { return s_pos_; }
  [[nodiscard]] double negative_sum() const { return s_neg_; }

  /// Calibrate slack/threshold from a clean reference signal: slack = σ/2,
  /// threshold = 8σ (conservative tuning — long in-control ARL, still only
  /// a handful of samples of latency on a 3σ shift), mean = sample mean.
  static CusumConfig calibrate(std::span<const double> clean_signal);

 private:
  CusumConfig config_;
  double s_pos_ = 0.0;
  double s_neg_ = 0.0;
};

}  // namespace cpsguard::safety

// A small Signal Temporal Logic (STL) engine: formulas over named discrete
// signals with boolean and quantitative (robustness) semantics.
//
// The paper expresses its context-dependent safety specifications (Table I)
// as STL formulas; we encode them with this engine so the same objects drive
// the rule-based monitor, the semantic-loss indicator, and the tests.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace cpsguard::safety {

/// Columnar signal container: name → sampled values, one per time index.
class SignalTrace {
 public:
  /// All signals must have equal length.
  void add_signal(const std::string& name, std::vector<double> values);

  [[nodiscard]] bool has_signal(const std::string& name) const;
  [[nodiscard]] double value(const std::string& name, int t) const;
  [[nodiscard]] int length() const { return length_; }

 private:
  std::map<std::string, std::vector<double>> signals_;
  int length_ = 0;
};

enum class Cmp { kLt, kLe, kGt, kGe, kEqApprox };

std::string to_string(Cmp c);

/// Immutable STL formula AST. Construct via the static factories; share via
/// shared_ptr (formulas are cheap to copy around and reused across rules).
class StlFormula {
 public:
  using Ptr = std::shared_ptr<const StlFormula>;

  /// signal ⋈ threshold. For kEqApprox, |signal - threshold| <= eps.
  static Ptr atom(std::string signal, Cmp cmp, double threshold,
                  double eps = 1e-9);
  static Ptr negate(Ptr f);
  static Ptr conj(Ptr a, Ptr b);
  static Ptr disj(Ptr a, Ptr b);
  /// Globally within [t+a, t+b] (discrete, inclusive, clamped to trace end).
  static Ptr always(Ptr f, int a, int b);
  /// Eventually within [t+a, t+b].
  static Ptr eventually(Ptr f, int a, int b);
  /// Until: ∃u ∈ [t+a, t+b] with `rhs` at u and `lhs` on all of [t, u).
  static Ptr until(Ptr lhs, Ptr rhs, int a, int b);

  /// Conjunction / disjunction over a list (empty list: true / false).
  static Ptr conj_all(const std::vector<Ptr>& fs);
  static Ptr disj_all(const std::vector<Ptr>& fs);

  /// Boolean satisfaction at time t.
  [[nodiscard]] bool eval(const SignalTrace& trace, int t) const;

  /// Quantitative robustness at time t: positive iff satisfied; magnitude is
  /// the margin. Standard min/max semantics.
  [[nodiscard]] double robustness(const SignalTrace& trace, int t) const;

  [[nodiscard]] std::string to_string() const;

 private:
  enum class Kind { kAtom, kNot, kAnd, kOr, kAlways, kEventually, kUntil, kTrue, kFalse };

  StlFormula() = default;

  Kind kind_ = Kind::kTrue;
  // Atom fields.
  std::string signal_;
  Cmp cmp_ = Cmp::kGt;
  double threshold_ = 0.0;
  double eps_ = 1e-9;
  // Children and temporal window.
  Ptr left_;
  Ptr right_;
  int win_a_ = 0;
  int win_b_ = 0;

  static Ptr constant(bool value);
};

}  // namespace cpsguard::safety

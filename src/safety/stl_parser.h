// Text parser for STL formulas, so safety specifications can live in config
// files instead of C++ (the paper's Table I is authored by safety engineers,
// not programmers).
//
// Grammar (whitespace-insensitive):
//   formula    := disj
//   disj       := conj ('||' conj)*
//   conj       := until ('&&' until)*
//   until      := unary ('U' '[' int ',' int ']' unary)?
//   unary      := '!' unary | 'G[' a ',' b ']' '(' formula ')'
//                | 'F[' a ',' b ']' '(' formula ')'
//                | '(' formula ')' | 'true' | 'false' | atom
//   atom       := ident cmp number      cmp := <= | >= | == | < | >
//
// Examples:
//   "BG > 180 && u3 > 0.5"
//   "F[0,12](BG < 70)"
//   "(BG > 120 U[0,6] dIOB > 0)"
#pragma once

#include <string>

#include "safety/stl.h"
#include "util/error.h"

namespace cpsguard::safety {

/// Error with position information for malformed formula text. Raised for
/// every malformed input — syntax errors, out-of-range numbers, and
/// pathologically deep nesting — so hostile formula text can never escape
/// as an untyped exception or a stack overflow.
class StlParseError : public CpsError {
 public:
  StlParseError(const std::string& message, std::size_t position);

  [[nodiscard]] std::size_t position() const { return position_; }

 private:
  std::size_t position_;
};

/// Parse `text` into a formula; throws StlParseError on malformed input.
StlFormula::Ptr parse_stl(const std::string& text);

}  // namespace cpsguard::safety

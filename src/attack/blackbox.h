// Black-box attack via a substitute model (Papernot-style transfer):
// the attacker cannot read the target monitor's weights, only query it.
// They (1) label a query set with the target's own predictions, (2) train a
// two-layer MLP (128-64) substitute on those labels, and (3) run white-box
// FGSM on the substitute, betting on adversarial transferability.
#pragma once

#include <memory>
#include <span>

#include "attack/fgsm.h"
#include "nn/classifier.h"
#include "util/rng.h"

namespace cpsguard::attack {

struct SubstituteConfig {
  std::vector<int> hidden = {128, 64};  // paper's substitute architecture
  int epochs = 6;
  int batch_size = 64;
  double learning_rate = 0.001;
  std::uint64_t seed = 99;
};

class SubstituteAttack {
 public:
  explicit SubstituteAttack(SubstituteConfig config);

  /// Query the target on `scaled_queries` (already in model space, as the
  /// attacker knows the features in use) and fit the substitute on the
  /// returned labels.
  void fit(nn::Classifier& target, const nn::Tensor3& scaled_queries);

  [[nodiscard]] bool fitted() const { return substitute_ != nullptr; }

  /// Fraction of queries where the substitute matches the target — how well
  /// the attacker cloned the decision surface.
  [[nodiscard]] double agreement(nn::Classifier& target,
                                 const nn::Tensor3& scaled_x);

  /// FGSM on the substitute; the returned windows are then fed to the
  /// *target* to measure transfer. `labels` are the target's predictions on
  /// the clean input (the attacker's best knowledge of the truth).
  nn::Tensor3 craft(const nn::Tensor3& scaled_x, std::span<const int> labels,
                    const FgsmConfig& fgsm);

  [[nodiscard]] nn::Classifier& substitute();

  /// Deep copy (config + substitute weights). FGSM crafting mutates the
  /// substitute's layer caches, so parallel per-epsilon sweeps clone the
  /// fitted attacker instead of sharing it; identical weights keep the
  /// crafted perturbations bit-identical to a serial run.
  [[nodiscard]] std::unique_ptr<SubstituteAttack> clone() const;

 private:
  SubstituteConfig config_;
  std::unique_ptr<nn::Classifier> substitute_;
};

}  // namespace cpsguard::attack

// Score-based black-box attack via NES gradient estimation (Ilyas et al.
// 2018): the attacker sees only the monitor's output *probabilities* (no
// weights, no gradients) and estimates the loss gradient with antithetic
// Gaussian sampling, then takes FGSM-style sign steps. Complements the
// substitute-model transfer attack: no surrogate training, but many queries.
#pragma once

#include <span>

#include "attack/perturbation.h"
#include "nn/classifier.h"
#include "util/rng.h"

namespace cpsguard::attack {

struct NesConfig {
  double epsilon = 0.1;       // L∞ budget (scaled units)
  double step_size = 0.025;   // per-iteration sign step
  int iterations = 6;
  /// Gaussian probes per iteration, consumed as samples/2 antithetic pairs:
  /// each pair evaluates L(x + σu) and L(x − σu) for one shared direction u,
  /// halving estimator variance per query. Must be even and >= 2 — an odd
  /// budget would silently drop a probe (and 1 probe = zero pairs = no-op).
  int samples = 20;
  double sigma = 0.01;        // probe standard deviation
  FeatureMask mask = FeatureMask::kAll;
  std::uint64_t seed = 2024;
};

/// Craft adversarial windows against a query-only target. `labels` are the
/// attacker's best guess of the true labels (typically the target's own
/// clean predictions). Postcondition: ‖x_adv − x‖∞ ≤ ε.
/// Query cost: iterations × samples forward passes over the batch.
nn::Tensor3 nes_attack(nn::Classifier& target, const nn::Tensor3& scaled_x,
                       std::span<const int> labels, const NesConfig& config);

}  // namespace cpsguard::attack

#include "attack/pgd.h"

#include <algorithm>

#include "obs/events.h"
#include "obs/metrics.h"
#include "util/contracts.h"

namespace cpsguard::attack {

nn::Tensor3 pgd_attack(nn::Classifier& clf, const nn::Tensor3& scaled_x,
                       std::span<const int> labels, const PgdConfig& config) {
  expects(config.epsilon >= 0.0, "epsilon must be non-negative");
  expects(config.step_size > 0.0, "step size must be positive");
  expects(config.iterations > 0, "need at least one iteration");
  expects(scaled_x.batch() == static_cast<int>(labels.size()),
          "one label per window required");

  static obs::Counter& calls =
      obs::Registry::instance().counter("attack.pgd.calls");
  static obs::Counter& windows =
      obs::Registry::instance().counter("attack.pgd.windows");
  static obs::Counter& grad_steps =
      obs::Registry::instance().counter("attack.pgd.grad_steps");
  static obs::Histogram& linf_hist =
      obs::Registry::instance().histogram("attack.pgd.linf");
  calls.increment();
  windows.add(static_cast<std::uint64_t>(scaled_x.batch()));
  grad_steps.add(static_cast<std::uint64_t>(config.iterations));

  nn::Tensor3 adv = scaled_x;
  const auto eps = static_cast<float>(config.epsilon);
  const auto alpha = static_cast<float>(config.step_size);

  for (int it = 0; it < config.iterations; ++it) {
    nn::Tensor3 grad = clf.loss_input_gradient(adv, labels);
    apply_feature_mask(grad, config.mask);
    auto a = adv.data();
    const auto g = grad.data();
    const auto x0 = scaled_x.data();
    for (std::size_t i = 0; i < a.size(); ++i) {
      const float step = g[i] > 0.0f ? alpha : (g[i] < 0.0f ? -alpha : 0.0f);
      // Ascend the loss, then project onto the ε-ball around the original.
      a[i] = std::clamp(a[i] + step, x0[i] - eps, x0[i] + eps);
    }
  }

  const double linf = linf_distance(adv, scaled_x);
  linf_hist.record(linf);
  CPSGUARD_OBS_EVENT("attack.pgd", obs::f("windows", scaled_x.batch()),
                     obs::f("epsilon", config.epsilon),
                     obs::f("iterations", config.iterations),
                     obs::f("linf", linf));
  ensures(linf <= config.epsilon + 1e-4,
          "PGD must respect the L-infinity budget");
  return adv;
}

}  // namespace cpsguard::attack

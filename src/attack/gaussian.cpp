#include "attack/gaussian.h"

#include "util/contracts.h"

namespace cpsguard::attack {

nn::Tensor3 add_gaussian_noise(const nn::Tensor3& raw_windows,
                               const monitor::StandardScaler& scaler,
                               const GaussianNoiseConfig& config,
                               util::Rng& rng) {
  expects(config.sigma_factor >= 0.0, "sigma factor must be non-negative");
  expects(raw_windows.features() == scaler.features(), "feature width mismatch");
  nn::Tensor3 out = raw_windows;
  for (int b = 0; b < out.batch(); ++b) {
    for (int t = 0; t < out.time(); ++t) {
      auto row = out.row(b, t);
      for (int f = 0; f < out.features(); ++f) {
        if (!feature_in_mask(f, config.mask)) continue;
        const double sigma = config.sigma_factor * scaler.std_of(f);
        row[static_cast<std::size_t>(f)] +=
            static_cast<float>(rng.gaussian(0.0, sigma));
      }
    }
  }
  return out;
}

}  // namespace cpsguard::attack

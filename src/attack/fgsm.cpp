#include "attack/fgsm.h"

#include "obs/events.h"
#include "obs/metrics.h"
#include "util/contracts.h"

namespace cpsguard::attack {

nn::Tensor3 fgsm_attack(nn::Classifier& clf, const nn::Tensor3& scaled_x,
                        std::span<const int> labels, const FgsmConfig& config) {
  expects(config.epsilon >= 0.0, "epsilon must be non-negative");
  expects(scaled_x.batch() == static_cast<int>(labels.size()),
          "one label per window required");

  static obs::Counter& calls =
      obs::Registry::instance().counter("attack.fgsm.calls");
  static obs::Counter& windows =
      obs::Registry::instance().counter("attack.fgsm.windows");
  static obs::Histogram& linf_hist =
      obs::Registry::instance().histogram("attack.fgsm.linf");
  calls.increment();
  windows.add(static_cast<std::uint64_t>(scaled_x.batch()));

  nn::Tensor3 grad = clf.loss_input_gradient(scaled_x, labels);
  // Δx = ε · sign(∇x J)
  auto g = grad.data();
  const auto eps = static_cast<float>(config.epsilon);
  for (float& v : g) {
    v = v > 0.0f ? eps : (v < 0.0f ? -eps : 0.0f);
  }
  apply_feature_mask(grad, config.mask);

  nn::Tensor3 adv = scaled_x;
  auto a = adv.data();
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += g[i];

  const double linf = linf_distance(adv, scaled_x);
  linf_hist.record(linf);
  CPSGUARD_OBS_EVENT("attack.fgsm", obs::f("windows", scaled_x.batch()),
                     obs::f("epsilon", config.epsilon), obs::f("linf", linf));
  ensures(linf <= config.epsilon + 1e-4,
          "FGSM must respect the L-infinity budget");
  return adv;
}

}  // namespace cpsguard::attack

#include "attack/universal.h"

#include <algorithm>

#include "obs/events.h"
#include "obs/metrics.h"
#include "util/contracts.h"

namespace cpsguard::attack {

nn::Tensor3 craft_universal_perturbation(nn::Classifier& clf,
                                         const nn::Tensor3& crafting_x,
                                         std::span<const int> labels,
                                         const UniversalConfig& config) {
  expects(config.epsilon >= 0.0, "epsilon must be non-negative");
  expects(config.step_size > 0.0, "step size must be positive");
  expects(config.epochs > 0 && config.batch_size > 0, "bad crafting budget");
  expects(crafting_x.batch() == static_cast<int>(labels.size()),
          "one label per window required");

  static obs::Counter& crafts =
      obs::Registry::instance().counter("attack.universal.crafts");
  static obs::Counter& windows =
      obs::Registry::instance().counter("attack.universal.crafting_windows");
  static obs::Histogram& linf_hist =
      obs::Registry::instance().histogram("attack.universal.linf");
  crafts.increment();
  windows.add(static_cast<std::uint64_t>(crafting_x.batch()));

  const int time = crafting_x.time();
  const int features = crafting_x.features();
  nn::Tensor3 delta(1, time, features);
  const auto eps = static_cast<float>(config.epsilon);
  const auto alpha = static_cast<float>(config.step_size);
  const int n = crafting_x.batch();

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    for (int start = 0; start < n; start += config.batch_size) {
      const int count = std::min(config.batch_size, n - start);
      std::vector<int> idx(static_cast<std::size_t>(count));
      for (int i = 0; i < count; ++i) idx[static_cast<std::size_t>(i)] = start + i;
      nn::Tensor3 xb = crafting_x.gather(idx);
      // Shift the whole batch by the current δ, then average the resulting
      // input gradient over the batch to update δ.
      for (int b = 0; b < count; ++b) {
        for (int t = 0; t < time; ++t) {
          auto row = xb.row(b, t);
          const auto d = delta.row(0, t);
          for (std::size_t f = 0; f < row.size(); ++f) row[f] += d[f];
        }
      }
      std::vector<int> yb(labels.begin() + start, labels.begin() + start + count);
      const nn::Tensor3 grad = clf.loss_input_gradient(xb, yb);
      for (int t = 0; t < time; ++t) {
        auto d = delta.row(0, t);
        for (int f = 0; f < features; ++f) {
          double g = 0.0;
          for (int b = 0; b < count; ++b) g += grad.at(b, t, f);
          const float step = g > 0.0 ? alpha : (g < 0.0 ? -alpha : 0.0f);
          d[static_cast<std::size_t>(f)] =
              std::clamp(d[static_cast<std::size_t>(f)] + step, -eps, eps);
        }
      }
    }
  }
  apply_feature_mask(delta, config.mask);
  const double linf = delta.max_abs();
  linf_hist.record(linf);
  CPSGUARD_OBS_EVENT("attack.universal", obs::f("windows", crafting_x.batch()),
                     obs::f("epsilon", config.epsilon), obs::f("linf", linf));
  ensures(linf <= config.epsilon + 1e-4,
          "universal delta must respect the L-infinity budget");
  return delta;
}

nn::Tensor3 apply_universal_perturbation(const nn::Tensor3& x,
                                         const nn::Tensor3& delta) {
  expects(delta.batch() == 1 && delta.time() == x.time() &&
              delta.features() == x.features(),
          "delta must be a single window matching x's shape");
  nn::Tensor3 out = x;
  for (int b = 0; b < x.batch(); ++b) {
    for (int t = 0; t < x.time(); ++t) {
      auto row = out.row(b, t);
      const auto d = delta.row(0, t);
      for (std::size_t f = 0; f < row.size(); ++f) row[f] += d[f];
    }
  }
  return out;
}

}  // namespace cpsguard::attack

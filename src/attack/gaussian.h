// Accidental-perturbation model: zero-mean Gaussian noise added to the
// sensor features of raw windows, with σ expressed as a multiple of each
// feature's training-set standard deviation (the paper sweeps
// σ ∈ {0.1, 0.25, 0.5, 0.75, 1.0}·std). Deviations beyond ~1 std would be
// caught by conventional CPS invariant/change detection, so the model stays
// below that.
#pragma once

#include "attack/perturbation.h"
#include "monitor/scaler.h"
#include "util/rng.h"

namespace cpsguard::attack {

struct GaussianNoiseConfig {
  double sigma_factor = 0.5;  // σ as a multiple of each feature's std
  FeatureMask mask = FeatureMask::kSensorsOnly;  // paper: sensors only
};

/// Perturb raw (unscaled) windows: x' = x + N(0, (σ·std_f)²) on each masked
/// feature coordinate. The scaler supplies per-feature raw-unit stds.
nn::Tensor3 add_gaussian_noise(const nn::Tensor3& raw_windows,
                               const monitor::StandardScaler& scaler,
                               const GaussianNoiseConfig& config,
                               util::Rng& rng);

}  // namespace cpsguard::attack

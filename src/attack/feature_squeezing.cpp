#include "attack/feature_squeezing.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"
#include "util/stats.h"

namespace cpsguard::attack {

nn::Tensor3 squeeze_quantize(const nn::Tensor3& x, const SqueezeConfig& cfg) {
  expects(cfg.quantization_levels >= 2, "need at least two levels");
  expects(cfg.quantization_range > 0.0, "range must be positive");
  nn::Tensor3 out = x;
  const float lo = static_cast<float>(-cfg.quantization_range);
  const float width = static_cast<float>(2.0 * cfg.quantization_range /
                                         (cfg.quantization_levels - 1));
  for (float& v : out.data()) {
    const float clamped = std::clamp(v, lo, -lo);
    v = lo + std::round((clamped - lo) / width) * width;
  }
  return out;
}

nn::Tensor3 squeeze_median(const nn::Tensor3& x, const SqueezeConfig& cfg) {
  expects(cfg.median_window >= 1 && cfg.median_window % 2 == 1,
          "median window must be odd");
  const int half = cfg.median_window / 2;
  nn::Tensor3 out = x;
  std::vector<float> buf;
  for (int b = 0; b < x.batch(); ++b) {
    for (int f = 0; f < x.features(); ++f) {
      for (int t = 0; t < x.time(); ++t) {
        buf.clear();
        for (int u = std::max(0, t - half); u <= std::min(x.time() - 1, t + half); ++u) {
          buf.push_back(x.at(b, u, f));
        }
        // NaN-last comparator: the raw-ML resilience path feeds windows with
        // NaN readings straight through, and nth_element with operator< on
        // NaN input is strict-weak-ordering UB. Finite windows are unchanged.
        std::nth_element(buf.begin(), buf.begin() + static_cast<long>(buf.size() / 2),
                         buf.end(), [](float a, float b) {
                           if (std::isnan(a)) return false;
                           if (std::isnan(b)) return true;
                           return a < b;
                         });
        out.at(b, t, f) = buf[buf.size() / 2];
      }
    }
  }
  return out;
}

FeatureSqueezingDetector::FeatureSqueezingDetector(SqueezeConfig config)
    : config_(config) {}

std::vector<double> FeatureSqueezingDetector::scores(nn::Classifier& clf,
                                                     const nn::Tensor3& scaled_x) {
  expects(scaled_x.batch() > 0, "empty input");
  const nn::Matrix p_raw = clf.predict_proba(scaled_x);
  const nn::Matrix p_quant = clf.predict_proba(squeeze_quantize(scaled_x, config_));
  const nn::Matrix p_median = clf.predict_proba(squeeze_median(scaled_x, config_));

  std::vector<double> out(static_cast<std::size_t>(scaled_x.batch()));
  for (int i = 0; i < scaled_x.batch(); ++i) {
    double d_quant = 0.0, d_median = 0.0;
    for (int c = 0; c < p_raw.cols(); ++c) {
      d_quant += std::fabs(static_cast<double>(p_raw.at(i, c)) - p_quant.at(i, c));
      d_median += std::fabs(static_cast<double>(p_raw.at(i, c)) - p_median.at(i, c));
    }
    out[static_cast<std::size_t>(i)] = std::max(d_quant, d_median);
  }
  return out;
}

void FeatureSqueezingDetector::calibrate(nn::Classifier& clf,
                                         const nn::Tensor3& clean_scaled_x,
                                         double quantile) {
  expects(quantile > 0.0 && quantile < 1.0, "quantile must be in (0,1)");
  threshold_ = util::quantile(scores(clf, clean_scaled_x), quantile);
}

double FeatureSqueezingDetector::threshold() const {
  expects(calibrated(), "detector not calibrated");
  return threshold_;
}

std::vector<int> FeatureSqueezingDetector::detect(nn::Classifier& clf,
                                                  const nn::Tensor3& scaled_x) {
  expects(calibrated(), "detector not calibrated");
  const auto s = scores(clf, scaled_x);
  std::vector<int> out(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) out[i] = s[i] > threshold_ ? 1 : 0;
  return out;
}

double FeatureSqueezingDetector::detection_rate(nn::Classifier& clf,
                                                const nn::Tensor3& scaled_x) {
  const auto verdicts = detect(clf, scaled_x);
  std::size_t hits = 0;
  for (int v : verdicts) hits += static_cast<std::size_t>(v);
  return verdicts.empty() ? 0.0
                          : static_cast<double>(hits) / static_cast<double>(verdicts.size());
}

}  // namespace cpsguard::attack

#include "attack/perturbation.h"

#include <algorithm>
#include <cmath>

#include "monitor/features.h"
#include "util/contracts.h"

namespace cpsguard::attack {

std::string to_string(FeatureMask m) {
  switch (m) {
    case FeatureMask::kSensorsOnly: return "sensors";
    case FeatureMask::kCommandsOnly: return "commands";
    case FeatureMask::kAll: return "sensors+commands";
  }
  return "unknown";
}

bool feature_in_mask(int f, FeatureMask mask) {
  using monitor::Features;
  switch (mask) {
    case FeatureMask::kSensorsOnly:
      return Features::is_sensor_feature(f);
    case FeatureMask::kCommandsOnly:
      return Features::is_command_feature(f);
    case FeatureMask::kAll:
      return true;
  }
  return false;
}

void apply_feature_mask(nn::Tensor3& perturbation, FeatureMask mask) {
  if (mask == FeatureMask::kAll) return;
  for (int b = 0; b < perturbation.batch(); ++b) {
    for (int t = 0; t < perturbation.time(); ++t) {
      auto row = perturbation.row(b, t);
      for (int f = 0; f < perturbation.features(); ++f) {
        if (!feature_in_mask(f, mask)) row[static_cast<std::size_t>(f)] = 0.0f;
      }
    }
  }
}

double linf_distance(const nn::Tensor3& a, const nn::Tensor3& b) {
  expects(a.batch() == b.batch() && a.time() == b.time() &&
              a.features() == b.features(),
          "shape mismatch");
  double m = 0.0;
  const auto da = a.data();
  const auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    m = std::max(m, std::fabs(static_cast<double>(da[i]) - db[i]));
  }
  return m;
}

}  // namespace cpsguard::attack

#include "attack/blackbox.h"

#include <sstream>

#include "nn/serialize.h"
#include "obs/events.h"
#include "obs/span.h"
#include "util/contracts.h"

namespace cpsguard::attack {

SubstituteAttack::SubstituteAttack(SubstituteConfig config)
    : config_(std::move(config)) {
  expects(config_.epochs > 0 && config_.batch_size > 0, "bad substitute config");
}

void SubstituteAttack::fit(nn::Classifier& target,
                           const nn::Tensor3& scaled_queries) {
  expects(scaled_queries.batch() > 0, "empty query set");
  static obs::Counter& fits =
      obs::Registry::instance().counter("attack.substitute.fits");
  static obs::Counter& oracle_queries =
      obs::Registry::instance().counter("attack.substitute.oracle_queries");
  fits.increment();
  oracle_queries.add(static_cast<std::uint64_t>(scaled_queries.batch()));
  const obs::ScopedSpan span("attack.substitute.fit");
  CPSGUARD_OBS_EVENT("attack.substitute.fit",
                     obs::f("queries", scaled_queries.batch()));

  // Oracle labels: the target's own outputs.
  const std::vector<int> oracle = nn::predict_classes(target, scaled_queries);

  util::Rng rng(config_.seed, 0x53554253u /* 'SUBS' */);
  substitute_ = std::make_unique<nn::MlpClassifier>(
      scaled_queries.time(), scaled_queries.features(), config_.hidden,
      target.num_classes(), rng);

  nn::Adam adam(config_.learning_rate);
  const nn::SoftmaxCrossEntropy ce;
  util::Rng shuffle_rng(config_.seed ^ 0xabcdefULL, 0x51515151u);

  const int n = scaled_queries.batch();
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    const std::vector<int> order = shuffle_rng.permutation(n);
    for (int start = 0; start < n; start += config_.batch_size) {
      const int count = std::min(config_.batch_size, n - start);
      const std::vector<int> idx(order.begin() + start,
                                 order.begin() + start + count);
      const nn::Tensor3 xb = scaled_queries.gather(idx);
      std::vector<int> yb(static_cast<std::size_t>(count));
      for (int i = 0; i < count; ++i) {
        yb[static_cast<std::size_t>(i)] =
            oracle[static_cast<std::size_t>(idx[static_cast<std::size_t>(i)])];
      }
      substitute_->train_batch(xb, yb, {}, ce, adam);
    }
  }
}

double SubstituteAttack::agreement(nn::Classifier& target,
                                   const nn::Tensor3& scaled_x) {
  expects(fitted(), "substitute not fitted");
  expects(scaled_x.batch() > 0, "empty input");
  const std::vector<int> t = nn::predict_classes(target, scaled_x);
  const std::vector<int> s = nn::predict_classes(*substitute_, scaled_x);
  int same = 0;
  for (std::size_t i = 0; i < t.size(); ++i) same += (t[i] == s[i]) ? 1 : 0;
  return static_cast<double>(same) / static_cast<double>(t.size());
}

nn::Tensor3 SubstituteAttack::craft(const nn::Tensor3& scaled_x,
                                    std::span<const int> labels,
                                    const FgsmConfig& fgsm) {
  expects(fitted(), "substitute not fitted");
  return fgsm_attack(*substitute_, scaled_x, labels, fgsm);
}

nn::Classifier& SubstituteAttack::substitute() {
  expects(fitted(), "substitute not fitted");
  return *substitute_;
}

std::unique_ptr<SubstituteAttack> SubstituteAttack::clone() const {
  auto out = std::make_unique<SubstituteAttack>(config_);
  if (substitute_ == nullptr) return out;
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  const auto src_params = substitute_->params();
  nn::save_params(buf, src_params);
  util::Rng rng(config_.seed, 0x53554253u /* 'SUBS' */);
  out->substitute_ = std::make_unique<nn::MlpClassifier>(
      substitute_->time_steps(), substitute_->features(), config_.hidden,
      substitute_->num_classes(), rng);
  const auto dst_params = out->substitute_->params();
  nn::load_params(buf, dst_params);
  return out;
}

}  // namespace cpsguard::attack

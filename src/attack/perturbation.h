// Common vocabulary for input perturbations: which feature groups an attack
// is allowed to touch. The paper's Gaussian noise hits only sensor data;
// FGSM hits the full multivariate input (sensors + control commands).
#pragma once

#include <string>

#include "nn/tensor3.h"

namespace cpsguard::attack {

enum class FeatureMask {
  kSensorsOnly,
  kCommandsOnly,
  kAll,
};

std::string to_string(FeatureMask m);

/// True iff feature index `f` is attackable under `mask`.
bool feature_in_mask(int f, FeatureMask mask);

/// Zero out the masked-away feature coordinates of a perturbation tensor.
void apply_feature_mask(nn::Tensor3& perturbation, FeatureMask mask);

/// L∞ norm of (a - b): the largest per-coordinate change an attack made.
double linf_distance(const nn::Tensor3& a, const nn::Tensor3& b);

}  // namespace cpsguard::attack

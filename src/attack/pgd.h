// Projected Gradient Descent (Madry et al. 2018): iterated FGSM with
// projection back onto the ε-ball. The paper evaluates single-step FGSM and
// calls for "a more comprehensive investigation of robustness testing";
// PGD is the standard stronger white-box attack for that investigation.
#pragma once

#include <span>

#include "attack/perturbation.h"
#include "nn/classifier.h"

namespace cpsguard::attack {

struct PgdConfig {
  double epsilon = 0.1;       // L∞ ball radius (scaled units)
  double step_size = 0.025;   // per-iteration step (α)
  int iterations = 8;
  FeatureMask mask = FeatureMask::kAll;
};

/// Craft adversarial windows with PGD. Postcondition: ‖x_adv − x‖∞ ≤ ε.
/// Strictly at least as strong as FGSM with the same ε when
/// iterations·step_size ≥ ε.
nn::Tensor3 pgd_attack(nn::Classifier& clf, const nn::Tensor3& scaled_x,
                       std::span<const int> labels, const PgdConfig& config);

}  // namespace cpsguard::attack

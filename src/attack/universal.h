// Universal adversarial perturbation (Moosavi-Dezfooli et al. 2017, and the
// CPS variant of Basak et al. 2021 the paper cites): ONE input-agnostic
// perturbation δ, ‖δ‖∞ ≤ ε, crafted on a training batch, that flips the
// monitor on as many windows as possible — including windows never seen
// while crafting. Practically relevant for CPS attackers who must commit to
// a fixed perturbation ahead of time (e.g. a constant sensor bias pattern).
#pragma once

#include <span>

#include "attack/perturbation.h"
#include "nn/classifier.h"

namespace cpsguard::attack {

struct UniversalConfig {
  double epsilon = 0.1;      // L∞ budget of the universal δ
  double step_size = 0.02;   // per-epoch sign-gradient step
  int epochs = 5;            // passes over the crafting set
  int batch_size = 64;
  FeatureMask mask = FeatureMask::kAll;
};

/// Craft a universal perturbation on `crafting_x` (scaled model space) with
/// the attacker's labels. Returns δ as a [1, T, F] tensor.
nn::Tensor3 craft_universal_perturbation(nn::Classifier& clf,
                                         const nn::Tensor3& crafting_x,
                                         std::span<const int> labels,
                                         const UniversalConfig& config);

/// Apply δ ([1, T, F]) to every window of `x`.
nn::Tensor3 apply_universal_perturbation(const nn::Tensor3& x,
                                         const nn::Tensor3& delta);

}  // namespace cpsguard::attack

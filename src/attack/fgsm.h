// White-box Fast Gradient Sign Method (Goodfellow et al. 2014), Eq. 3-4 of
// the paper:
//     x_adv = x + ε · sign(∇_x J(x, y))
// applied to the *scaled* model-input space (the space the classifier was
// trained in), over the full multivariate window — both sensor and command
// features — unless a narrower mask is requested.
#pragma once

#include <span>

#include "attack/perturbation.h"
#include "nn/classifier.h"

namespace cpsguard::attack {

struct FgsmConfig {
  double epsilon = 0.1;            // L∞ budget per coordinate (scaled units)
  FeatureMask mask = FeatureMask::kAll;  // paper: sensors + commands
};

/// Craft adversarial windows against `clf`. `labels` are the true labels
/// used in the loss J (untargeted attack: move away from the truth).
/// Postcondition: ‖x_adv − x‖∞ ≤ ε.
nn::Tensor3 fgsm_attack(nn::Classifier& clf, const nn::Tensor3& scaled_x,
                        std::span<const int> labels, const FgsmConfig& config);

}  // namespace cpsguard::attack

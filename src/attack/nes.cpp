#include "attack/nes.h"

#include <algorithm>
#include <cmath>

#include "obs/events.h"
#include "obs/metrics.h"
#include "util/contracts.h"

namespace cpsguard::attack {

namespace {

// Per-sample cross-entropy −log p_y from the target's output probabilities —
// the score an output-only attacker can compute.
std::vector<double> ce_scores(nn::Classifier& target, const nn::Tensor3& x,
                              std::span<const int> labels) {
  const nn::Matrix probs = target.predict_proba(x);
  std::vector<double> out(static_cast<std::size_t>(probs.rows()));
  for (int i = 0; i < probs.rows(); ++i) {
    const float p = probs.at(i, labels[static_cast<std::size_t>(i)]);
    out[static_cast<std::size_t>(i)] = -std::log(std::max(p, 1e-12f));
  }
  return out;
}

}  // namespace

nn::Tensor3 nes_attack(nn::Classifier& target, const nn::Tensor3& scaled_x,
                       std::span<const int> labels, const NesConfig& config) {
  expects(config.epsilon >= 0.0, "epsilon must be non-negative");
  expects(config.step_size > 0.0, "step size must be positive");
  expects(config.iterations > 0, "bad NES budget");
  // Probes are consumed as antithetic ± pairs; an odd budget would silently
  // drop a probe, and samples == 1 used to make the whole attack a no-op
  // (zero pairs -> zero gradient estimate -> adv == x).
  expects(config.samples >= 2 && config.samples % 2 == 0,
          "NES sample budget must be an even count >= 2 (antithetic pairs)");
  expects(config.sigma > 0.0, "probe sigma must be positive");
  expects(scaled_x.batch() == static_cast<int>(labels.size()),
          "one label per window required");

  static obs::Counter& calls =
      obs::Registry::instance().counter("attack.nes.calls");
  static obs::Counter& queries =
      obs::Registry::instance().counter("attack.nes.queries");
  static obs::Histogram& linf_hist =
      obs::Registry::instance().histogram("attack.nes.linf");
  calls.increment();

  util::Rng rng(config.seed, 0x4e45530aULL);
  nn::Tensor3 adv = scaled_x;
  const auto eps = static_cast<float>(config.epsilon);
  const auto alpha = static_cast<float>(config.step_size);
  const int batch = scaled_x.batch();
  const int dims = scaled_x.time() * scaled_x.features();

  for (int it = 0; it < config.iterations; ++it) {
    // NES gradient estimate: g ≈ (1/(2σn)) Σ_k [L(x+σu_k) − L(x−σu_k)] u_k
    nn::Tensor3 grad_est(batch, scaled_x.time(), scaled_x.features());
    const int pairs = std::max(1, config.samples / 2);
    for (int k = 0; k < pairs; ++k) {
      nn::Tensor3 noise(batch, scaled_x.time(), scaled_x.features());
      for (float& v : noise.data()) {
        v = static_cast<float>(rng.gaussian());
      }
      nn::Tensor3 plus = adv;
      nn::Tensor3 minus = adv;
      {
        auto p = plus.data();
        auto m = minus.data();
        const auto u = noise.data();
        const auto s = static_cast<float>(config.sigma);
        for (std::size_t i = 0; i < p.size(); ++i) {
          p[i] += s * u[i];
          m[i] -= s * u[i];
        }
      }
      const auto score_plus = ce_scores(target, plus, labels);
      const auto score_minus = ce_scores(target, minus, labels);
      // Each antithetic pair costs two full-batch probes of the target.
      queries.add(2 * static_cast<std::uint64_t>(batch));
      auto g = grad_est.data();
      const auto u = noise.data();
      for (int b = 0; b < batch; ++b) {
        const auto delta = static_cast<float>(score_plus[static_cast<std::size_t>(b)] -
                                              score_minus[static_cast<std::size_t>(b)]);
        const std::size_t base = static_cast<std::size_t>(b) * static_cast<std::size_t>(dims);
        for (int d = 0; d < dims; ++d) {
          g[base + static_cast<std::size_t>(d)] +=
              delta * u[base + static_cast<std::size_t>(d)];
        }
      }
    }
    apply_feature_mask(grad_est, config.mask);

    // Sign step + projection onto the ε-ball.
    auto a = adv.data();
    const auto g = grad_est.data();
    const auto x0 = scaled_x.data();
    for (std::size_t i = 0; i < a.size(); ++i) {
      const float step = g[i] > 0.0f ? alpha : (g[i] < 0.0f ? -alpha : 0.0f);
      a[i] = std::clamp(a[i] + step, x0[i] - eps, x0[i] + eps);
    }
  }

  const double linf = linf_distance(adv, scaled_x);
  linf_hist.record(linf);
  CPSGUARD_OBS_EVENT(
      "attack.nes", obs::f("windows", batch), obs::f("epsilon", config.epsilon),
      obs::f("queries",
             static_cast<std::uint64_t>(config.iterations) *
                 static_cast<std::uint64_t>(2 * (config.samples / 2)) *
                 static_cast<std::uint64_t>(batch)),
      obs::f("linf", linf));
  ensures(linf <= config.epsilon + 1e-4,
          "NES must respect the L-infinity budget");
  return adv;
}

}  // namespace cpsguard::attack

// Feature-squeezing adversarial-input detector (Xu, Evans & Qi, NDSS 2018 —
// the paper's reference [29]): run the monitor on the input and on
// "squeezed" (information-reduced) versions; a large prediction discrepancy
// flags the input as adversarial. Squeezers adapted to multivariate time
// series: value quantization and temporal median smoothing.
#pragma once

#include <span>
#include <vector>

#include "nn/classifier.h"

namespace cpsguard::attack {

struct SqueezeConfig {
  int quantization_levels = 64;  // per-feature value grid over [-q, q]
  double quantization_range = 4.0;  // grid half-width in scaled units
  int median_window = 3;         // odd temporal window for median smoothing
};

/// Quantize every coordinate to the nearest of `levels` grid points.
nn::Tensor3 squeeze_quantize(const nn::Tensor3& x, const SqueezeConfig& cfg);

/// Median-smooth each feature channel along time.
nn::Tensor3 squeeze_median(const nn::Tensor3& x, const SqueezeConfig& cfg);

class FeatureSqueezingDetector {
 public:
  explicit FeatureSqueezingDetector(SqueezeConfig config = {});

  /// Per-sample score: max over squeezers of the L1 distance between the
  /// model's probability vectors on raw vs squeezed input. High = suspect.
  std::vector<double> scores(nn::Classifier& clf, const nn::Tensor3& scaled_x);

  /// Fit the alarm threshold as the `quantile` of scores on clean data.
  void calibrate(nn::Classifier& clf, const nn::Tensor3& clean_scaled_x,
                 double quantile = 0.95);

  [[nodiscard]] bool calibrated() const { return threshold_ >= 0.0; }
  [[nodiscard]] double threshold() const;

  /// Per-sample adversarial verdicts (requires calibrate()).
  std::vector<int> detect(nn::Classifier& clf, const nn::Tensor3& scaled_x);

  /// Fraction of samples flagged (requires calibrate()).
  double detection_rate(nn::Classifier& clf, const nn::Tensor3& scaled_x);

 private:
  SqueezeConfig config_;
  double threshold_ = -1.0;
};

}  // namespace cpsguard::attack

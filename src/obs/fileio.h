// Atomic file persistence: write-to-temp + rename, so a reader (or a writer
// killed mid-write) never observes a partially written file. CSV outputs,
// run manifests, and checkpoint records all go through this choke point,
// which is also where the chaos harness injects write faults.
#pragma once

#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace cpsguard::obs {

/// Thrown on any I/O failure inside atomic_write_file. Transient by
/// assumption: util::RetryPolicy's default classifier retries it.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Chaos seam. The hook runs after the temp file is fully written but before
/// the rename, with (final_path, temp_path). A throwing hook simulates a
/// crash mid-write: it may truncate or corrupt the *temp* file first, but
/// the final path is never touched — which is exactly the guarantee the
/// atomic protocol exists to provide. An empty hook disables the seam.
using WriteFaultHook =
    std::function<void(const std::string& path, const std::string& tmp_path)>;
void set_write_fault_hook(WriteFaultHook hook);

/// Write `data` to `path` via temp + rename. On success `path` holds exactly
/// `data`; on failure (throws IoError) `path` is untouched — at worst a
/// stale `path + ".tmp"` is left behind and overwritten by the next attempt.
void atomic_write_file(const std::string& path, std::string_view data);

}  // namespace cpsguard::obs

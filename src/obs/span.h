// RAII phase timers. A ScopedSpan measures the wall-clock time between its
// construction and destruction and records it (in seconds) into a histogram
// named "span.<name>" — so repeated spans aggregate into per-phase timing
// quantiles that the bench manifest dumps. When the NDJSON sink is enabled,
// each span additionally emits a {"ev":"span",...} event on completion.
//
//   {
//     obs::ScopedSpan span("train.all");
//     experiment.train_all();
//   }  // records into histogram "span.train.all"
//
// For per-iteration hot loops, resolve the histogram once and use the
// Histogram& overload — it skips the registry lookup.
#pragma once

#include <chrono>
#include <string>

#include "obs/metrics.h"

namespace cpsguard::obs {

class ScopedSpan {
 public:
  /// Records into Registry histogram "span.<name>" (one registry lookup).
  explicit ScopedSpan(std::string name);

  /// Records into a pre-resolved histogram; `name` is only used for the
  /// NDJSON event (pass a string literal).
  ScopedSpan(const char* name, Histogram& sink);

  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Seconds elapsed so far.
  [[nodiscard]] double elapsed_seconds() const;

 private:
  std::string name_;
  Histogram* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cpsguard::obs

// SHA-256 (FIPS 180-4) for fingerprinting bench outputs in run manifests.
// Self-contained so the manifest layer has no external dependencies; this is
// an integrity/drift check, not a security boundary.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace cpsguard::obs {

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256();

  void update(const void* data, std::size_t len);

  /// Finalize and return the 32-byte digest. The context must not be
  /// updated afterwards.
  [[nodiscard]] std::array<std::uint8_t, 32> digest();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::uint64_t total_bytes_ = 0;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
};

/// Lowercase hex digest of a byte buffer.
std::string sha256_hex(const void* data, std::size_t len);
std::string sha256_hex(const std::string& data);

/// Lowercase hex digest of a file's bytes (streaming). Throws
/// std::runtime_error if the file cannot be read.
std::string sha256_file_hex(const std::string& path);

}  // namespace cpsguard::obs

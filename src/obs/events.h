// NDJSON event sink: one JSON object per line, appended to a file the bench
// selects with --events (or a test selects programmatically). Disabled by
// default; the CPSGUARD_OBS_EVENT macro costs a single relaxed atomic load
// and a predictable branch when the sink is off — its arguments are not
// even evaluated — so hot paths can emit events unconditionally.
//
//   CPSGUARD_OBS_EVENT("train.epoch", obs::f("model", name),
//                      obs::f("epoch", e), obs::f("loss", loss));
//
// Line format: {"ts_ns":<steady ns since enable>,"ev":"<name>",...fields}
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>

namespace cpsguard::obs {

/// One key/value pair of an event line.
struct Field {
  enum class Kind { kString, kNumber, kInteger, kBool };

  const char* key;
  Kind kind;
  std::string sval;
  double dval = 0.0;
  long long ival = 0;
  bool bval = false;
};

inline Field f(const char* key, std::string value) {
  return {key, Field::Kind::kString, std::move(value)};
}
inline Field f(const char* key, const char* value) {
  return {key, Field::Kind::kString, value};
}
inline Field f(const char* key, double value) {
  Field out{key, Field::Kind::kNumber, {}};
  out.dval = value;
  return out;
}
inline Field f(const char* key, int value) {
  Field out{key, Field::Kind::kInteger, {}};
  out.ival = value;
  return out;
}
inline Field f(const char* key, long long value) {
  Field out{key, Field::Kind::kInteger, {}};
  out.ival = value;
  return out;
}
inline Field f(const char* key, std::uint64_t value) {
  Field out{key, Field::Kind::kInteger, {}};
  out.ival = static_cast<long long>(value);
  return out;
}
inline Field f(const char* key, bool value) {
  Field out{key, Field::Kind::kBool, {}};
  out.bval = value;
  return out;
}

namespace detail {
// Inline so events_enabled() compiles to a load of this flag at every call
// site with no function-call overhead — the whole point of the macro gate.
inline std::atomic<bool> g_events_enabled{false};
}  // namespace detail

[[nodiscard]] inline bool events_enabled() {
  return detail::g_events_enabled.load(std::memory_order_relaxed);
}

/// Open `path` for appending and start accepting events. Throws
/// std::runtime_error if the file cannot be opened.
void enable_events(const std::string& path);

/// Stop accepting events and close the sink (flushes first). Safe to call
/// when already disabled.
void disable_events();

/// Append one NDJSON line (thread-safe, one write per line). No-op when the
/// sink is disabled — but prefer the macro, which skips argument evaluation.
void emit_event(const char* name, std::initializer_list<Field> fields);

}  // namespace cpsguard::obs

// Zero-overhead-when-disabled event emission: the field expressions are only
// evaluated when a sink is attached.
#define CPSGUARD_OBS_EVENT(name, ...)                        \
  do {                                                       \
    if (::cpsguard::obs::events_enabled()) {                 \
      ::cpsguard::obs::emit_event((name), {__VA_ARGS__});    \
    }                                                        \
  } while (0)

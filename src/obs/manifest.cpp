#include "obs/manifest.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "obs/fileio.h"
#include "obs/metrics.h"
#include "obs/sha256.h"

#ifndef CPSGUARD_GIT_SHA
#define CPSGUARD_GIT_SHA "unknown"
#endif
#ifndef CPSGUARD_COMPILER
#define CPSGUARD_COMPILER "unknown"
#endif
#ifndef CPSGUARD_BUILD_FLAGS
#define CPSGUARD_BUILD_FLAGS ""
#endif
#ifndef CPSGUARD_BUILD_TYPE
#define CPSGUARD_BUILD_TYPE ""
#endif

namespace cpsguard::obs {

namespace {

// Local JSON string building. obs sits below util in the layering, so it
// cannot reuse util::Json; the emission needs are small enough (flat schema,
// insertion-ordered keys) that a string builder keeps the library dependency-
// free.
std::string escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string quoted(const std::string& s) { return '"' + escaped(s) + '"'; }

std::string num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string uint(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

std::string histogram_json(const HistogramSnapshot& s) {
  std::string out = "{";
  out += "\"count\":" + uint(s.count);
  out += ",\"sum\":" + num(s.sum);
  out += ",\"min\":" + num(s.min);
  out += ",\"max\":" + num(s.max);
  out += ",\"p50\":" + num(s.p50);
  out += ",\"p90\":" + num(s.p90);
  out += ",\"p99\":" + num(s.p99);
  out += "}";
  return out;
}

}  // namespace

BuildInfo build_info() {
  BuildInfo info;
  info.git_sha = CPSGUARD_GIT_SHA;
  info.compiler = CPSGUARD_COMPILER;
  info.flags = CPSGUARD_BUILD_FLAGS;
  info.build_type = CPSGUARD_BUILD_TYPE;
  return info;
}

RunManifest::RunManifest(std::string name) : name_(std::move(name)) {}

void RunManifest::set_param(const std::string& key, const std::string& value) {
  for (auto& [k, v] : params_) {
    if (k == key) {
      v = quoted(value);
      return;
    }
  }
  params_.emplace_back(key, quoted(value));
}

void RunManifest::set_param(const std::string& key, double value) {
  for (auto& [k, v] : params_) {
    if (k == key) {
      v = num(value);
      return;
    }
  }
  params_.emplace_back(key, num(value));
}

void RunManifest::set_param(const std::string& key, long long value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", value);
  for (auto& [k, v] : params_) {
    if (k == key) {
      v = buf;
      return;
    }
  }
  params_.emplace_back(key, buf);
}

void RunManifest::set_threads(unsigned hardware, std::size_t max_parallelism) {
  hardware_threads_ = hardware;
  max_parallelism_ = max_parallelism;
}

void RunManifest::set_resume(ResumeInfo info) { resume_ = std::move(info); }

void RunManifest::record_output(const std::string& path, std::uint64_t rows) {
  OutputRecord rec;
  rec.path = path;
  rec.sha256 = sha256_file_hex(path);
  rec.bytes = static_cast<std::uint64_t>(std::filesystem::file_size(path));
  rec.rows = rows;
  for (auto& existing : outputs_) {
    if (existing.path == path) {
      existing = std::move(rec);  // re-written file: keep the latest hash
      return;
    }
  }
  outputs_.push_back(std::move(rec));
}

bool RunManifest::has_output(const std::string& path) const {
  for (const auto& rec : outputs_) {
    if (rec.path == path) return true;
  }
  return false;
}

std::string RunManifest::to_json() const {
  const BuildInfo build = build_info();
  std::string out = "{\n";
  out += "  \"schema\": " + quoted(kManifestSchema) + ",\n";
  out += "  \"name\": " + quoted(name_) + ",\n";
  out += "  \"git_sha\": " + quoted(build.git_sha) + ",\n";
  out += "  \"build\": {\"compiler\": " + quoted(build.compiler) +
         ", \"flags\": " + quoted(build.flags) +
         ", \"build_type\": " + quoted(build.build_type) + "},\n";
  out += "  \"seed\": " + uint(seed_) + ",\n";
  out += "  \"threads\": {\"hardware\": " + uint(hardware_threads_) +
         ", \"max_parallelism\": " + uint(max_parallelism_) + "},\n";

  if (resume_) {
    out += "  \"resume\": {\"run_id\": " + quoted(resume_->run_id) +
           ", \"parent_run_id\": " + quoted(resume_->parent_run_id) +
           ", \"resumed_points\": " + uint(resume_->resumed_points) +
           ", \"discarded_records\": " + uint(resume_->discarded_records) +
           "},\n";
  }

  out += "  \"params\": {";
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (i > 0) out += ", ";
    out += quoted(params_[i].first) + ": " + params_[i].second;
  }
  out += "},\n";

  out += "  \"outputs\": [";
  for (std::size_t i = 0; i < outputs_.size(); ++i) {
    const auto& rec = outputs_[i];
    if (i > 0) out += ",";
    out += "\n    {\"path\": " + quoted(rec.path) +
           ", \"sha256\": " + quoted(rec.sha256) +
           ", \"bytes\": " + uint(rec.bytes) + ", \"rows\": " + uint(rec.rows) +
           "}";
  }
  out += outputs_.empty() ? "],\n" : "\n  ],\n";

  const Registry& reg = Registry::instance();
  out += "  \"counters\": {";
  {
    const auto counters = reg.counters();
    for (std::size_t i = 0; i < counters.size(); ++i) {
      if (i > 0) out += ",";
      out += "\n    " + quoted(counters[i].first) + ": " +
             uint(counters[i].second);
    }
    out += counters.empty() ? "},\n" : "\n  },\n";
  }
  out += "  \"gauges\": {";
  {
    const auto gauges = reg.gauges();
    for (std::size_t i = 0; i < gauges.size(); ++i) {
      if (i > 0) out += ",";
      out += "\n    " + quoted(gauges[i].first) + ": " + num(gauges[i].second);
    }
    out += gauges.empty() ? "},\n" : "\n  },\n";
  }
  out += "  \"histograms\": {";
  {
    const auto histograms = reg.histograms();
    for (std::size_t i = 0; i < histograms.size(); ++i) {
      if (i > 0) out += ",";
      out += "\n    " + quoted(histograms[i].first) + ": " +
             histogram_json(histograms[i].second);
    }
    out += histograms.empty() ? "}\n" : "\n  }\n";
  }
  out += "}\n";
  return out;
}

std::string RunManifest::write(const std::string& dir) const {
  std::string path = dir.empty() ? std::string() : dir + "/";
  path += "BENCH_" + name_ + ".json";
  const std::string json = to_json();
  // Atomic temp + rename so a crashed run never leaves a truncated
  // manifest. Chaos-injected write faults are transient (at most one per
  // path), so a single re-attempt is all the recovery this needs; obs sits
  // below util and cannot use the full RetryPolicy machinery.
  try {
    atomic_write_file(path, json);
  } catch (const IoError&) {
    atomic_write_file(path, json);
  }
  return path;
}

}  // namespace cpsguard::obs

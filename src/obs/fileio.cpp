#include "obs/fileio.h"

#include <cstdio>
#include <mutex>

#include "obs/metrics.h"

namespace cpsguard::obs {

namespace {

std::mutex g_hook_mutex;
WriteFaultHook g_hook;

WriteFaultHook current_hook() {
  const std::scoped_lock lock(g_hook_mutex);
  return g_hook;
}

}  // namespace

void set_write_fault_hook(WriteFaultHook hook) {
  const std::scoped_lock lock(g_hook_mutex);
  g_hook = std::move(hook);
}

void atomic_write_file(const std::string& path, std::string_view data) {
  static Counter& writes = Registry::instance().counter("io.atomic_writes");
  static Counter& failures =
      Registry::instance().counter("io.atomic_write_failures");

  const std::string tmp = path + ".tmp";
  try {
    std::FILE* file = std::fopen(tmp.c_str(), "wb");
    if (file == nullptr) throw IoError("cannot open for writing: " + tmp);
    const std::size_t written = std::fwrite(data.data(), 1, data.size(), file);
    const bool flushed = std::fflush(file) == 0;
    std::fclose(file);
    if (written != data.size() || !flushed) {
      throw IoError("short write: " + tmp);
    }
    if (const WriteFaultHook hook = current_hook()) hook(path, tmp);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      throw IoError("rename failed: " + tmp + " -> " + path);
    }
  } catch (...) {
    failures.increment();
    throw;
  }
  writes.increment();
}

}  // namespace cpsguard::obs

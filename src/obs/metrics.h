// Process-wide observability metrics: lock-free counters and gauges plus a
// log-bucketed histogram, all owned by a named Registry singleton.
//
// Layering: obs sits *below* util (util::ThreadPool is itself instrumented),
// so nothing in this library may include other cpsguard headers.
//
// Hot-path usage pattern — resolve the metric once, then touch an atomic:
//
//   static obs::Counter& c = obs::Registry::instance().counter("nn.batches");
//   c.increment();
//
// Registry lookups take a mutex and are meant for setup / reporting code,
// not per-iteration loops.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cpsguard::obs {

/// Monotonic event count. All operations are wait-free atomics; concurrent
/// adds never lose increments (the Registry concurrency test asserts exact
/// totals under contention).
class Counter {
 public:
  void increment() { value_.fetch_add(1, std::memory_order_relaxed); }
  void add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (thread counts, queue depths, ...).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta);
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Aggregated view of a histogram at one point in time.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Log-bucketed histogram of positive doubles (durations, norms, sizes).
/// Buckets split every power of two into kSubBuckets linear sub-buckets,
/// giving ~9% relative quantile resolution over ~38 orders of magnitude.
/// record() is lock-free; count and sum are exact, quantiles are bucket
/// midpoint estimates.
class Histogram {
 public:
  static constexpr int kMinExp = -64;     // smallest octave: 2^-64
  static constexpr int kMaxExp = 64;      // largest octave:  2^64
  static constexpr int kSubBuckets = 8;   // linear splits per octave
  static constexpr int kNumBuckets = (kMaxExp - kMinExp) * kSubBuckets + 2;

  /// Record one observation. Non-positive and non-finite values fall into
  /// the underflow/overflow buckets but still count toward count/sum/min/max
  /// (NaN is dropped entirely).
  void record(double v);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Quantile estimate for q in [0, 1]; 0 when empty.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] HistogramSnapshot snapshot() const;

  void reset();

 private:
  static int bucket_index(double v);
  static double bucket_midpoint(int index);

  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<bool> has_extrema_{false};
};

/// Named metric registry. Metrics live for the rest of the process once
/// created (references stay valid), so call sites can cache them in statics.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Sorted snapshots for reporting (manifest dumps, tests).
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  counters() const;
  [[nodiscard]] std::vector<std::pair<std::string, double>> gauges() const;
  [[nodiscard]] std::vector<std::pair<std::string, HistogramSnapshot>>
  histograms() const;

  /// Zero every metric (keeps registrations). Test/bench isolation only.
  void reset_all();

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace cpsguard::obs

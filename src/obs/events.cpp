#include "obs/events.h"

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <stdexcept>

namespace cpsguard::obs {

namespace {

std::mutex g_sink_mutex;
std::FILE* g_sink = nullptr;
std::chrono::steady_clock::time_point g_epoch;

// Minimal JSON string escaping (quotes, backslash, control chars).
void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {  // NDJSON consumers reject bare inf/nan
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

}  // namespace

void enable_events(const std::string& path) {
  const std::scoped_lock lock(g_sink_mutex);
  if (g_sink != nullptr) {
    std::fclose(g_sink);
    g_sink = nullptr;
  }
  g_sink = std::fopen(path.c_str(), "ab");
  if (g_sink == nullptr) {
    throw std::runtime_error("cannot open event sink: " + path);
  }
  g_epoch = std::chrono::steady_clock::now();
  detail::g_events_enabled.store(true, std::memory_order_release);
}

void disable_events() {
  detail::g_events_enabled.store(false, std::memory_order_release);
  const std::scoped_lock lock(g_sink_mutex);
  if (g_sink != nullptr) {
    std::fclose(g_sink);
    g_sink = nullptr;
  }
}

void emit_event(const char* name, std::initializer_list<Field> fields) {
  if (!events_enabled()) return;
  const auto now = std::chrono::steady_clock::now();

  std::string line;
  line.reserve(128);
  line += "{\"ts_ns\":";
  {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRId64,
                  static_cast<std::int64_t>(
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          now - g_epoch)
                          .count()));
    line += buf;
  }
  line += ",\"ev\":\"";
  append_escaped(line, name);
  line += '"';
  for (const Field& field : fields) {
    line += ",\"";
    append_escaped(line, field.key);
    line += "\":";
    switch (field.kind) {
      case Field::Kind::kString:
        line += '"';
        append_escaped(line, field.sval);
        line += '"';
        break;
      case Field::Kind::kNumber:
        append_number(line, field.dval);
        break;
      case Field::Kind::kInteger: {
        char buf[24];
        std::snprintf(buf, sizeof buf, "%lld", field.ival);
        line += buf;
        break;
      }
      case Field::Kind::kBool:
        line += field.bval ? "true" : "false";
        break;
    }
  }
  line += "}\n";

  const std::scoped_lock lock(g_sink_mutex);
  if (g_sink == nullptr) return;  // raced with disable_events
  std::fwrite(line.data(), 1, line.size(), g_sink);
  std::fflush(g_sink);
}

}  // namespace cpsguard::obs

#include "obs/metrics.h"

#include <cmath>

namespace cpsguard::obs {

namespace {

// CAS loop instead of fetch_add(double): portable across toolchains that
// lack lock-free FP RMW, and the pattern is reused for min/max below.
void atomic_add(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur && !target.compare_exchange_weak(cur, v,
                                                  std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur && !target.compare_exchange_weak(cur, v,
                                                  std::memory_order_relaxed)) {
  }
}

}  // namespace

void Gauge::add(double delta) { atomic_add(value_, delta); }

int Histogram::bucket_index(double v) {
  if (!(v > 0.0) || !std::isfinite(v)) {
    return v > 0.0 ? kNumBuckets - 1 : 0;  // +inf overflows, <=0 underflows
  }
  int exp = 0;
  const double mantissa = std::frexp(v, &exp);  // mantissa in [0.5, 1)
  const int octave = exp - 1;                   // v in [2^octave, 2^(octave+1))
  if (octave < kMinExp) return 0;
  if (octave >= kMaxExp) return kNumBuckets - 1;
  const int sub = std::min(kSubBuckets - 1,
                           static_cast<int>((mantissa * 2.0 - 1.0) * kSubBuckets));
  return 1 + (octave - kMinExp) * kSubBuckets + sub;
}

double Histogram::bucket_midpoint(int index) {
  if (index <= 0) return 0.0;
  if (index >= kNumBuckets - 1) return std::ldexp(1.0, kMaxExp);
  const int linear = index - 1;
  const int octave = kMinExp + linear / kSubBuckets;
  const int sub = linear % kSubBuckets;
  const double lo = std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, octave);
  const double hi =
      std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBuckets, octave);
  return 0.5 * (lo + hi);
}

void Histogram::record(double v) {
  if (std::isnan(v)) return;
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  // First-recorder initializes the extrema; races here only widen the
  // window in which min/max start at the true first value, never corrupt it.
  if (!has_extrema_.exchange(true, std::memory_order_acq_rel)) {
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  } else {
    atomic_min(min_, v);
    atomic_max(max_, v);
  }
}

double Histogram::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::fmin(std::fmax(q, 0.0), 1.0);
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total - 1));
  std::uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen > rank) return bucket_midpoint(i);
  }
  return max_.load(std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.count = count();
  s.sum = sum();
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  s.p50 = quantile(0.50);
  s.p90 = quantile(0.90);
  s.p99 = quantile(0.99);
  return s;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  has_extrema_.store(false, std::memory_order_relaxed);
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counters() const {
  const std::scoped_lock lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> Registry::gauges() const {
  const std::scoped_lock lock(mutex_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>> Registry::histograms()
    const {
  const std::scoped_lock lock(mutex_);
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h->snapshot());
  return out;
}

void Registry::reset_all() {
  const std::scoped_lock lock(mutex_);
  for (auto& [_, c] : counters_) c->reset();
  for (auto& [_, g] : gauges_) g->reset();
  for (auto& [_, h] : histograms_) h->reset();
}

}  // namespace cpsguard::obs

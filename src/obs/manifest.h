// Run manifests: one machine-diffable JSON file per bench run
// (BENCH_<name>.json) with a uniform schema — git SHA, build flags, seeds,
// thread counts, run parameters, per-phase timing quantiles, the full
// counter dump, and a SHA-256 fingerprint of every CSV the bench emitted.
// Diffing two manifests across commits answers both "did the outputs drift?"
// (hashes) and "where did the time go?" (span histograms).
//
// Schema: see DESIGN.md § "Observability" (schema id below bumps on change).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cpsguard::obs {

inline constexpr const char* kManifestSchema = "cpsguard.bench_manifest.v1";

/// Compile-time build identification (populated by CMake definitions).
struct BuildInfo {
  std::string git_sha;     // HEAD at configure time ("unknown" outside git)
  std::string compiler;    // id + version
  std::string flags;       // CMAKE_CXX_FLAGS + per-config flags
  std::string build_type;  // CMAKE_BUILD_TYPE
};

[[nodiscard]] BuildInfo build_info();

/// One registered output file.
struct OutputRecord {
  std::string path;
  std::string sha256;
  std::uint64_t bytes = 0;
  std::uint64_t rows = 0;  // CSV data rows (0 for non-tabular outputs)
};

/// Resume lineage of a checkpointed campaign (core::CheckpointStore): which
/// run this one continued and how much stored work it reused. Keeps
/// recovered runs auditable — a resumed CSV is byte-identical to a straight
/// run, so the manifest is where the history lives.
struct ResumeInfo {
  std::string run_id;
  std::string parent_run_id;          // "" for a fresh (non-resumed) run
  std::uint64_t resumed_points = 0;   // checkpoint records reused
  std::uint64_t discarded_records = 0;  // corrupt/truncated records dropped
};

class RunManifest {
 public:
  explicit RunManifest(std::string name);

  const std::string& name() const { return name_; }

  /// Key/value run parameters (stringified; insertion-ordered).
  void set_param(const std::string& key, const std::string& value);
  void set_param(const std::string& key, double value);
  void set_param(const std::string& key, long long value);

  void set_seed(std::uint64_t seed) { seed_ = seed; }
  /// `max_parallelism` 0 means "uncapped" (pool-sized fan-outs).
  void set_threads(unsigned hardware, std::size_t max_parallelism);

  /// Record checkpoint/resume lineage; emitted as the optional "resume"
  /// section of the manifest.
  void set_resume(ResumeInfo info);
  [[nodiscard]] const std::optional<ResumeInfo>& resume() const {
    return resume_;
  }

  /// Hash `path` (which must exist) and register it as a run output.
  void record_output(const std::string& path, std::uint64_t rows = 0);

  [[nodiscard]] bool has_output(const std::string& path) const;
  [[nodiscard]] const std::vector<OutputRecord>& outputs() const {
    return outputs_;
  }

  /// Serialize: schema header, build info, params, outputs, plus the
  /// current Registry counter/gauge/histogram dump.
  [[nodiscard]] std::string to_json() const;

  /// Write to_json() atomically to `<dir>/BENCH_<name>.json` (dir "" =
  /// cwd). Returns the path written. Throws IoError on I/O failure (one
  /// internal re-attempt absorbs a transient/injected write fault).
  std::string write(const std::string& dir = "") const;

 private:
  std::string name_;
  std::uint64_t seed_ = 0;
  unsigned hardware_threads_ = 0;
  std::size_t max_parallelism_ = 0;
  std::vector<std::pair<std::string, std::string>> params_;
  std::vector<OutputRecord> outputs_;
  std::optional<ResumeInfo> resume_;
};

}  // namespace cpsguard::obs

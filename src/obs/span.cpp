#include "obs/span.h"

#include "obs/events.h"

namespace cpsguard::obs {

ScopedSpan::ScopedSpan(std::string name)
    : name_(std::move(name)),
      sink_(&Registry::instance().histogram("span." + name_)),
      start_(std::chrono::steady_clock::now()) {}

ScopedSpan::ScopedSpan(const char* name, Histogram& sink)
    : name_(name), sink_(&sink), start_(std::chrono::steady_clock::now()) {}

ScopedSpan::~ScopedSpan() {
  const double secs = elapsed_seconds();
  sink_->record(secs);
  CPSGUARD_OBS_EVENT("span", f("name", name_), f("secs", secs));
}

double ScopedSpan::elapsed_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

}  // namespace cpsguard::obs

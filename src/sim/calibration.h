// In-silico pump titration: measure a settled plant's *effective* insulin
// sensitivity factor (ISF) and carb ratio (CR) by probing copies of it, the
// way a clinician titrates pump settings per patient. Controllers dose from
// these calibrated values, so closed-loop behaviour stays sane across plants
// whose dynamics make the nominal profile numbers inaccurate.
#pragma once

#include <algorithm>

#include "sim/profile.h"
#include "sim/types.h"

namespace cpsguard::sim {

/// Probe a copy of `settled` (a plant at steady state under
/// `basal_u_per_h`): effective ISF = BG drop caused by +1 U, measured 4 h
/// out; effective carb factor = peak BG rise per gram over 3 h.
/// Returns `nominal` with isf/carb-ratio replaced by calibrated values.
template <typename Plant>
PatientProfile calibrate_profile(const Plant& settled,
                                 const PatientProfile& nominal,
                                 double basal_u_per_h) {
  constexpr double kProbeBolusU = 1.0;
  constexpr double kProbeCarbsG = 30.0;
  constexpr int kIsfHorizonCycles = 48;   // 4 h
  constexpr int kCarbHorizonCycles = 36;  // 3 h

  // ISF probe: +1 U delivered over one cycle vs. an undisturbed twin.
  Plant base = settled;
  Plant bolus = settled;
  const double bolus_rate =
      basal_u_per_h + kProbeBolusU * 60.0 / kControlPeriodMin;
  base.step(basal_u_per_h, 0.0, kControlPeriodMin);
  bolus.step(bolus_rate, 0.0, kControlPeriodMin);
  for (int i = 1; i < kIsfHorizonCycles; ++i) {
    base.step(basal_u_per_h, 0.0, kControlPeriodMin);
    bolus.step(basal_u_per_h, 0.0, kControlPeriodMin);
  }
  const double isf =
      std::clamp((base.bg() - bolus.bg()) / kProbeBolusU, 5.0, 300.0);

  // Carb probe: peak rise of a 30 g meal against the same baseline.
  Plant meal = settled;
  meal.step(basal_u_per_h, kProbeCarbsG, kControlPeriodMin);
  Plant twin = settled;
  twin.step(basal_u_per_h, 0.0, kControlPeriodMin);
  double peak_rise = 0.0;
  for (int i = 1; i < kCarbHorizonCycles; ++i) {
    meal.step(basal_u_per_h, 0.0, kControlPeriodMin);
    twin.step(basal_u_per_h, 0.0, kControlPeriodMin);
    peak_rise = std::max(peak_rise, meal.bg() - twin.bg());
  }
  const double carb_effect = std::max(peak_rise / kProbeCarbsG, 0.05);

  PatientProfile calibrated = nominal;
  calibrated.isf_mg_dl_per_u = isf;
  calibrated.carb_ratio_g_per_u = std::clamp(isf / carb_effect, 2.0, 150.0);
  return calibrated;
}

}  // namespace cpsguard::sim

#include "sim/types.h"

namespace cpsguard::sim {

std::string to_string(ControlAction a) {
  switch (a) {
    case ControlAction::kDecreaseInsulin: return "decrease_insulin";
    case ControlAction::kIncreaseInsulin: return "increase_insulin";
    case ControlAction::kStopInsulin: return "stop_insulin";
    case ControlAction::kKeepInsulin: return "keep_insulin";
  }
  return "unknown";
}

}  // namespace cpsguard::sim

// UVA-Padova-style ("T1DS2013") patient plant: a Hovorka-type two-compartment
// glucose model with a three-pathway insulin action and a two-compartment
// subcutaneous insulin / gut absorption chain. Stands in for the proprietary
// UVA-Padova Type 1 Diabetes Simulator used by the paper; what matters for
// the reproduction is that it is a *different* nonlinear plant with a
// *different* data distribution than the Glucosym-style model.
//
// States (total amounts, weight-scaled constants):
//   S1, S2  subcutaneous insulin (mU)           dS1 = u - S1/tmaxI
//   I       plasma insulin (mU/L)               dS2 = (S1 - S2)/tmaxI
//   x1,x2,x3 insulin action (transport, disposal, EGP suppression)
//   Q1, Q2  glucose masses (mmol)
//   D1, D2  gut glucose (mmol)
#pragma once

#include "sim/patient.h"

namespace cpsguard::sim {

class T1dPatient : public PatientModel {
 public:
  void reset(const PatientProfile& profile, util::Rng& rng) override;
  void step(double insulin_u_per_h, double carbs_g, double dt_min) override;

  [[nodiscard]] double bg() const override;
  [[nodiscard]] double iob() const override { return iob_.value(); }
  [[nodiscard]] double recommended_basal_u_per_h() const override {
    return equilibrium_basal_u_per_h_;
  }
  [[nodiscard]] PatientProfile effective_profile() const override {
    return calibrated_;
  }
  [[nodiscard]] std::string name() const override { return "T1DS2013"; }

  [[nodiscard]] double plasma_insulin() const { return i_; }

 private:
  void integrate(double insulin_mu_per_min, double h);

  PatientProfile profile_;
  PatientProfile calibrated_;  // profile with plant-calibrated ISF / CR
  // Weight-scaled constants, fixed at reset().
  double vg_l_ = 11.2;    // glucose distribution volume (L)
  double vi_l_ = 8.4;     // insulin distribution volume (L)
  double f01_ = 0.68;     // non-insulin glucose flux (mmol/min)
  double egp0_ = 1.13;    // endogenous glucose production at zero insulin
  double kb1_ = 0.0, kb2_ = 0.0, kb3_ = 0.0;  // action activation rates

  static constexpr double k12_ = 0.066;  // inter-compartment transfer (1/min)
  static constexpr double ka1_ = 0.006;
  static constexpr double ka2_ = 0.06;
  static constexpr double ka3_ = 0.03;
  static constexpr double ke_ = 0.138;
  static constexpr double tmax_g_ = 40.0;  // gut absorption time constant

  double s1_ = 0.0, s2_ = 0.0;
  double i_ = 0.0;
  double x1_ = 0.0, x2_ = 0.0, x3_ = 0.0;
  double q1_ = 0.0, q2_ = 0.0;
  double d1_ = 0.0, d2_ = 0.0;
  double equilibrium_basal_u_per_h_ = 0.5;
  InsulinOnBoard iob_{75.0};
};

}  // namespace cpsguard::sim

// Patient plant interface and shared insulin-on-board accounting.
#pragma once

#include <string>

#include "sim/profile.h"
#include "util/rng.h"

namespace cpsguard::sim {

/// Pharmacokinetic insulin-on-board tracker: first-order decay of delivered
/// insulin with a configurable effective half-life. Counts all delivered
/// insulin (basal + boluses) — the quantity the STL rules reason about via
/// its trend (IOB').
class InsulinOnBoard {
 public:
  explicit InsulinOnBoard(double half_life_min = 60.0);

  void reset(double initial_units);
  /// Advance `dt_min` minutes while delivering at `rate_u_per_h`.
  void step(double rate_u_per_h, double dt_min);

  [[nodiscard]] double value() const { return units_; }
  /// Equilibrium IOB under a constant rate — used by controllers to judge
  /// how much of the current IOB is excess over scheduled basal.
  [[nodiscard]] double equilibrium(double rate_u_per_h) const;

 private:
  double decay_per_min_;
  double units_ = 0.0;
};

/// A physical patient model driven in closed loop at 1-minute integration
/// steps. Implementations must keep all state finite for any bounded input.
class PatientModel {
 public:
  virtual ~PatientModel() = default;

  /// Initialize from a profile (includes a warm-up to near steady state so
  /// the first control cycles see physiologic values).
  virtual void reset(const PatientProfile& profile, util::Rng& rng) = 0;

  /// Advance `dt_min` minutes with the given infusion; `carbs_g` grams are
  /// ingested at the start of the step (0 for no meal).
  virtual void step(double insulin_u_per_h, double carbs_g, double dt_min) = 0;

  /// True plasma glucose (mg/dL).
  [[nodiscard]] virtual double bg() const = 0;
  /// Insulin on board (U).
  [[nodiscard]] virtual double iob() const = 0;

  /// The basal rate (U/h) that holds this patient near steady state — what a
  /// clinician would program into the pump. Plants whose equilibrium rate is
  /// an emergent property override this; default is the profile's schedule.
  [[nodiscard]] virtual double recommended_basal_u_per_h() const = 0;

  /// The profile a clinician would program into the controller for this
  /// patient. Plants whose *effective* insulin sensitivity / carb ratio are
  /// emergent properties of their dynamics override this to return
  /// plant-calibrated values (the in-silico analogue of pump titration);
  /// default is the nominal profile.
  [[nodiscard]] virtual PatientProfile effective_profile() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace cpsguard::sim

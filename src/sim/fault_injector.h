// Fault injection: the mechanism that produces unsafe control actions and
// hazards in the campaign (mirroring the fault-injection methodology of the
// paper's testbed [Zhou et al., DSN'21]). Faults hit either the sensing path
// (the controller and monitor see wrong BG) or the actuation path (the pump
// delivers a different rate than commanded).
//
// Beyond the nine plant faults, a second family of *monitor-input* faults
// models degraded delivery of samples to the safety monitor itself (sample
// loss, stale delivery, garbage corruption, burst spikes). These can emit
// NaN or wildly out-of-range readings — they are meant for the resilient
// monitoring runtime (core::ResilientMonitor), not for closed-loop plant
// campaigns, which draw only the plant faults via random_spec().
#pragma once

#include <string>
#include <vector>

#include "util/rng.h"

namespace cpsguard::sim {

enum class FaultType : int {
  kNone = 0,
  kSensorBiasHigh,   // CGM reads high by `magnitude` mg/dL
  kSensorBiasLow,    // CGM reads low by `magnitude` mg/dL
  kSensorStuck,      // CGM freezes at the value seen at fault onset
  kSensorDrift,      // CGM drifts by `magnitude` mg/dL per cycle
  kPumpOverdose,     // pump delivers `magnitude`x the commanded rate
  kPumpUnderdose,    // pump delivers `magnitude` fraction (<1) of commanded
  kPumpStuckMax,     // pump stuck at `magnitude` U/h regardless of command
  kPumpStuckZero,    // pump delivers nothing
  kSensorDropout,    // CGM intermittently repeats its last reading

  // Monitor-input faults (per-cycle manifestation probability = `rate`):
  kSensorLoss,       // reading absent: NaN delivered instead of a sample
  kSensorDelay,      // reading delivered `magnitude` cycles late (stale)
  kSensorGarbage,    // reading replaced by NaN or a wild garbage value
  kSensorSpike,      // additive burst spike of ±`magnitude` mg/dL
};

inline constexpr int kNumFaultTypes = 14;
/// The original plant-fault family (incl. kNone); random_spec draws only
/// from these so closed-loop campaigns never see NaN readings.
inline constexpr int kNumPlantFaultTypes = 10;

std::string to_string(FaultType t);

/// True for the monitor-input fault family (kSensorLoss..kSensorSpike).
bool is_input_fault(FaultType t);

struct FaultSpec {
  FaultType type = FaultType::kNone;
  int start_step = 0;
  int duration_steps = 0;
  double magnitude = 0.0;
  /// Per-cycle probability that an *input* fault manifests inside the active
  /// window (plant faults ignore it and always manifest). 1.0 = every cycle.
  double rate = 1.0;

  [[nodiscard]] bool active(int step) const {
    return type != FaultType::kNone && step >= start_step &&
           step < start_step + duration_steps;
  }
};

class FaultInjector {
 public:
  FaultInjector() = default;  // no fault
  explicit FaultInjector(FaultSpec spec);
  /// As above but with an explicit seed for the intermittency stream, so
  /// identical specs applied to many traces decorrelate.
  FaultInjector(FaultSpec spec, std::uint64_t stream_seed);

  /// Transform the true BG into what the CGM reports at `step`. Stateful:
  /// must be called once per step, in step order. Monitor-input faults may
  /// return NaN (sample absent / corrupted).
  double sense(double true_bg, int step);

  /// Transform the commanded rate into what the pump delivers at `step`.
  [[nodiscard]] double actuate(double commanded_rate, int step) const;

  [[nodiscard]] bool active(int step) const { return spec_.active(step); }
  [[nodiscard]] const FaultSpec& spec() const { return spec_; }

  /// Random plant-fault campaign for a trace of `trace_steps` cycles:
  /// uniformly chosen plant fault type (never kNone, never an input fault),
  /// onset in the first half of the run, duration 1.5 h - 8 h (18-96 steps),
  /// plausible magnitudes per type.
  static FaultSpec random_spec(int trace_steps, util::Rng& rng);

  /// Random monitor-input fault: uniformly chosen among the input-fault
  /// family, onset in the first half, duration 18-96 steps, manifestation
  /// rate 0.2-0.9, plausible magnitudes per type.
  static FaultSpec random_input_spec(int trace_steps, util::Rng& rng);

 private:
  FaultSpec spec_;
  double stuck_value_ = -1.0;  // latched CGM value for kSensorStuck
  int drift_origin_ = -1;      // onset step for kSensorDrift
  double last_reading_ = -1.0; // held sample for kSensorDropout
  std::vector<double> delay_buffer_;  // past readings for kSensorDelay
  util::Rng rng_{0x44524f50ULL};  // drives intermittency; reseeded per spec
};

}  // namespace cpsguard::sim

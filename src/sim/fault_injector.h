// Fault injection: the mechanism that produces unsafe control actions and
// hazards in the campaign (mirroring the fault-injection methodology of the
// paper's testbed [Zhou et al., DSN'21]). Faults hit either the sensing path
// (the controller and monitor see wrong BG) or the actuation path (the pump
// delivers a different rate than commanded).
#pragma once

#include <string>

#include "util/rng.h"

namespace cpsguard::sim {

enum class FaultType : int {
  kNone = 0,
  kSensorBiasHigh,   // CGM reads high by `magnitude` mg/dL
  kSensorBiasLow,    // CGM reads low by `magnitude` mg/dL
  kSensorStuck,      // CGM freezes at the value seen at fault onset
  kSensorDrift,      // CGM drifts by `magnitude` mg/dL per cycle
  kPumpOverdose,     // pump delivers `magnitude`x the commanded rate
  kPumpUnderdose,    // pump delivers `magnitude` fraction (<1) of commanded
  kPumpStuckMax,     // pump stuck at `magnitude` U/h regardless of command
  kPumpStuckZero,    // pump delivers nothing
  kSensorDropout,    // CGM intermittently repeats its last reading
};

inline constexpr int kNumFaultTypes = 10;

std::string to_string(FaultType t);

struct FaultSpec {
  FaultType type = FaultType::kNone;
  int start_step = 0;
  int duration_steps = 0;
  double magnitude = 0.0;

  [[nodiscard]] bool active(int step) const {
    return type != FaultType::kNone && step >= start_step &&
           step < start_step + duration_steps;
  }
};

class FaultInjector {
 public:
  FaultInjector() = default;  // no fault
  explicit FaultInjector(FaultSpec spec);

  /// Transform the true BG into what the CGM reports at `step`.
  double sense(double true_bg, int step);

  /// Transform the commanded rate into what the pump delivers at `step`.
  [[nodiscard]] double actuate(double commanded_rate, int step) const;

  [[nodiscard]] bool active(int step) const { return spec_.active(step); }
  [[nodiscard]] const FaultSpec& spec() const { return spec_; }

  /// Random fault campaign for a trace of `trace_steps` cycles: uniformly
  /// chosen fault type (never kNone), onset in the first two-thirds of the
  /// run, duration 30 min - 5 h, plausible magnitudes per type.
  static FaultSpec random_spec(int trace_steps, util::Rng& rng);

 private:
  FaultSpec spec_;
  double stuck_value_ = -1.0;  // latched CGM value for kSensorStuck
  int drift_origin_ = -1;      // onset step for kSensorDrift
  double last_reading_ = -1.0; // held sample for kSensorDropout
  util::Rng rng_{0x44524f50ULL};  // drives dropout; reseeded per spec
};

}  // namespace cpsguard::sim

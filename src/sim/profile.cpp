#include "sim/profile.h"

#include "util/contracts.h"

namespace cpsguard::sim {

std::vector<PatientProfile> glucosym_profiles(int count, std::uint64_t seed) {
  expects(count > 0, "profile count must be positive");
  util::Rng rng(seed, 0x474c5543u /* 'GLUC' */);
  std::vector<PatientProfile> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    PatientProfile p;
    p.id = i;
    p.weight_kg = rng.uniform(55.0, 95.0);
    p.basal_u_per_h = rng.uniform(0.7, 1.6);
    p.isf_mg_dl_per_u = rng.uniform(35.0, 65.0);
    p.carb_ratio_g_per_u = rng.uniform(8.0, 15.0);
    p.initial_bg = rng.uniform(100.0, 150.0);
    p.p1 = rng.uniform(0.004, 0.009);
    p.p2 = rng.uniform(0.02, 0.035);
    p.p3 = rng.uniform(1.0e-5, 1.8e-5);
    p.ke = rng.uniform(0.07, 0.11);
    p.ka = rng.uniform(0.014, 0.024);
    p.kabs = rng.uniform(0.02, 0.035);
    out.push_back(p);
  }
  return out;
}

std::vector<PatientProfile> t1d_profiles(int count, std::uint64_t seed) {
  expects(count > 0, "profile count must be positive");
  util::Rng rng(seed, 0x54314453u /* 'T1DS' */);
  std::vector<PatientProfile> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    PatientProfile p;
    p.id = i;
    p.weight_kg = rng.uniform(65.0, 110.0);
    p.basal_u_per_h = rng.uniform(0.8, 2.0);
    p.isf_mg_dl_per_u = rng.uniform(30.0, 55.0);
    p.carb_ratio_g_per_u = rng.uniform(6.0, 12.0);
    p.initial_bg = rng.uniform(110.0, 170.0);
    p.sf_transport = rng.uniform(0.7, 1.3);
    p.sf_disposal = rng.uniform(0.7, 1.3);
    p.sf_egp = rng.uniform(0.8, 1.25);
    p.tmax_i_min = rng.uniform(45.0, 70.0);
    p.ag = rng.uniform(0.7, 0.9);
    out.push_back(p);
  }
  return out;
}

}  // namespace cpsguard::sim

// Simulation traces: one record per 5-minute control cycle. Traces are the
// raw material for dataset building (monitor windows), ground-truth hazard
// labelling, and the example plots.
#pragma once

#include <string>
#include <vector>

#include "sim/types.h"

namespace cpsguard::sim {

struct StepRecord {
  int step = 0;               // control cycle index (5-min each)
  double sensor_bg = 0.0;     // BG as seen by controller/monitor (mg/dL)
  double true_bg = 0.0;       // BG of the physical patient (mg/dL)
  double iob = 0.0;           // insulin on board (U)
  double d_bg = 0.0;          // sensor BG derivative (mg/dL per min)
  double d_iob = 0.0;         // IOB derivative (U per min)
  double commanded_rate = 0.0;  // controller output (U/h)
  double actuated_rate = 0.0;   // what the pump delivered (U/h)
  double carbs_g = 0.0;         // meal carbs ingested this cycle (g)
  ControlAction action = ControlAction::kKeepInsulin;
  bool fault_active = false;  // any fault active during this cycle
};

struct Trace {
  int patient_id = 0;
  int simulation_id = 0;
  bool fault_injected = false;   // whether the run had a fault campaign
  std::string fault_name = "none";
  std::vector<StepRecord> steps;

  [[nodiscard]] int length() const { return static_cast<int>(steps.size()); }
};

/// True iff true BG at `step` is in a hazard region (H1 or H2).
bool in_hazard(const StepRecord& r);

/// True iff any step in [from, to] (clamped, inclusive) is in hazard.
bool hazard_within(const Trace& trace, int from, int to);

/// Fraction of steps whose true BG is inside [70, 180] — the clinical
/// time-in-range metric, used by simulator sanity tests.
double time_in_range(const Trace& trace);

/// Serialize a trace to CSV text (one row per step) for plotting.
std::string trace_to_csv(const Trace& trace);

}  // namespace cpsguard::sim

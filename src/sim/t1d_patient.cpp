#include "sim/t1d_patient.h"

#include <algorithm>
#include <cmath>

#include "sim/calibration.h"

#include "util/contracts.h"

namespace cpsguard::sim {

namespace {
// Hovorka (2004) nominal insulin sensitivities (per mU/L of plasma insulin).
constexpr double kSit = 51.2e-4;  // transport
constexpr double kSid = 8.2e-4;   // disposal
constexpr double kSie = 520e-4;   // EGP suppression
constexpr double kMmolPerGramGlucose = 1000.0 / 180.0;
}  // namespace

double T1dPatient::bg() const { return q1_ / vg_l_ * 18.0; }

void T1dPatient::reset(const PatientProfile& profile, util::Rng& rng) {
  profile_ = profile;
  vg_l_ = 0.16 * profile.weight_kg;
  vi_l_ = 0.12 * profile.weight_kg;
  f01_ = 0.0097 * profile.weight_kg;
  egp0_ = 0.0161 * profile.weight_kg * profile.sf_egp;
  kb1_ = ka1_ * kSit * profile.sf_transport;
  kb2_ = ka2_ * kSid * profile.sf_disposal;
  kb3_ = ka3_ * kSie;

  // Solve for the plasma insulin level whose glucose equilibrium equals the
  // profile's initial BG, then initialize every state at that steady state.
  const double target_q1 = profile.initial_bg / 18.0 * vg_l_;
  const auto q1_equilibrium = [&](double ins) {
    const double a = kSit * profile.sf_transport * ins;
    const double b = kSid * profile.sf_disposal * ins;
    const double c = kSie * ins;
    const double production = egp0_ * std::max(0.0, 1.0 - c) - f01_;
    const double uptake_per_q1 = a * b / (k12_ + b);
    if (uptake_per_q1 <= 1e-12) return production > 0.0 ? 1e9 : 0.0;
    return production / uptake_per_q1;
  };
  double lo = 0.05, hi = 60.0;
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    // q1_equilibrium is decreasing in insulin.
    if (q1_equilibrium(mid) > target_q1) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double ins_eq = 0.5 * (lo + hi);
  const double u_eq = ins_eq * vi_l_ * ke_;  // mU/min

  i_ = ins_eq;
  s1_ = s2_ = u_eq * profile.tmax_i_min;
  x1_ = kSit * profile.sf_transport * ins_eq;
  x2_ = kSid * profile.sf_disposal * ins_eq;
  x3_ = kSie * ins_eq;
  q1_ = target_q1 * rng.uniform(0.95, 1.05);
  q2_ = x1_ * q1_ / (k12_ + x2_);
  d1_ = d2_ = 0.0;

  equilibrium_basal_u_per_h_ = u_eq * 60.0 / 1000.0;
  iob_.reset(iob_.equilibrium(equilibrium_basal_u_per_h_));

  for (int warm = 0; warm < 60; ++warm) {
    integrate(u_eq, 1.0);
    iob_.step(equilibrium_basal_u_per_h_, 1.0);
  }

  calibrated_ = calibrate_profile(*this, profile_, equilibrium_basal_u_per_h_);
}

void T1dPatient::step(double insulin_u_per_h, double carbs_g, double dt_min) {
  expects(insulin_u_per_h >= 0.0, "infusion rate must be non-negative");
  expects(carbs_g >= 0.0, "carbs must be non-negative");
  expects(dt_min > 0.0, "dt must be positive");
  d1_ += profile_.ag * carbs_g * kMmolPerGramGlucose;
  const double u_mu_per_min = insulin_u_per_h * 1000.0 / 60.0;
  double remaining = dt_min;
  while (remaining > 1e-9) {
    const double h = std::min(1.0, remaining);
    integrate(u_mu_per_min, h);
    iob_.step(insulin_u_per_h, h);
    remaining -= h;
  }
}

void T1dPatient::integrate(double u, double h) {
  const double tmax_i = profile_.tmax_i_min;
  const double ds1 = u - s1_ / tmax_i;
  const double ds2 = (s1_ - s2_) / tmax_i;
  const double di = s2_ / (tmax_i * vi_l_) - ke_ * i_;
  const double dx1 = kb1_ * i_ - ka1_ * x1_;
  const double dx2 = kb2_ * i_ - ka2_ * x2_;
  const double dx3 = kb3_ * i_ - ka3_ * x3_;
  const double ug = d2_ / tmax_g_;  // gut appearance (mmol/min)
  const double dd1 = -d1_ / tmax_g_;
  const double dd2 = (d1_ - d2_) / tmax_g_;
  const double egp = egp0_ * std::max(0.0, 1.0 - x3_);
  const double dq1 = -f01_ - x1_ * q1_ + k12_ * q2_ + egp + ug;
  const double dq2 = x1_ * q1_ - (k12_ + x2_) * q2_;

  s1_ = std::max(0.0, s1_ + h * ds1);
  s2_ = std::max(0.0, s2_ + h * ds2);
  i_ = std::max(0.0, i_ + h * di);
  x1_ = std::max(0.0, x1_ + h * dx1);
  x2_ = std::max(0.0, x2_ + h * dx2);
  x3_ = std::max(0.0, x3_ + h * dx3);
  q1_ = std::clamp(q1_ + h * dq1, 10.0 / 18.0 * vg_l_ * 0.1, 600.0 / 18.0 * vg_l_);
  q2_ = std::max(0.0, q2_ + h * dq2);
  d1_ = std::max(0.0, d1_ + h * dd1);
  d2_ = std::max(0.0, d2_ + h * dd2);
}

}  // namespace cpsguard::sim

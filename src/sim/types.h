// Shared vocabulary types of the APS simulation: control actions, insulin
// commands, and physical constants used across controllers and patients.
//
// Control actions follow the paper's Table I footnote:
//   u1 = decrease_insulin, u2 = increase_insulin,
//   u3 = stop_insulin,     u4 = keep_insulin.
#pragma once

#include <string>

namespace cpsguard::sim {

enum class ControlAction : int {
  kDecreaseInsulin = 0,  // u1
  kIncreaseInsulin = 1,  // u2
  kStopInsulin = 2,      // u3
  kKeepInsulin = 3,      // u4
};

inline constexpr int kNumActions = 4;

std::string to_string(ControlAction a);

/// What a controller decides each cycle: the basal-equivalent infusion rate
/// in U/h (bolus doses are folded into the rate for the delivery interval)
/// plus the discrete action class the monitors and STL rules consume.
struct InsulinCommand {
  double rate_u_per_h = 0.0;
  ControlAction action = ControlAction::kKeepInsulin;
};

/// Control/decision period: both APS testbeds in the paper run on 5-minute
/// cycles ("each simulation step equals 5 minutes in the actual system").
inline constexpr double kControlPeriodMin = 5.0;

/// Hazard thresholds (mg/dL): H1 hypoglycemia below, H2 hyperglycemia above.
inline constexpr double kHypoglycemiaBg = 70.0;
inline constexpr double kHyperglycemiaBg = 180.0;

/// Controller BG target (the BGT of Table I).
inline constexpr double kTargetBg = 120.0;

}  // namespace cpsguard::sim

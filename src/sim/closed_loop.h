// Closed-loop simulation engine: wires a patient plant, a controller, a meal
// schedule and an optional fault campaign into one trace of 5-minute cycles.
#pragma once

#include <memory>

#include "sim/controller.h"
#include "sim/fault_injector.h"
#include "sim/meal.h"
#include "sim/patient.h"
#include "sim/trace.h"

namespace cpsguard::sim {

struct SimConfig {
  int steps = 150;           // 5-min cycles (150 = 12.5 h, as in the paper)
  bool inject_fault = false; // run a random fault campaign
  double sensor_noise_std = 2.0;  // intrinsic CGM noise (mg/dL), always on

  // Meal-announcement imperfections (patients forget or misjudge meals —
  // a standard APS disturbance): probability a meal is announced at all,
  // and the relative error of the announced carb estimate.
  double meal_announce_prob = 0.95;
  double carb_estimation_error = 0.15;
};

/// Run one closed-loop simulation. The patient and controller are reset from
/// `profile`; meals and faults are drawn from `rng` (deterministic).
Trace run_closed_loop(PatientModel& patient, Controller& controller,
                      const PatientProfile& profile, const SimConfig& config,
                      util::Rng& rng);

/// Identification of one of the paper's two APS testbeds.
enum class Testbed {
  kGlucosymOpenAps,    // Glucosym plant + OpenAPS controller
  kT1dBasalBolus,      // T1DS2013 plant + Basal-Bolus controller
};

std::string to_string(Testbed tb);

/// Factory: the patient plant of a testbed.
std::unique_ptr<PatientModel> make_patient(Testbed tb);
/// Factory: the controller of a testbed.
std::unique_ptr<Controller> make_controller(Testbed tb);
/// The 20 patient profiles of a testbed (deterministic in `seed`).
std::vector<PatientProfile> testbed_profiles(Testbed tb, int count,
                                             std::uint64_t seed);

}  // namespace cpsguard::sim

// Meal schedules: announced carbohydrate intake events driving the glucose
// disturbances the controllers must reject.
#pragma once

#include <vector>

#include "util/rng.h"

namespace cpsguard::sim {

struct Meal {
  int step = 0;       // control cycle at which the meal is eaten
  double carbs_g = 0.0;
};

class MealSchedule {
 public:
  MealSchedule() = default;
  explicit MealSchedule(std::vector<Meal> meals);

  /// Carbs eaten at exactly `step` (0 if none).
  [[nodiscard]] double carbs_at(int step) const;

  [[nodiscard]] const std::vector<Meal>& meals() const { return meals_; }

  /// Random day-like schedule over `trace_steps` 5-minute cycles: one meal
  /// roughly every 4-6 hours with 20-80 g carbs. Deterministic in `rng`.
  static MealSchedule random(int trace_steps, util::Rng& rng);

 private:
  std::vector<Meal> meals_;
};

}  // namespace cpsguard::sim

#include "sim/fault_injector.h"

#include <algorithm>

#include "util/contracts.h"

namespace cpsguard::sim {

std::string to_string(FaultType t) {
  switch (t) {
    case FaultType::kNone: return "none";
    case FaultType::kSensorBiasHigh: return "sensor_bias_high";
    case FaultType::kSensorBiasLow: return "sensor_bias_low";
    case FaultType::kSensorStuck: return "sensor_stuck";
    case FaultType::kSensorDrift: return "sensor_drift";
    case FaultType::kPumpOverdose: return "pump_overdose";
    case FaultType::kPumpUnderdose: return "pump_underdose";
    case FaultType::kPumpStuckMax: return "pump_stuck_max";
    case FaultType::kPumpStuckZero: return "pump_stuck_zero";
    case FaultType::kSensorDropout: return "sensor_dropout";
  }
  return "unknown";
}

FaultInjector::FaultInjector(FaultSpec spec)
    : spec_(spec),
      rng_(static_cast<std::uint64_t>(spec.start_step) * 1000003u +
               static_cast<std::uint64_t>(spec.duration_steps),
           0x44524f50u /* 'DROP' */) {
  expects(spec.start_step >= 0 && spec.duration_steps >= 0, "invalid fault window");
}

double FaultInjector::sense(double true_bg, int step) {
  if (!spec_.active(step)) return true_bg;
  switch (spec_.type) {
    case FaultType::kSensorBiasHigh:
      return true_bg + spec_.magnitude;
    case FaultType::kSensorBiasLow:
      return std::max(10.0, true_bg - spec_.magnitude);
    case FaultType::kSensorStuck:
      if (stuck_value_ < 0.0) stuck_value_ = true_bg;
      return stuck_value_;
    case FaultType::kSensorDrift: {
      if (drift_origin_ < 0) drift_origin_ = step;
      const double drift = spec_.magnitude * (step - drift_origin_ + 1);
      return std::max(10.0, true_bg + drift);
    }
    case FaultType::kSensorDropout: {
      const bool dropped = last_reading_ >= 0.0 && rng_.bernoulli(spec_.magnitude);
      if (!dropped) last_reading_ = true_bg;
      return last_reading_;
    }
    default:
      return true_bg;  // actuation faults don't touch sensing
  }
}

double FaultInjector::actuate(double commanded_rate, int step) const {
  if (!spec_.active(step)) return commanded_rate;
  switch (spec_.type) {
    case FaultType::kPumpOverdose:
      return commanded_rate * spec_.magnitude;
    case FaultType::kPumpUnderdose:
      return commanded_rate * std::clamp(spec_.magnitude, 0.0, 1.0);
    case FaultType::kPumpStuckMax:
      return spec_.magnitude;
    case FaultType::kPumpStuckZero:
      return 0.0;
    default:
      return commanded_rate;  // sensing faults don't touch actuation
  }
}

FaultSpec FaultInjector::random_spec(int trace_steps, util::Rng& rng) {
  expects(trace_steps > 3, "trace too short for fault injection");
  FaultSpec spec;
  spec.type = static_cast<FaultType>(rng.uniform_int(1, kNumFaultTypes - 1));
  spec.start_step = rng.uniform_int(2, std::max(3, trace_steps / 2));
  // 1.5 h - 8 h: insulin deprivation/overdose takes hours to push a
  // controlled loop across a hazard threshold (subcutaneous depots keep
  // acting long after the pump misbehaves).
  spec.duration_steps = rng.uniform_int(18, 96);
  switch (spec.type) {
    case FaultType::kSensorBiasHigh:
    case FaultType::kSensorBiasLow:
      spec.magnitude = rng.uniform(50.0, 150.0);
      break;
    case FaultType::kSensorDrift:
      spec.magnitude = rng.uniform(-8.0, 8.0);
      break;
    case FaultType::kPumpOverdose:
      spec.magnitude = rng.uniform(2.0, 6.0);
      break;
    case FaultType::kPumpUnderdose:
      spec.magnitude = rng.uniform(0.0, 0.5);
      break;
    case FaultType::kPumpStuckMax:
      spec.magnitude = rng.uniform(3.0, 8.0);  // U/h
      break;
    case FaultType::kSensorDropout:
      spec.magnitude = rng.uniform(0.5, 0.9);  // per-sample hold probability
      break;
    default:
      spec.magnitude = 0.0;
      break;
  }
  return spec;
}

}  // namespace cpsguard::sim

#include "sim/fault_injector.h"

#include <algorithm>
#include <limits>

#include "util/contracts.h"

namespace cpsguard::sim {

namespace {
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
}  // namespace

std::string to_string(FaultType t) {
  switch (t) {
    case FaultType::kNone: return "none";
    case FaultType::kSensorBiasHigh: return "sensor_bias_high";
    case FaultType::kSensorBiasLow: return "sensor_bias_low";
    case FaultType::kSensorStuck: return "sensor_stuck";
    case FaultType::kSensorDrift: return "sensor_drift";
    case FaultType::kPumpOverdose: return "pump_overdose";
    case FaultType::kPumpUnderdose: return "pump_underdose";
    case FaultType::kPumpStuckMax: return "pump_stuck_max";
    case FaultType::kPumpStuckZero: return "pump_stuck_zero";
    case FaultType::kSensorDropout: return "sensor_dropout";
    case FaultType::kSensorLoss: return "sensor_loss";
    case FaultType::kSensorDelay: return "sensor_delay";
    case FaultType::kSensorGarbage: return "sensor_garbage";
    case FaultType::kSensorSpike: return "sensor_spike";
  }
  return "unknown";
}

bool is_input_fault(FaultType t) {
  switch (t) {
    case FaultType::kSensorLoss:
    case FaultType::kSensorDelay:
    case FaultType::kSensorGarbage:
    case FaultType::kSensorSpike:
      return true;
    default:
      return false;
  }
}

FaultInjector::FaultInjector(FaultSpec spec)
    : FaultInjector(spec,
                    static_cast<std::uint64_t>(spec.start_step) * 1000003u +
                        static_cast<std::uint64_t>(spec.duration_steps)) {}

FaultInjector::FaultInjector(FaultSpec spec, std::uint64_t stream_seed)
    : spec_(spec), rng_(stream_seed, 0x44524f50u /* 'DROP' */) {
  expects(spec.start_step >= 0 && spec.duration_steps >= 0, "invalid fault window");
  expects(spec.rate >= 0.0 && spec.rate <= 1.0, "fault rate must be in [0,1]");
}

double FaultInjector::sense(double true_bg, int step) {
  // The delay buffer must record history even before onset so stale samples
  // are available from the first faulty cycle.
  if (spec_.type == FaultType::kSensorDelay) delay_buffer_.push_back(true_bg);
  if (!spec_.active(step)) return true_bg;
  switch (spec_.type) {
    case FaultType::kSensorBiasHigh:
      return true_bg + spec_.magnitude;
    case FaultType::kSensorBiasLow:
      return std::max(10.0, true_bg - spec_.magnitude);
    case FaultType::kSensorStuck:
      if (stuck_value_ < 0.0) stuck_value_ = true_bg;
      return stuck_value_;
    case FaultType::kSensorDrift: {
      if (drift_origin_ < 0) drift_origin_ = step;
      const double drift = spec_.magnitude * (step - drift_origin_ + 1);
      return std::max(10.0, true_bg + drift);
    }
    case FaultType::kSensorDropout: {
      const bool dropped = last_reading_ >= 0.0 && rng_.bernoulli(spec_.magnitude);
      if (!dropped) last_reading_ = true_bg;
      return last_reading_;
    }
    case FaultType::kSensorLoss:
      return rng_.bernoulli(spec_.rate) ? kNan : true_bg;
    case FaultType::kSensorDelay: {
      if (!rng_.bernoulli(spec_.rate)) return true_bg;
      const auto k = static_cast<std::size_t>(std::max(0.0, spec_.magnitude));
      const std::size_t newest = delay_buffer_.size() - 1;
      return delay_buffer_[newest >= k ? newest - k : 0];
    }
    case FaultType::kSensorGarbage: {
      if (!rng_.bernoulli(spec_.rate)) return true_bg;
      // One third of corrupted samples are NaN, the rest wild values far
      // outside the physiological range (both signs).
      const double u = rng_.uniform(0.0, 1.0);
      if (u < 1.0 / 3.0) return kNan;
      const double wild = rng_.uniform(600.0, std::max(601.0, spec_.magnitude));
      return u < 2.0 / 3.0 ? -wild : wild;
    }
    case FaultType::kSensorSpike: {
      if (!rng_.bernoulli(spec_.rate)) return true_bg;
      const double sign = rng_.bernoulli(0.5) ? 1.0 : -1.0;
      return true_bg + sign * spec_.magnitude;
    }
    default:
      return true_bg;  // actuation faults don't touch sensing
  }
}

double FaultInjector::actuate(double commanded_rate, int step) const {
  if (!spec_.active(step)) return commanded_rate;
  switch (spec_.type) {
    case FaultType::kPumpOverdose:
      return commanded_rate * spec_.magnitude;
    case FaultType::kPumpUnderdose:
      return commanded_rate * std::clamp(spec_.magnitude, 0.0, 1.0);
    case FaultType::kPumpStuckMax:
      return spec_.magnitude;
    case FaultType::kPumpStuckZero:
      return 0.0;
    default:
      return commanded_rate;  // sensing faults don't touch actuation
  }
}

FaultSpec FaultInjector::random_spec(int trace_steps, util::Rng& rng) {
  expects(trace_steps > 3, "trace too short for fault injection");
  FaultSpec spec;
  spec.type = static_cast<FaultType>(rng.uniform_int(1, kNumPlantFaultTypes - 1));
  spec.start_step = rng.uniform_int(2, std::max(3, trace_steps / 2));
  // 1.5 h - 8 h: insulin deprivation/overdose takes hours to push a
  // controlled loop across a hazard threshold (subcutaneous depots keep
  // acting long after the pump misbehaves).
  spec.duration_steps = rng.uniform_int(18, 96);
  switch (spec.type) {
    case FaultType::kSensorBiasHigh:
    case FaultType::kSensorBiasLow:
      spec.magnitude = rng.uniform(50.0, 150.0);
      break;
    case FaultType::kSensorDrift:
      spec.magnitude = rng.uniform(-8.0, 8.0);
      break;
    case FaultType::kPumpOverdose:
      spec.magnitude = rng.uniform(2.0, 6.0);
      break;
    case FaultType::kPumpUnderdose:
      spec.magnitude = rng.uniform(0.0, 0.5);
      break;
    case FaultType::kPumpStuckMax:
      spec.magnitude = rng.uniform(3.0, 8.0);  // U/h
      break;
    case FaultType::kSensorDropout:
      spec.magnitude = rng.uniform(0.5, 0.9);  // per-sample hold probability
      break;
    default:
      spec.magnitude = 0.0;
      break;
  }
  return spec;
}

FaultSpec FaultInjector::random_input_spec(int trace_steps, util::Rng& rng) {
  expects(trace_steps > 3, "trace too short for fault injection");
  FaultSpec spec;
  spec.type = static_cast<FaultType>(
      rng.uniform_int(kNumPlantFaultTypes, kNumFaultTypes - 1));
  spec.start_step = rng.uniform_int(2, std::max(3, trace_steps / 2));
  spec.duration_steps = rng.uniform_int(18, 96);
  spec.rate = rng.uniform(0.2, 0.9);
  switch (spec.type) {
    case FaultType::kSensorDelay:
      spec.magnitude = rng.uniform_int(2, 8);  // staleness in cycles
      break;
    case FaultType::kSensorGarbage:
      spec.magnitude = rng.uniform(1000.0, 10000.0);  // wild-value ceiling
      break;
    case FaultType::kSensorSpike:
      spec.magnitude = rng.uniform(80.0, 300.0);  // mg/dL burst amplitude
      break;
    default:  // kSensorLoss needs no magnitude
      spec.magnitude = 0.0;
      break;
  }
  return spec;
}

}  // namespace cpsguard::sim

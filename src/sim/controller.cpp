#include "sim/controller.h"

namespace cpsguard::sim {

ControlAction classify_action(double new_rate, double prev_rate) {
  constexpr double kStopThreshold = 0.049;  // U/h: effectively off
  constexpr double kChangeEps = 0.02;       // U/h: dead-band for "keep"
  if (new_rate <= kStopThreshold) return ControlAction::kStopInsulin;
  if (new_rate < prev_rate - kChangeEps) return ControlAction::kDecreaseInsulin;
  if (new_rate > prev_rate + kChangeEps) return ControlAction::kIncreaseInsulin;
  return ControlAction::kKeepInsulin;
}

}  // namespace cpsguard::sim

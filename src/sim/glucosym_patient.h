// Glucosym-style patient plant: Bergman minimal model of glucose-insulin
// dynamics extended with a subcutaneous insulin depot and a one-compartment
// gut. Stands in for the open-source Glucosym simulator used by the paper.
//
// States (amounts unless noted):
//   S   subcutaneous insulin depot (mU)
//   Ip  plasma insulin concentration (mU/L)
//   X   remote insulin action (1/min); may go negative to model
//       below-basal insulin (T1D patients rise when infusion stops)
//   G   plasma glucose (mg/dL)
//   Q   glucose in gut (g)
//
//   dS  = u - ka·S                      u: infusion (mU/min)
//   dIp = ka·S/Vi - ke·Ip
//   dX  = -p2·X + p3·(Ip - Ib)          Ib: basal-equilibrium insulin
//   dG  = -p1·(G - Gb) - X·G + cg·kabs·Q
//   dQ  = -kabs·Q (+ meal impulses)
#pragma once

#include "sim/patient.h"

namespace cpsguard::sim {

class GlucosymPatient : public PatientModel {
 public:
  void reset(const PatientProfile& profile, util::Rng& rng) override;
  void step(double insulin_u_per_h, double carbs_g, double dt_min) override;

  [[nodiscard]] double bg() const override { return g_; }
  [[nodiscard]] double iob() const override { return iob_.value(); }
  [[nodiscard]] double recommended_basal_u_per_h() const override {
    return profile_.basal_u_per_h;  // equilibrium holds at the schedule by construction
  }
  [[nodiscard]] PatientProfile effective_profile() const override {
    return calibrated_;
  }
  [[nodiscard]] std::string name() const override { return "Glucosym"; }

  /// Plasma insulin (mU/L) — exposed for plant-level tests.
  [[nodiscard]] double plasma_insulin() const { return ip_; }

 private:
  void integrate(double insulin_mu_per_min, double dt_min);

  PatientProfile profile_;
  PatientProfile calibrated_;  // profile with plant-calibrated ISF / CR
  double vi_l_ = 12.0;       // insulin distribution volume (L)
  double carb_gain_ = 8.0;   // mg/dL per g absorbed
  double ib_ = 0.0;          // basal-equilibrium plasma insulin (mU/L)
  double gb_ = 120.0;        // basal glucose attractor (mg/dL)

  double s_ = 0.0;
  double ip_ = 0.0;
  double x_ = 0.0;
  double g_ = 120.0;
  double q_ = 0.0;
  InsulinOnBoard iob_;
};

}  // namespace cpsguard::sim

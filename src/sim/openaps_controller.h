// OpenAPS-style controller (reference-design logic): predicts the eventual
// BG from the current reading, its 30-minute momentum and the insulin on
// board, then sets a temporary basal rate to steer toward the target.
#pragma once

#include "sim/controller.h"

namespace cpsguard::sim {

class OpenApsController : public Controller {
 public:
  void reset(const PatientProfile& profile, double basal_u_per_h) override;
  InsulinCommand decide(const ControllerInput& in) override;

  [[nodiscard]] std::string name() const override { return "OpenAPS"; }

  /// Eventual-BG prediction used by decide(); exposed for unit tests.
  [[nodiscard]] double eventual_bg(const ControllerInput& in) const;

 private:
  PatientProfile profile_;
  double basal_ = 1.0;
  double basal_iob_ = 0.0;  // equilibrium IOB at the programmed basal
  double prev_rate_ = 1.0;

  static constexpr double kMomentumMin = 20.0;  // momentum horizon (min)
  static constexpr double kMaxTempFactor = 4.0; // temp basal cap (x basal)
  static constexpr double kLowSuspendBg = 80.0; // predicted-low suspend
};

}  // namespace cpsguard::sim

#include "sim/patient.h"

#include <cmath>

#include "util/contracts.h"

namespace cpsguard::sim {

InsulinOnBoard::InsulinOnBoard(double half_life_min) {
  expects(half_life_min > 0.0, "IOB half-life must be positive");
  decay_per_min_ = std::log(2.0) / half_life_min;
}

void InsulinOnBoard::reset(double initial_units) {
  expects(initial_units >= 0.0, "IOB must be non-negative");
  units_ = initial_units;
}

void InsulinOnBoard::step(double rate_u_per_h, double dt_min) {
  expects(rate_u_per_h >= 0.0, "infusion rate must be non-negative");
  expects(dt_min > 0.0, "time step must be positive");
  const double delivered_per_min = rate_u_per_h / 60.0;
  // Exact solution of u' = -k u + r over dt.
  const double k = decay_per_min_;
  const double e = std::exp(-k * dt_min);
  units_ = units_ * e + delivered_per_min / k * (1.0 - e);
}

double InsulinOnBoard::equilibrium(double rate_u_per_h) const {
  return (rate_u_per_h / 60.0) / decay_per_min_;
}

}  // namespace cpsguard::sim

#include "sim/meal.h"

#include "util/contracts.h"

namespace cpsguard::sim {

MealSchedule::MealSchedule(std::vector<Meal> meals) : meals_(std::move(meals)) {
  for (const Meal& m : meals_) {
    expects(m.step >= 0 && m.carbs_g >= 0.0, "invalid meal");
  }
}

double MealSchedule::carbs_at(int step) const {
  double total = 0.0;
  for (const Meal& m : meals_) {
    if (m.step == step) total += m.carbs_g;
  }
  return total;
}

MealSchedule MealSchedule::random(int trace_steps, util::Rng& rng) {
  expects(trace_steps > 0, "trace length must be positive");
  std::vector<Meal> meals;
  // Meals every ~4-6 hours (48-72 cycles), starting 1-3 h into the run.
  int step = rng.uniform_int(12, 36);
  while (step < trace_steps) {
    meals.push_back({step, rng.uniform(20.0, 80.0)});
    step += rng.uniform_int(48, 72);
  }
  return MealSchedule(std::move(meals));
}

}  // namespace cpsguard::sim

#include "sim/trace.h"

#include <algorithm>
#include <sstream>

#include "util/contracts.h"

namespace cpsguard::sim {

bool in_hazard(const StepRecord& r) {
  return r.true_bg < kHypoglycemiaBg || r.true_bg > kHyperglycemiaBg;
}

bool hazard_within(const Trace& trace, int from, int to) {
  const int n = trace.length();
  from = std::max(from, 0);
  to = std::min(to, n - 1);
  for (int i = from; i <= to; ++i) {
    if (in_hazard(trace.steps[static_cast<std::size_t>(i)])) return true;
  }
  return false;
}

double time_in_range(const Trace& trace) {
  if (trace.steps.empty()) return 0.0;
  int in_range = 0;
  for (const auto& r : trace.steps) {
    if (r.true_bg >= kHypoglycemiaBg && r.true_bg <= kHyperglycemiaBg) ++in_range;
  }
  return static_cast<double>(in_range) / static_cast<double>(trace.steps.size());
}

std::string trace_to_csv(const Trace& trace) {
  std::ostringstream os;
  os << "step,sensor_bg,true_bg,iob,d_bg,d_iob,commanded_rate,actuated_rate,"
        "carbs_g,action,fault_active\n";
  for (const auto& r : trace.steps) {
    os << r.step << ',' << r.sensor_bg << ',' << r.true_bg << ',' << r.iob << ','
       << r.d_bg << ',' << r.d_iob << ',' << r.commanded_rate << ','
       << r.actuated_rate << ',' << r.carbs_g << ',' << to_string(r.action)
       << ',' << (r.fault_active ? 1 : 0) << '\n';
  }
  return os.str();
}

}  // namespace cpsguard::sim

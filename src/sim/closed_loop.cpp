#include "sim/closed_loop.h"

#include <algorithm>

#include "obs/span.h"
#include "sim/basal_bolus_controller.h"
#include "sim/glucosym_patient.h"
#include "sim/openaps_controller.h"
#include "sim/t1d_patient.h"
#include "util/contracts.h"

namespace cpsguard::sim {

Trace run_closed_loop(PatientModel& patient, Controller& controller,
                      const PatientProfile& profile, const SimConfig& config,
                      util::Rng& rng) {
  expects(config.steps > 1, "simulation needs at least two cycles");

  // Per-run (not per-step) telemetry: a run is the natural unit of work and
  // keeps the instrumentation off the 5-minute-cycle hot loop.
  static obs::Counter& runs = obs::Registry::instance().counter("sim.runs");
  static obs::Counter& steps = obs::Registry::instance().counter("sim.steps");
  static obs::Histogram& run_seconds =
      obs::Registry::instance().histogram("span.sim.run");
  runs.increment();
  steps.add(static_cast<std::uint64_t>(config.steps));
  const obs::ScopedSpan run_span("sim.run", run_seconds);

  patient.reset(profile, rng);
  controller.reset(patient.effective_profile(),
                   patient.recommended_basal_u_per_h());
  const MealSchedule meals = MealSchedule::random(config.steps, rng);

  FaultInjector faults;
  Trace trace;
  trace.patient_id = profile.id;
  if (config.inject_fault) {
    const FaultSpec spec = FaultInjector::random_spec(config.steps, rng);
    faults = FaultInjector(spec);
    trace.fault_injected = true;
    trace.fault_name = to_string(spec.type);
  }
  trace.steps.reserve(static_cast<std::size_t>(config.steps));

  // Trend estimation over a 15-minute lookback (3 cycles), matching how CGM
  // devices compute trend arrows; a single-cycle difference would be
  // dominated by sensor noise.
  constexpr int kTrendLookback = 3;
  std::vector<double> bg_history;
  std::vector<double> iob_history;

  for (int step = 0; step < config.steps; ++step) {
    StepRecord rec;
    rec.step = step;
    rec.true_bg = patient.bg();
    const double noisy_bg =
        rec.true_bg + rng.gaussian(0.0, config.sensor_noise_std);
    rec.sensor_bg = std::max(10.0, faults.sense(noisy_bg, step));
    rec.iob = patient.iob();
    const int lag = std::min<int>(kTrendLookback, static_cast<int>(bg_history.size()));
    if (lag > 0) {
      const double dt = lag * kControlPeriodMin;
      rec.d_bg = (rec.sensor_bg - bg_history[bg_history.size() - static_cast<std::size_t>(lag)]) / dt;
      rec.d_iob = (rec.iob - iob_history[iob_history.size() - static_cast<std::size_t>(lag)]) / dt;
    }
    bg_history.push_back(rec.sensor_bg);
    iob_history.push_back(rec.iob);
    rec.carbs_g = meals.carbs_at(step);
    rec.fault_active = faults.active(step);

    // Meal announcement: sometimes skipped, always an estimate.
    double announced = 0.0;
    if (rec.carbs_g > 0.0 && rng.bernoulli(config.meal_announce_prob)) {
      announced = rec.carbs_g *
                  (1.0 + rng.uniform(-config.carb_estimation_error,
                                     config.carb_estimation_error));
    }

    ControllerInput in;
    in.step = step;
    in.sensor_bg = rec.sensor_bg;
    in.d_bg = rec.d_bg;
    in.iob = rec.iob;
    in.announced_carbs = announced;
    const InsulinCommand cmd = controller.decide(in);
    rec.commanded_rate = cmd.rate_u_per_h;
    rec.action = cmd.action;
    rec.actuated_rate = std::max(0.0, faults.actuate(cmd.rate_u_per_h, step));

    patient.step(rec.actuated_rate, rec.carbs_g, kControlPeriodMin);
    trace.steps.push_back(rec);
  }
  return trace;
}

std::string to_string(Testbed tb) {
  switch (tb) {
    case Testbed::kGlucosymOpenAps: return "Glucosym(OpenAPS)";
    case Testbed::kT1dBasalBolus: return "T1DS2013(Basal-Bolus)";
  }
  return "unknown";
}

std::unique_ptr<PatientModel> make_patient(Testbed tb) {
  switch (tb) {
    case Testbed::kGlucosymOpenAps:
      return std::make_unique<GlucosymPatient>();
    case Testbed::kT1dBasalBolus:
      return std::make_unique<T1dPatient>();
  }
  ensures(false, "unreachable testbed");
  return nullptr;
}

std::unique_ptr<Controller> make_controller(Testbed tb) {
  switch (tb) {
    case Testbed::kGlucosymOpenAps:
      return std::make_unique<OpenApsController>();
    case Testbed::kT1dBasalBolus:
      return std::make_unique<BasalBolusController>();
  }
  ensures(false, "unreachable testbed");
  return nullptr;
}

std::vector<PatientProfile> testbed_profiles(Testbed tb, int count,
                                             std::uint64_t seed) {
  switch (tb) {
    case Testbed::kGlucosymOpenAps:
      return glucosym_profiles(count, seed);
    case Testbed::kT1dBasalBolus:
      return t1d_profiles(count, seed);
  }
  ensures(false, "unreachable testbed");
  return {};
}

}  // namespace cpsguard::sim

#include "sim/basal_bolus_controller.h"

#include <algorithm>

#include "util/contracts.h"

namespace cpsguard::sim {

void BasalBolusController::reset(const PatientProfile& profile, double basal_u_per_h) {
  expects(basal_u_per_h > 0.0, "basal must be positive");
  profile_ = profile;
  basal_ = basal_u_per_h;
  prev_rate_ = basal_u_per_h;
  last_correction_step_ = -kCorrectionCooldownSteps;
}

InsulinCommand BasalBolusController::decide(const ControllerInput& in) {
  double rate = basal_;

  if (in.sensor_bg < kHypoglycemiaBg) {
    rate = 0.0;  // suspend until the sensor recovers
  } else if (in.announced_carbs > 0.0) {
    double bolus_u = in.announced_carbs / profile_.carb_ratio_g_per_u;
    if (in.sensor_bg > kCorrectionThresholdBg) {
      bolus_u += (in.sensor_bg - kTargetBg) / profile_.isf_mg_dl_per_u;
    }
    rate = basal_ + bolus_u * 60.0 / kControlPeriodMin;
  } else if (in.sensor_bg > kStandaloneCorrectionBg &&
             in.step - last_correction_step_ >= kCorrectionCooldownSteps) {
    // Severe hyperglycemia: standalone correction bolus (rate-limited).
    const double bolus_u = (in.sensor_bg - kTargetBg) / profile_.isf_mg_dl_per_u;
    rate = basal_ + bolus_u * 60.0 / kControlPeriodMin;
    last_correction_step_ = in.step;
  }

  InsulinCommand cmd;
  cmd.rate_u_per_h = std::max(0.0, rate);
  cmd.action = classify_action(cmd.rate_u_per_h, prev_rate_);
  prev_rate_ = cmd.rate_u_per_h;
  return cmd;
}

}  // namespace cpsguard::sim

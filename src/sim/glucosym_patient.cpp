#include "sim/glucosym_patient.h"

#include <algorithm>
#include <cmath>

#include "sim/calibration.h"

#include "util/contracts.h"

namespace cpsguard::sim {

void GlucosymPatient::reset(const PatientProfile& profile, util::Rng& rng) {
  profile_ = profile;
  vi_l_ = 0.17 * profile.weight_kg;                 // ~12 L at 70 kg
  carb_gain_ = 1000.0 / (1.8 * profile.weight_kg * 10.0);  // mg/dL per g
  gb_ = profile.initial_bg;

  const double basal_mu_per_min = profile.basal_u_per_h * 1000.0 / 60.0;
  s_ = basal_mu_per_min / profile.ka;
  ip_ = basal_mu_per_min / (vi_l_ * profile.ke);
  ib_ = ip_;
  x_ = 0.0;
  g_ = profile.initial_bg * rng.uniform(0.95, 1.05);
  q_ = 0.0;
  iob_.reset(iob_.equilibrium(profile.basal_u_per_h));

  // Short warm-up at scheduled basal so derived states settle.
  for (int i = 0; i < 60; ++i) integrate(basal_mu_per_min, 1.0);

  calibrated_ = calibrate_profile(*this, profile_, profile.basal_u_per_h);
}

void GlucosymPatient::step(double insulin_u_per_h, double carbs_g, double dt_min) {
  expects(insulin_u_per_h >= 0.0, "infusion rate must be non-negative");
  expects(carbs_g >= 0.0, "carbs must be non-negative");
  expects(dt_min > 0.0, "dt must be positive");
  q_ += carbs_g;
  const double u_mu_per_min = insulin_u_per_h * 1000.0 / 60.0;
  // 1-minute Euler sub-steps: all time constants are >= ~10 minutes.
  double remaining = dt_min;
  while (remaining > 1e-9) {
    const double h = std::min(1.0, remaining);
    integrate(u_mu_per_min, h);
    iob_.step(insulin_u_per_h, h);
    remaining -= h;
  }
}

void GlucosymPatient::integrate(double insulin_mu_per_min, double h) {
  const auto& p = profile_;
  const double ds = insulin_mu_per_min - p.ka * s_;
  const double dip = p.ka * s_ / vi_l_ - p.ke * ip_;
  const double dx = -p.p2 * x_ + p.p3 * (ip_ - ib_);
  const double ra = carb_gain_ * p.kabs * q_;  // meal appearance (mg/dL/min)
  const double dg = -p.p1 * (g_ - gb_) - x_ * g_ + ra;
  const double dq = -p.kabs * q_;

  s_ = std::max(0.0, s_ + h * ds);
  ip_ = std::max(0.0, ip_ + h * dip);
  x_ += h * dx;
  g_ = std::clamp(g_ + h * dg, 10.0, 600.0);
  q_ = std::max(0.0, q_ + h * dq);
}

}  // namespace cpsguard::sim

// Basal-Bolus protocol controller: fixed scheduled basal, meal boluses with
// a correction component, and a low-glucose suspend. Deliberately simpler
// than OpenAPS — the paper's T1DS2013 testbed uses this "more
// straightforward" protocol.
#pragma once

#include "sim/controller.h"

namespace cpsguard::sim {

class BasalBolusController : public Controller {
 public:
  void reset(const PatientProfile& profile, double basal_u_per_h) override;
  InsulinCommand decide(const ControllerInput& in) override;

  [[nodiscard]] std::string name() const override { return "Basal-Bolus"; }

 private:
  PatientProfile profile_;
  double basal_ = 1.0;
  double prev_rate_ = 1.0;
  int last_correction_step_ = -1000;

  static constexpr double kCorrectionThresholdBg = 150.0;
  // Standalone (non-meal) corrections: protocol gives one when BG exceeds
  // this, but at most once per 2 h — the controller has no IOB accounting,
  // so back-to-back corrections would stack into an overdose.
  static constexpr double kStandaloneCorrectionBg = 250.0;
  static constexpr int kCorrectionCooldownSteps = 24;
};

}  // namespace cpsguard::sim

// Controller interface: one decision per 5-minute control cycle, based only
// on what the sensors (possibly faulty) report.
#pragma once

#include <string>

#include "sim/profile.h"
#include "sim/types.h"

namespace cpsguard::sim {

struct ControllerInput {
  int step = 0;
  double sensor_bg = 120.0;     // mg/dL as reported by the CGM
  double d_bg = 0.0;            // sensor BG trend (mg/dL per min)
  double iob = 0.0;             // insulin on board (U)
  double announced_carbs = 0.0; // carbs announced for this cycle (g)
};

class Controller {
 public:
  virtual ~Controller() = default;

  /// Bind to a patient: `basal_u_per_h` is the pump's programmed basal (the
  /// plant's equilibrium rate), the profile supplies ISF / carb ratio.
  virtual void reset(const PatientProfile& profile, double basal_u_per_h) = 0;

  virtual InsulinCommand decide(const ControllerInput& in) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Shared action classification: how a new commanded rate relates to the
/// previous one determines the discrete u1..u4 class of Table I.
ControlAction classify_action(double new_rate, double prev_rate);

}  // namespace cpsguard::sim

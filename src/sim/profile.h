// Patient profiles: the per-patient parameter sets that give each simulated
// diabetic patient distinct dynamics. The paper's testbed simulates 20
// profiles per simulator; we generate 20 deterministic synthetic profiles
// per plant with clinically plausible spreads.
#pragma once

#include <vector>

#include "util/rng.h"

namespace cpsguard::sim {

struct PatientProfile {
  int id = 0;
  double weight_kg = 70.0;
  double basal_u_per_h = 1.0;   // scheduled basal insulin
  double isf_mg_dl_per_u = 50;  // insulin sensitivity factor
  double carb_ratio_g_per_u = 10.0;
  double initial_bg = 120.0;    // mg/dL at simulation start

  // Bergman-style (Glucosym plant) parameters.
  double p1 = 0.006;     // glucose effectiveness (1/min), low in T1D
  double p2 = 0.025;     // insulin action decay (1/min)
  double p3 = 1.3e-5;    // insulin action gain (L/(mU·min²))
  double ke = 0.09;      // plasma insulin elimination (1/min)
  double ka = 0.018;     // subcutaneous absorption (1/min)
  double kabs = 0.025;   // gut carb absorption (1/min)

  // Hovorka-style (T1DS2013 plant) sensitivity scalers (1.0 = nominal).
  double sf_transport = 1.0;
  double sf_disposal = 1.0;
  double sf_egp = 1.0;
  double tmax_i_min = 55.0;  // insulin absorption time-to-peak
  double ag = 0.8;           // carb bioavailability
};

/// 20 Glucosym-style profiles, deterministic in `seed`.
std::vector<PatientProfile> glucosym_profiles(int count, std::uint64_t seed);

/// 20 UVA-Padova-style profiles with a different parameter distribution
/// (heavier patients, slower absorption — yields the distinct sensor-data
/// distribution the paper's Fig. 4 relies on).
std::vector<PatientProfile> t1d_profiles(int count, std::uint64_t seed);

}  // namespace cpsguard::sim

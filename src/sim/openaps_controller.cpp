#include "sim/openaps_controller.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace cpsguard::sim {

void OpenApsController::reset(const PatientProfile& profile, double basal_u_per_h) {
  expects(basal_u_per_h > 0.0, "basal must be positive");
  profile_ = profile;
  basal_ = basal_u_per_h;
  // Matches InsulinOnBoard's 60-minute half-life equilibrium.
  basal_iob_ = basal_u_per_h / 60.0 / (std::log(2.0) / 60.0);
  prev_rate_ = basal_u_per_h;
}

double OpenApsController::eventual_bg(const ControllerInput& in) const {
  const double iob_excess = in.iob - basal_iob_;
  return in.sensor_bg + kMomentumMin * in.d_bg -
         iob_excess * profile_.isf_mg_dl_per_u;
}

InsulinCommand OpenApsController::decide(const ControllerInput& in) {
  const double eventual = eventual_bg(in);
  double rate = basal_;

  if (in.sensor_bg < kHypoglycemiaBg || eventual < kLowSuspendBg) {
    rate = 0.0;  // low-glucose suspend
  } else if (eventual < kTargetBg - 10.0) {
    // Scale basal down toward zero as the prediction approaches hypo.
    const double frac = (eventual - kLowSuspendBg) / (kTargetBg - kLowSuspendBg);
    rate = basal_ * std::clamp(frac, 0.0, 1.0);
  } else if (eventual > kTargetBg + 10.0) {
    // Correction insulin (U) delivered as a 1-hour temp increment.
    const double correction_u = (eventual - kTargetBg) / profile_.isf_mg_dl_per_u;
    rate = std::min(basal_ + correction_u, kMaxTempFactor * basal_);
  }

  // Announced meals: bolus carbs/CR as a rate spike over this 5-min cycle.
  if (in.announced_carbs > 0.0 && in.sensor_bg > kHypoglycemiaBg) {
    const double bolus_u = in.announced_carbs / profile_.carb_ratio_g_per_u;
    rate += bolus_u * 60.0 / kControlPeriodMin;
  }

  InsulinCommand cmd;
  cmd.rate_u_per_h = rate;
  cmd.action = classify_action(rate, prev_rate_);
  prev_rate_ = rate;
  return cmd;
}

}  // namespace cpsguard::sim

// Per-feature standardization fitted on the training windows. Monitors hold
// a fitted scaler and apply it in front of the classifier; attack code uses
// the stored raw-unit standard deviations to scale Gaussian noise (the
// paper's σ values are multiples of each feature's std).
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "nn/tensor3.h"

namespace cpsguard::monitor {

class StandardScaler {
 public:
  /// Fit per-feature mean/std over all (sample, time) rows.
  void fit(const nn::Tensor3& x);

  [[nodiscard]] bool fitted() const { return !mean_.empty(); }
  [[nodiscard]] int features() const { return static_cast<int>(mean_.size()); }

  /// (x - mean) / std per feature. Features with ~zero variance pass
  /// through centered but unscaled.
  [[nodiscard]] nn::Tensor3 transform(const nn::Tensor3& x) const;
  /// In-place transform of one feature row — bit-identical to transform()
  /// on the same values (scaling is element-wise). Streaming ingest scales
  /// each record once here instead of rescaling it in every overlapping
  /// window.
  void transform_row(std::span<float> row) const;
  /// Inverse mapping (used to visualize adversarial windows in raw units).
  [[nodiscard]] nn::Tensor3 inverse_transform(const nn::Tensor3& x) const;

  [[nodiscard]] double mean_of(int feature) const;
  /// Raw-unit standard deviation of a feature in the training data.
  [[nodiscard]] double std_of(int feature) const;

  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

}  // namespace cpsguard::monitor

#include "monitor/features.h"

#include "util/contracts.h"

namespace cpsguard::monitor {

bool Features::is_sensor_feature(int f) { return f >= kBg && f <= kDiob; }

bool Features::is_command_feature(int f) {
  return f == kRate || (f >= kActionBase && f < kNumFeatures);
}

const char* Features::name(int f) {
  switch (f) {
    case kBg: return "BG";
    case kIob: return "IOB";
    case kDbg: return "dBG";
    case kDiob: return "dIOB";
    case kRate: return "RATE";
    case kActionBase + 0: return "u1_decrease";
    case kActionBase + 1: return "u2_increase";
    case kActionBase + 2: return "u3_stop";
    case kActionBase + 3: return "u4_keep";
    default: return "?";
  }
}

void fill_features(const sim::StepRecord& r, std::span<float> out) {
  expects(out.size() == static_cast<std::size_t>(Features::kNumFeatures),
          "feature row width mismatch");
  out[Features::kBg] = static_cast<float>(r.sensor_bg);
  out[Features::kIob] = static_cast<float>(r.iob);
  out[Features::kDbg] = static_cast<float>(r.d_bg);
  out[Features::kDiob] = static_cast<float>(r.d_iob);
  out[Features::kRate] = static_cast<float>(r.commanded_rate);
  for (int a = 0; a < sim::kNumActions; ++a) {
    out[static_cast<std::size_t>(Features::kActionBase + a)] =
        a == static_cast<int>(r.action) ? 1.0f : 0.0f;
  }
}

}  // namespace cpsguard::monitor

// Feature extraction: how a trace step becomes the multivariate input of the
// ML monitors. One row per 5-minute step; monitors consume windows of
// `window` consecutive rows (the paper uses 6 = 30 minutes).
//
// Layout (kNumFeatures = 9):
//   0 BG        sensor blood glucose (mg/dL)          [sensor]
//   1 IOB       insulin on board (U)                  [sensor]
//   2 dBG       BG trend (mg/dL per min)              [sensor]
//   3 dIOB      IOB trend (U per min)                 [sensor]
//   4 RATE      commanded infusion rate (U/h)         [command]
//   5..8        one-hot control action u1..u4         [command]
//
// The sensor/command split matters for the attack models: the paper's
// Gaussian noise hits only sensor data, while FGSM hits everything.
#pragma once

#include <span>

#include "sim/trace.h"

namespace cpsguard::monitor {

struct Features {
  static constexpr int kBg = 0;
  static constexpr int kIob = 1;
  static constexpr int kDbg = 2;
  static constexpr int kDiob = 3;
  static constexpr int kRate = 4;
  static constexpr int kActionBase = 5;
  static constexpr int kNumFeatures = kActionBase + sim::kNumActions;

  /// True for features derived from sensing (BG, IOB and their trends).
  static bool is_sensor_feature(int f);
  /// True for features carrying the control command (rate + action one-hot).
  static bool is_command_feature(int f);

  static const char* name(int f);
};

/// Fill one feature row from a step record. `out.size()` must be
/// kNumFeatures.
void fill_features(const sim::StepRecord& r, std::span<float> out);

}  // namespace cpsguard::monitor

// Windowed datasets: traces → [N, window, features] tensors plus ground-truth
// labels (Eq. 1), semantic-loss targets (Eq. 2's indicator), and enough
// bookkeeping to map every window back to its trace step for the
// tolerance-window metrics.
#pragma once

#include <span>
#include <vector>

#include "nn/tensor3.h"
#include "safety/rules_aps.h"
#include "sim/trace.h"

namespace cpsguard::monitor {

struct DatasetConfig {
  int window = 6;        // timesteps per sample (30 min)
  int horizon = 12;      // hazard prediction horizon T (60 min)
  double bg_target = sim::kTargetBg;
};

struct Dataset {
  nn::Tensor3 x;                 // raw (unscaled) windows [N, window, F]
  std::vector<int> labels;       // ground-truth unsafe (Eq. 1)
  std::vector<float> semantic;   // I(∨Φ_h) per window (Eq. 2)
  std::vector<int> trace_id;     // source trace per window
  std::vector<int> step_index;   // window-end step t in the source trace
  std::vector<std::vector<int>> trace_labels;  // full per-step ground truth
  DatasetConfig config;

  [[nodiscard]] int size() const { return x.batch(); }
  [[nodiscard]] int num_traces() const { return static_cast<int>(trace_labels.size()); }
  [[nodiscard]] double positive_fraction() const;

  /// Subset by window indices (labels/semantic/bookkeeping follow).
  [[nodiscard]] Dataset subset(std::span<const int> indices) const;
};

/// Aggregated window context for the semantic indicator: mean BG / dBG /
/// dIOB over the window and the action of the final step.
safety::WindowContext window_context(const nn::Tensor3& x, int sample);

/// Build a dataset from traces. Each trace contributes windows ending at
/// steps window-1 .. length-1.
Dataset build_dataset(std::span<const sim::Trace> traces,
                      const DatasetConfig& config);

}  // namespace cpsguard::monitor

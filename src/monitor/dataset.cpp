#include "monitor/dataset.h"

#include "monitor/features.h"
#include "safety/hazard.h"
#include "util/contracts.h"

namespace cpsguard::monitor {

double Dataset::positive_fraction() const {
  if (labels.empty()) return 0.0;
  std::size_t pos = 0;
  for (int y : labels) pos += static_cast<std::size_t>(y);
  return static_cast<double>(pos) / static_cast<double>(labels.size());
}

Dataset Dataset::subset(std::span<const int> indices) const {
  Dataset out;
  out.config = config;
  out.trace_labels = trace_labels;  // keep full per-trace ground truth
  out.x = x.gather(indices);
  out.labels.reserve(indices.size());
  out.semantic.reserve(indices.size());
  out.trace_id.reserve(indices.size());
  out.step_index.reserve(indices.size());
  for (int i : indices) {
    expects(i >= 0 && i < size(), "subset index out of range");
    const auto si = static_cast<std::size_t>(i);
    out.labels.push_back(labels[si]);
    out.semantic.push_back(semantic[si]);
    out.trace_id.push_back(trace_id[si]);
    out.step_index.push_back(step_index[si]);
  }
  return out;
}

safety::WindowContext window_context(const nn::Tensor3& x, int sample) {
  expects(sample >= 0 && sample < x.batch(), "sample out of range");
  safety::WindowContext ctx;
  double bg = 0.0, dbg = 0.0, diob = 0.0;
  for (int t = 0; t < x.time(); ++t) {
    const auto row = x.row(sample, t);
    bg += row[Features::kBg];
    dbg += row[Features::kDbg];
    diob += row[Features::kDiob];
  }
  const double inv_t = 1.0 / x.time();
  ctx.bg = bg * inv_t;
  ctx.d_bg = dbg * inv_t;
  ctx.d_iob = diob * inv_t;

  const auto last = x.row(sample, x.time() - 1);
  int best = 0;
  for (int a = 1; a < sim::kNumActions; ++a) {
    if (last[static_cast<std::size_t>(Features::kActionBase + a)] >
        last[static_cast<std::size_t>(Features::kActionBase + best)]) {
      best = a;
    }
  }
  ctx.action = static_cast<sim::ControlAction>(best);
  return ctx;
}

Dataset build_dataset(std::span<const sim::Trace> traces,
                      const DatasetConfig& config) {
  expects(config.window > 0 && config.horizon >= 0, "bad dataset config");

  int total_windows = 0;
  for (const auto& trace : traces) {
    total_windows += std::max(0, trace.length() - config.window + 1);
  }

  Dataset ds;
  ds.config = config;
  ds.x = nn::Tensor3(total_windows, config.window, Features::kNumFeatures);
  ds.labels.reserve(static_cast<std::size_t>(total_windows));
  ds.semantic.reserve(static_cast<std::size_t>(total_windows));
  ds.trace_id.reserve(static_cast<std::size_t>(total_windows));
  ds.step_index.reserve(static_cast<std::size_t>(total_windows));

  int sample = 0;
  for (std::size_t ti = 0; ti < traces.size(); ++ti) {
    const sim::Trace& trace = traces[ti];
    ds.trace_labels.push_back(safety::label_trace(trace, config.horizon));
    const auto& labels = ds.trace_labels.back();
    for (int end = config.window - 1; end < trace.length(); ++end) {
      for (int k = 0; k < config.window; ++k) {
        const int step = end - config.window + 1 + k;
        fill_features(trace.steps[static_cast<std::size_t>(step)],
                      ds.x.row(sample, k));
      }
      ds.labels.push_back(labels[static_cast<std::size_t>(end)]);
      const safety::WindowContext ctx = window_context(ds.x, sample);
      ds.semantic.push_back(static_cast<float>(
          safety::semantic_indicator(ctx, config.bg_target)));
      ds.trace_id.push_back(static_cast<int>(ti));
      ds.step_index.push_back(end);
      ++sample;
    }
  }
  ensures(sample == total_windows, "window count mismatch");
  return ds;
}

}  // namespace cpsguard::monitor

#include "monitor/scaler.h"

#include <cmath>
#include <cstdint>
#include <istream>
#include <ostream>

#include "util/contracts.h"
#include "util/stats.h"

namespace cpsguard::monitor {

namespace {
constexpr double kMinStd = 1e-6;
}

void StandardScaler::fit(const nn::Tensor3& x) {
  expects(x.batch() > 0 && x.features() > 0, "cannot fit scaler on empty data");
  const int f_count = x.features();
  std::vector<util::RunningStats> stats(static_cast<std::size_t>(f_count));
  for (int b = 0; b < x.batch(); ++b) {
    for (int t = 0; t < x.time(); ++t) {
      const auto row = x.row(b, t);
      for (int f = 0; f < f_count; ++f) {
        stats[static_cast<std::size_t>(f)].add(row[static_cast<std::size_t>(f)]);
      }
    }
  }
  mean_.assign(static_cast<std::size_t>(f_count), 0.0);
  std_.assign(static_cast<std::size_t>(f_count), 1.0);
  for (int f = 0; f < f_count; ++f) {
    mean_[static_cast<std::size_t>(f)] = stats[static_cast<std::size_t>(f)].mean();
    const double s = stats[static_cast<std::size_t>(f)].stddev();
    std_[static_cast<std::size_t>(f)] = s > kMinStd ? s : 1.0;
  }
}

nn::Tensor3 StandardScaler::transform(const nn::Tensor3& x) const {
  expects(fitted(), "scaler not fitted");
  expects(x.features() == features(), "feature width mismatch");
  nn::Tensor3 out = x;
  for (int b = 0; b < out.batch(); ++b) {
    for (int t = 0; t < out.time(); ++t) {
      auto row = out.row(b, t);
      for (int f = 0; f < features(); ++f) {
        const auto fi = static_cast<std::size_t>(f);
        row[fi] = static_cast<float>((row[fi] - mean_[fi]) / std_[fi]);
      }
    }
  }
  return out;
}

void StandardScaler::transform_row(std::span<float> row) const {
  expects(fitted(), "scaler not fitted");
  expects(static_cast<int>(row.size()) == features(), "feature width mismatch");
  // Exactly the transform() arithmetic (double subtract/divide, one float
  // rounding) so prescaled and raw predict paths agree bit for bit.
  for (int f = 0; f < features(); ++f) {
    const auto fi = static_cast<std::size_t>(f);
    row[fi] = static_cast<float>((row[fi] - mean_[fi]) / std_[fi]);
  }
}

nn::Tensor3 StandardScaler::inverse_transform(const nn::Tensor3& x) const {
  expects(fitted(), "scaler not fitted");
  expects(x.features() == features(), "feature width mismatch");
  nn::Tensor3 out = x;
  for (int b = 0; b < out.batch(); ++b) {
    for (int t = 0; t < out.time(); ++t) {
      auto row = out.row(b, t);
      for (int f = 0; f < features(); ++f) {
        const auto fi = static_cast<std::size_t>(f);
        row[fi] = static_cast<float>(row[fi] * std_[fi] + mean_[fi]);
      }
    }
  }
  return out;
}

double StandardScaler::mean_of(int feature) const {
  expects(feature >= 0 && feature < features(), "feature out of range");
  return mean_[static_cast<std::size_t>(feature)];
}

double StandardScaler::std_of(int feature) const {
  expects(feature >= 0 && feature < features(), "feature out of range");
  return std_[static_cast<std::size_t>(feature)];
}

void StandardScaler::save(std::ostream& os) const {
  expects(fitted(), "scaler not fitted");
  const auto n = static_cast<std::uint32_t>(mean_.size());
  os.write(reinterpret_cast<const char*>(&n), sizeof(n));
  os.write(reinterpret_cast<const char*>(mean_.data()),
           static_cast<std::streamsize>(mean_.size() * sizeof(double)));
  os.write(reinterpret_cast<const char*>(std_.data()),
           static_cast<std::streamsize>(std_.size() * sizeof(double)));
}

void StandardScaler::load(std::istream& is) {
  // Validate before trusting: a corrupt cache entry must fail the load (so
  // the caller retrains) rather than produce a silently garbage monitor.
  // The bound is far above any plausible window feature count but small
  // enough that a corrupt length can't trigger a giant allocation.
  constexpr std::uint32_t kMaxFeatures = 1u << 16;
  std::uint32_t n = 0;
  is.read(reinterpret_cast<char*>(&n), sizeof(n));
  expects(static_cast<bool>(is), "scaler stream truncated");
  expects(n > 0, "scaler stream corrupt: zero features");
  expects(n <= kMaxFeatures, "scaler stream corrupt: implausible feature count");
  std::vector<double> mean(n, 0.0);
  std::vector<double> stdev(n, 1.0);
  is.read(reinterpret_cast<char*>(mean.data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  is.read(reinterpret_cast<char*>(stdev.data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  expects(static_cast<bool>(is), "scaler stream truncated");
  for (std::uint32_t f = 0; f < n; ++f) {
    expects(std::isfinite(mean[f]), "scaler stream corrupt: non-finite mean");
    expects(std::isfinite(stdev[f]) && stdev[f] > 0.0,
            "scaler stream corrupt: std must be finite and positive");
  }
  // Commit only after full validation so a failed load leaves the scaler in
  // its previous (typically unfitted) state.
  mean_ = std::move(mean);
  std_ = std::move(stdev);
}

}  // namespace cpsguard::monitor

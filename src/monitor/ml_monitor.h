// ML safety monitors — the paper's four learned monitor variants:
//   MLP, LSTM                   (baseline, cross-entropy loss)
//   MLP-Custom, LSTM-Custom     (semantic loss, Eq. 2)
//
// A monitor bundles the classifier with its fitted input scaler and training
// configuration; it consumes *raw* feature windows and handles normalization
// internally. Attack code can reach through to the classifier and scaler to
// craft perturbations in the right space.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "monitor/dataset.h"
#include "monitor/scaler.h"
#include "nn/classifier.h"
#include "nn/serialize.h"

namespace cpsguard::monitor {

enum class Arch { kMlp, kLstm, kGru };

std::string to_string(Arch a);

struct MonitorConfig {
  Arch arch = Arch::kMlp;
  bool semantic = false;          // train with the semantic loss (Eq. 2)
  double semantic_weight = 2.0;   // the w of Eq. 2
  // Symmetric (Eq. 2) by default: the s = 0 pull is what regularizes the
  // dominant safe region and buys FGSM robustness; kUnsafeOnly preserves
  // clean accuracy but forfeits most of that gain (see the defenses
  // ablation bench).
  nn::SemanticMode semantic_mode = nn::SemanticMode::kSymmetric;
  std::vector<int> hidden;        // empty → paper defaults (256-128 / 128-64)
  int epochs = 8;
  int batch_size = 64;
  double learning_rate = 0.001;   // paper: Adam default
  std::uint64_t seed = 7;

  // Adversarial training (the defense baseline the paper's related-work
  // section contrasts the semantic loss against): starting from the second
  // epoch, a fraction of every batch is replaced with on-the-fly FGSM
  // examples against the current model.
  bool adversarial_training = false;
  double adv_epsilon = 0.1;     // L∞ budget of the training-time FGSM
  double adv_fraction = 0.5;    // fraction of each batch attacked

  /// "MLP", "LSTM", "MLP-Custom", "LSTM-Custom" — the Table III row names —
  /// with an "-Adv" suffix under adversarial training.
  [[nodiscard]] std::string display_name() const;
  /// Paper-default hidden sizes for the architecture.
  [[nodiscard]] std::vector<int> effective_hidden() const;
};

struct TrainReport {
  std::vector<double> epoch_loss;  // mean training loss per epoch
  int samples = 0;
};

class MlMonitor {
 public:
  explicit MlMonitor(MonitorConfig config);

  /// Fit scaler + classifier on the dataset's raw windows.
  TrainReport train(const Dataset& train_data);

  [[nodiscard]] bool trained() const { return clf_ != nullptr; }

  /// Predict on raw (unscaled) windows.
  std::vector<int> predict(const nn::Tensor3& raw_windows);
  nn::Matrix predict_proba(const nn::Tensor3& raw_windows);

  /// Predict on windows already in the scaled model space (attack surface,
  /// and the streaming engine's prescaled ingest path).
  std::vector<int> predict_scaled(const nn::Tensor3& scaled_windows);
  nn::Matrix predict_proba_scaled(const nn::Tensor3& scaled_windows);

  [[nodiscard]] const MonitorConfig& config() const { return config_; }
  [[nodiscard]] const StandardScaler& scaler() const;
  [[nodiscard]] nn::Classifier& classifier();

  /// Persist / restore (scaler + weights). The config must match at load.
  void save(const std::string& path) const;
  void load(const std::string& path, int window, int features);

  /// Stream forms, for embedding snapshots in checkpoint records (see
  /// core::CheckpointStore) instead of loose cache files.
  void save(std::ostream& os) const;
  void load(std::istream& is, int window, int features);

  /// Zero-copy restore: the scaler loads from a byte stream, the weights
  /// bind as non-owning views into externally owned storage (the mmap'd
  /// model artifact), copying no float. The backing buffer must outlive the
  /// monitor; a bound monitor is inference-only — training would write
  /// through the views and trips the borrowed-matrix contract. clone()
  /// deep-copies back into owned storage.
  void bind(std::istream& scaler_stream, int window, int features,
            std::span<const nn::WeightView> weights);

  /// Deep copy of a trained monitor (config + scaler + weights). Classifier
  /// forward passes mutate layer caches, so concurrent evaluation fan-outs
  /// give each task its own clone; identical weights guarantee identical
  /// predictions, keeping parallel sweeps bit-identical to serial ones.
  [[nodiscard]] std::unique_ptr<MlMonitor> clone() const;

 private:
  void build_classifier(int window, int features);

  MonitorConfig config_;
  StandardScaler scaler_;
  std::unique_ptr<nn::Classifier> clf_;
};

}  // namespace cpsguard::monitor

#include "monitor/ml_monitor.h"

#include <fstream>
#include <sstream>

#include "nn/gru_classifier.h"
#include "nn/serialize.h"
#include "obs/events.h"
#include "obs/span.h"
#include "util/contracts.h"
#include "util/logging.h"

namespace cpsguard::monitor {

std::string to_string(Arch a) {
  switch (a) {
    case Arch::kMlp: return "MLP";
    case Arch::kLstm: return "LSTM";
    case Arch::kGru: return "GRU";
  }
  return "?";
}

std::string MonitorConfig::display_name() const {
  std::string s = to_string(arch);
  if (semantic) s += "-Custom";
  if (adversarial_training) s += "-Adv";
  return s;
}

std::vector<int> MonitorConfig::effective_hidden() const {
  if (!hidden.empty()) return hidden;
  // Paper defaults: MLP 256-128; recurrent monitors 128-64.
  return arch == Arch::kMlp ? std::vector<int>{256, 128}
                            : std::vector<int>{128, 64};
}

MlMonitor::MlMonitor(MonitorConfig config) : config_(std::move(config)) {
  expects(config_.epochs > 0 && config_.batch_size > 0, "bad training config");
  expects(config_.learning_rate > 0.0, "bad learning rate");
}

void MlMonitor::build_classifier(int window, int features) {
  util::Rng rng(config_.seed, 0x4d4f4e49u /* 'MONI' */);
  const auto hidden = config_.effective_hidden();
  switch (config_.arch) {
    case Arch::kMlp:
      clf_ = std::make_unique<nn::MlpClassifier>(window, features, hidden, 2, rng);
      break;
    case Arch::kLstm:
      clf_ = std::make_unique<nn::LstmClassifier>(window, features, hidden, 2, rng);
      break;
    case Arch::kGru:
      clf_ = std::make_unique<nn::GruClassifier>(window, features, hidden, 2, rng);
      break;
  }
}

TrainReport MlMonitor::train(const Dataset& train_data) {
  expects(train_data.size() > 0, "empty training set");
  scaler_.fit(train_data.x);
  const nn::Tensor3 x = scaler_.transform(train_data.x);
  build_classifier(x.time(), x.features());

  nn::Adam adam(config_.learning_rate);
  const nn::SoftmaxCrossEntropy ce;
  const nn::SemanticLoss semantic(config_.semantic_weight, config_.semantic_mode);
  const nn::Loss& loss =
      config_.semantic ? static_cast<const nn::Loss&>(semantic) : ce;

  util::Rng shuffle_rng(config_.seed ^ 0x5f8f71e5ULL, 0x53484642u);
  TrainReport report;
  report.samples = train_data.size();

  static obs::Counter& epochs_trained =
      obs::Registry::instance().counter("nn.epochs_trained");
  static obs::Counter& batches_trained =
      obs::Registry::instance().counter("nn.batches_trained");
  static obs::Counter& samples_trained =
      obs::Registry::instance().counter("nn.samples_trained");
  static obs::Histogram& epoch_seconds =
      obs::Registry::instance().histogram("span.train.epoch");

  const int n = train_data.size();
  const int batch = config_.batch_size;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    const obs::ScopedSpan epoch_span("train.epoch", epoch_seconds);
    const std::vector<int> order = shuffle_rng.permutation(n);
    double epoch_loss = 0.0;
    int batches = 0;
    for (int start = 0; start < n; start += batch) {
      const int count = std::min(batch, n - start);
      std::vector<int> idx(order.begin() + start, order.begin() + start + count);
      const nn::Tensor3 xb = x.gather(idx);
      std::vector<int> yb(static_cast<std::size_t>(count));
      std::vector<float> sb(static_cast<std::size_t>(count));
      for (int i = 0; i < count; ++i) {
        yb[static_cast<std::size_t>(i)] =
            train_data.labels[static_cast<std::size_t>(idx[static_cast<std::size_t>(i)])];
        sb[static_cast<std::size_t>(i)] =
            train_data.semantic[static_cast<std::size_t>(idx[static_cast<std::size_t>(i)])];
      }
      const std::span<const float> sem =
          config_.semantic ? std::span<const float>(sb) : std::span<const float>();

      if (config_.adversarial_training && epoch > 0) {
        // FGSM against the current model on the leading slice of the batch
        // (inline sign-of-input-gradient — keeps monitor/ independent of
        // the attack library, which depends on this module).
        nn::Tensor3 mixed = xb;
        const int attacked = static_cast<int>(config_.adv_fraction * count);
        if (attacked > 0) {
          const nn::Tensor3 grad = clf_->loss_input_gradient(xb, yb);
          const auto eps = static_cast<float>(config_.adv_epsilon);
          for (int bi = 0; bi < attacked; ++bi) {
            for (int t = 0; t < mixed.time(); ++t) {
              auto row = mixed.row(bi, t);
              const auto g = grad.row(bi, t);
              for (std::size_t f = 0; f < row.size(); ++f) {
                row[f] += g[f] > 0.0f ? eps : (g[f] < 0.0f ? -eps : 0.0f);
              }
            }
          }
        }
        epoch_loss += clf_->train_batch(mixed, yb, sem, loss, adam);
      } else {
        epoch_loss += clf_->train_batch(xb, yb, sem, loss, adam);
      }
      ++batches;
    }
    report.epoch_loss.push_back(epoch_loss / std::max(1, batches));
    epochs_trained.increment();
    batches_trained.add(static_cast<std::uint64_t>(batches));
    samples_trained.add(static_cast<std::uint64_t>(n));
    CPSGUARD_OBS_EVENT("train.epoch", obs::f("model", config_.display_name()),
                       obs::f("epoch", epoch),
                       obs::f("loss", report.epoch_loss.back()),
                       obs::f("secs", epoch_span.elapsed_seconds()));
    util::log_debug(config_.display_name(), " epoch ", epoch, " loss ",
                    report.epoch_loss.back());
  }
  return report;
}

std::vector<int> MlMonitor::predict(const nn::Tensor3& raw_windows) {
  expects(trained(), "monitor not trained");
  return predict_scaled(scaler_.transform(raw_windows));
}

nn::Matrix MlMonitor::predict_proba(const nn::Tensor3& raw_windows) {
  expects(trained(), "monitor not trained");
  return clf_->predict_proba(scaler_.transform(raw_windows));
}

std::vector<int> MlMonitor::predict_scaled(const nn::Tensor3& scaled_windows) {
  expects(trained(), "monitor not trained");
  return nn::predict_classes(*clf_, scaled_windows);
}

nn::Matrix MlMonitor::predict_proba_scaled(const nn::Tensor3& scaled_windows) {
  expects(trained(), "monitor not trained");
  return clf_->predict_proba(scaled_windows);
}

const StandardScaler& MlMonitor::scaler() const {
  expects(scaler_.fitted(), "monitor not trained");
  return scaler_;
}

nn::Classifier& MlMonitor::classifier() {
  expects(trained(), "monitor not trained");
  return *clf_;
}

void MlMonitor::save(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open monitor file for writing: " + path);
  save(f);
}

void MlMonitor::save(std::ostream& os) const {
  expects(trained(), "monitor not trained");
  scaler_.save(os);
  const auto ps = clf_->params();
  nn::save_params(os, ps);
}

std::unique_ptr<MlMonitor> MlMonitor::clone() const {
  expects(trained(), "monitor not trained");
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  scaler_.save(buf);
  const auto src_params = clf_->params();
  nn::save_params(buf, src_params);
  auto out = std::make_unique<MlMonitor>(config_);
  out->scaler_.load(buf);
  out->build_classifier(clf_->time_steps(), clf_->features());
  const auto dst_params = out->clf_->params();
  nn::load_params(buf, dst_params);
  return out;
}

void MlMonitor::load(const std::string& path, int window, int features) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open monitor file for reading: " + path);
  load(f, window, features);
}

void MlMonitor::load(std::istream& is, int window, int features) {
  scaler_.load(is);
  build_classifier(window, features);
  const auto ps = clf_->params();
  nn::load_params(is, ps);
}

void MlMonitor::bind(std::istream& scaler_stream, int window, int features,
                     std::span<const nn::WeightView> weights) {
  scaler_.load(scaler_stream);
  build_classifier(window, features);
  const auto ps = clf_->params();
  nn::bind_params(ps, weights);
}

}  // namespace cpsguard::monitor

#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/error.h"

namespace cpsguard::nn {

namespace {

constexpr char kMagic[4] = {'C', 'P', 'S', 'G'};
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& os, std::uint32_t v) {
  unsigned char buf[4] = {static_cast<unsigned char>(v & 0xff),
                          static_cast<unsigned char>((v >> 8) & 0xff),
                          static_cast<unsigned char>((v >> 16) & 0xff),
                          static_cast<unsigned char>((v >> 24) & 0xff)};
  os.write(reinterpret_cast<const char*>(buf), 4);
}

std::uint32_t read_u32(std::istream& is) {
  unsigned char buf[4];
  is.read(reinterpret_cast<char*>(buf), 4);
  if (!is) throw CpsError("model stream truncated");
  return static_cast<std::uint32_t>(buf[0]) |
         (static_cast<std::uint32_t>(buf[1]) << 8) |
         (static_cast<std::uint32_t>(buf[2]) << 16) |
         (static_cast<std::uint32_t>(buf[3]) << 24);
}

}  // namespace

void save_params(std::ostream& os, std::span<Param* const> params) {
  os.write(kMagic, 4);
  write_u32(os, kVersion);
  write_u32(os, static_cast<std::uint32_t>(params.size()));
  for (const Param* p : params) {
    write_u32(os, static_cast<std::uint32_t>(p->name.size()));
    os.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    write_u32(os, static_cast<std::uint32_t>(p->value.rows()));
    write_u32(os, static_cast<std::uint32_t>(p->value.cols()));
    const auto data = p->value.data();
    os.write(reinterpret_cast<const char*>(data.data()),
             static_cast<std::streamsize>(data.size() * sizeof(float)));
  }
  if (!os) throw CpsError("failed writing model stream");
}

void load_params(std::istream& is, std::span<Param* const> params) {
  char magic[4];
  is.read(magic, 4);
  if (!is || std::string(magic, 4) != std::string(kMagic, 4)) {
    throw CpsError("bad model magic");
  }
  const std::uint32_t version = read_u32(is);
  if (version != kVersion) {
    throw CpsError("unsupported model version " + std::to_string(version));
  }
  const std::uint32_t count = read_u32(is);
  if (count != params.size()) {
    throw CpsError("param count mismatch: stream has " +
                   std::to_string(count) + ", model has " +
                   std::to_string(params.size()));
  }
  for (Param* p : params) {
    // Check the length against the expected name *before* allocating: a
    // corrupt stream declaring name_len = 0xffffffff must not trigger a
    // 4 GiB allocation (allocation bomb, found by fuzz target "serialize").
    const std::uint32_t name_len = read_u32(is);
    if (name_len != p->name.size()) {
      throw CpsError("param mismatch while loading '" + p->name + "'");
    }
    std::string name(name_len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(name_len));
    const std::uint32_t rows = read_u32(is);
    const std::uint32_t cols = read_u32(is);
    if (!is || name != p->name ||
        rows != static_cast<std::uint32_t>(p->value.rows()) ||
        cols != static_cast<std::uint32_t>(p->value.cols())) {
      throw CpsError("param mismatch while loading '" + p->name + "'");
    }
    auto data = p->value.data();
    is.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
    if (!is) throw CpsError("model stream truncated in '" + p->name + "'");
  }
}

void save_classifier(const std::string& path, Classifier& clf) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw CpsError("cannot open model file for writing: " + path);
  const auto ps = clf.params();
  save_params(f, ps);
}

void load_classifier(const std::string& path, Classifier& clf) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw CpsError("cannot open model file for reading: " + path);
  const auto ps = clf.params();
  load_params(f, ps);
}

void bind_params(std::span<Param* const> params,
                 std::span<const WeightView> views) {
  if (views.size() != params.size()) {
    throw CpsError("tensor count mismatch: artifact has " +
                   std::to_string(views.size()) + ", model has " +
                   std::to_string(params.size()));
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    Param* p = params[i];
    const WeightView& v = views[i];
    if (v.name != p->name ||
        v.rows != p->value.rows() || v.cols != p->value.cols()) {
      throw CpsError("tensor mismatch while binding '" + p->name +
                     "': artifact has '" + v.name + "' " +
                     std::to_string(v.rows) + "x" + std::to_string(v.cols));
    }
    p->value = Matrix::view(v.data, v.rows, v.cols);
  }
}

}  // namespace cpsguard::nn

// Fully connected layer: y = x W + b.
#pragma once

#include "nn/layer.h"
#include "util/rng.h"

namespace cpsguard::nn {

class Dense : public Layer {
 public:
  /// Glorot-uniform weights, zero bias.
  Dense(int in, int out, util::Rng& rng);

  Matrix forward(const Matrix& x, bool training) override;
  Matrix backward(const Matrix& dy) override;
  std::vector<Param*> params() override;

  [[nodiscard]] std::string name() const override { return "Dense"; }
  [[nodiscard]] int input_size() const override { return w_.value.rows(); }
  [[nodiscard]] int output_size() const override { return w_.value.cols(); }

 private:
  Param w_;
  Param b_;
  Matrix cached_input_;
};

}  // namespace cpsguard::nn

// Classification losses operating on raw logits.
//
// SoftmaxCrossEntropy is the paper's baseline loss (sparse categorical CE).
// SemanticLoss implements Eq. (2): CE plus a knowledge term
//   w * | p(unsafe) - I(window ⊨ ∨ Φ_h) |
// where the indicator I is evaluated by the safety module on the clean window
// and supplied here as a per-sample target in {0, 1}.
#pragma once

#include <span>

#include "nn/matrix.h"

namespace cpsguard::nn {

struct LossResult {
  double loss = 0.0;  // mean loss over the batch
  Matrix dlogits;     // dLoss/dlogits, already divided by batch size
};

class Loss {
 public:
  virtual ~Loss() = default;

  /// `labels` holds the ground-truth class per row of `logits`.
  /// `semantic_targets` may be empty (losses that ignore it) or hold one
  /// value in [0,1] per row.
  virtual LossResult compute(const Matrix& logits, std::span<const int> labels,
                             std::span<const float> semantic_targets) const = 0;
};

/// Numerically-stable fused softmax + sparse categorical cross-entropy.
class SoftmaxCrossEntropy : public Loss {
 public:
  LossResult compute(const Matrix& logits, std::span<const int> labels,
                     std::span<const float> semantic_targets) const override;
};

/// How the knowledge term treats windows where no rule fires.
enum class SemanticMode {
  /// Eq. (2) verbatim: penalize |p1 - s| for both s = 1 and s = 0.
  kSymmetric,
  /// One-sided: penalize only where a rule fires (s = 1). STPA rules name
  /// contexts where an action IS potentially unsafe; silence is not
  /// evidence of safety, so pulling p1 toward 0 on rule-silent windows
  /// (which include most true hazards the rules miss) injures recall.
  kUnsafeOnly,
};

/// Eq. (2): cross-entropy + w * |p_1 - s|, with the knowledge term
/// backpropagated through the softmax. Class 1 is "unsafe".
class SemanticLoss : public Loss {
 public:
  explicit SemanticLoss(double weight,
                        SemanticMode mode = SemanticMode::kSymmetric);

  LossResult compute(const Matrix& logits, std::span<const int> labels,
                     std::span<const float> semantic_targets) const override;

  [[nodiscard]] double weight() const { return weight_; }
  [[nodiscard]] SemanticMode mode() const { return mode_; }

 private:
  double weight_;
  SemanticMode mode_;
};

}  // namespace cpsguard::nn

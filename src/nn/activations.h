// Element-wise activation layers and the scalar functions they share with the
// LSTM cell.
#pragma once

#include "nn/layer.h"

namespace cpsguard::nn {

float sigmoid(float x);
float dsigmoid_from_y(float y);   // derivative given sigmoid output
float dtanh_from_y(float y);      // derivative given tanh output

class Relu : public Layer {
 public:
  explicit Relu(int size) : size_(size) {}

  Matrix forward(const Matrix& x, bool training) override;
  Matrix backward(const Matrix& dy) override;

  [[nodiscard]] std::string name() const override { return "ReLU"; }
  [[nodiscard]] int input_size() const override { return size_; }
  [[nodiscard]] int output_size() const override { return size_; }

 private:
  int size_;
  Matrix cached_output_;
};

class Tanh : public Layer {
 public:
  explicit Tanh(int size) : size_(size) {}

  Matrix forward(const Matrix& x, bool training) override;
  Matrix backward(const Matrix& dy) override;

  [[nodiscard]] std::string name() const override { return "Tanh"; }
  [[nodiscard]] int input_size() const override { return size_; }
  [[nodiscard]] int output_size() const override { return size_; }

 private:
  int size_;
  Matrix cached_output_;
};

class Sigmoid : public Layer {
 public:
  explicit Sigmoid(int size) : size_(size) {}

  Matrix forward(const Matrix& x, bool training) override;
  Matrix backward(const Matrix& dy) override;

  [[nodiscard]] std::string name() const override { return "Sigmoid"; }
  [[nodiscard]] int input_size() const override { return size_; }
  [[nodiscard]] int output_size() const override { return size_; }

 private:
  int size_;
  Matrix cached_output_;
};

}  // namespace cpsguard::nn

// Weight initialization schemes (Glorot/Xavier uniform and He normal),
// driven by an explicit Rng for reproducibility.
#pragma once

#include "nn/matrix.h"
#include "util/rng.h"

namespace cpsguard::nn {

/// Glorot/Xavier uniform: U(-limit, limit), limit = sqrt(6/(fan_in+fan_out)).
Matrix glorot_uniform(int fan_in, int fan_out, util::Rng& rng);

/// He normal: N(0, sqrt(2/fan_in)) — suited to ReLU stacks.
Matrix he_normal(int fan_in, int fan_out, util::Rng& rng);

/// Orthogonal-ish recurrent init: scaled Gaussian (practical stand-in that
/// keeps LSTM recurrence well-conditioned at our sizes).
Matrix recurrent_normal(int rows, int cols, util::Rng& rng);

}  // namespace cpsguard::nn

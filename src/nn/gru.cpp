#include "nn/gru.h"

#include <cmath>
#include <utility>

#include "nn/activations.h"
#include "nn/init.h"
#include "util/contracts.h"

namespace cpsguard::nn {

GruLayer::GruLayer(int input, int hidden, util::Rng& rng)
    : input_(input), hidden_(hidden),
      wx_("Wx", glorot_uniform(input, 3 * hidden, rng)),
      wh_("Wh", recurrent_normal(hidden, 3 * hidden, rng)),
      bx_("bx", Matrix::zeros(1, 3 * hidden)),
      bh_("bh", Matrix::zeros(1, 3 * hidden)) {
  expects(input > 0 && hidden > 0, "GRU sizes must be positive");
}

Tensor3 GruLayer::forward(const Tensor3& x) {
  expects(x.features() == input_, "GRU: input feature width mismatch");
  const int batch = x.batch();
  const int steps = x.time();
  cache_.clear();
  cache_.reserve(static_cast<std::size_t>(steps));
  cached_batch_ = batch;

  Tensor3 out(batch, steps, hidden_);
  Matrix h = Matrix::zeros(batch, hidden_);

  for (int t = 0; t < steps; ++t) {
    StepCache sc;
    sc.x = x.time_slice(t);
    sc.h_prev = h;

    Matrix a = matmul(sc.x, wx_.value);
    a.add_row_vector(std::as_const(bx_.value).row(0));
    Matrix ah = matmul(h, wh_.value);
    ah.add_row_vector(std::as_const(bh_.value).row(0));

    sc.z = Matrix(batch, hidden_);
    sc.r = Matrix(batch, hidden_);
    sc.n = Matrix(batch, hidden_);
    sc.ah_n = Matrix(batch, hidden_);
    Matrix h_next(batch, hidden_);

    for (int bi = 0; bi < batch; ++bi) {
      const auto arow = a.row(bi);
      const auto ahrow = ah.row(bi);
      const auto hrow = h.row(bi);
      auto zrow = sc.z.row(bi);
      auto rrow = sc.r.row(bi);
      auto nrow = sc.n.row(bi);
      auto qrow = sc.ah_n.row(bi);
      auto hnrow = h_next.row(bi);
      for (int j = 0; j < hidden_; ++j) {
        const auto ji = static_cast<std::size_t>(j);
        const auto jr = ji + static_cast<std::size_t>(hidden_);
        const auto jn = ji + static_cast<std::size_t>(2 * hidden_);
        zrow[ji] = sigmoid(arow[ji] + ahrow[ji]);
        rrow[ji] = sigmoid(arow[jr] + ahrow[jr]);
        qrow[ji] = ahrow[jn];
        nrow[ji] = std::tanh(arow[jn] + rrow[ji] * qrow[ji]);
        hnrow[ji] = (1.0f - zrow[ji]) * nrow[ji] + zrow[ji] * hrow[ji];
      }
    }

    h = h_next;
    out.set_time_slice(t, h);
    cache_.push_back(std::move(sc));
  }
  return out;
}

Tensor3 GruLayer::backward(const Tensor3& dh_all) {
  const int steps = static_cast<int>(cache_.size());
  expects(steps > 0, "GRU backward requires a prior forward");
  expects(dh_all.batch() == cached_batch_ && dh_all.time() == steps &&
              dh_all.features() == hidden_,
          "GRU: hidden-grad shape mismatch");
  const int batch = cached_batch_;

  Tensor3 dx(batch, steps, input_);
  Matrix dh_next = Matrix::zeros(batch, hidden_);

  for (int t = steps - 1; t >= 0; --t) {
    const StepCache& sc = cache_[static_cast<std::size_t>(t)];
    Matrix dh = dh_all.time_slice(t);
    dh.add_in_place(dh_next);

    // Pre-activation gradients for the input path (dA = [dz, dr, dn]) and
    // the hidden path (dAh = [dz, dr, dn ⊙ r]).
    Matrix da(batch, 3 * hidden_);
    Matrix dah(batch, 3 * hidden_);
    Matrix dh_prev(batch, hidden_);
    for (int bi = 0; bi < batch; ++bi) {
      const auto zrow = sc.z.row(bi);
      const auto rrow = sc.r.row(bi);
      const auto nrow = sc.n.row(bi);
      const auto qrow = sc.ah_n.row(bi);
      const auto hrow = sc.h_prev.row(bi);
      const auto dhrow = dh.row(bi);
      auto darow = da.row(bi);
      auto dahrow = dah.row(bi);
      auto dhprow = dh_prev.row(bi);
      for (int j = 0; j < hidden_; ++j) {
        const auto ji = static_cast<std::size_t>(j);
        const auto jr = ji + static_cast<std::size_t>(hidden_);
        const auto jn = ji + static_cast<std::size_t>(2 * hidden_);
        const float z = zrow[ji], r = rrow[ji], n = nrow[ji];
        const float dz_pre = dhrow[ji] * (hrow[ji] - n) * dsigmoid_from_y(z);
        const float dn_pre = dhrow[ji] * (1.0f - z) * dtanh_from_y(n);
        const float dr_pre = dn_pre * qrow[ji] * dsigmoid_from_y(r);
        darow[ji] = dz_pre;
        darow[jr] = dr_pre;
        darow[jn] = dn_pre;
        dahrow[ji] = dz_pre;
        dahrow[jr] = dr_pre;
        dahrow[jn] = dn_pre * r;
        dhprow[ji] = dhrow[ji] * z;
      }
    }

    wx_.grad.add_in_place(matmul_tn(sc.x, da));
    bx_.grad.add_in_place(da.column_sums());
    wh_.grad.add_in_place(matmul_tn(sc.h_prev, dah));
    bh_.grad.add_in_place(dah.column_sums());

    dx.set_time_slice(t, matmul_nt(da, wx_.value));
    dh_prev.add_in_place(matmul_nt(dah, wh_.value));
    dh_next = std::move(dh_prev);
  }
  return dx;
}

std::vector<Param*> GruLayer::params() { return {&wx_, &wh_, &bx_, &bh_}; }

}  // namespace cpsguard::nn

#include "nn/optimizer.h"

#include <cmath>

#include "util/contracts.h"

namespace cpsguard::nn {

Sgd::Sgd(double lr, double momentum) : lr_(lr), momentum_(momentum) {
  expects(lr > 0.0, "learning rate must be positive");
  expects(momentum >= 0.0 && momentum < 1.0, "momentum must be in [0,1)");
}

void Sgd::step(std::span<Param* const> params) {
  for (Param* p : params) {
    expects(p != nullptr, "null param");
    if (momentum_ == 0.0) {
      p->value.axpy(static_cast<float>(-lr_), p->grad);
      continue;
    }
    auto [it, inserted] = velocity_.try_emplace(
        p, Matrix::zeros(p->value.rows(), p->value.cols()));
    Matrix& v = it->second;
    v.scale(static_cast<float>(momentum_));
    v.axpy(1.0f, p->grad);
    p->value.axpy(static_cast<float>(-lr_), v);
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  expects(lr > 0.0, "learning rate must be positive");
  expects(beta1 >= 0.0 && beta1 < 1.0, "beta1 must be in [0,1)");
  expects(beta2 >= 0.0 && beta2 < 1.0, "beta2 must be in [0,1)");
  expects(eps > 0.0, "eps must be positive");
}

Adam& Adam::with_weight_decay(double decay) {
  expects(decay >= 0.0, "weight decay must be non-negative");
  weight_decay_ = decay;
  return *this;
}

Adam& Adam::with_gradient_clipping(double max_norm) {
  expects(max_norm > 0.0, "clip norm must be positive");
  clip_norm_ = max_norm;
  return *this;
}

void Adam::step(std::span<Param* const> params) {
  ++t_;
  double clip_scale = 1.0;
  if (clip_norm_ > 0.0) {
    double sq = 0.0;
    for (const Param* p : params) {
      expects(p != nullptr, "null param");
      for (const float g : p->grad.data()) sq += static_cast<double>(g) * g;
    }
    const double norm = std::sqrt(sq);
    if (norm > clip_norm_) clip_scale = clip_norm_ / norm;
  }
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (Param* p : params) {
    expects(p != nullptr, "null param");
    auto [it, inserted] = state_.try_emplace(
        p, State{Matrix::zeros(p->value.rows(), p->value.cols()),
                 Matrix::zeros(p->value.rows(), p->value.cols())});
    State& s = it->second;
    auto m = s.m.data();
    auto v = s.v.data();
    auto g = p->grad.data();
    auto w = p->value.data();
    for (std::size_t i = 0; i < g.size(); ++i) {
      const double gi = clip_scale * g[i];
      m[i] = static_cast<float>(beta1_ * m[i] + (1.0 - beta1_) * gi);
      v[i] = static_cast<float>(beta2_ * v[i] + (1.0 - beta2_) * gi * gi);
      const double m_hat = m[i] / bc1;
      const double v_hat = v[i] / bc2;
      w[i] -= static_cast<float>(lr_ * m_hat / (std::sqrt(v_hat) + eps_) +
                                 lr_ * weight_decay_ * w[i]);
    }
  }
}

}  // namespace cpsguard::nn

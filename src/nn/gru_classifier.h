// Stacked-GRU classifier with a dense softmax head — the GRU counterpart of
// LstmClassifier, built on the generic RecurrentClassifier.
#pragma once

#include "nn/gru.h"
#include "nn/recurrent_classifier.h"

namespace cpsguard::nn {

class GruClassifier : public RecurrentClassifier<GruLayer> {
 public:
  GruClassifier(int time_steps, int features, std::vector<int> hidden,
                int classes, util::Rng& rng)
      : RecurrentClassifier<GruLayer>("GRU", time_steps, features,
                                      std::move(hidden), classes, rng) {}
};

}  // namespace cpsguard::nn

#include "nn/lstm.h"

#include <cmath>
#include <utility>

#include "nn/activations.h"
#include "nn/init.h"
#include "util/contracts.h"

namespace cpsguard::nn {

LstmLayer::LstmLayer(int input, int hidden, util::Rng& rng)
    : input_(input), hidden_(hidden),
      wx_("Wx", glorot_uniform(input, 4 * hidden, rng)),
      wh_("Wh", recurrent_normal(hidden, 4 * hidden, rng)),
      b_("b", Matrix::zeros(1, 4 * hidden)) {
  expects(input > 0 && hidden > 0, "LSTM sizes must be positive");
  // Forget-gate bias starts at 1 (standard trick: remember by default).
  for (int j = hidden; j < 2 * hidden; ++j) b_.value.at(0, j) = 1.0f;
}

Tensor3 LstmLayer::forward(const Tensor3& x) {
  expects(x.features() == input_, "LSTM: input feature width mismatch");
  const int batch = x.batch();
  const int steps = x.time();
  cache_.clear();
  cache_.reserve(static_cast<std::size_t>(steps));
  cached_batch_ = batch;

  Tensor3 out(batch, steps, hidden_);
  Matrix h = Matrix::zeros(batch, hidden_);
  Matrix c = Matrix::zeros(batch, hidden_);

  for (int t = 0; t < steps; ++t) {
    StepCache sc;
    sc.x = x.time_slice(t);
    sc.h_prev = h;
    sc.c_prev = c;

    Matrix a = matmul(sc.x, wx_.value);
    a.add_in_place(matmul(h, wh_.value));
    a.add_row_vector(std::as_const(b_.value).row(0));

    sc.gates = Matrix(batch, 4 * hidden_);
    sc.c = Matrix(batch, hidden_);
    sc.tanh_c = Matrix(batch, hidden_);
    Matrix h_next(batch, hidden_);

    for (int bi = 0; bi < batch; ++bi) {
      const auto arow = a.row(bi);
      auto grow = sc.gates.row(bi);
      const auto cprev = sc.c_prev.row(bi);
      auto crow = sc.c.row(bi);
      auto tcrow = sc.tanh_c.row(bi);
      auto hrow = h_next.row(bi);
      for (int j = 0; j < hidden_; ++j) {
        const auto ji = static_cast<std::size_t>(j);
        const float ig = sigmoid(arow[ji]);
        const float fg = sigmoid(arow[ji + static_cast<std::size_t>(hidden_)]);
        const float gg = std::tanh(arow[ji + static_cast<std::size_t>(2 * hidden_)]);
        const float og = sigmoid(arow[ji + static_cast<std::size_t>(3 * hidden_)]);
        grow[ji] = ig;
        grow[ji + static_cast<std::size_t>(hidden_)] = fg;
        grow[ji + static_cast<std::size_t>(2 * hidden_)] = gg;
        grow[ji + static_cast<std::size_t>(3 * hidden_)] = og;
        crow[ji] = fg * cprev[ji] + ig * gg;
        tcrow[ji] = std::tanh(crow[ji]);
        hrow[ji] = og * tcrow[ji];
      }
    }

    h = h_next;
    c = sc.c;
    out.set_time_slice(t, h);
    cache_.push_back(std::move(sc));
  }
  return out;
}

Tensor3 LstmLayer::backward(const Tensor3& dh_all) {
  const int steps = static_cast<int>(cache_.size());
  expects(steps > 0, "LSTM backward requires a prior forward");
  expects(dh_all.batch() == cached_batch_ && dh_all.time() == steps &&
              dh_all.features() == hidden_,
          "LSTM: hidden-grad shape mismatch");
  const int batch = cached_batch_;

  Tensor3 dx(batch, steps, input_);
  Matrix dh_next = Matrix::zeros(batch, hidden_);
  Matrix dc_next = Matrix::zeros(batch, hidden_);

  for (int t = steps - 1; t >= 0; --t) {
    const StepCache& sc = cache_[static_cast<std::size_t>(t)];
    Matrix dh = dh_all.time_slice(t);
    dh.add_in_place(dh_next);

    // Pre-activation gate gradients: da = [di, df, dg, do] pre-nonlinearity.
    Matrix da(batch, 4 * hidden_);
    Matrix dc_prev(batch, hidden_);
    for (int bi = 0; bi < batch; ++bi) {
      const auto grow = sc.gates.row(bi);
      const auto cprev = sc.c_prev.row(bi);
      const auto tcrow = sc.tanh_c.row(bi);
      const auto dhrow = dh.row(bi);
      const auto dcnrow = dc_next.row(bi);
      auto darow = da.row(bi);
      auto dcprow = dc_prev.row(bi);
      for (int j = 0; j < hidden_; ++j) {
        const auto ji = static_cast<std::size_t>(j);
        const float ig = grow[ji];
        const float fg = grow[ji + static_cast<std::size_t>(hidden_)];
        const float gg = grow[ji + static_cast<std::size_t>(2 * hidden_)];
        const float og = grow[ji + static_cast<std::size_t>(3 * hidden_)];
        const float dc = dhrow[ji] * og * dtanh_from_y(tcrow[ji]) + dcnrow[ji];
        const float do_ = dhrow[ji] * tcrow[ji];
        darow[ji] = dc * gg * dsigmoid_from_y(ig);
        darow[ji + static_cast<std::size_t>(hidden_)] =
            dc * cprev[ji] * dsigmoid_from_y(fg);
        darow[ji + static_cast<std::size_t>(2 * hidden_)] =
            dc * ig * dtanh_from_y(gg);
        darow[ji + static_cast<std::size_t>(3 * hidden_)] =
            do_ * dsigmoid_from_y(og);
        dcprow[ji] = dc * fg;
      }
    }

    wx_.grad.add_in_place(matmul_tn(sc.x, da));
    wh_.grad.add_in_place(matmul_tn(sc.h_prev, da));
    b_.grad.add_in_place(da.column_sums());

    dx.set_time_slice(t, matmul_nt(da, wx_.value));
    dh_next = matmul_nt(da, wh_.value);
    dc_next = dc_prev;
  }
  return dx;
}

std::vector<Param*> LstmLayer::params() { return {&wx_, &wh_, &b_}; }

}  // namespace cpsguard::nn

#include "nn/activations.h"

#include <cmath>

#include "util/contracts.h"

namespace cpsguard::nn {

float sigmoid(float x) {
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

float dsigmoid_from_y(float y) { return y * (1.0f - y); }

float dtanh_from_y(float y) { return 1.0f - y * y; }

Matrix Relu::forward(const Matrix& x, bool /*training*/) {
  expects(x.cols() == size_, "ReLU: width mismatch");
  Matrix y = x;
  for (float& v : y.data()) v = v > 0.0f ? v : 0.0f;
  cached_output_ = y;
  return y;
}

Matrix Relu::backward(const Matrix& dy) {
  expects(dy.rows() == cached_output_.rows() && dy.cols() == cached_output_.cols(),
          "ReLU: backward shape mismatch");
  Matrix dx = dy;
  const auto y = cached_output_.data();
  auto g = dx.data();
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (y[i] <= 0.0f) g[i] = 0.0f;
  }
  return dx;
}

Matrix Tanh::forward(const Matrix& x, bool /*training*/) {
  expects(x.cols() == size_, "Tanh: width mismatch");
  Matrix y = x;
  for (float& v : y.data()) v = std::tanh(v);
  cached_output_ = y;
  return y;
}

Matrix Tanh::backward(const Matrix& dy) {
  expects(dy.rows() == cached_output_.rows() && dy.cols() == cached_output_.cols(),
          "Tanh: backward shape mismatch");
  Matrix dx = dy;
  const auto y = cached_output_.data();
  auto g = dx.data();
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= dtanh_from_y(y[i]);
  return dx;
}

Matrix Sigmoid::forward(const Matrix& x, bool /*training*/) {
  expects(x.cols() == size_, "Sigmoid: width mismatch");
  Matrix y = x;
  for (float& v : y.data()) v = sigmoid(v);
  cached_output_ = y;
  return y;
}

Matrix Sigmoid::backward(const Matrix& dy) {
  expects(dy.rows() == cached_output_.rows() && dy.cols() == cached_output_.cols(),
          "Sigmoid: backward shape mismatch");
  Matrix dx = dy;
  const auto y = cached_output_.data();
  auto g = dx.data();
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= dsigmoid_from_y(y[i]);
  return dx;
}

}  // namespace cpsguard::nn

// Layer abstraction for feed-forward networks: forward caches what backward
// needs; backward accumulates parameter gradients and returns the gradient
// with respect to the layer input (which is what FGSM ultimately consumes).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/matrix.h"

namespace cpsguard::nn {

/// A trainable parameter: value plus accumulated gradient of the same shape.
struct Param {
  Param() = default;
  Param(std::string name, Matrix value)
      : name(std::move(name)), value(std::move(value)),
        grad(Matrix::zeros(this->value.rows(), this->value.cols())) {}

  std::string name;
  Matrix value;
  Matrix grad;

  void zero_grad() { grad.set_zero(); }
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass over a [batch, in] matrix; `training` enables dropout etc.
  virtual Matrix forward(const Matrix& x, bool training) = 0;

  /// Backward pass: given dLoss/dOutput, accumulate parameter gradients and
  /// return dLoss/dInput. Must be called after forward with matching batch.
  virtual Matrix backward(const Matrix& dy) = 0;

  /// Trainable parameters (empty for stateless layers). Pointers remain valid
  /// for the lifetime of the layer.
  virtual std::vector<Param*> params() { return {}; }

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual int input_size() const = 0;
  [[nodiscard]] virtual int output_size() const = 0;
};

}  // namespace cpsguard::nn

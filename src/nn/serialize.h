// Binary serialization of model parameters. Used by the experiment cache so
// repeated bench runs skip retraining, and to ship trained monitors.
//
// Format: magic "CPSG", u32 version, u32 param count, then for each param:
// u32 name length + bytes, u32 rows, u32 cols, rows*cols little-endian f32.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "nn/classifier.h"

namespace cpsguard::nn {

void save_params(std::ostream& os, std::span<Param* const> params);

/// Load into existing params: names, order and shapes must match what was
/// saved. Throws CpsError on any mismatch or truncated stream; hostile
/// headers (e.g. a 4 GiB name length) are rejected before any allocation.
void load_params(std::istream& is, std::span<Param* const> params);

/// Convenience wrappers over file paths.
void save_classifier(const std::string& path, Classifier& clf);
void load_classifier(const std::string& path, Classifier& clf);

}  // namespace cpsguard::nn

// Binary serialization of model parameters. Used by the experiment cache so
// repeated bench runs skip retraining, and to ship trained monitors.
//
// Format: magic "CPSG", u32 version, u32 param count, then for each param:
// u32 name length + bytes, u32 rows, u32 cols, rows*cols little-endian f32.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "nn/classifier.h"

namespace cpsguard::nn {

void save_params(std::ostream& os, std::span<Param* const> params);

/// Load into existing params: names, order and shapes must match what was
/// saved. Throws CpsError on any mismatch or truncated stream; hostile
/// headers (e.g. a 4 GiB name length) are rejected before any allocation.
void load_params(std::istream& is, std::span<Param* const> params);

/// Convenience wrappers over file paths.
void save_classifier(const std::string& path, Classifier& clf);
void load_classifier(const std::string& path, Classifier& clf);

/// One named tensor living in externally owned storage (an mmap'd model
/// artifact): the zero-copy counterpart of a serialized param record.
struct WeightView {
  std::string name;
  int rows = 0;
  int cols = 0;
  const float* data = nullptr;
};

/// Rebind each param's value as a non-owning Matrix view over the matching
/// WeightView — no float is copied. Names, order and shapes must match the
/// classifier exactly; throws CpsError otherwise. The backing storage must
/// outlive the classifier; bound params are inference-only (mutation trips
/// the borrowed-matrix contract).
void bind_params(std::span<Param* const> params,
                 std::span<const WeightView> views);

}  // namespace cpsguard::nn

#include "nn/init.h"

#include <cmath>

#include "util/contracts.h"

namespace cpsguard::nn {

Matrix glorot_uniform(int fan_in, int fan_out, util::Rng& rng) {
  expects(fan_in > 0 && fan_out > 0, "fan sizes must be positive");
  const double limit = std::sqrt(6.0 / (fan_in + fan_out));
  Matrix m(fan_in, fan_out);
  for (float& v : m.data()) v = static_cast<float>(rng.uniform(-limit, limit));
  return m;
}

Matrix he_normal(int fan_in, int fan_out, util::Rng& rng) {
  expects(fan_in > 0 && fan_out > 0, "fan sizes must be positive");
  const double stddev = std::sqrt(2.0 / fan_in);
  Matrix m(fan_in, fan_out);
  for (float& v : m.data()) v = static_cast<float>(rng.gaussian(0.0, stddev));
  return m;
}

Matrix recurrent_normal(int rows, int cols, util::Rng& rng) {
  expects(rows > 0 && cols > 0, "matrix sizes must be positive");
  const double stddev = 1.0 / std::sqrt(static_cast<double>(rows));
  Matrix m(rows, cols);
  for (float& v : m.data()) v = static_cast<float>(rng.gaussian(0.0, stddev));
  return m;
}

}  // namespace cpsguard::nn

#include "nn/dense.h"

#include <utility>

#include "nn/init.h"
#include "util/contracts.h"

namespace cpsguard::nn {

Dense::Dense(int in, int out, util::Rng& rng)
    : w_("W", glorot_uniform(in, out, rng)), b_("b", Matrix::zeros(1, out)) {}

Matrix Dense::forward(const Matrix& x, bool /*training*/) {
  expects(x.cols() == input_size(), "Dense: input width mismatch");
  cached_input_ = x;
  Matrix y = matmul(x, w_.value);
  y.add_row_vector(std::as_const(b_.value).row(0));
  return y;
}

Matrix Dense::backward(const Matrix& dy) {
  expects(dy.cols() == output_size(), "Dense: output-grad width mismatch");
  expects(dy.rows() == cached_input_.rows(), "Dense: backward batch mismatch");
  w_.grad.add_in_place(matmul_tn(cached_input_, dy));
  b_.grad.add_in_place(dy.column_sums());
  return matmul_nt(dy, w_.value);
}

std::vector<Param*> Dense::params() { return {&w_, &b_}; }

}  // namespace cpsguard::nn

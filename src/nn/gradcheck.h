// Finite-difference gradient verification. Used by the property tests to pin
// the analytic backprop of every layer (including BPTT and the semantic-loss
// path) against a numeric reference.
#pragma once

#include <functional>
#include <span>

#include "nn/classifier.h"

namespace cpsguard::nn {

struct GradCheckResult {
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
};

/// Compare the analytic gradient of the mean CE loss w.r.t. the *input*
/// against central finite differences. Checks `probes` randomly chosen input
/// coordinates (or all when probes <= 0).
GradCheckResult check_input_gradient(Classifier& clf, const Tensor3& x,
                                     std::span<const int> labels,
                                     util::Rng& rng, int probes = 40,
                                     double eps = 1e-3);

/// Compare analytic parameter gradients (under `loss`) against central finite
/// differences on `probes` randomly chosen parameter coordinates.
GradCheckResult check_param_gradients(
    Classifier& clf, const Tensor3& x, std::span<const int> labels,
    std::span<const float> semantic_targets, const Loss& loss, util::Rng& rng,
    int probes = 40, double eps = 1e-3);

}  // namespace cpsguard::nn

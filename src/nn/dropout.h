// Inverted dropout: active only in training mode, identity at inference.
#pragma once

#include "nn/layer.h"
#include "util/rng.h"

namespace cpsguard::nn {

class Dropout : public Layer {
 public:
  /// `rate` is the drop probability in [0, 1).
  Dropout(int size, double rate, util::Rng rng);

  Matrix forward(const Matrix& x, bool training) override;
  Matrix backward(const Matrix& dy) override;

  [[nodiscard]] std::string name() const override { return "Dropout"; }
  [[nodiscard]] int input_size() const override { return size_; }
  [[nodiscard]] int output_size() const override { return size_; }

 private:
  int size_;
  double rate_;
  util::Rng rng_;
  Matrix mask_;
  bool mask_valid_ = false;
};

}  // namespace cpsguard::nn

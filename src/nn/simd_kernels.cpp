// Wide-SIMD GEMM kernels (see simd_kernels.h for the determinism contract).
//
// This translation unit MUST be compiled with -ffp-contract=off (enforced
// in CMakeLists.txt): the AVX targets have FMA, and a contracted fma(a,b,c)
// rounds once where mul-then-add rounds twice — bitwise divergence from the
// portable kernel. The explicit _mm512_mul_ps/_mm512_add_ps pairs and the
// flag together guarantee the compiler never fuses.
#include "nn/simd_kernels.h"

#include <cstddef>

#if defined(__x86_64__) && defined(__GNUC__)
#define CPSGUARD_SIMD_X86 1
#include <immintrin.h>
#endif

namespace cpsguard::nn {

#ifdef CPSGUARD_SIMD_X86

namespace {

// The portable 4x4 (rows x reduction) tile from matrix.cpp, reproduced
// verbatim so the target pragmas can re-vectorize the j loop at the host's
// full width. Keep in sync with matmul_rows in matrix.cpp — the
// Matmul.BitIdenticalToReferenceAcrossShapes suite pins both to the same
// ascending-p operation order.
#define CPSGUARD_DEFINE_MATMUL_ROWS_BODY(NAME)                                 \
  void NAME(const float* __restrict a, const float* __restrict b,              \
            float* __restrict c, int i0, int i1, int k, int m) {               \
    int i = i0;                                                                \
    for (; i + 4 <= i1; i += 4) {                                              \
      float* __restrict c0 = c + static_cast<std::size_t>(i + 0) * m;          \
      float* __restrict c1 = c + static_cast<std::size_t>(i + 1) * m;          \
      float* __restrict c2 = c + static_cast<std::size_t>(i + 2) * m;          \
      float* __restrict c3 = c + static_cast<std::size_t>(i + 3) * m;          \
      const float* a0 = a + static_cast<std::size_t>(i + 0) * k;               \
      const float* a1 = a + static_cast<std::size_t>(i + 1) * k;               \
      const float* a2 = a + static_cast<std::size_t>(i + 2) * k;               \
      const float* a3 = a + static_cast<std::size_t>(i + 3) * k;               \
      int p = 0;                                                               \
      for (; p + 4 <= k; p += 4) {                                             \
        const float* __restrict br0 = b + static_cast<std::size_t>(p + 0) * m; \
        const float* __restrict br1 = b + static_cast<std::size_t>(p + 1) * m; \
        const float* __restrict br2 = b + static_cast<std::size_t>(p + 2) * m; \
        const float* __restrict br3 = b + static_cast<std::size_t>(p + 3) * m; \
        for (int j = 0; j < m; ++j) {                                          \
          const float b0 = br0[j], b1 = br1[j], b2 = br2[j], b3 = br3[j];      \
          float s0 = c0[j], s1 = c1[j], s2 = c2[j], s3 = c3[j];                \
          s0 += a0[p + 0] * b0; s1 += a1[p + 0] * b0;                          \
          s2 += a2[p + 0] * b0; s3 += a3[p + 0] * b0;                          \
          s0 += a0[p + 1] * b1; s1 += a1[p + 1] * b1;                          \
          s2 += a2[p + 1] * b1; s3 += a3[p + 1] * b1;                          \
          s0 += a0[p + 2] * b2; s1 += a1[p + 2] * b2;                          \
          s2 += a2[p + 2] * b2; s3 += a3[p + 2] * b2;                          \
          s0 += a0[p + 3] * b3; s1 += a1[p + 3] * b3;                          \
          s2 += a2[p + 3] * b3; s3 += a3[p + 3] * b3;                          \
          c0[j] = s0; c1[j] = s1; c2[j] = s2; c3[j] = s3;                      \
        }                                                                      \
      }                                                                        \
      for (; p < k; ++p) {                                                     \
        const float* __restrict brow = b + static_cast<std::size_t>(p) * m;    \
        const float v0 = a0[p], v1 = a1[p], v2 = a2[p], v3 = a3[p];            \
        for (int j = 0; j < m; ++j) {                                          \
          const float bv = brow[j];                                            \
          c0[j] += v0 * bv; c1[j] += v1 * bv;                                  \
          c2[j] += v2 * bv; c3[j] += v3 * bv;                                  \
        }                                                                      \
      }                                                                        \
    }                                                                          \
    for (; i < i1; ++i) {                                                      \
      const float* arow = a + static_cast<std::size_t>(i) * k;                 \
      float* __restrict crow = c + static_cast<std::size_t>(i) * m;            \
      for (int p = 0; p < k; ++p) {                                            \
        const float av = arow[p];                                              \
        const float* __restrict brow = b + static_cast<std::size_t>(p) * m;    \
        for (int j = 0; j < m; ++j) crow[j] += av * brow[j];                   \
      }                                                                        \
    }                                                                          \
  }

#pragma GCC push_options
#pragma GCC target("avx2")
CPSGUARD_DEFINE_MATMUL_ROWS_BODY(matmul_rows_avx2)
#pragma GCC pop_options

#pragma GCC push_options
#pragma GCC target("avx512f")

// AVX-512 fallback for row/column tails: the portable body, 16-wide.
CPSGUARD_DEFINE_MATMUL_ROWS_BODY(matmul_rows_avx512_generic)

// Register-tiled main path: 4 output rows x 32 output columns (2 zmm)
// accumulate in registers across the whole reduction, so each C tile is
// read and written exactly once. Per element the sequence is still
// (((c + a[0]*b[0]) + a[1]*b[1]) + ...) in ascending p — mul then add,
// never fused — so results match the portable kernel bit for bit.
void matmul_rows_avx512(const float* __restrict a, const float* __restrict b,
                        float* __restrict c, int i0, int i1, int k, int m) {
  const int mv = m & ~31;
  int i = i0;
  for (; i + 4 <= i1; i += 4) {
    const float* a0 = a + static_cast<std::size_t>(i + 0) * k;
    const float* a1 = a + static_cast<std::size_t>(i + 1) * k;
    const float* a2 = a + static_cast<std::size_t>(i + 2) * k;
    const float* a3 = a + static_cast<std::size_t>(i + 3) * k;
    float* c0 = c + static_cast<std::size_t>(i + 0) * m;
    float* c1 = c + static_cast<std::size_t>(i + 1) * m;
    float* c2 = c + static_cast<std::size_t>(i + 2) * m;
    float* c3 = c + static_cast<std::size_t>(i + 3) * m;
    for (int j = 0; j < mv; j += 32) {
      __m512 s00 = _mm512_loadu_ps(c0 + j), s01 = _mm512_loadu_ps(c0 + j + 16);
      __m512 s10 = _mm512_loadu_ps(c1 + j), s11 = _mm512_loadu_ps(c1 + j + 16);
      __m512 s20 = _mm512_loadu_ps(c2 + j), s21 = _mm512_loadu_ps(c2 + j + 16);
      __m512 s30 = _mm512_loadu_ps(c3 + j), s31 = _mm512_loadu_ps(c3 + j + 16);
      for (int p = 0; p < k; ++p) {
        const float* brow = b + static_cast<std::size_t>(p) * m + j;
        const __m512 b0 = _mm512_loadu_ps(brow);
        const __m512 b1 = _mm512_loadu_ps(brow + 16);
        const __m512 v0 = _mm512_set1_ps(a0[p]);
        const __m512 v1 = _mm512_set1_ps(a1[p]);
        const __m512 v2 = _mm512_set1_ps(a2[p]);
        const __m512 v3 = _mm512_set1_ps(a3[p]);
        s00 = _mm512_add_ps(s00, _mm512_mul_ps(v0, b0));
        s01 = _mm512_add_ps(s01, _mm512_mul_ps(v0, b1));
        s10 = _mm512_add_ps(s10, _mm512_mul_ps(v1, b0));
        s11 = _mm512_add_ps(s11, _mm512_mul_ps(v1, b1));
        s20 = _mm512_add_ps(s20, _mm512_mul_ps(v2, b0));
        s21 = _mm512_add_ps(s21, _mm512_mul_ps(v2, b1));
        s30 = _mm512_add_ps(s30, _mm512_mul_ps(v3, b0));
        s31 = _mm512_add_ps(s31, _mm512_mul_ps(v3, b1));
      }
      _mm512_storeu_ps(c0 + j, s00); _mm512_storeu_ps(c0 + j + 16, s01);
      _mm512_storeu_ps(c1 + j, s10); _mm512_storeu_ps(c1 + j + 16, s11);
      _mm512_storeu_ps(c2 + j, s20); _mm512_storeu_ps(c2 + j + 16, s21);
      _mm512_storeu_ps(c3 + j, s30); _mm512_storeu_ps(c3 + j + 16, s31);
    }
    for (int j = mv; j < m; ++j) {  // column tail, same ascending-p order
      float s0 = c0[j], s1 = c1[j], s2 = c2[j], s3 = c3[j];
      for (int p = 0; p < k; ++p) {
        const float bv = b[static_cast<std::size_t>(p) * m + j];
        s0 += a0[p] * bv; s1 += a1[p] * bv;
        s2 += a2[p] * bv; s3 += a3[p] * bv;
      }
      c0[j] = s0; c1[j] = s1; c2[j] = s2; c3[j] = s3;
    }
  }
  if (i < i1) {  // row tail (including the batch-1 matvec case)
    matmul_rows_avx512_generic(a, b, c, i, i1, k, m);
  }
}

#pragma GCC pop_options

#undef CPSGUARD_DEFINE_MATMUL_ROWS_BODY

struct Resolved {
  MatmulRowsFn fn;
  const char* name;
};

Resolved resolve() {
  if (__builtin_cpu_supports("avx512f")) {
    return {&matmul_rows_avx512, "avx512f"};
  }
  if (__builtin_cpu_supports("avx2")) {
    return {&matmul_rows_avx2, "avx2"};
  }
  return {nullptr, "portable"};
}

const Resolved& resolved() {
  static const Resolved r = resolve();
  return r;
}

}  // namespace

MatmulRowsFn simd_matmul_rows() { return resolved().fn; }
const char* simd_kernel_name() { return resolved().name; }

#else  // !CPSGUARD_SIMD_X86

MatmulRowsFn simd_matmul_rows() { return nullptr; }
const char* simd_kernel_name() { return "portable"; }

#endif

}  // namespace cpsguard::nn

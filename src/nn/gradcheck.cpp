#include "nn/gradcheck.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace cpsguard::nn {

namespace {

void update_errors(double analytic, double numeric, GradCheckResult& out) {
  const double abs_err = std::fabs(analytic - numeric);
  out.max_abs_error = std::max(out.max_abs_error, abs_err);
  // Relative error is meaningless for near-zero gradients: float32 forward
  // passes leave ~1e-6 noise that would dominate the ratio.
  const double magnitude = std::max(std::fabs(analytic), std::fabs(numeric));
  if (magnitude > 1e-4) {
    out.max_rel_error = std::max(out.max_rel_error, abs_err / magnitude);
  }
}

double loss_at(Classifier& clf, const Tensor3& x, std::span<const int> labels,
               std::span<const float> semantic_targets, const Loss& loss) {
  clf.zero_grad();
  const double l = clf.accumulate_gradients(x, labels, semantic_targets, loss);
  clf.zero_grad();
  return l;
}

}  // namespace

GradCheckResult check_input_gradient(Classifier& clf, const Tensor3& x,
                                     std::span<const int> labels,
                                     util::Rng& rng, int probes, double eps) {
  const SoftmaxCrossEntropy ce;
  const Tensor3 analytic = clf.loss_input_gradient(x, labels);
  GradCheckResult out;

  const int total = x.size();
  expects(total > 0, "empty input");
  const int n_probes = probes <= 0 ? total : std::min(probes, total);

  Tensor3 work = x;
  auto data = work.data();
  const auto grad = analytic.data();
  for (int k = 0; k < n_probes; ++k) {
    const int idx = probes <= 0 ? k : rng.uniform_int(0, total - 1);
    const float original = data[static_cast<std::size_t>(idx)];
    data[static_cast<std::size_t>(idx)] = original + static_cast<float>(eps);
    const double lp = loss_at(clf, work, labels, {}, ce);
    data[static_cast<std::size_t>(idx)] = original - static_cast<float>(eps);
    const double lm = loss_at(clf, work, labels, {}, ce);
    data[static_cast<std::size_t>(idx)] = original;
    const double numeric = (lp - lm) / (2.0 * eps);
    update_errors(grad[static_cast<std::size_t>(idx)], numeric, out);
  }
  return out;
}

GradCheckResult check_param_gradients(
    Classifier& clf, const Tensor3& x, std::span<const int> labels,
    std::span<const float> semantic_targets, const Loss& loss, util::Rng& rng,
    int probes, double eps) {
  clf.zero_grad();
  clf.accumulate_gradients(x, labels, semantic_targets, loss);

  // Snapshot analytic gradients before the numeric probing perturbs state.
  const auto ps = clf.params();
  std::vector<Matrix> analytic;
  analytic.reserve(ps.size());
  for (const Param* p : ps) analytic.push_back(p->grad);
  clf.zero_grad();

  GradCheckResult out;
  int total = 0;
  for (const Param* p : ps) total += p->value.size();
  expects(total > 0, "model has no parameters");
  const int n_probes = probes <= 0 ? total : std::min(probes, total);

  for (int k = 0; k < n_probes; ++k) {
    int idx = probes <= 0 ? k : rng.uniform_int(0, total - 1);
    // Locate (param, offset) for the flat index.
    std::size_t pi = 0;
    while (idx >= ps[pi]->value.size()) {
      idx -= ps[pi]->value.size();
      ++pi;
    }
    auto data = ps[pi]->value.data();
    const float original = data[static_cast<std::size_t>(idx)];
    data[static_cast<std::size_t>(idx)] = original + static_cast<float>(eps);
    const double lp = loss_at(clf, x, labels, semantic_targets, loss);
    data[static_cast<std::size_t>(idx)] = original - static_cast<float>(eps);
    const double lm = loss_at(clf, x, labels, semantic_targets, loss);
    data[static_cast<std::size_t>(idx)] = original;
    const double numeric = (lp - lm) / (2.0 * eps);
    update_errors(analytic[pi].data()[static_cast<std::size_t>(idx)], numeric, out);
  }
  return out;
}

}  // namespace cpsguard::nn

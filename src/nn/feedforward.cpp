#include "nn/feedforward.h"

#include "util/contracts.h"

namespace cpsguard::nn {

void FeedForward::add(std::unique_ptr<Layer> layer) {
  expects(layer != nullptr, "layer must not be null");
  if (!layers_.empty()) {
    expects(layer->input_size() == layers_.back()->output_size(),
            "layer input size must match previous output size");
  }
  layers_.push_back(std::move(layer));
}

Matrix FeedForward::forward(const Matrix& x, bool training) {
  expects(!layers_.empty(), "network has no layers");
  Matrix h = x;
  for (auto& layer : layers_) h = layer->forward(h, training);
  return h;
}

Matrix FeedForward::backward(const Matrix& dy) {
  expects(!layers_.empty(), "network has no layers");
  Matrix g = dy;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Param*> FeedForward::params() {
  std::vector<Param*> out;
  for (auto& layer : layers_) {
    for (Param* p : layer->params()) out.push_back(p);
  }
  return out;
}

void FeedForward::zero_grad() {
  for (Param* p : params()) p->zero_grad();
}

int FeedForward::input_size() const {
  expects(!layers_.empty(), "network has no layers");
  return layers_.front()->input_size();
}

int FeedForward::output_size() const {
  expects(!layers_.empty(), "network has no layers");
  return layers_.back()->output_size();
}

}  // namespace cpsguard::nn

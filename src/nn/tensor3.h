// Rank-3 tensor [batch, time, features] — the canonical input shape for all
// monitors (MLPs flatten it, LSTMs consume it step by step).
#pragma once

#include <span>
#include <vector>

#include "nn/matrix.h"

namespace cpsguard::nn {

class Tensor3 {
 public:
  Tensor3() = default;
  Tensor3(int batch, int time, int features);

  [[nodiscard]] int batch() const { return batch_; }
  [[nodiscard]] int time() const { return time_; }
  [[nodiscard]] int features() const { return features_; }
  [[nodiscard]] int size() const { return batch_ * time_ * features_; }
  [[nodiscard]] bool empty() const { return size() == 0; }

  float& at(int b, int t, int f);
  [[nodiscard]] float at(int b, int t, int f) const;

  [[nodiscard]] std::span<float> data() { return data_; }
  [[nodiscard]] std::span<const float> data() const { return data_; }

  /// View of one (batch, time) feature row.
  [[nodiscard]] std::span<float> row(int b, int t);
  [[nodiscard]] std::span<const float> row(int b, int t) const;

  /// Copy of time slice t as a [batch, features] matrix.
  [[nodiscard]] Matrix time_slice(int t) const;
  /// Write a [batch, features] matrix back into time slice t.
  void set_time_slice(int t, const Matrix& m);

  /// Flatten to [batch, time*features] (row-major — matches memory layout).
  [[nodiscard]] Matrix flatten() const;
  /// Inverse of flatten().
  static Tensor3 from_flat(const Matrix& m, int time, int features);

  /// Select a subset of batch entries by index.
  [[nodiscard]] Tensor3 gather(std::span<const int> indices) const;

  void fill(float value);
  [[nodiscard]] float max_abs() const;

  friend bool operator==(const Tensor3& a, const Tensor3& b);

 private:
  int batch_ = 0;
  int time_ = 0;
  int features_ = 0;
  std::vector<float> data_;
};

}  // namespace cpsguard::nn

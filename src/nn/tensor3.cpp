#include "nn/tensor3.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace cpsguard::nn {

Tensor3::Tensor3(int batch, int time, int features)
    : batch_(batch), time_(time), features_(features),
      data_(static_cast<std::size_t>(batch) * static_cast<std::size_t>(time) *
                static_cast<std::size_t>(features),
            0.0f) {
  expects(batch >= 0 && time >= 0 && features >= 0,
          "tensor dimensions must be non-negative");
}

float& Tensor3::at(int b, int t, int f) {
  expects(b >= 0 && b < batch_ && t >= 0 && t < time_ && f >= 0 && f < features_,
          "tensor index out of range");
  return data_[(static_cast<std::size_t>(b) * static_cast<std::size_t>(time_) +
                static_cast<std::size_t>(t)) *
                   static_cast<std::size_t>(features_) +
               static_cast<std::size_t>(f)];
}

float Tensor3::at(int b, int t, int f) const {
  return const_cast<Tensor3*>(this)->at(b, t, f);
}

std::span<float> Tensor3::row(int b, int t) {
  expects(b >= 0 && b < batch_ && t >= 0 && t < time_, "tensor row out of range");
  return std::span<float>(data_).subspan(
      (static_cast<std::size_t>(b) * static_cast<std::size_t>(time_) +
       static_cast<std::size_t>(t)) *
          static_cast<std::size_t>(features_),
      static_cast<std::size_t>(features_));
}

std::span<const float> Tensor3::row(int b, int t) const {
  return const_cast<Tensor3*>(this)->row(b, t);
}

Matrix Tensor3::time_slice(int t) const {
  expects(t >= 0 && t < time_, "time slice out of range");
  Matrix m(batch_, features_);
  for (int b = 0; b < batch_; ++b) {
    const auto src = row(b, t);
    std::copy(src.begin(), src.end(), m.row(b).begin());
  }
  return m;
}

void Tensor3::set_time_slice(int t, const Matrix& m) {
  expects(t >= 0 && t < time_, "time slice out of range");
  expects(m.rows() == batch_ && m.cols() == features_, "slice shape mismatch");
  for (int b = 0; b < batch_; ++b) {
    const auto src = m.row(b);
    std::copy(src.begin(), src.end(), row(b, t).begin());
  }
}

Matrix Tensor3::flatten() const {
  return Matrix(batch_, time_ * features_,
                std::vector<float>(data_.begin(), data_.end()));
}

Tensor3 Tensor3::from_flat(const Matrix& m, int time, int features) {
  expects(m.cols() == time * features, "flat width must equal time*features");
  Tensor3 t(m.rows(), time, features);
  std::copy(m.data().begin(), m.data().end(), t.data_.begin());
  return t;
}

Tensor3 Tensor3::gather(std::span<const int> indices) const {
  Tensor3 out(static_cast<int>(indices.size()), time_, features_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const int b = indices[i];
    expects(b >= 0 && b < batch_, "gather index out of range");
    for (int t = 0; t < time_; ++t) {
      const auto src = row(b, t);
      std::copy(src.begin(), src.end(), out.row(static_cast<int>(i), t).begin());
    }
  }
  return out;
}

void Tensor3::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

float Tensor3::max_abs() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

bool operator==(const Tensor3& a, const Tensor3& b) {
  return a.batch_ == b.batch_ && a.time_ == b.time_ &&
         a.features_ == b.features_ && a.data_ == b.data_;
}

}  // namespace cpsguard::nn

// First-order optimizers over Param sets. State (momenta) is keyed by the
// Param pointer, which is stable for the lifetime of a model.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "nn/layer.h"

namespace cpsguard::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Apply one update using each param's accumulated grad, then the caller
  /// normally zeroes the grads.
  virtual void step(std::span<Param* const> params) = 0;
};

/// SGD with optional classical momentum.
class Sgd : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0);

  void step(std::span<Param* const> params) override;

 private:
  double lr_;
  double momentum_;
  std::unordered_map<const Param*, Matrix> velocity_;
};

/// Adam (Kingma & Ba 2015) with bias correction — the paper's optimizer,
/// default lr 0.001 as in the paper. Optional decoupled weight decay
/// (AdamW, Loshchilov & Hutter 2019) and global-norm gradient clipping.
class Adam : public Optimizer {
 public:
  explicit Adam(double lr = 0.001, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8);

  /// AdamW-style decay: w -= lr * decay * w, applied outside the moments.
  Adam& with_weight_decay(double decay);
  /// Scale all gradients down when their global L2 norm exceeds `max_norm`.
  Adam& with_gradient_clipping(double max_norm);

  void step(std::span<Param* const> params) override;

 private:
  struct State {
    Matrix m;
    Matrix v;
  };
  double lr_, beta1_, beta2_, eps_;
  double weight_decay_ = 0.0;
  double clip_norm_ = 0.0;  // 0 disables clipping
  long t_ = 0;
  std::unordered_map<const Param*, State> state_;
};

}  // namespace cpsguard::nn

// Runtime-dispatched wide-SIMD GEMM row kernels.
//
// The portable matmul kernels in matrix.cpp compile for baseline x86-64
// (SSE2) so that committed goldens and cached monitors are reproducible on
// any machine. That leaves AVX2/AVX-512 silicon idle in the batched hot
// path (training and cross-session micro-batched inference both bottom out
// in matmul). These kernels recover that width without giving up a single
// bit of determinism:
//
//  - identical operation sequence: separate mul and add per term, reduction
//    strictly in ascending p — the same per-element order as the portable
//    kernel and the reference loops in tests/test_matrix.cpp;
//  - no FMA contraction: the translation unit is compiled with
//    -ffp-contract=off, so a*b+c is never fused into a differently-rounded
//    fma(a,b,c);
//  - lane width never changes results: vectorizing over the output column
//    index j touches independent elements only.
//
// Because every path rounds identically, dispatch is invisible to tests:
// the bit-identical matmul suites and the golden CSVs pass unchanged on
// SSE2-only, AVX2, and AVX-512 hosts.
#pragma once

namespace cpsguard::nn {

/// Row-range GEMM kernel: C[i0..i1) += A[i0..i1) * B for row-major
/// A (n x k), B (k x m), C (n x m) — same contract as the portable kernel.
using MatmulRowsFn = void (*)(const float* a, const float* b, float* c,
                              int i0, int i1, int k, int m);

/// The widest bit-identical kernel this CPU supports, or nullptr when only
/// the portable baseline kernel is available. Resolved once per process.
[[nodiscard]] MatmulRowsFn simd_matmul_rows();

/// Name of the dispatched kernel for manifests and logs:
/// "avx512f", "avx2", or "portable".
[[nodiscard]] const char* simd_kernel_name();

}  // namespace cpsguard::nn

// Classifier: the common interface the monitors, attacks and evaluation code
// program against. Both architectures consume [batch, time, features]
// windows; the MLP flattens them, the LSTM consumes them sequentially.
//
// The interface deliberately exposes `loss_input_gradient` — the gradient of
// the cross-entropy loss with respect to the *input window* — because FGSM
// (Eq. 3-4 of the paper) is defined in terms of exactly that quantity.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/feedforward.h"
#include "nn/loss.h"
#include "nn/lstm.h"
#include "nn/optimizer.h"
#include "nn/tensor3.h"
#include "util/rng.h"

namespace cpsguard::nn {

class Classifier {
 public:
  virtual ~Classifier() = default;

  [[nodiscard]] virtual int num_classes() const = 0;
  [[nodiscard]] virtual int time_steps() const = 0;
  [[nodiscard]] virtual int features() const = 0;
  [[nodiscard]] virtual std::string arch() const = 0;

  /// Softmax probabilities, [batch, classes]. Inference mode (no dropout).
  virtual Matrix predict_proba(const Tensor3& x) = 0;

  /// Forward + loss + backward: accumulates parameter gradients (without
  /// applying an update) and returns the batch loss. Grad buffers are *not*
  /// zeroed first, so callers control accumulation.
  virtual double accumulate_gradients(const Tensor3& x,
                                      std::span<const int> labels,
                                      std::span<const float> semantic_targets,
                                      const Loss& loss) = 0;

  /// dCE/dx for the given labels — the raw material of FGSM. Parameter
  /// gradients are left zeroed afterwards.
  virtual Tensor3 loss_input_gradient(const Tensor3& x,
                                      std::span<const int> labels) = 0;

  [[nodiscard]] virtual std::vector<Param*> params() = 0;

  /// One optimizer step on a mini-batch. Returns the batch loss.
  double train_batch(const Tensor3& x, std::span<const int> labels,
                     std::span<const float> semantic_targets, const Loss& loss,
                     Optimizer& opt);

  void zero_grad();
};

/// Argmax over predict_proba rows.
std::vector<int> predict_classes(Classifier& clf, const Tensor3& x);

/// Multi-layer perceptron over the flattened window.
/// Paper architecture: Dense(256)-ReLU-Dense(128)-ReLU-Dense(C)-softmax.
class MlpClassifier : public Classifier {
 public:
  MlpClassifier(int time_steps, int features, std::vector<int> hidden,
                int classes, util::Rng& rng);

  [[nodiscard]] int num_classes() const override { return classes_; }
  [[nodiscard]] int time_steps() const override { return time_steps_; }
  [[nodiscard]] int features() const override { return features_; }
  [[nodiscard]] std::string arch() const override;

  Matrix predict_proba(const Tensor3& x) override;
  double accumulate_gradients(const Tensor3& x, std::span<const int> labels,
                              std::span<const float> semantic_targets,
                              const Loss& loss) override;
  Tensor3 loss_input_gradient(const Tensor3& x,
                              std::span<const int> labels) override;
  std::vector<Param*> params() override;

 private:
  int time_steps_;
  int features_;
  int classes_;
  std::vector<int> hidden_;
  FeedForward net_;
};

/// Stacked LSTM with a dense softmax head on the last hidden state.
/// Paper architecture: LSTM(128)-LSTM(64)-Dense(C)-softmax, time step 6.
class LstmClassifier : public Classifier {
 public:
  LstmClassifier(int time_steps, int features, std::vector<int> hidden,
                 int classes, util::Rng& rng);

  [[nodiscard]] int num_classes() const override { return classes_; }
  [[nodiscard]] int time_steps() const override { return time_steps_; }
  [[nodiscard]] int features() const override { return features_; }
  [[nodiscard]] std::string arch() const override;

  Matrix predict_proba(const Tensor3& x) override;
  double accumulate_gradients(const Tensor3& x, std::span<const int> labels,
                              std::span<const float> semantic_targets,
                              const Loss& loss) override;
  Tensor3 loss_input_gradient(const Tensor3& x,
                              std::span<const int> labels) override;
  std::vector<Param*> params() override;

 private:
  /// Forward through the LSTM stack; returns the last hidden state and keeps
  /// per-layer caches for backward.
  Matrix encode(const Tensor3& x);
  /// Backward from a gradient on the last hidden state to the input.
  Tensor3 decode_gradient(const Matrix& dh_last);

  int time_steps_;
  int features_;
  int classes_;
  std::vector<int> hidden_;
  std::vector<std::unique_ptr<LstmLayer>> lstms_;
  FeedForward head_;
};

}  // namespace cpsguard::nn

// Sequential container of feed-forward layers.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.h"

namespace cpsguard::nn {

class FeedForward {
 public:
  FeedForward() = default;

  /// Append a layer; its input size must match the current output size.
  void add(std::unique_ptr<Layer> layer);

  /// Forward through all layers.
  Matrix forward(const Matrix& x, bool training);

  /// Backward through all layers; returns dLoss/dInput.
  Matrix backward(const Matrix& dy);

  [[nodiscard]] std::vector<Param*> params();
  void zero_grad();

  [[nodiscard]] int input_size() const;
  [[nodiscard]] int output_size() const;
  [[nodiscard]] std::size_t layer_count() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace cpsguard::nn

// Dense row-major float matrix: the numeric workhorse of the NN substrate.
// Deliberately small — just the operations the layers need — with contract
// checks on every shape-sensitive operation.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace cpsguard::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols);
  Matrix(int rows, int cols, std::vector<float> data);

  static Matrix zeros(int rows, int cols);
  static Matrix full(int rows, int cols, float value);
  /// Build from an initializer-style nested vector (tests, fixtures).
  static Matrix from_rows(const std::vector<std::vector<float>>& rows);

  /// Non-owning read-only view over external row-major storage — the
  /// zero-copy path for weights living in an mmap'd model artifact. The
  /// backing buffer must outlive every copy of the view (copies alias the
  /// same storage). All const reads work; any mutating accessor trips a
  /// contract violation, so a view-bound classifier is inference-only.
  static Matrix view(const float* data, int rows, int cols);
  /// True when this matrix aliases external storage instead of owning it.
  [[nodiscard]] bool borrowed() const { return view_ != nullptr; }

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] int size() const { return rows_ * cols_; }
  [[nodiscard]] bool empty() const { return size() == 0; }

  float& at(int r, int c);
  [[nodiscard]] float at(int r, int c) const;

  [[nodiscard]] std::span<float> data();
  [[nodiscard]] std::span<const float> data() const {
    return {cptr(), static_cast<std::size_t>(size())};
  }

  [[nodiscard]] std::span<float> row(int r);
  [[nodiscard]] std::span<const float> row(int r) const;

  void fill(float value);
  void set_zero() { fill(0.0f); }

  /// this += other (same shape).
  void add_in_place(const Matrix& other);
  /// this += alpha * other (same shape).
  void axpy(float alpha, const Matrix& other);
  /// this *= alpha.
  void scale(float alpha);
  /// Element-wise product: this *= other (same shape).
  void hadamard_in_place(const Matrix& other);

  /// Add a row vector (1 x cols or plain span) to every row — bias add.
  void add_row_vector(std::span<const float> v);

  [[nodiscard]] Matrix transpose() const;

  /// Sum over rows → 1 x cols (bias gradient).
  [[nodiscard]] Matrix column_sums() const;

  [[nodiscard]] float max_abs() const;
  [[nodiscard]] float sum() const;

  [[nodiscard]] std::string shape_str() const;

  /// Shape + element-wise content equality; a view compares equal to an
  /// owned matrix holding the same bits.
  friend bool operator==(const Matrix& a, const Matrix& b);

 private:
  [[nodiscard]] const float* cptr() const {
    return view_ != nullptr ? view_ : data_.data();
  }
  [[nodiscard]] float* mptr();

  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> data_;
  const float* view_ = nullptr;  // non-null ⇒ borrowed, data_ empty
};

/// C = A * B. Blocked/unrolled kernel; large products shard output rows
/// across the shared thread pool. Deterministic: per-element accumulation
/// order is fixed (ascending reduction index), so results are bit-identical
/// regardless of thread count. NaN/Inf in either operand propagate per IEEE.
Matrix matmul(const Matrix& a, const Matrix& b);
/// C = A^T * B (avoids materializing the transpose). Same kernel contract
/// as matmul.
Matrix matmul_tn(const Matrix& a, const Matrix& b);
/// C = A * B^T. Per-element double-precision dot products in ascending
/// reduction order; same determinism contract as matmul.
Matrix matmul_nt(const Matrix& a, const Matrix& b);

/// Element-wise c = a - b.
Matrix subtract(const Matrix& a, const Matrix& b);
/// Element-wise c = a + b.
Matrix add(const Matrix& a, const Matrix& b);
/// Element-wise c = a ⊙ b.
Matrix hadamard(const Matrix& a, const Matrix& b);

/// Row-wise softmax (numerically stabilized with the row max).
Matrix softmax_rows(const Matrix& logits);

}  // namespace cpsguard::nn

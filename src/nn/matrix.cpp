#include "nn/matrix.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "nn/simd_kernels.h"
#include "util/contracts.h"
#include "util/thread_pool.h"

namespace cpsguard::nn {

Matrix::Matrix(int rows, int cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), 0.0f) {
  expects(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
}

Matrix::Matrix(int rows, int cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  expects(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
  expects(data_.size() == static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
          "matrix data size must match dimensions");
}

Matrix Matrix::view(const float* data, int rows, int cols) {
  expects(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
  expects(data != nullptr || rows * cols == 0,
          "matrix view needs backing storage");
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.view_ = data;
  return m;
}

float* Matrix::mptr() {
  expects(!borrowed(), "mutating access to a borrowed (view) matrix");
  return data_.data();
}

Matrix Matrix::zeros(int rows, int cols) { return Matrix(rows, cols); }

Matrix Matrix::full(int rows, int cols, float value) {
  Matrix m(rows, cols);
  m.fill(value);
  return m;
}

Matrix Matrix::from_rows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return {};
  const int r = static_cast<int>(rows.size());
  const int c = static_cast<int>(rows.front().size());
  Matrix m(r, c);
  for (int i = 0; i < r; ++i) {
    expects(static_cast<int>(rows[static_cast<std::size_t>(i)].size()) == c,
            "ragged rows in from_rows");
    std::copy(rows[static_cast<std::size_t>(i)].begin(),
              rows[static_cast<std::size_t>(i)].end(), m.row(i).begin());
  }
  return m;
}

float& Matrix::at(int r, int c) {
  expects(r >= 0 && r < rows_ && c >= 0 && c < cols_, "matrix index out of range");
  return mptr()[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
                static_cast<std::size_t>(c)];
}

float Matrix::at(int r, int c) const {
  expects(r >= 0 && r < rows_ && c >= 0 && c < cols_, "matrix index out of range");
  return cptr()[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
                static_cast<std::size_t>(c)];
}

std::span<float> Matrix::data() {
  return {mptr(), static_cast<std::size_t>(size())};
}

std::span<float> Matrix::row(int r) {
  expects(r >= 0 && r < rows_, "row index out of range");
  return std::span<float>(mptr(), static_cast<std::size_t>(size()))
      .subspan(static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_),
               static_cast<std::size_t>(cols_));
}

std::span<const float> Matrix::row(int r) const {
  expects(r >= 0 && r < rows_, "row index out of range");
  return data().subspan(
      static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_),
      static_cast<std::size_t>(cols_));
}

void Matrix::fill(float value) {
  auto d = data();
  std::fill(d.begin(), d.end(), value);
}

void Matrix::add_in_place(const Matrix& other) { axpy(1.0f, other); }

void Matrix::axpy(float alpha, const Matrix& other) {
  expects(rows_ == other.rows_ && cols_ == other.cols_, "axpy shape mismatch");
  auto dst = data();
  const auto src = other.data();
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += alpha * src[i];
}

void Matrix::scale(float alpha) {
  for (float& v : data()) v *= alpha;
}

void Matrix::hadamard_in_place(const Matrix& other) {
  expects(rows_ == other.rows_ && cols_ == other.cols_, "hadamard shape mismatch");
  auto dst = data();
  const auto src = other.data();
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] *= src[i];
}

void Matrix::add_row_vector(std::span<const float> v) {
  expects(static_cast<int>(v.size()) == cols_, "row-vector length must equal cols");
  for (int r = 0; r < rows_; ++r) {
    auto dst = row(r);
    for (int c = 0; c < cols_; ++c) dst[static_cast<std::size_t>(c)] += v[static_cast<std::size_t>(c)];
  }
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  }
  return t;
}

Matrix Matrix::column_sums() const {
  Matrix s(1, cols_);
  for (int r = 0; r < rows_; ++r) {
    const auto src = row(r);
    auto dst = s.row(0);
    for (int c = 0; c < cols_; ++c) dst[static_cast<std::size_t>(c)] += src[static_cast<std::size_t>(c)];
  }
  return s;
}

float Matrix::max_abs() const {
  float m = 0.0f;
  for (float v : data()) m = std::max(m, std::fabs(v));
  return m;
}

float Matrix::sum() const {
  double s = 0.0;
  for (float v : data()) s += v;
  return static_cast<float>(s);
}

std::string Matrix::shape_str() const {
  return "[" + std::to_string(rows_) + "x" + std::to_string(cols_) + "]";
}

bool operator==(const Matrix& a, const Matrix& b) {
  if (a.rows_ != b.rows_ || a.cols_ != b.cols_) return false;
  const auto ad = a.data();
  const auto bd = b.data();
  return std::equal(ad.begin(), ad.end(), bd.begin());
}

// ---------------------------------------------------------------------------
// Matmul kernels.
//
// All three products use the same design: unroll-friendly register tiles
// (4 output rows x 4 reduction steps) that a baseline-x86-64 compiler
// autovectorizes without -march flags, with every per-element accumulation
// kept in strictly ascending reduction order. That ordering — plus doing
// all arithmetic in float with no FMA contraction at the default target —
// makes the optimized kernels *bit-identical* to the naive triple loops
// they replaced, so cached monitors and figure CSVs are unaffected.
//
// Unlike the previous kernels there is no `a == 0.0f` skip: the skip both
// defeated vectorization (a branch per reduction step) and silently broke
// IEEE semantics by suppressing NaN/Inf propagation from the other operand
// — which matters now that fault injection (kSensorLoss) can legitimately
// push NaN through the monitor path.
//
// Large products additionally shard their output rows across the shared
// thread pool. Rows are computed independently and each element's reduction
// order never depends on the shard split, so parallel results stay
// bit-identical to serial ones.

namespace {

// Parallelize only when the arithmetic dwarfs the fan-out overhead and the
// machine actually has cores to use. ~4M flops is ~0.1 ms of kernel time.
constexpr double kParallelFlopThreshold = 4.0e6;
constexpr int kRowsPerShard = 16;

bool worth_parallelizing(int n, int k, int m) {
  return 2.0 * n * k * m >= kParallelFlopThreshold && n >= 2 * kRowsPerShard &&
         std::thread::hardware_concurrency() > 1;
}

// Run fn over [0, rows) in contiguous row blocks, in parallel when the
// product is large enough (fn(r0, r1) computes output rows [r0, r1)).
template <typename Fn>
void for_row_blocks(int rows, int k, int m, Fn&& fn) {
  if (!worth_parallelizing(rows, k, m) || util::in_parallel_region()) {
    fn(0, rows);
    return;
  }
  const int blocks = (rows + kRowsPerShard - 1) / kRowsPerShard;
  util::parallel_for(blocks, [&](int blk) {
    const int r0 = blk * kRowsPerShard;
    fn(r0, std::min(rows, r0 + kRowsPerShard));
  });
}

// C[i0..i1) += A[i0..i1) * B for row-major A (n x k), B (k x m), C (n x m).
// 4x4 (rows x reduction) tile; the j loop vectorizes. Per-element order:
// ((((c + t_p) + t_{p+1}) + ...) with p ascending — matches the naive loop.
void matmul_rows(const float* __restrict a, const float* __restrict b,
                 float* __restrict c, int i0, int i1, int k, int m) {
  int i = i0;
  for (; i + 4 <= i1; i += 4) {
    float* __restrict c0 = c + static_cast<std::size_t>(i + 0) * m;
    float* __restrict c1 = c + static_cast<std::size_t>(i + 1) * m;
    float* __restrict c2 = c + static_cast<std::size_t>(i + 2) * m;
    float* __restrict c3 = c + static_cast<std::size_t>(i + 3) * m;
    const float* a0 = a + static_cast<std::size_t>(i + 0) * k;
    const float* a1 = a + static_cast<std::size_t>(i + 1) * k;
    const float* a2 = a + static_cast<std::size_t>(i + 2) * k;
    const float* a3 = a + static_cast<std::size_t>(i + 3) * k;
    int p = 0;
    for (; p + 4 <= k; p += 4) {
      const float* __restrict br0 = b + static_cast<std::size_t>(p + 0) * m;
      const float* __restrict br1 = b + static_cast<std::size_t>(p + 1) * m;
      const float* __restrict br2 = b + static_cast<std::size_t>(p + 2) * m;
      const float* __restrict br3 = b + static_cast<std::size_t>(p + 3) * m;
      for (int j = 0; j < m; ++j) {
        const float b0 = br0[j], b1 = br1[j], b2 = br2[j], b3 = br3[j];
        float s0 = c0[j], s1 = c1[j], s2 = c2[j], s3 = c3[j];
        s0 += a0[p + 0] * b0; s1 += a1[p + 0] * b0; s2 += a2[p + 0] * b0; s3 += a3[p + 0] * b0;
        s0 += a0[p + 1] * b1; s1 += a1[p + 1] * b1; s2 += a2[p + 1] * b1; s3 += a3[p + 1] * b1;
        s0 += a0[p + 2] * b2; s1 += a1[p + 2] * b2; s2 += a2[p + 2] * b2; s3 += a3[p + 2] * b2;
        s0 += a0[p + 3] * b3; s1 += a1[p + 3] * b3; s2 += a2[p + 3] * b3; s3 += a3[p + 3] * b3;
        c0[j] = s0; c1[j] = s1; c2[j] = s2; c3[j] = s3;
      }
    }
    for (; p < k; ++p) {
      const float* __restrict brow = b + static_cast<std::size_t>(p) * m;
      const float v0 = a0[p], v1 = a1[p], v2 = a2[p], v3 = a3[p];
      for (int j = 0; j < m; ++j) {
        const float bv = brow[j];
        c0[j] += v0 * bv; c1[j] += v1 * bv; c2[j] += v2 * bv; c3[j] += v3 * bv;
      }
    }
  }
  for (; i < i1; ++i) {  // row tail
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* __restrict crow = c + static_cast<std::size_t>(i) * m;
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      const float* __restrict brow = b + static_cast<std::size_t>(p) * m;
      for (int j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
}

// C[p0..p1) += (A^T B)[p0..p1) for A (n x k), B (n x m), C (k x m): the
// reduction runs over the shared row index i (ascending, as before); the
// 4-row A slice a[i][p..p+4) is contiguous, so the same tile shape works.
void matmul_tn_rows(const float* __restrict a, const float* __restrict b,
                    float* __restrict c, int p0, int p1, int n, int k, int m) {
  int p = p0;
  for (; p + 4 <= p1; p += 4) {
    float* __restrict c0 = c + static_cast<std::size_t>(p + 0) * m;
    float* __restrict c1 = c + static_cast<std::size_t>(p + 1) * m;
    float* __restrict c2 = c + static_cast<std::size_t>(p + 2) * m;
    float* __restrict c3 = c + static_cast<std::size_t>(p + 3) * m;
    int i = 0;
    for (; i + 4 <= n; i += 4) {
      const float* ar0 = a + static_cast<std::size_t>(i + 0) * k + p;
      const float* ar1 = a + static_cast<std::size_t>(i + 1) * k + p;
      const float* ar2 = a + static_cast<std::size_t>(i + 2) * k + p;
      const float* ar3 = a + static_cast<std::size_t>(i + 3) * k + p;
      const float* __restrict br0 = b + static_cast<std::size_t>(i + 0) * m;
      const float* __restrict br1 = b + static_cast<std::size_t>(i + 1) * m;
      const float* __restrict br2 = b + static_cast<std::size_t>(i + 2) * m;
      const float* __restrict br3 = b + static_cast<std::size_t>(i + 3) * m;
      for (int j = 0; j < m; ++j) {
        const float b0 = br0[j], b1 = br1[j], b2 = br2[j], b3 = br3[j];
        float s0 = c0[j], s1 = c1[j], s2 = c2[j], s3 = c3[j];
        s0 += ar0[0] * b0; s1 += ar0[1] * b0; s2 += ar0[2] * b0; s3 += ar0[3] * b0;
        s0 += ar1[0] * b1; s1 += ar1[1] * b1; s2 += ar1[2] * b1; s3 += ar1[3] * b1;
        s0 += ar2[0] * b2; s1 += ar2[1] * b2; s2 += ar2[2] * b2; s3 += ar2[3] * b2;
        s0 += ar3[0] * b3; s1 += ar3[1] * b3; s2 += ar3[2] * b3; s3 += ar3[3] * b3;
        c0[j] = s0; c1[j] = s1; c2[j] = s2; c3[j] = s3;
      }
    }
    for (; i < n; ++i) {  // reduction tail
      const float* arow = a + static_cast<std::size_t>(i) * k + p;
      const float* __restrict brow = b + static_cast<std::size_t>(i) * m;
      const float v0 = arow[0], v1 = arow[1], v2 = arow[2], v3 = arow[3];
      for (int j = 0; j < m; ++j) {
        const float bv = brow[j];
        c0[j] += v0 * bv; c1[j] += v1 * bv; c2[j] += v2 * bv; c3[j] += v3 * bv;
      }
    }
  }
  for (; p < p1; ++p) {  // output-row tail
    float* __restrict crow = c + static_cast<std::size_t>(p) * m;
    for (int i = 0; i < n; ++i) {
      const float av = a[static_cast<std::size_t>(i) * k + p];
      const float* __restrict brow = b + static_cast<std::size_t>(i) * m;
      for (int j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
}

// C[i0..i1) = (A B^T)[i0..i1) for A (n x k), B (m x k), C (n x m): each
// element is an independent double-precision dot product in ascending p, as
// before; 2x4 output tiles give eight independent accumulation chains so
// the 4-cycle add latency overlaps instead of serializing.
void matmul_nt_rows(const float* __restrict a, const float* __restrict b,
                    float* __restrict c, int i0, int i1, int k, int m) {
  int i = i0;
  for (; i + 2 <= i1; i += 2) {
    const float* a0 = a + static_cast<std::size_t>(i + 0) * k;
    const float* a1 = a + static_cast<std::size_t>(i + 1) * k;
    float* c0 = c + static_cast<std::size_t>(i + 0) * m;
    float* c1 = c + static_cast<std::size_t>(i + 1) * m;
    int j = 0;
    for (; j + 4 <= m; j += 4) {
      const float* b0 = b + static_cast<std::size_t>(j + 0) * k;
      const float* b1 = b + static_cast<std::size_t>(j + 1) * k;
      const float* b2 = b + static_cast<std::size_t>(j + 2) * k;
      const float* b3 = b + static_cast<std::size_t>(j + 3) * k;
      double s00 = 0.0, s01 = 0.0, s02 = 0.0, s03 = 0.0;
      double s10 = 0.0, s11 = 0.0, s12 = 0.0, s13 = 0.0;
      for (int p = 0; p < k; ++p) {
        const double u0 = a0[p], u1 = a1[p];
        s00 += u0 * b0[p]; s01 += u0 * b1[p]; s02 += u0 * b2[p]; s03 += u0 * b3[p];
        s10 += u1 * b0[p]; s11 += u1 * b1[p]; s12 += u1 * b2[p]; s13 += u1 * b3[p];
      }
      c0[j + 0] = static_cast<float>(s00); c0[j + 1] = static_cast<float>(s01);
      c0[j + 2] = static_cast<float>(s02); c0[j + 3] = static_cast<float>(s03);
      c1[j + 0] = static_cast<float>(s10); c1[j + 1] = static_cast<float>(s11);
      c1[j + 2] = static_cast<float>(s12); c1[j + 3] = static_cast<float>(s13);
    }
    for (; j < m; ++j) {
      const float* brow = b + static_cast<std::size_t>(j) * k;
      double s0 = 0.0, s1 = 0.0;
      for (int p = 0; p < k; ++p) {
        s0 += static_cast<double>(a0[p]) * brow[p];
        s1 += static_cast<double>(a1[p]) * brow[p];
      }
      c0[j] = static_cast<float>(s0);
      c1[j] = static_cast<float>(s1);
    }
  }
  for (; i < i1; ++i) {  // row tail
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* crow = c + static_cast<std::size_t>(i) * m;
    for (int j = 0; j < m; ++j) {
      const float* brow = b + static_cast<std::size_t>(j) * k;
      double acc = 0.0;
      for (int p = 0; p < k; ++p)
        acc += static_cast<double>(arow[p]) * brow[p];
      crow[j] = static_cast<float>(acc);
    }
  }
}

}  // namespace

Matrix matmul(const Matrix& a, const Matrix& b) {
  cpsguard::expects(a.cols() == b.rows(), "matmul inner dimensions must match");
  Matrix c(a.rows(), b.cols());
  const int n = a.rows(), k = a.cols(), m = b.cols();
  const float* ad = a.data().data();
  const float* bd = b.data().data();
  float* cd = c.data().data();
  // Bit-identical by contract (ascending-p mul-then-add, no contraction),
  // so dispatching on CPU width never moves a golden.
  const MatmulRowsFn simd = simd_matmul_rows();
  for_row_blocks(n, k, m, [&](int r0, int r1) {
    if (simd) {
      simd(ad, bd, cd, r0, r1, k, m);
    } else {
      matmul_rows(ad, bd, cd, r0, r1, k, m);
    }
  });
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  cpsguard::expects(a.rows() == b.rows(), "matmul_tn: A^T B needs equal row counts");
  Matrix c(a.cols(), b.cols());
  const int n = a.rows(), k = a.cols(), m = b.cols();
  const float* ad = a.data().data();
  const float* bd = b.data().data();
  float* cd = c.data().data();
  for_row_blocks(k, n, m, [&](int p0, int p1) {
    matmul_tn_rows(ad, bd, cd, p0, p1, n, k, m);
  });
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  cpsguard::expects(a.cols() == b.cols(), "matmul_nt: A B^T needs equal col counts");
  Matrix c(a.rows(), b.rows());
  const int n = a.rows(), k = a.cols(), m = b.rows();
  const float* ad = a.data().data();
  const float* bd = b.data().data();
  float* cd = c.data().data();
  for_row_blocks(n, k, m, [&](int r0, int r1) {
    matmul_nt_rows(ad, bd, cd, r0, r1, k, m);
  });
  return c;
}

Matrix subtract(const Matrix& a, const Matrix& b) {
  cpsguard::expects(a.rows() == b.rows() && a.cols() == b.cols(), "subtract shape mismatch");
  Matrix c = a;
  c.axpy(-1.0f, b);
  return c;
}

Matrix add(const Matrix& a, const Matrix& b) {
  cpsguard::expects(a.rows() == b.rows() && a.cols() == b.cols(), "add shape mismatch");
  Matrix c = a;
  c.add_in_place(b);
  return c;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c.hadamard_in_place(b);
  return c;
}

Matrix softmax_rows(const Matrix& logits) {
  Matrix probs(logits.rows(), logits.cols());
  for (int r = 0; r < logits.rows(); ++r) {
    const auto src = logits.row(r);
    auto dst = probs.row(r);
    float mx = src.empty() ? 0.0f : src[0];
    for (float v : src) mx = std::max(mx, v);
    double denom = 0.0;
    for (std::size_t j = 0; j < src.size(); ++j) {
      dst[j] = std::exp(src[j] - mx);
      denom += dst[j];
    }
    for (std::size_t j = 0; j < src.size(); ++j)
      dst[j] = static_cast<float>(dst[j] / denom);
  }
  return probs;
}

}  // namespace cpsguard::nn

#include "nn/matrix.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace cpsguard::nn {

Matrix::Matrix(int rows, int cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), 0.0f) {
  expects(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
}

Matrix::Matrix(int rows, int cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  expects(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
  expects(data_.size() == static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
          "matrix data size must match dimensions");
}

Matrix Matrix::zeros(int rows, int cols) { return Matrix(rows, cols); }

Matrix Matrix::full(int rows, int cols, float value) {
  Matrix m(rows, cols);
  m.fill(value);
  return m;
}

Matrix Matrix::from_rows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return {};
  const int r = static_cast<int>(rows.size());
  const int c = static_cast<int>(rows.front().size());
  Matrix m(r, c);
  for (int i = 0; i < r; ++i) {
    expects(static_cast<int>(rows[static_cast<std::size_t>(i)].size()) == c,
            "ragged rows in from_rows");
    std::copy(rows[static_cast<std::size_t>(i)].begin(),
              rows[static_cast<std::size_t>(i)].end(), m.row(i).begin());
  }
  return m;
}

float& Matrix::at(int r, int c) {
  expects(r >= 0 && r < rows_ && c >= 0 && c < cols_, "matrix index out of range");
  return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
               static_cast<std::size_t>(c)];
}

float Matrix::at(int r, int c) const {
  expects(r >= 0 && r < rows_ && c >= 0 && c < cols_, "matrix index out of range");
  return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
               static_cast<std::size_t>(c)];
}

std::span<float> Matrix::row(int r) {
  expects(r >= 0 && r < rows_, "row index out of range");
  return std::span<float>(data_).subspan(
      static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_),
      static_cast<std::size_t>(cols_));
}

std::span<const float> Matrix::row(int r) const {
  expects(r >= 0 && r < rows_, "row index out of range");
  return std::span<const float>(data_).subspan(
      static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_),
      static_cast<std::size_t>(cols_));
}

void Matrix::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

void Matrix::add_in_place(const Matrix& other) { axpy(1.0f, other); }

void Matrix::axpy(float alpha, const Matrix& other) {
  expects(rows_ == other.rows_ && cols_ == other.cols_, "axpy shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void Matrix::scale(float alpha) {
  for (float& v : data_) v *= alpha;
}

void Matrix::hadamard_in_place(const Matrix& other) {
  expects(rows_ == other.rows_ && cols_ == other.cols_, "hadamard shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
}

void Matrix::add_row_vector(std::span<const float> v) {
  expects(static_cast<int>(v.size()) == cols_, "row-vector length must equal cols");
  for (int r = 0; r < rows_; ++r) {
    auto dst = row(r);
    for (int c = 0; c < cols_; ++c) dst[static_cast<std::size_t>(c)] += v[static_cast<std::size_t>(c)];
  }
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  }
  return t;
}

Matrix Matrix::column_sums() const {
  Matrix s(1, cols_);
  for (int r = 0; r < rows_; ++r) {
    const auto src = row(r);
    auto dst = s.row(0);
    for (int c = 0; c < cols_; ++c) dst[static_cast<std::size_t>(c)] += src[static_cast<std::size_t>(c)];
  }
  return s;
}

float Matrix::max_abs() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

float Matrix::sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return static_cast<float>(s);
}

std::string Matrix::shape_str() const {
  return "[" + std::to_string(rows_) + "x" + std::to_string(cols_) + "]";
}

bool operator==(const Matrix& a, const Matrix& b) {
  return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  cpsguard::expects(a.cols() == b.rows(), "matmul inner dimensions must match");
  Matrix c(a.rows(), b.cols());
  const int n = a.rows(), k = a.cols(), m = b.cols();
  for (int i = 0; i < n; ++i) {
    const auto arow = a.row(i);
    auto crow = c.row(i);
    for (int p = 0; p < k; ++p) {
      const float av = arow[static_cast<std::size_t>(p)];
      if (av == 0.0f) continue;
      const auto brow = b.row(p);
      for (int j = 0; j < m; ++j) crow[static_cast<std::size_t>(j)] += av * brow[static_cast<std::size_t>(j)];
    }
  }
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  cpsguard::expects(a.rows() == b.rows(), "matmul_tn: A^T B needs equal row counts");
  Matrix c(a.cols(), b.cols());
  const int n = a.rows(), k = a.cols(), m = b.cols();
  for (int i = 0; i < n; ++i) {
    const auto arow = a.row(i);
    const auto brow = b.row(i);
    for (int p = 0; p < k; ++p) {
      const float av = arow[static_cast<std::size_t>(p)];
      if (av == 0.0f) continue;
      auto crow = c.row(p);
      for (int j = 0; j < m; ++j) crow[static_cast<std::size_t>(j)] += av * brow[static_cast<std::size_t>(j)];
    }
  }
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  cpsguard::expects(a.cols() == b.cols(), "matmul_nt: A B^T needs equal col counts");
  Matrix c(a.rows(), b.rows());
  const int n = a.rows(), k = a.cols(), m = b.rows();
  for (int i = 0; i < n; ++i) {
    const auto arow = a.row(i);
    auto crow = c.row(i);
    for (int j = 0; j < m; ++j) {
      const auto brow = b.row(j);
      double acc = 0.0;
      for (int p = 0; p < k; ++p)
        acc += static_cast<double>(arow[static_cast<std::size_t>(p)]) * brow[static_cast<std::size_t>(p)];
      crow[static_cast<std::size_t>(j)] = static_cast<float>(acc);
    }
  }
  return c;
}

Matrix subtract(const Matrix& a, const Matrix& b) {
  cpsguard::expects(a.rows() == b.rows() && a.cols() == b.cols(), "subtract shape mismatch");
  Matrix c = a;
  c.axpy(-1.0f, b);
  return c;
}

Matrix add(const Matrix& a, const Matrix& b) {
  cpsguard::expects(a.rows() == b.rows() && a.cols() == b.cols(), "add shape mismatch");
  Matrix c = a;
  c.add_in_place(b);
  return c;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c.hadamard_in_place(b);
  return c;
}

Matrix softmax_rows(const Matrix& logits) {
  Matrix probs(logits.rows(), logits.cols());
  for (int r = 0; r < logits.rows(); ++r) {
    const auto src = logits.row(r);
    auto dst = probs.row(r);
    float mx = src.empty() ? 0.0f : src[0];
    for (float v : src) mx = std::max(mx, v);
    double denom = 0.0;
    for (std::size_t j = 0; j < src.size(); ++j) {
      dst[j] = std::exp(src[j] - mx);
      denom += dst[j];
    }
    for (std::size_t j = 0; j < src.size(); ++j)
      dst[j] = static_cast<float>(dst[j] / denom);
  }
  return probs;
}

}  // namespace cpsguard::nn

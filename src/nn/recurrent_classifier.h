// Generic stacked-recurrent classifier: any cell layer exposing
//   Tensor3 forward(const Tensor3&), Tensor3 backward(const Tensor3&),
//   std::vector<Param*> params(), int hidden_size()
// can be stacked under a dense softmax head. Instantiated for the GRU; the
// LSTM keeps its dedicated class (the paper's primary recurrent monitor).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/classifier.h"
#include "nn/dense.h"
#include "util/contracts.h"

namespace cpsguard::nn {

template <typename Cell>
class RecurrentClassifier : public Classifier {
 public:
  RecurrentClassifier(std::string arch_prefix, int time_steps, int features,
                      std::vector<int> hidden, int classes, util::Rng& rng)
      : arch_prefix_(std::move(arch_prefix)), time_steps_(time_steps),
        features_(features), classes_(classes), hidden_(std::move(hidden)) {
    expects(time_steps > 0 && features > 0 && classes >= 2,
            "bad recurrent-classifier dimensions");
    expects(!hidden_.empty(), "recurrent stack needs at least one layer");
    int in = features;
    for (const int h : hidden_) {
      expects(h > 0, "hidden size must be positive");
      cells_.push_back(std::make_unique<Cell>(in, h, rng));
      in = h;
    }
    head_.add(std::make_unique<Dense>(in, classes, rng));
  }

  [[nodiscard]] int num_classes() const override { return classes_; }
  [[nodiscard]] int time_steps() const override { return time_steps_; }
  [[nodiscard]] int features() const override { return features_; }

  [[nodiscard]] std::string arch() const override {
    std::string s = arch_prefix_ + "(";
    for (std::size_t i = 0; i < hidden_.size(); ++i) {
      if (i) s += '-';
      s += std::to_string(hidden_[i]);
    }
    return s + ")";
  }

  Matrix predict_proba(const Tensor3& x) override {
    return softmax_rows(head_.forward(encode(x), /*training=*/false));
  }

  double accumulate_gradients(const Tensor3& x, std::span<const int> labels,
                              std::span<const float> semantic_targets,
                              const Loss& loss) override {
    expects(x.batch() == static_cast<int>(labels.size()), "batch/label mismatch");
    const Matrix logits = head_.forward(encode(x), /*training=*/true);
    const LossResult lr = loss.compute(logits, labels, semantic_targets);
    const Matrix dh_last = head_.backward(lr.dlogits);
    decode_gradient(dh_last);
    return lr.loss;
  }

  Tensor3 loss_input_gradient(const Tensor3& x,
                              std::span<const int> labels) override {
    expects(x.batch() == static_cast<int>(labels.size()), "batch/label mismatch");
    zero_grad();
    const Matrix logits = head_.forward(encode(x), /*training=*/false);
    const SoftmaxCrossEntropy ce;
    const LossResult lr = ce.compute(logits, labels, {});
    const Matrix dh_last = head_.backward(lr.dlogits);
    Tensor3 dx = decode_gradient(dh_last);
    zero_grad();
    return dx;
  }

  std::vector<Param*> params() override {
    std::vector<Param*> out;
    for (auto& cell : cells_) {
      for (Param* p : cell->params()) out.push_back(p);
    }
    for (Param* p : head_.params()) out.push_back(p);
    return out;
  }

 private:
  Matrix encode(const Tensor3& x) {
    expects(x.time() == time_steps_ && x.features() == features_,
            "recurrent classifier: window shape mismatch");
    Tensor3 h = x;
    for (auto& cell : cells_) h = cell->forward(h);
    return h.time_slice(h.time() - 1);
  }

  Tensor3 decode_gradient(const Matrix& dh_last) {
    Tensor3 dh(dh_last.rows(), time_steps_, cells_.back()->hidden_size());
    dh.set_time_slice(time_steps_ - 1, dh_last);
    for (auto it = cells_.rbegin(); it != cells_.rend(); ++it) {
      dh = (*it)->backward(dh);
    }
    return dh;
  }

  std::string arch_prefix_;
  int time_steps_;
  int features_;
  int classes_;
  std::vector<int> hidden_;
  std::vector<std::unique_ptr<Cell>> cells_;
  FeedForward head_;
};

}  // namespace cpsguard::nn

#include "nn/loss.h"

#include <cmath>

#include "util/contracts.h"

namespace cpsguard::nn {

namespace {

// Shared CE core: returns mean CE loss and writes (p - onehot)/B into dlogits.
double cross_entropy_core(const Matrix& logits, std::span<const int> labels,
                          Matrix& probs, Matrix& dlogits) {
  const int batch = logits.rows();
  const int classes = logits.cols();
  cpsguard::expects(static_cast<int>(labels.size()) == batch,
                    "one label per logit row required");
  probs = softmax_rows(logits);
  dlogits = probs;
  double total = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (int r = 0; r < batch; ++r) {
    const int y = labels[static_cast<std::size_t>(r)];
    cpsguard::expects(y >= 0 && y < classes, "label out of range");
    const float p = probs.at(r, y);
    total += -std::log(std::max(p, 1e-12f));
    dlogits.at(r, y) -= 1.0f;
  }
  dlogits.scale(inv_batch);
  return total / batch;
}

}  // namespace

LossResult SoftmaxCrossEntropy::compute(
    const Matrix& logits, std::span<const int> labels,
    std::span<const float> /*semantic_targets*/) const {
  cpsguard::expects(logits.rows() > 0, "empty batch");
  LossResult out;
  Matrix probs;
  out.loss = cross_entropy_core(logits, labels, probs, out.dlogits);
  return out;
}

SemanticLoss::SemanticLoss(double weight, SemanticMode mode)
    : weight_(weight), mode_(mode) {
  cpsguard::expects(weight >= 0.0, "semantic weight must be non-negative");
}

LossResult SemanticLoss::compute(const Matrix& logits,
                                 std::span<const int> labels,
                                 std::span<const float> semantic_targets) const {
  cpsguard::expects(logits.rows() > 0, "empty batch");
  cpsguard::expects(logits.cols() == 2,
                    "semantic loss assumes binary safe/unsafe classification");
  cpsguard::expects(semantic_targets.size() == static_cast<std::size_t>(logits.rows()),
                    "one semantic target per sample required");
  LossResult out;
  Matrix probs;
  out.loss = cross_entropy_core(logits, labels, probs, out.dlogits);

  // Knowledge term: w * |p1 - s| per sample, averaged over the batch.
  // d|p1 - s|/dp1 = sign(p1 - s); dp1/dz_k = p1 * (δ_{1k} - p_k).
  const int batch = logits.rows();
  const float w_over_b = static_cast<float>(weight_ / batch);
  double sem_total = 0.0;
  for (int r = 0; r < batch; ++r) {
    const float p1 = probs.at(r, 1);
    const float s = semantic_targets[static_cast<std::size_t>(r)];
    cpsguard::expects(s >= 0.0f && s <= 1.0f, "semantic target must be in [0,1]");
    if (mode_ == SemanticMode::kUnsafeOnly && s < 0.5f) continue;
    const float diff = p1 - s;
    sem_total += std::fabs(diff);
    if (diff == 0.0f) continue;
    const float sign = diff > 0.0f ? 1.0f : -1.0f;
    const float p0 = probs.at(r, 0);
    out.dlogits.at(r, 1) += w_over_b * sign * p1 * (1.0f - p1);
    out.dlogits.at(r, 0) += w_over_b * sign * p1 * (-p0);
  }
  out.loss += weight_ * sem_total / batch;
  return out;
}

}  // namespace cpsguard::nn

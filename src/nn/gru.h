// GRU layer (Cho et al. 2014, PyTorch/cuDNN gate formulation) with full
// backpropagation-through-time. A second recurrent architecture for testing
// whether the paper's conclusions (semantic-loss robustness gains, FGSM
// sensitivity of recurrent monitors) generalize beyond the LSTM.
//
// Gate layout inside the fused weights is [z | r | n]:
//   a  = x Wx + bx          (input contribution,  [B, 3H])
//   ah = h Wh + bh          (hidden contribution, [B, 3H])
//   z = σ(a_z + ah_z)       update gate
//   r = σ(a_r + ah_r)       reset gate
//   n = tanh(a_n + r ⊙ ah_n)
//   h' = (1 - z) ⊙ n + z ⊙ h
#pragma once

#include <vector>

#include "nn/layer.h"
#include "nn/tensor3.h"
#include "util/rng.h"

namespace cpsguard::nn {

class GruLayer {
 public:
  GruLayer(int input, int hidden, util::Rng& rng);

  /// Forward over the whole sequence; caches per-step state for backward.
  Tensor3 forward(const Tensor3& x);

  /// BPTT. `dh` holds dLoss/dh_t for every timestep; returns dLoss/dx.
  Tensor3 backward(const Tensor3& dh);

  [[nodiscard]] std::vector<Param*> params();

  [[nodiscard]] int input_size() const { return input_; }
  [[nodiscard]] int hidden_size() const { return hidden_; }

 private:
  int input_;
  int hidden_;
  Param wx_;  // [input, 3*hidden]
  Param wh_;  // [hidden, 3*hidden]
  Param bx_;  // [1, 3*hidden]
  Param bh_;  // [1, 3*hidden]

  struct StepCache {
    Matrix x;       // [B, input]
    Matrix h_prev;  // [B, hidden]
    Matrix z;       // [B, hidden] post-activation
    Matrix r;       // [B, hidden] post-activation
    Matrix n;       // [B, hidden] post-activation
    Matrix ah_n;    // [B, hidden] the hidden contribution gated by r
  };
  std::vector<StepCache> cache_;
  int cached_batch_ = 0;
};

}  // namespace cpsguard::nn

// LSTM layer over sequences with full backpropagation-through-time.
//
// Forward consumes a [batch, T, in] tensor and produces the hidden states for
// every timestep as a [batch, T, hidden] tensor. Backward accepts gradients
// on every timestep's hidden output and returns gradients with respect to the
// input tensor — the piece FGSM needs to attack sequence models.
//
// Gate layout inside the fused weight matrices is [i | f | g | o]:
//   a_t = x_t Wx + h_{t-1} Wh + b
//   i = σ(a_i), f = σ(a_f), g = tanh(a_g), o = σ(a_o)
//   c_t = f ⊙ c_{t-1} + i ⊙ g
//   h_t = o ⊙ tanh(c_t)
#pragma once

#include <vector>

#include "nn/layer.h"
#include "nn/tensor3.h"
#include "util/rng.h"

namespace cpsguard::nn {

class LstmLayer {
 public:
  LstmLayer(int input, int hidden, util::Rng& rng);

  /// Forward over the whole sequence; caches per-step state for backward.
  Tensor3 forward(const Tensor3& x);

  /// BPTT. `dh` holds dLoss/dh_t for every timestep ([batch, T, hidden]);
  /// callers that only use the last hidden state pass zeros elsewhere.
  /// Returns dLoss/dx ([batch, T, input]).
  Tensor3 backward(const Tensor3& dh);

  [[nodiscard]] std::vector<Param*> params();

  [[nodiscard]] int input_size() const { return input_; }
  [[nodiscard]] int hidden_size() const { return hidden_; }

 private:
  int input_;
  int hidden_;
  Param wx_;  // [input, 4*hidden]
  Param wh_;  // [hidden, 4*hidden]
  Param b_;   // [1, 4*hidden]

  // Per-timestep caches from the last forward call.
  struct StepCache {
    Matrix x;       // [B, input]
    Matrix h_prev;  // [B, hidden]
    Matrix c_prev;  // [B, hidden]
    Matrix gates;   // [B, 4*hidden] post-activation (i,f,g,o)
    Matrix c;       // [B, hidden]
    Matrix tanh_c;  // [B, hidden]
  };
  std::vector<StepCache> cache_;
  int cached_batch_ = 0;
};

}  // namespace cpsguard::nn

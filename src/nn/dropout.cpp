#include "nn/dropout.h"

#include "util/contracts.h"

namespace cpsguard::nn {

Dropout::Dropout(int size, double rate, util::Rng rng)
    : size_(size), rate_(rate), rng_(rng) {
  expects(rate >= 0.0 && rate < 1.0, "dropout rate must be in [0,1)");
}

Matrix Dropout::forward(const Matrix& x, bool training) {
  expects(x.cols() == size_, "Dropout: width mismatch");
  if (!training || rate_ == 0.0) {
    mask_valid_ = false;
    return x;
  }
  const float keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
  mask_ = Matrix(x.rows(), x.cols());
  Matrix y = x;
  auto m = mask_.data();
  auto v = y.data();
  for (std::size_t i = 0; i < v.size(); ++i) {
    m[i] = rng_.bernoulli(rate_) ? 0.0f : keep_scale;
    v[i] *= m[i];
  }
  mask_valid_ = true;
  return y;
}

Matrix Dropout::backward(const Matrix& dy) {
  if (!mask_valid_) return dy;  // inference-mode identity
  expects(dy.rows() == mask_.rows() && dy.cols() == mask_.cols(),
          "Dropout: backward shape mismatch");
  return hadamard(dy, mask_);
}

}  // namespace cpsguard::nn

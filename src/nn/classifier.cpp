#include "nn/classifier.h"

#include "nn/activations.h"
#include "nn/dense.h"
#include "util/contracts.h"

namespace cpsguard::nn {

double Classifier::train_batch(const Tensor3& x, std::span<const int> labels,
                               std::span<const float> semantic_targets,
                               const Loss& loss, Optimizer& opt) {
  zero_grad();
  const double batch_loss = accumulate_gradients(x, labels, semantic_targets, loss);
  const auto ps = params();
  opt.step(ps);
  zero_grad();
  return batch_loss;
}

void Classifier::zero_grad() {
  for (Param* p : params()) p->zero_grad();
}

std::vector<int> predict_classes(Classifier& clf, const Tensor3& x) {
  const Matrix probs = clf.predict_proba(x);
  std::vector<int> out(static_cast<std::size_t>(probs.rows()));
  for (int r = 0; r < probs.rows(); ++r) {
    const auto row = probs.row(r);
    int best = 0;
    for (int c = 1; c < probs.cols(); ++c) {
      if (row[static_cast<std::size_t>(c)] > row[static_cast<std::size_t>(best)]) best = c;
    }
    out[static_cast<std::size_t>(r)] = best;
  }
  return out;
}

MlpClassifier::MlpClassifier(int time_steps, int features,
                             std::vector<int> hidden, int classes,
                             util::Rng& rng)
    : time_steps_(time_steps), features_(features), classes_(classes),
      hidden_(std::move(hidden)) {
  expects(time_steps > 0 && features > 0 && classes >= 2, "bad MLP dimensions");
  expects(!hidden_.empty(), "MLP needs at least one hidden layer");
  int in = time_steps * features;
  for (int h : hidden_) {
    expects(h > 0, "hidden size must be positive");
    net_.add(std::make_unique<Dense>(in, h, rng));
    net_.add(std::make_unique<Relu>(h));
    in = h;
  }
  net_.add(std::make_unique<Dense>(in, classes, rng));
}

std::string MlpClassifier::arch() const {
  std::string s = "MLP(";
  for (std::size_t i = 0; i < hidden_.size(); ++i) {
    if (i) s += '-';
    s += std::to_string(hidden_[i]);
  }
  return s + ")";
}

Matrix MlpClassifier::predict_proba(const Tensor3& x) {
  expects(x.time() == time_steps_ && x.features() == features_,
          "MLP: window shape mismatch");
  return softmax_rows(net_.forward(x.flatten(), /*training=*/false));
}

double MlpClassifier::accumulate_gradients(
    const Tensor3& x, std::span<const int> labels,
    std::span<const float> semantic_targets, const Loss& loss) {
  expects(x.batch() == static_cast<int>(labels.size()), "batch/label mismatch");
  const Matrix logits = net_.forward(x.flatten(), /*training=*/true);
  const LossResult lr = loss.compute(logits, labels, semantic_targets);
  net_.backward(lr.dlogits);
  return lr.loss;
}

Tensor3 MlpClassifier::loss_input_gradient(const Tensor3& x,
                                           std::span<const int> labels) {
  expects(x.batch() == static_cast<int>(labels.size()), "batch/label mismatch");
  zero_grad();
  const Matrix logits = net_.forward(x.flatten(), /*training=*/false);
  const SoftmaxCrossEntropy ce;
  const LossResult lr = ce.compute(logits, labels, {});
  const Matrix dx = net_.backward(lr.dlogits);
  zero_grad();
  return Tensor3::from_flat(dx, time_steps_, features_);
}

std::vector<Param*> MlpClassifier::params() { return net_.params(); }

LstmClassifier::LstmClassifier(int time_steps, int features,
                               std::vector<int> hidden, int classes,
                               util::Rng& rng)
    : time_steps_(time_steps), features_(features), classes_(classes),
      hidden_(std::move(hidden)) {
  expects(time_steps > 0 && features > 0 && classes >= 2, "bad LSTM dimensions");
  expects(!hidden_.empty(), "LSTM stack needs at least one layer");
  int in = features;
  for (int h : hidden_) {
    expects(h > 0, "hidden size must be positive");
    lstms_.push_back(std::make_unique<LstmLayer>(in, h, rng));
    in = h;
  }
  head_.add(std::make_unique<Dense>(in, classes, rng));
}

std::string LstmClassifier::arch() const {
  std::string s = "LSTM(";
  for (std::size_t i = 0; i < hidden_.size(); ++i) {
    if (i) s += '-';
    s += std::to_string(hidden_[i]);
  }
  return s + ")";
}

Matrix LstmClassifier::encode(const Tensor3& x) {
  expects(x.time() == time_steps_ && x.features() == features_,
          "LSTM: window shape mismatch");
  Tensor3 h = x;
  for (auto& lstm : lstms_) h = lstm->forward(h);
  return h.time_slice(h.time() - 1);
}

Tensor3 LstmClassifier::decode_gradient(const Matrix& dh_last) {
  Tensor3 dh(dh_last.rows(), time_steps_, lstms_.back()->hidden_size());
  dh.set_time_slice(time_steps_ - 1, dh_last);
  for (auto it = lstms_.rbegin(); it != lstms_.rend(); ++it) {
    dh = (*it)->backward(dh);
  }
  return dh;
}

Matrix LstmClassifier::predict_proba(const Tensor3& x) {
  return softmax_rows(head_.forward(encode(x), /*training=*/false));
}

double LstmClassifier::accumulate_gradients(
    const Tensor3& x, std::span<const int> labels,
    std::span<const float> semantic_targets, const Loss& loss) {
  expects(x.batch() == static_cast<int>(labels.size()), "batch/label mismatch");
  const Matrix logits = head_.forward(encode(x), /*training=*/true);
  const LossResult lr = loss.compute(logits, labels, semantic_targets);
  const Matrix dh_last = head_.backward(lr.dlogits);
  decode_gradient(dh_last);
  return lr.loss;
}

Tensor3 LstmClassifier::loss_input_gradient(const Tensor3& x,
                                            std::span<const int> labels) {
  expects(x.batch() == static_cast<int>(labels.size()), "batch/label mismatch");
  zero_grad();
  const Matrix logits = head_.forward(encode(x), /*training=*/false);
  const SoftmaxCrossEntropy ce;
  const LossResult lr = ce.compute(logits, labels, {});
  const Matrix dh_last = head_.backward(lr.dlogits);
  Tensor3 dx = decode_gradient(dh_last);
  zero_grad();
  return dx;
}

std::vector<Param*> LstmClassifier::params() {
  std::vector<Param*> out;
  for (auto& lstm : lstms_) {
    for (Param* p : lstm->params()) out.push_back(p);
  }
  for (Param* p : head_.params()) out.push_back(p);
  return out;
}

}  // namespace cpsguard::nn

#include "registry/model_io.h"

#include <sstream>
#include <utility>

#include "util/contracts.h"
#include "util/json.h"

namespace cpsguard::registry {

namespace {

[[noreturn]] void reject_meta(const std::string& what) {
  throw ModelFormatError("model artifact meta: " + what);
}

const util::Json& member(const util::Json& j, const char* key) {
  const util::Json* v = j.get(key);
  if (v == nullptr) reject_meta(std::string("missing key \"") + key + "\"");
  return *v;
}

std::string str_member(const util::Json& j, const char* key) {
  const util::Json& v = member(j, key);
  if (!v.is_string()) reject_meta(std::string("key \"") + key + "\" is not a string");
  return v.as_str();
}

}  // namespace

std::string build_model_artifact(monitor::MlMonitor& mon,
                                 const ModelMeta& meta) {
  nn::Classifier& clf = mon.classifier();  // trained() enforced inside
  ArtifactInfo info;
  info.arch = mon.config().arch;
  info.window = clf.time_steps();
  info.features = clf.features();
  info.classes = clf.num_classes();

  util::Json j = util::Json::object();
  j.set("schema", util::Json::str(kModelSchema));
  j.set("version", util::Json::integer(static_cast<long>(meta.version)));
  j.set("run_id", util::Json::str(meta.run_id));
  j.set("parent_run_id", util::Json::str(meta.parent_run_id));
  j.set("config_fingerprint", util::Json::str(meta.config_fingerprint));
  j.set("display_name", util::Json::str(meta.display_name));
  j.set("semantic", util::Json::boolean(meta.semantic));
  util::Json hidden = util::Json::array();
  for (const int h : meta.hidden) hidden.push(util::Json::integer(h));
  j.set("hidden", std::move(hidden));

  std::ostringstream scaler;
  mon.scaler().save(scaler);

  std::vector<TensorSpec> tensors;
  for (nn::Param* p : clf.params()) {
    const nn::Matrix& value = p->value;
    tensors.push_back(
        TensorSpec{p->name, value.rows(), value.cols(), value.data().data()});
  }
  return build_artifact(info, j.dump(), scaler.str(), tensors);
}

ModelMeta parse_model_meta(const ModelArtifact& art) {
  util::Json j = util::Json::null();
  try {
    j = util::Json::parse(std::string(art.meta_json()));
  } catch (const util::JsonParseError& e) {
    reject_meta(std::string("unparseable JSON: ") + e.what());
  }
  if (!j.is_object()) reject_meta("top-level value is not an object");
  if (str_member(j, "schema") != kModelSchema) {
    reject_meta("schema tag is not " + std::string(kModelSchema));
  }
  ModelMeta meta;
  const util::Json& version = member(j, "version");
  if (!version.is_integer() || version.as_int() < 0) {
    reject_meta("key \"version\" is not a non-negative integer");
  }
  meta.version = static_cast<std::uint64_t>(version.as_int());
  meta.run_id = str_member(j, "run_id");
  meta.parent_run_id = str_member(j, "parent_run_id");
  meta.config_fingerprint = str_member(j, "config_fingerprint");
  meta.display_name = str_member(j, "display_name");
  const util::Json& semantic = member(j, "semantic");
  if (!semantic.is_bool()) reject_meta("key \"semantic\" is not a boolean");
  meta.semantic = semantic.as_bool();
  const util::Json& hidden = member(j, "hidden");
  if (!hidden.is_array()) reject_meta("key \"hidden\" is not an array");
  for (const util::Json& h : hidden.items()) {
    if (!h.is_integer() || h.as_int() < 1 || h.as_int() > (1 << 16)) {
      reject_meta("key \"hidden\" holds an implausible layer size");
    }
    meta.hidden.push_back(static_cast<int>(h.as_int()));
  }
  return meta;
}

std::unique_ptr<monitor::MlMonitor> load_monitor(const ModelArtifact& art) {
  const ModelMeta meta = parse_model_meta(art);
  monitor::MonitorConfig mc;
  mc.arch = art.info().arch;
  mc.semantic = meta.semantic;
  mc.hidden = meta.hidden;
  auto mon = std::make_unique<monitor::MlMonitor>(mc);
  std::istringstream scaler{std::string(art.scaler_bytes())};
  const std::vector<nn::WeightView> views = art.weight_views();
  try {
    mon->bind(scaler, art.info().window, art.info().features, views);
  } catch (const ContractViolation& e) {
    // Scaler-stream validation uses contracts; surface it as the typed
    // format error every registry caller handles.
    throw ModelFormatError(std::string("model artifact: bad scaler section: ") +
                           e.what());
  }
  return mon;
}

}  // namespace cpsguard::registry

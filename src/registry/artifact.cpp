#include "registry/artifact.h"

#include <cstring>

#include "obs/sha256.h"

namespace cpsguard::registry {

namespace {

// Plausibility caps: far above any real monitor, small enough that a
// corrupt header can't demand a giant allocation or index overflow.
constexpr std::uint64_t kMaxDim = 1u << 16;
constexpr std::uint64_t kMaxTensors = 1024;
constexpr std::uint64_t kMaxNameLen = 256;

std::uint64_t align_up(std::uint64_t v) {
  return (v + (kModelBlobAlign - 1)) & ~(static_cast<std::uint64_t>(kModelBlobAlign) - 1);
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

[[noreturn]] void reject(const std::string& what) {
  throw ModelFormatError("model artifact: " + what);
}

void require(bool ok, const char* what) {
  if (!ok) reject(what);
}

}  // namespace

std::string build_artifact(const ArtifactInfo& info, std::string_view meta_json,
                           std::string_view scaler_bytes,
                           const std::vector<TensorSpec>& tensors) {
  require(!tensors.empty(), "a model needs at least one tensor");
  require(tensors.size() <= kMaxTensors, "too many tensors");

  // Directory + blob layout first, so the header can be written in one pass.
  std::string dir;
  std::uint64_t rel = 0;
  for (const TensorSpec& t : tensors) {
    require(!t.name.empty() && t.name.size() <= kMaxNameLen,
            "bad tensor name length");
    require(t.rows >= 1 && static_cast<std::uint64_t>(t.rows) <= kMaxDim &&
                t.cols >= 1 && static_cast<std::uint64_t>(t.cols) <= kMaxDim,
            "bad tensor shape");
    const std::uint64_t byte_len = static_cast<std::uint64_t>(t.rows) *
                                   static_cast<std::uint64_t>(t.cols) *
                                   sizeof(float);
    put_u32(dir, static_cast<std::uint32_t>(t.name.size()));
    dir.append(t.name);
    put_u32(dir, static_cast<std::uint32_t>(t.rows));
    put_u32(dir, static_cast<std::uint32_t>(t.cols));
    put_u64(dir, rel);
    put_u64(dir, byte_len);
    rel = align_up(rel + byte_len);
  }
  // blob_len ends at the last blob's final byte — no trailing pad.
  std::uint64_t blob_len = 0;
  {
    std::uint64_t r = 0;
    for (const TensorSpec& t : tensors) {
      const std::uint64_t byte_len = static_cast<std::uint64_t>(t.rows) *
                                     static_cast<std::uint64_t>(t.cols) *
                                     sizeof(float);
      blob_len = r + byte_len;
      r = align_up(blob_len);
    }
  }

  const std::uint64_t meta_off = kModelHeaderSize;
  const std::uint64_t scaler_off = meta_off + meta_json.size();
  const std::uint64_t dir_off = scaler_off + scaler_bytes.size();
  const std::uint64_t blob_off = align_up(dir_off + dir.size());
  const std::uint64_t file_len = blob_off + blob_len + kModelShaSize;

  std::string out;
  out.reserve(static_cast<std::size_t>(file_len));
  out.append(kModelMagic, sizeof(kModelMagic));
  put_u32(out, kModelFormatVersion);
  put_u32(out, static_cast<std::uint32_t>(info.arch));
  put_u32(out, static_cast<std::uint32_t>(info.window));
  put_u32(out, static_cast<std::uint32_t>(info.features));
  put_u32(out, static_cast<std::uint32_t>(info.classes));
  put_u32(out, static_cast<std::uint32_t>(tensors.size()));
  put_u64(out, meta_off);
  put_u64(out, meta_json.size());
  put_u64(out, scaler_off);
  put_u64(out, scaler_bytes.size());
  put_u64(out, dir_off);
  put_u64(out, dir.size());
  put_u64(out, blob_off);
  put_u64(out, blob_len);
  put_u64(out, file_len);
  out.append(kModelHeaderSize - out.size(), '\0');

  out.append(meta_json);
  out.append(scaler_bytes);
  out.append(dir);
  out.append(static_cast<std::size_t>(blob_off) - out.size(), '\0');
  for (const TensorSpec& t : tensors) {
    const std::size_t byte_len = static_cast<std::size_t>(t.rows) *
                                 static_cast<std::size_t>(t.cols) *
                                 sizeof(float);
    const std::uint64_t want =
        blob_off + align_up(out.size() - blob_off);  // next aligned slot
    out.append(static_cast<std::size_t>(want) - out.size(), '\0');
    out.append(reinterpret_cast<const char*>(t.data), byte_len);
  }

  obs::Sha256 sha;
  sha.update(out.data(), out.size());
  const auto digest = sha.digest();
  out.append(reinterpret_cast<const char*>(digest.data()), digest.size());
  return out;
}

ModelArtifact ModelArtifact::open(const std::string& path) {
  ModelArtifact art;
  art.map_ = MappedFile(path);
  art.verify_and_index(art.map_.data(), art.map_.size());
  return art;
}

ModelArtifact ModelArtifact::parse(std::string_view bytes) {
  ModelArtifact art;
  // Copy into a u64-backed buffer: base is 8-byte aligned, blob offsets are
  // multiples of 64, so every tensor view lands float-aligned.
  art.owned_.assign((bytes.size() + sizeof(std::uint64_t) - 1) /
                        sizeof(std::uint64_t),
                    0);
  if (!bytes.empty()) std::memcpy(art.owned_.data(), bytes.data(), bytes.size());
  art.verify_and_index(reinterpret_cast<const std::uint8_t*>(art.owned_.data()),
                       bytes.size());
  return art;
}

void ModelArtifact::verify_and_index(const std::uint8_t* base,
                                     std::size_t len) {
  len_ = len;
  // Structural validation first, the whole-file SHA-256 last: mutated
  // inputs exercise the parser's bounds logic instead of dying at the
  // checksum, and a checksum pass never excuses a malformed layout.
  require(len >= kModelHeaderSize + kModelShaSize, "truncated");
  require(std::memcmp(base, kModelMagic, sizeof(kModelMagic)) == 0,
          "bad magic");
  const std::uint32_t version = get_u32(base + 8);
  if (version != kModelFormatVersion) {
    reject("unsupported format version " + std::to_string(version));
  }
  const std::uint32_t arch = get_u32(base + 12);
  require(arch <= 2, "unknown architecture tag");
  info_.arch = static_cast<monitor::Arch>(arch);
  const std::uint32_t window = get_u32(base + 16);
  const std::uint32_t features = get_u32(base + 20);
  const std::uint32_t classes = get_u32(base + 24);
  require(window >= 1 && window <= kMaxDim, "implausible window");
  require(features >= 1 && features <= kMaxDim, "implausible feature count");
  require(classes >= 2 && classes <= kMaxDim, "implausible class count");
  info_.window = static_cast<int>(window);
  info_.features = static_cast<int>(features);
  info_.classes = static_cast<int>(classes);
  const std::uint32_t tensor_count = get_u32(base + 28);
  require(tensor_count >= 1 && tensor_count <= kMaxTensors,
          "implausible tensor count");

  const std::uint64_t meta_off = get_u64(base + 32);
  const std::uint64_t meta_len = get_u64(base + 40);
  const std::uint64_t scaler_off = get_u64(base + 48);
  const std::uint64_t scaler_len = get_u64(base + 56);
  const std::uint64_t dir_off = get_u64(base + 64);
  const std::uint64_t dir_len = get_u64(base + 72);
  const std::uint64_t blob_off = get_u64(base + 80);
  const std::uint64_t blob_len = get_u64(base + 88);
  const std::uint64_t file_len = get_u64(base + 96);
  require(file_len == len, "header file length disagrees with actual size");
  for (std::size_t i = 104; i < kModelHeaderSize; ++i) {
    require(base[i] == 0, "nonzero header padding");
  }

  // Canonical section chain. Every length is bounded by the (already
  // validated) file length before it joins a sum, so none of these
  // comparisons can wrap.
  const std::uint64_t payload_end = len - kModelShaSize;
  require(meta_len <= len && scaler_len <= len && dir_len <= len &&
              blob_len <= len,
          "section length exceeds file");
  require(meta_off == kModelHeaderSize, "meta section not at header end");
  require(scaler_off == meta_off + meta_len, "scaler section not contiguous");
  require(dir_off == scaler_off + scaler_len, "directory not contiguous");
  const std::uint64_t dir_end = dir_off + dir_len;
  require(dir_end <= payload_end, "directory overruns file");
  require(blob_off == align_up(dir_end), "blob section not 64-byte aligned");
  require(blob_off + blob_len == payload_end,
          "blob section does not end at the SHA-256 trailer");
  for (std::uint64_t i = dir_end; i < blob_off; ++i) {
    require(base[i] == 0, "nonzero padding before blob section");
  }

  meta_json_ = std::string_view(reinterpret_cast<const char*>(base + meta_off),
                                static_cast<std::size_t>(meta_len));
  scaler_ = std::string_view(reinterpret_cast<const char*>(base + scaler_off),
                             static_cast<std::size_t>(scaler_len));

  // Tensor directory: strict sequential decode, blob offsets must chain in
  // pack order with zeroed alignment gaps.
  tensors_.clear();
  tensors_.reserve(tensor_count);
  std::uint64_t cursor = dir_off;
  std::uint64_t expect_rel = 0;
  for (std::uint32_t i = 0; i < tensor_count; ++i) {
    require(cursor + 4 <= dir_end, "directory truncated");
    const std::uint32_t name_len = get_u32(base + cursor);
    cursor += 4;
    // Bound the length before trusting it — a 4 GiB name must die here,
    // not in an allocation (same rule as nn/serialize).
    require(name_len >= 1 && name_len <= kMaxNameLen,
            "implausible tensor name length");
    require(cursor + name_len + 8 + 16 <= dir_end, "directory truncated");
    TensorEntry entry;
    entry.name.assign(reinterpret_cast<const char*>(base + cursor), name_len);
    cursor += name_len;
    const std::uint32_t rows = get_u32(base + cursor);
    const std::uint32_t cols = get_u32(base + cursor + 4);
    cursor += 8;
    require(rows >= 1 && rows <= kMaxDim && cols >= 1 && cols <= kMaxDim,
            "implausible tensor shape");
    entry.rows = static_cast<int>(rows);
    entry.cols = static_cast<int>(cols);
    const std::uint64_t rel_off = get_u64(base + cursor);
    const std::uint64_t byte_len = get_u64(base + cursor + 8);
    cursor += 16;
    require(byte_len == static_cast<std::uint64_t>(rows) * cols * sizeof(float),
            "tensor byte length disagrees with its shape");
    require(rel_off == expect_rel, "tensor blob offset breaks canonical pack");
    require(rel_off + byte_len <= blob_len, "tensor blob overruns section");
    entry.data = reinterpret_cast<const float*>(base + blob_off + rel_off);
    tensors_.push_back(std::move(entry));
    const std::uint64_t end = rel_off + byte_len;
    expect_rel = align_up(end);
    if (i + 1 < tensor_count) {
      // Zeroed alignment gap between this blob and the next slot. Bound the
      // gap before walking it — the next entry hasn't been validated yet.
      require(expect_rel <= blob_len, "tensor blob overruns section");
      for (std::uint64_t p = end; p < expect_rel; ++p) {
        require(base[blob_off + p] == 0,
                "nonzero padding between tensor blobs");
      }
    } else {
      require(blob_len == end, "blob section longer than its tensors");
    }
  }
  require(cursor == dir_end, "directory shorter than its section");

  // Whole-file integrity last.
  obs::Sha256 sha;
  sha.update(base, static_cast<std::size_t>(payload_end));
  const auto digest = sha.digest();
  require(std::memcmp(digest.data(), base + payload_end, kModelShaSize) == 0,
          "SHA-256 mismatch — artifact corrupted");
  sha_hex_ = obs::sha256_hex(base, len);
}

std::vector<nn::WeightView> ModelArtifact::weight_views() const {
  std::vector<nn::WeightView> views;
  views.reserve(tensors_.size());
  for (const TensorEntry& t : tensors_) {
    views.push_back(nn::WeightView{t.name, t.rows, t.cols, t.data});
  }
  return views;
}

std::string ModelArtifact::rebuild() const {
  std::vector<TensorSpec> specs;
  specs.reserve(tensors_.size());
  for (const TensorEntry& t : tensors_) {
    specs.push_back(TensorSpec{t.name, t.rows, t.cols, t.data});
  }
  return build_artifact(info_, meta_json_, scaler_, specs);
}

}  // namespace cpsguard::registry

// Versioned on-disk model store. Each published monitor becomes one
// immutable cpsguard.model.v1 artifact, `v00000001.model` onward, written
// via the atomic temp+rename path with write-fault retries and verified
// end-to-end (full parse + whole-file SHA-256) before publish returns —
// and again on every open, so a rotted artifact is rejected with a typed
// error instead of ever producing a wrong verdict.
//
// Lineage chains through the meta section exactly like checkpoint stores:
// every publish mints a fresh run_id and records the previous latest
// version's run_id as parent_run_id.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "registry/model_io.h"

namespace cpsguard::registry {

/// A registered version, described without loading its weights into params.
struct ModelRecord {
  std::uint64_t version = 0;
  std::string path;
  ArtifactInfo info;
  ModelMeta meta;
  std::string sha256;  // whole-file hex digest
};

class ModelRegistry {
 public:
  /// Opens (and creates if needed) the registry directory.
  explicit ModelRegistry(std::string dir);

  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// Atomic publish: serialize `mon` with lineage chained from the current
  /// latest version, write temp+rename under retry, then verify-on-open
  /// before returning the new version number. Crash- and chaos-safe: a torn
  /// or rotted write is retried until the artifact reads back verbatim.
  std::uint64_t publish(monitor::MlMonitor& mon, const std::string& display_name,
                        const std::string& config_fingerprint);

  /// Registered versions, ascending. Ignores foreign files in the dir.
  [[nodiscard]] std::vector<std::uint64_t> versions() const;
  /// Highest registered version, 0 when the registry is empty.
  [[nodiscard]] std::uint64_t latest() const;

  /// Verify-on-open: full structural parse + SHA-256 of the mapped file.
  /// Throws CpsError (ModelFormatError for corruption) — never returns a
  /// questionable artifact.
  [[nodiscard]] ModelArtifact open(std::uint64_t version) const;
  /// Parse header + meta of a version (verify included).
  [[nodiscard]] ModelRecord describe(std::uint64_t version) const;
  /// Open + bind: an inference-only monitor whose weights are zero-copy
  /// views into a mapping owned by the returned pair's artifact.
  struct LoadedModel {
    ModelArtifact artifact;  // owns the mmap; must outlive the monitor
    std::unique_ptr<monitor::MlMonitor> monitor;
  };
  [[nodiscard]] LoadedModel load(std::uint64_t version) const;

  /// Retained-version GC: delete every version except the newest `keep`
  /// (the latest is always retained). Returns the removed versions.
  std::vector<std::uint64_t> gc(std::size_t keep);

  [[nodiscard]] std::string path_of(std::uint64_t version) const;

 private:
  std::string dir_;
};

}  // namespace cpsguard::registry

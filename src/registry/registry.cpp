#include "registry/registry.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <optional>

#include "obs/fileio.h"
#include "obs/metrics.h"
#include "util/chaos.h"
#include "util/contracts.h"
#include "util/logging.h"
#include "util/retry.h"
#include "util/run_id.h"

namespace cpsguard::registry {

namespace fs = std::filesystem;

namespace {

struct RegistryMetrics {
  obs::Counter& published;
  obs::Counter& opened;
  obs::Counter& verify_failed;
  obs::Counter& gc_removed;

  static RegistryMetrics& get() {
    static RegistryMetrics m{
        obs::Registry::instance().counter("registry.published"),
        obs::Registry::instance().counter("registry.opened"),
        obs::Registry::instance().counter("registry.verify_failed"),
        obs::Registry::instance().counter("registry.gc_removed"),
    };
    return m;
  }
};

/// Strict `v%08u.model` filename → version, nullopt for foreign files.
std::optional<std::uint64_t> parse_version_filename(const std::string& name) {
  constexpr std::size_t kDigits = 8;
  const std::string suffix = ".model";
  if (name.size() != 1 + kDigits + suffix.size() || name[0] != 'v') {
    return std::nullopt;
  }
  if (name.compare(1 + kDigits, suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  std::uint64_t v = 0;
  for (std::size_t i = 1; i <= kDigits; ++i) {
    if (std::isdigit(static_cast<unsigned char>(name[i])) == 0) {
      return std::nullopt;
    }
    v = v * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  if (v == 0) return std::nullopt;
  return v;
}

}  // namespace

ModelRegistry::ModelRegistry(std::string dir) : dir_(std::move(dir)) {
  expects(!dir_.empty(), "model registry needs a directory");
  fs::create_directories(dir_);
}

std::string ModelRegistry::path_of(std::uint64_t version) const {
  char name[32];
  std::snprintf(name, sizeof(name), "v%08llu.model",
                static_cast<unsigned long long>(version));
  return dir_ + "/" + name;
}

std::vector<std::uint64_t> ModelRegistry::versions() const {
  std::vector<std::uint64_t> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    if (const auto v = parse_version_filename(entry.path().filename().string())) {
      out.push_back(*v);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t ModelRegistry::latest() const {
  const auto all = versions();
  return all.empty() ? 0 : all.back();
}

ModelArtifact ModelRegistry::open(std::uint64_t version) const {
  expects(version > 0, "model versions start at 1");
  const std::string path = path_of(version);
  std::error_code ec;
  if (!fs::exists(path, ec) || ec) {
    throw CpsError("model registry " + dir_ + ": version " +
                   std::to_string(version) + " not found");
  }
  try {
    ModelArtifact art = ModelArtifact::open(path);
    RegistryMetrics::get().opened.increment();
    return art;
  } catch (const ModelFormatError&) {
    RegistryMetrics::get().verify_failed.increment();
    throw;
  }
}

ModelRecord ModelRegistry::describe(std::uint64_t version) const {
  const ModelArtifact art = open(version);
  ModelRecord rec;
  rec.version = version;
  rec.path = path_of(version);
  rec.info = art.info();
  rec.meta = parse_model_meta(art);
  rec.sha256 = art.file_sha256_hex();
  return rec;
}

ModelRegistry::LoadedModel ModelRegistry::load(std::uint64_t version) const {
  LoadedModel out;
  out.artifact = open(version);
  out.monitor = load_monitor(out.artifact);
  return out;
}

std::uint64_t ModelRegistry::publish(monitor::MlMonitor& mon,
                                     const std::string& display_name,
                                     const std::string& config_fingerprint) {
  const std::uint64_t prev = latest();
  ModelMeta meta;
  meta.version = prev + 1;
  meta.run_id = util::fresh_run_id();
  meta.config_fingerprint = config_fingerprint;
  meta.display_name = display_name;
  meta.semantic = mon.config().semantic;
  meta.hidden = mon.config().effective_hidden();
  if (prev > 0) {
    try {
      meta.parent_run_id = describe(prev).meta.run_id;
    } catch (const CpsError& e) {
      // A rotted predecessor must not block publishing a fresh model; the
      // new version simply starts a new lineage.
      util::log_warn("model registry ", dir_, ": cannot read v", prev,
                     " for lineage (", e.what(), "), starting fresh");
    }
  }

  const std::string path = path_of(meta.version);
  const std::string bytes = build_model_artifact(mon, meta);
  // Write-verify loop: the atomic write retries transient IO faults, the
  // chaos corruption seam then gets a chance to rot the published file, and
  // verify-on-open catches it — rewrite until the artifact reads back
  // verbatim. Chaos faults are transient by construction, so this
  // converges; a persistently failing disk surfaces as the final throw.
  constexpr int kMaxPublishAttempts = 3;
  for (int attempt = 0;; ++attempt) {
    util::retry_call(util::RetryPolicy::for_file_io(), "registry.publish",
                     [&] { obs::atomic_write_file(path, bytes); });
    util::chaos().maybe_corrupt_file(path, path);
    try {
      const ModelArtifact art = ModelArtifact::open(path);
      if (art.size_bytes() != bytes.size()) {
        throw ModelFormatError("model artifact: readback size mismatch");
      }
      break;
    } catch (const ModelFormatError& e) {
      RegistryMetrics::get().verify_failed.increment();
      if (attempt + 1 >= kMaxPublishAttempts) throw;
      util::log_warn("model registry ", dir_, ": publish verify failed (",
                     e.what(), "), rewriting");
    }
  }
  RegistryMetrics::get().published.increment();
  util::log_info("model registry ", dir_, ": published v", meta.version, " (",
                 display_name, ", run ", meta.run_id, ")");
  return meta.version;
}

std::vector<std::uint64_t> ModelRegistry::gc(std::size_t keep) {
  expects(keep >= 1, "gc must retain at least the latest version");
  const auto all = versions();
  std::vector<std::uint64_t> removed;
  if (all.size() <= keep) return removed;
  for (std::size_t i = 0; i + keep < all.size(); ++i) {
    std::error_code ec;
    if (fs::remove(path_of(all[i]), ec) && !ec) {
      removed.push_back(all[i]);
      RegistryMetrics::get().gc_removed.increment();
    }
  }
  return removed;
}

}  // namespace cpsguard::registry

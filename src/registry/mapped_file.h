// Read-only mmap RAII wrapper: the zero-copy substrate of the model
// registry. A mapped artifact's tensor blobs are consumed in place by
// non-owning nn::Matrix views — no float is ever copied on load.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace cpsguard::registry {

class MappedFile {
 public:
  MappedFile() = default;
  /// Map `path` read-only (PROT_READ, MAP_PRIVATE). Throws CpsError when
  /// the file cannot be opened, stat'd, or mapped. An empty file maps to a
  /// null, zero-length view.
  explicit MappedFile(const std::string& path);
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  [[nodiscard]] const std::uint8_t* data() const {
    return static_cast<const std::uint8_t*>(addr_);
  }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool mapped() const { return addr_ != nullptr; }

 private:
  void reset() noexcept;

  void* addr_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace cpsguard::registry

// cpsguard.model.v1 — the deterministic binary model artifact format.
//
// Layout (all integers little-endian):
//
//   [0,   128)  fixed header
//     [0,   8)  magic "CPSGMDL1"
//     [8,  12)  u32 format_version (1)
//     [12, 16)  u32 arch (0 = MLP, 1 = LSTM, 2 = GRU)
//     [16, 20)  u32 window          [20, 24)  u32 features
//     [24, 28)  u32 classes         [28, 32)  u32 tensor_count
//     [32, 48)  u64 meta_off,   u64 meta_len      (lineage JSON)
//     [48, 64)  u64 scaler_off, u64 scaler_len    (StandardScaler stream)
//     [64, 80)  u64 dir_off,    u64 dir_len       (tensor directory)
//     [80, 96)  u64 blob_off,   u64 blob_len      (64-aligned f32 blobs)
//     [96, 104) u64 file_len    [104, 128) zero padding
//   meta JSON · scaler bytes · tensor directory   (contiguous)
//   zero pad to the next 64-byte boundary
//   tensor blobs, each 64-byte aligned, zero pad between them
//   [len-32, len)  raw SHA-256 over every preceding byte
//
// Directory entry: u32 name_len, name bytes, u32 rows, u32 cols,
// u64 rel_off (blob-relative, 64-aligned), u64 byte_len (= rows·cols·4).
//
// The layout is *canonical* — section offsets chain exactly, padding must
// be zero, blobs pack in directory order — so an accepted artifact
// re-encodes bit-identically (`rebuild() == bytes`; fuzz target "model"
// enforces it) and a publish of identical weights is byte-reproducible.
// Validation runs structural checks first and the whole-file SHA-256 last;
// any deviation throws the typed ModelFormatError, never a wrong model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "monitor/ml_monitor.h"
#include "nn/serialize.h"
#include "registry/mapped_file.h"
#include "util/error.h"

namespace cpsguard::registry {

/// Malformed or corrupted cpsguard.model.v1 bytes: bad magic, truncation,
/// non-canonical layout, implausible dimensions, or a SHA-256 mismatch.
class ModelFormatError : public CpsError {
 public:
  using CpsError::CpsError;
};

inline constexpr char kModelMagic[8] = {'C', 'P', 'S', 'G', 'M', 'D', 'L', '1'};
inline constexpr const char* kModelSchema = "cpsguard.model.v1";
inline constexpr std::uint32_t kModelFormatVersion = 1;
inline constexpr std::size_t kModelHeaderSize = 128;
inline constexpr std::size_t kModelBlobAlign = 64;
inline constexpr std::size_t kModelShaSize = 32;

/// Fixed-header identity of the serialized model.
struct ArtifactInfo {
  monitor::Arch arch = monitor::Arch::kMlp;
  int window = 0;
  int features = 0;
  int classes = 0;
};

/// One tensor, parsed: name + shape + a pointer into the backing buffer.
struct TensorEntry {
  std::string name;
  int rows = 0;
  int cols = 0;
  const float* data = nullptr;
};

/// Writer input: a named tensor to pack into the blob section.
struct TensorSpec {
  std::string name;
  int rows = 0;
  int cols = 0;
  const float* data = nullptr;
};

/// Serialize one canonical cpsguard.model.v1 byte string (header, sections,
/// aligned blobs, SHA-256 trailer).
std::string build_artifact(const ArtifactInfo& info, std::string_view meta_json,
                           std::string_view scaler_bytes,
                           const std::vector<TensorSpec>& tensors);

/// A parsed-and-verified artifact plus the buffer backing its tensor views.
/// `open` maps the file read-only (zero-copy); `parse` copies the bytes into
/// an owned 64-byte-aligned buffer (fuzzing, corruption tests). Tensor data
/// pointers alias the backing storage, so the ModelArtifact must outlive any
/// monitor bound to it.
class ModelArtifact {
 public:
  ModelArtifact() = default;

  static ModelArtifact open(const std::string& path);
  static ModelArtifact parse(std::string_view bytes);

  [[nodiscard]] const ArtifactInfo& info() const { return info_; }
  [[nodiscard]] std::string_view meta_json() const { return meta_json_; }
  [[nodiscard]] std::string_view scaler_bytes() const { return scaler_; }
  [[nodiscard]] const std::vector<TensorEntry>& tensors() const {
    return tensors_;
  }
  /// Hex SHA-256 of the whole file (header through trailer) — the
  /// registry's integrity handle for lineage records.
  [[nodiscard]] const std::string& file_sha256_hex() const { return sha_hex_; }
  [[nodiscard]] std::size_t size_bytes() const { return len_; }

  /// Non-owning weight views over the blob section, in directory order —
  /// feed straight into nn::bind_params / monitor::MlMonitor::bind.
  [[nodiscard]] std::vector<nn::WeightView> weight_views() const;

  /// Re-encode from the parsed sections. Canonical layout guarantees this
  /// is bit-identical to the accepted input (fuzz invariant).
  [[nodiscard]] std::string rebuild() const;

 private:
  void verify_and_index(const std::uint8_t* base, std::size_t len);

  MappedFile map_;                    // open() backing
  std::vector<std::uint64_t> owned_;  // parse() backing (64-byte aligned)
  std::size_t len_ = 0;

  ArtifactInfo info_;
  std::string_view meta_json_;
  std::string_view scaler_;
  std::vector<TensorEntry> tensors_;
  std::string sha_hex_;
};

}  // namespace cpsguard::registry

// Monitor ⇄ artifact bridge: serialize a trained monitor into one
// cpsguard.model.v1 byte string (with lineage metadata), and bind a parsed
// artifact back into an inference-only MlMonitor whose weights are
// zero-copy views over the artifact's blob section.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "monitor/ml_monitor.h"
#include "registry/artifact.h"

namespace cpsguard::registry {

/// Lineage + provenance carried in the artifact's meta JSON section.
struct ModelMeta {
  std::uint64_t version = 0;      // registry version number
  std::string run_id;             // fresh per publish (util::fresh_run_id)
  std::string parent_run_id;      // previous latest version's run_id
  std::string config_fingerprint; // experiment config hash at train time
  std::string display_name;       // e.g. "MLP-Custom"
  bool semantic = false;
  std::vector<int> hidden;        // classifier hidden sizes
};

/// Serialize monitor + meta into canonical cpsguard.model.v1 bytes.
/// Non-const monitor: reaching the classifier params requires it.
std::string build_model_artifact(monitor::MlMonitor& mon,
                                 const ModelMeta& meta);

/// Parse the meta JSON section; throws ModelFormatError when it is not the
/// JSON this writer produces (wrong schema tag, missing or mistyped keys).
ModelMeta parse_model_meta(const ModelArtifact& art);

/// Reconstruct an inference-only monitor over the artifact's storage: the
/// scaler loads from the scaler section, every weight binds as a non-owning
/// view into the blob section (zero-copy). `art` must outlive the monitor.
std::unique_ptr<monitor::MlMonitor> load_monitor(const ModelArtifact& art);

}  // namespace cpsguard::registry

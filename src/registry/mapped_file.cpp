#include "registry/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/error.h"

namespace cpsguard::registry {

MappedFile::MappedFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw CpsError("cannot open model artifact " + path + ": " +
                   std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw CpsError("cannot stat model artifact " + path + ": " +
                   std::strerror(err));
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ > 0) {
    void* addr = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      throw CpsError("cannot mmap model artifact " + path + ": " +
                     std::strerror(err));
    }
    addr_ = addr;
  }
  // The mapping outlives the descriptor; closing here leaks nothing.
  ::close(fd);
}

MappedFile::~MappedFile() { reset(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : addr_(std::exchange(other.addr_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    reset();
    addr_ = std::exchange(other.addr_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

void MappedFile::reset() noexcept {
  if (addr_ != nullptr) ::munmap(addr_, size_);
  addr_ = nullptr;
  size_ = 0;
}

}  // namespace cpsguard::registry

// Typed error hierarchy for everything that rejects hostile or malformed
// input. The robustness contract enforced by src/fuzz is:
//
//   every ingestion surface (CLI flags, config files, CSV, JSON, STL
//   formulas, checkpoint records, serialized models) either succeeds or
//   throws a CpsError (or ContractViolation) — it never invokes UB, never
//   aborts, and never silently accepts-then-corrupts.
//
// CpsError derives from std::runtime_error so existing call sites and tests
// that catch std::runtime_error keep working; new code should catch the
// typed classes.
#pragma once

#include <stdexcept>
#include <string>

namespace cpsguard {

/// Base class for all recoverable cpsguard errors caused by bad input or a
/// failed environment interaction (as opposed to programming errors, which
/// are ContractViolation).
class CpsError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A string failed to parse as the requested type (wrong syntax, trailing
/// garbage, out of range). Carries the offending text and, when known, the
/// key/flag it was supplied for.
class ParseError : public CpsError {
 public:
  using CpsError::CpsError;
};

}  // namespace cpsguard

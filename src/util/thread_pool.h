// Fixed-size thread pool plus a blocking parallel_for used to fan experiment
// sweeps (per-patient campaigns, per-model attacks, per-sweep-point
// evaluations) across cores. parallel_for runs on a lazily-initialized
// process-wide shared pool so fan-outs pay thread spawn/teardown once per
// process, not once per call.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/deadline.h"
#include "util/retry.h"

namespace cpsguard::util {

/// Failure-handling knobs for one submitted task.
struct TaskOptions {
  /// max_attempts > 1 re-runs the task on retryable errors (transient
  /// faults, injected chaos) with the policy's deterministic backoff.
  RetryPolicy retry{.max_attempts = 1};
  /// Soft deadline: an already-expired task is skipped (it fails with
  /// DeadlineExceeded without running); while running, the task can poll
  /// util::check_deadline() cooperatively. Unset → no deadline.
  Deadline deadline;
  /// Label for retry backoff derivation, chaos keys, and error messages.
  std::string site = "pool.task";
};

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. A throwing task does not terminate its worker: the
  /// first exception is captured and rethrown by the next wait_idle() call;
  /// later ones are counted (see wait_idle) rather than silently dropped.
  /// Exceptions from tasks never waited on are discarded at destruction.
  void submit(std::function<void()> task);

  /// Enqueue with retry/deadline handling wrapped around the task.
  void submit(std::function<void()> task, TaskOptions options);

  /// Block until every submitted task has finished, then rethrow the first
  /// exception any of them threw (clearing it, so the pool is reusable).
  /// Failures beyond the first are aggregated instead of vanishing: their
  /// count is added to the `threadpool.failures_suppressed` obs counter and
  /// to suppressed_failures_total(), and the first error's message is what
  /// propagates.
  void wait_idle();

  /// Cumulative count of task failures this pool dropped after the first
  /// one in each wait_idle() cycle.
  [[nodiscard]] std::uint64_t suppressed_failures_total() const;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::exception_ptr first_error_;
  std::size_t failed_tasks_ = 0;  // failures since the last wait_idle rethrow
  std::uint64_t suppressed_total_ = 0;
  mutable std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// The process-wide pool parallel_for fans out on, lazily constructed with
/// one worker per hardware thread on first use and reused for the rest of
/// the process (no per-call spawn/teardown).
ThreadPool& shared_pool();

/// Process-wide cap on how many shards a parallel_for may run concurrently
/// (counting the calling thread). 0 restores the default (pool-sized
/// fan-outs); 1 forces fully serial inline execution — the knob the golden
/// determinism suite and the benches' --threads flag use. Outputs are
/// bit-identical at any setting; only scheduling changes.
void set_max_parallelism(std::size_t n);
[[nodiscard]] std::size_t max_parallelism();

/// Parallelism the next top-level parallel_for would actually get: the
/// set_max_parallelism() cap clamped to hardware concurrency (the shared
/// pool's size). Computed WITHOUT forcing the lazily-constructed shared
/// pool into existence — callers deciding whether fan-out is worth it
/// (e.g. eval::batched_predict_proba) must not spawn a pool a serial run
/// will never use.
[[nodiscard]] std::size_t effective_parallelism();

/// True once shared_pool() has been constructed. Diagnostic/test hook for
/// the "serial callers never instantiate the pool" contract.
[[nodiscard]] bool shared_pool_initialized();

/// True when the calling thread is a shared-pool worker or is currently
/// executing a parallel_for shard — i.e. when a further parallel_for would
/// run inline instead of fanning out again.
bool in_parallel_region();

/// Run fn(i) for i in [0, n) across the shared pool (the calling thread
/// participates too); rethrows the first captured exception after all
/// iterations complete. Nested calls — from inside a shard or from a pool
/// worker — run inline, so parallel sections can safely call parallel code
/// without deadlock or oversubscription. `max_shards` caps the concurrent
/// shards including the caller: 0 uses every pool worker, 1 runs inline
/// (useful under sanitizers and in tests). The effective cap is the smaller
/// of `max_shards` and the process-wide set_max_parallelism() value.
void parallel_for(int n, const std::function<void(int)>& fn,
                  std::size_t max_shards = 0);

}  // namespace cpsguard::util

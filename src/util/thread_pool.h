// Fixed-size thread pool plus a blocking parallel_for used to fan experiment
// sweeps (per-patient campaigns, per-model attacks) across cores.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cpsguard::util {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; tasks must not throw (exceptions terminate the pool's
  /// worker). Wrap fallible work and stash errors yourself.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Run fn(i) for i in [0, n) on a transient pool; rethrows the first captured
/// exception after all iterations complete. `threads == 0` → all cores;
/// `threads == 1` runs inline (useful under sanitizers and in tests).
void parallel_for(int n, const std::function<void(int)>& fn, std::size_t threads = 0);

}  // namespace cpsguard::util

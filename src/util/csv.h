// Minimal CSV writing/reading used by the bench harness to dump the series
// behind each reproduced table/figure.
#pragma once

#include <string>
#include <vector>

namespace cpsguard::util {

/// Row-oriented CSV writer. Values are quoted only when necessary.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  /// Append one row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with 6 significant digits.
  static std::string num(double v);

  [[nodiscard]] std::string to_string() const;

  /// Write to `path` atomically (temp + rename, bounded retries); throws
  /// obs::IoError once retries are exhausted. On failure `path` is left
  /// untouched, never truncated.
  void write(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parse CSV text into rows of fields. Handles quoted fields with embedded
/// commas/quotes/newlines; bare '\r' outside quotes is stripped (CRLF
/// tolerance), which is why the writer quotes any field containing one.
std::vector<std::vector<std::string>> parse_csv(const std::string& text);

/// Read and parse a CSV file; throws CpsError if unreadable.
std::vector<std::vector<std::string>> read_csv(const std::string& path);

}  // namespace cpsguard::util

// Minimal key=value config file reader, so experiment sweeps can be driven
// from checked-in files instead of long command lines.
//
// Format: one `key = value` per line; `#` starts a comment; blank lines
// ignored; keys are dotted paths by convention ("campaign.patients").
#pragma once

#include <map>
#include <string>

namespace cpsguard::util {

class ConfigFile {
 public:
  /// Parse from text; throws CpsError with a line number on malformed
  /// input or duplicate keys.
  static ConfigFile parse(const std::string& text);
  /// Read and parse a file; throws CpsError if unreadable.
  static ConfigFile load(const std::string& path);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& def) const;
  /// Typed getters parse strictly (locale-independent, no trailing
  /// garbage): "threads = 4x" is a ParseError naming the key.
  [[nodiscard]] int get_int(const std::string& key, int def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;

  [[nodiscard]] std::size_t size() const { return values_.size(); }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace cpsguard::util

#include "util/json.h"

#include <cmath>
#include <cstdio>

#include "util/contracts.h"

namespace cpsguard::util {

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::str(std::string value) {
  Json j;
  j.kind_ = Kind::kString;
  j.str_ = std::move(value);
  return j;
}

Json Json::number(double value) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.num_ = value;
  return j;
}

Json Json::integer(long value) {
  Json j;
  j.kind_ = Kind::kInteger;
  j.int_ = value;
  return j;
}

Json Json::boolean(bool value) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = value;
  return j;
}

Json Json::null() { return Json(); }

Json& Json::set(const std::string& key, Json value) {
  expects(is_object(), "set() requires an object");
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  expects(is_array(), "push() requires an array");
  items_.push_back(std::move(value));
  return *this;
}

std::string Json::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? "\n" + std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ')
                 : "";
  const std::string close_pad =
      indent > 0 ? "\n" + std::string(static_cast<std::size_t>(indent * depth), ' ')
                 : "";
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInteger:
      out += std::to_string(int_);
      break;
    case Kind::kNumber: {
      if (std::isfinite(num_)) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.9g", num_);
        out += buf;
      } else {
        out += "null";  // JSON has no NaN/Inf
      }
      break;
    }
    case Kind::kString:
      out += '"';
      out += escape(str_);
      out += '"';
      break;
    case Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out += ',';
        first = false;
        out += pad;
        out += '"';
        out += escape(k);
        out += "\":";
        if (indent > 0) out += ' ';
        v.dump_to(out, indent, depth + 1);
      }
      if (!members_.empty()) out += close_pad;
      out += '}';
      break;
    }
    case Kind::kArray: {
      out += '[';
      bool first = true;
      for (const auto& v : items_) {
        if (!first) out += ',';
        first = false;
        out += pad;
        v.dump_to(out, indent, depth + 1);
      }
      if (!items_.empty()) out += close_pad;
      out += ']';
      break;
    }
  }
}

}  // namespace cpsguard::util

#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "util/contracts.h"
#include "util/parse.h"

namespace cpsguard::util {

namespace {

// Nesting budget: hostile input like "[[[[…" must hit a typed error, not
// exhaust the parser's stack (found by fuzz target "json").
constexpr int kJsonMaxDepth = 256;

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw JsonParseError(msg + " (at offset " + std::to_string(pos_) + ")");
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool eat_keyword(const char* kw) {
    const std::size_t len = std::char_traits<char>::length(kw);
    if (text_.compare(pos_, len, kw) != 0) return false;
    pos_ += len;
    return true;
  }

  Json value() {
    if (++depth_ > kJsonMaxDepth) fail("JSON nested deeper than 256 levels");
    Json v = value_inner();
    --depth_;
    return v;
  }

  Json value_inner() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return Json::str(string());
      case 't':
        if (eat_keyword("true")) return Json::boolean(true);
        fail("invalid literal");
      case 'f':
        if (eat_keyword("false")) return Json::boolean(false);
        fail("invalid literal");
      case 'n':
        if (eat_keyword("null")) return Json::null();
        fail("invalid literal");
      default: return number();
    }
  }

  Json object() {
    expect('{');
    Json obj = Json::object();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      if (peek() != '"') fail("expected a string key");
      std::string key = string();
      expect(':');
      obj.set(key, value());
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json array() {
    expect('[');
    Json arr = Json::array();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push(value());
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  unsigned hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9') {
        cp |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        cp |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        cp |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        --pos_;
        fail("bad hex digit in \\u escape");
      }
    }
    return cp;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control byte in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = hex4();
          if (cp >= 0xd800 && cp <= 0xdbff) {  // high surrogate
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              const unsigned lo = hex4();
              if (lo < 0xdc00 || lo > 0xdfff) fail("unpaired surrogate");
              cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
            } else {
              fail("unpaired surrogate");
            }
          } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  bool digit_at(std::size_t p) const {
    return p < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[p])) != 0;
  }

  // Exact JSON number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?.
  // The laxer "any mix of digits . e + -" scan this replaces accepted
  // non-JSON spellings like "1.", "+1" and "1e" because try_parse_double
  // tolerates them (it serves CLI flags too, where "+1" is fine).
  Json number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (!digit_at(pos_)) fail("expected a JSON value");
    if (text_[pos_] == '0') {
      ++pos_;  // a leading zero takes no more digits; "01" is two values
    } else {
      while (digit_at(pos_)) ++pos_;
    }
    bool is_integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_integral = false;
      ++pos_;
      if (!digit_at(pos_)) fail("expected digits after decimal point");
      while (digit_at(pos_)) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digit_at(pos_)) fail("expected digits in exponent");
      while (digit_at(pos_)) ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (is_integral) {
      if (const auto v = try_parse_int(token)) {
        return Json::integer(static_cast<long>(*v));
      }
      // Integral but wider than long: fall through to double.
    }
    const auto v = try_parse_double(token);
    // The grammar above rules out "inf"/"nan" spellings; out-of-range
    // (e.g. "1e999") is the only failure left.
    if (!v) fail("out-of-range number");
    return Json::number(*v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::str(std::string value) {
  Json j;
  j.kind_ = Kind::kString;
  j.str_ = std::move(value);
  return j;
}

Json Json::number(double value) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.num_ = value;
  return j;
}

Json Json::integer(long value) {
  Json j;
  j.kind_ = Kind::kInteger;
  j.int_ = value;
  return j;
}

Json Json::boolean(bool value) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = value;
  return j;
}

Json Json::null() { return Json(); }

Json& Json::set(const std::string& key, Json value) {
  expects(is_object(), "set() requires an object");
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  expects(is_array(), "push() requires an array");
  items_.push_back(std::move(value));
  return *this;
}

const Json* Json::get(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::string& Json::as_str() const {
  expects(is_string(), "as_str() requires a string value");
  return str_;
}

long Json::as_int() const {
  expects(is_integer(), "as_int() requires an integer value");
  return int_;
}

bool Json::as_bool() const {
  expects(is_bool(), "as_bool() requires a boolean value");
  return bool_;
}

Json Json::parse(const std::string& text) { return JsonParser(text).parse(); }

std::string Json::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? "\n" + std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ')
                 : "";
  const std::string close_pad =
      indent > 0 ? "\n" + std::string(static_cast<std::size_t>(indent * depth), ' ')
                 : "";
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInteger:
      out += std::to_string(int_);
      break;
    case Kind::kNumber: {
      if (std::isfinite(num_)) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.9g", num_);
        out += buf;
      } else {
        out += "null";  // JSON has no NaN/Inf
      }
      break;
    }
    case Kind::kString:
      out += '"';
      out += escape(str_);
      out += '"';
      break;
    case Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out += ',';
        first = false;
        out += pad;
        out += '"';
        out += escape(k);
        out += "\":";
        if (indent > 0) out += ' ';
        v.dump_to(out, indent, depth + 1);
      }
      if (!members_.empty()) out += close_pad;
      out += '}';
      break;
    }
    case Kind::kArray: {
      out += '[';
      bool first = true;
      for (const auto& v : items_) {
        if (!first) out += ',';
        first = false;
        out += pad;
        v.dump_to(out, indent, depth + 1);
      }
      if (!items_.empty()) out += close_pad;
      out += ']';
      break;
    }
  }
}

}  // namespace cpsguard::util

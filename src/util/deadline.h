// Cooperative soft deadlines for long-running campaign work.
//
// A Deadline is a point in time; expensive loop bodies (sweep points, pool
// tasks) poll check_deadline() and bail out with DeadlineExceeded when the
// budget is gone. "Soft" because nothing is preempted: work stops at the
// next poll, with everything completed so far already checkpointed — so an
// expired campaign resumes instead of recomputing (see core::CheckpointStore).
//
// Two scopes compose: a per-task deadline installed by the thread pool for
// tasks submitted with TaskOptions, and a process-wide campaign deadline
// (bench --deadline-s). check_deadline() honors whichever expires first.
#pragma once

#include <chrono>
#include <optional>
#include <stdexcept>
#include <string>

namespace cpsguard::util {

/// Thrown when a deadline has passed. Deliberately NOT retryable: retrying
/// cannot create time.
class DeadlineExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Deadline {
 public:
  Deadline() = default;  // unset: never expires

  [[nodiscard]] static Deadline after(std::chrono::nanoseconds budget);
  [[nodiscard]] static Deadline after_seconds(double seconds);

  [[nodiscard]] bool set() const { return at_.has_value(); }
  [[nodiscard]] bool expired() const;
  /// Seconds left; +infinity when unset, can be negative once expired.
  [[nodiscard]] double remaining_seconds() const;

  /// Throw DeadlineExceeded (naming `site`) if expired; no-op otherwise.
  void check(const std::string& site) const;

 private:
  std::optional<std::chrono::steady_clock::time_point> at_;
};

/// Process-wide campaign deadline. Pass a default-constructed Deadline to
/// clear it. Thread-safe.
void set_global_deadline(Deadline d);
[[nodiscard]] Deadline global_deadline();

/// The cooperative watchdog poll: throws DeadlineExceeded if the current
/// pool task's deadline (if any) or the global campaign deadline (if any)
/// has passed. Cheap enough for per-sweep-point / per-batch call sites.
void check_deadline(const std::string& site);

namespace detail {
/// RAII installer for the calling thread's task deadline (thread pool use).
class ScopedTaskDeadline {
 public:
  explicit ScopedTaskDeadline(const Deadline& d);
  ~ScopedTaskDeadline();
  ScopedTaskDeadline(const ScopedTaskDeadline&) = delete;
  ScopedTaskDeadline& operator=(const ScopedTaskDeadline&) = delete;

 private:
  Deadline saved_;
};
}  // namespace detail

}  // namespace cpsguard::util

// Deterministic chaos harness: env-gated fault injection at the recovery
// seams (pool/sweep task bodies, atomic file writes, checkpoint records) so
// the failure-recovery paths are continuously exercised, not just written.
//
// Every decision is a pure hash of (seed, site, key) — no clock, no global
// RNG — so a chaos run is reproducible and scheduling-independent as long
// as call sites pass stable keys. Faults are transient by construction:
// they only fire on retry attempt 0 (util::current_retry_attempt()), so a
// single retry always clears an injected fault and chaos can run under the
// full test suite without ever failing a campaign.
//
// Enable with CPSGUARD_CHAOS=1. Knobs (all optional):
//   CPSGUARD_CHAOS_SEED          decision seed            (default 1337)
//   CPSGUARD_CHAOS_TASK_RATE     task-throw probability   (default 0.2)
//   CPSGUARD_CHAOS_IO_RATE       short-write probability  (default 0.2)
//   CPSGUARD_CHAOS_CORRUPT_RATE  checkpoint-corruption probability (0.2)
#pragma once

#include <cstdint>
#include <mutex>
#include <set>
#include <string>

#include "util/retry.h"

namespace cpsguard::util {

/// The injected task failure; retryable so wrapped call sites recover.
class ChaosError : public RetryableError {
 public:
  using RetryableError::RetryableError;
};

struct ChaosConfig {
  bool enabled = false;
  std::uint64_t seed = 1337;
  double task_throw_rate = 0.0;
  double io_fail_rate = 0.0;
  double corrupt_rate = 0.0;
  /// Fire each fault at most once per (seam, key) per process and only on
  /// retry attempt 0, guaranteeing recovery always converges.
  bool transient_only = true;
};

class ChaosInjector {
 public:
  /// Process singleton; first use reads the CPSGUARD_CHAOS* environment.
  static ChaosInjector& instance();

  /// Parse the CPSGUARD_CHAOS* environment into a config (what the
  /// constructor applies). Strict, locale-independent number parsing: a
  /// malformed rate or seed logs a warning and keeps the default — never a
  /// silent zero the way the old atof-based parsing could produce under a
  /// comma-decimal locale. Exposed for tests.
  [[nodiscard]] static ChaosConfig config_from_env();

  /// Replace the configuration (tests). Installs/removes the obs write
  /// fault hook to match io_fail_rate.
  void configure(const ChaosConfig& config);
  [[nodiscard]] ChaosConfig config() const;
  [[nodiscard]] bool enabled() const;

  /// Pure decision: same (seed, site, key, rate) → same verdict, always
  /// false when disabled. Exposed for tests and custom seams.
  [[nodiscard]] bool should_inject(const std::string& site,
                                   const std::string& key, double rate) const;

  /// Task seam: throw ChaosError with probability task_throw_rate. Call it
  /// inside a retry_call body; transient_only keeps retries clean.
  void maybe_throw(const std::string& site, const std::string& key);

  /// Corruption seam: with probability corrupt_rate, flip a byte of (or
  /// truncate) the file at `path`, as bit rot / a torn checkpoint would.
  /// Returns true when the file was damaged.
  bool maybe_corrupt_file(const std::string& path, const std::string& key);

 private:
  ChaosInjector();
  void install_io_hook_locked();
  /// True the first time this (site, key) is seen since configure().
  bool first_occurrence(const std::string& site, const std::string& key);

  mutable std::mutex mutex_;
  ChaosConfig config_;
  std::set<std::string> fired_;  // transient_only: seams already fired
};

/// Shorthand for ChaosInjector::instance().
ChaosInjector& chaos();

}  // namespace cpsguard::util

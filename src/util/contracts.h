// Lightweight contract checks in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects()", I.8 "Prefer Ensures()"). We use plain functions
// rather than macros (ES.31) and throw on violation so tests can assert on
// contract failures instead of aborting the process.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace cpsguard {

/// Error thrown when a precondition/postcondition/invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const std::string& msg,
                                       const std::source_location& loc) {
  throw ContractViolation(std::string(kind) + " failed at " +
                          loc.file_name() + ":" + std::to_string(loc.line()) +
                          " (" + loc.function_name() + "): " + msg);
}
}  // namespace detail

// Two overloads each: the const char* form (string literals — virtually
// every call site) defers all string building to the failure path, so a
// passing check costs one branch and zero allocations — checks stay free
// on per-cycle hot paths (feature fill, ring windows, pool submits). The
// std::string form serves call sites that compose a message; composing it
// already allocated, so there is nothing to defer.

/// Precondition check: callers must satisfy `cond`.
inline void expects(bool cond, const char* msg = "precondition",
                    const std::source_location loc = std::source_location::current()) {
  if (!cond) detail::contract_fail("Expects", msg, loc);
}
inline void expects(bool cond, const std::string& msg,
                    const std::source_location loc = std::source_location::current()) {
  if (!cond) detail::contract_fail("Expects", msg, loc);
}

/// Postcondition / invariant check: the implementation must satisfy `cond`.
inline void ensures(bool cond, const char* msg = "postcondition",
                    const std::source_location loc = std::source_location::current()) {
  if (!cond) detail::contract_fail("Ensures", msg, loc);
}
inline void ensures(bool cond, const std::string& msg,
                    const std::source_location loc = std::source_location::current()) {
  if (!cond) detail::contract_fail("Ensures", msg, loc);
}

}  // namespace cpsguard

#include "util/parse.h"

#include <cctype>
#include <charconv>
#include <limits>

namespace cpsguard::util {

namespace {

std::string_view strip_ws(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

template <typename T>
std::optional<T> from_chars_all(std::string_view s) {
  T value{};
  const char* first = s.data();
  const char* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

[[noreturn]] void fail(std::string_view text, std::string_view context,
                       const char* kind) {
  throw ParseError("cannot parse \"" + std::string(context) + "\": \"" +
                   std::string(text) + "\" is not " + kind);
}

}  // namespace

std::optional<long long> try_parse_int(std::string_view text) {
  const std::string_view s = strip_ws(text);
  if (s.empty()) return std::nullopt;
  return from_chars_all<long long>(s);
}

std::optional<std::uint64_t> try_parse_u64(std::string_view text) {
  const std::string_view s = strip_ws(text);
  // from_chars<unsigned> accepts no sign at all, so "-1" is rejected here
  // rather than wrapping around the way std::stoull does.
  if (s.empty() || s.front() == '+' || s.front() == '-') return std::nullopt;
  return from_chars_all<std::uint64_t>(s);
}

std::optional<double> try_parse_double(std::string_view text) {
  std::string_view s = strip_ws(text);
  if (s.empty()) return std::nullopt;
  // std::from_chars(double) accepts "inf"/"nan" spellings but no leading
  // '+'; normalize that one divergence from the stod-era surface.
  bool negate = false;
  if (s.front() == '+') {
    s.remove_prefix(1);
    if (s.empty() || s.front() == '+' || s.front() == '-') return std::nullopt;
  } else if (s.front() == '-') {
    negate = true;
    s.remove_prefix(1);
    if (s.empty() || s.front() == '+' || s.front() == '-') return std::nullopt;
  }
  if (iequals(s, "inf") || iequals(s, "infinity")) {
    const double inf = std::numeric_limits<double>::infinity();
    return negate ? -inf : inf;
  }
  if (iequals(s, "nan")) return std::numeric_limits<double>::quiet_NaN();
  double value = 0.0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  // Out-of-double-range magnitudes are rejected, not saturated: a config
  // value of 1e999 is a typo, not a request for infinity (spell "inf" for
  // that).
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return negate ? -value : value;
}

long long parse_int(std::string_view text, std::string_view context) {
  const auto v = try_parse_int(text);
  if (!v) fail(text, context, "an integer");
  return *v;
}

std::uint64_t parse_u64(std::string_view text, std::string_view context) {
  const auto v = try_parse_u64(text);
  if (!v) fail(text, context, "an unsigned integer");
  return *v;
}

double parse_double(std::string_view text, std::string_view context) {
  const auto v = try_parse_double(text);
  if (!v) fail(text, context, "a number");
  return *v;
}

int parse_int32(std::string_view text, std::string_view context) {
  const long long v = parse_int(text, context);
  if (v < std::numeric_limits<int>::min() || v > std::numeric_limits<int>::max()) {
    fail(text, context, "a 32-bit integer");
  }
  return static_cast<int>(v);
}

}  // namespace cpsguard::util

#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace cpsguard::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return min_; }
double RunningStats::max() const { return max_; }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double mean(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double stddev(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.stddev();
}

double mean_f(std::span<const float> xs) {
  RunningStats s;
  for (float x : xs) s.add(x);
  return s.mean();
}

double stddev_f(std::span<const float> xs) {
  RunningStats s;
  for (float x : xs) s.add(x);
  return s.stddev();
}

double quantile(std::vector<double> xs, double q) {
  expects(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  if (xs.empty()) return 0.0;
  // NaN-last ordering: plain operator< with a NaN present breaks std::sort's
  // strict weak ordering (UB). Finite-only inputs sort identically; NaNs
  // sink to the top quantiles instead of scrambling the array.
  std::sort(xs.begin(), xs.end(), [](double a, double b) {
    if (std::isnan(a)) return false;
    if (std::isnan(b)) return true;
    return a < b;
  });
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

Histogram::Histogram(double lo, double hi, int bins) : lo_(lo), hi_(hi) {
  expects(bins > 0, "histogram needs at least one bin");
  expects(hi > lo, "histogram range must be non-empty");
  counts_.assign(static_cast<std::size_t>(bins), 0);
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<long>(frac * static_cast<double>(counts_.size()));
  bin = std::clamp(bin, 0L, static_cast<long>(counts_.size()) - 1L);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::count(int bin) const {
  expects(bin >= 0 && bin < bins(), "bin out of range");
  return counts_[static_cast<std::size_t>(bin)];
}

double Histogram::bin_center(int bin) const {
  expects(bin >= 0 && bin < bins(), "bin out of range");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

double Histogram::density(int bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

}  // namespace cpsguard::util

// Tiny command-line flag parser for the bench/example binaries.
// Supports `--name value` and `--name=value`; unknown flags are an error so
// typos in sweep scripts fail loudly.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace cpsguard::util {

class Cli {
 public:
  /// Parses argv. Throws CpsError on a malformed flag.
  Cli(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name, const std::string& def) const;
  /// Typed getters parse strictly (locale-independent, no trailing garbage:
  /// "--threads=4x" is a ParseError naming the flag, not a silent 4).
  [[nodiscard]] int get_int(const std::string& name, int def) const;
  [[nodiscard]] double get_double(const std::string& name, double def) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool def) const;

  /// Names of all flags that were provided but never queried; used by
  /// binaries to reject typos after all get() calls are done.
  [[nodiscard]] std::vector<std::string> unused() const;

  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> used_;
};

}  // namespace cpsguard::util

#include "util/thread_pool.h"

#include <atomic>
#include <exception>

#include "util/contracts.h"

namespace cpsguard::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  expects(static_cast<bool>(task), "task must be callable");
  {
    const std::scoped_lock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err;
    std::swap(err, first_error_);
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      const std::scoped_lock lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(int n, const std::function<void(int)>& fn, std::size_t threads) {
  expects(n >= 0, "parallel_for size must be non-negative");
  if (n == 0) return;
  if (threads == 1 || n == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(threads);
  std::atomic<int> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const std::size_t shards = std::min<std::size_t>(pool.size(), static_cast<std::size_t>(n));
  for (std::size_t s = 0; s < shards; ++s) {
    pool.submit([&] {
      for (;;) {
        const int i = next.fetch_add(1);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          const std::scoped_lock lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace cpsguard::util

#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <exception>

#include "obs/metrics.h"
#include "util/contracts.h"
#include "util/logging.h"

namespace cpsguard::util {

namespace {

// Set for shared-pool workers (for their whole lifetime) and for any thread
// while it executes a parallel_for shard. Either way, a parallel_for issued
// from such a thread must run inline: fanning out again would queue work
// behind a blocked worker (deadlock risk on small pools) and oversubscribe
// the machine.
thread_local bool tl_in_parallel_region = false;

std::atomic<std::size_t> g_max_parallelism{0};
std::atomic<bool> g_shared_pool_started{false};

// Pool/fan-out telemetry, resolved once. Constructing this (and therefore
// the Registry singleton) before any ThreadPool spawns workers guarantees
// the registry outlives every pool: workers may record metrics right up to
// the join in ~ThreadPool.
struct PoolMetrics {
  obs::Counter& tasks_submitted;
  obs::Counter& tasks_executed;
  obs::Histogram& task_seconds;
  obs::Histogram& idle_seconds;
  obs::Counter& parallel_for_calls;
  obs::Counter& parallel_for_inline;
  obs::Histogram& parallel_for_shards;
  obs::Counter& failures_suppressed;
  obs::Counter& deadline_skipped;

  static PoolMetrics& get() {
    static PoolMetrics metrics{
        obs::Registry::instance().counter("threadpool.tasks_submitted"),
        obs::Registry::instance().counter("threadpool.tasks_executed"),
        obs::Registry::instance().histogram("threadpool.task_seconds"),
        obs::Registry::instance().histogram("threadpool.idle_seconds"),
        obs::Registry::instance().counter("parallel_for.calls"),
        obs::Registry::instance().counter("parallel_for.inline_calls"),
        obs::Registry::instance().histogram("parallel_for.shards"),
        obs::Registry::instance().counter("threadpool.failures_suppressed"),
        obs::Registry::instance().counter("threadpool.deadline_skipped"),
    };
    return metrics;
  }
};

// Per-call bookkeeping for one parallel_for: a work-stealing index counter
// shared by the caller and the helper tasks, plus a latch the caller waits
// on. Lives on the caller's stack; the caller never returns before
// `pending` drops to zero, so references from helper tasks stay valid.
struct ForState {
  const std::function<void(int)>* fn = nullptr;
  int n = 0;
  std::atomic<int> next{0};
  std::mutex mutex;
  std::condition_variable cv_done;
  int pending = 0;
  int failed = 0;
  std::exception_ptr first_error;
};

// Pull indices until the counter runs dry. All iterations complete even if
// some throw; the first exception is kept and rethrown, the rest are
// counted into threadpool.failures_suppressed.
void run_shard(ForState& st) {
  const bool saved = tl_in_parallel_region;
  tl_in_parallel_region = true;
  for (;;) {
    const int i = st.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= st.n) break;
    try {
      (*st.fn)(i);
    } catch (...) {
      const std::scoped_lock lock(st.mutex);
      ++st.failed;
      if (!st.first_error) st.first_error = std::current_exception();
    }
  }
  tl_in_parallel_region = saved;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  PoolMetrics::get();  // force Registry construction before workers exist
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  expects(static_cast<bool>(task), "task must be callable");
  PoolMetrics::get().tasks_submitted.increment();
  {
    const std::scoped_lock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::submit(std::function<void()> task, TaskOptions options) {
  expects(static_cast<bool>(task), "task must be callable");
  submit([task = std::move(task), options = std::move(options)] {
    if (options.deadline.expired()) {
      // Soft-deadline watchdog: a task whose budget is already gone is not
      // started at all — it fails fast and cheaply instead.
      PoolMetrics::get().deadline_skipped.increment();
      throw DeadlineExceeded("deadline expired before task start: " +
                             options.site);
    }
    const detail::ScopedTaskDeadline scope(options.deadline);
    if (options.retry.max_attempts > 1) {
      retry_call(options.retry, options.site, task);
    } else {
      task();
    }
  });
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  const std::size_t suppressed = failed_tasks_ > 1 ? failed_tasks_ - 1 : 0;
  failed_tasks_ = 0;
  if (suppressed > 0) {
    suppressed_total_ += suppressed;
    PoolMetrics::get().failures_suppressed.add(suppressed);
  }
  if (first_error_) {
    std::exception_ptr err;
    std::swap(err, first_error_);
    lock.unlock();
    if (suppressed > 0) {
      log_warn("thread pool: ", suppressed,
               " additional task failure(s) suppressed behind the first");
    }
    std::rethrow_exception(err);
  }
}

std::uint64_t ThreadPool::suppressed_failures_total() const {
  const std::scoped_lock lock(mutex_);
  return suppressed_total_;
}

void ThreadPool::worker_loop() {
  tl_in_parallel_region = true;  // nested parallel_for on a worker runs inline
  PoolMetrics& metrics = PoolMetrics::get();
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      const auto wait_start = std::chrono::steady_clock::now();
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      metrics.idle_seconds.record(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wait_start)
              .count());
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    std::exception_ptr error;
    const auto task_start = std::chrono::steady_clock::now();
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    metrics.task_seconds.record(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      task_start)
            .count());
    metrics.tasks_executed.increment();
    {
      const std::scoped_lock lock(mutex_);
      if (error) {
        ++failed_tasks_;
        if (!first_error_) first_error_ = error;
      }
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

ThreadPool& shared_pool() {
  g_shared_pool_started.store(true, std::memory_order_relaxed);
  static ThreadPool pool;  // one worker per hardware thread, process lifetime
  return pool;
}

bool shared_pool_initialized() {
  return g_shared_pool_started.load(std::memory_order_relaxed);
}

std::size_t effective_parallelism() {
  const auto hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t cap = max_parallelism();
  return cap == 0 ? hw : std::min(cap, hw);
}

bool in_parallel_region() { return tl_in_parallel_region; }

void set_max_parallelism(std::size_t n) {
  g_max_parallelism.store(n, std::memory_order_relaxed);
}

std::size_t max_parallelism() {
  return g_max_parallelism.load(std::memory_order_relaxed);
}

void parallel_for(int n, const std::function<void(int)>& fn,
                  std::size_t max_shards) {
  expects(n >= 0, "parallel_for size must be non-negative");
  if (n == 0) return;
  const std::size_t global_cap = max_parallelism();
  if (global_cap != 0) {
    max_shards = max_shards == 0 ? global_cap : std::min(max_shards, global_cap);
  }
  if (max_shards == 1 || n == 1 || tl_in_parallel_region) {
    PoolMetrics::get().parallel_for_inline.increment();
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  ThreadPool& pool = shared_pool();
  std::size_t helpers = pool.size();
  if (max_shards != 0) helpers = std::min(helpers, max_shards - 1);
  helpers = std::min(helpers, static_cast<std::size_t>(n));

  PoolMetrics& metrics = PoolMetrics::get();
  metrics.parallel_for_calls.increment();
  metrics.parallel_for_shards.record(static_cast<double>(helpers + 1));

  ForState st;
  st.fn = &fn;
  st.n = n;
  st.pending = static_cast<int>(helpers);
  for (std::size_t h = 0; h < helpers; ++h) {
    pool.submit([&st] {
      run_shard(st);
      const std::scoped_lock lock(st.mutex);
      if (--st.pending == 0) st.cv_done.notify_all();
    });
  }
  run_shard(st);  // the caller works too instead of just blocking
  {
    std::unique_lock lock(st.mutex);
    st.cv_done.wait(lock, [&st] { return st.pending == 0; });
  }
  if (st.failed > 1) {
    metrics.failures_suppressed.add(static_cast<std::uint64_t>(st.failed - 1));
  }
  if (st.first_error) std::rethrow_exception(st.first_error);
}

}  // namespace cpsguard::util

#include "util/thread_pool.h"

#include <atomic>
#include <exception>

#include "util/contracts.h"

namespace cpsguard::util {

namespace {

// Set for shared-pool workers (for their whole lifetime) and for any thread
// while it executes a parallel_for shard. Either way, a parallel_for issued
// from such a thread must run inline: fanning out again would queue work
// behind a blocked worker (deadlock risk on small pools) and oversubscribe
// the machine.
thread_local bool tl_in_parallel_region = false;

// Per-call bookkeeping for one parallel_for: a work-stealing index counter
// shared by the caller and the helper tasks, plus a latch the caller waits
// on. Lives on the caller's stack; the caller never returns before
// `pending` drops to zero, so references from helper tasks stay valid.
struct ForState {
  const std::function<void(int)>* fn = nullptr;
  int n = 0;
  std::atomic<int> next{0};
  std::mutex mutex;
  std::condition_variable cv_done;
  int pending = 0;
  std::exception_ptr first_error;
};

// Pull indices until the counter runs dry. All iterations complete even if
// some throw; only the first exception is kept.
void run_shard(ForState& st) {
  const bool saved = tl_in_parallel_region;
  tl_in_parallel_region = true;
  for (;;) {
    const int i = st.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= st.n) break;
    try {
      (*st.fn)(i);
    } catch (...) {
      const std::scoped_lock lock(st.mutex);
      if (!st.first_error) st.first_error = std::current_exception();
    }
  }
  tl_in_parallel_region = saved;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  expects(static_cast<bool>(task), "task must be callable");
  {
    const std::scoped_lock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err;
    std::swap(err, first_error_);
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  tl_in_parallel_region = true;  // nested parallel_for on a worker runs inline
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      const std::scoped_lock lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

ThreadPool& shared_pool() {
  static ThreadPool pool;  // one worker per hardware thread, process lifetime
  return pool;
}

bool in_parallel_region() { return tl_in_parallel_region; }

void parallel_for(int n, const std::function<void(int)>& fn,
                  std::size_t max_shards) {
  expects(n >= 0, "parallel_for size must be non-negative");
  if (n == 0) return;
  if (max_shards == 1 || n == 1 || tl_in_parallel_region) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  ThreadPool& pool = shared_pool();
  std::size_t helpers = pool.size();
  if (max_shards != 0) helpers = std::min(helpers, max_shards);
  helpers = std::min(helpers, static_cast<std::size_t>(n));

  ForState st;
  st.fn = &fn;
  st.n = n;
  st.pending = static_cast<int>(helpers);
  for (std::size_t h = 0; h < helpers; ++h) {
    pool.submit([&st] {
      run_shard(st);
      const std::scoped_lock lock(st.mutex);
      if (--st.pending == 0) st.cv_done.notify_all();
    });
  }
  run_shard(st);  // the caller works too instead of just blocking
  {
    std::unique_lock lock(st.mutex);
    st.cv_done.wait(lock, [&st] { return st.pending == 0; });
  }
  if (st.first_error) std::rethrow_exception(st.first_error);
}

}  // namespace cpsguard::util

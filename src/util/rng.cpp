#include "util/rng.h"

#include <cmath>
#include <numbers>

#include "util/contracts.h"

namespace cpsguard::util {

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1u) | 1u) {
  operator()();
  state_ += seed;
  operator()();
}

Rng::result_type Rng::operator()() {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((0u - rot) & 31u));
}

double Rng::uniform() {
  // 53-bit mantissa from two draws for full double resolution.
  const std::uint64_t hi = operator()();
  const std::uint64_t lo = operator()();
  const std::uint64_t bits = ((hi << 21u) ^ lo) & ((1ULL << 53u) - 1u);
  return static_cast<double>(bits) / static_cast<double>(1ULL << 53u);
}

double Rng::uniform(double lo, double hi) {
  expects(lo <= hi, "uniform range must be ordered");
  return lo + (hi - lo) * uniform();
}

int Rng::uniform_int(int lo, int hi) {
  expects(lo <= hi, "uniform_int range must be ordered");
  const auto span = static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1u;
  return lo + static_cast<int>(static_cast<std::uint64_t>(operator()()) % span);
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::gaussian(double mean, double stddev) {
  expects(stddev >= 0.0, "stddev must be non-negative");
  return mean + stddev * gaussian();
}

bool Rng::bernoulli(double p) {
  expects(p >= 0.0 && p <= 1.0, "bernoulli p must be in [0,1]");
  return uniform() < p;
}

Rng Rng::split() {
  const std::uint64_t child_seed =
      (static_cast<std::uint64_t>(operator()()) << 32u) | operator()();
  const std::uint64_t child_stream =
      (static_cast<std::uint64_t>(operator()()) << 32u) | operator()();
  return Rng(child_seed, child_stream);
}

std::vector<int> Rng::permutation(int n) {
  expects(n >= 0, "permutation size must be non-negative");
  std::vector<int> idx(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) idx[static_cast<std::size_t>(i)] = i;
  for (int i = n - 1; i > 0; --i) {
    const int j = uniform_int(0, i);
    std::swap(idx[static_cast<std::size_t>(i)], idx[static_cast<std::size_t>(j)]);
  }
  return idx;
}

}  // namespace cpsguard::util

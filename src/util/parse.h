// Strict, locale-independent number parsing built on std::from_chars.
//
// Every ingestion surface routes scalar conversion through these helpers
// instead of std::stoi/std::stod/std::atof, which (a) throw untyped
// std::invalid_argument / std::out_of_range, (b) silently accept trailing
// garbage ("4x" parses as 4), and (c) in atof's case honor LC_NUMERIC, so
// "0.5" can parse as 0 under a comma-decimal locale.
//
// Contract: the whole string (after optional surrounding ASCII whitespace)
// must be consumed, or the parse fails. The throwing variants raise
// ParseError naming the offending text and the key it was supplied for.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/error.h"

namespace cpsguard::util {

/// Non-throwing strict parses; nullopt on any syntax error, trailing
/// garbage, or out-of-range value.
std::optional<long long> try_parse_int(std::string_view text);
std::optional<std::uint64_t> try_parse_u64(std::string_view text);
/// Accepts decimal and scientific notation plus "inf"/"-inf"/"nan"
/// (case-insensitive), always with '.' as the decimal separator regardless
/// of the global locale.
std::optional<double> try_parse_double(std::string_view text);

/// Throwing variants: `context` names the flag/key the value was supplied
/// for, so the ParseError message reads e.g.
///   cannot parse "--threads": "4x" is not an integer
long long parse_int(std::string_view text, std::string_view context);
std::uint64_t parse_u64(std::string_view text, std::string_view context);
double parse_double(std::string_view text, std::string_view context);

/// parse_int narrowed to int; out-of-int-range values are a ParseError.
int parse_int32(std::string_view text, std::string_view context);

}  // namespace cpsguard::util

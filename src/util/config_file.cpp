#include "util/config_file.h"

#include <fstream>
#include <sstream>

#include "util/error.h"
#include "util/parse.h"

namespace cpsguard::util {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

ConfigFile ConfigFile::parse(const std::string& text) {
  ConfigFile cfg;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw CpsError("config line " + std::to_string(line_no) +
                               ": expected key = value");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) {
      throw CpsError("config line " + std::to_string(line_no) +
                               ": empty key");
    }
    if (cfg.values_.contains(key)) {
      throw CpsError("config line " + std::to_string(line_no) +
                               ": duplicate key '" + key + "'");
    }
    cfg.values_[key] = value;
  }
  return cfg;
}

ConfigFile ConfigFile::load(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw CpsError("cannot open config file: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse(ss.str());
}

bool ConfigFile::has(const std::string& key) const {
  return values_.contains(key);
}

std::string ConfigFile::get(const std::string& key, const std::string& def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

int ConfigFile::get_int(const std::string& key, int def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : parse_int32(it->second, key);
}

double ConfigFile::get_double(const std::string& key, double def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : parse_double(it->second, key);
}

bool ConfigFile::get_bool(const std::string& key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace cpsguard::util

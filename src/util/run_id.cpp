#include "util/run_id.h"

#include <chrono>
#include <random>
#include <sstream>

#include "obs/sha256.h"

namespace cpsguard::util {

std::string fresh_run_id() {
  std::random_device rd;
  std::ostringstream raw;
  raw << std::chrono::system_clock::now().time_since_epoch().count() << '|'
      << rd() << '|' << rd();
  return obs::sha256_hex(raw.str()).substr(0, 16);
}

}  // namespace cpsguard::util

#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "util/contracts.h"

namespace cpsguard::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  expects(!header_.empty(), "table header must not be empty");
}

void Table::add_row(std::vector<std::string> row) {
  expects(row.size() == header_.size(), "table row width must match header");
  rows_.push_back(std::move(row));
}

std::string Table::fixed(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << ' ' << row[i] << std::string(widths[i] - row[i].size(), ' ') << " |";
    }
    os << '\n';
  };
  emit_row(header_);
  os << '|';
  for (std::size_t w : widths) os << std::string(w + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace cpsguard::util

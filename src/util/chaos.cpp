#include "util/chaos.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "obs/fileio.h"
#include "obs/metrics.h"
#include "util/contracts.h"
#include "util/logging.h"
#include "util/parse.h"

namespace cpsguard::util {

namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Strict and locale-independent, unlike the std::atof it replaced: under a
// comma-decimal LC_NUMERIC, atof("0.5") parses as 0 and silently disables
// the very faults a chaos run was asked to inject. A malformed rate is a
// loud warning + default, never a silent zero.
double env_rate(const char* name, double def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  const auto parsed = try_parse_double(v);
  if (!parsed) {
    log_warn("chaos: ignoring unparseable ", name, "=\"", v, "\", using ", def);
    return def;
  }
  return *parsed;
}

struct ChaosMetrics {
  obs::Counter& task_throws;
  obs::Counter& io_faults;
  obs::Counter& corruptions;

  static ChaosMetrics& get() {
    static ChaosMetrics m{
        obs::Registry::instance().counter("chaos.task_throws"),
        obs::Registry::instance().counter("chaos.io_faults"),
        obs::Registry::instance().counter("chaos.file_corruptions"),
    };
    return m;
  }
};

}  // namespace

ChaosConfig ChaosInjector::config_from_env() {
  ChaosConfig cfg;
  const char* flag = std::getenv("CPSGUARD_CHAOS");
  if (flag == nullptr || std::string(flag) == "0" || *flag == '\0') return cfg;
  cfg.enabled = true;
  cfg.seed = 1337;
  const char* seed_env = std::getenv("CPSGUARD_CHAOS_SEED");
  if (seed_env != nullptr && *seed_env != '\0') {
    if (const auto seed = try_parse_u64(seed_env)) {
      cfg.seed = *seed;
    } else {
      log_warn("chaos: ignoring unparseable CPSGUARD_CHAOS_SEED=\"", seed_env,
               "\", using 1337");
    }
  }
  cfg.task_throw_rate = env_rate("CPSGUARD_CHAOS_TASK_RATE", 0.2);
  cfg.io_fail_rate = env_rate("CPSGUARD_CHAOS_IO_RATE", 0.2);
  cfg.corrupt_rate = env_rate("CPSGUARD_CHAOS_CORRUPT_RATE", 0.2);
  return cfg;
}

ChaosInjector::ChaosInjector() { configure(config_from_env()); }

ChaosInjector& ChaosInjector::instance() {
  static ChaosInjector injector;
  return injector;
}

ChaosInjector& chaos() { return ChaosInjector::instance(); }

void ChaosInjector::configure(const ChaosConfig& config) {
  const std::scoped_lock lock(mutex_);
  config_ = config;
  fired_.clear();
  install_io_hook_locked();
}

bool ChaosInjector::first_occurrence(const std::string& site,
                                     const std::string& key) {
  const std::scoped_lock lock(mutex_);
  if (!config_.transient_only) return true;
  return fired_.insert(site + '\x1f' + key).second;
}

ChaosConfig ChaosInjector::config() const {
  const std::scoped_lock lock(mutex_);
  return config_;
}

bool ChaosInjector::enabled() const {
  const std::scoped_lock lock(mutex_);
  return config_.enabled;
}

bool ChaosInjector::should_inject(const std::string& site,
                                  const std::string& key, double rate) const {
  ChaosConfig cfg;
  {
    const std::scoped_lock lock(mutex_);
    cfg = config_;
  }
  if (!cfg.enabled || rate <= 0.0) return false;
  const std::uint64_t h =
      splitmix64(cfg.seed ^ fnv1a(site) ^ (fnv1a(key) * 0x9e3779b97f4a7c15ULL));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < rate;
}

void ChaosInjector::maybe_throw(const std::string& site,
                                const std::string& key) {
  const ChaosConfig cfg = config();
  if (!cfg.enabled) return;
  if (cfg.transient_only && current_retry_attempt() > 0) return;
  if (!should_inject(site, key, cfg.task_throw_rate)) return;
  if (!first_occurrence(site, key)) return;
  ChaosMetrics::get().task_throws.increment();
  throw ChaosError("chaos: injected task failure at " + site + " [" + key + "]");
}

bool ChaosInjector::maybe_corrupt_file(const std::string& path,
                                       const std::string& key) {
  const ChaosConfig cfg = config();
  if (!cfg.enabled) return false;
  if (!should_inject("file.corrupt", key, cfg.corrupt_rate)) return false;
  if (!first_occurrence("file.corrupt", key)) return false;

  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec || size == 0) return false;
  // Alternate deterministically between the two torn-checkpoint shapes:
  // truncation (crash mid-write of a non-atomic writer) and bit rot.
  const std::uint64_t h = splitmix64(cfg.seed ^ fnv1a(key) ^ 0x434f5252ULL);
  if ((h & 1U) == 0U) {
    std::filesystem::resize_file(path, size / 2, ec);
    if (ec) return false;
  } else {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    if (!f) return false;
    const auto offset = static_cast<std::streamoff>((h >> 1) % size);
    f.seekg(offset);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    f.seekp(offset);
    f.write(&byte, 1);
    if (!f) return false;
  }
  ChaosMetrics::get().corruptions.increment();
  return true;
}

void ChaosInjector::install_io_hook_locked() {
  if (config_.enabled && config_.io_fail_rate > 0.0) {
    const double rate = config_.io_fail_rate;
    obs::set_write_fault_hook(
        [rate](const std::string& path, const std::string& tmp) {
          ChaosInjector& self = instance();
          if (!self.should_inject("io.write", path, rate)) return;
          if (!self.first_occurrence("io.write", path)) return;
          // Simulate a crash mid-write: tear the temp file, never the
          // target, then fail the write so the caller's retry re-runs it.
          std::error_code ec;
          const auto size = std::filesystem::file_size(tmp, ec);
          if (!ec && size > 1) std::filesystem::resize_file(tmp, size / 2, ec);
          ChaosMetrics::get().io_faults.increment();
          throw obs::IoError("chaos: injected short write: " + path);
        });
  } else {
    obs::set_write_fault_hook({});
  }
}

}  // namespace cpsguard::util

#include "util/cli.h"

#include "util/error.h"
#include "util/parse.h"

namespace cpsguard::util {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw CpsError("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";  // bare flag
    }
  }
}

bool Cli::has(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return false;
  used_[name] = true;
  return true;
}

std::string Cli::get(const std::string& name, const std::string& def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  used_[name] = true;
  return it->second;
}

int Cli::get_int(const std::string& name, int def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  used_[name] = true;
  return parse_int32(it->second, "--" + name);
}

double Cli::get_double(const std::string& name, double def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  used_[name] = true;
  return parse_double(it->second, "--" + name);
}

bool Cli::get_bool(const std::string& name, bool def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  used_[name] = true;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> Cli::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : flags_) {
    if (!used_.contains(name)) out.push_back(name);
  }
  return out;
}

}  // namespace cpsguard::util

// Console table rendering for the bench harness: each reproduced table/figure
// prints aligned rows matching the paper's layout.
#pragma once

#include <string>
#include <vector>

namespace cpsguard::util {

/// Accumulates rows of strings and renders them as an aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Format a double with `decimals` fixed decimals.
  static std::string fixed(double v, int decimals = 2);

  /// Render with column separators and a header rule.
  [[nodiscard]] std::string to_string() const;

  /// Render to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cpsguard::util

#include "util/retry.h"

#include <algorithm>
#include <chrono>
#include <ios>
#include <thread>

#include "obs/fileio.h"
#include "obs/metrics.h"
#include "util/contracts.h"

namespace cpsguard::util {

namespace {

thread_local int tl_retry_attempt = 0;

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double unit_interval(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

struct RetryMetrics {
  obs::Counter& attempts;
  obs::Counter& recovered;
  obs::Counter& exhausted;

  static RetryMetrics& get() {
    static RetryMetrics m{
        obs::Registry::instance().counter("retry.attempts"),
        obs::Registry::instance().counter("retry.recovered"),
        obs::Registry::instance().counter("retry.exhausted"),
    };
    return m;
  }
};

}  // namespace

double RetryPolicy::delay_ms(const std::string& site, int attempt) const {
  expects(attempt >= 1, "delay is for retries, numbered from 1");
  double d = base_delay_ms;
  for (int i = 1; i < attempt; ++i) d *= multiplier;
  d = std::min(d, max_delay_ms);
  const double u =
      unit_interval(splitmix64(seed ^ fnv1a(site) ^
                               (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(attempt))));
  d *= 1.0 + jitter * (2.0 * u - 1.0);
  return std::clamp(d, 0.0, max_delay_ms);
}

RetryPolicy RetryPolicy::for_tasks() {
  RetryPolicy p;
  p.max_attempts = 3;
  p.base_delay_ms = 1.0;
  p.max_delay_ms = 20.0;
  return p;
}

RetryPolicy RetryPolicy::for_file_io() {
  RetryPolicy p;
  p.max_attempts = 4;
  p.base_delay_ms = 0.5;
  p.max_delay_ms = 10.0;
  return p;
}

bool default_is_retryable(const std::exception& e) {
  if (dynamic_cast<const RetryableError*>(&e) != nullptr) return true;
  if (dynamic_cast<const obs::IoError*>(&e) != nullptr) return true;
  if (dynamic_cast<const std::ios_base::failure*>(&e) != nullptr) return true;
  return false;
}

int current_retry_attempt() { return tl_retry_attempt; }

void retry_call(const RetryPolicy& policy, const std::string& site,
                const std::function<void()>& fn) {
  expects(policy.max_attempts >= 1, "retry policy needs at least one attempt");
  RetryMetrics& metrics = RetryMetrics::get();
  const int saved_attempt = tl_retry_attempt;  // retry_call may nest
  for (int attempt = 0;; ++attempt) {
    tl_retry_attempt = attempt;
    try {
      fn();
      tl_retry_attempt = saved_attempt;
      if (attempt > 0) metrics.recovered.increment();
      return;
    } catch (const std::exception& e) {
      tl_retry_attempt = saved_attempt;
      if (!default_is_retryable(e)) throw;
      if (attempt + 1 >= policy.max_attempts) {
        metrics.exhausted.increment();
        throw;
      }
      metrics.attempts.increment();
      if (policy.sleep) {
        const double ms = policy.delay_ms(site, attempt + 1);
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
      }
    } catch (...) {
      tl_retry_attempt = saved_attempt;
      throw;  // non-std exceptions are never retryable
    }
  }
}

}  // namespace cpsguard::util

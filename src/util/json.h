// Minimal JSON value type: a writer for experiment reports that downstream
// plotting/CI tooling can consume (proper string escaping, stable key order
// — insertion order — and locale-independent numbers) plus a strict
// recursive-descent parser so manifests and reports can be read back and
// round-trip-checked (dump∘parse is a fixpoint after one normalization
// pass; fuzz target "json" enforces it).
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/error.h"

namespace cpsguard::util {

/// Malformed JSON text: syntax error, bad escape, trailing garbage,
/// out-of-range number, or nesting deeper than the parser's depth cap.
class JsonParseError : public CpsError {
 public:
  using CpsError::CpsError;
};

class Json {
 public:
  /// Factories for each JSON type.
  static Json object();
  static Json array();
  static Json str(std::string value);
  static Json number(double value);
  static Json integer(long value);
  static Json boolean(bool value);
  static Json null();

  /// Object: set key → value (insertion-ordered; replaces an existing key).
  Json& set(const std::string& key, Json value);
  /// Array: append a value.
  Json& push(Json value);

  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_integer() const { return kind_ == Kind::kInteger; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }

  /// Object member lookup: nullptr when absent or this is not an object.
  /// (Readback path for manifests and model-artifact lineage metadata.)
  [[nodiscard]] const Json* get(const std::string& key) const;
  /// Array items; empty unless is_array().
  [[nodiscard]] const std::vector<Json>& items() const { return items_; }
  /// Typed reads; the caller checks the kind first (is_string()/...).
  [[nodiscard]] const std::string& as_str() const;
  [[nodiscard]] long as_int() const;
  [[nodiscard]] bool as_bool() const;

  /// Serialize; `indent` > 0 pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Strict parse of one JSON value; throws JsonParseError on malformed
  /// input, trailing garbage, or nesting beyond 256 levels. Numbers parse
  /// locale-independently; integral tokens that fit a long become integer
  /// values, everything else a double.
  static Json parse(const std::string& text);

  /// Escape a string for embedding in JSON (without surrounding quotes).
  static std::string escape(const std::string& s);

 private:
  enum class Kind { kObject, kArray, kString, kNumber, kInteger, kBool, kNull };

  Json() = default;

  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  std::string str_;
  double num_ = 0.0;
  long int_ = 0;
  bool bool_ = false;
  std::vector<std::pair<std::string, Json>> members_;  // object
  std::vector<Json> items_;                            // array
};

}  // namespace cpsguard::util

// Deterministic, splittable random number generation.
//
// All stochastic components of cpsguard (patient profiles, meal schedules,
// fault injection, weight initialization, noise models) draw from an Rng
// seeded explicitly, so every experiment is reproducible from its config.
#pragma once

#include <cstdint>
#include <vector>

namespace cpsguard::util {

/// PCG32 generator (O'Neill 2014): small state, good statistical quality,
/// and a cheap `split()` for deriving independent streams.
class Rng {
 public:
  using result_type = std::uint32_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffu; }

  /// Next raw 32-bit value (UniformRandomBitGenerator interface).
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  int uniform_int(int lo, int hi);

  /// Standard normal via Box-Muller (cached second deviate).
  double gaussian();

  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double stddev);

  /// Bernoulli draw with probability `p` of true.
  bool bernoulli(double p);

  /// Derive an independent child stream. Deterministic: the i-th split of a
  /// given Rng state is always the same generator.
  Rng split();

  /// Fisher-Yates shuffle of an index vector [0, n).
  std::vector<int> permutation(int n);

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace cpsguard::util

#include "util/deadline.h"

#include <limits>
#include <mutex>

#include "obs/metrics.h"

namespace cpsguard::util {

namespace {

std::mutex g_global_mutex;
Deadline g_global_deadline;

thread_local Deadline tl_task_deadline;

obs::Counter& expirations() {
  static obs::Counter& c =
      obs::Registry::instance().counter("deadline.expirations");
  return c;
}

}  // namespace

Deadline Deadline::after(std::chrono::nanoseconds budget) {
  Deadline d;
  d.at_ = std::chrono::steady_clock::now() + budget;
  return d;
}

Deadline Deadline::after_seconds(double seconds) {
  return after(std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(seconds)));
}

bool Deadline::expired() const {
  return at_.has_value() && std::chrono::steady_clock::now() >= *at_;
}

double Deadline::remaining_seconds() const {
  if (!at_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(*at_ - std::chrono::steady_clock::now())
      .count();
}

void Deadline::check(const std::string& site) const {
  if (!expired()) return;
  expirations().increment();
  throw DeadlineExceeded("deadline exceeded at " + site);
}

void set_global_deadline(Deadline d) {
  const std::scoped_lock lock(g_global_mutex);
  g_global_deadline = d;
}

Deadline global_deadline() {
  const std::scoped_lock lock(g_global_mutex);
  return g_global_deadline;
}

void check_deadline(const std::string& site) {
  tl_task_deadline.check(site);
  global_deadline().check(site);
}

namespace detail {

ScopedTaskDeadline::ScopedTaskDeadline(const Deadline& d)
    : saved_(tl_task_deadline) {
  tl_task_deadline = d;
}

ScopedTaskDeadline::~ScopedTaskDeadline() { tl_task_deadline = saved_; }

}  // namespace detail

}  // namespace cpsguard::util

#include "util/csv.h"

#include <fstream>
#include <sstream>

#include "obs/fileio.h"
#include "util/contracts.h"
#include "util/error.h"
#include "util/retry.h"

namespace cpsguard::util {

namespace {

bool needs_quoting(const std::string& s) {
  // '\r' must be quoted too: the reader strips bare carriage returns (CRLF
  // tolerance), so an unquoted "\r" inside a field would silently vanish on
  // the way back in (write→parse mismatch found by fuzz target "csv").
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

std::string escape(const std::string& s) {
  if (!needs_quoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {
  expects(!header_.empty(), "CSV header must not be empty");
}

void CsvWriter::add_row(std::vector<std::string> row) {
  expects(row.size() == header_.size(), "CSV row width must match header");
  rows_.push_back(std::move(row));
}

std::string CsvWriter::num(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) os << ',';
    os << escape(header_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << escape(row[i]);
    }
    os << '\n';
  }
  return os.str();
}

void CsvWriter::write(const std::string& path) const {
  // Atomic (temp + rename) with bounded retries: a crash or an injected
  // write fault can never leave a truncated CSV that downstream tooling
  // would parse as complete.
  const std::string data = to_string();
  retry_call(RetryPolicy::for_file_io(), "csv.write",
             [&] { obs::atomic_write_file(path, data); });
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      row.push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      row.push_back(std::move(field));
      field.clear();
      rows.push_back(std::move(row));
      row.clear();
    } else if (c != '\r') {
      field += c;
    }
  }
  if (!field.empty() || !row.empty()) {
    row.push_back(std::move(field));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<std::vector<std::string>> read_csv(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw CpsError("cannot open CSV for reading: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse_csv(ss.str());
}

}  // namespace cpsguard::util

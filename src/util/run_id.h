// Run identifiers for lineage chains: checkpoint stores and the model
// registry both tag every durable artifact with a fresh 16-hex-char id and
// record the parent's id next to it, so provenance survives restarts and
// republishes.
#pragma once

#include <string>

namespace cpsguard::util {

/// Unique per call; uniqueness matters (lineage chains), determinism does
/// not, so wall clock + random bits are fine here — nothing downstream of a
/// run_id feeds experiment RNG streams.
std::string fresh_run_id();

}  // namespace cpsguard::util

// Small statistics helpers shared by the simulators, the noise models and the
// evaluation/reporting code.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cpsguard::util {

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Population variance (0 for fewer than 2 samples).
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double mean(std::span<const double> xs);
double stddev(std::span<const double> xs);
double mean_f(std::span<const float> xs);
double stddev_f(std::span<const float> xs);

/// Linear-interpolation quantile, q in [0,1]. Empty input returns 0.
double quantile(std::vector<double> xs, double q);

/// Fixed-bin histogram over [lo, hi]; values outside clamp to edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, int bins);

  void add(double x);
  [[nodiscard]] int bins() const { return static_cast<int>(counts_.size()); }
  [[nodiscard]] std::size_t count(int bin) const;
  [[nodiscard]] double bin_center(int bin) const;
  [[nodiscard]] std::size_t total() const { return total_; }
  /// Fraction of mass in `bin`.
  [[nodiscard]] double density(int bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace cpsguard::util

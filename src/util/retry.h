// Bounded retry with exponential backoff and deterministic seeded jitter.
//
// Campaign compute and file IO both route transient failures through
// retry_call: a thrown RetryableError (chaos task throws, injected or real
// short writes) is re-attempted up to the policy's budget; anything else —
// logic errors, contract violations, DeadlineExceeded — propagates
// immediately. Jitter is derived from (seed, site, attempt), never from a
// global RNG or the clock, so retry schedules are reproducible and do not
// perturb any experiment RNG stream.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

namespace cpsguard::util {

/// Errors worth re-attempting (transient by construction). Chaos task
/// throws derive from this; obs::IoError is classified retryable too.
class RetryableError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct RetryPolicy {
  int max_attempts = 3;      // total tries (>= 1); 1 disables retrying
  double base_delay_ms = 1.0;
  double multiplier = 2.0;
  double max_delay_ms = 50.0;
  double jitter = 0.25;      // ± fraction of the backoff, deterministic
  std::uint64_t seed = 0x52455452ULL;  // 'RETR'
  bool sleep = true;         // false: compute the schedule but never block

  /// Backoff before retry `attempt` (1-based) of `site` — deterministic in
  /// (seed, site, attempt), clamped to [0, max_delay_ms].
  [[nodiscard]] double delay_ms(const std::string& site, int attempt) const;

  /// Policy for campaign compute tasks (sweep points, pool tasks).
  static RetryPolicy for_tasks();
  /// Policy for file IO (CSV/manifest/checkpoint writes): a few fast tries.
  static RetryPolicy for_file_io();
};

/// Default classification: RetryableError (and subclasses, e.g. chaos task
/// throws), obs::IoError and std::ios_base::failure are retryable; anything
/// else is not.
[[nodiscard]] bool default_is_retryable(const std::exception& e);

/// 0-based attempt index of the innermost retry_call running on this thread
/// (0 outside any). The chaos injector keys on this to make injected faults
/// transient: a fault fired at attempt 0 is never re-fired on the retry.
[[nodiscard]] int current_retry_attempt();

/// Run `fn`, re-attempting on retryable errors per `policy` with backoff.
/// Rethrows the last error once attempts are exhausted and non-retryable
/// errors immediately. Obs counters: retry.attempts / retry.recovered /
/// retry.exhausted.
void retry_call(const RetryPolicy& policy, const std::string& site,
                const std::function<void()>& fn);

}  // namespace cpsguard::util

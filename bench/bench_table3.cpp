// Table III: overall performance (ACC, F1) of each monitor on clean data,
// for both simulators. Paper shape: ML monitors beat the rule-based
// baseline; MLP-Custom >= MLP; LSTM-Custom comparable to LSTM.
#include "bench_common.h"

using namespace cpsguard;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  util::set_log_level(util::LogLevel::kInfo);
  bench::BenchRun run("table3", cli);

  util::Table table({"Simulator", "Model", "No. Sim.", "No. Sample", "ACC", "F1"});
  util::CsvWriter csv({"simulator", "model", "sims", "samples", "acc", "f1"});

  for (const sim::Testbed tb : bench::both_testbeds()) {
    core::Experiment exp(run.config(tb, cli));
    exp.train_all();
    const std::string sims = std::to_string(exp.traces().size());
    const std::string samples =
        std::to_string(exp.train_data().size() + exp.test_data().size());

    auto add = [&](const std::string& model, const core::EvalResult& r) {
      table.add_row({sim::to_string(tb), model, sims, samples,
                     util::Table::fixed(r.accuracy(), 2),
                     util::Table::fixed(r.f1(), 2)});
      csv.add_row({sim::to_string(tb), model, sims, samples,
                   util::CsvWriter::num(r.accuracy()),
                   util::CsvWriter::num(r.f1())});
    };

    add("Rule-based", exp.evaluate_rule_monitor());
    for (const auto& v : core::all_variants()) {
      add(v.name(), exp.evaluate_clean(v));
    }
  }

  std::printf("Table III: Overall Performance of Each ML Model without Noises\n");
  table.print();
  run.write_csv(csv);
  run.finish(cli);
  return 0;
}

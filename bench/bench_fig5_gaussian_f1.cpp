// Fig. 5: F1 score of the four ML monitors under Gaussian sensor noise
// N(0, (σ·std)²), σ ∈ {0.1, 0.25, 0.5, 0.75, 1.0}, for both simulators.
// Paper shape: baseline monitors degrade with σ; the -Custom monitors
// (semantic loss) degrade less and keep F1 high.
#include "bench_common.h"

using namespace cpsguard;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  util::set_log_level(util::LogLevel::kInfo);
  bench::BenchRun run("fig5_gaussian_f1", cli);

  util::CsvWriter csv({"simulator", "model", "sigma", "f1", "acc"});

  return run.campaign(cli, [&] {
  for (const sim::Testbed tb : bench::both_testbeds()) {
    core::Experiment exp(run.config(tb, cli));
    run.attach(exp);
    exp.train_all();
    std::printf("\nFig. 5 — %s: F1 vs Gaussian noise sigma (x std)\n",
                sim::to_string(tb).c_str());
    util::Table table({"Model", "clean", "0.1", "0.25", "0.5", "0.75", "1.0"});
    for (const auto& v : core::all_variants()) {
      std::vector<std::string> row = {v.name()};
      const auto clean = exp.evaluate_clean(v);
      row.push_back(util::Table::fixed(clean.f1(), 3));
      csv.add_row({sim::to_string(tb), v.name(), "0",
                   util::CsvWriter::num(clean.f1()),
                   util::CsvWriter::num(clean.accuracy())});
      // One parallel sweep over all sigma points (bit-identical to the
      // serial per-point loop); rows are still emitted in sweep order.
      const auto sweep = exp.evaluate_under_gaussian_sweep(v, bench::sigma_sweep());
      for (std::size_t i = 0; i < sweep.size(); ++i) {
        const double sigma = bench::sigma_sweep()[i];
        const auto& r = sweep[i];
        row.push_back(util::Table::fixed(r.f1(), 3));
        csv.add_row({sim::to_string(tb), v.name(), util::CsvWriter::num(sigma),
                     util::CsvWriter::num(r.f1()),
                     util::CsvWriter::num(r.accuracy())});
      }
      table.add_row(std::move(row));
    }
    table.print();
  }

  run.write_csv(csv);
  });
}

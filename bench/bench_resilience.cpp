// Resilience sweep: availability and detection quality of the monitoring
// runtime when the monitor's own input stream degrades (sample loss, stale
// delivery, garbage corruption, burst spikes) — fault rate x fault type x
// monitor variant x runtime mode. The headline comparison: the raw ML
// runtime silently loses availability as corruption grows, while the
// resilient runtime degrades to the knowledge-driven rule fallback and keeps
// serving trustworthy verdicts.
//
// Extra flags:
//   --rates CSV   fault-rate sweep              (default 0.1,0.3,0.6,0.9)
//   --delta N     oracle look-ahead in cycles   (default 6 = 30 min)
#include <sstream>

#include "bench_common.h"

using namespace cpsguard;

namespace {

std::vector<double> parse_rates(const std::string& csv) {
  std::vector<double> rates;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) rates.push_back(std::stod(item));
  return rates;
}

const std::vector<sim::FaultType>& input_faults() {
  static const std::vector<sim::FaultType> v = {
      sim::FaultType::kSensorLoss, sim::FaultType::kSensorDelay,
      sim::FaultType::kSensorGarbage, sim::FaultType::kSensorSpike};
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  util::set_log_level(util::LogLevel::kInfo);
  bench::BenchRun run("resilience", cli);
  const std::vector<double> rates = parse_rates(cli.get("rates", "0.1,0.3,0.6,0.9"));

  core::ResilienceEvalConfig rc;
  rc.tolerance_delta = cli.get_int("delta", 6);
  run.manifest().set_param("rates", cli.get("rates", "0.1,0.3,0.6,0.9"));
  run.manifest().set_param("delta", static_cast<long long>(rc.tolerance_delta));

  util::CsvWriter csv({"simulator", "model", "runtime", "fault", "rate",
                       "availability", "time_in_fallback", "time_in_fail_safe",
                       "unready_frac", "invalid_frac", "f1_overall", "f1_ml",
                       "f1_fallback", "fallback_entries", "recoveries",
                       "mean_recovery_latency"});

  const auto add = [&](sim::Testbed tb, const std::string& model,
                       core::RuntimeMode mode, sim::FaultType fault,
                       double rate, const eval::ResilienceReport& r) {
    const auto frac = [&](long n) {
      return r.cycles ? static_cast<double>(n) / static_cast<double>(r.cycles) : 0.0;
    };
    csv.add_row({sim::to_string(tb), model, core::to_string(mode),
                 sim::to_string(fault), util::CsvWriter::num(rate),
                 util::CsvWriter::num(r.availability()),
                 util::CsvWriter::num(r.time_in_fallback()),
                 util::CsvWriter::num(r.time_in_fail_safe()),
                 util::CsvWriter::num(frac(r.cycles_unready)),
                 util::CsvWriter::num(frac(r.invalid_samples)),
                 util::CsvWriter::num(r.overall.f1()),
                 util::CsvWriter::num(r.ml_regime.f1()),
                 util::CsvWriter::num(r.fallback_regime.f1()),
                 std::to_string(r.fallback_entries),
                 std::to_string(r.recoveries),
                 util::CsvWriter::num(r.mean_recovery_latency())});
  };

  for (const sim::Testbed tb : bench::both_testbeds()) {
    core::Experiment exp(run.config(tb, cli));
    rc.runtime.window = exp.config().dataset.window;
    exp.train_all();

    // Clean baselines (fault = none) for every runtime.
    for (const auto& v : core::all_variants()) {
      for (const auto mode :
           {core::RuntimeMode::kRawMl, core::RuntimeMode::kResilient}) {
        add(tb, v.name(), mode, sim::FaultType::kNone, 0.0,
            exp.evaluate_resilience(v, mode, sim::FaultType::kNone, 0.0, rc));
      }
    }
    add(tb, "Rule-based", core::RuntimeMode::kRuleOnly, sim::FaultType::kNone,
        0.0,
        exp.evaluate_resilience(core::all_variants().front(),
                                core::RuntimeMode::kRuleOnly,
                                sim::FaultType::kNone, 0.0, rc));

    for (const sim::FaultType fault : input_faults()) {
      std::printf("\nResilience — %s under %s: availability (raw → resilient)\n",
                  sim::to_string(tb).c_str(), sim::to_string(fault).c_str());
      std::vector<std::string> header = {"Model"};
      for (const double rate : rates) header.push_back(util::Table::fixed(rate, 1));
      util::Table table(header);
      for (const auto& v : core::all_variants()) {
        std::vector<std::string> row = {v.name()};
        for (const double rate : rates) {
          const auto raw = exp.evaluate_resilience(
              v, core::RuntimeMode::kRawMl, fault, rate, rc);
          const auto res = exp.evaluate_resilience(
              v, core::RuntimeMode::kResilient, fault, rate, rc);
          add(tb, v.name(), core::RuntimeMode::kRawMl, fault, rate, raw);
          add(tb, v.name(), core::RuntimeMode::kResilient, fault, rate, res);
          row.push_back(util::Table::fixed(raw.availability(), 2) + " → " +
                        util::Table::fixed(res.availability(), 2));
        }
        table.add_row(std::move(row));
      }
      for (const double rate : rates) {
        add(tb, "Rule-based", core::RuntimeMode::kRuleOnly, fault, rate,
            exp.evaluate_resilience(core::all_variants().front(),
                                    core::RuntimeMode::kRuleOnly, fault, rate,
                                    rc));
      }
      table.print();
    }
  }

  run.write_csv(csv);
  run.finish(cli);
  return 0;
}

// Shared configuration for the figure/table reproduction benches.
//
// Every bench uses the same ExperimentConfig defaults so trained monitors are
// shared through the on-disk cache (cpsguard_cache/): the first bench to run
// pays the training cost, later benches reload the same models — mirroring
// how the paper evaluates one set of trained monitors across all figures.
//
// Common flags (all benches):
//   --patients N   patient profiles per simulator   (default 20, paper: 20)
//   --sims N       simulations per patient          (default 5)
//   --steps N      5-min cycles per simulation      (default 150, paper: 150)
//   --epochs N     training epochs                  (default 10)
//   --seed S       campaign seed                    (default 42)
//   --w W          semantic-loss weight, Eq. 2, both archs
//   --w-mlp/--w-lstm  per-architecture weights      (defaults 0.5 / 1.0)
//   --cache DIR    model cache dir ("" disables)    (default cpsguard_cache)
//   --out FILE     also write the series as CSV
#pragma once

#include <cstdio>
#include <string>

#include "core/cpsguard.h"

namespace cpsguard::bench {

inline core::ExperimentConfig bench_config(sim::Testbed tb,
                                           const util::Cli& cli) {
  core::ExperimentConfig cfg;
  cfg.campaign.testbed = tb;
  cfg.campaign.patients = cli.get_int("patients", 20);
  cfg.campaign.sims_per_patient = cli.get_int("sims", 5);
  cfg.campaign.trace_steps = cli.get_int("steps", 150);
  cfg.campaign.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  cfg.epochs = cli.get_int("epochs", 10);
  const double w_both = cli.get_double("w", -1.0);
  cfg.semantic_weight_mlp = cli.get_double("w-mlp", w_both > 0 ? w_both : 0.5);
  cfg.semantic_weight_lstm = cli.get_double("w-lstm", w_both > 0 ? w_both : 1.0);
  cfg.cache_dir = cli.get("cache", "cpsguard_cache");
  return cfg;
}

/// Fail loudly on mistyped flags after all get() calls are done.
inline void reject_unknown_flags(const util::Cli& cli) {
  const auto unused = cli.unused();
  if (unused.empty()) return;
  std::string msg = "unknown flags:";
  for (const auto& f : unused) msg += " --" + f;
  std::fprintf(stderr, "%s\n", msg.c_str());
  std::exit(2);
}

/// Write a CSV if --out was given.
inline void maybe_write_csv(const util::CsvWriter& csv, const std::string& out) {
  if (out.empty()) return;
  csv.write(out);
  std::fprintf(stderr, "wrote %s\n", out.c_str());
}

/// The σ sweep of Fig. 5/6/9 and the ε sweep of Fig. 8/9/10.
inline const std::vector<double>& sigma_sweep() {
  static const std::vector<double> v = {0.1, 0.25, 0.5, 0.75, 1.0};
  return v;
}
inline const std::vector<double>& epsilon_sweep() {
  static const std::vector<double> v = {0.01, 0.05, 0.1, 0.15, 0.2};
  return v;
}

inline const std::vector<sim::Testbed>& both_testbeds() {
  static const std::vector<sim::Testbed> v = {
      sim::Testbed::kGlucosymOpenAps, sim::Testbed::kT1dBasalBolus};
  return v;
}

}  // namespace cpsguard::bench

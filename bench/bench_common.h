// Shared configuration for the figure/table reproduction benches.
//
// Every bench uses the same ExperimentConfig defaults so trained monitors are
// shared through the on-disk cache (cpsguard_cache/): the first bench to run
// pays the training cost, later benches reload the same models — mirroring
// how the paper evaluates one set of trained monitors across all figures.
//
// Common flags (all benches):
//   --patients N   patient profiles per simulator   (default 20, paper: 20)
//   --sims N       simulations per patient          (default 5)
//   --steps N      5-min cycles per simulation      (default 150, paper: 150)
//   --epochs N     training epochs                  (default 10)
//   --seed S       campaign seed                    (default 42)
//   --w W          semantic-loss weight, Eq. 2, both archs
//   --w-mlp/--w-lstm  per-architecture weights      (defaults 0.5 / 1.0)
//   --cache DIR    model cache dir ("" disables)    (default cpsguard_cache)
//   --out FILE     CSV output path ("" disables)    (default <bench>.csv)
//   --threads N    cap parallel fan-out at N shards (default 0 = all cores)
//   --manifest B   write BENCH_<name>.json          (default true)
//   --events FILE  append NDJSON events to FILE     (default off)
//   --checkpoint DIR  persist sweep points + model snapshots to DIR; an
//                  existing DIR is resumed (default off)
//   --resume       shorthand for --checkpoint <bench>_ckpt
//   --deadline-s S soft campaign deadline: sweeps stop cooperatively after
//                  S seconds (exit 3); rerun with --resume to continue
//
// Every bench owns a BenchRun: it parses the observability flags, routes all
// CSV output through the run manifest (so a bench *cannot* silently write an
// unregistered CSV), and finishes by dumping BENCH_<name>.json — git SHA,
// build flags, seeds, thread counts, per-phase timing quantiles, counters,
// and the SHA-256 of every CSV written. See DESIGN.md § Observability.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "core/cpsguard.h"
#include "nn/simd_kernels.h"
#include "obs/events.h"
#include "obs/manifest.h"
#include "util/deadline.h"
#include "util/thread_pool.h"

namespace cpsguard::bench {

inline core::ExperimentConfig bench_config(sim::Testbed tb,
                                           const util::Cli& cli) {
  core::ExperimentConfig cfg;
  cfg.campaign.testbed = tb;
  cfg.campaign.patients = cli.get_int("patients", 20);
  cfg.campaign.sims_per_patient = cli.get_int("sims", 5);
  cfg.campaign.trace_steps = cli.get_int("steps", 150);
  cfg.campaign.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  cfg.epochs = cli.get_int("epochs", 10);
  const double w_both = cli.get_double("w", -1.0);
  cfg.semantic_weight_mlp = cli.get_double("w-mlp", w_both > 0 ? w_both : 0.5);
  cfg.semantic_weight_lstm = cli.get_double("w-lstm", w_both > 0 ? w_both : 1.0);
  cfg.cache_dir = cli.get("cache", "cpsguard_cache");
  return cfg;
}

/// Fail loudly on mistyped flags after all get() calls are done.
inline void reject_unknown_flags(const util::Cli& cli) {
  const auto unused = cli.unused();
  if (unused.empty()) return;
  std::string msg = "unknown flags:";
  for (const auto& f : unused) msg += " --" + f;
  std::fprintf(stderr, "%s\n", msg.c_str());
  std::exit(2);
}

/// One bench invocation: observability flags, manifest, and the only CSV
/// output path. Construct it first thing in main(); call finish() last.
class BenchRun {
 public:
  BenchRun(std::string name, const util::Cli& cli)
      : name_(std::move(name)), manifest_(name_) {
    const int threads = cli.get_int("threads", 0);
    if (threads > 0) {
      util::set_max_parallelism(static_cast<std::size_t>(threads));
    }
    manifest_enabled_ = cli.get_bool("manifest", true);
    const std::string events = cli.get("events", "");
    if (!events.empty()) obs::enable_events(events);
    manifest_.set_threads(std::thread::hardware_concurrency(),
                          util::max_parallelism());
    manifest_.set_param("simd_kernel", nn::simd_kernel_name());
    out_ = cli.get("out", name_ + ".csv");

    // Crash-safe campaigns: --resume / --checkpoint open a store whose
    // records survive kills; --deadline-s arms the cooperative watchdog.
    const bool resume = cli.get_bool("resume", false);
    const std::string ckpt_dir =
        cli.get("checkpoint", resume ? name_ + "_ckpt" : "");
    if (!ckpt_dir.empty()) {
      store_ = std::make_unique<core::CheckpointStore>(ckpt_dir);
      if (!store_->parent_run_id().empty()) {
        std::fprintf(stderr, "resuming campaign from %s (parent run %s)\n",
                     ckpt_dir.c_str(), store_->parent_run_id().c_str());
      }
    }
    const double deadline_s = cli.get_double("deadline-s", 0.0);
    if (deadline_s > 0.0) {
      util::set_global_deadline(util::Deadline::after_seconds(deadline_s));
    }
  }

  /// Attach the run's checkpoint store (if any) to an experiment. Call for
  /// every Experiment the bench constructs, before training or sweeping.
  void attach(core::Experiment& exp) {
    if (store_) exp.set_checkpoint_store(store_.get());
  }

  [[nodiscard]] core::CheckpointStore* checkpoint_store() {
    return store_.get();
  }

  /// Run the campaign body with deadline-aware termination: on
  /// DeadlineExceeded the partial work is already checkpointed, so report,
  /// finish the manifest (lineage included), and exit 3 — the documented
  /// "rerun with --resume" status. Returns the process exit code.
  template <typename Fn>
  int campaign(const util::Cli& cli, Fn&& body) {
    try {
      body();
    } catch (const util::DeadlineExceeded& e) {
      std::fprintf(stderr,
                   "deadline exceeded (%s); completed points are "
                   "checkpointed — rerun with --resume to continue\n",
                   e.what());
      finish(cli);
      return 3;
    }
    finish(cli);
    return 0;
  }

  /// bench_config() plus manifest bookkeeping (seed and sweep parameters).
  core::ExperimentConfig config(sim::Testbed tb, const util::Cli& cli) {
    core::ExperimentConfig cfg = bench_config(tb, cli);
    manifest_.set_seed(cfg.campaign.seed);
    manifest_.set_param("testbed", sim::to_string(tb));
    manifest_.set_param("patients",
                        static_cast<long long>(cfg.campaign.patients));
    manifest_.set_param("sims_per_patient",
                        static_cast<long long>(cfg.campaign.sims_per_patient));
    manifest_.set_param("trace_steps",
                        static_cast<long long>(cfg.campaign.trace_steps));
    manifest_.set_param("epochs", static_cast<long long>(cfg.epochs));
    manifest_.set_param("w_mlp", cfg.semantic_weight_mlp);
    manifest_.set_param("w_lstm", cfg.semantic_weight_lstm);
    manifest_.set_param("cache_dir", cfg.cache_dir);
    return cfg;
  }

  /// The --out path ("" when the caller disabled CSV output).
  [[nodiscard]] const std::string& out() const { return out_; }

  obs::RunManifest& manifest() { return manifest_; }

  /// Write the bench's CSV to --out and register its hash in the manifest.
  void write_csv(const util::CsvWriter& csv) { write_csv(csv, out_); }

  /// Same, to an explicit path (extra outputs beyond --out).
  void write_csv(const util::CsvWriter& csv, const std::string& path) {
    if (path.empty()) return;
    csv.write(path);
    manifest_.record_output(path, csv.rows());
    std::fprintf(stderr, "wrote %s\n", path.c_str());
  }

  /// Reject typos, then (unless --manifest false) write BENCH_<name>.json.
  void finish(const util::Cli& cli) {
    reject_unknown_flags(cli);
    if (store_) {
      const core::CheckpointStats stats = store_->stats();
      manifest_.set_resume(obs::ResumeInfo{store_->run_id(),
                                           store_->parent_run_id(), stats.hits,
                                           stats.discarded});
    }
    if (manifest_enabled_) {
      const std::string path = manifest_.write();
      std::fprintf(stderr, "wrote %s\n", path.c_str());
    }
  }

 private:
  std::string name_;
  obs::RunManifest manifest_;
  std::string out_;
  bool manifest_enabled_ = true;
  std::unique_ptr<core::CheckpointStore> store_;
};

/// The σ sweep of Fig. 5/6/9 and the ε sweep of Fig. 8/9/10.
inline const std::vector<double>& sigma_sweep() {
  static const std::vector<double> v = {0.1, 0.25, 0.5, 0.75, 1.0};
  return v;
}
inline const std::vector<double>& epsilon_sweep() {
  static const std::vector<double> v = {0.01, 0.05, 0.1, 0.15, 0.2};
  return v;
}

inline const std::vector<sim::Testbed>& both_testbeds() {
  static const std::vector<sim::Testbed> v = {
      sim::Testbed::kGlucosymOpenAps, sim::Testbed::kT1dBasalBolus};
  return v;
}

}  // namespace cpsguard::bench

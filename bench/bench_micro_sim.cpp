// Micro-benchmarks of the simulation substrate: patient plant integration,
// closed-loop cycles, STL rule evaluation, and dataset building.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "monitor/dataset.h"
#include "safety/rule_monitor.h"
#include "sim/closed_loop.h"
#include "util/rng.h"

namespace {

using namespace cpsguard;

void BM_PatientStep(benchmark::State& state) {
  const auto tb = static_cast<sim::Testbed>(state.range(0));
  auto patient = sim::make_patient(tb);
  const auto profiles = sim::testbed_profiles(tb, 1, 42);
  util::Rng rng(1);
  patient->reset(profiles[0], rng);
  const double basal = patient->recommended_basal_u_per_h();
  for (auto _ : state) {
    patient->step(basal, 0.0, 5.0);
    benchmark::DoNotOptimize(patient->bg());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PatientStep)->Arg(0)->Arg(1);

void BM_ClosedLoopTrace(benchmark::State& state) {
  const auto tb = static_cast<sim::Testbed>(state.range(0));
  auto patient = sim::make_patient(tb);
  auto controller = sim::make_controller(tb);
  const auto profiles = sim::testbed_profiles(tb, 1, 42);
  sim::SimConfig cfg;
  cfg.steps = 150;
  cfg.inject_fault = true;
  util::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_closed_loop(*patient, *controller, profiles[0], cfg, rng));
  }
  state.SetItemsProcessed(state.iterations() * 150);
}
BENCHMARK(BM_ClosedLoopTrace)->Arg(0)->Arg(1);

void BM_RuleMonitorStep(benchmark::State& state) {
  const safety::RuleBasedMonitor monitor;
  sim::StepRecord rec;
  rec.sensor_bg = 190.0;
  rec.d_bg = 0.6;
  rec.d_iob = -0.002;
  rec.action = sim::ControlAction::kDecreaseInsulin;
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor.predict_step(rec));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RuleMonitorStep);

void BM_BuildDataset(benchmark::State& state) {
  auto patient = sim::make_patient(sim::Testbed::kGlucosymOpenAps);
  auto controller = sim::make_controller(sim::Testbed::kGlucosymOpenAps);
  const auto profiles =
      sim::testbed_profiles(sim::Testbed::kGlucosymOpenAps, 1, 42);
  sim::SimConfig cfg;
  cfg.steps = 150;
  cfg.inject_fault = true;
  util::Rng rng(3);
  std::vector<sim::Trace> traces;
  for (int i = 0; i < 10; ++i) {
    traces.push_back(
        run_closed_loop(*patient, *controller, profiles[0], cfg, rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        monitor::build_dataset(traces, monitor::DatasetConfig{}));
  }
  state.SetItemsProcessed(state.iterations() * 10 * 145);
}
BENCHMARK(BM_BuildDataset);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): unless the caller passes their
// own --benchmark_out, default to emitting BENCH_micro_sim.json next to the
// binary so CI (and acceptance checks) always get a machine-readable record.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_micro_sim.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

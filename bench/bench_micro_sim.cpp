// Micro-benchmarks of the simulation substrate: patient plant integration,
// closed-loop cycles, STL rule evaluation, and dataset building.
#include <benchmark/benchmark.h>

#include "monitor/dataset.h"
#include "safety/rule_monitor.h"
#include "sim/closed_loop.h"
#include "util/rng.h"

namespace {

using namespace cpsguard;

void BM_PatientStep(benchmark::State& state) {
  const auto tb = static_cast<sim::Testbed>(state.range(0));
  auto patient = sim::make_patient(tb);
  const auto profiles = sim::testbed_profiles(tb, 1, 42);
  util::Rng rng(1);
  patient->reset(profiles[0], rng);
  const double basal = patient->recommended_basal_u_per_h();
  for (auto _ : state) {
    patient->step(basal, 0.0, 5.0);
    benchmark::DoNotOptimize(patient->bg());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PatientStep)->Arg(0)->Arg(1);

void BM_ClosedLoopTrace(benchmark::State& state) {
  const auto tb = static_cast<sim::Testbed>(state.range(0));
  auto patient = sim::make_patient(tb);
  auto controller = sim::make_controller(tb);
  const auto profiles = sim::testbed_profiles(tb, 1, 42);
  sim::SimConfig cfg;
  cfg.steps = 150;
  cfg.inject_fault = true;
  util::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_closed_loop(*patient, *controller, profiles[0], cfg, rng));
  }
  state.SetItemsProcessed(state.iterations() * 150);
}
BENCHMARK(BM_ClosedLoopTrace)->Arg(0)->Arg(1);

void BM_RuleMonitorStep(benchmark::State& state) {
  const safety::RuleBasedMonitor monitor;
  sim::StepRecord rec;
  rec.sensor_bg = 190.0;
  rec.d_bg = 0.6;
  rec.d_iob = -0.002;
  rec.action = sim::ControlAction::kDecreaseInsulin;
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor.predict_step(rec));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RuleMonitorStep);

void BM_BuildDataset(benchmark::State& state) {
  auto patient = sim::make_patient(sim::Testbed::kGlucosymOpenAps);
  auto controller = sim::make_controller(sim::Testbed::kGlucosymOpenAps);
  const auto profiles =
      sim::testbed_profiles(sim::Testbed::kGlucosymOpenAps, 1, 42);
  sim::SimConfig cfg;
  cfg.steps = 150;
  cfg.inject_fault = true;
  util::Rng rng(3);
  std::vector<sim::Trace> traces;
  for (int i = 0; i < 10; ++i) {
    traces.push_back(
        run_closed_loop(*patient, *controller, profiles[0], cfg, rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        monitor::build_dataset(traces, monitor::DatasetConfig{}));
  }
  state.SetItemsProcessed(state.iterations() * 10 * 145);
}
BENCHMARK(BM_BuildDataset);

}  // namespace

BENCHMARK_MAIN();

// Fig. 6: precision and recall of the MLP and MLP-Custom monitors under
// Gaussian noise in the T1DS2013 simulator. Paper shape: noise floods the
// baseline MLP with new alarms — recall rises while precision falls; the
// custom-loss monitor stays stable.
#include "bench_common.h"

using namespace cpsguard;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  util::set_log_level(util::LogLevel::kInfo);
  bench::BenchRun run("fig6_precision_recall", cli);

  core::Experiment exp(
      run.config(sim::Testbed::kT1dBasalBolus, cli));
  run.attach(exp);

  const core::MonitorVariant baseline{monitor::Arch::kMlp, false};
  const core::MonitorVariant custom{monitor::Arch::kMlp, true};

  util::CsvWriter csv({"model", "sigma", "precision", "recall", "f1"});
  std::printf("Fig. 6 — T1DS2013: precision/recall of MLP vs MLP-Custom(*)\n");
  util::Table table(
      {"Model", "sigma", "Precision", "Recall", "F1"});

  return run.campaign(cli, [&] {
  for (const auto& v : {baseline, custom}) {
    auto add = [&](double sigma, const core::EvalResult& r) {
      table.add_row({v.name(), util::Table::fixed(sigma, 2),
                     util::Table::fixed(r.confusion.precision(), 3),
                     util::Table::fixed(r.confusion.recall(), 3),
                     util::Table::fixed(r.f1(), 3)});
      csv.add_row({v.name(), util::CsvWriter::num(sigma),
                   util::CsvWriter::num(r.confusion.precision()),
                   util::CsvWriter::num(r.confusion.recall()),
                   util::CsvWriter::num(r.f1())});
    };
    add(0.0, exp.evaluate_clean(v));
    const auto sweep = exp.evaluate_under_gaussian_sweep(v, bench::sigma_sweep());
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      add(bench::sigma_sweep()[i], sweep[i]);
    }
  }

  table.print();
  run.write_csv(csv);
  });
}

// Micro-benchmarks of the NN substrate (google-benchmark): the kernels that
// dominate monitor training and FGSM crafting.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "nn/classifier.h"
#include "util/rng.h"

namespace {

using namespace cpsguard;

nn::Matrix random_matrix(int r, int c, util::Rng& rng) {
  nn::Matrix m(r, c);
  for (float& v : m.data()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return m;
}

nn::Tensor3 random_tensor(int b, int t, int f, util::Rng& rng) {
  nn::Tensor3 x(b, t, f);
  for (float& v : x.data()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return x;
}

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  util::Rng rng(1);
  const nn::Matrix a = random_matrix(n, n, rng);
  const nn::Matrix b = random_matrix(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2L * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_MlpForward(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  util::Rng rng(2);
  nn::MlpClassifier clf(6, 9, {256, 128}, 2, rng);
  const nn::Tensor3 x = random_tensor(batch, 6, 9, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clf.predict_proba(x));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_MlpForward)->Arg(64)->Arg(256);

void BM_MlpTrainBatch(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  util::Rng rng(3);
  nn::MlpClassifier clf(6, 9, {256, 128}, 2, rng);
  const nn::Tensor3 x = random_tensor(batch, 6, 9, rng);
  std::vector<int> y(static_cast<std::size_t>(batch));
  for (int i = 0; i < batch; ++i) y[static_cast<std::size_t>(i)] = i % 2;
  nn::Adam adam(0.001);
  const nn::SoftmaxCrossEntropy ce;
  for (auto _ : state) {
    benchmark::DoNotOptimize(clf.train_batch(x, y, {}, ce, adam));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_MlpTrainBatch)->Arg(64);

void BM_LstmForward(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  util::Rng rng(4);
  nn::LstmClassifier clf(6, 9, {128, 64}, 2, rng);
  const nn::Tensor3 x = random_tensor(batch, 6, 9, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clf.predict_proba(x));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_LstmForward)->Arg(64)->Arg(256);

void BM_LstmTrainBatch(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  util::Rng rng(5);
  nn::LstmClassifier clf(6, 9, {128, 64}, 2, rng);
  const nn::Tensor3 x = random_tensor(batch, 6, 9, rng);
  std::vector<int> y(static_cast<std::size_t>(batch));
  for (int i = 0; i < batch; ++i) y[static_cast<std::size_t>(i)] = i % 2;
  nn::Adam adam(0.001);
  const nn::SoftmaxCrossEntropy ce;
  for (auto _ : state) {
    benchmark::DoNotOptimize(clf.train_batch(x, y, {}, ce, adam));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_LstmTrainBatch)->Arg(64);

void BM_LstmInputGradient(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  util::Rng rng(6);
  nn::LstmClassifier clf(6, 9, {128, 64}, 2, rng);
  const nn::Tensor3 x = random_tensor(batch, 6, 9, rng);
  std::vector<int> y(static_cast<std::size_t>(batch));
  for (int i = 0; i < batch; ++i) y[static_cast<std::size_t>(i)] = i % 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(clf.loss_input_gradient(x, y));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_LstmInputGradient)->Arg(64);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): unless the caller passes their
// own --benchmark_out, default to emitting BENCH_micro_nn.json next to the
// binary so CI (and acceptance checks) always get a machine-readable record.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_micro_nn.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

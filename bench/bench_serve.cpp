// Streaming-service throughput bench: many concurrent patient sessions,
// per-session OnlineMonitor loop (batch-1 inference) vs serve::Engine
// (cross-session micro-batched inference), at equal thread count.
//
// Baseline partitions the sessions across T threads; each thread owns a
// private clone of the trained monitor and a dedicated OnlineMonitor per
// session, so it runs with zero synchronization — the strongest fair
// baseline for "one monitor instance per patient". The engine run ingests
// the same records round-robin from one thread and ticks every cycle,
// fanning the shard flushes across the same T-way parallelism.
//
// Both modes stream identical records, warm the windows unmeasured, and
// then time `--cycles` steady-state cycles; the verdict counts must match
// exactly or the bench aborts.
//
// Extra flags:
//   --sessions N      concurrent sessions                (default 1000)
//   --cycles N        measured steady-state cycles       (default 40)
//   --shards N        engine shards (0 = thread count)   (default 0)
//   --batch N         engine micro-batch rows            (default 256)
//   --deterministic B engine deterministic mode          (default false)
//   --swap-every N    hot self-swap every N engine cycles (0 = off,
//                     default 0) — measures steady-state cost of the
//                     epoch-boundary swap protocol (raw-ring rescale of
//                     every live session) without changing the verdicts
#include <algorithm>
#include <chrono>
#include <functional>
#include <thread>

#include "bench_common.h"
#include "serve/engine.h"

using namespace cpsguard;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The record session `s` submits on cycle `t`: sessions replay the test
/// traces round-robin, each with its own phase so shards see mixed content.
const sim::StepRecord& record_for(const std::vector<sim::Trace>& traces,
                                  int s, int t) {
  const auto& steps =
      traces[static_cast<std::size_t>(s) % traces.size()].steps;
  return steps[static_cast<std::size_t>(s + t) % steps.size()];
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  util::set_log_level(util::LogLevel::kInfo);
  bench::BenchRun run("serve", cli);

  const int sessions = cli.get_int("sessions", 1000);
  const int cycles = cli.get_int("cycles", 40);
  const bool deterministic = cli.get_bool("deterministic", false);
  const int threads = static_cast<int>(util::effective_parallelism());
  const int shards = cli.get_int("shards", 0) > 0 ? cli.get_int("shards", 0)
                                                  : threads;
  const int batch = cli.get_int("batch", 256);
  const int swap_every = cli.get_int("swap-every", 0);
  run.manifest().set_param("sessions", static_cast<long long>(sessions));
  run.manifest().set_param("cycles", static_cast<long long>(cycles));
  run.manifest().set_param("shards", static_cast<long long>(shards));
  run.manifest().set_param("batch", static_cast<long long>(batch));
  run.manifest().set_param("deterministic", deterministic ? 1LL : 0LL);
  run.manifest().set_param("swap_every", static_cast<long long>(swap_every));

  core::Experiment exp(run.config(sim::Testbed::kGlucosymOpenAps, cli));
  run.attach(exp);
  monitor::MlMonitor& mon =
      exp.monitor(core::MonitorVariant{monitor::Arch::kMlp, false});
  const int window = exp.config().dataset.window;
  run.manifest().set_param("window", static_cast<long long>(window));
  const std::vector<sim::Trace>& traces = exp.test_traces();

  // ---- Baseline: per-session OnlineMonitors, sessions striped over T
  // threads, each thread on a private monitor clone. Warm-up fills every
  // window (window-1 cycles emit nothing), then `cycles` cycles are timed.
  long long base_verdicts = 0;
  double base_seconds = 0.0;
  {
    std::vector<std::unique_ptr<monitor::MlMonitor>> clones;
    clones.reserve(static_cast<std::size_t>(threads));
    for (int w = 0; w < threads; ++w) clones.push_back(mon.clone());
    std::vector<std::vector<core::OnlineMonitor>> monitors(
        static_cast<std::size_t>(threads));
    std::vector<std::vector<int>> ids(static_cast<std::size_t>(threads));
    for (int s = 0; s < sessions; ++s) {
      const auto w = static_cast<std::size_t>(s % threads);
      monitors[w].emplace_back(*clones[w], window);
      ids[w].push_back(s);
    }
    const auto stream = [&](int worker, int from, int to,
                            long long& verdicts) {
      const auto w = static_cast<std::size_t>(worker);
      for (int t = from; t < to; ++t) {
        for (std::size_t i = 0; i < monitors[w].size(); ++i) {
          const auto v =
              monitors[w][i].step(record_for(traces, ids[w][i], t));
          if (v.ready) ++verdicts;
        }
      }
    };
    const auto run_threads = [&](int from, int to) {
      std::vector<long long> counts(static_cast<std::size_t>(threads), 0);
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(threads));
      for (int w = 0; w < threads; ++w) {
        pool.emplace_back(stream, w, from, to,
                          std::ref(counts[static_cast<std::size_t>(w)]));
      }
      for (auto& th : pool) th.join();
      long long total = 0;
      for (const long long c : counts) total += c;
      return total;
    };
    run_threads(0, window - 1);  // warm-up: fill windows, no verdicts
    const auto start = Clock::now();
    base_verdicts = run_threads(window - 1, window - 1 + cycles);
    base_seconds = seconds_since(start);
  }

  // ---- Engine: one ingest loop, tick per cycle, shard flushes fanned
  // across the shared pool (serial in deterministic mode).
  long long engine_verdicts = 0;
  double engine_seconds = 0.0;
  {
    serve::EngineConfig cfg;
    cfg.shards = shards;
    cfg.window = window;
    cfg.max_batch = batch;
    cfg.queue_capacity =
        std::max(2 * batch, 4 * (sessions / std::max(shards, 1) + 1));
    cfg.deterministic = deterministic;
    run.manifest().set_param("queue_capacity",
                             static_cast<long long>(cfg.queue_capacity));
    serve::Engine engine(mon, cfg);
    int measured = 0;
    const auto cycle = [&](int t, bool timed) {
      // Self-swaps are verdict-neutral (the raw-ring rescale is
      // bit-identical to fresh ingest), so the baseline comparison stays
      // exact while the swap cost lands inside the timed region.
      if (timed && swap_every > 0 && ++measured % swap_every == 0) {
        engine.stage_model(mon, engine.active_version());
      }
      for (int s = 0; s < sessions; ++s) {
        engine.submit(static_cast<serve::SessionId>(s),
                      record_for(traces, s, t));
      }
      return static_cast<long long>(engine.tick().size());
    };
    for (int t = 0; t < window - 1; ++t) cycle(t, false);  // warm-up
    const auto start = Clock::now();
    for (int t = window - 1; t < window - 1 + cycles; ++t) {
      engine_verdicts += cycle(t, true);
    }
    engine_seconds = seconds_since(start);
    const serve::SwapStats& ss = engine.swap_stats();
    run.manifest().set_param("swaps", static_cast<long long>(ss.swaps));
    run.manifest().set_param("swap_max_latency_ticks",
                             static_cast<long long>(ss.max_latency_ticks));
  }

  if (engine_verdicts != base_verdicts) {
    std::fprintf(stderr,
                 "verdict count mismatch: baseline %lld vs engine %lld\n",
                 base_verdicts, engine_verdicts);
    return 1;
  }

  const double base_rate =
      base_seconds > 0 ? static_cast<double>(base_verdicts) / base_seconds : 0;
  const double engine_rate =
      engine_seconds > 0
          ? static_cast<double>(engine_verdicts) / engine_seconds
          : 0;
  const double speedup = base_rate > 0 ? engine_rate / base_rate : 0;

  util::CsvWriter csv({"mode", "sessions", "threads", "shards", "batch",
                       "cycles", "windows", "seconds", "windows_per_sec"});
  csv.add_row({"online_monitor", std::to_string(sessions),
               std::to_string(threads), "1", "1", std::to_string(cycles),
               std::to_string(base_verdicts),
               util::CsvWriter::num(base_seconds),
               util::CsvWriter::num(base_rate)});
  csv.add_row({deterministic ? "engine_deterministic" : "engine",
               std::to_string(sessions), std::to_string(threads),
               std::to_string(shards), std::to_string(batch),
               std::to_string(cycles), std::to_string(engine_verdicts),
               util::CsvWriter::num(engine_seconds),
               util::CsvWriter::num(engine_rate)});

  std::printf("\nServe throughput — %d sessions, %d threads, window %d\n",
              sessions, threads, window);
  util::Table table({"Mode", "Windows", "Seconds", "Windows/s"});
  table.add_row({"OnlineMonitor loop", std::to_string(base_verdicts),
                 util::Table::fixed(base_seconds, 3),
                 util::Table::fixed(base_rate, 0)});
  table.add_row({deterministic ? "Engine (deterministic)" : "Engine",
                 std::to_string(engine_verdicts),
                 util::Table::fixed(engine_seconds, 3),
                 util::Table::fixed(engine_rate, 0)});
  table.print();
  std::printf("speedup: %.2fx\n", speedup);
  run.manifest().set_param("speedup", speedup);

  run.write_csv(csv);
  run.finish(cli);
  return 0;
}

// Fig. 9: robustness-error (Eq. 5) heat-map of every monitor against
// Gaussian noise (σ sweep) and white-box FGSM (ε sweep), both simulators —
// plus the paper's headline aggregate: the average robustness-error
// reduction achieved by the semantic-loss monitors (paper: up to 22.2% for
// Gaussian, 54.2% for FGSM).
//
// Ablation flags:
//   --mask sensors|commands|all   which features FGSM may touch (default all)
#include "bench_common.h"

using namespace cpsguard;

namespace {

attack::FeatureMask parse_mask(const std::string& name) {
  if (name == "sensors") return attack::FeatureMask::kSensorsOnly;
  if (name == "commands") return attack::FeatureMask::kCommandsOnly;
  return attack::FeatureMask::kAll;
}

struct Reduction {
  double baseline_sum = 0.0;
  double custom_sum = 0.0;
  int n = 0;

  void add(double baseline, double custom) {
    baseline_sum += baseline;
    custom_sum += custom;
    ++n;
  }
  [[nodiscard]] double percent() const {
    return baseline_sum <= 0.0 ? 0.0
                               : 100.0 * (baseline_sum - custom_sum) / baseline_sum;
  }
};

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  util::set_log_level(util::LogLevel::kInfo);
  bench::BenchRun run("fig9_robustness_error", cli);
  const attack::FeatureMask mask = parse_mask(cli.get("mask", "all"));
  run.manifest().set_param("mask", cli.get("mask", "all"));

  util::CsvWriter csv(
      {"simulator", "model", "perturbation", "level", "robustness_error"});
  Reduction gaussian_reduction, fgsm_reduction;

  return run.campaign(cli, [&] {
  for (const sim::Testbed tb : bench::both_testbeds()) {
    core::Experiment exp(run.config(tb, cli));
    run.attach(exp);
    exp.train_all();
    std::printf("\nFig. 9 — %s: robustness error heat-map\n",
                sim::to_string(tb).c_str());
    util::Table table({"Model", "g0.1", "g0.25", "g0.5", "g0.75", "g1.0",
                       "f0.01", "f0.05", "f0.1", "f0.15", "f0.2"});

    // Collect per-variant rows; pair each baseline with its -Custom twin
    // for the aggregate reduction.
    std::map<std::string, std::vector<double>> errors;
    for (const auto& v : core::all_variants()) {
      std::vector<std::string> row = {v.name()};
      auto& errs = errors[v.name()];
      // Parallel sweeps (bit-identical to the serial per-point loops);
      // rows keep their sweep-order emission.
      const auto gauss = exp.evaluate_under_gaussian_sweep(v, bench::sigma_sweep());
      for (std::size_t i = 0; i < gauss.size(); ++i) {
        const double e = gauss[i].robustness_err;
        errs.push_back(e);
        row.push_back(util::Table::fixed(e, 3));
        csv.add_row({sim::to_string(tb), v.name(), "gaussian",
                     util::CsvWriter::num(bench::sigma_sweep()[i]),
                     util::CsvWriter::num(e)});
      }
      const auto fgsm =
          exp.evaluate_under_fgsm_sweep(v, bench::epsilon_sweep(), mask);
      for (std::size_t i = 0; i < fgsm.size(); ++i) {
        const double e = fgsm[i].robustness_err;
        errs.push_back(e);
        row.push_back(util::Table::fixed(e, 3));
        csv.add_row({sim::to_string(tb), v.name(), "fgsm",
                     util::CsvWriter::num(bench::epsilon_sweep()[i]),
                     util::CsvWriter::num(e)});
      }
      table.add_row(std::move(row));
    }
    table.print();

    const std::size_t n_sigma = bench::sigma_sweep().size();
    for (const auto arch : {monitor::Arch::kMlp, monitor::Arch::kLstm}) {
      const auto& base = errors[core::MonitorVariant{arch, false}.name()];
      const auto& cust = errors[core::MonitorVariant{arch, true}.name()];
      for (std::size_t i = 0; i < base.size(); ++i) {
        (i < n_sigma ? gaussian_reduction : fgsm_reduction)
            .add(base[i], cust[i]);
      }
    }
  }

  std::printf(
      "\nAverage robustness-error reduction from the semantic loss\n"
      "(across models and simulators; paper reports up to 22.2%% / 54.2%%):\n"
      "  Gaussian noise: %.1f%%\n  FGSM attacks:   %.1f%%\n",
      gaussian_reduction.percent(), fgsm_reduction.percent());

  run.write_csv(csv);
  });
}

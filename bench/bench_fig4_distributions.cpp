// Fig. 4: distribution of the test inputs (BG feature) with and without
// Gaussian noise N(0, (0.5·std)²), for both simulators. Paper shape: the two
// simulators have visibly different BG distributions; 0.5·std noise blurs
// but does not move them.
#include "bench_common.h"
#include "monitor/features.h"

using namespace cpsguard;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  util::set_log_level(util::LogLevel::kInfo);
  bench::BenchRun run("fig4_distributions", cli);
  const double sigma = cli.get_double("sigma", 0.5);
  const int bins = cli.get_int("bins", 26);
  run.manifest().set_param("sigma", sigma);
  run.manifest().set_param("bins", static_cast<long long>(bins));

  util::CsvWriter csv({"simulator", "variant", "bg_bin_center", "density"});

  for (const sim::Testbed tb : bench::both_testbeds()) {
    core::Experiment exp(run.config(tb, cli));
    // Any monitor's scaler supplies the per-feature stds; use baseline MLP.
    auto& mon = exp.monitor({monitor::Arch::kMlp, false});

    attack::GaussianNoiseConfig gc;
    gc.sigma_factor = sigma;
    util::Rng rng(777);
    const nn::Tensor3& clean = exp.test_data().x;
    const nn::Tensor3 noisy =
        attack::add_gaussian_noise(clean, mon.scaler(), gc, rng);

    using monitor::Features;
    util::Histogram h_clean(40.0, 300.0, bins);
    util::Histogram h_noisy(40.0, 300.0, bins);
    for (int b = 0; b < clean.batch(); ++b) {
      for (int t = 0; t < clean.time(); ++t) {
        h_clean.add(clean.at(b, t, Features::kBg));
        h_noisy.add(noisy.at(b, t, Features::kBg));
      }
    }

    std::printf("\nFig. 4 — %s: BG distribution (sigma=%.2f std)\n",
                sim::to_string(tb).c_str(), sigma);
    for (int bin = 0; bin < bins; ++bin) {
      const double c = h_clean.density(bin);
      const double n = h_noisy.density(bin);
      std::printf("%6.1f  %-30s | %-30s\n", h_clean.bin_center(bin),
                  std::string(static_cast<std::size_t>(c * 300), '#').c_str(),
                  std::string(static_cast<std::size_t>(n * 300), '*').c_str());
      csv.add_row({sim::to_string(tb), "clean",
                   util::CsvWriter::num(h_clean.bin_center(bin)),
                   util::CsvWriter::num(c)});
      csv.add_row({sim::to_string(tb), "noisy",
                   util::CsvWriter::num(h_noisy.bin_center(bin)),
                   util::CsvWriter::num(n)});
    }
    std::printf("        ('#' clean, '*' with noise)\n");
  }

  run.write_csv(csv);
  run.finish(cli);
  return 0;
}

// Extension bench (beyond the paper's tables): threshold-free AUC, hazard
// detection latency (alarm lead time before hazard onset), and per-hazard
// recall (H1 hypoglycemia vs H2 hyperglycemia) for every monitor — the
// numbers a mitigation-system designer would ask for next.
#include "bench_common.h"

using namespace cpsguard;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  util::set_log_level(util::LogLevel::kInfo);
  bench::BenchRun run("extended_metrics", cli);
  const int max_lead = cli.get_int("max-lead", 12);  // 1 h look-back
  run.manifest().set_param("max_lead", static_cast<long long>(max_lead));

  util::CsvWriter csv({"simulator", "model", "auc", "episodes",
                       "episode_detection_rate", "mean_lead_min",
                       "h1_recall", "h2_recall"});

  for (const sim::Testbed tb : bench::both_testbeds()) {
    core::Experiment exp(run.config(tb, cli));
    exp.train_all();
    const auto& test = exp.test_data();
    const auto& traces = exp.test_traces();

    std::printf("\nExtended metrics — %s (lead window %d min)\n",
                sim::to_string(tb).c_str(),
                static_cast<int>(max_lead * sim::kControlPeriodMin));
    util::Table table({"Model", "AUC", "episodes", "detected", "mean lead (min)",
                       "H1 recall", "H2 recall"});

    auto add_row = [&](const std::string& name, std::span<const double> scores,
                       std::span<const int> preds) {
      const double auc = scores.empty() ? 0.5 : eval::roc_auc(scores, test.labels);
      const auto episodes = eval::detection_latencies(test, preds, traces, max_lead);
      const auto lat = eval::summarize_latencies(episodes);
      const auto hb = eval::hazard_breakdown(test, preds, traces);
      table.add_row({name, util::Table::fixed(auc, 3),
                     std::to_string(lat.episodes), std::to_string(lat.detected),
                     util::Table::fixed(lat.mean_lead_minutes, 1),
                     util::Table::fixed(hb.h1_recall(), 3),
                     util::Table::fixed(hb.h2_recall(), 3)});
      csv.add_row({sim::to_string(tb), name, util::CsvWriter::num(auc),
                   std::to_string(lat.episodes),
                   util::CsvWriter::num(lat.detection_rate),
                   util::CsvWriter::num(lat.mean_lead_minutes),
                   util::CsvWriter::num(hb.h1_recall()),
                   util::CsvWriter::num(hb.h2_recall())});
    };

    for (const auto& v : core::all_variants()) {
      auto& mon = exp.monitor(v);
      // Chunk-parallel over the test batch; bit-identical to a single call.
      const nn::Matrix probs = eval::batched_predict_proba(mon, test.x);
      std::vector<double> scores(static_cast<std::size_t>(probs.rows()));
      for (int i = 0; i < probs.rows(); ++i) {
        scores[static_cast<std::size_t>(i)] = probs.at(i, 1);
      }
      add_row(v.name(), scores, exp.clean_predictions(v));
    }

    // Rule-based monitor: binary output doubles as its score.
    std::vector<int> rule_preds(static_cast<std::size_t>(test.size()), 0);
    auto& rm = exp.rule_monitor();
    for (int i = 0; i < test.size(); ++i) {
      const auto si = static_cast<std::size_t>(i);
      rule_preds[si] = rm.predict_step(
          traces[static_cast<std::size_t>(test.trace_id[si])]
              .steps[static_cast<std::size_t>(test.step_index[si])]);
    }
    std::vector<double> rule_scores(rule_preds.begin(), rule_preds.end());
    add_row("Rule-based", rule_scores, rule_preds);

    table.print();
  }

  run.write_csv(csv);
  run.finish(cli);
  return 0;
}

// Ablation: semantic loss vs. adversarial training (the defense the paper's
// related-work section contrasts against) vs. their combination, evaluated
// under both single-step FGSM and iterative PGD. Paper's argument: the
// semantic loss gains robustness *without* the clean-accuracy cost and
// attack-specificity of adversarial training.
//
//   ./bench_ablation_defenses [--arch mlp|lstm] [--testbed ...] [--eps 0.1]
#include "attack/pgd.h"
#include "bench_common.h"

using namespace cpsguard;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  util::set_log_level(util::LogLevel::kInfo);
  bench::BenchRun run("ablation_defenses", cli);
  const double eps = cli.get_double("eps", 0.1);
  run.manifest().set_param("eps", eps);
  run.manifest().set_param("arch", cli.get("arch", "mlp"));
  const monitor::Arch arch = cli.get("arch", "mlp") == "lstm"
                                 ? monitor::Arch::kLstm
                                 : monitor::Arch::kMlp;
  const sim::Testbed tb = cli.get("testbed", "glucosym") == "t1d"
                              ? sim::Testbed::kT1dBasalBolus
                              : sim::Testbed::kGlucosymOpenAps;

  core::ExperimentConfig cfg = run.config(tb, cli);
  core::Experiment exp(cfg);
  exp.prepare();
  const auto& train = exp.train_data();
  const auto& test = exp.test_data();

  struct Defense {
    std::string name;
    bool semantic;
    bool adv_training;
  };
  const std::vector<Defense> defenses = {
      {"baseline", false, false},
      {"semantic loss", true, false},
      {"adversarial training", false, true},
      {"semantic + adv. training", true, true},
  };

  util::Table table({"Defense", "clean F1", "FGSM F1", "FGSM err", "PGD F1",
                     "PGD err"});
  util::CsvWriter csv({"defense", "clean_f1", "fgsm_f1", "fgsm_error",
                       "pgd_f1", "pgd_error"});

  for (const Defense& d : defenses) {
    monitor::MonitorConfig mc;
    mc.arch = arch;
    mc.semantic = d.semantic;
    mc.semantic_weight = arch == monitor::Arch::kMlp
                             ? cfg.semantic_weight_mlp
                             : cfg.semantic_weight_lstm;
    mc.adversarial_training = d.adv_training;
    mc.adv_epsilon = eps;
    mc.epochs = cfg.epochs;
    mc.batch_size = cfg.batch_size;
    mc.learning_rate = cfg.learning_rate;
    mc.seed = cfg.campaign.seed;
    monitor::MlMonitor mon(mc);
    mon.train(train);

    const auto clean_preds = mon.predict(test.x);
    const auto clean = exp.evaluate(clean_preds);
    const nn::Tensor3 scaled = mon.scaler().transform(test.x);

    attack::FgsmConfig fc;
    fc.epsilon = eps;
    const auto fgsm_preds = mon.predict_scaled(
        attack::fgsm_attack(mon.classifier(), scaled, test.labels, fc));

    attack::PgdConfig pc;
    pc.epsilon = eps;
    pc.step_size = eps / 4.0;
    pc.iterations = 8;
    const auto pgd_preds = mon.predict_scaled(
        attack::pgd_attack(mon.classifier(), scaled, test.labels, pc));

    const double fgsm_err = eval::robustness_error(clean_preds, fgsm_preds);
    const double pgd_err = eval::robustness_error(clean_preds, pgd_preds);
    table.add_row({d.name, util::Table::fixed(clean.f1(), 3),
                   util::Table::fixed(exp.evaluate(fgsm_preds).f1(), 3),
                   util::Table::fixed(fgsm_err, 3),
                   util::Table::fixed(exp.evaluate(pgd_preds).f1(), 3),
                   util::Table::fixed(pgd_err, 3)});
    csv.add_row({d.name, util::CsvWriter::num(clean.f1()),
                 util::CsvWriter::num(exp.evaluate(fgsm_preds).f1()),
                 util::CsvWriter::num(fgsm_err),
                 util::CsvWriter::num(exp.evaluate(pgd_preds).f1()),
                 util::CsvWriter::num(pgd_err)});
  }

  std::printf("Ablation — defenses (%s, %s, eps=%.2f)\n",
              to_string(arch).c_str(), sim::to_string(tb).c_str(), eps);
  table.print();
  run.write_csv(csv);
  run.finish(cli);
  return 0;
}

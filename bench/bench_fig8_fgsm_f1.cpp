// Fig. 8: F1 score of each monitor under white-box FGSM attacks with
// ε ∈ {0.01, 0.05, 0.1, 0.15, 0.2}, both simulators. Paper shape: baseline
// F1 drops sharply with ε; the -Custom monitors hold; LSTM-Custom ends
// highest overall.
#include "bench_common.h"

using namespace cpsguard;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  util::set_log_level(util::LogLevel::kInfo);
  bench::BenchRun run("fig8_fgsm_f1", cli);

  util::CsvWriter csv({"simulator", "model", "epsilon", "f1", "acc"});

  return run.campaign(cli, [&] {
  for (const sim::Testbed tb : bench::both_testbeds()) {
    core::Experiment exp(run.config(tb, cli));
    run.attach(exp);
    exp.train_all();
    std::printf("\nFig. 8 — %s: F1 vs white-box FGSM epsilon\n",
                sim::to_string(tb).c_str());
    util::Table table({"Model", "clean", "0.01", "0.05", "0.1", "0.15", "0.2"});
    for (const auto& v : core::all_variants()) {
      std::vector<std::string> row = {v.name()};
      const auto clean = exp.evaluate_clean(v);
      row.push_back(util::Table::fixed(clean.f1(), 3));
      csv.add_row({sim::to_string(tb), v.name(), "0",
                   util::CsvWriter::num(clean.f1()),
                   util::CsvWriter::num(clean.accuracy())});
      // One parallel sweep over all epsilon points (bit-identical to the
      // serial per-point loop); rows are still emitted in sweep order.
      const auto sweep = exp.evaluate_under_fgsm_sweep(v, bench::epsilon_sweep());
      for (std::size_t i = 0; i < sweep.size(); ++i) {
        const double eps = bench::epsilon_sweep()[i];
        const auto& r = sweep[i];
        row.push_back(util::Table::fixed(r.f1(), 3));
        csv.add_row({sim::to_string(tb), v.name(), util::CsvWriter::num(eps),
                     util::CsvWriter::num(r.f1()),
                     util::CsvWriter::num(r.accuracy())});
      }
      table.add_row(std::move(row));
    }
    table.print();
  }

  run.write_csv(csv);
  });
}

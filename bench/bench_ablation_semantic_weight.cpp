// Ablation: the semantic-loss weight w (Eq. 2), which the paper leaves
// implicit. Sweeps w and reports the accuracy/robustness trade-off: w = 0 is
// the data-only baseline; large w collapses the model onto the rule base
// (high robustness, rule-level F1).
//
//   ./bench_ablation_semantic_weight [--arch mlp|lstm] [--testbed ...]
//                                    [--eps 0.1] [--ws 0,0.5,1,2,4]
#include <sstream>

#include "bench_common.h"

using namespace cpsguard;

namespace {

std::vector<double> parse_list(const std::string& csv) {
  std::vector<double> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stod(item));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  util::set_log_level(util::LogLevel::kInfo);
  bench::BenchRun run("ablation_semantic_weight", cli);
  const double eps = cli.get_double("eps", 0.1);
  const auto ws = parse_list(cli.get("ws", "0,0.25,0.5,1,2,4"));
  run.manifest().set_param("eps", eps);
  run.manifest().set_param("ws", cli.get("ws", "0,0.25,0.5,1,2,4"));
  run.manifest().set_param("arch", cli.get("arch", "mlp"));
  const monitor::Arch arch = cli.get("arch", "mlp") == "lstm"
                                 ? monitor::Arch::kLstm
                                 : monitor::Arch::kMlp;
  const sim::Testbed tb = cli.get("testbed", "glucosym") == "t1d"
                              ? sim::Testbed::kT1dBasalBolus
                              : sim::Testbed::kGlucosymOpenAps;

  core::ExperimentConfig cfg = run.config(tb, cli);
  core::Experiment exp(cfg);
  exp.prepare();
  const auto& train = exp.train_data();
  const auto& test = exp.test_data();

  util::Table table({"w", "clean ACC", "clean F1", "FGSM F1", "robust-err"});
  util::CsvWriter csv({"w", "clean_acc", "clean_f1", "fgsm_f1", "robustness_error"});

  for (const double w : ws) {
    monitor::MonitorConfig mc;
    mc.arch = arch;
    mc.semantic = w > 0.0;
    mc.semantic_weight = w;
    mc.epochs = cfg.epochs;
    mc.batch_size = cfg.batch_size;
    mc.learning_rate = cfg.learning_rate;
    mc.seed = cfg.campaign.seed;
    monitor::MlMonitor mon(mc);
    mon.train(train);

    const auto clean_preds = mon.predict(test.x);
    const auto clean = exp.evaluate(clean_preds);

    attack::FgsmConfig fc;
    fc.epsilon = eps;
    const nn::Tensor3 scaled = mon.scaler().transform(test.x);
    const nn::Tensor3 adv =
        attack::fgsm_attack(mon.classifier(), scaled, test.labels, fc);
    const auto adv_preds = mon.predict_scaled(adv);
    const auto attacked = exp.evaluate(adv_preds);
    const double rerr = eval::robustness_error(clean_preds, adv_preds);

    table.add_row({util::Table::fixed(w, 2), util::Table::fixed(clean.accuracy(), 3),
                   util::Table::fixed(clean.f1(), 3),
                   util::Table::fixed(attacked.f1(), 3),
                   util::Table::fixed(rerr, 3)});
    csv.add_row({util::CsvWriter::num(w), util::CsvWriter::num(clean.accuracy()),
                 util::CsvWriter::num(clean.f1()),
                 util::CsvWriter::num(attacked.f1()), util::CsvWriter::num(rerr)});
  }

  std::printf("Ablation — semantic weight w (%s, %s, FGSM eps=%.2f)\n",
              to_string(arch).c_str(), sim::to_string(tb).c_str(), eps);
  table.print();
  run.write_csv(csv);
  run.finish(cli);
  return 0;
}

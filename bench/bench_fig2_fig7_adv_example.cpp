// Fig. 2 / Fig. 7: a concrete white-box FGSM adversarial example — a window
// the monitor confidently classifies as unsafe whose prediction flips to
// safe after an imperceptible perturbation. Prints the clean vs adversarial
// input series (BG, IOB, rate) and the confidence flip, and writes both
// windows as CSV for plotting.
#include "bench_common.h"
#include "monitor/features.h"

using namespace cpsguard;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  util::set_log_level(util::LogLevel::kInfo);
  bench::BenchRun run("fig2_fig7_adv_example", cli);
  const double eps = cli.get_double("eps", 0.2);
  const std::string arch_name = cli.get("arch", "lstm");
  run.manifest().set_param("eps", eps);
  run.manifest().set_param("arch", arch_name);

  core::Experiment exp(
      run.config(sim::Testbed::kGlucosymOpenAps, cli));
  const core::MonitorVariant variant{
      arch_name == "mlp" ? monitor::Arch::kMlp : monitor::Arch::kLstm, false};
  auto& mon = exp.monitor(variant);

  const auto& test = exp.test_data();
  const nn::Tensor3 scaled = mon.scaler().transform(test.x);
  attack::FgsmConfig fc;
  fc.epsilon = eps;
  const nn::Tensor3 adv = attack::fgsm_attack(mon.classifier(), scaled,
                                              test.labels, fc);

  const nn::Matrix p_clean = mon.classifier().predict_proba(scaled);
  const nn::Matrix p_adv = mon.classifier().predict_proba(adv);

  // Find the most dramatic unsafe→safe flip (paper's Fig. 2 story).
  int best = -1;
  float best_gap = 0.0f;
  for (int i = 0; i < test.size(); ++i) {
    if (p_clean.at(i, 1) > 0.5f && p_adv.at(i, 1) < 0.5f) {
      const float gap = p_clean.at(i, 1) + p_adv.at(i, 0);
      if (gap > best_gap) {
        best_gap = gap;
        best = i;
      }
    }
  }
  if (best < 0) {
    std::printf("no unsafe->safe flip found at eps=%.2f; try a larger eps\n", eps);
    run.finish(cli);
    return 0;
  }

  std::printf(
      "Fig. 2/7 — %s monitor, FGSM eps=%.2f (each step = 5 minutes)\n"
      "clean:       P(unsafe) = %5.2f%%  -> classified UNSAFE\n"
      "adversarial: P(safe)   = %5.2f%%  -> classified SAFE\n\n",
      variant.name().c_str(), eps, 100.0 * p_clean.at(best, 1),
      100.0 * p_adv.at(best, 0));

  const nn::Tensor3 adv_raw = mon.scaler().inverse_transform(adv);
  util::Table table({"step", "BG", "BG(adv)", "IOB", "IOB(adv)", "RATE",
                     "RATE(adv)"});
  util::CsvWriter csv({"step", "feature", "clean", "adversarial"});
  using monitor::Features;
  for (int t = 0; t < test.x.time(); ++t) {
    table.add_row({std::to_string(t),
                   util::Table::fixed(test.x.at(best, t, Features::kBg), 1),
                   util::Table::fixed(adv_raw.at(best, t, Features::kBg), 1),
                   util::Table::fixed(test.x.at(best, t, Features::kIob), 2),
                   util::Table::fixed(adv_raw.at(best, t, Features::kIob), 2),
                   util::Table::fixed(test.x.at(best, t, Features::kRate), 2),
                   util::Table::fixed(adv_raw.at(best, t, Features::kRate), 2)});
    for (const int f : {Features::kBg, Features::kIob, Features::kRate}) {
      csv.add_row({std::to_string(t), Features::name(f),
                   util::CsvWriter::num(test.x.at(best, t, f)),
                   util::CsvWriter::num(adv_raw.at(best, t, f))});
    }
  }
  table.print();
  std::printf("\nL-infinity distance in model space: %.4f (budget %.2f)\n",
              attack::linf_distance(adv, scaled), eps);

  run.write_csv(csv);
  run.finish(cli);
  return 0;
}

// Fig. 10: robustness error under *black-box* FGSM attacks crafted on an
// MLP(128-64) substitute trained from query access. Paper shape: black-box
// errors are far below white-box for the LSTM target (≈2x less), and the
// custom-loss monitors keep the error near zero.
#include "bench_common.h"

using namespace cpsguard;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  util::set_log_level(util::LogLevel::kInfo);
  bench::BenchRun run("fig10_blackbox", cli);

  util::CsvWriter csv(
      {"simulator", "model", "epsilon", "blackbox_error", "whitebox_error"});

  return run.campaign(cli, [&] {
  for (const sim::Testbed tb : bench::both_testbeds()) {
    core::Experiment exp(run.config(tb, cli));
    run.attach(exp);
    exp.train_all();
    std::printf("\nFig. 10 — %s: black-box robustness error (white-box in parens)\n",
                sim::to_string(tb).c_str());
    util::Table table({"Model", "0.01", "0.05", "0.1", "0.15", "0.2"});
    for (const auto& v : core::all_variants()) {
      std::vector<std::string> row = {v.name()};
      // Parallel black-box and white-box sweeps (bit-identical to the
      // serial per-point loops); rows keep their sweep-order emission.
      const auto blacks = exp.evaluate_under_blackbox_sweep(v, bench::epsilon_sweep());
      const auto whites = exp.evaluate_under_fgsm_sweep(v, bench::epsilon_sweep());
      for (std::size_t i = 0; i < blacks.size(); ++i) {
        const double eps = bench::epsilon_sweep()[i];
        const double black = blacks[i].robustness_err;
        const double white = whites[i].robustness_err;
        row.push_back(util::Table::fixed(black, 3) + " (" +
                      util::Table::fixed(white, 3) + ")");
        csv.add_row({sim::to_string(tb), v.name(), util::CsvWriter::num(eps),
                     util::CsvWriter::num(black), util::CsvWriter::num(white)});
      }
      table.add_row(std::move(row));
    }
    table.print();
  }

  run.write_csv(csv);
  });
}

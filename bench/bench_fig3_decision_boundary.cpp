// Fig. 3: decision boundaries of the MLP vs MLP-Custom monitors over the
// (BG, dBG) plane with the remaining features pinned at a template window.
// Paper shape: the custom-loss boundary follows the rule structure (sharper,
// more interpretable regions) instead of a purely data-driven contour.
#include "bench_common.h"
#include "monitor/features.h"

using namespace cpsguard;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  util::set_log_level(util::LogLevel::kInfo);
  bench::BenchRun run("fig3_decision_boundary", cli);
  const int grid = cli.get_int("grid", 25);
  run.manifest().set_param("grid", static_cast<long long>(grid));

  core::Experiment exp(
      run.config(sim::Testbed::kGlucosymOpenAps, cli));
  const core::MonitorVariant baseline{monitor::Arch::kMlp, false};
  const core::MonitorVariant custom{monitor::Arch::kMlp, true};
  auto& mon_base = exp.monitor(baseline);
  auto& mon_custom = exp.monitor(custom);

  using monitor::Features;
  const auto& test = exp.test_data();

  // Template: the median test window with a keep_insulin action.
  nn::Tensor3 tmpl(1, test.x.time(), test.x.features());
  for (int t = 0; t < tmpl.time(); ++t) {
    tmpl.at(0, t, Features::kIob) = 1.5f;
    tmpl.at(0, t, Features::kRate) = 1.0f;
    tmpl.at(0, t, Features::kActionBase + 3) = 1.0f;  // keep_insulin
  }

  util::CsvWriter csv({"bg", "dbg", "mlp_p_unsafe", "mlp_custom_p_unsafe",
                       "rule_indicator"});
  std::printf(
      "Fig. 3 — decision over (BG, dBG), keep_insulin context\n"
      "cells: <baseline><custom><rules>, '#'=unsafe '.'=safe\n\n");

  for (int gi = grid - 1; gi >= 0; --gi) {
    const double dbg = -2.0 + 4.0 * gi / (grid - 1);  // mg/dL per min
    std::string line;
    for (int gj = 0; gj < grid; ++gj) {
      const double bg = 40.0 + 260.0 * gj / (grid - 1);
      nn::Tensor3 w = tmpl;
      for (int t = 0; t < w.time(); ++t) {
        // Back-fill a consistent BG ramp ending at (bg, dbg).
        w.at(0, t, Features::kBg) = static_cast<float>(
            bg - dbg * 5.0 * (w.time() - 1 - t));
        w.at(0, t, Features::kDbg) = static_cast<float>(dbg);
      }
      const float p_base = mon_base.predict_proba(w).at(0, 1);
      const float p_custom = mon_custom.predict_proba(w).at(0, 1);
      const auto ctx = monitor::window_context(w, 0);
      const int rule = safety::semantic_indicator(ctx);
      line += (p_base > 0.5f ? '#' : '.');
      line += (p_custom > 0.5f ? '#' : '.');
      line += (rule ? '#' : '.');
      line += ' ';
      csv.add_row({util::CsvWriter::num(bg), util::CsvWriter::num(dbg),
                   util::CsvWriter::num(p_base), util::CsvWriter::num(p_custom),
                   std::to_string(rule)});
    }
    std::printf("dbg=%+5.2f  %s\n", dbg, line.c_str());
  }
  std::printf("\nBG axis: 40 .. 300 mg/dL left to right\n");

  run.write_csv(csv);
  run.finish(cli);
  return 0;
}

// Loadgen soak bench: a seeded churned workload (joins/leaves/reconnects,
// TTL eviction, heavy-tailed session lengths) driven through serve::Engine
// with the full invariant suite armed, reporting sustained throughput and
// verdict-latency percentiles (in ticks, exact — computed from the integer
// latency histogram, not samples).
//
// Extra flags:
//   --sessions N    base concurrent sessions             (default 256)
//   --ticks N       cycles to drive                      (default 400)
//   --model M       steady | diurnal | flash             (default diurnal)
//   --peak X        peak multiplier for diurnal/flash    (default 2.0)
//   --period N      diurnal period in ticks              (default 96)
//   --ttl N         idle-session TTL in ticks, 0 = off   (default 8)
//   --abandon P     abandon probability per leaver       (default 0.2)
//   --reconnect P   reconnect probability per leaver     (default 0.25)
//   --shards N      engine shards (0 = thread count)     (default 0)
//   --batch N       engine micro-batch rows              (default 64)
//   --queue N       per-shard queue capacity (0 = auto)  (default 0)
//   --deterministic B  serial shard flushes              (default false)
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "loadgen/workload.h"

using namespace cpsguard;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  util::set_log_level(util::LogLevel::kInfo);
  bench::BenchRun run("loadgen", cli);

  const int sessions = cli.get_int("sessions", 256);
  const int ticks = cli.get_int("ticks", 400);
  const std::string model_name = cli.get("model", "diurnal");
  const double peak = cli.get_double("peak", 2.0);
  const int period = cli.get_int("period", 96);
  const int ttl = cli.get_int("ttl", 8);
  const double abandon = cli.get_double("abandon", 0.2);
  const double reconnect = cli.get_double("reconnect", 0.25);
  const bool deterministic = cli.get_bool("deterministic", false);
  const int threads = static_cast<int>(util::effective_parallelism());
  const int shards = cli.get_int("shards", 0) > 0 ? cli.get_int("shards", 0)
                                                  : threads;
  const int batch = cli.get_int("batch", 64);
  const auto model = loadgen::parse_traffic_model(model_name);
  if (!model) {
    std::fprintf(stderr, "unknown --model \"%s\" (steady|diurnal|flash)\n",
                 model_name.c_str());
    return 2;
  }
  // Auto queue sizing covers the crest of the concurrency envelope.
  const int peak_sessions =
      static_cast<int>(static_cast<double>(sessions) * std::max(peak, 1.0));
  const int queue = cli.get_int("queue", 0) > 0
                        ? cli.get_int("queue", 0)
                        : std::max(2 * batch,
                                   4 * (peak_sessions / std::max(shards, 1) + 1));

  core::Experiment exp(run.config(sim::Testbed::kGlucosymOpenAps, cli));
  run.attach(exp);
  monitor::MlMonitor& mon =
      exp.monitor(core::MonitorVariant{monitor::Arch::kMlp, false});
  const int window = exp.config().dataset.window;

  loadgen::WorkloadConfig cfg;
  cfg.traffic.model = *model;
  cfg.traffic.base_sessions = sessions;
  cfg.traffic.peak = peak;
  cfg.traffic.period = period;
  cfg.traffic.abandon_prob = abandon;
  cfg.traffic.reconnect_prob = reconnect;
  cfg.traffic.min_session_len = 4;
  cfg.traffic.max_session_len = 4 * ticks;
  cfg.engine.window = window;
  cfg.engine.shards = shards;
  cfg.engine.max_batch = batch;
  cfg.engine.queue_capacity = queue;
  cfg.engine.deterministic = deterministic;
  cfg.engine.idle_ttl_ticks = ttl;
  cfg.ticks = ticks;
  cfg.seed = exp.config().campaign.seed;

  run.manifest().set_param("sessions", static_cast<long long>(sessions));
  run.manifest().set_param("ticks", static_cast<long long>(ticks));
  run.manifest().set_param("model", loadgen::to_string(*model));
  run.manifest().set_param("peak", peak);
  run.manifest().set_param("idle_ttl_ticks", static_cast<long long>(ttl));
  run.manifest().set_param("abandon_prob", abandon);
  run.manifest().set_param("reconnect_prob", reconnect);
  run.manifest().set_param("window", static_cast<long long>(window));
  run.manifest().set_param("shards", static_cast<long long>(shards));
  run.manifest().set_param("batch", static_cast<long long>(batch));
  run.manifest().set_param("queue_capacity", static_cast<long long>(queue));
  run.manifest().set_param("deterministic", deterministic ? 1LL : 0LL);

  // Invariants stay armed: a bench that would report throughput for a
  // stream violating verdict conservation aborts loudly instead.
  loadgen::Workload workload(mon, exp.test_traces(), cfg);
  const loadgen::WorkloadReport report = workload.run();

  const double records_per_sec =
      report.seconds > 0
          ? static_cast<double>(report.accepted) / report.seconds
          : 0;
  const double windows_per_sec =
      report.seconds > 0
          ? static_cast<double>(report.verdicts) / report.seconds
          : 0;
  const double p50 = loadgen::latency_percentile(report.latency_counts, 0.50);
  const double p99 = loadgen::latency_percentile(report.latency_counts, 0.99);

  util::CsvWriter csv(
      {"model", "sessions", "distinct_sessions", "ticks", "records",
       "verdicts", "rejected_queue_full", "rejected_session_limit",
       "evictions", "rejoins", "seconds", "records_per_sec",
       "windows_per_sec", "latency_p50_ticks", "latency_p99_ticks",
       "max_queue_depth"});
  csv.add_row({loadgen::to_string(*model), std::to_string(sessions),
               std::to_string(report.distinct_sessions),
               std::to_string(ticks), std::to_string(report.accepted),
               std::to_string(report.verdicts),
               std::to_string(report.rejected_queue_full),
               std::to_string(report.rejected_session_limit),
               std::to_string(report.evictions),
               std::to_string(report.rejoins),
               util::CsvWriter::num(report.seconds),
               util::CsvWriter::num(records_per_sec),
               util::CsvWriter::num(windows_per_sec),
               util::CsvWriter::num(p50), util::CsvWriter::num(p99),
               std::to_string(report.max_queue_depth)});

  std::printf(
      "\nLoadgen soak — %s traffic, %d base sessions, %d ticks, window %d\n",
      loadgen::to_string(*model), sessions, ticks, window);
  util::Table table({"Metric", "Value"});
  table.add_row({"distinct sessions", std::to_string(report.distinct_sessions)});
  table.add_row({"records accepted", std::to_string(report.accepted)});
  table.add_row({"verdicts", std::to_string(report.verdicts)});
  table.add_row({"rejoins", std::to_string(report.rejoins)});
  table.add_row({"TTL evictions", std::to_string(report.evictions)});
  table.add_row({"records/s", util::Table::fixed(records_per_sec, 0)});
  table.add_row({"windows/s", util::Table::fixed(windows_per_sec, 0)});
  table.add_row({"latency p50 (ticks)", util::Table::fixed(p50, 0)});
  table.add_row({"latency p99 (ticks)", util::Table::fixed(p99, 0)});
  table.print();
  std::printf("stream sha256: %s\n", report.stream_sha256.c_str());

  run.manifest().set_param("distinct_sessions",
                           static_cast<long long>(report.distinct_sessions));
  run.manifest().set_param("records",
                           static_cast<long long>(report.accepted));
  run.manifest().set_param("verdicts",
                           static_cast<long long>(report.verdicts));
  run.manifest().set_param("records_per_sec", records_per_sec);
  run.manifest().set_param("windows_per_sec", windows_per_sec);
  run.manifest().set_param("latency_p50_ticks", p50);
  run.manifest().set_param("latency_p99_ticks", p99);
  run.manifest().set_param("stream_sha256", report.stream_sha256);

  run.write_csv(csv);
  run.finish(cli);
  return 0;
}

#include "util/table.h"

#include <gtest/gtest.h>

#include "util/contracts.h"

namespace cpsguard::util {
namespace {

TEST(Table, FixedFormatting) {
  EXPECT_EQ(Table::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fixed(2.0, 0), "2");
  EXPECT_EQ(Table::fixed(-0.5, 1), "-0.5");
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "v"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  // Header row, separator, two data rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  EXPECT_NE(s.find("| name   | v  |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22 |"), std::string::npos);
}

TEST(Table, SeparatorMatchesWidths) {
  Table t({"ab"});
  t.add_row({"xyzw"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("|------|"), std::string::npos);
}

TEST(Table, RejectsWrongRowWidth) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), ContractViolation);
}

TEST(Table, EmptyHeaderRejected) {
  EXPECT_THROW(Table({}), ContractViolation);
}

}  // namespace
}  // namespace cpsguard::util

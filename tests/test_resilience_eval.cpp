#include "eval/resilience.h"

#include <gtest/gtest.h>

#include "util/contracts.h"

namespace cpsguard::eval {
namespace {

/// Trace whose true BG is safe (120) except for hazard steps (50).
sim::Trace trace_with_hazards(int length, std::initializer_list<int> hazards) {
  sim::Trace t;
  for (int i = 0; i < length; ++i) {
    sim::StepRecord r;
    r.step = i;
    r.true_bg = 120.0;
    r.sensor_bg = 120.0;
    t.steps.push_back(r);
  }
  for (const int h : hazards) {
    t.steps[static_cast<std::size_t>(h)].true_bg = 50.0;
  }
  return t;
}

StepOutcome outcome(int prediction, Regime regime = Regime::kMl,
                    bool ready = true, bool available = true,
                    bool sample_valid = true) {
  StepOutcome o;
  o.prediction = prediction;
  o.ready = ready;
  o.available = available;
  o.regime = regime;
  o.sample_valid = sample_valid;
  return o;
}

TEST(ResilienceEval, CountsRegimeOccupancyAndAvailability) {
  const sim::Trace t = trace_with_hazards(6, {});
  const std::vector<StepOutcome> outcomes = {
      outcome(0, Regime::kMl),
      outcome(0, Regime::kMl),
      outcome(0, Regime::kFallback),
      outcome(1, Regime::kFailSafe, true, false),
      outcome(0, Regime::kFallback, true, true, false),
      outcome(0, Regime::kMl, false, false),  // unready warm-up style cycle
  };
  const ResilienceReport r = evaluate_resilience(t, outcomes, 0);
  EXPECT_EQ(r.cycles, 6);
  EXPECT_EQ(r.cycles_ml, 2);  // the unready cycle is not attributed to ML
  EXPECT_EQ(r.cycles_fallback, 2);
  EXPECT_EQ(r.cycles_fail_safe, 1);
  EXPECT_EQ(r.cycles_unready, 1);
  EXPECT_EQ(r.invalid_samples, 1);
  EXPECT_DOUBLE_EQ(r.availability(), 4.0 / 6.0);
  EXPECT_DOUBLE_EQ(r.time_in_fallback(), 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(r.time_in_fail_safe(), 1.0 / 6.0);
}

TEST(ResilienceEval, ScoresPredictionsAgainstHazardOracle) {
  //            step:   0    1    2    3(H)  4
  const sim::Trace t = trace_with_hazards(5, {3});
  const std::vector<StepOutcome> outcomes = {
      outcome(0), outcome(0), outcome(1), outcome(1), outcome(1),
  };
  // delta = 0: label is in_hazard at the step itself.
  const ResilienceReport r = evaluate_resilience(t, outcomes, 0);
  EXPECT_EQ(r.overall.tp, 1);  // step 3
  EXPECT_EQ(r.overall.fp, 2);  // steps 2 and 4
  EXPECT_EQ(r.overall.tn, 2);  // steps 0 and 1
  EXPECT_EQ(r.overall.fn, 0);
}

TEST(ResilienceEval, ToleranceWindowCreditsEarlyAlarms) {
  const sim::Trace t = trace_with_hazards(5, {3});
  const std::vector<StepOutcome> outcomes = {
      outcome(0), outcome(1), outcome(1), outcome(1), outcome(0),
  };
  // delta = 2: steps 1..3 carry a positive label (hazard within look-ahead).
  const ResilienceReport r = evaluate_resilience(t, outcomes, 2);
  EXPECT_EQ(r.overall.tp, 3);
  EXPECT_EQ(r.overall.fp, 0);
  EXPECT_EQ(r.overall.tn, 2);  // steps 0 and 4: hazard out of look-ahead
  EXPECT_EQ(r.overall.fn, 0);
}

TEST(ResilienceEval, UnreadyCyclesScoreAsMissedAlarms) {
  const sim::Trace t = trace_with_hazards(3, {1});
  const std::vector<StepOutcome> outcomes = {
      outcome(1, Regime::kMl, /*ready=*/false),  // would-be alarm, not emitted
      outcome(1, Regime::kMl, /*ready=*/false),
      outcome(0),
  };
  const ResilienceReport r = evaluate_resilience(t, outcomes, 0);
  EXPECT_EQ(r.overall.fn, 1);  // the hazard step had no verdict → missed
  EXPECT_EQ(r.overall.tn, 2);
  EXPECT_EQ(r.cycles_unready, 2);
}

TEST(ResilienceEval, SplitsConfusionByRegime) {
  const sim::Trace t = trace_with_hazards(4, {0, 1});
  const std::vector<StepOutcome> outcomes = {
      outcome(1, Regime::kMl),        // tp for the ML regime
      outcome(0, Regime::kFallback),  // fn for the fallback regime
      outcome(0, Regime::kMl),        // tn for the ML regime
      outcome(1, Regime::kFallback),  // fp for the fallback regime
  };
  const ResilienceReport r = evaluate_resilience(t, outcomes, 0);
  EXPECT_EQ(r.ml_regime.tp, 1);
  EXPECT_EQ(r.ml_regime.tn, 1);
  EXPECT_EQ(r.ml_regime.fp + r.ml_regime.fn, 0);
  EXPECT_EQ(r.fallback_regime.fn, 1);
  EXPECT_EQ(r.fallback_regime.fp, 1);
  EXPECT_EQ(r.fallback_regime.tp + r.fallback_regime.tn, 0);
  // Fail-safe cycles are availability bookkeeping, not detection skill; the
  // overall confusion still covers every cycle.
  EXPECT_EQ(r.overall.total(), 4);
}

TEST(ResilienceEval, ReportAggregationSums) {
  const sim::Trace t = trace_with_hazards(3, {2});
  const std::vector<StepOutcome> a = {outcome(0), outcome(0), outcome(1)};
  const std::vector<StepOutcome> b = {
      outcome(0), outcome(1, Regime::kFallback), outcome(0)};
  ResilienceReport total = evaluate_resilience(t, a, 0);
  ResilienceReport other = evaluate_resilience(t, b, 0);
  other.fallback_entries = 2;
  other.recoveries = 1;
  other.recovery_latency_sum = 7;
  total += other;
  EXPECT_EQ(total.cycles, 6);
  EXPECT_EQ(total.overall.total(), 6);
  EXPECT_EQ(total.cycles_fallback, 1);
  EXPECT_EQ(total.fallback_entries, 2);
  EXPECT_EQ(total.recoveries, 1);
  EXPECT_DOUBLE_EQ(total.mean_recovery_latency(), 7.0);
}

TEST(ResilienceEval, MeanRecoveryLatencyZeroWhenNoRecovery) {
  ResilienceReport r;
  EXPECT_DOUBLE_EQ(r.mean_recovery_latency(), 0.0);
  EXPECT_DOUBLE_EQ(r.availability(), 0.0);  // no cycles: degenerate but safe
}

TEST(ResilienceEval, RejectsMismatchedOutcomeCount) {
  const sim::Trace t = trace_with_hazards(3, {});
  const std::vector<StepOutcome> outcomes = {outcome(0)};
  EXPECT_THROW(evaluate_resilience(t, outcomes, 0), ContractViolation);
  const std::vector<StepOutcome> ok = {outcome(0), outcome(0), outcome(0)};
  EXPECT_THROW(evaluate_resilience(t, ok, -1), ContractViolation);
}

}  // namespace
}  // namespace cpsguard::eval

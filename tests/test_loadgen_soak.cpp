// Soak tier (ctest -L soak): long churned workloads through serve::Engine
// with every loadgen invariant armed (including micro-batch version
// purity), plus the byte-identity oracles at scale — serial vs pooled,
// straight vs TTL-evicted-and-reconnected, and swap-free vs periodic
// self-swap.
//
// The default profile is sized for CI (a few seconds, >= 2000 distinct
// sessions with churn). Scale it up for a real soak with env knobs:
//
//   CPSGUARD_SOAK_SESSIONS=512 CPSGUARD_SOAK_TICKS=2000 CPSGUARD_SOAK_SEED=7
//     ctest --test-dir build -L soak
//
// Malformed knob values warn and fall back to the defaults — a soak run
// never silently shrinks.
#include "loadgen/workload.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>

#include "core/experiment.h"
#include "loadgen/invariants.h"
#include "loadgen/traffic.h"
#include "util/logging.h"
#include "util/parse.h"
#include "util/thread_pool.h"

namespace cpsguard::loadgen {
namespace {

std::int64_t env_int(const char* name, std::int64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  const auto parsed = util::try_parse_int(v);
  if (!parsed || *parsed <= 0) {
    util::log_warn("soak: ignoring invalid ", name, "=\"", v, "\", using ",
                   def);
    return def;
  }
  return *parsed;
}

struct SoakProfile {
  std::int64_t sessions;
  std::int64_t ticks;
  std::uint64_t seed;
  /// True when env knobs kept (or exceeded) the default scale — the
  /// >= 2000 distinct-session assertion only applies then.
  bool at_default_scale;
};

SoakProfile soak_profile() {
  constexpr std::int64_t kDefaultSessions = 128;
  constexpr std::int64_t kDefaultTicks = 300;
  SoakProfile p{};
  p.sessions = env_int("CPSGUARD_SOAK_SESSIONS", kDefaultSessions);
  p.ticks = env_int("CPSGUARD_SOAK_TICKS", kDefaultTicks);
  p.seed = static_cast<std::uint64_t>(env_int("CPSGUARD_SOAK_SEED", 42));
  p.at_default_scale =
      p.sessions >= kDefaultSessions && p.ticks >= kDefaultTicks;
  return p;
}

core::ExperimentConfig tiny_config() {
  core::ExperimentConfig cfg;
  cfg.campaign.patients = 3;
  cfg.campaign.sims_per_patient = 3;
  cfg.campaign.trace_steps = 60;
  cfg.campaign.seed = 11;
  cfg.epochs = 2;
  cfg.cache_dir = "";
  return cfg;
}

class SoakTest : public ::testing::Test {
 protected:
  SoakTest() : exp_(tiny_config()) {}

  monitor::MlMonitor& mon() { return exp_.monitor(mlp_); }
  int window() const { return exp_.config().dataset.window; }

  WorkloadConfig base_config(const SoakProfile& profile) {
    WorkloadConfig cfg;
    cfg.traffic.base_sessions = static_cast<int>(profile.sessions);
    cfg.traffic.min_session_len = 4;
    cfg.traffic.max_session_len = 48;
    cfg.traffic.tail_alpha = 1.3;
    cfg.traffic.abandon_prob = 0.2;
    cfg.traffic.reconnect_prob = 0.25;
    cfg.engine.window = window();
    cfg.engine.shards = 8;
    cfg.engine.max_batch = 16;
    cfg.engine.queue_capacity = 4096;
    cfg.engine.idle_ttl_ticks = 8;
    cfg.ticks = profile.ticks;
    cfg.seed = profile.seed;
    return cfg;
  }

  core::Experiment exp_;
  const core::MonitorVariant mlp_{monitor::Arch::kMlp, false};
  const core::MonitorVariant gru_{monitor::Arch::kGru, false};
};

TEST_F(SoakTest, SteadyChurnSerialVsPooledByteIdentity) {
  const SoakProfile profile = soak_profile();
  WorkloadConfig cfg = base_config(profile);
  cfg.traffic.model = TrafficModel::kSteady;
  Workload wl(mon(), exp_.test_traces(), cfg);

  util::set_max_parallelism(1);
  const WorkloadReport serial = wl.run();  // invariants armed: throws on breach
  util::set_max_parallelism(0);
  const WorkloadReport pooled = wl.run();

  EXPECT_EQ(serial.stream_sha256, pooled.stream_sha256)
      << "serial and pooled soak streams diverged";
  EXPECT_EQ(serial.verdicts, pooled.verdicts);
  EXPECT_GT(serial.verdicts, 0u);
  EXPECT_GT(serial.rejoins, 0u) << "no mid-stream reopens exercised";
  EXPECT_GT(serial.evictions, 0u) << "no TTL evictions exercised";
  EXPECT_GT(serial.closes, 0u);
  if (profile.at_default_scale) {
    EXPECT_GE(serial.distinct_sessions, 2000u)
        << "soak churn shrank below the acceptance floor";
  }
  // Engine-side ledger agrees with the harness-side one.
  EXPECT_EQ(serial.final_stats.records, serial.accepted);
  EXPECT_EQ(serial.final_stats.windows_flushed, serial.verdicts);
}

TEST_F(SoakTest, FlashCrowdAdmissionControlUnderOverload) {
  const SoakProfile profile = soak_profile();
  WorkloadConfig cfg = base_config(profile);
  cfg.traffic.model = TrafficModel::kFlashCrowd;
  cfg.traffic.base_sessions = 32;
  cfg.traffic.peak = 4.0;  // 128 sessions storm in...
  cfg.traffic.flash_at = 30;
  cfg.traffic.flash_len = 40;
  cfg.engine.max_sessions = 64;  // ...into a 64-session budget
  cfg.engine.shards = 2;
  cfg.engine.max_batch = 8;
  cfg.engine.queue_capacity = 16;  // and a queue sized to overflow
  cfg.engine.idle_ttl_ticks = 8;
  cfg.ticks = std::min<std::int64_t>(profile.ticks, 150);
  Workload wl(mon(), exp_.test_traces(), cfg);

  util::set_max_parallelism(1);
  const WorkloadReport report = wl.run();
  util::set_max_parallelism(0);

  // The flash crowd must actually trip both admission-control paths, and
  // every invariant (conservation, order, queue bound, drain) must hold
  // right through the overload — wl.run() throws otherwise.
  EXPECT_GT(report.rejected_session_limit, 0u);
  EXPECT_GT(report.rejected_queue_full, 0u);
  EXPECT_GT(report.verdicts, 0u);
  EXPECT_LE(report.max_queue_depth,
            static_cast<std::size_t>(cfg.engine.shards) *
                static_cast<std::size_t>(cfg.engine.queue_capacity));
  EXPECT_EQ(report.final_stats.rejected_queue_full,
            report.rejected_queue_full);
  EXPECT_EQ(report.final_stats.rejected_session_limit,
            report.rejected_session_limit);
}

TEST_F(SoakTest, PeriodicHotSwapChurnKeepsByteIdentityAndBatchPurity) {
  const SoakProfile profile = soak_profile();

  // No-op oracle: periodic self-swaps (empty swap pool re-stages the
  // active model at the active version) must leave the stream
  // byte-identical to a swap-free run — the raw-ring rescale at every
  // activation reproduces all in-flight windows bit for bit, under full
  // churn (abandons, reconnects, TTL evictions).
  WorkloadConfig plain_cfg = base_config(profile);
  plain_cfg.traffic.model = TrafficModel::kSteady;
  Workload plain(mon(), exp_.test_traces(), plain_cfg);
  util::set_max_parallelism(1);
  const WorkloadReport baseline = plain.run();

  WorkloadConfig self_cfg = plain_cfg;
  self_cfg.swap_every = 24;
  Workload self_swap(mon(), exp_.test_traces(), self_cfg);
  const WorkloadReport noop = self_swap.run();
  EXPECT_GT(noop.swaps, 0u);
  EXPECT_EQ(noop.stream_sha256, baseline.stream_sha256)
      << "periodic self-swaps perturbed the soak stream — the raw-ring "
         "rescale is not bit-identical to fresh ingest";

  // Real swaps: round-robin through a pool of differently-architected
  // models, version bumping on every activation. Every invariant stays
  // armed — including batch purity: the checker throws if any micro-batch
  // (shard, flush) mixes model versions — and serial vs pooled must still
  // agree byte for byte, version column included.
  WorkloadConfig swap_cfg = plain_cfg;
  swap_cfg.swap_every = 24;
  Workload wl(mon(), exp_.test_traces(), swap_cfg);
  wl.set_swap_pool({&exp_.monitor(gru_), &mon()});
  const WorkloadReport serial = wl.run();
  util::set_max_parallelism(0);
  const WorkloadReport pooled = wl.run();

  EXPECT_EQ(serial.stream_sha256, pooled.stream_sha256)
      << "serial and pooled soak streams diverged across hot-swaps";
  EXPECT_EQ(serial.verdicts, pooled.verdicts);
  EXPECT_GT(serial.swaps, 0u);
  EXPECT_EQ(serial.swaps, pooled.swaps);
  // Every staged swap activated, once per shard.
  EXPECT_EQ(serial.final_stats.swaps,
            serial.swaps * static_cast<std::uint64_t>(swap_cfg.engine.shards));
  EXPECT_GT(serial.verdicts, 0u);
  EXPECT_GT(serial.rejoins, 0u);
  if (profile.at_default_scale) {
    EXPECT_GE(serial.distinct_sessions, 2000u)
        << "swap soak churn shrank below the acceptance floor";
  }
}

TEST_F(SoakTest, DiurnalTtlEvictionMatchesExplicitCloses) {
  const SoakProfile profile = soak_profile();
  WorkloadConfig with_ttl = base_config(profile);
  with_ttl.traffic.model = TrafficModel::kDiurnal;
  with_ttl.traffic.peak = 1.5;
  with_ttl.traffic.period = 50;
  with_ttl.traffic.abandon_prob = 0.35;
  Workload wl_a(mon(), exp_.test_traces(), with_ttl);

  util::set_max_parallelism(1);
  const WorkloadReport a = wl_a.run();
  ASSERT_GT(a.eviction_log.size(), 0u) << "oracle needs evictions to replay";

  WorkloadConfig no_ttl = with_ttl;
  no_ttl.engine.idle_ttl_ticks = 0;
  Workload wl_b(mon(), exp_.test_traces(), no_ttl);
  const WorkloadReport b = wl_b.run(a.eviction_log);
  util::set_max_parallelism(0);

  EXPECT_EQ(b.evictions, 0u);
  EXPECT_EQ(a.stream_sha256, b.stream_sha256)
      << "a TTL-evicted-and-reconnected run is not byte-identical to the "
      << "same run with explicit closes at the eviction ticks";
  EXPECT_EQ(a.verdicts, b.verdicts);
  EXPECT_GT(a.rejoins, 0u);
}

}  // namespace
}  // namespace cpsguard::loadgen

#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/contracts.h"

namespace cpsguard::nn {
namespace {

Param make_param(float value) {
  return Param("p", Matrix::full(1, 1, value));
}

TEST(Sgd, PlainStepIsLrTimesGrad) {
  Param p = make_param(1.0f);
  p.grad = Matrix::full(1, 1, 2.0f);
  Sgd sgd(0.1);
  Param* arr[] = {&p};
  sgd.step(arr);
  EXPECT_NEAR(p.value.at(0, 0), 1.0f - 0.1f * 2.0f, 1e-6);
}

TEST(Sgd, MomentumAccumulates) {
  Param p = make_param(0.0f);
  Sgd sgd(1.0, 0.5);
  Param* arr[] = {&p};
  p.grad = Matrix::full(1, 1, 1.0f);
  sgd.step(arr);  // v = 1, w = -1
  EXPECT_NEAR(p.value.at(0, 0), -1.0f, 1e-6);
  sgd.step(arr);  // v = 0.5 + 1 = 1.5, w = -2.5
  EXPECT_NEAR(p.value.at(0, 0), -2.5f, 1e-6);
}

TEST(Sgd, RejectsBadHyperparams) {
  EXPECT_THROW(Sgd(0.0), ContractViolation);
  EXPECT_THROW(Sgd(0.1, 1.0), ContractViolation);
}

TEST(Adam, FirstStepMagnitudeIsLr) {
  // With bias correction, the very first Adam step is ≈ lr in the gradient
  // direction regardless of gradient scale.
  for (const float g : {0.001f, 1.0f, 1000.0f}) {
    Param p = make_param(0.0f);
    p.grad = Matrix::full(1, 1, g);
    Adam adam(0.01);
    Param* arr[] = {&p};
    adam.step(arr);
    EXPECT_NEAR(p.value.at(0, 0), -0.01f, 1e-4) << "grad=" << g;
  }
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize f(w) = (w - 3)^2; grad = 2(w - 3).
  Param p = make_param(-5.0f);
  Adam adam(0.1);
  Param* arr[] = {&p};
  for (int i = 0; i < 500; ++i) {
    const float w = p.value.at(0, 0);
    p.grad = Matrix::full(1, 1, 2.0f * (w - 3.0f));
    adam.step(arr);
  }
  EXPECT_NEAR(p.value.at(0, 0), 3.0f, 0.05);
}

TEST(Adam, HandlesMultipleParamsIndependently) {
  Param a = make_param(0.0f), b = make_param(0.0f);
  a.grad = Matrix::full(1, 1, 1.0f);
  b.grad = Matrix::full(1, 1, -1.0f);
  Adam adam(0.5);
  Param* arr[] = {&a, &b};
  adam.step(arr);
  EXPECT_LT(a.value.at(0, 0), 0.0f);
  EXPECT_GT(b.value.at(0, 0), 0.0f);
}

TEST(Adam, ZeroGradLeavesParamUnchanged) {
  Param p = make_param(2.0f);
  Adam adam(0.1);
  Param* arr[] = {&p};
  adam.step(arr);
  EXPECT_NEAR(p.value.at(0, 0), 2.0f, 1e-6);
}

TEST(Adam, RejectsBadHyperparams) {
  EXPECT_THROW(Adam(0.0), ContractViolation);
  EXPECT_THROW(Adam(0.1, 1.0), ContractViolation);
  EXPECT_THROW(Adam(0.1, 0.9, 1.0), ContractViolation);
  EXPECT_THROW(Adam(0.1, 0.9, 0.999, 0.0), ContractViolation);
}


TEST(Adam, WeightDecayShrinksWeightsWithZeroGrad) {
  Param p = make_param(10.0f);
  Adam adam(0.1);
  adam.with_weight_decay(0.5);
  Param* arr[] = {&p};
  adam.step(arr);  // w -= lr * decay * w = 0.1*0.5*10 = 0.5
  EXPECT_NEAR(p.value.at(0, 0), 9.5f, 1e-5);
}

TEST(Adam, WeightDecayIsDecoupledFromMoments) {
  // Same gradient, with and without decay: the moment-driven part of the
  // update must be identical (decay acts directly on the weight).
  Param a = make_param(2.0f), b = make_param(2.0f);
  a.grad = Matrix::full(1, 1, 1.0f);
  b.grad = Matrix::full(1, 1, 1.0f);
  Adam plain(0.01);
  Adam decayed(0.01);
  decayed.with_weight_decay(0.1);
  Param* pa[] = {&a};
  Param* pb[] = {&b};
  plain.step(pa);
  decayed.step(pb);
  const float decay_part = 0.01f * 0.1f * 2.0f;
  EXPECT_NEAR(b.value.at(0, 0), a.value.at(0, 0) - decay_part, 1e-6);
}

TEST(Adam, GradientClippingBoundsUpdateDirection) {
  // A huge gradient with clipping behaves like the same direction at the
  // clipped norm: first-step magnitude is still ~lr either way, so check
  // the moment state via a second, zero-gradient step instead.
  Param a = make_param(0.0f), b = make_param(0.0f);
  Adam clipped(0.1);
  clipped.with_gradient_clipping(1.0);
  Adam plain(0.1);
  Param* pa[] = {&a};
  Param* pb[] = {&b};
  a.grad = Matrix::full(1, 1, 1000.0f);
  b.grad = Matrix::full(1, 1, 1000.0f);
  clipped.step(pa);
  plain.step(pb);
  a.grad.set_zero();
  b.grad.set_zero();
  clipped.step(pa);
  plain.step(pb);
  // With clipping the second-step momentum corresponds to a gradient of 1,
  // not 1000; the absolute weight movement must be no larger than plain.
  EXPECT_LE(std::fabs(a.value.at(0, 0)), std::fabs(b.value.at(0, 0)) + 1e-6);
}

TEST(Adam, ClippingInactiveBelowThreshold) {
  Param a = make_param(0.0f), b = make_param(0.0f);
  Adam clipped(0.1);
  clipped.with_gradient_clipping(100.0);
  Adam plain(0.1);
  Param* pa[] = {&a};
  Param* pb[] = {&b};
  a.grad = Matrix::full(1, 1, 2.0f);
  b.grad = Matrix::full(1, 1, 2.0f);
  clipped.step(pa);
  plain.step(pb);
  EXPECT_NEAR(a.value.at(0, 0), b.value.at(0, 0), 1e-7);
}

TEST(Adam, RejectsBadDecayAndClip) {
  Adam adam(0.1);
  EXPECT_THROW(adam.with_weight_decay(-0.1), ContractViolation);
  EXPECT_THROW(adam.with_gradient_clipping(0.0), ContractViolation);
}

TEST(Optimizers, RejectNullParam) {
  Sgd sgd(0.1);
  Adam adam(0.1);
  Param* arr[] = {nullptr};
  EXPECT_THROW(sgd.step(arr), ContractViolation);
  EXPECT_THROW(adam.step(arr), ContractViolation);
}

}  // namespace
}  // namespace cpsguard::nn

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "obs/metrics.h"
#include "util/deadline.h"
#include "util/retry.h"

namespace cpsguard::util {
namespace {

std::uint64_t suppressed_counter() {
  return obs::Registry::instance()
      .counter("threadpool.failures_suppressed")
      .value();
}

TEST(ThreadPool, RunsAllTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, SizeReflectsThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, WaitIdleRethrowsFirstTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
}

TEST(ThreadPool, SurvivesThrowingTaskAndStaysUsable) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  try {
    pool.wait_idle();
    FAIL() << "expected exception";
  } catch (const std::runtime_error&) {
  }
  // The error was cleared and the worker survived: the pool keeps working.
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();  // must not rethrow again
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, KeepsFirstExceptionOnly) {
  ThreadPool pool(1);  // serial worker makes "first" deterministic
  pool.submit([] { throw std::runtime_error("first"); });
  pool.submit([] { throw std::logic_error("second"); });
  try {
    pool.wait_idle();
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
}

TEST(ThreadPool, AggregatesSuppressedFailuresInsteadOfDroppingThem) {
  ThreadPool pool(1);  // serial worker: all three failures land before idle
  const std::uint64_t before = suppressed_counter();
  for (int i = 0; i < 3; ++i) {
    pool.submit([] { throw std::runtime_error("boom"); });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // First failure rethrown, the other two aggregated — visible both on the
  // pool and in the obs counter.
  EXPECT_EQ(pool.suppressed_failures_total(), 2u);
  EXPECT_EQ(suppressed_counter(), before + 2);

  // The aggregate is cumulative across wait_idle cycles.
  pool.submit([] { throw std::runtime_error("boom"); });
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(pool.suppressed_failures_total(), 3u);
}

TEST(ThreadPool, SingleFailureIsNotCountedAsSuppressed) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("only one"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(pool.suppressed_failures_total(), 0u);
}

TEST(ThreadPool, SubmitWithRetryRecoversTransientFailure) {
  ThreadPool pool(2);
  TaskOptions opts;
  opts.retry = RetryPolicy::for_tasks();
  opts.retry.sleep = false;
  opts.site = "test.flaky";
  std::atomic<int> calls{0};
  pool.submit(
      [&calls] {
        if (calls.fetch_add(1) == 0) throw RetryableError("transient");
      },
      opts);
  pool.wait_idle();  // must not rethrow: the retry absorbed the failure
  EXPECT_EQ(calls.load(), 2);
}

TEST(ThreadPool, SubmitWithRetryStillFailsOnNonRetryableError) {
  ThreadPool pool(2);
  TaskOptions opts;
  opts.retry = RetryPolicy::for_tasks();
  opts.retry.sleep = false;
  std::atomic<int> calls{0};
  pool.submit(
      [&calls] {
        calls.fetch_add(1);
        throw std::logic_error("bug");
      },
      opts);
  EXPECT_THROW(pool.wait_idle(), std::logic_error);
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ExpiredDeadlineSkipsTaskWithoutRunningIt) {
  ThreadPool pool(2);
  TaskOptions opts;
  opts.deadline = Deadline::after_seconds(-1.0);
  opts.site = "test.late";
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran.store(true); }, opts);
  EXPECT_THROW(pool.wait_idle(), DeadlineExceeded);
  EXPECT_FALSE(ran.load());
}

TEST(ThreadPool, TaskPollsGlobalDeadlineCooperatively) {
  set_global_deadline(Deadline::after_seconds(-1.0));
  ThreadPool pool(2);
  std::atomic<bool> reached_after_check{false};
  pool.submit([&reached_after_check] {
    check_deadline("test.cooperative");
    reached_after_check.store(true);
  });
  EXPECT_THROW(pool.wait_idle(), DeadlineExceeded);
  EXPECT_FALSE(reached_after_check.load());
  set_global_deadline(Deadline{});  // disarm for the rest of the suite
}

TEST(ThreadPool, UnsetDeadlineNeverFires) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  pool.submit(
      [&ran] {
        check_deadline("test.unset");
        ran.store(true);
      },
      TaskOptions{});
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ParallelFor, CountsSuppressedFailuresBeyondTheFirst) {
  const std::uint64_t before = suppressed_counter();
  try {
    parallel_for(50, [](int i) {
      if (i == 3 || i == 20 || i == 40) throw std::runtime_error("boom");
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error&) {
  }
  // All iterations complete, so all 3 failures land: 1 rethrown + 2 counted.
  EXPECT_EQ(suppressed_counter(), before + 2);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(257, [&](int i) { hits[static_cast<std::size_t>(i)].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterations) {
  parallel_for(0, [](int) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, SingleThreadRunsInline) {
  std::vector<int> order;
  parallel_for(5, [&](int i) { order.push_back(i); }, /*threads=*/1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, PropagatesException) {
  EXPECT_THROW(
      parallel_for(10, [](int i) {
        if (i == 7) throw std::runtime_error("boom");
      }),
      std::runtime_error);
}

TEST(ParallelFor, CompletesAllDespiteOneFailure) {
  std::atomic<int> completed{0};
  try {
    parallel_for(50, [&](int i) {
      if (i == 3) throw std::runtime_error("boom");
      completed.fetch_add(1);
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(completed.load(), 49);
}

TEST(SharedPool, IsAProcessWideSingleton) {
  ThreadPool& a = shared_pool();
  ThreadPool& b = shared_pool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1u);
}

TEST(SharedPool, ReusedAcrossParallelForCalls) {
  // parallel_for must not spin up transient pools: both calls drain through
  // the same shared workers, and the pool stays usable afterwards.
  std::atomic<int> count{0};
  parallel_for(64, [&](int) { count.fetch_add(1); });
  parallel_for(64, [&](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 128);
  shared_pool().wait_idle();  // must not hang or rethrow
}

TEST(InParallelRegion, FalseOutsideTrueInside) {
  EXPECT_FALSE(in_parallel_region());
  std::atomic<int> inside{0};
  parallel_for(8, [&](int) {
    if (in_parallel_region()) inside.fetch_add(1);
  });
  EXPECT_EQ(inside.load(), 8);
  EXPECT_FALSE(in_parallel_region());
}

TEST(ParallelFor, NestedCallsRunInlineWithoutDeadlock) {
  // A nested parallel_for must degrade to an inline loop (no new shards on
  // the already-busy pool) — otherwise a small pool deadlocks waiting on
  // itself. 8x16 indices must all run exactly once.
  std::vector<std::atomic<int>> hits(128);
  parallel_for(8, [&](int outer) {
    EXPECT_TRUE(in_parallel_region());
    parallel_for(16, [&](int inner) {
      hits[static_cast<std::size_t>(outer * 16 + inner)].fetch_add(1);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, NestedExceptionPropagatesToOuterCaller) {
  EXPECT_THROW(parallel_for(4,
                            [&](int outer) {
                              parallel_for(4, [&](int inner) {
                                if (outer == 2 && inner == 3)
                                  throw std::runtime_error("inner boom");
                              });
                            }),
               std::runtime_error);
}

TEST(ParallelFor, ParallelSumMatchesSerial) {
  const int n = 1000;
  std::vector<long> parts(static_cast<std::size_t>(n));
  parallel_for(n, [&](int i) { parts[static_cast<std::size_t>(i)] = static_cast<long>(i) * i; });
  const long got = std::accumulate(parts.begin(), parts.end(), 0L);
  long want = 0;
  for (int i = 0; i < n; ++i) want += static_cast<long>(i) * i;
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace cpsguard::util

#include "monitor/dataset.h"

#include <gtest/gtest.h>

#include "monitor/features.h"
#include "safety/rule_monitor.h"
#include "sim/closed_loop.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace cpsguard::monitor {
namespace {

sim::Trace make_trace(std::uint64_t seed, bool fault) {
  auto patient = sim::make_patient(sim::Testbed::kGlucosymOpenAps);
  auto controller = sim::make_controller(sim::Testbed::kGlucosymOpenAps);
  const auto profiles = sim::testbed_profiles(sim::Testbed::kGlucosymOpenAps, 2, 5);
  sim::SimConfig cfg;
  cfg.steps = 60;
  cfg.inject_fault = fault;
  util::Rng rng(seed);
  return run_closed_loop(*patient, *controller, profiles[0], cfg, rng);
}

TEST(Features, SensorCommandPartitionIsComplete) {
  for (int f = 0; f < Features::kNumFeatures; ++f) {
    EXPECT_NE(Features::is_sensor_feature(f), Features::is_command_feature(f))
        << "feature " << f << " must be exactly one of sensor/command";
  }
}

TEST(Features, NamesAreUnique) {
  std::set<std::string> names;
  for (int f = 0; f < Features::kNumFeatures; ++f) names.insert(Features::name(f));
  EXPECT_EQ(names.size(), static_cast<std::size_t>(Features::kNumFeatures));
}

TEST(Features, FillMatchesRecord) {
  sim::StepRecord r;
  r.sensor_bg = 150.0;
  r.iob = 2.5;
  r.d_bg = 0.4;
  r.d_iob = -0.01;
  r.commanded_rate = 1.8;
  r.action = sim::ControlAction::kStopInsulin;
  std::vector<float> row(Features::kNumFeatures);
  fill_features(r, row);
  EXPECT_FLOAT_EQ(row[Features::kBg], 150.0f);
  EXPECT_FLOAT_EQ(row[Features::kIob], 2.5f);
  EXPECT_FLOAT_EQ(row[Features::kDbg], 0.4f);
  EXPECT_FLOAT_EQ(row[Features::kDiob], -0.01f);
  EXPECT_FLOAT_EQ(row[Features::kRate], 1.8f);
  EXPECT_FLOAT_EQ(row[Features::kActionBase + 2], 1.0f);  // u3
  EXPECT_FLOAT_EQ(row[Features::kActionBase + 0], 0.0f);
  EXPECT_FLOAT_EQ(row[Features::kActionBase + 3], 0.0f);
}

TEST(Dataset, WindowCountAndShape) {
  const std::vector<sim::Trace> traces = {make_trace(1, false), make_trace(2, true)};
  DatasetConfig cfg;
  cfg.window = 6;
  const Dataset ds = build_dataset(traces, cfg);
  EXPECT_EQ(ds.size(), 2 * (60 - 6 + 1));
  EXPECT_EQ(ds.x.time(), 6);
  EXPECT_EQ(ds.x.features(), Features::kNumFeatures);
  EXPECT_EQ(ds.labels.size(), static_cast<std::size_t>(ds.size()));
  EXPECT_EQ(ds.semantic.size(), static_cast<std::size_t>(ds.size()));
  EXPECT_EQ(ds.num_traces(), 2);
}

TEST(Dataset, WindowsAlignWithTraceSteps) {
  const std::vector<sim::Trace> traces = {make_trace(3, true)};
  DatasetConfig cfg;
  cfg.window = 4;
  const Dataset ds = build_dataset(traces, cfg);
  for (int i = 0; i < ds.size(); ++i) {
    const auto si = static_cast<std::size_t>(i);
    const int end = ds.step_index[si];
    EXPECT_GE(end, cfg.window - 1);
    // Last row of the window must equal the features of step `end`.
    std::vector<float> row(Features::kNumFeatures);
    fill_features(traces[0].steps[static_cast<std::size_t>(end)], row);
    const auto last = ds.x.row(i, cfg.window - 1);
    for (int f = 0; f < Features::kNumFeatures; ++f) {
      EXPECT_FLOAT_EQ(last[static_cast<std::size_t>(f)], row[static_cast<std::size_t>(f)]);
    }
  }
}

TEST(Dataset, LabelsMatchHazardLabeler) {
  const std::vector<sim::Trace> traces = {make_trace(4, true)};
  DatasetConfig cfg;
  cfg.window = 6;
  cfg.horizon = 12;
  const Dataset ds = build_dataset(traces, cfg);
  const auto labels = safety::label_trace(traces[0], cfg.horizon);
  for (int i = 0; i < ds.size(); ++i) {
    const auto si = static_cast<std::size_t>(i);
    EXPECT_EQ(ds.labels[si], labels[static_cast<std::size_t>(ds.step_index[si])]);
  }
}

TEST(Dataset, SemanticTargetsAreBinaryAndRuleConsistent) {
  const std::vector<sim::Trace> traces = {make_trace(5, true)};
  const Dataset ds = build_dataset(traces, DatasetConfig{});
  for (int i = 0; i < ds.size(); ++i) {
    const float s = ds.semantic[static_cast<std::size_t>(i)];
    EXPECT_TRUE(s == 0.0f || s == 1.0f);
    const auto ctx = window_context(ds.x, i);
    EXPECT_EQ(static_cast<int>(s), safety::semantic_indicator(ctx));
  }
}

TEST(Dataset, WindowContextAveragesSensors) {
  nn::Tensor3 x(1, 2, Features::kNumFeatures);
  x.at(0, 0, Features::kBg) = 100.0f;
  x.at(0, 1, Features::kBg) = 140.0f;
  x.at(0, 0, Features::kDbg) = 1.0f;
  x.at(0, 1, Features::kDbg) = 0.0f;
  x.at(0, 1, Features::kActionBase + 1) = 1.0f;  // last action u2
  const auto ctx = window_context(x, 0);
  EXPECT_DOUBLE_EQ(ctx.bg, 120.0);
  EXPECT_DOUBLE_EQ(ctx.d_bg, 0.5);
  EXPECT_EQ(ctx.action, sim::ControlAction::kIncreaseInsulin);
}

TEST(Dataset, SubsetSelectsAlignedRows) {
  const std::vector<sim::Trace> traces = {make_trace(6, true), make_trace(7, false)};
  const Dataset ds = build_dataset(traces, DatasetConfig{});
  const std::vector<int> idx = {0, 10, ds.size() - 1};
  const Dataset sub = ds.subset(idx);
  EXPECT_EQ(sub.size(), 3);
  for (int k = 0; k < 3; ++k) {
    const auto sk = static_cast<std::size_t>(k);
    const auto src = static_cast<std::size_t>(idx[sk]);
    EXPECT_EQ(sub.labels[sk], ds.labels[src]);
    EXPECT_EQ(sub.trace_id[sk], ds.trace_id[src]);
    EXPECT_EQ(sub.step_index[sk], ds.step_index[src]);
    for (int t = 0; t < ds.x.time(); ++t) {
      for (int f = 0; f < ds.x.features(); ++f) {
        EXPECT_FLOAT_EQ(sub.x.at(k, t, f), ds.x.at(idx[sk], t, f));
      }
    }
  }
}

TEST(Dataset, PositiveFractionComputed) {
  Dataset ds;
  ds.labels = {1, 0, 0, 1};
  EXPECT_DOUBLE_EQ(ds.positive_fraction(), 0.5);
}

TEST(Dataset, ShortTraceYieldsNoWindows) {
  sim::Trace tiny;
  for (int i = 0; i < 3; ++i) {
    sim::StepRecord r;
    r.step = i;
    r.true_bg = 120;
    tiny.steps.push_back(r);
  }
  DatasetConfig cfg;
  cfg.window = 6;
  const std::vector<sim::Trace> traces = {tiny};
  const Dataset ds = build_dataset(traces, cfg);
  EXPECT_EQ(ds.size(), 0);
}

}  // namespace
}  // namespace cpsguard::monitor

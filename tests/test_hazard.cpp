#include "safety/hazard.h"

#include <gtest/gtest.h>

#include "util/contracts.h"

namespace cpsguard::safety {
namespace {

sim::Trace trace_with_bg(const std::vector<double>& bgs) {
  sim::Trace t;
  for (std::size_t i = 0; i < bgs.size(); ++i) {
    sim::StepRecord r;
    r.step = static_cast<int>(i);
    r.true_bg = bgs[i];
    t.steps.push_back(r);
  }
  return t;
}

TEST(HazardAt, Thresholds) {
  sim::StepRecord r;
  r.true_bg = 69.9;
  EXPECT_EQ(hazard_at(r), HazardType::kH1TooMuchInsulin);
  r.true_bg = 70.0;
  EXPECT_EQ(hazard_at(r), HazardType::kNone);
  r.true_bg = 180.0;
  EXPECT_EQ(hazard_at(r), HazardType::kNone);
  r.true_bg = 180.1;
  EXPECT_EQ(hazard_at(r), HazardType::kH2TooLittleInsulin);
}

TEST(LabelTrace, MarksHorizonBeforeHazard) {
  //                        0    1    2    3    4     5    6
  const auto t = trace_with_bg({120, 120, 120, 120, 200, 120, 120});
  const auto labels = label_trace(t, 2);
  EXPECT_EQ(labels, (std::vector<int>{0, 0, 1, 1, 1, 0, 0}));
}

TEST(LabelTrace, ZeroHorizonMarksOnlyHazardSteps) {
  const auto t = trace_with_bg({120, 60, 120});
  EXPECT_EQ(label_trace(t, 0), (std::vector<int>{0, 1, 0}));
}

TEST(LabelTrace, HugeHorizonMarksEverythingBeforeHazard) {
  const auto t = trace_with_bg({120, 120, 120, 60});
  EXPECT_EQ(label_trace(t, 100), (std::vector<int>{1, 1, 1, 1}));
}

TEST(LabelTrace, NoHazardAllZero) {
  const auto t = trace_with_bg({120, 130, 110});
  EXPECT_EQ(label_trace(t, 5), (std::vector<int>{0, 0, 0}));
}

TEST(LabelTrace, MultipleHazardEpisodes) {
  const auto t = trace_with_bg({60, 120, 120, 120, 200, 120});
  EXPECT_EQ(label_trace(t, 1), (std::vector<int>{1, 0, 0, 1, 1, 0}));
}

TEST(LabelTrace, BothHazardTypesCount) {
  const auto t = trace_with_bg({65, 250});
  EXPECT_EQ(label_trace(t, 0), (std::vector<int>{1, 1}));
}

TEST(LabelTrace, RejectsNegativeHorizon) {
  const auto t = trace_with_bg({120});
  EXPECT_THROW(label_trace(t, -1), cpsguard::ContractViolation);
}

TEST(PositiveFraction, AggregatesAcrossTraces) {
  const std::vector<std::vector<int>> labels = {{1, 0, 0, 0}, {1, 1, 0, 0}};
  EXPECT_DOUBLE_EQ(positive_fraction(labels), 3.0 / 8.0);
}

TEST(PositiveFraction, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(positive_fraction({}), 0.0);
}

TEST(HazardToString, AllValuesNamed) {
  EXPECT_EQ(to_string(HazardType::kNone), "none");
  EXPECT_NE(to_string(HazardType::kH1TooMuchInsulin).find("H1"), std::string::npos);
  EXPECT_NE(to_string(HazardType::kH2TooLittleInsulin).find("H2"), std::string::npos);
}

}  // namespace
}  // namespace cpsguard::safety

#include "eval/extended_metrics.h"

#include <gtest/gtest.h>

#include "util/contracts.h"
#include "util/rng.h"

namespace cpsguard::eval {
namespace {

TEST(RocAuc, PerfectSeparation) {
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  const std::vector<int> labels = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels), 1.0);
}

TEST(RocAuc, PerfectInversion) {
  const std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  const std::vector<int> labels = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels), 0.0);
}

TEST(RocAuc, RandomScoresNearHalf) {
  util::Rng rng(1);
  std::vector<double> scores(4000);
  std::vector<int> labels(4000);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    scores[i] = rng.uniform();
    labels[i] = rng.bernoulli(0.4) ? 1 : 0;
  }
  EXPECT_NEAR(roc_auc(scores, labels), 0.5, 0.03);
}

TEST(RocAuc, TiesGetHalfCredit) {
  // All scores equal → AUC exactly 0.5 by midrank convention.
  const std::vector<double> scores = {0.5, 0.5, 0.5, 0.5};
  const std::vector<int> labels = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels), 0.5);
}

TEST(RocAuc, DegenerateSingleClass) {
  const std::vector<double> scores = {0.1, 0.9};
  const std::vector<int> all_pos = {1, 1};
  EXPECT_DOUBLE_EQ(roc_auc(scores, all_pos), 0.5);
}

TEST(RocAuc, MatchesHandComputedExample) {
  // scores: pos {0.8, 0.4}, neg {0.6, 0.2}.
  // Pairs: (0.8>0.6) (0.8>0.2) (0.4<0.6) (0.4>0.2) → 3/4 correct.
  const std::vector<double> scores = {0.8, 0.4, 0.6, 0.2};
  const std::vector<int> labels = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels), 0.75);
}

TEST(RocAuc, SizeMismatchThrows) {
  const std::vector<double> s = {0.5};
  const std::vector<int> y = {1, 0};
  EXPECT_THROW(roc_auc(s, y), cpsguard::ContractViolation);
}

// --- latency fixtures ---------------------------------------------------

sim::Trace trace_with_bg(const std::vector<double>& bgs) {
  sim::Trace t;
  for (std::size_t i = 0; i < bgs.size(); ++i) {
    sim::StepRecord r;
    r.step = static_cast<int>(i);
    r.true_bg = bgs[i];
    t.steps.push_back(r);
  }
  return t;
}

// Dataset with one window per step (window = 1).
monitor::Dataset dataset_for(const std::vector<sim::Trace>& traces) {
  monitor::Dataset ds;
  ds.config.window = 1;
  ds.config.horizon = 2;
  int count = 0;
  for (const auto& t : traces) count += t.length();
  ds.x = nn::Tensor3(count, 1, 1);
  for (std::size_t tr = 0; tr < traces.size(); ++tr) {
    ds.trace_labels.push_back(safety::label_trace(traces[tr], ds.config.horizon));
    for (int s = 0; s < traces[tr].length(); ++s) {
      ds.labels.push_back(ds.trace_labels.back()[static_cast<std::size_t>(s)]);
      ds.semantic.push_back(0.0f);
      ds.trace_id.push_back(static_cast<int>(tr));
      ds.step_index.push_back(s);
    }
  }
  return ds;
}

TEST(DetectionLatency, AlarmBeforeOnsetGivesLead) {
  const std::vector<sim::Trace> traces = {
      trace_with_bg({120, 120, 120, 120, 200, 210, 120})};
  const auto ds = dataset_for(traces);
  //                           0  1  2  3  4  5  6
  const std::vector<int> preds = {0, 0, 1, 0, 0, 0, 0};
  const auto outcomes = detection_latencies(ds, preds, traces, 6);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].detected());
  EXPECT_EQ(outcomes[0].hazard_onset, 4);
  EXPECT_EQ(outcomes[0].first_alarm, 2);
  EXPECT_EQ(outcomes[0].lead_steps(), 2);
}

TEST(DetectionLatency, MissedEpisode) {
  const std::vector<sim::Trace> traces = {trace_with_bg({120, 120, 60, 120})};
  const auto ds = dataset_for(traces);
  const std::vector<int> preds(static_cast<std::size_t>(ds.size()), 0);
  const auto outcomes = detection_latencies(ds, preds, traces, 6);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].detected());
  EXPECT_EQ(outcomes[0].lead_steps(), -1);
}

TEST(DetectionLatency, AlarmOutsideMaxLeadDoesNotCount) {
  const std::vector<sim::Trace> traces = {
      trace_with_bg({120, 120, 120, 120, 120, 200})};
  const auto ds = dataset_for(traces);
  const std::vector<int> preds = {1, 0, 0, 0, 0, 0};  // alarm 5 steps early
  const auto far = detection_latencies(ds, preds, traces, 2);
  EXPECT_FALSE(far[0].detected());
  const auto near = detection_latencies(ds, preds, traces, 5);
  EXPECT_TRUE(near[0].detected());
}

TEST(DetectionLatency, MultipleEpisodesCounted) {
  const std::vector<sim::Trace> traces = {
      trace_with_bg({200, 120, 120, 60, 60, 120, 200})};
  const auto ds = dataset_for(traces);
  const std::vector<int> preds = {1, 0, 1, 0, 0, 1, 0};
  const auto outcomes = detection_latencies(ds, preds, traces, 3);
  ASSERT_EQ(outcomes.size(), 3u);  // onsets at 0, 3, 6
  EXPECT_TRUE(outcomes[0].detected());
  EXPECT_TRUE(outcomes[1].detected());
  EXPECT_TRUE(outcomes[2].detected());
  // The earliest alarm inside the look-back window claims the episode:
  // onset 3 with max_lead 3 sees the alarm at step 0.
  EXPECT_EQ(outcomes[1].lead_steps(), 3);
}

TEST(DetectionLatency, SummaryStatistics) {
  std::vector<EpisodeOutcome> outcomes(3);
  outcomes[0].hazard_onset = 10;
  outcomes[0].first_alarm = 8;  // lead 2 steps = 10 min
  outcomes[1].hazard_onset = 20;
  outcomes[1].first_alarm = 14;  // lead 6 steps = 30 min
  outcomes[2].hazard_onset = 30;
  outcomes[2].first_alarm = -1;  // missed
  const auto s = summarize_latencies(outcomes);
  EXPECT_EQ(s.episodes, 3);
  EXPECT_EQ(s.detected, 2);
  EXPECT_NEAR(s.detection_rate, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.mean_lead_minutes, 20.0);
  EXPECT_DOUBLE_EQ(s.median_lead_minutes, 20.0);
}

TEST(DetectionLatency, EmptySummary) {
  const auto s = summarize_latencies({});
  EXPECT_EQ(s.episodes, 0);
  EXPECT_DOUBLE_EQ(s.detection_rate, 0.0);
}

TEST(HazardBreakdownTest, SplitsByHazardType) {
  const std::vector<sim::Trace> traces = {
      trace_with_bg({120, 120, 60, 120, 120, 200, 120})};
  const auto ds = dataset_for(traces);  // horizon 2
  // Labels: steps 0..2 → H1 window (hazard at 2); steps 3..5 → H2 window.
  std::vector<int> preds(static_cast<std::size_t>(ds.size()), 0);
  preds[1] = 1;  // detect one H1-bound window
  preds[3] = 1;  // detect one H2-bound window
  preds[4] = 1;  // and another
  const auto b = hazard_breakdown(ds, preds, traces);
  EXPECT_EQ(b.h1_positives, 3);  // steps 0,1,2
  EXPECT_EQ(b.h1_detected, 1);
  EXPECT_EQ(b.h2_positives, 3);  // steps 3,4,5
  EXPECT_EQ(b.h2_detected, 2);
  EXPECT_NEAR(b.h1_recall(), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(b.h2_recall(), 2.0 / 3.0, 1e-12);
}

TEST(HazardBreakdownTest, EmptyIsZeroNotNan) {
  HazardBreakdown b;
  EXPECT_DOUBLE_EQ(b.h1_recall(), 0.0);
  EXPECT_DOUBLE_EQ(b.h2_recall(), 0.0);
}

}  // namespace
}  // namespace cpsguard::eval

#include "nn/tensor3.h"

#include <gtest/gtest.h>

#include "util/contracts.h"
#include "util/rng.h"

namespace cpsguard::nn {
namespace {

Tensor3 random_tensor(int b, int t, int f, util::Rng& rng) {
  Tensor3 x(b, t, f);
  for (float& v : x.data()) v = static_cast<float>(rng.uniform(-2.0, 2.0));
  return x;
}

TEST(Tensor3, ShapeAndIndexing) {
  Tensor3 x(2, 3, 4);
  EXPECT_EQ(x.batch(), 2);
  EXPECT_EQ(x.time(), 3);
  EXPECT_EQ(x.features(), 4);
  EXPECT_EQ(x.size(), 24);
  x.at(1, 2, 3) = 7.0f;
  EXPECT_FLOAT_EQ(x.at(1, 2, 3), 7.0f);
  EXPECT_FLOAT_EQ(x.at(0, 0, 0), 0.0f);
}

TEST(Tensor3, IndexOutOfRangeThrows) {
  Tensor3 x(1, 1, 1);
  EXPECT_THROW(x.at(1, 0, 0), ContractViolation);
  EXPECT_THROW(x.at(0, 1, 0), ContractViolation);
  EXPECT_THROW(x.at(0, 0, 1), ContractViolation);
}

TEST(Tensor3, RowViewIsWritable) {
  Tensor3 x(1, 2, 3);
  auto row = x.row(0, 1);
  row[2] = 9.0f;
  EXPECT_FLOAT_EQ(x.at(0, 1, 2), 9.0f);
}

TEST(Tensor3, TimeSliceRoundtrip) {
  util::Rng rng(31);
  Tensor3 x = random_tensor(3, 4, 5, rng);
  const Matrix slice = x.time_slice(2);
  EXPECT_EQ(slice.rows(), 3);
  EXPECT_EQ(slice.cols(), 5);
  for (int b = 0; b < 3; ++b) {
    for (int f = 0; f < 5; ++f) {
      EXPECT_FLOAT_EQ(slice.at(b, f), x.at(b, 2, f));
    }
  }
  Tensor3 y(3, 4, 5);
  y.set_time_slice(2, slice);
  for (int b = 0; b < 3; ++b) {
    for (int f = 0; f < 5; ++f) {
      EXPECT_FLOAT_EQ(y.at(b, 2, f), x.at(b, 2, f));
    }
  }
}

TEST(Tensor3, FlattenRoundtrip) {
  util::Rng rng(32);
  const Tensor3 x = random_tensor(4, 3, 2, rng);
  const Matrix flat = x.flatten();
  EXPECT_EQ(flat.rows(), 4);
  EXPECT_EQ(flat.cols(), 6);
  const Tensor3 back = Tensor3::from_flat(flat, 3, 2);
  EXPECT_TRUE(back == x);
}

TEST(Tensor3, FlattenLayoutIsTimeMajor) {
  Tensor3 x(1, 2, 2);
  x.at(0, 0, 0) = 1;
  x.at(0, 0, 1) = 2;
  x.at(0, 1, 0) = 3;
  x.at(0, 1, 1) = 4;
  const Matrix flat = x.flatten();
  EXPECT_FLOAT_EQ(flat.at(0, 0), 1);
  EXPECT_FLOAT_EQ(flat.at(0, 1), 2);
  EXPECT_FLOAT_EQ(flat.at(0, 2), 3);
  EXPECT_FLOAT_EQ(flat.at(0, 3), 4);
}

TEST(Tensor3, FromFlatRejectsBadWidth) {
  EXPECT_THROW(Tensor3::from_flat(Matrix(2, 5), 2, 2), ContractViolation);
}

TEST(Tensor3, GatherSelectsRows) {
  util::Rng rng(33);
  const Tensor3 x = random_tensor(5, 2, 3, rng);
  const std::vector<int> idx = {4, 0, 4};
  const Tensor3 g = x.gather(idx);
  EXPECT_EQ(g.batch(), 3);
  for (int t = 0; t < 2; ++t) {
    for (int f = 0; f < 3; ++f) {
      EXPECT_FLOAT_EQ(g.at(0, t, f), x.at(4, t, f));
      EXPECT_FLOAT_EQ(g.at(1, t, f), x.at(0, t, f));
      EXPECT_FLOAT_EQ(g.at(2, t, f), x.at(4, t, f));
    }
  }
}

TEST(Tensor3, GatherRejectsBadIndex) {
  const Tensor3 x(2, 1, 1);
  const std::vector<int> idx = {2};
  EXPECT_THROW(x.gather(idx), ContractViolation);
}

TEST(Tensor3, FillAndMaxAbs) {
  Tensor3 x(2, 2, 2);
  x.fill(-3.0f);
  EXPECT_FLOAT_EQ(x.max_abs(), 3.0f);
  x.at(1, 1, 1) = 10.0f;
  EXPECT_FLOAT_EQ(x.max_abs(), 10.0f);
}

TEST(Tensor3, EmptyTensor) {
  const Tensor3 x;
  EXPECT_TRUE(x.empty());
  EXPECT_EQ(x.size(), 0);
}

}  // namespace
}  // namespace cpsguard::nn

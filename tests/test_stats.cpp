#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/contracts.h"
#include "util/rng.h"

namespace cpsguard::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats s;
  for (double x : xs) s.add(x);
  const double m = (1 + 2 + 4 + 8 + 16) / 5.0;
  double var = 0.0;
  for (double x : xs) var += (x - m) * (x - m);
  var /= 5.0;
  EXPECT_NEAR(s.mean(), m, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
}

TEST(RunningStats, MergeEqualsCombined) {
  Rng rng(1);
  RunningStats a, b, all;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.gaussian(3.0, 2.0);
    if (i % 2 == 0) {
      a.add(x);
    } else {
      b.add(x);
    }
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean_before);
}

TEST(SpanStats, MeanAndStddev) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(mean(xs), 5.0, 1e-12);
  EXPECT_NEAR(stddev(xs), 2.0, 1e-12);
}

TEST(SpanStats, FloatVariant) {
  const std::vector<float> xs = {1.0f, 3.0f};
  EXPECT_NEAR(mean_f(xs), 2.0, 1e-6);
  EXPECT_NEAR(stddev_f(xs), 1.0, 1e-6);
}

TEST(Quantile, MedianOfOddSet) {
  EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Quantile, Extremes) {
  const std::vector<double> xs = {5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 9.0);
}

TEST(Quantile, Interpolates) {
  EXPECT_DOUBLE_EQ(quantile({0.0, 10.0}, 0.25), 2.5);
}

TEST(Quantile, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
}

TEST(Quantile, RejectsOutOfRangeQ) {
  EXPECT_THROW(quantile({1.0}, 1.5), ContractViolation);
}

// Regression (NaN-ordering audit): sorting with plain operator< while a NaN
// is present is strict-weak-ordering UB. NaNs now order last, so the finite
// quantiles stay well-defined and deterministic.
TEST(Quantile, NanSortsLastNotUndefined) {
  const double nan = std::nan("");
  EXPECT_DOUBLE_EQ(quantile({nan, 1.0, 2.0, 3.0, 4.0}, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(quantile({4.0, nan, 2.0, 1.0, 3.0}, 0.0), 1.0);
  EXPECT_TRUE(std::isnan(quantile({nan, 1.0}, 1.0)));
}

TEST(Histogram, BinsAndCenters) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bins(), 5);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
}

TEST(Histogram, CountsAndDensity) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);  // bin 0
  h.add(1.5);  // bin 0
  h.add(5.0);  // bin 2
  h.add(9.9);  // bin 4
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_DOUBLE_EQ(h.density(0), 0.5);
}

TEST(Histogram, ClampsOutliers) {
  Histogram h(0.0, 1.0, 2);
  h.add(-100.0);
  h.add(+100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractViolation);
  EXPECT_THROW(Histogram(1.0, 0.0, 3), ContractViolation);
}

}  // namespace
}  // namespace cpsguard::util

#include "nn/classifier.h"

#include <gtest/gtest.h>

#include "nn/gradcheck.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace cpsguard::nn {
namespace {

Tensor3 random_tensor(int b, int t, int f, util::Rng& rng) {
  Tensor3 x(b, t, f);
  for (float& v : x.data()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return x;
}

// Linearly separable toy task: class = sign of the mean of the window.
void make_threshold_task(int n, int t, int f, Tensor3& x, std::vector<int>& y,
                         util::Rng& rng) {
  x = random_tensor(n, t, f, rng);
  y.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    double mean = 0.0;
    for (int tt = 0; tt < t; ++tt) {
      for (int ff = 0; ff < f; ++ff) mean += x.at(i, tt, ff);
    }
    y[static_cast<std::size_t>(i)] = mean > 0.0 ? 1 : 0;
  }
}

TEST(MlpClassifier, ShapesAndArch) {
  util::Rng rng(1);
  MlpClassifier clf(6, 9, {256, 128}, 2, rng);
  EXPECT_EQ(clf.arch(), "MLP(256-128)");
  EXPECT_EQ(clf.time_steps(), 6);
  EXPECT_EQ(clf.features(), 9);
  util::Rng xr(2);
  const Matrix p = clf.predict_proba(random_tensor(3, 6, 9, xr));
  ASSERT_EQ(p.rows(), 3);
  ASSERT_EQ(p.cols(), 2);
  for (int r = 0; r < 3; ++r) EXPECT_NEAR(p.at(r, 0) + p.at(r, 1), 1.0f, 1e-5);
}

TEST(MlpClassifier, RejectsWrongWindowShape) {
  util::Rng rng(3);
  MlpClassifier clf(6, 9, {16}, 2, rng);
  util::Rng xr(4);
  const Tensor3 bad = random_tensor(2, 5, 9, xr);
  EXPECT_THROW(clf.predict_proba(bad), ContractViolation);
}

TEST(MlpClassifier, LearnsThresholdTask) {
  util::Rng rng(5);
  MlpClassifier clf(3, 2, {16}, 2, rng);
  Tensor3 x;
  std::vector<int> y;
  util::Rng data_rng(6);
  make_threshold_task(256, 3, 2, x, y, data_rng);
  Adam adam(0.01);
  const SoftmaxCrossEntropy ce;
  for (int epoch = 0; epoch < 40; ++epoch) clf.train_batch(x, y, {}, ce, adam);
  const auto preds = predict_classes(clf, x);
  int correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) correct += preds[i] == y[i];
  EXPECT_GT(correct, 256 * 9 / 10);
}

TEST(MlpClassifier, InputGradientMatchesFiniteDifference) {
  util::Rng rng(7);
  MlpClassifier clf(3, 4, {10, 6}, 2, rng);
  util::Rng xr(8);
  const Tensor3 x = random_tensor(3, 3, 4, xr);
  const std::vector<int> labels = {1, 0, 1};
  util::Rng probe_rng(9);
  const auto res = check_input_gradient(clf, x, labels, probe_rng, 50, 1e-2);
  EXPECT_LT(res.max_rel_error, 0.05) << "abs=" << res.max_abs_error;
}

TEST(MlpClassifier, ParamGradientsWithSemanticLoss) {
  util::Rng rng(10);
  MlpClassifier clf(2, 3, {8}, 2, rng);
  util::Rng xr(11);
  const Tensor3 x = random_tensor(4, 2, 3, xr);
  const std::vector<int> labels = {0, 1, 0, 1};
  const std::vector<float> sem = {1.0f, 1.0f, 0.0f, 0.0f};
  const SemanticLoss loss(0.5);
  util::Rng probe_rng(12);
  const auto res =
      check_param_gradients(clf, x, labels, sem, loss, probe_rng, 50, 1e-2);
  EXPECT_LT(res.max_rel_error, 0.06) << "abs=" << res.max_abs_error;
}

TEST(Classifier, TrainBatchReducesLoss) {
  util::Rng rng(13);
  MlpClassifier clf(2, 2, {12}, 2, rng);
  Tensor3 x;
  std::vector<int> y;
  util::Rng data_rng(14);
  make_threshold_task(128, 2, 2, x, y, data_rng);
  Adam adam(0.01);
  const SoftmaxCrossEntropy ce;
  const double first = clf.train_batch(x, y, {}, ce, adam);
  double last = first;
  for (int i = 0; i < 30; ++i) last = clf.train_batch(x, y, {}, ce, adam);
  EXPECT_LT(last, first * 0.7);
}

TEST(Classifier, ZeroGradClearsAccumulation) {
  util::Rng rng(15);
  MlpClassifier clf(2, 2, {4}, 2, rng);
  util::Rng xr(16);
  const Tensor3 x = random_tensor(2, 2, 2, xr);
  const std::vector<int> labels = {0, 1};
  const SoftmaxCrossEntropy ce;
  clf.accumulate_gradients(x, labels, {}, ce);
  clf.zero_grad();
  for (Param* p : clf.params()) {
    EXPECT_FLOAT_EQ(p->grad.max_abs(), 0.0f);
  }
}

TEST(Classifier, InputGradientDoesNotDisturbParams) {
  util::Rng rng(17);
  MlpClassifier clf(2, 2, {4}, 2, rng);
  util::Rng xr(18);
  const Tensor3 x = random_tensor(2, 2, 2, xr);
  const std::vector<int> labels = {0, 1};
  std::vector<Matrix> before;
  for (Param* p : clf.params()) before.push_back(p->value);
  (void)clf.loss_input_gradient(x, labels);
  const auto params = clf.params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_TRUE(params[i]->value == before[i]);
    EXPECT_FLOAT_EQ(params[i]->grad.max_abs(), 0.0f);
  }
}

TEST(PredictClasses, PicksArgmax) {
  util::Rng rng(19);
  MlpClassifier clf(1, 2, {4}, 2, rng);
  util::Rng xr(20);
  const Tensor3 x = random_tensor(6, 1, 2, xr);
  const Matrix p = clf.predict_proba(x);
  const auto preds = predict_classes(clf, x);
  for (int i = 0; i < 6; ++i) {
    const int want = p.at(i, 1) > p.at(i, 0) ? 1 : 0;
    EXPECT_EQ(preds[static_cast<std::size_t>(i)], want);
  }
}

}  // namespace
}  // namespace cpsguard::nn

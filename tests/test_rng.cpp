#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/contracts.h"
#include "util/stats.h"

namespace cpsguard::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, DifferentStreamsDiverge) {
  Rng a(7, 1), b(7, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(4);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.stddev(), std::sqrt(1.0 / 12.0), 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 7.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, UniformRangeRejectsInverted) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform(2.0, 1.0), ContractViolation);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(6);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(6);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(3, 3), 3);
}

TEST(Rng, GaussianMoments) {
  Rng rng(8);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, GaussianScaled) {
  Rng rng(9);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.gaussian(10.0, 2.5));
  EXPECT_NEAR(s.mean(), 10.0, 0.06);
  EXPECT_NEAR(s.stddev(), 2.5, 0.05);
}

TEST(Rng, GaussianRejectsNegativeStddev) {
  Rng rng(9);
  EXPECT_THROW(rng.gaussian(0.0, -1.0), ContractViolation);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(10);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(11), b(11);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(ca(), cb());
}

TEST(Rng, SplitIndependentOfParentContinuation) {
  Rng parent(12);
  Rng child = parent.split();
  // Child stream should not simply replay the parent stream.
  Rng parent2(12);
  (void)parent2.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child() == parent2()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, PermutationIsValid) {
  Rng rng(13);
  const auto p = rng.permutation(100);
  ASSERT_EQ(p.size(), 100u);
  std::set<int> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 99);
}

TEST(Rng, PermutationActuallyShuffles) {
  Rng rng(14);
  const auto p = rng.permutation(50);
  int fixed = 0;
  for (int i = 0; i < 50; ++i) fixed += (p[static_cast<std::size_t>(i)] == i) ? 1 : 0;
  EXPECT_LT(fixed, 10);
}

TEST(Rng, PermutationEmptyAndSingle) {
  Rng rng(15);
  EXPECT_TRUE(rng.permutation(0).empty());
  const auto p = rng.permutation(1);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], 0);
}

}  // namespace
}  // namespace cpsguard::util

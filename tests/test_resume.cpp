// Kill-and-resume suite: a checkpointed campaign must produce byte-identical
// results whether it runs straight through, is killed and resumed mid-sweep,
// finds corrupted/truncated records on disk, or runs under the chaos
// harness. Results are compared through the same CSV formatting the benches
// use, so "byte-identical" here means identical output files.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/experiment.h"
#include "util/chaos.h"
#include "util/csv.h"
#include "util/deadline.h"

namespace cpsguard {
namespace {

namespace fs = std::filesystem;

const core::MonitorVariant kVariant{monitor::Arch::kMlp, false};

const std::vector<double>& sigmas() {
  static const std::vector<double> v = {0.25, 0.75};
  return v;
}

core::ExperimentConfig mini_config() {
  core::ExperimentConfig cfg;
  cfg.campaign.testbed = sim::Testbed::kGlucosymOpenAps;
  cfg.campaign.patients = 2;
  cfg.campaign.sims_per_patient = 2;
  cfg.campaign.trace_steps = 48;
  cfg.campaign.seed = 7;
  cfg.epochs = 1;
  cfg.cache_dir = "";  // isolate checkpointing from the model file cache
  return cfg;
}

/// Bench-style CSV rendering of sweep results; byte equality of these
/// strings is byte equality of the output file a bench would write.
std::string csv_of(const std::vector<core::EvalResult>& results) {
  util::CsvWriter csv({"sigma", "f1", "acc", "robustness_error"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    csv.add_row({util::CsvWriter::num(sigmas()[i]),
                 util::CsvWriter::num(results[i].f1()),
                 util::CsvWriter::num(results[i].accuracy()),
                 util::CsvWriter::num(results[i].robustness_err)});
  }
  return csv.to_string();
}

void expect_bit_identical(const std::vector<core::EvalResult>& got,
                          const std::vector<core::EvalResult>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].confusion.tp, want[i].confusion.tp) << "point " << i;
    EXPECT_EQ(got[i].confusion.fp, want[i].confusion.fp) << "point " << i;
    EXPECT_EQ(got[i].confusion.tn, want[i].confusion.tn) << "point " << i;
    EXPECT_EQ(got[i].confusion.fn, want[i].confusion.fn) << "point " << i;
    EXPECT_EQ(std::memcmp(&got[i].robustness_err, &want[i].robustness_err,
                          sizeof(double)),
              0)
        << "point " << i << ": robustness_err not bit-identical";
  }
  EXPECT_EQ(csv_of(got), csv_of(want));
}

/// The straight-through (no store) reference results, computed once.
const std::vector<core::EvalResult>& baseline() {
  static const std::vector<core::EvalResult> b = [] {
    core::Experiment exp(mini_config());
    return exp.evaluate_under_gaussian_sweep(kVariant, sigmas());
  }();
  return b;
}

class ResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pin chaos off so the exact-count stats assertions are deterministic
    // even under CPSGUARD_CHAOS=1; the chaos test below opts back in.
    saved_chaos_ = util::chaos().config();
    util::chaos().configure(util::ChaosConfig{});
    dir_ = (fs::temp_directory_path() /
            ("cpsguard_resume_test_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override {
    fs::remove_all(dir_);
    util::set_global_deadline(util::Deadline{});  // disarm
    util::chaos().configure(saved_chaos_);
  }

  std::vector<std::string> record_files() const {
    std::vector<std::string> out;
    for (const auto& e : fs::directory_iterator(dir_)) {
      if (e.path().extension() == ".ckpt") out.push_back(e.path().string());
    }
    return out;
  }

  std::string dir_;
  util::ChaosConfig saved_chaos_;
};

TEST_F(ResumeTest, CheckpointedRunMatchesPlainRun) {
  core::CheckpointStore store(dir_);
  core::Experiment exp(mini_config());
  exp.set_checkpoint_store(&store);
  const auto results = exp.evaluate_under_gaussian_sweep(kVariant, sigmas());
  expect_bit_identical(results, baseline());
  // One record per sweep point plus the trained-model snapshot.
  EXPECT_EQ(store.stats().puts, sigmas().size() + 1);
}

TEST_F(ResumeTest, FullResumeIsByteIdentical) {
  {
    core::CheckpointStore store(dir_);
    core::Experiment exp(mini_config());
    exp.set_checkpoint_store(&store);
    exp.evaluate_under_gaussian_sweep(kVariant, sigmas());
  }
  core::CheckpointStore resumed(dir_);
  core::Experiment exp(mini_config());
  exp.set_checkpoint_store(&resumed);
  const auto results = exp.evaluate_under_gaussian_sweep(kVariant, sigmas());
  expect_bit_identical(results, baseline());
  // Everything came from the store: model snapshot + every sweep point.
  EXPECT_EQ(resumed.stats().hits, sigmas().size() + 1);
  EXPECT_EQ(resumed.stats().puts, 0u);
}

TEST_F(ResumeTest, PartialResumeAfterSimulatedKillIsByteIdentical) {
  {
    core::CheckpointStore store(dir_);
    core::Experiment exp(mini_config());
    exp.set_checkpoint_store(&store);
    exp.evaluate_under_gaussian_sweep(kVariant, sigmas());
  }
  // Simulate a kill that landed before some records were written: drop
  // every other record file (whichever they are — sweep point or model
  // snapshot, the campaign must recompute exactly the missing work).
  const auto files = record_files();
  ASSERT_EQ(files.size(), sigmas().size() + 1);
  for (std::size_t i = 0; i < files.size(); i += 2) fs::remove(files[i]);

  core::CheckpointStore resumed(dir_);
  core::Experiment exp(mini_config());
  exp.set_checkpoint_store(&resumed);
  const auto results = exp.evaluate_under_gaussian_sweep(kVariant, sigmas());
  expect_bit_identical(results, baseline());
}

TEST_F(ResumeTest, CorruptedAndTruncatedRecordsAreHealedOnResume) {
  {
    core::CheckpointStore store(dir_);
    core::Experiment exp(mini_config());
    exp.set_checkpoint_store(&store);
    exp.evaluate_under_gaussian_sweep(kVariant, sigmas());
  }
  const auto files = record_files();
  ASSERT_GE(files.size(), 2u);
  {  // bit rot in one record
    std::fstream f(files[0], std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(files[0]) / 2));
    f.put('\x5a');
  }
  fs::resize_file(files[1], fs::file_size(files[1]) / 2);  // torn write

  core::CheckpointStore resumed(dir_);
  core::Experiment exp(mini_config());
  exp.set_checkpoint_store(&resumed);
  const auto results = exp.evaluate_under_gaussian_sweep(kVariant, sigmas());
  expect_bit_identical(results, baseline());
  EXPECT_GE(resumed.stats().discarded, 1u);
  // The store healed: a further resume hits every record again.
  core::CheckpointStore healed(dir_);
  core::Experiment exp2(mini_config());
  exp2.set_checkpoint_store(&healed);
  expect_bit_identical(exp2.evaluate_under_gaussian_sweep(kVariant, sigmas()),
                       baseline());
  EXPECT_EQ(healed.stats().puts, 0u);
}

TEST_F(ResumeTest, DeadlineAbortThenResumeIsByteIdentical) {
  {
    core::CheckpointStore store(dir_);
    core::Experiment exp(mini_config());
    exp.set_checkpoint_store(&store);
    exp.monitor(kVariant);  // train (and snapshot) before the budget expires
    util::set_global_deadline(util::Deadline::after_seconds(-1.0));
    EXPECT_THROW(exp.evaluate_under_gaussian_sweep(kVariant, sigmas()),
                 util::DeadlineExceeded);
    util::set_global_deadline(util::Deadline{});
  }
  // The aborted run checkpointed its model snapshot; the resumed run picks
  // it up and completes the sweep with the exact straight-through bytes.
  core::CheckpointStore resumed(dir_);
  core::Experiment exp(mini_config());
  exp.set_checkpoint_store(&resumed);
  const auto results = exp.evaluate_under_gaussian_sweep(kVariant, sigmas());
  expect_bit_identical(results, baseline());
  EXPECT_GE(resumed.stats().hits, 1u);  // the snapshot
}

TEST_F(ResumeTest, LineageIsRecordedAcrossResumes) {
  std::string first_id;
  {
    core::CheckpointStore store(dir_);
    first_id = store.run_id();
  }
  core::CheckpointStore resumed(dir_);
  EXPECT_EQ(resumed.parent_run_id(), first_id);
  EXPECT_NE(resumed.run_id(), first_id);
}

TEST_F(ResumeTest, SweepKindsAndPointsGetDistinctRecords) {
  core::CheckpointStore store(dir_);
  core::Experiment exp(mini_config());
  exp.set_checkpoint_store(&store);
  const std::vector<double> eps = {0.25};  // same value as a sigma point
  exp.evaluate_under_gaussian_sweep(kVariant, sigmas());
  exp.evaluate_under_fgsm_sweep(kVariant, eps);
  // 2 gaussian points + 1 fgsm point + 1 model snapshot, no collisions even
  // though sigma and epsilon share the value 0.25.
  EXPECT_EQ(record_files().size(), sigmas().size() + 2);
}

TEST_F(ResumeTest, ChaosRunIsByteIdenticalAndResumable) {
  util::ChaosConfig cfg;
  cfg.enabled = true;
  cfg.seed = 4242;
  cfg.task_throw_rate = 1.0;  // every sweep point fails once, retry recovers
  cfg.io_fail_rate = 1.0;     // every write fails once, retry recovers
  cfg.corrupt_rate = 0.5;     // some records rot after landing on disk
  util::chaos().configure(cfg);

  {
    core::CheckpointStore store(dir_);
    core::Experiment exp(mini_config());
    exp.set_checkpoint_store(&store);
    const auto results = exp.evaluate_under_gaussian_sweep(kVariant, sigmas());
    expect_bit_identical(results, baseline());
  }
  // Resume re-reads the (possibly chaos-rotted) records: corrupted ones are
  // discarded and recomputed, and the final bytes still match.
  util::chaos().configure(cfg);  // reset once-per-key memory for the resume
  core::CheckpointStore resumed(dir_);
  core::Experiment exp(mini_config());
  exp.set_checkpoint_store(&resumed);
  const auto results = exp.evaluate_under_gaussian_sweep(kVariant, sigmas());
  expect_bit_identical(results, baseline());
}

}  // namespace
}  // namespace cpsguard

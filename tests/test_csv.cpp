#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "obs/fileio.h"
#include "util/contracts.h"

namespace cpsguard::util {
namespace {

TEST(CsvWriter, HeaderOnly) {
  CsvWriter w({"a", "b"});
  EXPECT_EQ(w.to_string(), "a,b\n");
  EXPECT_EQ(w.rows(), 0u);
}

TEST(CsvWriter, SimpleRows) {
  CsvWriter w({"x", "y"});
  w.add_row({"1", "2"});
  w.add_row({"3", "4"});
  EXPECT_EQ(w.to_string(), "x,y\n1,2\n3,4\n");
}

TEST(CsvWriter, RejectsWrongWidth) {
  CsvWriter w({"a", "b"});
  EXPECT_THROW(w.add_row({"only-one"}), ContractViolation);
}

TEST(CsvWriter, QuotesCommasAndQuotes) {
  CsvWriter w({"v"});
  w.add_row({"a,b"});
  w.add_row({"say \"hi\""});
  EXPECT_EQ(w.to_string(), "v\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriter, NumFormatsCompactly) {
  EXPECT_EQ(CsvWriter::num(1.5), "1.5");
  EXPECT_EQ(CsvWriter::num(0.123456789), "0.123457");
}

TEST(CsvRoundtrip, ParseInvertsWrite) {
  CsvWriter w({"name", "value"});
  w.add_row({"plain", "1"});
  w.add_row({"with,comma", "2"});
  w.add_row({"with \"quote\"", "3"});
  const auto rows = parse_csv(w.to_string());
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"name", "value"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"plain", "1"}));
  EXPECT_EQ(rows[2], (std::vector<std::string>{"with,comma", "2"}));
  EXPECT_EQ(rows[3], (std::vector<std::string>{"with \"quote\"", "3"}));
}

TEST(CsvParse, HandlesCrLf) {
  const auto rows = parse_csv("a,b\r\n1,2\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2"}));
}

// Regression (fuzz target "csv"): the parser strips bare '\r' for CRLF
// tolerance, but the writer left '\r' inside fields unquoted — so a written
// carriage return silently vanished on reparse (accept-then-corrupt). The
// writer now quotes it like ',', '"', and '\n'.
TEST(CsvRoundtrip, CarriageReturnInFieldSurvives) {
  CsvWriter w({"h1", "h2"});
  w.add_row({"a\rb", "c"});
  const auto rows = parse_csv(w.to_string());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"a\rb", "c"}));
}

TEST(CsvParse, TrailingLineWithoutNewline) {
  const auto rows = parse_csv("a,b\n1,2");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvParse, EmptyFields) {
  const auto rows = parse_csv("a,,c\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "", "c"}));
}

TEST(CsvFile, WriteAndReadBack) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "cpsguard_csv_test.csv").string();
  CsvWriter w({"k", "v"});
  w.add_row({"pi", "3.14"});
  w.write(path);
  const auto rows = read_csv(path);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][0], "pi");
  std::remove(path.c_str());
}

TEST(CsvFile, ReadMissingFileThrows) {
  EXPECT_THROW(read_csv("/nonexistent/definitely/missing.csv"), std::runtime_error);
}

TEST(CsvFile, WriteIsAtomicUnderPersistentFaults) {
  namespace fs = std::filesystem;
  const std::string path =
      (fs::temp_directory_path() / "cpsguard_csv_atomic_test.csv").string();
  std::ofstream(path, std::ios::binary) << "previous,contents\n";

  // A hook that fails every attempt models a persistently failing disk: the
  // write must exhaust its retries without ever touching the target.
  obs::set_write_fault_hook([](const std::string&, const std::string& tmp) {
    std::error_code ec;
    fs::resize_file(tmp, fs::file_size(tmp, ec) / 2, ec);
    throw obs::IoError("test: injected short write");
  });
  CsvWriter w({"k", "v"});
  w.add_row({"a", "1"});
  EXPECT_THROW(w.write(path), obs::IoError);
  {
    std::ifstream in(path, std::ios::binary);
    const std::string contents{std::istreambuf_iterator<char>(in),
                               std::istreambuf_iterator<char>()};
    EXPECT_EQ(contents, "previous,contents\n");  // target never torn
  }

  // Fault cleared: the write goes through and the stale temp is replaced.
  obs::set_write_fault_hook({});
  w.write(path);
  const auto rows = read_csv(path);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"a", "1"}));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  fs::remove(path);
}

TEST(CsvFile, FailedWriteCreatesNoTargetFile) {
  namespace fs = std::filesystem;
  const std::string path =
      (fs::temp_directory_path() / "cpsguard_csv_never_created.csv").string();
  fs::remove(path);
  obs::set_write_fault_hook([](const std::string&, const std::string&) {
    throw obs::IoError("test: injected failure");
  });
  CsvWriter w({"a"});
  EXPECT_THROW(w.write(path), obs::IoError);
  EXPECT_FALSE(fs::exists(path));
  obs::set_write_fault_hook({});
  fs::remove(path + ".tmp");
}

}  // namespace
}  // namespace cpsguard::util

// LSTM layer and stacked-classifier checks, including full BPTT gradient
// verification against finite differences — the property FGSM correctness
// ultimately rests on.
#include "nn/lstm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/classifier.h"
#include "nn/gradcheck.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace cpsguard::nn {
namespace {

Tensor3 random_tensor(int b, int t, int f, util::Rng& rng) {
  Tensor3 x(b, t, f);
  for (float& v : x.data()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return x;
}

TEST(LstmLayer, OutputShape) {
  util::Rng rng(1);
  LstmLayer lstm(5, 8, rng);
  const Tensor3 y = lstm.forward(random_tensor(3, 4, 5, rng));
  EXPECT_EQ(y.batch(), 3);
  EXPECT_EQ(y.time(), 4);
  EXPECT_EQ(y.features(), 8);
}

TEST(LstmLayer, HiddenStatesBounded) {
  util::Rng rng(2);
  LstmLayer lstm(4, 6, rng);
  Tensor3 x = random_tensor(2, 10, 4, rng);
  x.fill(100.0f);  // extreme inputs must not blow up h = o*tanh(c)
  const Tensor3 y = lstm.forward(x);
  for (float v : y.data()) {
    EXPECT_LE(std::fabs(v), 1.0f + 1e-5f);
    EXPECT_FALSE(std::isnan(v));
  }
}

TEST(LstmLayer, ForgetBiasInitializedToOne) {
  util::Rng rng(3);
  LstmLayer lstm(2, 4, rng);
  const auto params = lstm.params();
  // params: Wx, Wh, b. Forget block of b is [hidden, 2*hidden).
  const Matrix& b = params[2]->value;
  for (int j = 4; j < 8; ++j) EXPECT_FLOAT_EQ(b.at(0, j), 1.0f);
  for (int j = 0; j < 4; ++j) EXPECT_FLOAT_EQ(b.at(0, j), 0.0f);
}

TEST(LstmLayer, DeterministicForward) {
  util::Rng rng1(4), rng2(4);
  LstmLayer a(3, 5, rng1), b(3, 5, rng2);
  util::Rng xr(5);
  const Tensor3 x = random_tensor(2, 6, 3, xr);
  EXPECT_TRUE(a.forward(x) == b.forward(x));
}

TEST(LstmLayer, LongerHistoryChangesLastOutput) {
  // Memory check: the last-step hidden state must depend on early inputs.
  util::Rng rng(6);
  LstmLayer lstm(2, 4, rng);
  util::Rng xr(7);
  Tensor3 x = random_tensor(1, 6, 2, xr);
  const Tensor3 y1 = lstm.forward(x);
  x.at(0, 0, 0) += 2.0f;  // perturb the *first* timestep
  const Tensor3 y2 = lstm.forward(x);
  double diff = 0.0;
  for (int f = 0; f < 4; ++f) {
    diff += std::fabs(y1.at(0, 5, f) - y2.at(0, 5, f));
  }
  EXPECT_GT(diff, 1e-4);
}

TEST(LstmLayer, BackwardRequiresForward) {
  util::Rng rng(8);
  LstmLayer lstm(2, 3, rng);
  Tensor3 dh(1, 2, 3);
  EXPECT_THROW(lstm.backward(dh), ContractViolation);
}

TEST(LstmClassifier, ProbabilitiesWellFormed) {
  util::Rng rng(9);
  LstmClassifier clf(6, 4, {8, 6}, 2, rng);
  util::Rng xr(10);
  const Tensor3 x = random_tensor(5, 6, 4, xr);
  const Matrix p = clf.predict_proba(x);
  ASSERT_EQ(p.rows(), 5);
  ASSERT_EQ(p.cols(), 2);
  for (int r = 0; r < 5; ++r) {
    EXPECT_NEAR(p.at(r, 0) + p.at(r, 1), 1.0f, 1e-5);
  }
}

TEST(LstmClassifier, InputGradientMatchesFiniteDifference) {
  util::Rng rng(11);
  LstmClassifier clf(4, 3, {6, 5}, 2, rng);
  util::Rng xr(12);
  const Tensor3 x = random_tensor(3, 4, 3, xr);
  const std::vector<int> labels = {0, 1, 0};
  util::Rng probe_rng(13);
  const auto res = check_input_gradient(clf, x, labels, probe_rng, 60, 1e-2);
  EXPECT_LT(res.max_rel_error, 0.05) << "abs=" << res.max_abs_error;
}

TEST(LstmClassifier, ParamGradientsMatchFiniteDifference) {
  util::Rng rng(14);
  LstmClassifier clf(3, 2, {5}, 2, rng);
  util::Rng xr(15);
  const Tensor3 x = random_tensor(4, 3, 2, xr);
  const std::vector<int> labels = {0, 1, 1, 0};
  const SoftmaxCrossEntropy ce;
  util::Rng probe_rng(16);
  const auto res =
      check_param_gradients(clf, x, labels, {}, ce, probe_rng, 60, 1e-2);
  EXPECT_LT(res.max_rel_error, 0.05) << "abs=" << res.max_abs_error;
}

TEST(LstmClassifier, ParamGradientsWithSemanticLoss) {
  util::Rng rng(17);
  LstmClassifier clf(3, 2, {4}, 2, rng);
  util::Rng xr(18);
  const Tensor3 x = random_tensor(4, 3, 2, xr);
  const std::vector<int> labels = {0, 1, 1, 0};
  const std::vector<float> sem = {0.0f, 1.0f, 0.0f, 1.0f};
  const SemanticLoss loss(0.7);
  util::Rng probe_rng(19);
  const auto res =
      check_param_gradients(clf, x, labels, sem, loss, probe_rng, 60, 1e-2);
  EXPECT_LT(res.max_rel_error, 0.06) << "abs=" << res.max_abs_error;
}

TEST(LstmClassifier, LearnsTemporalPattern) {
  // Class = whether the first-step signal exceeds the last-step signal;
  // requires using memory across the sequence.
  util::Rng rng(20);
  LstmClassifier clf(4, 1, {8}, 2, rng);
  util::Rng data_rng(21);
  const int n = 256;
  Tensor3 x(n, 4, 1);
  std::vector<int> y(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int t = 0; t < 4; ++t) {
      x.at(i, t, 0) = static_cast<float>(data_rng.uniform(-1.0, 1.0));
    }
    y[static_cast<std::size_t>(i)] = x.at(i, 0, 0) > x.at(i, 3, 0) ? 1 : 0;
  }
  Adam adam(0.01);
  const SoftmaxCrossEntropy ce;
  for (int epoch = 0; epoch < 60; ++epoch) {
    clf.train_batch(x, y, {}, ce, adam);
  }
  const auto preds = predict_classes(clf, x);
  int correct = 0;
  for (int i = 0; i < n; ++i) {
    correct += preds[static_cast<std::size_t>(i)] == y[static_cast<std::size_t>(i)];
  }
  EXPECT_GT(correct, n * 85 / 100);
}

TEST(LstmClassifier, ArchString) {
  util::Rng rng(22);
  LstmClassifier clf(6, 9, {128, 64}, 2, rng);
  EXPECT_EQ(clf.arch(), "LSTM(128-64)");
  EXPECT_EQ(clf.time_steps(), 6);
  EXPECT_EQ(clf.features(), 9);
  EXPECT_EQ(clf.num_classes(), 2);
}

}  // namespace
}  // namespace cpsguard::nn

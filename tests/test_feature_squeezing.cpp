#include "attack/feature_squeezing.h"

#include <gtest/gtest.h>

#include <limits>

#include "attack/fgsm.h"
#include "monitor/features.h"
#include "nn/classifier.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace cpsguard::attack {
namespace {

using monitor::Features;

nn::Tensor3 random_windows(int n, int t, util::Rng& rng) {
  nn::Tensor3 x(n, t, Features::kNumFeatures);
  for (float& v : x.data()) v = static_cast<float>(rng.uniform(-1.5, 1.5));
  return x;
}

TEST(SqueezeQuantize, SnapsToGrid) {
  SqueezeConfig cfg;
  cfg.quantization_levels = 5;   // grid step = 2*4/(5-1) = 2.0
  cfg.quantization_range = 4.0;  // grid: -4,-2,0,2,4
  nn::Tensor3 x(1, 1, Features::kNumFeatures);
  x.at(0, 0, 0) = 0.9f;
  x.at(0, 0, 1) = -1.1f;
  x.at(0, 0, 2) = 3.7f;
  const nn::Tensor3 q = squeeze_quantize(x, cfg);
  EXPECT_FLOAT_EQ(q.at(0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(q.at(0, 0, 1), -2.0f);
  EXPECT_FLOAT_EQ(q.at(0, 0, 2), 4.0f);
}

TEST(SqueezeQuantize, ClampsOutOfRange) {
  SqueezeConfig cfg;
  cfg.quantization_levels = 3;
  cfg.quantization_range = 1.0;
  nn::Tensor3 x(1, 1, Features::kNumFeatures);
  x.at(0, 0, 0) = 100.0f;
  x.at(0, 0, 1) = -100.0f;
  const nn::Tensor3 q = squeeze_quantize(x, cfg);
  EXPECT_FLOAT_EQ(q.at(0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(q.at(0, 0, 1), -1.0f);
}

TEST(SqueezeQuantize, IdempotentOnGridValues) {
  SqueezeConfig cfg;
  util::Rng rng(1);
  const nn::Tensor3 x = random_windows(10, 3, rng);
  const nn::Tensor3 once = squeeze_quantize(x, cfg);
  EXPECT_TRUE(squeeze_quantize(once, cfg) == once);
}

TEST(SqueezeMedian, SmoothsSpike) {
  SqueezeConfig cfg;
  cfg.median_window = 3;
  nn::Tensor3 x(1, 5, Features::kNumFeatures);
  for (int t = 0; t < 5; ++t) x.at(0, t, 0) = 1.0f;
  x.at(0, 2, 0) = 50.0f;  // lone spike
  const nn::Tensor3 m = squeeze_median(x, cfg);
  EXPECT_FLOAT_EQ(m.at(0, 2, 0), 1.0f) << "median must remove the lone spike";
}

TEST(SqueezeMedian, WindowOneIsIdentity) {
  SqueezeConfig cfg;
  cfg.median_window = 1;
  util::Rng rng(2);
  const nn::Tensor3 x = random_windows(4, 4, rng);
  EXPECT_TRUE(squeeze_median(x, cfg) == x);
}

// Regression (NaN-ordering audit): the raw-ML resilience path feeds windows
// containing NaN readings straight through, and nth_element with operator<
// on NaN input is strict-weak-ordering UB. NaNs order last now, so the
// median over {finite, finite, NaN} is the larger finite value — defined
// and deterministic — and neighbouring cells are untouched.
TEST(SqueezeMedian, NanReadingDoesNotScrambleTheWindow) {
  nn::Tensor3 x(1, 3, Features::kNumFeatures);
  for (float& v : x.data()) v = 1.0f;
  x.at(0, 1, 0) = std::numeric_limits<float>::quiet_NaN();
  SqueezeConfig cfg;
  cfg.median_window = 3;
  const nn::Tensor3 m = squeeze_median(x, cfg);
  EXPECT_FLOAT_EQ(m.at(0, 1, 0), 1.0f);  // median of {1, NaN, 1} = 1
  for (int t = 0; t < 3; ++t) {
    EXPECT_FLOAT_EQ(m.at(0, t, 1), 1.0f);  // other features stay clean
  }
}

TEST(SqueezeMedian, RejectsEvenWindow) {
  SqueezeConfig cfg;
  cfg.median_window = 2;
  nn::Tensor3 x(1, 3, Features::kNumFeatures);
  EXPECT_THROW(squeeze_median(x, cfg), cpsguard::ContractViolation);
}

class DetectorTest : public ::testing::Test {
 protected:
  // Temporally smooth windows (like real CGM data): per-window base level
  // plus a gentle ramp and small noise. Median smoothing is near-lossless on
  // such data, which is exactly the property feature squeezing exploits.
  static nn::Tensor3 smooth_windows(int n, int t, util::Rng& rng) {
    nn::Tensor3 x(n, t, Features::kNumFeatures);
    for (int i = 0; i < n; ++i) {
      for (int f = 0; f < Features::kNumFeatures; ++f) {
        const double base = rng.uniform(-1.5, 1.5);
        const double ramp = rng.uniform(-0.1, 0.1);
        for (int tt = 0; tt < t; ++tt) {
          x.at(i, tt, f) = static_cast<float>(base + ramp * tt +
                                              rng.gaussian(0.0, 0.02));
        }
      }
    }
    return x;
  }

  void SetUp() override {
    util::Rng rng(3);
    clf_ = std::make_unique<nn::MlpClassifier>(
        6, Features::kNumFeatures, std::vector<int>{16}, 2, rng);
    util::Rng xr(4);
    clean_ = smooth_windows(150, 6, xr);
    // Give the model real structure so adversarial scores separate.
    std::vector<int> y(150);
    for (int i = 0; i < 150; ++i) {
      y[static_cast<std::size_t>(i)] = clean_.at(i, 0, 0) > 0 ? 1 : 0;
    }
    nn::Adam adam(0.01);
    const nn::SoftmaxCrossEntropy ce;
    for (int e = 0; e < 25; ++e) clf_->train_batch(clean_, y, {}, ce, adam);
  }

  std::unique_ptr<nn::Classifier> clf_;
  nn::Tensor3 clean_;
};

TEST_F(DetectorTest, CalibrationBoundsCleanFalsePositives) {
  FeatureSqueezingDetector det;
  EXPECT_FALSE(det.calibrated());
  det.calibrate(*clf_, clean_, 0.95);
  EXPECT_TRUE(det.calibrated());
  // By construction ~5% of the calibration data sits above the threshold.
  const double fp = det.detection_rate(*clf_, clean_);
  EXPECT_LT(fp, 0.10);
}

TEST_F(DetectorTest, AdversarialInputsScoreHigherOnAverage) {
  FeatureSqueezingDetector det;
  det.calibrate(*clf_, clean_, 0.95);
  const auto labels = nn::predict_classes(*clf_, clean_);
  FgsmConfig fc;
  fc.epsilon = 0.5;
  const nn::Tensor3 adv = fgsm_attack(*clf_, clean_, labels, fc);
  const auto clean_scores = det.scores(*clf_, clean_);
  const auto adv_scores = det.scores(*clf_, adv);
  double cm = 0.0, am = 0.0;
  for (std::size_t i = 0; i < clean_scores.size(); ++i) {
    cm += clean_scores[i];
    am += adv_scores[i];
  }
  EXPECT_GT(am, cm) << "prediction discrepancy must grow under attack";
  EXPECT_GT(det.detection_rate(*clf_, adv), det.detection_rate(*clf_, clean_));
}

TEST_F(DetectorTest, UncalibratedDetectThrows) {
  FeatureSqueezingDetector det;
  EXPECT_THROW(det.detect(*clf_, clean_), cpsguard::ContractViolation);
  EXPECT_THROW((void)det.threshold(), cpsguard::ContractViolation);
}

TEST_F(DetectorTest, RejectsBadQuantile) {
  FeatureSqueezingDetector det;
  EXPECT_THROW(det.calibrate(*clf_, clean_, 1.0), cpsguard::ContractViolation);
}

}  // namespace
}  // namespace cpsguard::attack

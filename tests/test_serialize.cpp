#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "util/error.h"
#include "util/rng.h"

namespace cpsguard::nn {
namespace {

Tensor3 random_tensor(int b, int t, int f, util::Rng& rng) {
  Tensor3 x(b, t, f);
  for (float& v : x.data()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return x;
}

TEST(Serialize, StreamRoundtripPreservesWeights) {
  util::Rng rng(1);
  MlpClassifier a(2, 3, {5}, 2, rng);
  util::Rng rng2(99);
  MlpClassifier b(2, 3, {5}, 2, rng2);

  std::stringstream ss;
  {
    const auto ps = a.params();
    save_params(ss, ps);
  }
  {
    const auto ps = b.params();
    load_params(ss, ps);
  }
  const auto pa = a.params();
  const auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i]->value == pb[i]->value) << pa[i]->name;
  }
}

TEST(Serialize, LoadedModelPredictsIdentically) {
  util::Rng rng(2);
  LstmClassifier a(3, 2, {4}, 2, rng);
  util::Rng rng2(77);
  LstmClassifier b(3, 2, {4}, 2, rng2);
  std::stringstream ss;
  {
    const auto ps = a.params();
    save_params(ss, ps);
  }
  {
    const auto ps = b.params();
    load_params(ss, ps);
  }
  util::Rng xr(3);
  const Tensor3 x = random_tensor(4, 3, 2, xr);
  EXPECT_TRUE(a.predict_proba(x) == b.predict_proba(x));
}

TEST(Serialize, RejectsBadMagic) {
  util::Rng rng(4);
  MlpClassifier clf(1, 2, {3}, 2, rng);
  std::stringstream ss("XXXXGARBAGE");
  const auto ps = clf.params();
  EXPECT_THROW(load_params(ss, ps), std::runtime_error);
}

TEST(Serialize, RejectsTruncatedStream) {
  util::Rng rng(5);
  MlpClassifier clf(1, 2, {3}, 2, rng);
  std::stringstream ss;
  {
    const auto ps = clf.params();
    save_params(ss, ps);
  }
  std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  const auto ps = clf.params();
  EXPECT_THROW(load_params(truncated, ps), std::runtime_error);
}

TEST(Serialize, RejectsShapeMismatch) {
  util::Rng rng(6);
  MlpClassifier small(1, 2, {3}, 2, rng);
  util::Rng rng2(7);
  MlpClassifier big(1, 2, {9}, 2, rng2);
  std::stringstream ss;
  {
    const auto ps = small.params();
    save_params(ss, ps);
  }
  const auto ps = big.params();
  EXPECT_THROW(load_params(ss, ps), std::runtime_error);
}

TEST(Serialize, FileRoundtrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "cpsguard_model_test.bin").string();
  util::Rng rng(8);
  MlpClassifier a(2, 2, {4}, 2, rng);
  save_classifier(path, a);
  util::Rng rng2(9);
  MlpClassifier b(2, 2, {4}, 2, rng2);
  load_classifier(path, b);
  util::Rng xr(10);
  const Tensor3 x = random_tensor(2, 2, 2, xr);
  EXPECT_TRUE(a.predict_proba(x) == b.predict_proba(x));
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  util::Rng rng(11);
  MlpClassifier clf(1, 2, {3}, 2, rng);
  EXPECT_THROW(load_classifier("/nonexistent/model.bin", clf), std::runtime_error);
}

// Regression (fuzz target "serialize"): a corrupt stream declaring
// name_len = 0xffffffff allocated 4 GiB before any validation. The length
// is now checked against the expected param name first.
TEST(Serialize, CorruptNameLengthIsNotAnAllocationBomb) {
  Param p("w1", Matrix::full(2, 2, 1.0f));
  std::vector<Param*> ptrs = {&p};
  std::string bomb("CPSG", 4);
  const auto put_u32 = [&bomb](std::uint32_t v) {
    for (int b = 0; b < 4; ++b) bomb += static_cast<char>((v >> (8 * b)) & 0xff);
  };
  put_u32(1);            // version
  put_u32(1);            // param count
  put_u32(0xffffffffu);  // hostile name length
  std::istringstream is(bomb);
  EXPECT_THROW(load_params(is, ptrs), CpsError);
}

TEST(Serialize, TruncatedStreamIsTypedError) {
  Param p("w1", Matrix::full(2, 2, 1.0f));
  std::vector<Param*> ptrs = {&p};
  std::ostringstream os;
  save_params(os, ptrs);
  const std::string full = os.str();
  for (const std::size_t cut : {std::size_t{0}, std::size_t{3}, full.size() / 2,
                                full.size() - 1}) {
    std::istringstream is(full.substr(0, cut));
    EXPECT_THROW(load_params(is, ptrs), CpsError) << "cut at " << cut;
  }
}

}  // namespace
}  // namespace cpsguard::nn

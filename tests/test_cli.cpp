#include "util/cli.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/error.h"

namespace cpsguard::util {
namespace {

Cli make_cli(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Cli(static_cast<int>(args.size()), args.data());
}

TEST(Cli, SpaceSeparatedValue) {
  const Cli cli = make_cli({"--sims", "12"});
  EXPECT_EQ(cli.get_int("sims", 0), 12);
}

TEST(Cli, EqualsSeparatedValue) {
  const Cli cli = make_cli({"--eps=0.25"});
  EXPECT_DOUBLE_EQ(cli.get_double("eps", 0.0), 0.25);
}

TEST(Cli, BareFlagIsTrue) {
  const Cli cli = make_cli({"--verbose"});
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_TRUE(cli.has("verbose"));
}

TEST(Cli, DefaultsWhenMissing) {
  const Cli cli = make_cli({});
  EXPECT_EQ(cli.get("name", "fallback"), "fallback");
  EXPECT_EQ(cli.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("d", 1.5), 1.5);
  EXPECT_FALSE(cli.get_bool("b", false));
  EXPECT_FALSE(cli.has("anything"));
}

TEST(Cli, BoolParsesCommonForms) {
  EXPECT_TRUE(make_cli({"--x", "true"}).get_bool("x", false));
  EXPECT_TRUE(make_cli({"--x", "1"}).get_bool("x", false));
  EXPECT_TRUE(make_cli({"--x", "yes"}).get_bool("x", false));
  EXPECT_FALSE(make_cli({"--x", "no"}).get_bool("x", true));
}

TEST(Cli, RejectsPositionalArguments) {
  EXPECT_THROW(make_cli({"positional"}), CpsError);
}

// Regression (fuzz target "cli"): numeric flags used to go through std::stoi
// / std::stod, which accepted trailing garbage ("--threads=4x" parsed as 4)
// and threw untyped std::invalid_argument / std::out_of_range on junk.
TEST(Cli, TypedGettersRejectTrailingGarbage) {
  EXPECT_THROW(make_cli({"--threads=4x"}).get_int("threads", 0), ParseError);
  EXPECT_THROW(make_cli({"--rate=0.5pt"}).get_double("rate", 0.0), ParseError);
}

TEST(Cli, TypedGettersRejectNonNumeric) {
  EXPECT_THROW(make_cli({"--threads", "many"}).get_int("threads", 0), ParseError);
  EXPECT_THROW(make_cli({"--rate", "."}).get_double("rate", 0.0), ParseError);
  EXPECT_THROW(make_cli({"--threads="}).get_int("threads", 0), ParseError);
}

TEST(Cli, TypedGettersRejectOutOfRange) {
  EXPECT_THROW(make_cli({"--threads=9999999999999999999"}).get_int("threads", 0),
               ParseError);
  EXPECT_THROW(make_cli({"--rate=1e999"}).get_double("rate", 0.0), ParseError);
}

TEST(Cli, ParseErrorNamesTheFlagAndRawText) {
  try {
    (void)make_cli({"--threads=4x"}).get_int("threads", 0);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--threads"), std::string::npos) << msg;
    EXPECT_NE(msg.find("4x"), std::string::npos) << msg;
  }
}

TEST(Cli, UnusedTracksUnqueriedFlags) {
  const Cli cli = make_cli({"--used", "1", "--typo", "2"});
  (void)cli.get_int("used", 0);
  const auto unused = cli.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Cli, ProgramNameCaptured) {
  const Cli cli = make_cli({});
  EXPECT_EQ(cli.program(), "prog");
}

TEST(Cli, NegativeNumericValue) {
  const Cli cli = make_cli({"--delta=-3"});
  EXPECT_EQ(cli.get_int("delta", 0), -3);
}

}  // namespace
}  // namespace cpsguard::util

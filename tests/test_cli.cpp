#include "util/cli.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace cpsguard::util {
namespace {

Cli make_cli(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Cli(static_cast<int>(args.size()), args.data());
}

TEST(Cli, SpaceSeparatedValue) {
  const Cli cli = make_cli({"--sims", "12"});
  EXPECT_EQ(cli.get_int("sims", 0), 12);
}

TEST(Cli, EqualsSeparatedValue) {
  const Cli cli = make_cli({"--eps=0.25"});
  EXPECT_DOUBLE_EQ(cli.get_double("eps", 0.0), 0.25);
}

TEST(Cli, BareFlagIsTrue) {
  const Cli cli = make_cli({"--verbose"});
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_TRUE(cli.has("verbose"));
}

TEST(Cli, DefaultsWhenMissing) {
  const Cli cli = make_cli({});
  EXPECT_EQ(cli.get("name", "fallback"), "fallback");
  EXPECT_EQ(cli.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("d", 1.5), 1.5);
  EXPECT_FALSE(cli.get_bool("b", false));
  EXPECT_FALSE(cli.has("anything"));
}

TEST(Cli, BoolParsesCommonForms) {
  EXPECT_TRUE(make_cli({"--x", "true"}).get_bool("x", false));
  EXPECT_TRUE(make_cli({"--x", "1"}).get_bool("x", false));
  EXPECT_TRUE(make_cli({"--x", "yes"}).get_bool("x", false));
  EXPECT_FALSE(make_cli({"--x", "no"}).get_bool("x", true));
}

TEST(Cli, RejectsPositionalArguments) {
  EXPECT_THROW(make_cli({"positional"}), std::invalid_argument);
}

TEST(Cli, UnusedTracksUnqueriedFlags) {
  const Cli cli = make_cli({"--used", "1", "--typo", "2"});
  (void)cli.get_int("used", 0);
  const auto unused = cli.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Cli, ProgramNameCaptured) {
  const Cli cli = make_cli({});
  EXPECT_EQ(cli.program(), "prog");
}

TEST(Cli, NegativeNumericValue) {
  const Cli cli = make_cli({"--delta=-3"});
  EXPECT_EQ(cli.get_int("delta", 0), -3);
}

}  // namespace
}  // namespace cpsguard::util

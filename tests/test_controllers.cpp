#include <gtest/gtest.h>

#include <cmath>

#include "sim/basal_bolus_controller.h"
#include "sim/openaps_controller.h"
#include "util/contracts.h"

namespace cpsguard::sim {
namespace {

PatientProfile profile() {
  PatientProfile p;
  p.isf_mg_dl_per_u = 50.0;
  p.carb_ratio_g_per_u = 10.0;
  return p;
}

ControllerInput input(double bg, double d_bg = 0.0, double iob = 1.5,
                      double carbs = 0.0) {
  ControllerInput in;
  in.sensor_bg = bg;
  in.d_bg = d_bg;
  in.iob = iob;
  in.announced_carbs = carbs;
  return in;
}

TEST(ClassifyAction, StopWinsOverDecrease) {
  EXPECT_EQ(classify_action(0.0, 1.0), ControlAction::kStopInsulin);
  EXPECT_EQ(classify_action(0.04, 1.0), ControlAction::kStopInsulin);
}

TEST(ClassifyAction, DecreaseIncreaseKeep) {
  EXPECT_EQ(classify_action(0.5, 1.0), ControlAction::kDecreaseInsulin);
  EXPECT_EQ(classify_action(1.5, 1.0), ControlAction::kIncreaseInsulin);
  EXPECT_EQ(classify_action(1.0, 1.0), ControlAction::kKeepInsulin);
  EXPECT_EQ(classify_action(1.01, 1.0), ControlAction::kKeepInsulin);  // dead-band
}

TEST(OpenAps, SuspendsOnHypoglycemia) {
  OpenApsController c;
  c.reset(profile(), 1.0);
  const auto cmd = c.decide(input(60.0));
  EXPECT_DOUBLE_EQ(cmd.rate_u_per_h, 0.0);
  EXPECT_EQ(cmd.action, ControlAction::kStopInsulin);
}

TEST(OpenAps, SuspendsOnPredictedLow) {
  OpenApsController c;
  c.reset(profile(), 1.0);
  // BG fine now but falling fast → eventual BG below suspend threshold.
  const auto cmd = c.decide(input(100.0, -2.0));
  EXPECT_DOUBLE_EQ(cmd.rate_u_per_h, 0.0);
}

TEST(OpenAps, IncreasesOnHyperglycemia) {
  OpenApsController c;
  c.reset(profile(), 1.0);
  const auto cmd = c.decide(input(220.0, 0.5));
  EXPECT_GT(cmd.rate_u_per_h, 1.0);
  EXPECT_EQ(cmd.action, ControlAction::kIncreaseInsulin);
}

TEST(OpenAps, TempBasalIsCapped) {
  OpenApsController c;
  c.reset(profile(), 1.0);
  const auto cmd = c.decide(input(500.0, 5.0));
  EXPECT_LE(cmd.rate_u_per_h, 4.0 + 1e-9);  // kMaxTempFactor * basal
}

TEST(OpenAps, ReducesBelowTarget) {
  OpenApsController c;
  c.reset(profile(), 1.0);
  const auto cmd = c.decide(input(95.0, -0.3));
  EXPECT_LT(cmd.rate_u_per_h, 1.0);
  EXPECT_GT(cmd.rate_u_per_h, 0.0);
}

TEST(OpenAps, NearTargetKeepsBasal) {
  OpenApsController c;
  c.reset(profile(), 1.0);
  // First decision from prev_rate == basal with eventual ≈ target.
  const auto cmd = c.decide(input(kTargetBg, 0.0));
  EXPECT_NEAR(cmd.rate_u_per_h, 1.0, 1e-9);
  EXPECT_EQ(cmd.action, ControlAction::kKeepInsulin);
}

TEST(OpenAps, MealAnnouncementAddsBolus) {
  OpenApsController c;
  c.reset(profile(), 1.0);
  const auto no_meal = c.decide(input(kTargetBg));
  c.reset(profile(), 1.0);
  const auto with_meal = c.decide(input(kTargetBg, 0.0, 1.5, 50.0));
  EXPECT_GT(with_meal.rate_u_per_h, no_meal.rate_u_per_h + 10.0);
}

TEST(OpenAps, HighIobSuppressesCorrection) {
  OpenApsController c;
  c.reset(profile(), 1.0);
  const auto low_iob = c.decide(input(200.0, 0.0, 1.5));
  c.reset(profile(), 1.0);
  const auto high_iob = c.decide(input(200.0, 0.0, 6.0));
  EXPECT_LT(high_iob.rate_u_per_h, low_iob.rate_u_per_h);
}

TEST(OpenAps, EventualBgFormula) {
  OpenApsController c;
  c.reset(profile(), 1.0);
  // iob at basal equilibrium (≈ basal*tau/60 with 60-min half-life ≈ 1.443)
  // contributes nothing; momentum adds 20 min of trend.
  const double basal_iob = 1.0 / 60.0 / (std::log(2.0) / 60.0);
  const double ev = c.eventual_bg(input(100.0, 1.0, basal_iob));
  EXPECT_NEAR(ev, 100.0 + 20.0, 1e-6);
}

TEST(OpenAps, RejectsNonPositiveBasal) {
  OpenApsController c;
  EXPECT_THROW(c.reset(profile(), 0.0), cpsguard::ContractViolation);
}

TEST(BasalBolus, KeepsScheduledBasal) {
  BasalBolusController c;
  c.reset(profile(), 1.2);
  const auto cmd = c.decide(input(140.0));
  EXPECT_DOUBLE_EQ(cmd.rate_u_per_h, 1.2);
  EXPECT_EQ(cmd.action, ControlAction::kKeepInsulin);
}

TEST(BasalBolus, SuspendsOnHypo) {
  BasalBolusController c;
  c.reset(profile(), 1.2);
  const auto cmd = c.decide(input(65.0));
  EXPECT_DOUBLE_EQ(cmd.rate_u_per_h, 0.0);
  EXPECT_EQ(cmd.action, ControlAction::kStopInsulin);
}

TEST(BasalBolus, MealBolusScalesWithCarbs) {
  BasalBolusController c;
  c.reset(profile(), 1.0);
  const auto small = c.decide(input(120.0, 0.0, 1.5, 20.0));
  c.reset(profile(), 1.0);
  const auto large = c.decide(input(120.0, 0.0, 1.5, 80.0));
  EXPECT_GT(large.rate_u_per_h, small.rate_u_per_h);
  EXPECT_EQ(large.action, ControlAction::kIncreaseInsulin);
}

TEST(BasalBolus, CorrectionAddedWhenHighAtMeal) {
  BasalBolusController c;
  c.reset(profile(), 1.0);
  const auto normal = c.decide(input(120.0, 0.0, 1.5, 40.0));
  c.reset(profile(), 1.0);
  const auto high = c.decide(input(220.0, 0.0, 1.5, 40.0));
  EXPECT_GT(high.rate_u_per_h, normal.rate_u_per_h);
}

TEST(BasalBolus, StandaloneCorrectionOnSevereHyper) {
  BasalBolusController c;
  c.reset(profile(), 1.0);
  const auto cmd = c.decide(input(320.0));
  EXPECT_GT(cmd.rate_u_per_h, 1.0);
  EXPECT_EQ(cmd.action, ControlAction::kIncreaseInsulin);
}

TEST(BasalBolus, ResumesAfterSuspend) {
  BasalBolusController c;
  c.reset(profile(), 1.0);
  (void)c.decide(input(60.0));
  const auto resumed = c.decide(input(120.0));
  EXPECT_DOUBLE_EQ(resumed.rate_u_per_h, 1.0);
  EXPECT_EQ(resumed.action, ControlAction::kIncreaseInsulin);  // from 0 up
}

}  // namespace
}  // namespace cpsguard::sim

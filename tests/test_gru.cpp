// GRU layer and stacked-classifier checks, mirroring the LSTM suite:
// shapes, bounded activations, memory, and full BPTT gradient verification.
#include "nn/gru.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/gradcheck.h"
#include "nn/gru_classifier.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace cpsguard::nn {
namespace {

Tensor3 random_tensor(int b, int t, int f, util::Rng& rng) {
  Tensor3 x(b, t, f);
  for (float& v : x.data()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return x;
}

TEST(GruLayer, OutputShape) {
  util::Rng rng(1);
  GruLayer gru(5, 8, rng);
  const Tensor3 y = gru.forward(random_tensor(3, 4, 5, rng));
  EXPECT_EQ(y.batch(), 3);
  EXPECT_EQ(y.time(), 4);
  EXPECT_EQ(y.features(), 8);
}

TEST(GruLayer, HiddenStatesBounded) {
  util::Rng rng(2);
  GruLayer gru(4, 6, rng);
  Tensor3 x = random_tensor(2, 10, 4, rng);
  x.fill(100.0f);
  const Tensor3 y = gru.forward(x);
  // h is a convex combination of tanh outputs and previous h → |h| <= 1.
  for (float v : y.data()) {
    EXPECT_LE(std::fabs(v), 1.0f + 1e-5f);
    EXPECT_FALSE(std::isnan(v));
  }
}

TEST(GruLayer, RemembersEarlyInputs) {
  util::Rng rng(3);
  GruLayer gru(2, 4, rng);
  util::Rng xr(4);
  Tensor3 x = random_tensor(1, 6, 2, xr);
  const Tensor3 y1 = gru.forward(x);
  x.at(0, 0, 0) += 2.0f;
  const Tensor3 y2 = gru.forward(x);
  double diff = 0.0;
  for (int f = 0; f < 4; ++f) diff += std::fabs(y1.at(0, 5, f) - y2.at(0, 5, f));
  EXPECT_GT(diff, 1e-4);
}

TEST(GruLayer, DeterministicForward) {
  util::Rng rng1(5), rng2(5);
  GruLayer a(3, 5, rng1), b(3, 5, rng2);
  util::Rng xr(6);
  const Tensor3 x = random_tensor(2, 6, 3, xr);
  EXPECT_TRUE(a.forward(x) == b.forward(x));
}

TEST(GruLayer, BackwardRequiresForward) {
  util::Rng rng(7);
  GruLayer gru(2, 3, rng);
  Tensor3 dh(1, 2, 3);
  EXPECT_THROW(gru.backward(dh), ContractViolation);
}

TEST(GruLayer, HasFourParams) {
  util::Rng rng(8);
  GruLayer gru(3, 4, rng);
  const auto ps = gru.params();
  ASSERT_EQ(ps.size(), 4u);
  EXPECT_EQ(ps[0]->value.rows(), 3);   // Wx
  EXPECT_EQ(ps[0]->value.cols(), 12);  // 3H
  EXPECT_EQ(ps[1]->value.rows(), 4);   // Wh
  EXPECT_EQ(ps[2]->value.rows(), 1);   // bx
  EXPECT_EQ(ps[3]->value.rows(), 1);   // bh
}

TEST(GruClassifier, ProbabilitiesWellFormed) {
  util::Rng rng(9);
  GruClassifier clf(6, 4, {8, 6}, 2, rng);
  EXPECT_EQ(clf.arch(), "GRU(8-6)");
  util::Rng xr(10);
  const Tensor3 x = random_tensor(5, 6, 4, xr);
  const Matrix p = clf.predict_proba(x);
  ASSERT_EQ(p.rows(), 5);
  for (int r = 0; r < 5; ++r) {
    EXPECT_NEAR(p.at(r, 0) + p.at(r, 1), 1.0f, 1e-5);
  }
}

TEST(GruClassifier, InputGradientMatchesFiniteDifference) {
  util::Rng rng(11);
  GruClassifier clf(4, 3, {6, 5}, 2, rng);
  util::Rng xr(12);
  const Tensor3 x = random_tensor(3, 4, 3, xr);
  const std::vector<int> labels = {0, 1, 0};
  util::Rng probe_rng(13);
  const auto res = check_input_gradient(clf, x, labels, probe_rng, 60, 1e-2);
  EXPECT_LT(res.max_rel_error, 0.05) << "abs=" << res.max_abs_error;
}

TEST(GruClassifier, ParamGradientsMatchFiniteDifference) {
  util::Rng rng(14);
  GruClassifier clf(3, 2, {5}, 2, rng);
  util::Rng xr(15);
  const Tensor3 x = random_tensor(4, 3, 2, xr);
  const std::vector<int> labels = {0, 1, 1, 0};
  const SoftmaxCrossEntropy ce;
  util::Rng probe_rng(16);
  const auto res =
      check_param_gradients(clf, x, labels, {}, ce, probe_rng, 60, 1e-2);
  EXPECT_LT(res.max_rel_error, 0.05) << "abs=" << res.max_abs_error;
}

TEST(GruClassifier, ParamGradientsWithSemanticLoss) {
  util::Rng rng(17);
  GruClassifier clf(3, 2, {4}, 2, rng);
  util::Rng xr(18);
  const Tensor3 x = random_tensor(4, 3, 2, xr);
  const std::vector<int> labels = {0, 1, 1, 0};
  const std::vector<float> sem = {0.0f, 1.0f, 0.0f, 1.0f};
  const SemanticLoss loss(0.7);
  util::Rng probe_rng(19);
  const auto res =
      check_param_gradients(clf, x, labels, sem, loss, probe_rng, 60, 1e-2);
  EXPECT_LT(res.max_rel_error, 0.06) << "abs=" << res.max_abs_error;
}

TEST(GruClassifier, LearnsTemporalPattern) {
  util::Rng rng(20);
  GruClassifier clf(4, 1, {8}, 2, rng);
  util::Rng data_rng(21);
  const int n = 256;
  Tensor3 x(n, 4, 1);
  std::vector<int> y(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int t = 0; t < 4; ++t) {
      x.at(i, t, 0) = static_cast<float>(data_rng.uniform(-1.0, 1.0));
    }
    y[static_cast<std::size_t>(i)] = x.at(i, 0, 0) > x.at(i, 3, 0) ? 1 : 0;
  }
  Adam adam(0.01);
  const SoftmaxCrossEntropy ce;
  for (int epoch = 0; epoch < 60; ++epoch) clf.train_batch(x, y, {}, ce, adam);
  const auto preds = predict_classes(clf, x);
  int correct = 0;
  for (int i = 0; i < n; ++i) {
    correct += preds[static_cast<std::size_t>(i)] == y[static_cast<std::size_t>(i)];
  }
  EXPECT_GT(correct, n * 85 / 100);
}

}  // namespace
}  // namespace cpsguard::nn

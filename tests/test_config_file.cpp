#include "util/config_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/error.h"

namespace cpsguard::util {
namespace {

TEST(ConfigFile, ParsesKeysAndValues) {
  const auto cfg = ConfigFile::parse(
      "campaign.patients = 20\n"
      "campaign.seed=42\n"
      "epochs =  10 \n");
  EXPECT_EQ(cfg.size(), 3u);
  EXPECT_EQ(cfg.get_int("campaign.patients", 0), 20);
  EXPECT_EQ(cfg.get_int("campaign.seed", 0), 42);
  EXPECT_EQ(cfg.get_int("epochs", 0), 10);
}

TEST(ConfigFile, CommentsAndBlankLines) {
  const auto cfg = ConfigFile::parse(
      "# full-line comment\n"
      "\n"
      "key = value   # trailing comment\n");
  EXPECT_EQ(cfg.size(), 1u);
  EXPECT_EQ(cfg.get("key", ""), "value");
}

TEST(ConfigFile, TypedAccessorsAndDefaults) {
  const auto cfg = ConfigFile::parse(
      "lr = 0.001\nflag = true\nname = glucosym\n");
  EXPECT_DOUBLE_EQ(cfg.get_double("lr", 0.0), 0.001);
  EXPECT_TRUE(cfg.get_bool("flag", false));
  EXPECT_EQ(cfg.get("name", ""), "glucosym");
  EXPECT_EQ(cfg.get_int("missing", 7), 7);
  EXPECT_FALSE(cfg.has("missing"));
  EXPECT_TRUE(cfg.has("lr"));
}

TEST(ConfigFile, BoolForms) {
  const auto cfg = ConfigFile::parse("a = 1\nb = yes\nc = no\nd = false\n");
  EXPECT_TRUE(cfg.get_bool("a", false));
  EXPECT_TRUE(cfg.get_bool("b", false));
  EXPECT_FALSE(cfg.get_bool("c", true));
  EXPECT_FALSE(cfg.get_bool("d", true));
}

TEST(ConfigFile, ErrorsCarryLineNumbers) {
  try {
    ConfigFile::parse("good = 1\nbad line without equals\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ConfigFile, RejectsDuplicateAndEmptyKeys) {
  EXPECT_THROW(ConfigFile::parse("k = 1\nk = 2\n"), std::runtime_error);
  EXPECT_THROW(ConfigFile::parse(" = 1\n"), std::runtime_error);
}

TEST(ConfigFile, LoadFromDisk) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "cpsguard_cfg_test.conf").string();
  {
    std::ofstream f(path);
    f << "campaign.sims = 5\n";
  }
  const auto cfg = ConfigFile::load(path);
  EXPECT_EQ(cfg.get_int("campaign.sims", 0), 5);
  std::remove(path.c_str());
}

TEST(ConfigFile, LoadMissingFileThrows) {
  EXPECT_THROW(ConfigFile::load("/definitely/not/here.conf"), std::runtime_error);
}

TEST(ConfigFile, ValueMayContainEquals) {
  const auto cfg = ConfigFile::parse("expr = a=b\n");
  EXPECT_EQ(cfg.get("expr", ""), "a=b");
}

// Regression (fuzz target "config"): get_int/get_double went through
// std::stoi/std::stod — trailing garbage silently truncated and junk threw
// untyped std::invalid_argument / std::out_of_range.
TEST(ConfigFile, TypedGettersRejectTrailingGarbage) {
  const auto cfg = ConfigFile::parse("threads = 4x\nrate = 0.5pt\n");
  EXPECT_THROW(cfg.get_int("threads", 0), ParseError);
  EXPECT_THROW(cfg.get_double("rate", 0.0), ParseError);
}

TEST(ConfigFile, TypedGettersRejectOutOfRange) {
  const auto cfg = ConfigFile::parse("k = 1e999\nn = 9999999999999999999\n");
  EXPECT_THROW(cfg.get_double("k", 0.0), ParseError);
  EXPECT_THROW(cfg.get_int("n", 0), ParseError);
}

TEST(ConfigFile, ParseErrorNamesKeyAndRawText) {
  const auto cfg = ConfigFile::parse("threads = 4x\n");
  try {
    (void)cfg.get_int("threads", 0);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("threads"), std::string::npos) << msg;
    EXPECT_NE(msg.find("4x"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace cpsguard::util

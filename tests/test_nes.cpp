#include "attack/nes.h"

#include <gtest/gtest.h>

#include "monitor/features.h"
#include "nn/classifier.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace cpsguard::attack {
namespace {

using monitor::Features;

nn::Tensor3 random_windows(int n, int t, util::Rng& rng) {
  nn::Tensor3 x(n, t, Features::kNumFeatures);
  for (float& v : x.data()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return x;
}

class NesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Rng rng(1);
    clf_ = std::make_unique<nn::MlpClassifier>(
        2, Features::kNumFeatures, std::vector<int>{12}, 2, rng);
    util::Rng xr(2);
    x_ = random_windows(16, 2, xr);
    labels_ = nn::predict_classes(*clf_, x_);  // attacker's oracle labels
  }

  double loss_of(const nn::Tensor3& x) {
    const nn::SoftmaxCrossEntropy ce;
    clf_->zero_grad();
    const double l = clf_->accumulate_gradients(x, labels_, {}, ce);
    clf_->zero_grad();
    return l;
  }

  std::unique_ptr<nn::Classifier> clf_;
  nn::Tensor3 x_;
  std::vector<int> labels_;
};

TEST_F(NesTest, RespectsEpsilonBall) {
  NesConfig cfg;
  cfg.epsilon = 0.1;
  const nn::Tensor3 adv = nes_attack(*clf_, x_, labels_, cfg);
  EXPECT_LE(linf_distance(adv, x_), cfg.epsilon + 1e-6);
}

TEST_F(NesTest, IncreasesLossWithoutGradients) {
  NesConfig cfg;
  cfg.epsilon = 0.2;
  cfg.step_size = 0.05;
  cfg.iterations = 8;
  cfg.samples = 30;
  const nn::Tensor3 adv = nes_attack(*clf_, x_, labels_, cfg);
  EXPECT_GT(loss_of(adv), loss_of(x_))
      << "score-based gradient estimation should still ascend the loss";
}

TEST_F(NesTest, DeterministicInSeed) {
  NesConfig cfg;
  cfg.iterations = 2;
  cfg.samples = 6;
  const nn::Tensor3 a = nes_attack(*clf_, x_, labels_, cfg);
  const nn::Tensor3 b = nes_attack(*clf_, x_, labels_, cfg);
  EXPECT_TRUE(a == b);
  cfg.seed += 1;
  const nn::Tensor3 c = nes_attack(*clf_, x_, labels_, cfg);
  EXPECT_FALSE(a == c);
}

TEST_F(NesTest, MaskRestrictsPerturbation) {
  NesConfig cfg;
  cfg.epsilon = 0.1;
  cfg.mask = FeatureMask::kSensorsOnly;
  const nn::Tensor3 adv = nes_attack(*clf_, x_, labels_, cfg);
  for (int b = 0; b < x_.batch(); ++b) {
    for (int t = 0; t < x_.time(); ++t) {
      for (int f = 0; f < x_.features(); ++f) {
        if (Features::is_command_feature(f)) {
          EXPECT_FLOAT_EQ(adv.at(b, t, f), x_.at(b, t, f));
        }
      }
    }
  }
}

TEST_F(NesTest, RejectsBadConfig) {
  NesConfig cfg;
  cfg.iterations = 0;
  EXPECT_THROW(nes_attack(*clf_, x_, labels_, cfg), cpsguard::ContractViolation);
  cfg.iterations = 1;
  cfg.sigma = 0.0;
  EXPECT_THROW(nes_attack(*clf_, x_, labels_, cfg), cpsguard::ContractViolation);
}

// Regression: samples=1 used to integer-divide to zero antithetic pairs and
// return the input untouched — a silent no-op attack. Odd budgets now fail
// fast instead of silently rounding the budget down.
TEST_F(NesTest, RejectsOddOrTooSmallSampleBudget) {
  NesConfig cfg;
  cfg.samples = 1;
  EXPECT_THROW(nes_attack(*clf_, x_, labels_, cfg), cpsguard::ContractViolation);
  cfg.samples = 7;
  EXPECT_THROW(nes_attack(*clf_, x_, labels_, cfg), cpsguard::ContractViolation);
  cfg.samples = 0;
  EXPECT_THROW(nes_attack(*clf_, x_, labels_, cfg), cpsguard::ContractViolation);
}

TEST_F(NesTest, MinimalEvenBudgetActuallyPerturbs) {
  NesConfig cfg;
  cfg.samples = 2;  // one antithetic pair — the smallest legal budget
  cfg.iterations = 4;
  cfg.epsilon = 0.2;
  cfg.step_size = 0.1;
  const nn::Tensor3 adv = nes_attack(*clf_, x_, labels_, cfg);
  EXPECT_FALSE(adv == x_) << "the attack must not silently no-op";
  EXPECT_GT(linf_distance(adv, x_), 0.0);
}

}  // namespace
}  // namespace cpsguard::attack

#include "util/chaos.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/fileio.h"
#include "util/retry.h"

namespace cpsguard::util {
namespace {

namespace fs = std::filesystem;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// Tests drive the injector programmatically; the ambient configuration
/// (possibly enabled via CPSGUARD_CHAOS in a chaos CI job) is saved and
/// restored so this suite behaves identically in both environments.
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = chaos().config(); }
  void TearDown() override { chaos().configure(saved_); }

  static ChaosConfig enabled_config() {
    ChaosConfig cfg;
    cfg.enabled = true;
    cfg.seed = 99;
    return cfg;
  }

  ChaosConfig saved_;
};

TEST_F(ChaosTest, DisabledInjectorNeverFires) {
  ChaosConfig cfg;  // disabled
  chaos().configure(cfg);
  EXPECT_FALSE(chaos().should_inject("any", "key", 1.0));
  chaos().maybe_throw("any", "key");  // must not throw
  EXPECT_FALSE(chaos().maybe_corrupt_file("/nonexistent", "key"));
}

TEST_F(ChaosTest, DecisionsArePureAndDeterministic) {
  ChaosConfig cfg = enabled_config();
  cfg.task_throw_rate = 0.5;
  chaos().configure(cfg);
  const bool first = chaos().should_inject("site", "key", 0.5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(chaos().should_inject("site", "key", 0.5), first);
  }
  EXPECT_TRUE(chaos().should_inject("site", "key", 1.0));
  EXPECT_FALSE(chaos().should_inject("site", "key", 0.0));
}

TEST_F(ChaosTest, TaskThrowFiresOncePerSiteKey) {
  ChaosConfig cfg = enabled_config();
  cfg.task_throw_rate = 1.0;
  chaos().configure(cfg);
  EXPECT_THROW(chaos().maybe_throw("pool.task", "t1"), ChaosError);
  chaos().maybe_throw("pool.task", "t1");  // already fired: no throw
  EXPECT_THROW(chaos().maybe_throw("pool.task", "t2"), ChaosError);
}

TEST_F(ChaosTest, InjectedTaskFaultIsRecoveredByRetry) {
  ChaosConfig cfg = enabled_config();
  cfg.task_throw_rate = 1.0;
  chaos().configure(cfg);
  RetryPolicy p = RetryPolicy::for_tasks();
  p.sleep = false;
  int completions = 0;
  retry_call(p, "chaos.test", [&] {
    chaos().maybe_throw("sweep.point", "point-0");
    ++completions;
  });
  EXPECT_EQ(completions, 1);
}

TEST_F(ChaosTest, InjectedWriteFaultLeavesTargetIntact) {
  ChaosConfig cfg = enabled_config();
  cfg.io_fail_rate = 1.0;
  chaos().configure(cfg);

  const std::string path =
      (fs::temp_directory_path() / "cpsguard_chaos_io_test.txt").string();
  std::ofstream(path, std::ios::binary) << "original";

  EXPECT_THROW(obs::atomic_write_file(path, "replacement"), obs::IoError);
  EXPECT_EQ(slurp(path), "original");  // the atomic protocol's guarantee

  // The fault is once-per-path: the next attempt goes through, which is
  // what makes a single retry always sufficient.
  obs::atomic_write_file(path, "replacement");
  EXPECT_EQ(slurp(path), "replacement");
  fs::remove(path);
}

TEST_F(ChaosTest, InjectedWriteFaultIsRecoveredByRetry) {
  ChaosConfig cfg = enabled_config();
  cfg.io_fail_rate = 1.0;
  chaos().configure(cfg);

  const std::string path =
      (fs::temp_directory_path() / "cpsguard_chaos_retry_io.txt").string();
  RetryPolicy p = RetryPolicy::for_file_io();
  p.sleep = false;
  retry_call(p, "chaos.test.io",
             [&] { obs::atomic_write_file(path, "payload"); });
  EXPECT_EQ(slurp(path), "payload");
  fs::remove(path);
}

TEST_F(ChaosTest, CorruptFileDamagesOncePerKey) {
  ChaosConfig cfg = enabled_config();
  cfg.corrupt_rate = 1.0;
  chaos().configure(cfg);

  const std::string path =
      (fs::temp_directory_path() / "cpsguard_chaos_corrupt.bin").string();
  const std::string contents = "0123456789abcdef0123456789abcdef";
  std::ofstream(path, std::ios::binary) << contents;

  EXPECT_TRUE(chaos().maybe_corrupt_file(path, "rec-1"));
  EXPECT_NE(slurp(path), contents);

  // Same key: already fired, file stays as-is now.
  const std::string damaged = slurp(path);
  EXPECT_FALSE(chaos().maybe_corrupt_file(path, "rec-1"));
  EXPECT_EQ(slurp(path), damaged);
  fs::remove(path);
}

// Env parsing regression: rates went through std::atof, which honors
// LC_NUMERIC (comma-decimal locales parse "0.5" as 0 — silently disabling
// the faults a chaos run asked for) and accepts trailing garbage. Parsing
// is now strict; malformed values warn and keep the documented default.
class ChaosEnvTest : public ChaosTest {
 protected:
  void SetUp() override {
    ChaosTest::SetUp();
    for (const char* name : kVars) {
      const char* v = std::getenv(name);
      saved_env_.emplace_back(name, v ? std::optional<std::string>(v)
                                      : std::nullopt);
      ::unsetenv(name);
    }
  }
  void TearDown() override {
    for (const auto& [name, value] : saved_env_) {
      if (value) {
        ::setenv(name.c_str(), value->c_str(), 1);
      } else {
        ::unsetenv(name.c_str());
      }
    }
    ChaosTest::TearDown();
  }

  static constexpr const char* kVars[] = {
      "CPSGUARD_CHAOS", "CPSGUARD_CHAOS_SEED", "CPSGUARD_CHAOS_TASK_RATE",
      "CPSGUARD_CHAOS_IO_RATE", "CPSGUARD_CHAOS_CORRUPT_RATE"};

  std::vector<std::pair<std::string, std::optional<std::string>>> saved_env_;
};

TEST_F(ChaosEnvTest, DisabledWithoutFlag) {
  EXPECT_FALSE(ChaosInjector::config_from_env().enabled);
}

TEST_F(ChaosEnvTest, ParsesWellFormedKnobs) {
  ::setenv("CPSGUARD_CHAOS", "1", 1);
  ::setenv("CPSGUARD_CHAOS_SEED", "99", 1);
  ::setenv("CPSGUARD_CHAOS_TASK_RATE", "0.35", 1);
  const ChaosConfig cfg = ChaosInjector::config_from_env();
  EXPECT_TRUE(cfg.enabled);
  EXPECT_EQ(cfg.seed, 99u);
  EXPECT_DOUBLE_EQ(cfg.task_throw_rate, 0.35);
  EXPECT_DOUBLE_EQ(cfg.io_fail_rate, 0.2);  // untouched knob keeps default
}

TEST_F(ChaosEnvTest, MalformedKnobsKeepDefaultsNotZero) {
  ::setenv("CPSGUARD_CHAOS", "1", 1);
  ::setenv("CPSGUARD_CHAOS_SEED", "12x", 1);
  ::setenv("CPSGUARD_CHAOS_TASK_RATE", "0,5", 1);  // comma-locale spelling
  ::setenv("CPSGUARD_CHAOS_IO_RATE", "lots", 1);
  const ChaosConfig cfg = ChaosInjector::config_from_env();
  EXPECT_TRUE(cfg.enabled);
  EXPECT_EQ(cfg.seed, 1337u);
  EXPECT_DOUBLE_EQ(cfg.task_throw_rate, 0.2);
  EXPECT_DOUBLE_EQ(cfg.io_fail_rate, 0.2);
}

}  // namespace
}  // namespace cpsguard::util

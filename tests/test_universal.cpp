#include "attack/universal.h"

#include <gtest/gtest.h>

#include "eval/robustness.h"
#include "monitor/features.h"
#include "nn/classifier.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace cpsguard::attack {
namespace {

using monitor::Features;

nn::Tensor3 random_windows(int n, int t, util::Rng& rng) {
  nn::Tensor3 x(n, t, Features::kNumFeatures);
  for (float& v : x.data()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return x;
}

// Train a small model on a separable task so there is real structure for a
// universal perturbation to exploit.
std::unique_ptr<nn::Classifier> trained_model(const nn::Tensor3& x,
                                              const std::vector<int>& y) {
  util::Rng rng(3);
  auto clf = std::make_unique<nn::MlpClassifier>(
      x.time(), x.features(), std::vector<int>{16}, 2, rng);
  nn::Adam adam(0.01);
  const nn::SoftmaxCrossEntropy ce;
  for (int e = 0; e < 30; ++e) clf->train_batch(x, y, {}, ce, adam);
  return clf;
}

class UniversalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Rng xr(4);
    x_ = random_windows(200, 2, xr);
    y_.resize(200);
    for (int i = 0; i < 200; ++i) {
      y_[static_cast<std::size_t>(i)] =
          x_.at(i, 0, Features::kBg) + x_.at(i, 1, Features::kBg) > 0 ? 1 : 0;
    }
    clf_ = trained_model(x_, y_);
  }

  nn::Tensor3 x_;
  std::vector<int> y_;
  std::unique_ptr<nn::Classifier> clf_;
};

TEST_F(UniversalTest, DeltaRespectsBudgetAndShape) {
  UniversalConfig cfg;
  cfg.epsilon = 0.15;
  const nn::Tensor3 delta = craft_universal_perturbation(*clf_, x_, y_, cfg);
  EXPECT_EQ(delta.batch(), 1);
  EXPECT_EQ(delta.time(), x_.time());
  EXPECT_EQ(delta.features(), x_.features());
  EXPECT_LE(delta.max_abs(), cfg.epsilon + 1e-6);
}

TEST_F(UniversalTest, SingleDeltaFlipsManyPredictions) {
  UniversalConfig cfg;
  cfg.epsilon = 0.4;  // generous budget on a linear-ish task
  cfg.epochs = 8;
  const nn::Tensor3 delta = craft_universal_perturbation(*clf_, x_, y_, cfg);
  const auto clean = nn::predict_classes(*clf_, x_);
  const auto adv =
      nn::predict_classes(*clf_, apply_universal_perturbation(x_, delta));
  const double err = eval::robustness_error(clean, adv);
  EXPECT_GT(err, 0.15) << "one shared delta should flip a sizable fraction";
}

TEST_F(UniversalTest, TransfersToUnseenWindows) {
  UniversalConfig cfg;
  cfg.epsilon = 0.4;
  cfg.epochs = 8;
  const nn::Tensor3 delta = craft_universal_perturbation(*clf_, x_, y_, cfg);
  util::Rng xr(9);
  const nn::Tensor3 unseen = random_windows(100, 2, xr);
  const auto clean = nn::predict_classes(*clf_, unseen);
  const auto adv =
      nn::predict_classes(*clf_, apply_universal_perturbation(unseen, delta));
  EXPECT_GT(eval::robustness_error(clean, adv), 0.1)
      << "universal perturbations must be input-agnostic";
}

TEST_F(UniversalTest, MaskZerosCommandCoordinates) {
  UniversalConfig cfg;
  cfg.epsilon = 0.2;
  cfg.mask = FeatureMask::kSensorsOnly;
  const nn::Tensor3 delta = craft_universal_perturbation(*clf_, x_, y_, cfg);
  for (int t = 0; t < delta.time(); ++t) {
    for (int f = 0; f < delta.features(); ++f) {
      if (Features::is_command_feature(f)) {
        EXPECT_FLOAT_EQ(delta.at(0, t, f), 0.0f);
      }
    }
  }
}

TEST_F(UniversalTest, ApplyAddsDeltaEverywhere) {
  nn::Tensor3 delta(1, x_.time(), x_.features());
  delta.fill(0.5f);
  const nn::Tensor3 shifted = apply_universal_perturbation(x_, delta);
  for (int b = 0; b < 5; ++b) {
    for (int t = 0; t < x_.time(); ++t) {
      EXPECT_FLOAT_EQ(shifted.at(b, t, 0), x_.at(b, t, 0) + 0.5f);
    }
  }
}

TEST_F(UniversalTest, ApplyRejectsShapeMismatch) {
  nn::Tensor3 wrong(1, x_.time() + 1, x_.features());
  EXPECT_THROW(apply_universal_perturbation(x_, wrong),
               cpsguard::ContractViolation);
}

TEST_F(UniversalTest, RejectsBadConfig) {
  UniversalConfig cfg;
  cfg.epochs = 0;
  EXPECT_THROW(craft_universal_perturbation(*clf_, x_, y_, cfg),
               cpsguard::ContractViolation);
}

}  // namespace
}  // namespace cpsguard::attack

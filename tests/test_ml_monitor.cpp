#include "monitor/ml_monitor.h"

#include "eval/batch_eval.h"
#include "monitor/features.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "sim/closed_loop.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace cpsguard::monitor {
namespace {

Dataset small_dataset(std::uint64_t seed, int traces = 6, int steps = 60) {
  std::vector<sim::Trace> ts;
  auto patient = sim::make_patient(sim::Testbed::kGlucosymOpenAps);
  auto controller = sim::make_controller(sim::Testbed::kGlucosymOpenAps);
  const auto profiles = sim::testbed_profiles(sim::Testbed::kGlucosymOpenAps, 2, 5);
  util::Rng rng(seed);
  for (int i = 0; i < traces; ++i) {
    sim::SimConfig cfg;
    cfg.steps = steps;
    cfg.inject_fault = (i % 2 == 0);
    ts.push_back(run_closed_loop(*patient, *controller,
                                 profiles[static_cast<std::size_t>(i % 2)], cfg, rng));
  }
  return build_dataset(ts, DatasetConfig{});
}

MonitorConfig fast_config(Arch arch, bool semantic) {
  MonitorConfig cfg;
  cfg.arch = arch;
  cfg.semantic = semantic;
  cfg.hidden = {16, 8};  // small for test speed
  cfg.epochs = 3;
  return cfg;
}

TEST(MonitorConfig, DisplayNamesMatchTableIII) {
  EXPECT_EQ(fast_config(Arch::kMlp, false).display_name(), "MLP");
  EXPECT_EQ(fast_config(Arch::kLstm, false).display_name(), "LSTM");
  EXPECT_EQ(fast_config(Arch::kMlp, true).display_name(), "MLP-Custom");
  EXPECT_EQ(fast_config(Arch::kLstm, true).display_name(), "LSTM-Custom");
}

TEST(MonitorConfig, PaperDefaultHiddenSizes) {
  MonitorConfig mlp;
  mlp.arch = Arch::kMlp;
  EXPECT_EQ(mlp.effective_hidden(), (std::vector<int>{256, 128}));
  MonitorConfig lstm;
  lstm.arch = Arch::kLstm;
  EXPECT_EQ(lstm.effective_hidden(), (std::vector<int>{128, 64}));
  MonitorConfig custom;
  custom.hidden = {32};
  EXPECT_EQ(custom.effective_hidden(), (std::vector<int>{32}));
}

TEST(MlMonitor, TrainingReducesLossAndEnablesPrediction) {
  const Dataset ds = small_dataset(1);
  MlMonitor mon(fast_config(Arch::kMlp, false));
  EXPECT_FALSE(mon.trained());
  const TrainReport report = mon.train(ds);
  EXPECT_TRUE(mon.trained());
  ASSERT_EQ(report.epoch_loss.size(), 3u);
  EXPECT_LT(report.epoch_loss.back(), report.epoch_loss.front());
  const auto preds = mon.predict(ds.x);
  ASSERT_EQ(preds.size(), static_cast<std::size_t>(ds.size()));
  for (int p : preds) EXPECT_TRUE(p == 0 || p == 1);
}

TEST(MlMonitor, SemanticVariantTrains) {
  const Dataset ds = small_dataset(2);
  MlMonitor mon(fast_config(Arch::kLstm, true));
  const TrainReport report = mon.train(ds);
  EXPECT_FALSE(report.epoch_loss.empty());
  EXPECT_TRUE(mon.trained());
}

TEST(MlMonitor, PredictProbaRowsSumToOne) {
  const Dataset ds = small_dataset(3);
  MlMonitor mon(fast_config(Arch::kMlp, false));
  mon.train(ds);
  const nn::Matrix p = mon.predict_proba(ds.x);
  for (int r = 0; r < p.rows(); ++r) {
    EXPECT_NEAR(p.at(r, 0) + p.at(r, 1), 1.0f, 1e-5);
  }
}

TEST(MlMonitor, ScaledAndRawPredictionsAgree) {
  const Dataset ds = small_dataset(4);
  MlMonitor mon(fast_config(Arch::kMlp, false));
  mon.train(ds);
  const auto raw = mon.predict(ds.x);
  const auto scaled = mon.predict_scaled(mon.scaler().transform(ds.x));
  EXPECT_EQ(raw, scaled);
}

TEST(MlMonitor, SaveLoadRoundtripPreservesPredictions) {
  const Dataset ds = small_dataset(5);
  MlMonitor a(fast_config(Arch::kLstm, false));
  a.train(ds);
  const std::string path =
      (std::filesystem::temp_directory_path() / "cpsguard_monitor_test.bin").string();
  a.save(path);

  MlMonitor b(fast_config(Arch::kLstm, false));
  b.load(path, ds.config.window, Features::kNumFeatures);
  EXPECT_TRUE(b.trained());
  EXPECT_EQ(a.predict(ds.x), b.predict(ds.x));
  std::remove(path.c_str());
}

TEST(MlMonitor, UntrainedOperationsThrow) {
  MlMonitor mon(fast_config(Arch::kMlp, false));
  nn::Tensor3 x(1, 6, Features::kNumFeatures);
  EXPECT_THROW(mon.predict(x), cpsguard::ContractViolation);
  EXPECT_THROW((void)mon.classifier(), cpsguard::ContractViolation);
  EXPECT_THROW((void)mon.scaler(), cpsguard::ContractViolation);
  EXPECT_THROW(mon.save("/tmp/x.bin"), cpsguard::ContractViolation);
}

TEST(MlMonitor, DeterministicGivenSeed) {
  const Dataset ds = small_dataset(6);
  MlMonitor a(fast_config(Arch::kMlp, false));
  MlMonitor b(fast_config(Arch::kMlp, false));
  a.train(ds);
  b.train(ds);
  EXPECT_EQ(a.predict(ds.x), b.predict(ds.x));
}

TEST(MlMonitor, SeedChangesModel) {
  const Dataset ds = small_dataset(7);
  MonitorConfig c1 = fast_config(Arch::kMlp, false);
  MonitorConfig c2 = c1;
  c2.seed = c1.seed + 1;
  MlMonitor a(c1), b(c2);
  a.train(ds);
  b.train(ds);
  // Different seeds → different weights; probabilistically different preds.
  const auto pa = a.predict_proba(ds.x);
  const auto pb = b.predict_proba(ds.x);
  double diff = 0.0;
  for (int r = 0; r < pa.rows(); ++r) diff += std::abs(pa.at(r, 1) - pb.at(r, 1));
  EXPECT_GT(diff, 1e-3);
}

TEST(MlMonitor, CloneIsBitIdenticalAndIndependent) {
  const Dataset ds = small_dataset(8);
  MlMonitor mon(fast_config(Arch::kMlp, false));
  mon.train(ds);
  const auto copy = mon.clone();
  ASSERT_TRUE(copy->trained());
  EXPECT_TRUE(mon.predict_proba(ds.x) == copy->predict_proba(ds.x));
  EXPECT_EQ(mon.predict(ds.x), copy->predict(ds.x));
  // Independent object: the clone survives the original.
  EXPECT_NE(&mon.classifier(), &copy->classifier());
}

TEST(BatchEval, ChunkedPredictProbaMatchesSingleCall) {
  const Dataset ds = small_dataset(9);
  MlMonitor mon(fast_config(Arch::kMlp, false));
  mon.train(ds);
  const nn::Matrix whole = mon.predict_proba(ds.x);
  // Tiny chunk forces many shards (when the pool has >1 worker); either way
  // the stitched result must be bit-identical to the one-shot call.
  const nn::Matrix chunked = eval::batched_predict_proba(mon, ds.x, 8);
  EXPECT_TRUE(whole == chunked);
  EXPECT_EQ(eval::batched_predict(mon, ds.x, 8), mon.predict(ds.x));
}

TEST(MlMonitor, RejectsBadConfig) {
  MonitorConfig bad;
  bad.epochs = 0;
  EXPECT_THROW(MlMonitor{bad}, cpsguard::ContractViolation);
  MonitorConfig bad_lr;
  bad_lr.learning_rate = 0.0;
  EXPECT_THROW(MlMonitor{bad_lr}, cpsguard::ContractViolation);
}

TEST(MlMonitor, TrainOnEmptyDatasetThrows) {
  Dataset empty;
  MlMonitor mon(fast_config(Arch::kMlp, false));
  EXPECT_THROW(mon.train(empty), cpsguard::ContractViolation);
}

}  // namespace
}  // namespace cpsguard::monitor

// Cross-module property tests: parameterized sweeps over attack budgets,
// noise levels, patient profiles, and randomly generated STL formulas.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "attack/fgsm.h"
#include "attack/gaussian.h"
#include "attack/pgd.h"
#include "monitor/features.h"
#include "nn/classifier.h"
#include "safety/stl.h"
#include "sim/closed_loop.h"
#include "util/rng.h"
#include "util/stats.h"

namespace cpsguard {
namespace {

using monitor::Features;

nn::Tensor3 random_windows(int n, int t, util::Rng& rng) {
  nn::Tensor3 x(n, t, Features::kNumFeatures);
  for (float& v : x.data()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return x;
}

// ---------- attack budget sweep -------------------------------------------

class EpsilonSweep : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Budgets, EpsilonSweep,
                         ::testing::Values(0.01, 0.05, 0.1, 0.2, 0.5));

TEST_P(EpsilonSweep, FgsmSaturatesItsBudgetExactly) {
  const double eps = GetParam();
  util::Rng rng(1);
  nn::MlpClassifier clf(3, Features::kNumFeatures, {12}, 2, rng);
  util::Rng xr(2);
  const nn::Tensor3 x = random_windows(10, 3, xr);
  const std::vector<int> labels(10, 1);
  attack::FgsmConfig cfg;
  cfg.epsilon = eps;
  const nn::Tensor3 adv = attack::fgsm_attack(clf, x, labels, cfg);
  const double dist = attack::linf_distance(adv, x);
  EXPECT_LE(dist, eps + 1e-4);
  EXPECT_NEAR(dist, eps, eps * 0.05 + 1e-5) << "sign step should be saturated";
}

TEST_P(EpsilonSweep, PgdStaysInsideBallForAnyIterationCount) {
  const double eps = GetParam();
  util::Rng rng(3);
  nn::MlpClassifier clf(2, Features::kNumFeatures, {8}, 2, rng);
  util::Rng xr(4);
  const nn::Tensor3 x = random_windows(8, 2, xr);
  const std::vector<int> labels(8, 0);
  for (const int iters : {1, 4, 16}) {
    attack::PgdConfig cfg;
    cfg.epsilon = eps;
    cfg.step_size = eps;  // deliberately aggressive: projection must hold
    cfg.iterations = iters;
    const nn::Tensor3 adv = attack::pgd_attack(clf, x, labels, cfg);
    EXPECT_LE(attack::linf_distance(adv, x), eps + 1e-4) << "iters=" << iters;
  }
}

// ---------- noise scaling sweep --------------------------------------------

class SigmaSweep : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Sigmas, SigmaSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 1.0));

TEST_P(SigmaSweep, NoiseMagnitudeTracksSigma) {
  const double sigma = GetParam();
  util::Rng data_rng(5);
  nn::Tensor3 x(300, 2, Features::kNumFeatures);
  for (int b = 0; b < 300; ++b) {
    for (int t = 0; t < 2; ++t) {
      for (int f = 0; f < Features::kNumFeatures; ++f) {
        x.at(b, t, f) = static_cast<float>(data_rng.gaussian(0.0, 2.0));
      }
    }
  }
  monitor::StandardScaler scaler;
  scaler.fit(x);
  attack::GaussianNoiseConfig cfg;
  cfg.sigma_factor = sigma;
  util::Rng rng(6);
  const nn::Tensor3 noisy = attack::add_gaussian_noise(x, scaler, cfg, rng);
  util::RunningStats s;
  for (int b = 0; b < x.batch(); ++b) {
    for (int t = 0; t < x.time(); ++t) {
      s.add(noisy.at(b, t, Features::kBg) - x.at(b, t, Features::kBg));
    }
  }
  EXPECT_NEAR(s.stddev(), sigma * scaler.std_of(Features::kBg),
              0.12 * sigma * scaler.std_of(Features::kBg));
}

// ---------- all patient profiles settle ------------------------------------

class ProfileSweep
    : public ::testing::TestWithParam<std::tuple<sim::Testbed, int>> {};

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, ProfileSweep,
    ::testing::Combine(::testing::Values(sim::Testbed::kGlucosymOpenAps,
                                         sim::Testbed::kT1dBasalBolus),
                       ::testing::Range(0, 20)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == sim::Testbed::kGlucosymOpenAps
                             ? "Glucosym"
                             : "T1DS2013") +
             "_p" + std::to_string(std::get<1>(info.param));
    });

TEST_P(ProfileSweep, EveryProfileHoldsSteadyAtRecommendedBasal) {
  const auto [tb, pid] = GetParam();
  const auto profiles = sim::testbed_profiles(tb, 20, 42);
  auto patient = sim::make_patient(tb);
  util::Rng rng(static_cast<std::uint64_t>(pid) + 100);
  patient->reset(profiles[static_cast<std::size_t>(pid)], rng);
  const double basal = patient->recommended_basal_u_per_h();
  ASSERT_GT(basal, 0.0);
  const double start = patient->bg();
  for (int i = 0; i < 24; ++i) patient->step(basal, 0.0, 5.0);  // 2 h
  EXPECT_TRUE(std::isfinite(patient->bg()));
  EXPECT_NEAR(patient->bg(), start, 30.0) << "profile " << pid;
  const auto cal = patient->effective_profile();
  EXPECT_GE(cal.isf_mg_dl_per_u, 5.0);
  EXPECT_LE(cal.carb_ratio_g_per_u, 150.0);
}

// ---------- random STL formulas --------------------------------------------

safety::StlFormula::Ptr random_formula(util::Rng& rng, int depth) {
  using F = safety::StlFormula;
  const auto signal = std::string("s") + std::to_string(rng.uniform_int(0, 2));
  if (depth == 0 || rng.bernoulli(0.3)) {
    const auto cmp = static_cast<safety::Cmp>(rng.uniform_int(0, 3));  // skip EqApprox
    return F::atom(signal, cmp, rng.uniform(-1.0, 1.0));
  }
  switch (rng.uniform_int(0, 4)) {
    case 0: return F::negate(random_formula(rng, depth - 1));
    case 1:
      return F::conj(random_formula(rng, depth - 1), random_formula(rng, depth - 1));
    case 2:
      return F::disj(random_formula(rng, depth - 1), random_formula(rng, depth - 1));
    case 3: {
      const int a = rng.uniform_int(0, 2);
      return F::always(random_formula(rng, depth - 1), a, a + rng.uniform_int(0, 3));
    }
    default: {
      const int a = rng.uniform_int(0, 2);
      return F::eventually(random_formula(rng, depth - 1), a,
                           a + rng.uniform_int(0, 3));
    }
  }
}

TEST(StlProperty, RobustnessSignAgreesWithBooleanSemantics) {
  util::Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    safety::SignalTrace st;
    for (int s = 0; s < 3; ++s) {
      std::vector<double> values(8);
      for (double& v : values) v = rng.uniform(-1.5, 1.5);
      st.add_signal("s" + std::to_string(s), std::move(values));
    }
    const auto f = random_formula(rng, 3);
    for (int t = 0; t < st.length(); ++t) {
      const double rob = f->robustness(st, t);
      if (rob > 1e-9) {
        EXPECT_TRUE(f->eval(st, t)) << f->to_string() << " @ " << t;
      } else if (rob < -1e-9) {
        EXPECT_FALSE(f->eval(st, t)) << f->to_string() << " @ " << t;
      }
    }
  }
}

TEST(StlProperty, NegationFlipsRobustnessSign) {
  util::Rng rng(8);
  for (int trial = 0; trial < 100; ++trial) {
    safety::SignalTrace st;
    std::vector<double> values(5);
    for (double& v : values) v = rng.uniform(-1.0, 1.0);
    st.add_signal("s0", values);
    st.add_signal("s1", values);
    st.add_signal("s2", values);
    const auto f = random_formula(rng, 2);
    const auto g = safety::StlFormula::negate(f);
    for (int t = 0; t < st.length(); ++t) {
      EXPECT_DOUBLE_EQ(g->robustness(st, t), -f->robustness(st, t));
    }
  }
}

}  // namespace
}  // namespace cpsguard

#include "eval/pr_curve.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/contracts.h"

namespace cpsguard::eval {
namespace {

TEST(PrCurve, PerfectClassifier) {
  const std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  const std::vector<int> labels = {1, 1, 0, 0};
  const auto curve = precision_recall_curve(scores, labels);
  // At the highest thresholds, precision 1; recall reaches 1 at the end.
  EXPECT_DOUBLE_EQ(curve.front().precision, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().recall, 1.0);
  EXPECT_DOUBLE_EQ(average_precision(scores, labels), 1.0);
}

TEST(PrCurve, RecallIsMonotone) {
  const std::vector<double> scores = {0.1, 0.9, 0.5, 0.3, 0.7, 0.2};
  const std::vector<int> labels = {0, 1, 1, 0, 0, 1};
  const auto curve = precision_recall_curve(scores, labels);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].recall, curve[i - 1].recall);
    EXPECT_LT(curve[i].threshold, curve[i - 1].threshold);
  }
}

TEST(PrCurve, TiedScoresCollapseToOnePoint) {
  const std::vector<double> scores = {0.5, 0.5, 0.5};
  const std::vector<int> labels = {1, 0, 1};
  const auto curve = precision_recall_curve(scores, labels);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_NEAR(curve[0].precision, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(curve[0].recall, 1.0);
}

TEST(PrCurve, HandComputedAp) {
  // Descending scores: labels 1, 0, 1.
  // After 1st: P=1, R=0.5 → AP += 0.5*1.
  // After 2nd: P=0.5, R=0.5 → no recall gain.
  // After 3rd: P=2/3, R=1 → AP += 0.5*(2/3).
  const std::vector<double> scores = {0.9, 0.6, 0.3};
  const std::vector<int> labels = {1, 0, 1};
  EXPECT_NEAR(average_precision(scores, labels), 0.5 + 0.5 * 2.0 / 3.0, 1e-12);
}

TEST(PrCurve, AllNegativeLabels) {
  const std::vector<double> scores = {0.9, 0.1};
  const std::vector<int> labels = {0, 0};
  EXPECT_DOUBLE_EQ(average_precision(scores, labels), 0.0);
}

TEST(PrCurve, BestF1ThresholdSeparates) {
  const std::vector<double> scores = {0.9, 0.8, 0.7, 0.3, 0.2, 0.1};
  const std::vector<int> labels = {1, 1, 1, 0, 0, 0};
  const double t = best_f1_threshold(scores, labels);
  // Any threshold in (0.3, 0.7] classifies perfectly; the curve reports 0.7.
  EXPECT_GT(t, 0.3);
  EXPECT_LE(t, 0.7);
}

TEST(PrCurve, RejectsBadInput) {
  const std::vector<double> s = {0.5};
  const std::vector<int> two = {1, 0};
  EXPECT_THROW(precision_recall_curve(s, two), cpsguard::ContractViolation);
  EXPECT_THROW(precision_recall_curve({}, {}), cpsguard::ContractViolation);
}

// Regression (fuzz oracle "pr_curve"): a NaN score used to flow into
// std::sort's comparator, violating strict weak ordering — UB that shuffled
// the ranking arbitrarily. Policy (see pr_curve.h): NaN is rejected, ±inf
// is an ordinary totally-ordered score.
TEST(PrCurve, NanScoreIsRejectedNotSorted) {
  const std::vector<double> scores = {0.9, std::nan(""), 0.1};
  const std::vector<int> labels = {1, 0, 0};
  EXPECT_THROW(precision_recall_curve(scores, labels),
               cpsguard::ContractViolation);
  EXPECT_THROW(average_precision(scores, labels), cpsguard::ContractViolation);
  EXPECT_THROW(best_f1_threshold(scores, labels), cpsguard::ContractViolation);
}

TEST(PrCurve, InfiniteScoresAreLegitimateRanks) {
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> scores = {inf, 0.5, -inf};
  const std::vector<int> labels = {1, 1, 0};
  const auto curve = precision_recall_curve(scores, labels);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_EQ(curve.front().threshold, inf);
  EXPECT_EQ(curve.back().threshold, -inf);
  EXPECT_DOUBLE_EQ(curve.back().recall, 1.0);
  EXPECT_DOUBLE_EQ(average_precision(scores, labels), 1.0);
}

}  // namespace
}  // namespace cpsguard::eval

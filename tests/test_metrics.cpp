#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "eval/robustness.h"
#include "util/contracts.h"

namespace cpsguard::eval {
namespace {

// Build a single-trace dataset skeleton: windows end at steps w-1..n-1.
monitor::Dataset skeleton(const std::vector<int>& step_labels, int window = 1) {
  monitor::Dataset ds;
  ds.config.window = window;
  ds.trace_labels.push_back(step_labels);
  const int n = static_cast<int>(step_labels.size());
  const int count = n - window + 1;
  ds.x = nn::Tensor3(count, window, 1);
  for (int end = window - 1; end < n; ++end) {
    ds.labels.push_back(step_labels[static_cast<std::size_t>(end)]);
    ds.semantic.push_back(0.0f);
    ds.trace_id.push_back(0);
    ds.step_index.push_back(end);
  }
  return ds;
}

TEST(ConfusionCounts, DerivedMetrics) {
  ConfusionCounts c;
  c.tp = 8;
  c.fp = 2;
  c.tn = 85;
  c.fn = 5;
  EXPECT_DOUBLE_EQ(c.total(), 100.0);
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.93);
  EXPECT_DOUBLE_EQ(c.precision(), 0.8);
  EXPECT_NEAR(c.recall(), 8.0 / 13.0, 1e-12);
  const double p = 0.8, r = 8.0 / 13.0;
  EXPECT_NEAR(c.f1(), 2 * p * r / (p + r), 1e-12);
}

TEST(ConfusionCounts, DegenerateCasesAreZeroNotNan) {
  ConfusionCounts c;
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(c.precision(), 0.0);
  EXPECT_DOUBLE_EQ(c.recall(), 0.0);
  EXPECT_DOUBLE_EQ(c.f1(), 0.0);
}

TEST(ConfusionCounts, Accumulate) {
  ConfusionCounts a, b;
  a.tp = 1;
  a.fp = 2;
  b.tn = 3;
  b.fn = 4;
  a += b;
  EXPECT_EQ(a.tp, 1);
  EXPECT_EQ(a.fp, 2);
  EXPECT_EQ(a.tn, 3);
  EXPECT_EQ(a.fn, 4);
  EXPECT_NE(a.summary().find("tp=1"), std::string::npos);
}

TEST(Samplewise, BasicCounts) {
  const std::vector<int> labels = {1, 1, 0, 0, 1};
  const std::vector<int> preds = {1, 0, 0, 1, 1};
  const auto c = evaluate_samplewise(labels, preds);
  EXPECT_EQ(c.tp, 2);
  EXPECT_EQ(c.fn, 1);
  EXPECT_EQ(c.fp, 1);
  EXPECT_EQ(c.tn, 1);
}

TEST(Samplewise, SizeMismatchThrows) {
  const std::vector<int> a = {1};
  const std::vector<int> b = {1, 0};
  EXPECT_THROW(evaluate_samplewise(a, b), cpsguard::ContractViolation);
}

TEST(Tolerance, ZeroDeltaEqualsSamplewise) {
  const auto ds = skeleton({0, 1, 0, 1, 1, 0});
  const std::vector<int> preds = {0, 1, 1, 0, 1, 0};
  const auto tol = evaluate_with_tolerance(ds, preds, 0);
  const auto plain = evaluate_samplewise(ds.labels, preds);
  EXPECT_EQ(tol.tp, plain.tp);
  EXPECT_EQ(tol.fp, plain.fp);
  EXPECT_EQ(tol.tn, plain.tn);
  EXPECT_EQ(tol.fn, plain.fn);
}

TEST(Tolerance, EarlyAlarmWithinDeltaCountsAsTp) {
  // Hazard labels start at step 4; the only alarm is at step 2 (2 early).
  const auto ds = skeleton({0, 0, 0, 0, 1, 1});
  const std::vector<int> preds = {0, 0, 1, 0, 0, 0};
  // With δ=2: step 2 sees future GT at 4 → TP (alarm at 2).
  const auto c = evaluate_with_tolerance(ds, preds, 2);
  EXPECT_GE(c.tp, 1);
  // The alarm at step 2 is never counted as FP.
  EXPECT_EQ(c.fp, 0);
}

TEST(Tolerance, LateAlarmOutsideDeltaIsMissed) {
  const auto ds = skeleton({1, 1, 0, 0, 0, 0});
  const std::vector<int> preds = {0, 0, 0, 0, 1, 0};
  const auto c = evaluate_with_tolerance(ds, preds, 1);
  EXPECT_EQ(c.tp, 0);
  EXPECT_EQ(c.fn, 2);   // both positive steps missed
  EXPECT_GE(c.fp, 1);   // the spurious alarm at step 4
}

TEST(Tolerance, FalseAlarmFarFromHazardIsFp) {
  const auto ds = skeleton({0, 0, 0, 0, 0, 0});
  const std::vector<int> preds = {0, 1, 0, 0, 0, 0};
  const auto c = evaluate_with_tolerance(ds, preds, 2);
  EXPECT_EQ(c.fp, 1);
  EXPECT_EQ(c.tn, 5);
  EXPECT_EQ(c.tp, 0);
  EXPECT_EQ(c.fn, 0);
}

TEST(Tolerance, AlarmJustBeforeHazardWindowIsForgiven) {
  // GT positive at steps 3.. ; prediction at step 1 with δ=2: at step 1 the
  // forward window [1,3] sees the hazard → counts toward TP, not FP.
  const auto ds = skeleton({0, 0, 0, 1, 1, 1});
  const std::vector<int> preds = {0, 1, 0, 0, 0, 0};
  const auto c = evaluate_with_tolerance(ds, preds, 2);
  EXPECT_EQ(c.fp, 0);
}

TEST(Tolerance, PerfectPredictionsPerfectScore) {
  const std::vector<int> labels = {0, 0, 1, 1, 0, 0, 1};
  const auto ds = skeleton(labels);
  const auto c = evaluate_with_tolerance(ds, labels, 3);
  EXPECT_EQ(c.fn, 0);
  EXPECT_EQ(c.fp, 0);
  EXPECT_DOUBLE_EQ(c.f1(), 1.0);
  EXPECT_DOUBLE_EQ(c.accuracy(), 1.0);
}

TEST(Tolerance, WindowedDatasetAlignsSteps) {
  // window=3: windows end at steps 2..5; predictions only exist there.
  const auto ds = skeleton({0, 0, 0, 0, 1, 1}, 3);
  ASSERT_EQ(ds.size(), 4);
  const std::vector<int> preds = {1, 0, 0, 0};  // alarm at step 2
  const auto c = evaluate_with_tolerance(ds, preds, 2);
  // Step 2's forward window [2,4] includes the hazard at 4 → TP.
  EXPECT_GE(c.tp, 1);
  EXPECT_EQ(c.fp, 0);
}

TEST(Tolerance, MultipleTracesKeptSeparate) {
  // Two traces; hazard only in the second. An alarm at the end of trace 0
  // must not be credited against trace 1's hazard.
  monitor::Dataset ds;
  ds.config.window = 1;
  ds.trace_labels.push_back({0, 0, 0});
  ds.trace_labels.push_back({0, 1, 1});
  ds.x = nn::Tensor3(6, 1, 1);
  for (int tr = 0; tr < 2; ++tr) {
    for (int t = 0; t < 3; ++t) {
      ds.labels.push_back(ds.trace_labels[static_cast<std::size_t>(tr)][static_cast<std::size_t>(t)]);
      ds.semantic.push_back(0.0f);
      ds.trace_id.push_back(tr);
      ds.step_index.push_back(t);
    }
  }
  const std::vector<int> preds = {0, 0, 1, 0, 0, 0};  // alarm at end of trace 0
  const auto c = evaluate_with_tolerance(ds, preds, 2);
  EXPECT_EQ(c.fp, 1);  // trace boundary respected
  EXPECT_EQ(c.tp, 0);
  // All three steps of trace 1 see the hazard within δ=2 and no alarm fires.
  EXPECT_EQ(c.fn, 3);
}

TEST(Tolerance, RejectsBadArguments) {
  const auto ds = skeleton({0, 1});
  const std::vector<int> wrong_size = {1};
  EXPECT_THROW(evaluate_with_tolerance(ds, wrong_size, 1),
               cpsguard::ContractViolation);
  const std::vector<int> ok = {0, 1};
  EXPECT_THROW(evaluate_with_tolerance(ds, ok, -1), cpsguard::ContractViolation);
}

TEST(RobustnessError, CountsFlips) {
  const std::vector<int> clean = {0, 1, 0, 1};
  const std::vector<int> pert = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(robustness_error(clean, pert), 0.5);
}

TEST(RobustnessError, IdenticalPredictionsZero) {
  const std::vector<int> p = {1, 0, 1};
  EXPECT_DOUBLE_EQ(robustness_error(p, p), 0.0);
}

TEST(RobustnessError, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(robustness_error({}, {}), 0.0);
}

TEST(RobustnessError, PerClassVariant) {
  const std::vector<int> clean = {1, 1, 1, 0};
  const std::vector<int> pert = {0, 1, 0, 0};
  EXPECT_NEAR(robustness_error_for_class(clean, pert, 1), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(robustness_error_for_class(clean, pert, 0), 0.0);
  // No samples of class 2 → 0, not NaN.
  EXPECT_DOUBLE_EQ(robustness_error_for_class(clean, pert, 2), 0.0);
}

TEST(RobustnessError, SizeMismatchThrows) {
  const std::vector<int> a = {1};
  const std::vector<int> b = {1, 0};
  EXPECT_THROW(robustness_error(a, b), cpsguard::ContractViolation);
}

}  // namespace
}  // namespace cpsguard::eval

// Tests for the observability subsystem: metric types, the process-wide
// registry under concurrency, spans, SHA-256, NDJSON events, and manifests.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/events.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/sha256.h"
#include "obs/span.h"

namespace cpsguard::obs {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

TEST(Counter, IncrementAndAdd) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.increment();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(Histogram, ExactCountSumMinMax) {
  Histogram h;
  for (const double v : {1.0, 2.0, 4.0, 8.0}) h.record(v);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 15.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 8.0);
}

TEST(Histogram, QuantilesWithinBucketResolution) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  // Log-bucketed: ~9% relative resolution per sub-bucket.
  EXPECT_NEAR(h.quantile(0.5), 500.0, 500.0 * 0.10);
  EXPECT_NEAR(h.quantile(0.9), 900.0, 900.0 * 0.10);
  EXPECT_NEAR(h.quantile(0.99), 990.0, 990.0 * 0.10);
}

TEST(Histogram, IgnoresNanKeepsZeroAndNegative) {
  Histogram h;
  h.record(std::nan(""));
  EXPECT_EQ(h.count(), 0u);
  h.record(0.0);
  h.record(-3.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.snapshot().min, -3.0);
}

TEST(Registry, SameNameSameInstance) {
  auto& reg = Registry::instance();
  Counter& a = reg.counter("test.registry.same");
  Counter& b = reg.counter("test.registry.same");
  EXPECT_EQ(&a, &b);
  Histogram& ha = reg.histogram("test.registry.hist");
  Histogram& hb = reg.histogram("test.registry.hist");
  EXPECT_EQ(&ha, &hb);
}

// The satellite concurrency test: N threads hammering counters, gauges,
// histograms, and spans through the shared registry must yield exact totals.
// This is also the TSan target for the thread-sanitizer CI job.
TEST(Registry, ConcurrentHammerYieldsExactTotals) {
  auto& reg = Registry::instance();
  Counter& c = reg.counter("test.hammer.counter");
  Gauge& g = reg.gauge("test.hammer.gauge");
  Histogram& h = reg.histogram("test.hammer.hist");
  c.reset();
  g.set(0.0);
  h.reset();

  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::atomic<int> barrier{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      barrier.fetch_add(1);
      while (barrier.load() < kThreads) {}
      for (int i = 0; i < kIters; ++i) {
        c.increment();
        g.add(1.0);
        h.record(static_cast<double>((t * kIters + i) % 100 + 1));
        // Registry lookup from many threads at once must also be safe.
        if (i % 1000 == 0) reg.counter("test.hammer.counter").add(0);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads) * kIters);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(ScopedSpan, RecordsIntoNamedHistogram) {
  auto& reg = Registry::instance();
  Histogram& h = reg.histogram("span.test.span");
  h.reset();
  {
    const ScopedSpan span("test.span");
    EXPECT_GE(span.elapsed_seconds(), 0.0);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.snapshot().min, 0.0);
}

TEST(Sha256, Fips180TestVectors) {
  EXPECT_EQ(sha256_hex(std::string{}),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(sha256_hex(std::string{"abc"}),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      sha256_hex(std::string{
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"}),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, FileHashMatchesStringHash) {
  const fs::path p = fs::temp_directory_path() / "cpsguard_sha_test.bin";
  {
    std::ofstream out(p, std::ios::binary);
    out << "abc";
  }
  EXPECT_EQ(sha256_file_hex(p.string()), sha256_hex(std::string{"abc"}));
  fs::remove(p);
  EXPECT_THROW((void)sha256_file_hex(p.string()), std::runtime_error);
}

TEST(Events, DisabledMacroDoesNotEvaluateArguments) {
  disable_events();
  int evaluations = 0;
  const auto expensive = [&] {
    ++evaluations;
    return 1.0;
  };
  CPSGUARD_OBS_EVENT("test.lazy", f("x", expensive()));
  EXPECT_EQ(evaluations, 0);
}

TEST(Events, NdjsonSinkWritesOneObjectPerLine) {
  const fs::path p = fs::temp_directory_path() / "cpsguard_events_test.ndjson";
  fs::remove(p);
  ASSERT_NO_THROW(enable_events(p.string()));
  CPSGUARD_OBS_EVENT("test.event", f("s", "a\"b"), f("d", 1.5), f("i", 7),
                     f("b", true));
  CPSGUARD_OBS_EVENT("test.event2");
  disable_events();
  CPSGUARD_OBS_EVENT("test.after_disable");

  std::ifstream in(p);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"ev\":\"test.event\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"s\":\"a\\\"b\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"d\":1.5"), std::string::npos);
  EXPECT_NE(lines[0].find("\"i\":7"), std::string::npos);
  EXPECT_NE(lines[0].find("\"b\":true"), std::string::npos);
  EXPECT_NE(lines[0].find("\"ts_ns\":"), std::string::npos);
  EXPECT_NE(lines[1].find("\"ev\":\"test.event2\""), std::string::npos);
  fs::remove(p);
}

TEST(Manifest, RecordsOutputsParamsAndBuildInfo) {
  const fs::path dir = fs::temp_directory_path() / "cpsguard_manifest_test";
  fs::create_directories(dir);
  const fs::path csv = dir / "out.csv";
  {
    std::ofstream out(csv, std::ios::binary);
    out << "a,b\n1,2\n";
  }

  RunManifest m("unit_test");
  m.set_seed(42);
  m.set_threads(8, 1);
  m.set_param("alpha", 0.5);
  m.set_param("label", "x");
  m.set_param("count", static_cast<long long>(3));
  m.set_param("alpha", 0.75);  // replace, not duplicate
  m.record_output(csv.string(), 1);
  EXPECT_TRUE(m.has_output(csv.string()));
  EXPECT_FALSE(m.has_output("missing.csv"));
  ASSERT_EQ(m.outputs().size(), 1u);
  EXPECT_EQ(m.outputs()[0].sha256, sha256_file_hex(csv.string()));

  const std::string path = m.write(dir.string());
  EXPECT_EQ(fs::path(path).filename().string(), "BENCH_unit_test.json");
  const std::string json = slurp(path);
  EXPECT_NE(json.find("\"schema\": \"cpsguard.bench_manifest.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\": \"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"alpha\": 0.75"), std::string::npos);
  // One alpha only: the second set_param replaced the first.
  EXPECT_EQ(json.find("\"alpha\""), json.rfind("\"alpha\""));
  EXPECT_NE(json.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find(m.outputs()[0].sha256), std::string::npos);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace cpsguard::obs

#include "sim/fault_injector.h"

#include <gtest/gtest.h>

#include "util/contracts.h"
#include "util/rng.h"

namespace cpsguard::sim {
namespace {

FaultSpec spec(FaultType type, double magnitude, int start = 5, int dur = 10) {
  FaultSpec s;
  s.type = type;
  s.start_step = start;
  s.duration_steps = dur;
  s.magnitude = magnitude;
  return s;
}

TEST(FaultSpec, ActiveWindowIsHalfOpen) {
  const FaultSpec s = spec(FaultType::kSensorBiasHigh, 50.0, 5, 10);
  EXPECT_FALSE(s.active(4));
  EXPECT_TRUE(s.active(5));
  EXPECT_TRUE(s.active(14));
  EXPECT_FALSE(s.active(15));
}

TEST(FaultSpec, NoneIsNeverActive) {
  FaultSpec s;
  EXPECT_FALSE(s.active(0));
}

TEST(FaultInjector, DefaultIsTransparent) {
  FaultInjector fi;
  EXPECT_DOUBLE_EQ(fi.sense(123.0, 3), 123.0);
  EXPECT_DOUBLE_EQ(fi.actuate(1.5, 3), 1.5);
  EXPECT_FALSE(fi.active(3));
}

TEST(FaultInjector, SensorBiasHigh) {
  FaultInjector fi(spec(FaultType::kSensorBiasHigh, 60.0));
  EXPECT_DOUBLE_EQ(fi.sense(100.0, 7), 160.0);
  EXPECT_DOUBLE_EQ(fi.sense(100.0, 0), 100.0);  // before onset
  EXPECT_DOUBLE_EQ(fi.actuate(1.0, 7), 1.0);    // sensing fault only
}

TEST(FaultInjector, SensorBiasLowClampsAtFloor) {
  FaultInjector fi(spec(FaultType::kSensorBiasLow, 80.0));
  EXPECT_DOUBLE_EQ(fi.sense(150.0, 7), 70.0);
  EXPECT_DOUBLE_EQ(fi.sense(50.0, 7), 10.0);  // floor
}

TEST(FaultInjector, SensorStuckLatchesOnsetValue) {
  FaultInjector fi(spec(FaultType::kSensorStuck, 0.0));
  EXPECT_DOUBLE_EQ(fi.sense(111.0, 5), 111.0);  // latches here
  EXPECT_DOUBLE_EQ(fi.sense(180.0, 6), 111.0);
  EXPECT_DOUBLE_EQ(fi.sense(60.0, 14), 111.0);
  EXPECT_DOUBLE_EQ(fi.sense(60.0, 15), 60.0);  // window over
}

TEST(FaultInjector, SensorDriftGrowsLinearly) {
  FaultInjector fi(spec(FaultType::kSensorDrift, 5.0));
  EXPECT_DOUBLE_EQ(fi.sense(100.0, 5), 105.0);
  EXPECT_DOUBLE_EQ(fi.sense(100.0, 6), 110.0);
  EXPECT_DOUBLE_EQ(fi.sense(100.0, 9), 125.0);
}

TEST(FaultInjector, PumpOverdoseScalesRate) {
  FaultInjector fi(spec(FaultType::kPumpOverdose, 3.0));
  EXPECT_DOUBLE_EQ(fi.actuate(1.2, 8), 3.6);
  EXPECT_DOUBLE_EQ(fi.sense(100.0, 8), 100.0);  // actuation fault only
}

TEST(FaultInjector, PumpUnderdoseClampsFraction) {
  FaultInjector fi(spec(FaultType::kPumpUnderdose, 0.25));
  EXPECT_DOUBLE_EQ(fi.actuate(2.0, 8), 0.5);
}

TEST(FaultInjector, PumpStuckMaxIgnoresCommand) {
  FaultInjector fi(spec(FaultType::kPumpStuckMax, 6.0));
  EXPECT_DOUBLE_EQ(fi.actuate(0.0, 8), 6.0);
  EXPECT_DOUBLE_EQ(fi.actuate(1.0, 8), 6.0);
}

TEST(FaultInjector, PumpStuckZeroDeliversNothing) {
  FaultInjector fi(spec(FaultType::kPumpStuckZero, 0.0));
  EXPECT_DOUBLE_EQ(fi.actuate(3.0, 8), 0.0);
}

TEST(FaultInjector, RandomSpecWithinBounds) {
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const FaultSpec s = FaultInjector::random_spec(150, rng);
    EXPECT_NE(s.type, FaultType::kNone);
    EXPECT_GE(s.start_step, 2);
    EXPECT_LE(s.start_step, 75);
    EXPECT_GE(s.duration_steps, 18);
    EXPECT_LE(s.duration_steps, 96);
  }
}

TEST(FaultInjector, RandomSpecCoversAllTypes) {
  util::Rng rng(4);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(static_cast<int>(FaultInjector::random_spec(150, rng).type));
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kNumFaultTypes - 1));
}


TEST(FaultInjector, SensorDropoutHoldsLastReading) {
  FaultSpec s = spec(FaultType::kSensorDropout, 1.0);  // always hold
  FaultInjector fi(s);
  EXPECT_DOUBLE_EQ(fi.sense(100.0, 5), 100.0);  // first sample latches
  EXPECT_DOUBLE_EQ(fi.sense(150.0, 6), 100.0);  // held
  EXPECT_DOUBLE_EQ(fi.sense(180.0, 10), 100.0);
  EXPECT_DOUBLE_EQ(fi.sense(180.0, 15), 180.0);  // window over
}

TEST(FaultInjector, SensorDropoutZeroProbIsTransparent) {
  FaultInjector fi(spec(FaultType::kSensorDropout, 0.0));
  EXPECT_DOUBLE_EQ(fi.sense(100.0, 5), 100.0);
  EXPECT_DOUBLE_EQ(fi.sense(150.0, 6), 150.0);
}

TEST(FaultInjector, SensorDropoutHoldsRoughlyAtProbability) {
  FaultInjector fi(spec(FaultType::kSensorDropout, 0.7, 0, 2000));
  int held = 0;
  double prev = fi.sense(0.0, 0);
  for (int t = 1; t < 2000; ++t) {
    const double v = fi.sense(static_cast<double>(t), t);
    if (v == prev) ++held;
    prev = v;
  }
  EXPECT_NEAR(held / 1999.0, 0.7, 0.05);
}

TEST(FaultInjector, ToStringCoversAllTypes) {
  for (int i = 0; i < kNumFaultTypes; ++i) {
    EXPECT_NE(to_string(static_cast<FaultType>(i)), "unknown");
  }
}

}  // namespace
}  // namespace cpsguard::sim

#include "sim/fault_injector.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/contracts.h"
#include "util/rng.h"

namespace cpsguard::sim {
namespace {

FaultSpec spec(FaultType type, double magnitude, int start = 5, int dur = 10) {
  FaultSpec s;
  s.type = type;
  s.start_step = start;
  s.duration_steps = dur;
  s.magnitude = magnitude;
  return s;
}

TEST(FaultSpec, ActiveWindowIsHalfOpen) {
  const FaultSpec s = spec(FaultType::kSensorBiasHigh, 50.0, 5, 10);
  EXPECT_FALSE(s.active(4));
  EXPECT_TRUE(s.active(5));
  EXPECT_TRUE(s.active(14));
  EXPECT_FALSE(s.active(15));
}

TEST(FaultSpec, NoneIsNeverActive) {
  FaultSpec s;
  EXPECT_FALSE(s.active(0));
}

TEST(FaultInjector, DefaultIsTransparent) {
  FaultInjector fi;
  EXPECT_DOUBLE_EQ(fi.sense(123.0, 3), 123.0);
  EXPECT_DOUBLE_EQ(fi.actuate(1.5, 3), 1.5);
  EXPECT_FALSE(fi.active(3));
}

TEST(FaultInjector, SensorBiasHigh) {
  FaultInjector fi(spec(FaultType::kSensorBiasHigh, 60.0));
  EXPECT_DOUBLE_EQ(fi.sense(100.0, 7), 160.0);
  EXPECT_DOUBLE_EQ(fi.sense(100.0, 0), 100.0);  // before onset
  EXPECT_DOUBLE_EQ(fi.actuate(1.0, 7), 1.0);    // sensing fault only
}

TEST(FaultInjector, SensorBiasLowClampsAtFloor) {
  FaultInjector fi(spec(FaultType::kSensorBiasLow, 80.0));
  EXPECT_DOUBLE_EQ(fi.sense(150.0, 7), 70.0);
  EXPECT_DOUBLE_EQ(fi.sense(50.0, 7), 10.0);  // floor
}

TEST(FaultInjector, SensorStuckLatchesOnsetValue) {
  FaultInjector fi(spec(FaultType::kSensorStuck, 0.0));
  EXPECT_DOUBLE_EQ(fi.sense(111.0, 5), 111.0);  // latches here
  EXPECT_DOUBLE_EQ(fi.sense(180.0, 6), 111.0);
  EXPECT_DOUBLE_EQ(fi.sense(60.0, 14), 111.0);
  EXPECT_DOUBLE_EQ(fi.sense(60.0, 15), 60.0);  // window over
}

TEST(FaultInjector, SensorDriftGrowsLinearly) {
  FaultInjector fi(spec(FaultType::kSensorDrift, 5.0));
  EXPECT_DOUBLE_EQ(fi.sense(100.0, 5), 105.0);
  EXPECT_DOUBLE_EQ(fi.sense(100.0, 6), 110.0);
  EXPECT_DOUBLE_EQ(fi.sense(100.0, 9), 125.0);
}

TEST(FaultInjector, PumpOverdoseScalesRate) {
  FaultInjector fi(spec(FaultType::kPumpOverdose, 3.0));
  EXPECT_DOUBLE_EQ(fi.actuate(1.2, 8), 3.6);
  EXPECT_DOUBLE_EQ(fi.sense(100.0, 8), 100.0);  // actuation fault only
}

TEST(FaultInjector, PumpUnderdoseClampsFraction) {
  FaultInjector fi(spec(FaultType::kPumpUnderdose, 0.25));
  EXPECT_DOUBLE_EQ(fi.actuate(2.0, 8), 0.5);
}

TEST(FaultInjector, PumpStuckMaxIgnoresCommand) {
  FaultInjector fi(spec(FaultType::kPumpStuckMax, 6.0));
  EXPECT_DOUBLE_EQ(fi.actuate(0.0, 8), 6.0);
  EXPECT_DOUBLE_EQ(fi.actuate(1.0, 8), 6.0);
}

TEST(FaultInjector, PumpStuckZeroDeliversNothing) {
  FaultInjector fi(spec(FaultType::kPumpStuckZero, 0.0));
  EXPECT_DOUBLE_EQ(fi.actuate(3.0, 8), 0.0);
}

TEST(FaultInjector, RandomSpecWithinBounds) {
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const FaultSpec s = FaultInjector::random_spec(150, rng);
    EXPECT_NE(s.type, FaultType::kNone);
    EXPECT_GE(s.start_step, 2);
    EXPECT_LE(s.start_step, 75);
    EXPECT_GE(s.duration_steps, 18);
    EXPECT_LE(s.duration_steps, 96);
  }
}

TEST(FaultInjector, RandomSpecCoversAllPlantTypes) {
  util::Rng rng(4);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(static_cast<int>(FaultInjector::random_spec(150, rng).type));
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kNumPlantFaultTypes - 1));
}


TEST(FaultInjector, SensorDropoutHoldsLastReading) {
  FaultSpec s = spec(FaultType::kSensorDropout, 1.0);  // always hold
  FaultInjector fi(s);
  EXPECT_DOUBLE_EQ(fi.sense(100.0, 5), 100.0);  // first sample latches
  EXPECT_DOUBLE_EQ(fi.sense(150.0, 6), 100.0);  // held
  EXPECT_DOUBLE_EQ(fi.sense(180.0, 10), 100.0);
  EXPECT_DOUBLE_EQ(fi.sense(180.0, 15), 180.0);  // window over
}

TEST(FaultInjector, SensorDropoutZeroProbIsTransparent) {
  FaultInjector fi(spec(FaultType::kSensorDropout, 0.0));
  EXPECT_DOUBLE_EQ(fi.sense(100.0, 5), 100.0);
  EXPECT_DOUBLE_EQ(fi.sense(150.0, 6), 150.0);
}

TEST(FaultInjector, SensorDropoutHoldsRoughlyAtProbability) {
  FaultInjector fi(spec(FaultType::kSensorDropout, 0.7, 0, 2000));
  int held = 0;
  double prev = fi.sense(0.0, 0);
  for (int t = 1; t < 2000; ++t) {
    const double v = fi.sense(static_cast<double>(t), t);
    if (v == prev) ++held;
    prev = v;
  }
  EXPECT_NEAR(held / 1999.0, 0.7, 0.05);
}

// Every FaultType, parameterized: names must round-trip and the injector
// must be the identity outside the active window, for all 14 types.
class FaultTypeTest : public ::testing::TestWithParam<int> {
 protected:
  [[nodiscard]] FaultType type() const {
    return static_cast<FaultType>(GetParam());
  }
};

TEST_P(FaultTypeTest, ToStringNeverUnknown) {
  EXPECT_NE(to_string(type()), "unknown");
}

TEST_P(FaultTypeTest, ToStringNamesAreUnique) {
  for (int other = 0; other < kNumFaultTypes; ++other) {
    if (other == GetParam()) continue;
    EXPECT_NE(to_string(type()), to_string(static_cast<FaultType>(other)));
  }
}

TEST_P(FaultTypeTest, IdentityOutsideActiveWindow) {
  FaultInjector fi(spec(type(), 50.0, /*start=*/5, /*dur=*/10));
  for (const int step : {0, 4, 15, 20}) {
    EXPECT_DOUBLE_EQ(fi.sense(140.0, step), 140.0) << "step " << step;
    EXPECT_DOUBLE_EQ(fi.actuate(1.5, step), 1.5) << "step " << step;
  }
}

TEST_P(FaultTypeTest, InputFaultPredicateMatchesFamily) {
  const bool expected = GetParam() >= kNumPlantFaultTypes;
  EXPECT_EQ(is_input_fault(type()), expected);
}

INSTANTIATE_TEST_SUITE_P(AllTypes, FaultTypeTest,
                         ::testing::Range(0, kNumFaultTypes),
                         [](const auto& info) {
                           return to_string(static_cast<FaultType>(info.param));
                         });

TEST(FaultInjector, SensorLossDeliversNaN) {
  FaultSpec s = spec(FaultType::kSensorLoss, 0.0);
  s.rate = 1.0;
  FaultInjector fi(s);
  EXPECT_TRUE(std::isnan(fi.sense(120.0, 7)));
  EXPECT_DOUBLE_EQ(fi.sense(120.0, 15), 120.0);  // window over
}

TEST(FaultInjector, SensorLossRateZeroIsTransparent) {
  FaultSpec s = spec(FaultType::kSensorLoss, 0.0);
  s.rate = 0.0;
  FaultInjector fi(s);
  EXPECT_DOUBLE_EQ(fi.sense(120.0, 7), 120.0);
}

TEST(FaultInjector, SensorLossRateControlsFrequency) {
  FaultSpec s = spec(FaultType::kSensorLoss, 0.0, 0, 2000);
  s.rate = 0.4;
  FaultInjector fi(s);
  int lost = 0;
  for (int t = 0; t < 2000; ++t) {
    if (std::isnan(fi.sense(120.0, t))) ++lost;
  }
  EXPECT_NEAR(lost / 2000.0, 0.4, 0.05);
}

TEST(FaultInjector, SensorDelayDeliversStaleSamples) {
  FaultSpec s = spec(FaultType::kSensorDelay, /*k=*/3.0, /*start=*/5, /*dur=*/10);
  s.rate = 1.0;
  FaultInjector fi(s);
  // Readings ramp 100, 101, 102, ...: inside the window the injector must
  // deliver the value from 3 cycles earlier.
  for (int t = 0; t < 5; ++t) {
    EXPECT_DOUBLE_EQ(fi.sense(100.0 + t, t), 100.0 + t);
  }
  EXPECT_DOUBLE_EQ(fi.sense(105.0, 5), 102.0);
  EXPECT_DOUBLE_EQ(fi.sense(106.0, 6), 103.0);
  EXPECT_DOUBLE_EQ(fi.sense(115.0, 15), 115.0);  // window over
}

TEST(FaultInjector, SensorDelayClampsAtStreamStart) {
  FaultSpec s = spec(FaultType::kSensorDelay, /*k=*/10.0, /*start=*/1, /*dur=*/5);
  s.rate = 1.0;
  FaultInjector fi(s);
  EXPECT_DOUBLE_EQ(fi.sense(100.0, 0), 100.0);
  // Only two samples exist; a 10-cycle delay clamps to the oldest one.
  EXPECT_DOUBLE_EQ(fi.sense(105.0, 1), 100.0);
}

TEST(FaultInjector, SensorGarbageIsNaNOrWildlyOutOfRange) {
  FaultSpec s = spec(FaultType::kSensorGarbage, 5000.0, 0, 500);
  s.rate = 1.0;
  FaultInjector fi(s);
  int nan_count = 0, wild = 0;
  for (int t = 0; t < 500; ++t) {
    const double v = fi.sense(120.0, t);
    if (std::isnan(v)) {
      ++nan_count;
    } else {
      EXPECT_GE(std::abs(v), 600.0);  // far outside the physiological band
      ++wild;
    }
  }
  EXPECT_GT(nan_count, 0);
  EXPECT_GT(wild, 0);
}

TEST(FaultInjector, SensorSpikeAddsBurstOfMagnitude) {
  FaultSpec s = spec(FaultType::kSensorSpike, 150.0, 0, 500);
  s.rate = 1.0;
  FaultInjector fi(s);
  for (int t = 0; t < 500; ++t) {
    const double v = fi.sense(120.0, t);
    EXPECT_NEAR(std::abs(v - 120.0), 150.0, 1e-12);
  }
}

TEST(FaultInjector, SeededStreamsDecorrelate) {
  FaultSpec s = spec(FaultType::kSensorLoss, 0.0, 0, 200);
  s.rate = 0.5;
  FaultInjector a(s, /*stream_seed=*/1), b(s, /*stream_seed=*/2);
  int differing = 0;
  for (int t = 0; t < 200; ++t) {
    if (std::isnan(a.sense(120.0, t)) != std::isnan(b.sense(120.0, t))) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjector, RandomInputSpecWithinBoundsAndCoversFamily) {
  util::Rng rng(9);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) {
    const FaultSpec s = FaultInjector::random_input_spec(150, rng);
    EXPECT_TRUE(is_input_fault(s.type));
    EXPECT_GE(s.start_step, 2);
    EXPECT_LE(s.start_step, 75);
    EXPECT_GE(s.duration_steps, 18);
    EXPECT_LE(s.duration_steps, 96);
    EXPECT_GE(s.rate, 0.2);
    EXPECT_LE(s.rate, 0.9);
    seen.insert(static_cast<int>(s.type));
  }
  EXPECT_EQ(seen.size(),
            static_cast<std::size_t>(kNumFaultTypes - kNumPlantFaultTypes));
}

TEST(FaultInjector, RandomSpecNeverDrawsInputFaults) {
  util::Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    EXPECT_FALSE(is_input_fault(FaultInjector::random_spec(150, rng).type));
  }
}

TEST(FaultInjector, RejectsOutOfRangeRate) {
  FaultSpec s = spec(FaultType::kSensorLoss, 0.0);
  s.rate = 1.5;
  EXPECT_THROW(FaultInjector{s}, ContractViolation);
}

}  // namespace
}  // namespace cpsguard::sim

#include "util/parse.h"

#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <limits>

namespace cpsguard::util {
namespace {

TEST(ParseInt, AcceptsPlainIntegers) {
  EXPECT_EQ(try_parse_int("0"), 0);
  EXPECT_EQ(try_parse_int("-17"), -17);
  EXPECT_EQ(try_parse_int("  42 "), 42);
  EXPECT_EQ(try_parse_int("9223372036854775807"),
            std::numeric_limits<long long>::max());
}

TEST(ParseInt, RejectsGarbage) {
  EXPECT_FALSE(try_parse_int(""));
  EXPECT_FALSE(try_parse_int("4x"));
  EXPECT_FALSE(try_parse_int("x4"));
  EXPECT_FALSE(try_parse_int("4 5"));
  EXPECT_FALSE(try_parse_int("0.5"));
  EXPECT_FALSE(try_parse_int("-"));
  EXPECT_FALSE(try_parse_int("9223372036854775808"));  // LLONG_MAX + 1
}

TEST(ParseU64, RejectsNegativeInsteadOfWrapping) {
  // std::stoull accepts "-5" and wraps to 18446744073709551611 — the exact
  // bug the checkpoint "bytes=" field had.
  EXPECT_FALSE(try_parse_u64("-5"));
  EXPECT_FALSE(try_parse_u64("+5"));
  EXPECT_EQ(try_parse_u64("5"), 5u);
  EXPECT_EQ(try_parse_u64("18446744073709551615"),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_FALSE(try_parse_u64("18446744073709551616"));
  EXPECT_FALSE(try_parse_u64("22x"));
}

TEST(ParseDouble, AcceptsUsualForms) {
  EXPECT_DOUBLE_EQ(*try_parse_double("0.5"), 0.5);
  EXPECT_DOUBLE_EQ(*try_parse_double("-3.5e-2"), -0.035);
  EXPECT_DOUBLE_EQ(*try_parse_double("  1e2 "), 100.0);
  EXPECT_TRUE(std::isinf(*try_parse_double("inf")));
  EXPECT_TRUE(std::isinf(*try_parse_double("-Infinity")));
  EXPECT_TRUE(std::isnan(*try_parse_double("nan")));
}

TEST(ParseDouble, RejectsGarbageAndOverflow) {
  EXPECT_FALSE(try_parse_double(""));
  EXPECT_FALSE(try_parse_double("."));
  EXPECT_FALSE(try_parse_double("1.2.3"));
  EXPECT_FALSE(try_parse_double("0.5pt"));
  EXPECT_FALSE(try_parse_double("1e999"));  // a typo, not a request for inf
  EXPECT_FALSE(try_parse_double("--1"));
}

TEST(ParseDouble, IgnoresGlobalLocale) {
  // std::atof honors LC_NUMERIC: under a comma-decimal locale "0.5" parses
  // as 0. from_chars must not care. (Restore the locale even on failure.)
  const std::string prev = std::setlocale(LC_NUMERIC, nullptr);
  if (std::setlocale(LC_NUMERIC, "de_DE.UTF-8") == nullptr &&
      std::setlocale(LC_NUMERIC, "de_DE") == nullptr) {
    GTEST_SKIP() << "no comma-decimal locale installed";
  }
  const auto parsed = try_parse_double("0.5");
  std::setlocale(LC_NUMERIC, prev.c_str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(*parsed, 0.5);
}

TEST(ParseThrowing, MessageNamesContextAndText) {
  try {
    (void)parse_int("4x", "--threads");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--threads"), std::string::npos) << msg;
    EXPECT_NE(msg.find("4x"), std::string::npos) << msg;
  }
}

TEST(ParseInt32, RejectsBeyondIntRange) {
  EXPECT_EQ(parse_int32("2147483647", "k"), 2147483647);
  EXPECT_THROW(parse_int32("2147483648", "k"), ParseError);
  EXPECT_THROW(parse_int32("-2147483649", "k"), ParseError);
}

}  // namespace
}  // namespace cpsguard::util

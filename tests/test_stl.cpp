#include "safety/stl.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/contracts.h"

namespace cpsguard::safety {
namespace {

using F = StlFormula;

SignalTrace make_trace() {
  SignalTrace st;
  st.add_signal("x", {0.0, 1.0, 2.0, 3.0, 4.0});
  st.add_signal("y", {5.0, 4.0, 3.0, 2.0, 1.0});
  return st;
}

TEST(SignalTrace, StoresAndReads) {
  const SignalTrace st = make_trace();
  EXPECT_EQ(st.length(), 5);
  EXPECT_TRUE(st.has_signal("x"));
  EXPECT_FALSE(st.has_signal("z"));
  EXPECT_DOUBLE_EQ(st.value("y", 2), 3.0);
}

TEST(SignalTrace, RejectsUnequalLengths) {
  SignalTrace st;
  st.add_signal("a", {1.0, 2.0});
  EXPECT_THROW(st.add_signal("b", {1.0}), cpsguard::ContractViolation);
}

TEST(SignalTrace, RejectsUnknownSignalAndBadIndex) {
  const SignalTrace st = make_trace();
  EXPECT_THROW(st.value("nope", 0), cpsguard::ContractViolation);
  EXPECT_THROW(st.value("x", 5), cpsguard::ContractViolation);
}

TEST(StlAtom, ComparisonSemantics) {
  const SignalTrace st = make_trace();
  EXPECT_TRUE(F::atom("x", Cmp::kGt, 1.5)->eval(st, 2));
  EXPECT_FALSE(F::atom("x", Cmp::kGt, 2.0)->eval(st, 2));
  EXPECT_TRUE(F::atom("x", Cmp::kLt, 2.5)->eval(st, 2));
  EXPECT_FALSE(F::atom("x", Cmp::kLt, 2.0)->eval(st, 2));
}

TEST(StlAtom, EqApproxUsesEps) {
  const SignalTrace st = make_trace();
  EXPECT_TRUE(F::atom("x", Cmp::kEqApprox, 2.05, 0.1)->eval(st, 2));
  EXPECT_FALSE(F::atom("x", Cmp::kEqApprox, 2.5, 0.1)->eval(st, 2));
}

TEST(StlAtom, RobustnessIsSignedMargin) {
  const SignalTrace st = make_trace();
  EXPECT_DOUBLE_EQ(F::atom("x", Cmp::kGt, 1.0)->robustness(st, 3), 2.0);
  EXPECT_DOUBLE_EQ(F::atom("x", Cmp::kLt, 1.0)->robustness(st, 3), -2.0);
}

TEST(StlBoolean, NotAndOr) {
  const SignalTrace st = make_trace();
  const auto x_big = F::atom("x", Cmp::kGt, 2.5);
  const auto y_big = F::atom("y", Cmp::kGt, 2.5);
  EXPECT_TRUE(F::negate(x_big)->eval(st, 0));
  EXPECT_FALSE(F::conj(x_big, y_big)->eval(st, 4));  // y small at t=4
  EXPECT_TRUE(F::disj(x_big, y_big)->eval(st, 4));   // x big at t=4
  const auto both_mid = F::conj(F::atom("x", Cmp::kGt, 1.5),
                                F::atom("y", Cmp::kGt, 1.5));
  EXPECT_TRUE(both_mid->eval(st, 2));  // x=2, y=3
}

TEST(StlBoolean, ConjRobustnessIsMin) {
  const SignalTrace st = make_trace();
  const auto f = F::conj(F::atom("x", Cmp::kGt, 0.0), F::atom("y", Cmp::kGt, 0.0));
  EXPECT_DOUBLE_EQ(f->robustness(st, 3), std::min(3.0, 2.0));
}

TEST(StlBoolean, DisjRobustnessIsMax) {
  const SignalTrace st = make_trace();
  const auto f = F::disj(F::atom("x", Cmp::kGt, 0.0), F::atom("y", Cmp::kGt, 0.0));
  EXPECT_DOUBLE_EQ(f->robustness(st, 3), std::max(3.0, 2.0));
}

TEST(StlTemporal, EventuallyFindsFutureSatisfaction) {
  const SignalTrace st = make_trace();
  const auto f = F::eventually(F::atom("x", Cmp::kGe, 4.0), 0, 10);
  EXPECT_TRUE(f->eval(st, 0));
  const auto g = F::eventually(F::atom("x", Cmp::kGt, 10.0), 0, 10);
  EXPECT_FALSE(g->eval(st, 0));
}

TEST(StlTemporal, AlwaysRequiresWholeWindow) {
  const SignalTrace st = make_trace();
  EXPECT_TRUE(F::always(F::atom("x", Cmp::kGe, 0.0), 0, 4)->eval(st, 0));
  EXPECT_FALSE(F::always(F::atom("x", Cmp::kGe, 1.0), 0, 4)->eval(st, 0));
  EXPECT_TRUE(F::always(F::atom("x", Cmp::kGe, 1.0), 1, 4)->eval(st, 0));
}

TEST(StlTemporal, WindowClampsToTraceEnd) {
  const SignalTrace st = make_trace();
  // Window [t+3, t+100] from t=3 covers only index 4.
  const auto f = F::eventually(F::atom("y", Cmp::kLe, 1.0), 1, 100);
  EXPECT_TRUE(f->eval(st, 3));
}

TEST(StlTemporal, NestedFormulas) {
  const SignalTrace st = make_trace();
  // "Eventually (x > 2 and y < 3)" — true at t=3 (x=3, y=2).
  const auto f = F::eventually(
      F::conj(F::atom("x", Cmp::kGt, 2.0), F::atom("y", Cmp::kLt, 3.0)), 0, 4);
  EXPECT_TRUE(f->eval(st, 0));
}

TEST(StlCombinators, ConjAllAndDisjAll) {
  const SignalTrace st = make_trace();
  const auto t1 = F::atom("x", Cmp::kGe, 0.0);
  const auto t2 = F::atom("y", Cmp::kGe, 0.0);
  EXPECT_TRUE(F::conj_all({t1, t2})->eval(st, 0));
  EXPECT_TRUE(F::conj_all({})->eval(st, 0));   // empty conjunction = true
  EXPECT_FALSE(F::disj_all({})->eval(st, 0));  // empty disjunction = false
}

TEST(StlToString, ReadableOutput) {
  const auto f = F::conj(F::atom("BG", Cmp::kGt, 120.0),
                         F::negate(F::atom("u3", Cmp::kGt, 0.5)));
  const std::string s = f->to_string();
  EXPECT_NE(s.find("BG > 120"), std::string::npos);
  EXPECT_NE(s.find("!(u3 > 0.5)"), std::string::npos);
  EXPECT_NE(s.find("&&"), std::string::npos);
}

TEST(StlToString, TemporalOperators) {
  const auto f = F::always(F::eventually(F::atom("x", Cmp::kLt, 1.0), 0, 3), 1, 2);
  const std::string s = f->to_string();
  EXPECT_NE(s.find("G[1,2]"), std::string::npos);
  EXPECT_NE(s.find("F[0,3]"), std::string::npos);
}

TEST(StlFactories, RejectInvalidArguments) {
  EXPECT_THROW(F::atom("", Cmp::kGt, 0.0), cpsguard::ContractViolation);
  EXPECT_THROW(F::negate(nullptr), cpsguard::ContractViolation);
  EXPECT_THROW(F::always(F::atom("x", Cmp::kGt, 0.0), 3, 1),
               cpsguard::ContractViolation);
}

}  // namespace
}  // namespace cpsguard::safety

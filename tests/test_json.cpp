#include "util/json.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/contracts.h"

namespace cpsguard::util {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Json::null().dump(), "null");
  EXPECT_EQ(Json::boolean(true).dump(), "true");
  EXPECT_EQ(Json::boolean(false).dump(), "false");
  EXPECT_EQ(Json::integer(-42).dump(), "-42");
  EXPECT_EQ(Json::number(1.5).dump(), "1.5");
  EXPECT_EQ(Json::str("hi").dump(), "\"hi\"");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(Json::number(std::nan("")).dump(), "null");
  EXPECT_EQ(Json::number(1.0 / 0.0).dump(), "null");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json::str("a\"b").dump(), "\"a\\\"b\"");
  EXPECT_EQ(Json::str("line\nbreak").dump(), "\"line\\nbreak\"");
  EXPECT_EQ(Json::str("back\\slash").dump(), "\"back\\\\slash\"");
  EXPECT_EQ(Json::str(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json j = Json::object();
  j.set("z", Json::integer(1)).set("a", Json::integer(2));
  EXPECT_EQ(j.dump(), "{\"z\":1,\"a\":2}");
}

TEST(Json, ObjectSetReplacesExistingKey) {
  Json j = Json::object();
  j.set("k", Json::integer(1));
  j.set("k", Json::integer(2));
  EXPECT_EQ(j.dump(), "{\"k\":2}");
}

TEST(Json, NestedStructures) {
  Json arr = Json::array();
  arr.push(Json::integer(1)).push(Json::str("two"));
  Json j = Json::object();
  j.set("list", std::move(arr));
  j.set("inner", Json::object().set("ok", Json::boolean(true)));
  EXPECT_EQ(j.dump(), "{\"list\":[1,\"two\"],\"inner\":{\"ok\":true}}");
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::object().dump(), "{}");
  EXPECT_EQ(Json::array().dump(), "[]");
}

TEST(Json, PrettyPrinting) {
  Json j = Json::object();
  j.set("a", Json::integer(1));
  EXPECT_EQ(j.dump(2), "{\n  \"a\": 1\n}");
}

TEST(Json, TypeMisuseThrows) {
  Json arr = Json::array();
  EXPECT_THROW(arr.set("k", Json::null()), cpsguard::ContractViolation);
  Json obj = Json::object();
  EXPECT_THROW(obj.push(Json::null()), cpsguard::ContractViolation);
}

// ---- parser (new in the fuzz PR; fuzz target "json" hammers it) -----------

TEST(JsonParse, RoundTripsWriterOutput) {
  Json j = Json::object();
  j.set("schema", Json::str("cpsguard.bench_manifest.v1"));
  j.set("seed", Json::integer(7));
  j.set("rate", Json::number(0.25));
  j.set("flags", Json::array().push(Json::boolean(true)).push(Json::null()));
  j.set("note", Json::str("line\nbreak \"quoted\" \x01"));
  const std::string d = j.dump();
  EXPECT_EQ(Json::parse(d).dump(), d);
}

TEST(JsonParse, AcceptsScalarsAndNormalizesNumbers) {
  EXPECT_EQ(Json::parse("null").dump(), "null");
  EXPECT_EQ(Json::parse(" true ").dump(), "true");
  EXPECT_EQ(Json::parse("-42").dump(), "-42");
  EXPECT_EQ(Json::parse("1e2").dump(), "100");    // integral sci → integer
  EXPECT_EQ(Json::parse("2.5").dump(), "2.5");
  EXPECT_EQ(Json::parse("-0").dump(), "0");       // -0 flips to integer 0
  EXPECT_EQ(Json::parse("\"\\u0041\\ud834\\udd1e\"").dump(),
            "\"A\xf0\x9d\x84\x9e\"");             // surrogate pair → UTF-8
}

TEST(JsonParse, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"k\":}", "tru", "01", "1.", "+1", "1e999",
        "\"unterminated", "\"bad\\q\"", "\"\\ud834\"", "\"\\udd1e x\"",
        "{\"a\":1,}", "[1] garbage", "{'k':1}", "nan"}) {
    EXPECT_THROW(Json::parse(bad), JsonParseError) << "input: " << bad;
  }
  // Raw control bytes must arrive escaped.
  EXPECT_THROW(Json::parse(std::string("\"a\nb\"")), JsonParseError);
}

TEST(JsonParse, DeepNestingHitsDepthCapNotStack) {
  const std::string deep(400, '[');
  EXPECT_THROW(Json::parse(deep + std::string(400, ']')), JsonParseError);
  std::string ok = std::string(100, '[') + "1" + std::string(100, ']');
  EXPECT_EQ(Json::parse(ok).dump(), ok);
}

TEST(JsonParse, ParseErrorIsTypedCpsError) {
  EXPECT_THROW(Json::parse("{"), CpsError);
}

}  // namespace
}  // namespace cpsguard::util

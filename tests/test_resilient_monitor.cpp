#include "core/resilient_monitor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "core/online_monitor.h"
#include "util/contracts.h"

namespace cpsguard::core {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.campaign.patients = 3;
  cfg.campaign.sims_per_patient = 3;
  cfg.campaign.trace_steps = 60;
  cfg.campaign.seed = 11;
  cfg.epochs = 2;
  cfg.cache_dir = "";
  return cfg;
}

/// A clean, rule-safe record: BG near target with a tiny per-step wobble so
/// the flatline detector never sees exact repeats.
sim::StepRecord clean_record(int step) {
  sim::StepRecord r;
  r.step = step;
  r.sensor_bg = 120.0 + 0.25 * (step % 7);
  r.true_bg = r.sensor_bg;
  r.iob = 1.0;
  r.d_bg = 0.0;
  r.d_iob = 0.0;
  r.action = sim::ControlAction::kKeepInsulin;
  return r;
}

/// A valid record that fires Table I rule 10 (BG < 70, insulin not stopped).
sim::StepRecord unsafe_record(int step) {
  sim::StepRecord r = clean_record(step);
  r.sensor_bg = 60.0 + 0.1 * (step % 5);
  r.true_bg = r.sensor_bg;
  return r;
}

sim::StepRecord nan_record(int step) {
  sim::StepRecord r = clean_record(step);
  r.sensor_bg = kNan;
  return r;
}

// The trained monitor is expensive to build; share one across the suite.
class ResilientMonitorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    exp_ = new Experiment(tiny_config());
    ml_ = &exp_->monitor({monitor::Arch::kMlp, false});
  }
  static void TearDownTestSuite() {
    delete exp_;
    exp_ = nullptr;
    ml_ = nullptr;
  }

  [[nodiscard]] static ResilientConfig config() {
    ResilientConfig rc;
    rc.window = exp_->config().dataset.window;
    return rc;
  }

  /// Drive `n` clean cycles starting at step `from`; returns the last verdict.
  static ResilientVerdict feed_clean(ResilientMonitor& rm, int from, int n) {
    ResilientVerdict v;
    for (int t = from; t < from + n; ++t) v = rm.step(clean_record(t));
    return v;
  }

  static Experiment* exp_;
  static monitor::MlMonitor* ml_;
};

Experiment* ResilientMonitorTest::exp_ = nullptr;
monitor::MlMonitor* ResilientMonitorTest::ml_ = nullptr;

TEST_F(ResilientMonitorTest, StartsMlActiveAndStaysOnCleanStream) {
  ResilientMonitor rm(*ml_, config());
  const int window = config().window;
  for (int t = 0; t < window - 1; ++t) {
    const auto v = rm.step(clean_record(t));
    EXPECT_EQ(v.state, MonitorState::kMlActive);
    EXPECT_FALSE(v.ready) << "cycle " << t;  // window still filling
  }
  const auto v = rm.step(clean_record(window - 1));
  EXPECT_EQ(v.state, MonitorState::kMlActive);
  EXPECT_TRUE(v.ready);
  EXPECT_FALSE(v.from_fallback);
  EXPECT_GE(v.p_unsafe, 0.0);
  EXPECT_LE(v.p_unsafe, 1.0);
  EXPECT_EQ(rm.telemetry().fallback_entries, 0);
  EXPECT_EQ(rm.telemetry().invalid_samples, 0);
}

TEST_F(ResilientMonitorTest, MlPathMatchesOnlineMonitorOnCleanStream) {
  const int window = config().window;
  ResilientMonitor rm(*ml_, config());
  OnlineMonitor om(*ml_, window);
  for (int t = 0; t < 30; ++t) {
    const sim::StepRecord r = clean_record(t);
    const auto rv = rm.step(r);
    const auto ov = om.step(r);
    ASSERT_EQ(rv.ready, ov.ready) << "cycle " << t;
    if (!rv.ready) continue;
    EXPECT_EQ(rv.prediction, ov.prediction) << "cycle " << t;
    EXPECT_DOUBLE_EQ(rv.p_unsafe, ov.p_unsafe) << "cycle " << t;
  }
}

TEST_F(ResilientMonitorTest, NaNSampleDegradesToRuleFallback) {
  ResilientMonitor rm(*ml_, config());
  feed_clean(rm, 0, config().window);
  const auto v = rm.step(nan_record(100));
  EXPECT_EQ(v.state, MonitorState::kDegraded);
  EXPECT_EQ(v.sample_fault, SampleFault::kNonFinite);
  EXPECT_TRUE(v.ready);
  EXPECT_TRUE(v.from_fallback);  // rule verdict on the last valid context
  EXPECT_EQ(v.prediction, 0);    // last valid context was rule-safe
  EXPECT_EQ(rm.telemetry().fallback_entries, 1);
  EXPECT_EQ(rm.telemetry().non_finite, 1);
}

TEST_F(ResilientMonitorTest, OutOfRangeSampleDegrades) {
  ResilientMonitor rm(*ml_, config());
  feed_clean(rm, 0, config().window);
  sim::StepRecord r = clean_record(100);
  r.sensor_bg = 700.0;  // beyond any CGM ceiling
  const auto v = rm.step(r);
  EXPECT_EQ(v.state, MonitorState::kDegraded);
  EXPECT_EQ(v.sample_fault, SampleFault::kOutOfRange);
  EXPECT_EQ(rm.telemetry().out_of_range, 1);
}

TEST_F(ResilientMonitorTest, ImplausibleTrendDegrades) {
  ResilientMonitor rm(*ml_, config());
  feed_clean(rm, 0, config().window);
  sim::StepRecord r = clean_record(100);
  r.d_bg = 40.0;  // mg/dL per min: physiologically impossible slew
  const auto v = rm.step(r);
  EXPECT_EQ(v.state, MonitorState::kDegraded);
  EXPECT_EQ(v.sample_fault, SampleFault::kImplausibleTrend);
  EXPECT_EQ(rm.telemetry().implausible_trend, 1);
}

TEST_F(ResilientMonitorTest, FlatlineDegradesAfterConfiguredRun) {
  const ResilientConfig rc = config();
  ResilientMonitor rm(*ml_, rc);
  sim::StepRecord frozen = clean_record(0);
  for (int t = 0; t < rc.validator.flatline_cycles - 1; ++t) {
    const auto v = rm.step(frozen);
    EXPECT_EQ(v.state, MonitorState::kMlActive) << "cycle " << t;
  }
  const auto v = rm.step(frozen);  // run length now hits the threshold
  EXPECT_EQ(v.state, MonitorState::kDegraded);
  EXPECT_EQ(v.sample_fault, SampleFault::kFlatline);
  EXPECT_EQ(rm.telemetry().flatline, 1);
}

TEST_F(ResilientMonitorTest, FallbackFlagsUnsafeContext) {
  ResilientMonitor rm(*ml_, config());
  feed_clean(rm, 0, config().window);
  rm.step(nan_record(100));  // degrade
  // A valid hypoglycemic sample with insulin kept fires rule 10.
  const auto v = rm.step(unsafe_record(101));
  EXPECT_EQ(v.state, MonitorState::kDegraded);
  EXPECT_TRUE(v.from_fallback);
  EXPECT_EQ(v.prediction, 1);
  EXPECT_DOUBLE_EQ(v.p_unsafe, 1.0);
}

TEST_F(ResilientMonitorTest, ConsecutiveInvalidEntersFailSafe) {
  const ResilientConfig rc = config();
  ResilientMonitor rm(*ml_, rc);
  feed_clean(rm, 0, rc.window);
  ResilientVerdict v;
  for (int i = 0; i < rc.fail_safe_after - 1; ++i) {
    v = rm.step(nan_record(100 + i));
    EXPECT_EQ(v.state, MonitorState::kDegraded) << "invalid cycle " << i;
  }
  v = rm.step(nan_record(100 + rc.fail_safe_after - 1));
  EXPECT_EQ(v.state, MonitorState::kFailSafe);
  EXPECT_TRUE(v.ready);
  EXPECT_EQ(v.prediction, 1);  // alarm-on
  EXPECT_DOUBLE_EQ(v.p_unsafe, 1.0);
  EXPECT_EQ(rm.telemetry().fail_safe_entries, 1);

  // Stays alarm-on while the stream remains corrupted.
  v = rm.step(nan_record(200));
  EXPECT_EQ(v.state, MonitorState::kFailSafe);
  EXPECT_EQ(v.prediction, 1);
}

TEST_F(ResilientMonitorTest, FailSafeExitsToDegradedOnFirstValidSample) {
  const ResilientConfig rc = config();
  ResilientMonitor rm(*ml_, rc);
  feed_clean(rm, 0, rc.window);
  for (int i = 0; i < rc.fail_safe_after; ++i) rm.step(nan_record(100 + i));
  ASSERT_EQ(rm.state(), MonitorState::kFailSafe);
  const auto v = rm.step(clean_record(200));
  EXPECT_EQ(v.state, MonitorState::kDegraded);
  EXPECT_TRUE(v.from_fallback);
}

TEST_F(ResilientMonitorTest, HysteresisRearmsMlAfterCleanRun) {
  const ResilientConfig rc = config();
  ResilientMonitor rm(*ml_, rc);
  feed_clean(rm, 0, rc.window);
  rm.step(nan_record(100));  // degrade
  const int rearm = std::max(rc.rearm_clean_cycles, rc.window);
  ResilientVerdict v;
  for (int i = 0; i < rearm - 1; ++i) {
    v = rm.step(clean_record(200 + i));
    EXPECT_EQ(v.state, MonitorState::kDegraded) << "clean cycle " << i;
    EXPECT_TRUE(v.from_fallback);
  }
  v = rm.step(clean_record(200 + rearm - 1));
  EXPECT_EQ(v.state, MonitorState::kMlActive);  // re-armed
  EXPECT_TRUE(v.ready);                         // window refilled: ML verdict
  EXPECT_FALSE(v.from_fallback);
  EXPECT_EQ(rm.telemetry().recoveries, 1);
  // Latency: the invalid entry cycle plus the clean refill run.
  EXPECT_EQ(rm.telemetry().recovery_latency_sum, rearm);
  EXPECT_DOUBLE_EQ(rm.telemetry().mean_recovery_latency(),
                   static_cast<double>(rearm));
}

TEST_F(ResilientMonitorTest, InvalidSampleDuringRefillResetsHysteresis) {
  const ResilientConfig rc = config();
  ResilientMonitor rm(*ml_, rc);
  feed_clean(rm, 0, rc.window);
  rm.step(nan_record(100));  // degrade
  feed_clean(rm, 200, 3);    // partial refill...
  rm.step(nan_record(300));  // ...voided by another corrupted sample
  const int rearm = std::max(rc.rearm_clean_cycles, rc.window);
  ResilientVerdict v;
  for (int i = 0; i < rearm - 1; ++i) {
    v = rm.step(clean_record(400 + i));
    EXPECT_EQ(v.state, MonitorState::kDegraded) << "clean cycle " << i;
  }
  v = rm.step(clean_record(400 + rearm - 1));
  EXPECT_EQ(v.state, MonitorState::kMlActive);
  EXPECT_EQ(rm.telemetry().fallback_entries, 1);  // one fallback episode
  EXPECT_EQ(rm.telemetry().recoveries, 1);
}

TEST_F(ResilientMonitorTest, TelemetryStateCyclesSumToTotal) {
  const ResilientConfig rc = config();
  ResilientMonitor rm(*ml_, rc);
  feed_clean(rm, 0, 10);
  for (int i = 0; i < 8; ++i) rm.step(nan_record(100 + i));
  feed_clean(rm, 200, 10);
  const auto& tel = rm.telemetry();
  EXPECT_EQ(tel.cycles_total, 28);
  EXPECT_EQ(tel.cycles_ml + tel.cycles_degraded + tel.cycles_fail_safe,
            tel.cycles_total);
  EXPECT_EQ(tel.invalid_samples, 8);
}

TEST_F(ResilientMonitorTest, ResetRestoresPristineState) {
  ResilientMonitor rm(*ml_, config());
  feed_clean(rm, 0, config().window);
  rm.step(nan_record(100));
  ASSERT_EQ(rm.state(), MonitorState::kDegraded);
  rm.reset();
  EXPECT_EQ(rm.state(), MonitorState::kMlActive);
  EXPECT_EQ(rm.telemetry().cycles_total, 0);
  const auto v = rm.step(clean_record(0));
  EXPECT_EQ(v.state, MonitorState::kMlActive);
  EXPECT_FALSE(v.ready);  // history was cleared
}

TEST_F(ResilientMonitorTest, RejectsUntrainedMonitorAndBadConfig) {
  monitor::MonitorConfig mc;
  monitor::MlMonitor untrained(mc);
  EXPECT_THROW(ResilientMonitor(untrained, config()), ContractViolation);
  ResilientConfig bad = config();
  bad.window = 0;
  EXPECT_THROW(ResilientMonitor(*ml_, bad), ContractViolation);
  bad = config();
  bad.rearm_clean_cycles = 0;
  EXPECT_THROW(ResilientMonitor(*ml_, bad), ContractViolation);
  bad = config();
  bad.fail_safe_after = 0;
  EXPECT_THROW(ResilientMonitor(*ml_, bad), ContractViolation);
}

TEST(InputValidator, ClassifiesEachFaultFamily) {
  InputValidator val;
  sim::StepRecord r;
  r.sensor_bg = 120.0;
  r.iob = 1.0;
  EXPECT_EQ(val.check(r), SampleFault::kNone);

  sim::StepRecord nan = r;
  nan.sensor_bg = kNan;
  EXPECT_EQ(val.check(nan), SampleFault::kNonFinite);
  nan = r;
  nan.d_iob = kNan;
  EXPECT_EQ(val.check(nan), SampleFault::kNonFinite);

  sim::StepRecord low = r;
  low.sensor_bg = 5.0;
  EXPECT_EQ(val.check(low), SampleFault::kOutOfRange);
  sim::StepRecord high = r;
  high.sensor_bg = 1000.0;
  EXPECT_EQ(val.check(high), SampleFault::kOutOfRange);

  sim::StepRecord steep = r;
  steep.sensor_bg = 121.0;
  steep.d_bg = -30.0;
  EXPECT_EQ(val.check(steep), SampleFault::kImplausibleTrend);
}

TEST(InputValidator, FlatlineNeedsExactRepeatRun) {
  ValidatorConfig vc;
  vc.flatline_cycles = 3;
  InputValidator val(vc);
  sim::StepRecord r;
  r.sensor_bg = 140.0;
  r.iob = 1.0;
  EXPECT_EQ(val.check(r), SampleFault::kNone);
  EXPECT_EQ(val.check(r), SampleFault::kNone);
  EXPECT_EQ(val.check(r), SampleFault::kFlatline);  // third identical reading
  // A changed reading ends the run.
  r.sensor_bg = 141.0;
  EXPECT_EQ(val.check(r), SampleFault::kNone);
}

TEST(InputValidator, ResetClearsRepeatRun) {
  ValidatorConfig vc;
  vc.flatline_cycles = 2;
  InputValidator val(vc);
  sim::StepRecord r;
  r.sensor_bg = 140.0;
  r.iob = 1.0;
  EXPECT_EQ(val.check(r), SampleFault::kNone);
  val.reset();
  EXPECT_EQ(val.check(r), SampleFault::kNone);  // run restarted
  EXPECT_EQ(val.check(r), SampleFault::kFlatline);
}

TEST(InputValidator, RejectsDegenerateConfig) {
  ValidatorConfig vc;
  vc.bg_min = 600.0;
  vc.bg_max = 20.0;
  EXPECT_THROW(InputValidator{vc}, ContractViolation);
  vc = ValidatorConfig{};
  vc.flatline_cycles = 1;
  EXPECT_THROW(InputValidator{vc}, ContractViolation);
}

// The acceptance property of the runtime, end to end: under heavy input
// corruption the resilient runtime keeps serving trustworthy verdicts while
// the raw ML runtime silently loses availability.
TEST_F(ResilientMonitorTest, ResilientBeatsRawAvailabilityUnderInputFaults) {
  const MonitorVariant mlp{monitor::Arch::kMlp, false};
  ResilienceEvalConfig rc;
  rc.runtime.window = exp_->config().dataset.window;
  for (const auto fault :
       {sim::FaultType::kSensorLoss, sim::FaultType::kSensorGarbage}) {
    const auto raw = exp_->evaluate_resilience(mlp, RuntimeMode::kRawMl, fault,
                                               /*fault_rate=*/0.8, rc);
    const auto res = exp_->evaluate_resilience(mlp, RuntimeMode::kResilient,
                                               fault, /*fault_rate=*/0.8, rc);
    EXPECT_GT(res.availability(), raw.availability())
        << sim::to_string(fault);
    EXPECT_GT(res.time_in_fallback(), 0.0) << sim::to_string(fault);
    EXPECT_GT(res.fallback_entries, 0) << sim::to_string(fault);
  }
}

TEST_F(ResilientMonitorTest, ResilientAvailabilityNeverBelowRaw) {
  // Invariant at any corruption level (including none — note the test traces
  // still contain plant faults like stuck sensors, which the validators
  // rightly flag): availability of the resilient runtime dominates raw ML,
  // because every trustworthy-raw cycle is also a trustworthy-ML cycle for
  // the resilient runtime.
  const MonitorVariant mlp{monitor::Arch::kMlp, false};
  ResilienceEvalConfig rc;
  rc.runtime.window = exp_->config().dataset.window;
  long expected_cycles = 0;
  for (const auto& t : exp_->test_traces()) expected_cycles += t.length();
  for (const auto& [fault, rate] :
       std::vector<std::pair<sim::FaultType, double>>{
           {sim::FaultType::kNone, 0.0},
           {sim::FaultType::kSensorSpike, 0.5},
           {sim::FaultType::kSensorDelay, 0.5}}) {
    const auto raw =
        exp_->evaluate_resilience(mlp, RuntimeMode::kRawMl, fault, rate, rc);
    const auto res = exp_->evaluate_resilience(mlp, RuntimeMode::kResilient,
                                               fault, rate, rc);
    EXPECT_EQ(raw.cycles, expected_cycles);
    EXPECT_EQ(res.cycles, expected_cycles);
    EXPECT_GE(res.availability(), raw.availability()) << sim::to_string(fault);
    EXPECT_EQ(res.overall.total(), res.cycles) << sim::to_string(fault);
  }
}

}  // namespace
}  // namespace cpsguard::core

#include "nn/matrix.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>

#include "util/contracts.h"
#include "util/rng.h"

namespace cpsguard::nn {
namespace {

Matrix random_matrix(int r, int c, util::Rng& rng) {
  Matrix m(r, c);
  for (float& v : m.data()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return m;
}

// Reference O(n^3) matmul used to pin the optimized variants.
Matrix naive_matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (int k = 0; k < a.cols(); ++k) {
        acc += static_cast<double>(a.at(i, k)) * b.at(k, j);
      }
      c.at(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

void expect_near(const Matrix& a, const Matrix& b, float tol = 1e-4f) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) {
      EXPECT_NEAR(a.at(i, j), b.at(i, j), tol) << "at (" << i << "," << j << ")";
    }
  }
}

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6);
  m.at(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(m.at(1, 2), 5.0f);
  EXPECT_FLOAT_EQ(m.at(0, 0), 0.0f);
}

TEST(Matrix, OutOfRangeIndexThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), ContractViolation);
  EXPECT_THROW(m.at(0, -1), ContractViolation);
}

TEST(Matrix, FromRowsAndEquality) {
  const Matrix m = Matrix::from_rows({{1, 2}, {3, 4}});
  EXPECT_FLOAT_EQ(m.at(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(m.at(1, 0), 3.0f);
  EXPECT_TRUE(m == Matrix::from_rows({{1, 2}, {3, 4}}));
  EXPECT_FALSE(m == Matrix::from_rows({{1, 2}, {3, 5}}));
}

TEST(Matrix, FromRowsRejectsRagged) {
  EXPECT_THROW(Matrix::from_rows({{1, 2}, {3}}), ContractViolation);
}

TEST(Matrix, FillAndFull) {
  const Matrix m = Matrix::full(2, 2, 3.5f);
  EXPECT_FLOAT_EQ(m.at(1, 1), 3.5f);
  EXPECT_FLOAT_EQ(m.sum(), 14.0f);
}

TEST(Matrix, AxpyAndScale) {
  Matrix a = Matrix::from_rows({{1, 2}});
  const Matrix b = Matrix::from_rows({{10, 20}});
  a.axpy(0.5f, b);
  expect_near(a, Matrix::from_rows({{6, 12}}));
  a.scale(2.0f);
  expect_near(a, Matrix::from_rows({{12, 24}}));
}

TEST(Matrix, AxpyShapeMismatchThrows) {
  Matrix a(1, 2), b(2, 1);
  EXPECT_THROW(a.axpy(1.0f, b), ContractViolation);
}

TEST(Matrix, HadamardInPlace) {
  Matrix a = Matrix::from_rows({{2, 3}});
  a.hadamard_in_place(Matrix::from_rows({{4, 5}}));
  expect_near(a, Matrix::from_rows({{8, 15}}));
}

TEST(Matrix, AddRowVector) {
  Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const std::vector<float> bias = {10.0f, 20.0f};
  a.add_row_vector(bias);
  expect_near(a, Matrix::from_rows({{11, 22}, {13, 24}}));
}

TEST(Matrix, Transpose) {
  const Matrix t = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}}).transpose();
  expect_near(t, Matrix::from_rows({{1, 4}, {2, 5}, {3, 6}}));
}

TEST(Matrix, ColumnSums) {
  const Matrix s = Matrix::from_rows({{1, 2}, {3, 4}, {5, 6}}).column_sums();
  expect_near(s, Matrix::from_rows({{9, 12}}));
}

TEST(Matrix, MaxAbs) {
  EXPECT_FLOAT_EQ(Matrix::from_rows({{-7, 3}}).max_abs(), 7.0f);
}

TEST(Matmul, MatchesNaive) {
  util::Rng rng(21);
  const Matrix a = random_matrix(7, 11, rng);
  const Matrix b = random_matrix(11, 5, rng);
  expect_near(matmul(a, b), naive_matmul(a, b));
}

TEST(Matmul, IdentityIsNoop) {
  util::Rng rng(22);
  const Matrix a = random_matrix(4, 4, rng);
  Matrix eye(4, 4);
  for (int i = 0; i < 4; ++i) eye.at(i, i) = 1.0f;
  expect_near(matmul(a, eye), a);
}

TEST(Matmul, InnerDimensionMismatchThrows) {
  EXPECT_THROW(matmul(Matrix(2, 3), Matrix(4, 2)), ContractViolation);
}

TEST(MatmulTn, MatchesTransposedNaive) {
  util::Rng rng(23);
  const Matrix a = random_matrix(9, 6, rng);
  const Matrix b = random_matrix(9, 4, rng);
  expect_near(matmul_tn(a, b), naive_matmul(a.transpose(), b));
}

TEST(MatmulNt, MatchesTransposedNaive) {
  util::Rng rng(24);
  const Matrix a = random_matrix(5, 8, rng);
  const Matrix b = random_matrix(6, 8, rng);
  expect_near(matmul_nt(a, b), naive_matmul(a, b.transpose()));
}

// --- Bitwise parity of the blocked kernels against the accumulation-order
// references they are contracted to reproduce exactly (see matrix.h): cached
// monitors and committed figure CSVs depend on these bits not moving.

// Float accumulation in ascending reduction order — the naive ikj loop the
// optimized matmul replaced.
Matrix reference_matmul_f32(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int p = 0; p < a.cols(); ++p) {
      const float av = a.at(i, p);
      for (int j = 0; j < b.cols(); ++j) c.at(i, j) += av * b.at(p, j);
    }
  }
  return c;
}

Matrix reference_matmul_tn_f32(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {  // reduction index, ascending
    for (int p = 0; p < a.cols(); ++p) {
      const float av = a.at(i, p);
      for (int j = 0; j < b.cols(); ++j) c.at(p, j) += av * b.at(i, j);
    }
  }
  return c;
}

// matmul_nt accumulates each element in double (ascending p), then rounds.
Matrix reference_matmul_nt_f64(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.rows());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.rows(); ++j) {
      double acc = 0.0;
      for (int p = 0; p < a.cols(); ++p) {
        acc += static_cast<double>(a.at(i, p)) * b.at(j, p);
      }
      c.at(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

TEST(Matmul, BitIdenticalToReferenceAcrossShapes) {
  util::Rng rng(31);
  // Odd shapes exercise every tail loop; 160^3 (2*160^3 ≈ 8.2M flops)
  // crosses the parallel row-sharding threshold.
  // {64, 54, 256} / {64, 256, 128} are the monitor's inference GEMMs (the
  // dispatched wide-SIMD main path); {5, 54, 100} forces the column tail
  // and the row tail of the tiled kernel in one product.
  const std::vector<std::array<int, 3>> shapes = {
      {1, 1, 1},    {3, 5, 2},      {7, 11, 5},      {33, 17, 9},
      {64, 64, 64}, {160, 160, 160}, {64, 54, 256},  {64, 256, 128},
      {5, 54, 100}, {1, 54, 256}};
  for (const auto& [n, k, m] : shapes) {
    const Matrix a = random_matrix(n, k, rng);
    const Matrix b = random_matrix(k, m, rng);
    EXPECT_TRUE(matmul(a, b) == reference_matmul_f32(a, b))
        << "shape " << n << "x" << k << "x" << m;
  }
}

TEST(MatmulTn, BitIdenticalToReferenceAcrossShapes) {
  util::Rng rng(32);
  const std::vector<std::array<int, 3>> shapes = {
      {1, 1, 1}, {5, 3, 2}, {9, 6, 4}, {17, 33, 9}, {160, 160, 160}};
  for (const auto& [n, k, m] : shapes) {
    const Matrix a = random_matrix(n, k, rng);
    const Matrix b = random_matrix(n, m, rng);
    EXPECT_TRUE(matmul_tn(a, b) == reference_matmul_tn_f32(a, b))
        << "shape " << n << "x" << k << "x" << m;
  }
}

TEST(MatmulNt, BitIdenticalToReferenceAcrossShapes) {
  util::Rng rng(33);
  const std::vector<std::array<int, 3>> shapes = {
      {1, 1, 1}, {5, 8, 6}, {13, 7, 3}, {31, 19, 11}, {160, 160, 160}};
  for (const auto& [n, k, m] : shapes) {
    const Matrix a = random_matrix(n, k, rng);
    const Matrix b = random_matrix(m, k, rng);
    EXPECT_TRUE(matmul_nt(a, b) == reference_matmul_nt_f64(a, b))
        << "shape " << n << "x" << k << "x" << m;
  }
}

// The old kernels skipped a == 0.0f reduction steps, which silently
// suppressed NaN/Inf from the other operand. IEEE semantics are now exact:
// 0 * NaN = NaN and 0 * Inf = NaN must propagate (kSensorLoss injects NaN).
TEST(Matmul, PropagatesNanThroughZeroOperand) {
  Matrix a = Matrix::from_rows({{0.0f, 1.0f}});
  Matrix b = Matrix::from_rows({{std::numeric_limits<float>::quiet_NaN(), 2.0f},
                                {3.0f, 4.0f}});
  const Matrix c = matmul(a, b);
  EXPECT_TRUE(std::isnan(c.at(0, 0)));  // 0*NaN + 1*3 = NaN
  EXPECT_FLOAT_EQ(c.at(0, 1), 4.0f);
}

TEST(Matmul, PropagatesInfThroughZeroOperand) {
  Matrix a = Matrix::from_rows({{0.0f, 1.0f}});
  Matrix b = Matrix::from_rows({{std::numeric_limits<float>::infinity(), 2.0f},
                                {3.0f, 4.0f}});
  const Matrix c = matmul(a, b);
  EXPECT_TRUE(std::isnan(c.at(0, 0)));  // 0*Inf = NaN
  EXPECT_FLOAT_EQ(c.at(0, 1), 4.0f);
}

TEST(Matmul, NanInputPoisonsItsOutputRowOnly) {
  util::Rng rng(34);
  Matrix a = random_matrix(3, 4, rng);
  a.at(1, 2) = std::numeric_limits<float>::quiet_NaN();
  const Matrix b = random_matrix(4, 5, rng);
  const Matrix c = matmul(a, b);
  for (int j = 0; j < c.cols(); ++j) {
    EXPECT_FALSE(std::isnan(c.at(0, j)));
    EXPECT_TRUE(std::isnan(c.at(1, j)));
    EXPECT_FALSE(std::isnan(c.at(2, j)));
  }
}

TEST(MatmulTnNt, PropagateNanLikeMatmul) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  {
    const Matrix a = Matrix::from_rows({{0.0f}, {1.0f}});
    const Matrix b = Matrix::from_rows({{nan}, {2.0f}});
    EXPECT_TRUE(std::isnan(matmul_tn(a, b).at(0, 0)));  // 0*NaN + 1*2
  }
  {
    const Matrix a = Matrix::from_rows({{0.0f, 1.0f}});
    const Matrix b = Matrix::from_rows({{nan, 2.0f}});
    EXPECT_TRUE(std::isnan(matmul_nt(a, b).at(0, 0)));
  }
}

TEST(ElementWise, AddSubtractHadamard) {
  const Matrix a = Matrix::from_rows({{1, 2}});
  const Matrix b = Matrix::from_rows({{3, 5}});
  expect_near(add(a, b), Matrix::from_rows({{4, 7}}));
  expect_near(subtract(b, a), Matrix::from_rows({{2, 3}}));
  expect_near(hadamard(a, b), Matrix::from_rows({{3, 10}}));
}

TEST(Softmax, RowsSumToOne) {
  util::Rng rng(25);
  const Matrix logits = random_matrix(6, 4, rng);
  const Matrix p = softmax_rows(logits);
  for (int r = 0; r < p.rows(); ++r) {
    double sum = 0.0;
    for (int c = 0; c < p.cols(); ++c) {
      EXPECT_GT(p.at(r, c), 0.0f);
      sum += p.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Softmax, InvariantToRowShift) {
  const Matrix a = Matrix::from_rows({{1, 2, 3}});
  const Matrix b = Matrix::from_rows({{101, 102, 103}});
  expect_near(softmax_rows(a), softmax_rows(b), 1e-5f);
}

TEST(Softmax, StableForHugeLogits) {
  const Matrix p = softmax_rows(Matrix::from_rows({{1000.0f, 0.0f}}));
  EXPECT_NEAR(p.at(0, 0), 1.0f, 1e-6);
  EXPECT_FALSE(std::isnan(p.at(0, 1)));
}

TEST(Softmax, OrdersMatchLogits) {
  const Matrix p = softmax_rows(Matrix::from_rows({{0.1f, 2.0f, -1.0f}}));
  EXPECT_GT(p.at(0, 1), p.at(0, 0));
  EXPECT_GT(p.at(0, 0), p.at(0, 2));
}

}  // namespace
}  // namespace cpsguard::nn

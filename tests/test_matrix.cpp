#include "nn/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/contracts.h"
#include "util/rng.h"

namespace cpsguard::nn {
namespace {

Matrix random_matrix(int r, int c, util::Rng& rng) {
  Matrix m(r, c);
  for (float& v : m.data()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return m;
}

// Reference O(n^3) matmul used to pin the optimized variants.
Matrix naive_matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (int k = 0; k < a.cols(); ++k) {
        acc += static_cast<double>(a.at(i, k)) * b.at(k, j);
      }
      c.at(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

void expect_near(const Matrix& a, const Matrix& b, float tol = 1e-4f) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) {
      EXPECT_NEAR(a.at(i, j), b.at(i, j), tol) << "at (" << i << "," << j << ")";
    }
  }
}

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6);
  m.at(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(m.at(1, 2), 5.0f);
  EXPECT_FLOAT_EQ(m.at(0, 0), 0.0f);
}

TEST(Matrix, OutOfRangeIndexThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), ContractViolation);
  EXPECT_THROW(m.at(0, -1), ContractViolation);
}

TEST(Matrix, FromRowsAndEquality) {
  const Matrix m = Matrix::from_rows({{1, 2}, {3, 4}});
  EXPECT_FLOAT_EQ(m.at(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(m.at(1, 0), 3.0f);
  EXPECT_TRUE(m == Matrix::from_rows({{1, 2}, {3, 4}}));
  EXPECT_FALSE(m == Matrix::from_rows({{1, 2}, {3, 5}}));
}

TEST(Matrix, FromRowsRejectsRagged) {
  EXPECT_THROW(Matrix::from_rows({{1, 2}, {3}}), ContractViolation);
}

TEST(Matrix, FillAndFull) {
  const Matrix m = Matrix::full(2, 2, 3.5f);
  EXPECT_FLOAT_EQ(m.at(1, 1), 3.5f);
  EXPECT_FLOAT_EQ(m.sum(), 14.0f);
}

TEST(Matrix, AxpyAndScale) {
  Matrix a = Matrix::from_rows({{1, 2}});
  const Matrix b = Matrix::from_rows({{10, 20}});
  a.axpy(0.5f, b);
  expect_near(a, Matrix::from_rows({{6, 12}}));
  a.scale(2.0f);
  expect_near(a, Matrix::from_rows({{12, 24}}));
}

TEST(Matrix, AxpyShapeMismatchThrows) {
  Matrix a(1, 2), b(2, 1);
  EXPECT_THROW(a.axpy(1.0f, b), ContractViolation);
}

TEST(Matrix, HadamardInPlace) {
  Matrix a = Matrix::from_rows({{2, 3}});
  a.hadamard_in_place(Matrix::from_rows({{4, 5}}));
  expect_near(a, Matrix::from_rows({{8, 15}}));
}

TEST(Matrix, AddRowVector) {
  Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const std::vector<float> bias = {10.0f, 20.0f};
  a.add_row_vector(bias);
  expect_near(a, Matrix::from_rows({{11, 22}, {13, 24}}));
}

TEST(Matrix, Transpose) {
  const Matrix t = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}}).transpose();
  expect_near(t, Matrix::from_rows({{1, 4}, {2, 5}, {3, 6}}));
}

TEST(Matrix, ColumnSums) {
  const Matrix s = Matrix::from_rows({{1, 2}, {3, 4}, {5, 6}}).column_sums();
  expect_near(s, Matrix::from_rows({{9, 12}}));
}

TEST(Matrix, MaxAbs) {
  EXPECT_FLOAT_EQ(Matrix::from_rows({{-7, 3}}).max_abs(), 7.0f);
}

TEST(Matmul, MatchesNaive) {
  util::Rng rng(21);
  const Matrix a = random_matrix(7, 11, rng);
  const Matrix b = random_matrix(11, 5, rng);
  expect_near(matmul(a, b), naive_matmul(a, b));
}

TEST(Matmul, IdentityIsNoop) {
  util::Rng rng(22);
  const Matrix a = random_matrix(4, 4, rng);
  Matrix eye(4, 4);
  for (int i = 0; i < 4; ++i) eye.at(i, i) = 1.0f;
  expect_near(matmul(a, eye), a);
}

TEST(Matmul, InnerDimensionMismatchThrows) {
  EXPECT_THROW(matmul(Matrix(2, 3), Matrix(4, 2)), ContractViolation);
}

TEST(MatmulTn, MatchesTransposedNaive) {
  util::Rng rng(23);
  const Matrix a = random_matrix(9, 6, rng);
  const Matrix b = random_matrix(9, 4, rng);
  expect_near(matmul_tn(a, b), naive_matmul(a.transpose(), b));
}

TEST(MatmulNt, MatchesTransposedNaive) {
  util::Rng rng(24);
  const Matrix a = random_matrix(5, 8, rng);
  const Matrix b = random_matrix(6, 8, rng);
  expect_near(matmul_nt(a, b), naive_matmul(a, b.transpose()));
}

TEST(ElementWise, AddSubtractHadamard) {
  const Matrix a = Matrix::from_rows({{1, 2}});
  const Matrix b = Matrix::from_rows({{3, 5}});
  expect_near(add(a, b), Matrix::from_rows({{4, 7}}));
  expect_near(subtract(b, a), Matrix::from_rows({{2, 3}}));
  expect_near(hadamard(a, b), Matrix::from_rows({{3, 10}}));
}

TEST(Softmax, RowsSumToOne) {
  util::Rng rng(25);
  const Matrix logits = random_matrix(6, 4, rng);
  const Matrix p = softmax_rows(logits);
  for (int r = 0; r < p.rows(); ++r) {
    double sum = 0.0;
    for (int c = 0; c < p.cols(); ++c) {
      EXPECT_GT(p.at(r, c), 0.0f);
      sum += p.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Softmax, InvariantToRowShift) {
  const Matrix a = Matrix::from_rows({{1, 2, 3}});
  const Matrix b = Matrix::from_rows({{101, 102, 103}});
  expect_near(softmax_rows(a), softmax_rows(b), 1e-5f);
}

TEST(Softmax, StableForHugeLogits) {
  const Matrix p = softmax_rows(Matrix::from_rows({{1000.0f, 0.0f}}));
  EXPECT_NEAR(p.at(0, 0), 1.0f, 1e-6);
  EXPECT_FALSE(std::isnan(p.at(0, 1)));
}

TEST(Softmax, OrdersMatchLogits) {
  const Matrix p = softmax_rows(Matrix::from_rows({{0.1f, 2.0f, -1.0f}}));
  EXPECT_GT(p.at(0, 1), p.at(0, 0));
  EXPECT_GT(p.at(0, 0), p.at(0, 2));
}

}  // namespace
}  // namespace cpsguard::nn
